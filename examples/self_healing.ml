(* Self-healing drill: take a whole site down and watch the health loop
   bring it back.

   A month-long campaign runs with the node-health supervisor attached.
   On day 5 a site outage drops every nancy node at once, and on day 12
   a PDU failure kills one grisou rack.  Neither fault is auto-repaired:
   failed builds blame the nodes they touched, suspicion accumulates
   until the nodes are quarantined (and hidden from OAR), a simulated
   operator repairs them after an MTTR drawn per fault kind, and each
   node must pass a reboot + g5k-checks conformity gate before it is
   re-admitted.  Quarantine events and the site healthy-fraction floor
   both page through Monitoring.Alerts.

   Run with: dune exec examples/self_healing.exe *)

let day = Simkit.Calendar.day

let () =
  let config =
    {
      Framework.Campaign.default_config with
      Framework.Campaign.months = 1;
      seed = 2026L;
      health = Some Framework.Health.default_config;
      health_faults =
        [ (5.0 *. day, Testbed.Faults.Site_outage, Testbed.Faults.Site "nancy");
          (12.0 *. day, Testbed.Faults.Pdu_failure,
           Testbed.Faults.Rack ("grisou", 1)) ];
    }
  in
  Format.printf
    "injecting: site outage on nancy (day 5), PDU failure on a grisou rack \
     (day 12)@.";
  Format.printf
    "neither is auto-repaired — detection, repair and re-admission are the \
     health loop's job@.@.";

  let report = Framework.Campaign.run config in
  Format.printf "%a@.@." Framework.Campaign.pp_report report;

  match report.Framework.Campaign.health with
  | None -> failwith "health loop was not attached"
  | Some summary ->
    Format.printf "quarantined %d node(s); %d released, %d retired@."
      summary.Framework.Health.quarantined summary.Framework.Health.released
      summary.Framework.Health.retired;
    Format.printf "mean time in the repair pipeline: %.1f simulated hours@."
      summary.Framework.Health.mean_hours_to_release;
    List.iter
      (fun (site, n) -> Format.printf "  %-12s %d quarantine entr%s@." site n
          (if n = 1 then "y" else "ies"))
      summary.Framework.Health.by_site;
    Format.printf "@.summary as JSON:@.%s@."
      (Simkit.Json.to_string ~indent:2
         (Framework.Health.summary_to_json summary))
