(* Chaos drill: break the testing infrastructure itself and watch the
   resilience layer absorb it.

   Mid-campaign we take the CI server down, make builds hang, and wipe
   the build queue.  With the resilience layer attached the campaign
   still completes: triggers queue during the outage and replay on
   recovery, watchdogs abort the hung builds at their family deadline,
   circuit breakers stop piling work on failing families, and the
   scheduler's jittered retry budget bounds the backoff churn.

   Run with: dune exec examples/chaos_drill.exe *)

let day = Simkit.Calendar.day

let () =
  let config =
    {
      Framework.Campaign.default_config with
      Framework.Campaign.months = 1;
      seed = 2024L;
      resilience = true;
      infra_faults =
        [ (4.0 *. day, Testbed.Faults.Ci_outage);
          (11.0 *. day, Testbed.Faults.Build_hang);
          (19.0 *. day, Testbed.Faults.Queue_loss) ];
      policy =
        {
          Framework.Scheduler.smart_policy with
          Framework.Scheduler.retry_budget = 5;
          backoff_jitter = 0.3;
          breaker =
            Some
              {
                Framework.Resilience.Breaker.failure_threshold = 3;
                cooldown = 8.0 *. Simkit.Calendar.hour;
              };
        };
    }
  in
  Format.printf
    "injecting: CI outage (day 4), build hang (day 11), queue loss (day 19)@.";
  Format.printf "each repaired after %.0f h@.@."
    (config.Framework.Campaign.infra_fault_duration /. Simkit.Calendar.hour);

  let report = Framework.Campaign.run config in
  Format.printf "%a@." Framework.Campaign.pp_report report;

  match report.Framework.Campaign.resilience with
  | None -> failwith "resilience layer was not attached"
  | Some summary ->
    Format.printf "%s@."
      (Framework.Statuspage.render_resilience summary);
    Format.printf "summary as JSON:@.%s@."
      (Simkit.Json.to_string ~indent:2
         (Framework.Resilience.summary_to_json summary))
