(* Cross-cutting property-based tests (qcheck): invariants that must hold
   for arbitrary inputs, complementing the per-module example tests. *)

let qc = Qc.to_alcotest

(* ---- Cron: next_fire is sound and minimal-ish -------------------------------- *)

let cron_gen =
  (* Random but syntactically valid 5-field expressions. *)
  let open QCheck.Gen in
  let field lo hi =
    oneof
      [ return "*";
        map (fun n -> Printf.sprintf "*/%d" (1 + n)) (int_bound 10);
        map (fun v -> string_of_int (lo + (v mod (hi - lo + 1)))) (int_bound 1000);
        map2
          (fun a b ->
            let a = lo + (a mod (hi - lo + 1)) and b = lo + (b mod (hi - lo + 1)) in
            Printf.sprintf "%d-%d" (Stdlib.min a b) (Stdlib.max a b))
          (int_bound 1000) (int_bound 1000) ]
  in
  map
    (fun (m, h, dom, (mon, dow)) -> String.concat " " [ m; h; dom; mon; dow ])
    (tup4 (field 0 59) (field 0 23) (field 1 30) (tup2 (field 1 12) (field 0 6)))

let prop_cron_next_fire_matches =
  QCheck.Test.make ~name:"cron: next_fire lands on a matching minute" ~count:150
    (QCheck.make cron_gen)
    (fun source ->
      match Ci.Cron.parse source with
      | Error _ -> QCheck.assume_fail ()
      | Ok cron -> (
        match Ci.Cron.next_fire cron ~after:12345.0 with
        | fire -> fire > 12345.0 && Ci.Cron.matches cron fire
        | exception Failure _ -> true (* contradictory expression: accepted *)))

let prop_cron_no_match_between =
  QCheck.Test.make ~name:"cron: no matching minute before next_fire" ~count:50
    (QCheck.make cron_gen)
    (fun source ->
      match Ci.Cron.parse source with
      | Error _ -> QCheck.assume_fail ()
      | Ok cron -> (
        match Ci.Cron.next_fire cron ~after:0.0 with
        | exception Failure _ -> true
        | fire ->
          (* Check a sample of minutes strictly between. *)
          let minutes = int_of_float (fire /. 60.0) in
          let ok = ref true in
          let step = Stdlib.max 1 (minutes / 50) in
          let m = ref 1 in
          while !m < minutes do
            if Ci.Cron.matches cron (float_of_int !m *. 60.0) then ok := false;
            m := !m + step
          done;
          !ok))

(* ---- Calendar: structural identities ------------------------------------------ *)

let prop_calendar_day_decomposition =
  QCheck.Test.make ~name:"calendar: day/hour decomposition consistent" ~count:500
    QCheck.(float_bound_exclusive 1e8)
    (fun time ->
      let time = Float.abs time in
      let day = Simkit.Calendar.day_index time in
      let hour = Simkit.Calendar.hour_of_day time in
      let reconstructed = (float_of_int day *. 86400.0) +. (float_of_int hour *. 3600.0) in
      reconstructed <= time +. 1e-6
      && time -. reconstructed < 86400.0
      && hour >= 0 && hour < 24
      && Simkit.Calendar.day_of_week time = day mod 7)

let prop_calendar_peak_subset_of_weekday =
  QCheck.Test.make ~name:"calendar: peak hours only on working days" ~count:500
    QCheck.(float_bound_exclusive 1e8)
    (fun time ->
      let time = Float.abs time in
      (not (Simkit.Calendar.is_peak_hours time)) || not (Simkit.Calendar.is_weekend time))

(* ---- Engine: event ordering under random schedules ------------------------------ *)

let prop_engine_monotonic_execution =
  QCheck.Test.make ~name:"engine: callbacks observe non-decreasing time" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 50) (float_bound_exclusive 1000.0))
    (fun delays ->
      let e = Simkit.Engine.create () in
      let last = ref neg_infinity in
      let ok = ref true in
      List.iter
        (fun delay ->
          ignore
            (Simkit.Engine.schedule e ~delay (fun e ->
                 let now = Simkit.Engine.now e in
                 if now < !last then ok := false;
                 last := now)))
        delays;
      Simkit.Engine.run e;
      !ok)

let prop_engine_cancel_subset =
  QCheck.Test.make ~name:"engine: cancelled events never fire" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (pair (float_bound_exclusive 100.0) bool))
    (fun specs ->
      let e = Simkit.Engine.create () in
      let fired = Hashtbl.create 16 in
      let handles =
        List.mapi
          (fun i (delay, cancel) ->
            let h =
              Simkit.Engine.schedule e ~delay (fun _ -> Hashtbl.replace fired i ())
            in
            (i, h, cancel))
          specs
      in
      List.iter (fun (_, h, cancel) -> if cancel then Simkit.Engine.cancel e h) handles;
      Simkit.Engine.run e;
      List.for_all
        (fun (i, _, cancel) -> if cancel then not (Hashtbl.mem fired i) else Hashtbl.mem fired i)
        handles)

(* ---- Timeseries: window queries agree with a naive model ------------------------- *)

let prop_timeseries_between_model =
  QCheck.Test.make ~name:"timeseries: between = naive filter" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 50) (float_bound_exclusive 100.0))
        (pair (float_bound_exclusive 100.0) (float_bound_exclusive 100.0)))
    (fun (raw, (a, b)) ->
      let times = List.sort compare raw in
      let ts = Simkit.Timeseries.create ~name:"p" () in
      List.iteri (fun i time -> Simkit.Timeseries.add ts ~time (float_of_int i)) times;
      let lo = Float.min a b and hi = Float.max a b in
      let got = List.map fst (Simkit.Timeseries.between ts ~lo ~hi) in
      let expected = List.filter (fun t -> t >= lo && t <= hi) times in
      got = expected)

(* ---- Stats: percentile bounds ------------------------------------------------------ *)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"stats: percentile within min/max" ~count:300
    QCheck.(
      pair
        (list_of_size QCheck.Gen.(map (fun n -> n + 1) (int_bound 80)) (float_bound_exclusive 1000.0))
        (float_bound_exclusive 1.0))
    (fun (values, p) ->
      let arr = Array.of_list values in
      let v = Simkit.Stats.percentile arr p in
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_online_mean_matches_naive =
  QCheck.Test.make ~name:"stats: online mean = naive mean" ~count:300
    QCheck.(list_of_size QCheck.Gen.(map (fun n -> n + 1) (int_bound 100)) (float_bound_exclusive 1000.0))
    (fun values ->
      let o = Simkit.Stats.Online.create () in
      List.iter (Simkit.Stats.Online.add o) values;
      let naive = List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values) in
      Float.abs (Simkit.Stats.Online.mean o -. naive) < 1e-6)

(* ---- OAR expressions: de Morgan-ish sanity ----------------------------------------- *)

let props_gen =
  QCheck.Gen.(
    map2
      (fun cluster gpu -> [ ("cluster", String.make 1 cluster); ("gpu", if gpu then "YES" else "NO") ])
      (char_range 'a' 'c')
      bool)

let prop_expr_not_involution =
  QCheck.Test.make ~name:"expr: not (not e) = e" ~count:300 (QCheck.make props_gen)
    (fun props ->
      let lookup key = List.assoc_opt key props in
      let e = Oar.Expr.parse_exn "cluster='a' and gpu='YES'" in
      Oar.Expr.eval (Oar.Expr.Not (Oar.Expr.Not e)) ~props:lookup
      = Oar.Expr.eval e ~props:lookup)

let prop_expr_demorgan =
  QCheck.Test.make ~name:"expr: de Morgan on and/or" ~count:300 (QCheck.make props_gen)
    (fun props ->
      let lookup key = List.assoc_opt key props in
      let a = Oar.Expr.parse_exn "cluster='a'" in
      let b = Oar.Expr.parse_exn "gpu='YES'" in
      Oar.Expr.eval (Oar.Expr.Not (Oar.Expr.And (a, b))) ~props:lookup
      = Oar.Expr.eval (Oar.Expr.Or (Oar.Expr.Not a, Oar.Expr.Not b)) ~props:lookup)

(* ---- Gantt: next_free_window is actually free --------------------------------------- *)

let prop_gantt_window_free =
  QCheck.Test.make ~name:"gantt: next_free_window returns a free slot" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 15)
           (pair (float_bound_exclusive 200.0) (float_bound_exclusive 30.0)))
        (pair (float_bound_exclusive 200.0) (float_bound_exclusive 40.0)))
    (fun (intervals, (after, duration)) ->
      let duration = duration +. 0.1 in
      let g = Oar.Gantt.create () in
      List.iteri
        (fun i (start, len) ->
          try Oar.Gantt.reserve g ~host:"h" ~start ~stop:(start +. len +. 0.1) ~job:i
          with Invalid_argument _ -> ())
        intervals;
      let window = Oar.Gantt.next_free_window g ~host:"h" ~after ~duration in
      window >= after
      && Oar.Gantt.is_free g ~host:"h" ~start:window ~stop:(window +. duration))

(* ---- Request parser: programmatic requests round-trip -------------------------------- *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request: to_string/parse round-trip" ~count:200
    QCheck.(pair (int_range 1 40) (int_range 1 24))
    (fun (nodes, hours) ->
      let r =
        Oar.Request.nodes ~filter:"cluster='graphene'" (`N nodes)
          ~walltime:(float_of_int hours *. 3600.0)
      in
      let r' = Oar.Request.parse_exn (Oar.Request.to_string r) in
      List.length r'.Oar.Request.groups = 1
      && Float.abs (r'.Oar.Request.walltime -. r.Oar.Request.walltime) < 1.0)

(* ---- Tracelog: ring behaves like a bounded queue -------------------------------------- *)

let prop_tracelog_ring_model =
  QCheck.Test.make ~name:"tracelog: retains the most recent entries" ~count:200
    QCheck.(pair (int_range 1 20) (int_range 0 60))
    (fun (capacity, n) ->
      let t = Simkit.Tracelog.create ~capacity () in
      for i = 1 to n do
        Simkit.Tracelog.record t ~time:(float_of_int i) ~category:"c" (string_of_int i)
      done;
      let expected =
        List.init (Stdlib.min capacity n) (fun i ->
            string_of_int (n - Stdlib.min capacity n + i + 1))
      in
      List.map (fun e -> e.Simkit.Tracelog.message) (Simkit.Tracelog.entries t) = expected)

let () =
  Alcotest.run "properties"
    [
      ("cron", [ qc prop_cron_next_fire_matches; qc prop_cron_no_match_between ]);
      ( "calendar",
        [ qc prop_calendar_day_decomposition; qc prop_calendar_peak_subset_of_weekday ] );
      ("engine", [ qc prop_engine_monotonic_execution; qc prop_engine_cancel_subset ]);
      ("timeseries", [ qc prop_timeseries_between_model ]);
      ("stats", [ qc prop_percentile_within_range; qc prop_online_mean_matches_naive ]);
      ("expr", [ qc prop_expr_not_involution; qc prop_expr_demorgan ]);
      ("gantt", [ qc prop_gantt_window_free ]);
      ("request", [ qc prop_request_roundtrip ]);
      ("tracelog", [ qc prop_tracelog_ring_model ]);
    ]
