(* Tests for the Kadeploy substitute: images, recipes, deployment engine. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let mk () =
  let instance = Testbed.Instance.build ~seed:321L () in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  (instance, registry)

(* ---- Kameleon ----------------------------------------------------------------- *)

let test_recipe_structure () =
  let recipe = Kadeploy.Kameleon.make ~name:"img" ~base:"debian/jessie" [ "install x" ] in
  checki "bootstrap + setup + export" 5 (Kadeploy.Kameleon.step_count recipe);
  checks "name" "img" recipe.Kadeploy.Kameleon.recipe_name

let test_recipe_checksum_traceability () =
  let a = Kadeploy.Kameleon.make ~name:"img" ~base:"debian/jessie" [ "install x" ] in
  let b = Kadeploy.Kameleon.make ~name:"img" ~base:"debian/jessie" [ "install x" ] in
  let c = Kadeploy.Kameleon.make ~name:"img" ~base:"debian/jessie" [ "install y" ] in
  checks "same recipe, same checksum" (Kadeploy.Kameleon.checksum a)
    (Kadeploy.Kameleon.checksum b);
  checkb "different recipe, different checksum" true
    (Kadeploy.Kameleon.checksum a <> Kadeploy.Kameleon.checksum c)

(* ---- Images ------------------------------------------------------------------- *)

let test_fourteen_standard_images () =
  checki "the paper's 14 environments" 14 Kadeploy.Image.count;
  let names = List.map (fun i -> i.Kadeploy.Image.name) Kadeploy.Image.standard in
  checki "unique names" 14 (List.length (List.sort_uniq compare names));
  let indices = List.map (fun i -> i.Kadeploy.Image.index) Kadeploy.Image.standard in
  Alcotest.(check (list int)) "stable indices" (List.init 14 Fun.id) indices

let test_image_find () =
  checkb "std env exists" true (Kadeploy.Image.find "debian8-x64-std" <> None);
  checkb "unknown image" true (Kadeploy.Image.find "windows95" = None);
  checks "std_env name" "debian8-x64-std" Kadeploy.Image.std_env.Kadeploy.Image.name

let test_image_corruption_flag () =
  let instance, registry = mk () in
  let img = Kadeploy.Image.std_env in
  checkb "initially sound" false (Kadeploy.Image.is_corrupt registry img);
  let ctx = Testbed.Faults.context instance.Testbed.Instance.faults in
  Hashtbl.replace ctx.Testbed.Faults.flags
    (Printf.sprintf "env_corrupt:%d" img.Kadeploy.Image.index)
    "x";
  checkb "flag detected" true (Kadeploy.Image.is_corrupt registry img)

(* ---- Deployment --------------------------------------------------------------- *)

let run_deploy instance registry ~image nodes =
  let result = ref None in
  Kadeploy.Deploy.run instance ~registry ~image ~nodes ~on_done:(fun r -> result := Some r);
  Simkit.Engine.run_until instance.Testbed.Instance.engine
    (Simkit.Engine.now instance.Testbed.Instance.engine +. 7200.0);
  match !result with Some r -> r | None -> Alcotest.fail "deployment never completed"

let test_deploy_single_node () =
  let instance, registry = mk () in
  let node = Testbed.Instance.node instance "grisou-1.nancy" in
  let r = run_deploy instance registry ~image:"debian8-x64-min" [ node ] in
  checkb "deployed" true (Kadeploy.Deploy.all_deployed r);
  checks "environment switched" "debian8-x64-min" node.Testbed.Node.deployed_env;
  checkb "node alive" true (node.Testbed.Node.state = Testbed.Node.Alive);
  let elapsed = r.Kadeploy.Deploy.finished_at -. r.Kadeploy.Deploy.started_at in
  checkb "takes a few minutes" true (elapsed > 120.0 && elapsed < 1200.0)

let test_deploy_200_nodes_in_about_five_minutes () =
  (* The paper's headline Kadeploy figure. *)
  let instance, registry = mk () in
  let nodes =
    (Testbed.Instance.nodes_of_cluster instance "graphene"
    @ Testbed.Instance.nodes_of_cluster instance "griffon"
    @ Testbed.Instance.nodes_of_cluster instance "grisou"
    @ Testbed.Instance.nodes_of_cluster instance "paravance")
    |> List.filteri (fun i _ -> i < 200)
  in
  checki "200 nodes" 200 (List.length nodes);
  let r = run_deploy instance registry ~image:"debian8-x64-std" nodes in
  let elapsed = r.Kadeploy.Deploy.finished_at -. r.Kadeploy.Deploy.started_at in
  checkb "~5 minutes (within [3, 12] min incl. retries)" true
    (elapsed > 180.0 && elapsed < 720.0);
  checkb "almost all nodes deployed" true (Kadeploy.Deploy.success_count r >= 195)

let test_deploy_scaling_sublinear () =
  let d1 = Kadeploy.Deploy.expected_duration ~nodes:1 ~image_mb:1200 in
  let d200 = Kadeploy.Deploy.expected_duration ~nodes:200 ~image_mb:1200 in
  checkb "broadcast makes 200 nodes barely slower than 1" true (d200 < d1 *. 1.2);
  checkb "monotone" true (d200 > d1)

let test_deploy_corrupt_image_fails_everywhere () =
  let instance, registry = mk () in
  let img = Kadeploy.Image.std_env in
  let ctx = Testbed.Faults.context instance.Testbed.Instance.faults in
  Hashtbl.replace ctx.Testbed.Faults.flags
    (Printf.sprintf "env_corrupt:%d" img.Kadeploy.Image.index)
    "x";
  let nodes =
    Testbed.Instance.nodes_of_cluster instance "graphite" |> List.filteri (fun i _ -> i < 3)
  in
  let r = run_deploy instance registry ~image:img.Kadeploy.Image.name nodes in
  checki "no success" 0 (Kadeploy.Deploy.success_count r);
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | Kadeploy.Deploy.Failed reason ->
        checkb "postinstall blamed" true
          (String.length reason >= 11 && String.sub reason 0 11 = "postinstall")
      | Kadeploy.Deploy.Deployed -> Alcotest.fail "should not deploy")
    r.Kadeploy.Deploy.outcomes

let test_deploy_unknown_image () =
  let instance, registry = mk () in
  let node = Testbed.Instance.node instance "grisou-2.nancy" in
  let result = ref None in
  Kadeploy.Deploy.run instance ~registry ~image:"nosuch" ~nodes:[ node ]
    ~on_done:(fun r -> result := Some r);
  (* Completes synchronously. *)
  match !result with
  | Some r -> checki "failed" 0 (Kadeploy.Deploy.success_count r)
  | None -> Alcotest.fail "expected immediate completion"

let test_deploy_service_down () =
  let instance, registry = mk () in
  Testbed.Services.set_state instance.Testbed.Instance.services ~site:"nancy"
    Testbed.Services.Kadeploy Testbed.Services.Down;
  let node = Testbed.Instance.node instance "grisou-3.nancy" in
  let result = ref None in
  Kadeploy.Deploy.run instance ~registry ~image:"debian8-x64-min" ~nodes:[ node ]
    ~on_done:(fun r -> result := Some r);
  match !result with
  | Some r ->
    checki "failed" 0 (Kadeploy.Deploy.success_count r);
    checkb "node untouched" true (node.Testbed.Node.deployed_env = "std")
  | None -> Alcotest.fail "expected immediate completion"

let test_deploy_nodes_deploying_during () =
  let instance, registry = mk () in
  let node = Testbed.Instance.node instance "grisou-4.nancy" in
  Kadeploy.Deploy.run instance ~registry ~image:"debian8-x64-min" ~nodes:[ node ]
    ~on_done:(fun _ -> ());
  checkb "deploying state" true (node.Testbed.Node.state = Testbed.Node.Deploying);
  Simkit.Engine.run_until instance.Testbed.Instance.engine 7200.0;
  checkb "settled" true (node.Testbed.Node.state <> Testbed.Node.Deploying)

let prop_expected_duration_monotone =
  QCheck.Test.make ~name:"expected duration monotone in nodes and size" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 100 4000))
    (fun (nodes, image_mb) ->
      Kadeploy.Deploy.expected_duration ~nodes:(nodes + 1) ~image_mb
      >= Kadeploy.Deploy.expected_duration ~nodes ~image_mb
      && Kadeploy.Deploy.expected_duration ~nodes ~image_mb:(image_mb + 100)
         >= Kadeploy.Deploy.expected_duration ~nodes ~image_mb)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "kadeploy"
    [
      ( "kameleon",
        [ Alcotest.test_case "structure" `Quick test_recipe_structure;
          Alcotest.test_case "checksum traceability" `Quick
            test_recipe_checksum_traceability ] );
      ( "images",
        [ Alcotest.test_case "14 standard" `Quick test_fourteen_standard_images;
          Alcotest.test_case "find" `Quick test_image_find;
          Alcotest.test_case "corruption flag" `Quick test_image_corruption_flag ] );
      ( "deploy",
        [ Alcotest.test_case "single node" `Quick test_deploy_single_node;
          Alcotest.test_case "200 nodes ~5 min" `Quick
            test_deploy_200_nodes_in_about_five_minutes;
          Alcotest.test_case "sublinear scaling" `Quick test_deploy_scaling_sublinear;
          Alcotest.test_case "corrupt image" `Quick
            test_deploy_corrupt_image_fails_everywhere;
          Alcotest.test_case "unknown image" `Quick test_deploy_unknown_image;
          Alcotest.test_case "service down" `Quick test_deploy_service_down;
          Alcotest.test_case "deploying state" `Quick test_deploy_nodes_deploying_during;
          qc prop_expected_duration_monotone ] );
    ]
