(* Serving-layer tests: O(delta) snapshot cache with single-flight
   renders and ETag revalidation, token-bucket admission with counted
   shedding, the Fresh -> Stale -> Static_fallback degradation ladder
   with hysteresis, and the Serve_crash journal-replay drill recovering
   to byte-identical pages — plus the campaign-level invariants: read
   conservation, and serve-off runs byte-identical to the seed. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* A serve config with the synthetic workload disabled: reads only
   happen through [Serve.read], so each test controls demand exactly. *)
let quiet_config =
  { Framework.Serve.default_config with
    Framework.Serve.readers_per_s = 0.0;
    flash_every = 0.0;
  }

let mk ?(config = quiet_config) ?(seed = 9001L) () =
  let env = Framework.Env.create ~seed () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let serve = Framework.Serve.attach ~config env page in
  (env, page, serve)

let run_build env family axes =
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci (Framework.Jobs.job_name family)
       ~axes:[ axes ]);
  Framework.Env.run_until env
    (Framework.Env.now env +. (4.0 *. Simkit.Calendar.hour))

let conserved (s : Framework.Serve.summary) =
  s.Framework.Serve.reads
  = s.Framework.Serve.fresh + s.Framework.Serve.not_modified
    + s.Framework.Serve.stale + s.Framework.Serve.fallback
    + s.Framework.Serve.shed

(* ---- snapshot cache --------------------------------------------------------- *)

let test_single_flight_and_etag () =
  let env, page, serve = mk () in
  run_build env Framework.Testdef.Refapi [ ("cluster", "graphene") ];
  checkb "no render before the first read" true
    ((Framework.Serve.summary serve).Framework.Serve.renders = 0);
  let etag1 =
    match Framework.Serve.read serve () with
    | Framework.Serve.Page { etag; mode = Framework.Serve.Fresh; staleness; _ } ->
      Alcotest.(check (float 1e-9)) "fresh read has zero staleness" 0.0 staleness;
      etag
    | _ -> Alcotest.fail "expected a fresh page"
  in
  checks "etag is the generation stamp"
    (Printf.sprintf "W/\"g%d\"" (Framework.Statuspage.generation page))
    etag1;
  (* Second read: cache hit — same body, no new render. *)
  (match Framework.Serve.read serve () with
   | Framework.Serve.Page { etag; _ } -> checks "same etag" etag1 etag
   | _ -> Alcotest.fail "expected a page");
  checki "single flight: one render for two reads" 1
    (Framework.Serve.summary serve).Framework.Serve.renders;
  (* Conditional read with the current ETag: 304, no body. *)
  (match Framework.Serve.read serve ~if_none_match:etag1 () with
   | Framework.Serve.Not_modified etag -> checks "304 echoes the etag" etag1 etag
   | _ -> Alcotest.fail "expected Not_modified");
  (* A new completion invalidates: the held ETag no longer matches. *)
  run_build env Framework.Testdef.Refapi [ ("cluster", "grisou") ];
  (match Framework.Serve.read serve ~if_none_match:etag1 () with
   | Framework.Serve.Page { etag; mode = Framework.Serve.Fresh; _ } ->
     checkb "etag moved with the generation" true (etag <> etag1)
   | _ -> Alcotest.fail "expected a re-rendered page");
  checki "re-render is also single flight" 2
    (Framework.Serve.summary serve).Framework.Serve.renders

let test_read_sheds_when_bucket_empty () =
  let _, _, serve =
    mk ~config:{ quiet_config with Framework.Serve.burst = 1.0 } ()
  in
  (match Framework.Serve.read serve () with
   | Framework.Serve.Page _ -> ()
   | _ -> Alcotest.fail "first read should be served");
  checkb "second read is shed, not dropped" true
    (Framework.Serve.read serve () = Framework.Serve.Shed);
  let s = Framework.Serve.summary serve in
  checki "shed counted" 1 s.Framework.Serve.shed;
  checkb "conservation holds" true (conserved s)

(* ---- degradation ladder ------------------------------------------------------ *)

(* Hourly flash crowds against a small admission rate: the queue climbs
   through both thresholds (Stale at 30, Static_fallback at 300), the
   overflow beyond the queue limit is shed, and after the flash the
   service drains and climbs back to Fresh once the hysteresis window
   has passed. *)
let ladder_config =
  { Framework.Serve.default_config with
    Framework.Serve.rate_limit = 5.0;
    burst = 150.0;
    queue_limit = 2000;
    stale_queue = 30;
    fallback_queue = 300;
    hysteresis_s = 120.0;
    tick_period = 30.0;
    readers_per_s = 0.5;
    flash_every = 3600.0;
    flash_duration = 600.0;
    flash_multiplier = 20.0;
  }

let test_ladder_degrades_and_recovers () =
  let env = Framework.Env.create ~seed:9002L () in
  let page = Framework.Statuspage.create env in
  let alerts = Monitoring.Alerts.create env.Framework.Env.collector in
  let serve = Framework.Serve.attach ~alerts ~config:ladder_config env page in
  Framework.Env.run_until env 6000.0;
  let s = Framework.Serve.summary serve in
  checkb "walked through the Stale rung" true (s.Framework.Serve.stale > 0);
  checkb "reached Static_fallback" true (s.Framework.Serve.fallback > 0);
  checkb "overflow beyond the queue was shed" true (s.Framework.Serve.shed > 0);
  checkb "fresh serves outside the flash" true (s.Framework.Serve.fresh > 0);
  checkb "conditional readers got 304s" true (s.Framework.Serve.not_modified > 0);
  checkb "degraded time accounted" true (s.Framework.Serve.degraded_seconds > 0.0);
  checkb "departure from Fresh fired an alert" true
    (s.Framework.Serve.alerts_fired >= 1);
  checkb "calm plus hysteresis climbed back to Fresh" true
    (Framework.Serve.mode serve = Framework.Serve.Fresh);
  checkb "every read resolved" true (conserved s);
  checkb "queue peak hit the configured limit" true
    (s.Framework.Serve.queued_peak <= ladder_config.Framework.Serve.queue_limit)

let test_zero_workload_stays_fresh () =
  let env, _, serve = mk () in
  Framework.Env.run_until env Simkit.Calendar.day;
  let s = Framework.Serve.summary serve in
  checki "no synthetic reads" 0 s.Framework.Serve.reads;
  checkb "mode never left Fresh" true
    (Framework.Serve.mode serve = Framework.Serve.Fresh);
  Alcotest.(check (float 1e-9)) "no degraded time" 0.0
    s.Framework.Serve.degraded_seconds;
  checki "no alerts" 0 s.Framework.Serve.alerts_fired

(* ---- crash recovery ---------------------------------------------------------- *)

let test_crash_replay_rebuilds_identical_page () =
  let env, page, serve = mk () in
  run_build env Framework.Testdef.Refapi [ ("cluster", "graphene") ];
  run_build env Framework.Testdef.Oarstate [ ("site", "lyon") ];
  let body_before =
    match Framework.Serve.read serve () with
    | Framework.Serve.Page { body; _ } -> body
    | _ -> Alcotest.fail "expected a page"
  in
  let html_before = Framework.Webstatus.render page in
  let gen_before = Framework.Statuspage.generation page in
  (* Crash: wipe the aggregates mid-campaign. *)
  let faults = Framework.Env.faults env in
  let fault =
    match
      Testbed.Faults.inject faults ~now:(Framework.Env.now env)
        Testbed.Faults.Serve_crash
    with
    | Some fault -> fault
    | None -> Alcotest.fail "crash injection refused"
  in
  (* Let the service loop observe the crash and replay its journal. *)
  Framework.Env.run_until env (Framework.Env.now env +. 60.0);
  let s = Framework.Serve.summary serve in
  checki "one crash" 1 s.Framework.Serve.crashes;
  checki "one recovery replay" 1 s.Framework.Serve.recoveries;
  checkb "generation is monotonic across reset" true
    (Framework.Statuspage.generation page > gen_before);
  checks "replayed aggregates render byte-identically" html_before
    (Framework.Webstatus.render page);
  (* During the rebuild window reads get the static fallback... *)
  (match Framework.Serve.read serve () with
   | Framework.Serve.Page { mode = Framework.Serve.Static_fallback; body; _ } ->
     checkb "fallback is the static placeholder" true
       (body <> body_before && body <> "")
   | _ -> Alcotest.fail "expected the static fallback during rebuild");
  (* ...and after repair + rebuild window + hysteresis the service is
     Fresh again and serves the exact pre-crash page. *)
  Testbed.Faults.repair faults ~now:(Framework.Env.now env) fault;
  Framework.Env.run_until env (Framework.Env.now env +. 600.0);
  checkb "back to Fresh" true (Framework.Serve.mode serve = Framework.Serve.Fresh);
  match Framework.Serve.read serve () with
  | Framework.Serve.Page { body; mode = Framework.Serve.Fresh; _ } ->
    checks "post-recovery page is byte-identical" body_before body
  | _ -> Alcotest.fail "expected a fresh page after recovery"

(* ---- campaign integration ---------------------------------------------------- *)

let light_workload =
  { Oar.Workload.default_profile with Oar.Workload.base_rate_per_hour = 8.0 }

let serve_campaign_base =
  { Framework.Campaign.default_config with
    Framework.Campaign.months = 1;
    seed = 9003L;
    workload = Some light_workload;
    serve = Some Framework.Serve.default_config;
  }

let test_campaign_serve_off_byte_identical () =
  let off =
    Framework.Campaign.run
      { serve_campaign_base with Framework.Campaign.serve = None }
  in
  let on_ = Framework.Campaign.run serve_campaign_base in
  checkb "serve-off report has no serve member" true
    (off.Framework.Campaign.serve = None);
  checkb "serve-on report carries the summary" true
    (on_.Framework.Campaign.serve <> None);
  let strip r = { r with Framework.Campaign.serve = None } in
  checks "serving layer is invisible to the campaign"
    (Framework.Report.to_string (strip off))
    (Framework.Report.to_string (strip on_));
  checks "same status page HTML" off.Framework.Campaign.statuspage_html
    on_.Framework.Campaign.statuspage_html

let test_campaign_serve_conservation () =
  let report = Framework.Campaign.run serve_campaign_base in
  match report.Framework.Campaign.serve with
  | None -> Alcotest.fail "serve summary missing"
  | Some s ->
    checkb "millions of simulated reads resolve" true
      (s.Framework.Serve.reads > 0);
    checkb "zero reads fail outright (conservation)" true (conserved s);
    checkb "cache absorbs almost everything" true
      (s.Framework.Serve.renders_saved > s.Framework.Serve.renders);
    checkb "status page text carries the serving section" true
      (let hay = report.Framework.Campaign.statuspage in
       let needle = "Serving" in
       let n = String.length needle and m = String.length hay in
       let rec scan i =
         i + n <= m && (String.sub hay i n = needle || scan (i + 1))
       in
       scan 0)

let test_campaign_crash_drill_byte_identity () =
  let uncrashed = Framework.Campaign.run serve_campaign_base in
  let crashed =
    Framework.Campaign.run
      { serve_campaign_base with
        Framework.Campaign.infra_faults =
          [ (15.0 *. Simkit.Calendar.day, Testbed.Faults.Serve_crash) ];
      }
  in
  (match crashed.Framework.Campaign.serve with
   | None -> Alcotest.fail "serve summary missing"
   | Some s ->
     checki "the drill crashed the service once" 1 s.Framework.Serve.crashes;
     checki "journal replay recovered it" 1 s.Framework.Serve.recoveries;
     checkb "conservation survives the crash" true (conserved s));
  checks "recovered page is byte-identical to the uncrashed run's"
    uncrashed.Framework.Campaign.statuspage_html
    crashed.Framework.Campaign.statuspage_html

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [ Alcotest.test_case "single flight and etag" `Quick
            test_single_flight_and_etag;
          Alcotest.test_case "empty bucket sheds" `Quick
            test_read_sheds_when_bucket_empty ] );
      ( "ladder",
        [ Alcotest.test_case "degrade and recover" `Quick
            test_ladder_degrades_and_recovers;
          Alcotest.test_case "zero workload stays fresh" `Quick
            test_zero_workload_stays_fresh ] );
      ( "crash",
        [ Alcotest.test_case "journal replay" `Quick
            test_crash_replay_rebuilds_identical_page ] );
      ( "campaign",
        [ Alcotest.test_case "serve-off byte-identity" `Slow
            test_campaign_serve_off_byte_identical;
          Alcotest.test_case "conservation" `Slow test_campaign_serve_conservation;
          Alcotest.test_case "crash drill byte-identity" `Slow
            test_campaign_crash_drill_byte_identity ] );
    ]
