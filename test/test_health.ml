(* Tests for the self-healing loop: correlated fault kinds, suspicion
   accumulation and decay, every health-state transition, the scheduler's
   quarantine accounting, and the Site_outage chaos drill. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let hour = Simkit.Calendar.hour
let day = Simkit.Calendar.day

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ---- correlated fault kinds ------------------------------------------------ *)

let test_site_outage_downs_and_revives () =
  let t = Testbed.Instance.build ~seed:21L () in
  let faults = t.Testbed.Instance.faults in
  let nancy = Testbed.Instance.nodes_of_site t "nancy" in
  checkb "site has nodes" true (nancy <> []);
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Site_outage
         (Testbed.Faults.Site "nancy"))
  in
  checkb "all site nodes down" true
    (List.for_all (fun n -> n.Testbed.Node.state = Testbed.Node.Down) nancy);
  checkb "site services down" true
    (List.for_all
       (fun k ->
         Testbed.Services.state t.Testbed.Instance.services ~site:"nancy" k
         = Testbed.Services.Down)
       Testbed.Services.all_kinds);
  checkb "other sites untouched" true
    (List.for_all
       (fun n -> n.Testbed.Node.state <> Testbed.Node.Down)
       (Testbed.Instance.nodes_of_site t "lyon"));
  checkb "no stacking on a dark site" true
    (Testbed.Faults.inject_on faults ~now:1.0 Testbed.Faults.Site_outage
       (Testbed.Faults.Site "nancy")
    = None);
  checkb "fault touches a site node" true
    (Testbed.Faults.active_on_host faults "graphene-1.nancy" <> []);
  Testbed.Faults.repair faults ~now:2.0 fault;
  checkb "nodes revived" true
    (List.for_all (fun n -> n.Testbed.Node.state = Testbed.Node.Alive) nancy);
  checkb "services repaired" true
    (List.for_all
       (fun k ->
         Testbed.Services.state t.Testbed.Instance.services ~site:"nancy" k
         = Testbed.Services.Up)
       Testbed.Services.all_kinds)

let test_network_partition_flag_roundtrip () =
  let t = Testbed.Instance.build ~seed:22L () in
  let faults = t.Testbed.Instance.faults in
  let ctx = Testbed.Faults.context faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Network_partition
         (Testbed.Faults.Site "rennes"))
  in
  checkb "partition flag raised" true
    (Testbed.Faults.flag ctx (Testbed.Faults.partition_flag "rennes") <> None);
  checkb "site unreachable = nodes down" true
    (List.for_all
       (fun n -> n.Testbed.Node.state = Testbed.Node.Down)
       (Testbed.Instance.nodes_of_site t "rennes"));
  Testbed.Faults.repair faults ~now:1.0 fault;
  checkb "flag cleared" true
    (Testbed.Faults.flag ctx (Testbed.Faults.partition_flag "rennes") = None)

let test_pdu_failure_downs_one_rack () =
  let t = Testbed.Instance.build ~seed:23L () in
  let faults = t.Testbed.Instance.faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Pdu_failure
         (Testbed.Faults.Rack ("graphene", 0)))
  in
  let nodes = Testbed.Instance.nodes_of_cluster t "graphene" in
  let rack0, rest =
    List.partition
      (fun n -> Testbed.Faults.rack_of_index n.Testbed.Node.index = 0)
      nodes
  in
  checki "one PDU covers rack_size nodes" Testbed.Faults.rack_size
    (List.length rack0);
  checkb "rack lost power" true
    (List.for_all (fun n -> n.Testbed.Node.state = Testbed.Node.Down) rack0);
  checkb "other racks unaffected" true
    (List.for_all (fun n -> n.Testbed.Node.state <> Testbed.Node.Down) rest);
  checkb "bad rack index rejected" true
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Pdu_failure
       (Testbed.Faults.Rack ("graphene", 999))
    = None);
  Testbed.Faults.repair faults ~now:1.0 fault;
  checkb "rack revived" true
    (List.for_all (fun n -> n.Testbed.Node.state = Testbed.Node.Alive) rack0)

(* ---- decay properties ------------------------------------------------------ *)

let test_decay_halves_at_half_life () =
  checkf "one half-life" 1.0
    (Framework.Health.decay ~half_life:3600.0 ~score:2.0 ~dt:3600.0);
  checkf "zero dt is identity" 2.0
    (Framework.Health.decay ~half_life:3600.0 ~score:2.0 ~dt:0.0)

let prop_decay_monotone_in_dt =
  QCheck.Test.make ~name:"suspicion decay is monotone in elapsed time" ~count:200
    QCheck.(triple (float_bound_exclusive 100.0) (float_bound_exclusive 1e6) (float_bound_exclusive 1e6))
    (fun (score, dt1, dt2) ->
      let lo = Float.min dt1 dt2 and hi = Float.max dt1 dt2 in
      let half_life = 3600.0 in
      Framework.Health.decay ~half_life ~score ~dt:hi
      <= Framework.Health.decay ~half_life ~score ~dt:lo +. 1e-12)

let prop_decay_bounded =
  QCheck.Test.make ~name:"decay never amplifies or goes negative" ~count:200
    QCheck.(pair (float_bound_exclusive 100.0) (float_bound_exclusive 1e6))
    (fun (score, dt) ->
      let v = Framework.Health.decay ~half_life:3600.0 ~score ~dt in
      v >= 0.0 && v <= score +. 1e-12)

(* ---- blame channel and state machine --------------------------------------- *)

let failing_job ?(result = Ci.Build.Failure) name host =
  Ci.Jobdef.freestyle ~name (fun ~engine ~build ~finish ->
      Ci.Build.touch_hosts build [ host ];
      ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish result)))

let fast_config =
  {
    Framework.Health.default_config with
    Framework.Health.sweep_period = 60.0;
    (* Exact-integer blame amounts decay slightly between builds, so give
       the thresholds a little headroom below the 2.0/3.0 defaults. *)
    suspect_threshold = 1.9;
    quarantine_threshold = 2.8;
    triage_delay = 30.0;
    decay_half_life = 1.0 *. hour;
    mttr_of_kind = (fun _ -> Simkit.Dist.Constant 120.0);
    default_mttr = Simkit.Dist.Constant 120.0;
  }

let trigger_and_run env name =
  ignore (Ci.Server.trigger env.Framework.Env.ci name);
  Framework.Env.run_until env (Framework.Env.now env +. 10.0)

let test_blame_walks_the_state_machine () =
  let env = Framework.Env.create ~seed:31L () in
  let host = "grisou-3.nancy" in
  let node = Option.get (Testbed.Instance.find_node env.Framework.Env.instance host) in
  let health = Framework.Health.attach ~config:fast_config env in
  Ci.Server.define env.Framework.Env.ci (failing_job "bad" host);
  checkb "starts in service" true (Testbed.Node.in_service node);
  trigger_and_run env "bad";
  checkb "one failure: still healthy" true
    (node.Testbed.Node.health = Testbed.Node.Healthy);
  checkb "suspicion accumulated" true (Framework.Health.suspicion health host > 0.9);
  trigger_and_run env "bad";
  checkb "two failures: suspected" true
    (node.Testbed.Node.health = Testbed.Node.Suspected);
  checkb "suspect is out of service" false (Testbed.Node.in_service node);
  trigger_and_run env "bad";
  checkb "three failures: quarantined" true
    (node.Testbed.Node.health = Testbed.Node.Quarantined);
  (* Triage -> repair -> reverify -> release, all deterministic. *)
  Framework.Env.run_until env (Framework.Env.now env +. 2.0 *. hour);
  checkb "released after repair and verification" true
    (node.Testbed.Node.health = Testbed.Node.Healthy);
  checkf "score reset on release" 0.0 (Framework.Health.suspicion health host);
  let s = Framework.Health.summary health in
  checki "one suspected" 1 s.Framework.Health.suspected;
  checki "one quarantined" 1 s.Framework.Health.quarantined;
  checki "one released" 1 s.Framework.Health.released;
  checki "nothing retired" 0 s.Framework.Health.retired;
  checkb "site tally" true (s.Framework.Health.by_site = [ ("nancy", 1) ]);
  let transitions =
    List.filter
      (fun e -> e.Framework.Health.host = host)
      (Framework.Health.events health)
    |> List.map (fun e -> e.Framework.Health.to_health)
  in
  checkb "full loop recorded" true
    (transitions
    = [ Testbed.Node.Suspected; Testbed.Node.Quarantined; Testbed.Node.Repairing;
        Testbed.Node.Reverifying; Testbed.Node.Healthy ])

let test_success_credit_releases_suspect () =
  let env = Framework.Env.create ~seed:32L () in
  let host = "grisou-3.nancy" in
  let node = Option.get (Testbed.Instance.find_node env.Framework.Env.instance host) in
  let health = Framework.Health.attach ~config:fast_config env in
  Ci.Server.define env.Framework.Env.ci (failing_job "bad" host);
  Ci.Server.define env.Framework.Env.ci
    (failing_job ~result:Ci.Build.Success "good" host);
  trigger_and_run env "bad";
  trigger_and_run env "bad";
  checkb "suspected" true (node.Testbed.Node.health = Testbed.Node.Suspected);
  (* Successful builds subtract credit until the score falls back under
     the release threshold. *)
  trigger_and_run env "good";
  trigger_and_run env "good";
  trigger_and_run env "good";
  checkb "credited back into service" true
    (node.Testbed.Node.health = Testbed.Node.Healthy);
  ignore health

let test_decay_alone_releases_suspect () =
  let env = Framework.Env.create ~seed:33L () in
  let host = "grisou-3.nancy" in
  let node = Option.get (Testbed.Instance.find_node env.Framework.Env.instance host) in
  let health = Framework.Health.attach ~config:fast_config env in
  Ci.Server.define env.Framework.Env.ci (failing_job "bad" host);
  trigger_and_run env "bad";
  trigger_and_run env "bad";
  checkb "suspected" true (node.Testbed.Node.health = Testbed.Node.Suspected);
  (* Score 2.0, half-life 1 h, release threshold 0.5: clean after two
     half-lives, picked up by the next sweep. *)
  Framework.Env.run_until env (Framework.Env.now env +. 3.0 *. hour);
  checkb "suspicion decayed away" true
    (node.Testbed.Node.health = Testbed.Node.Healthy);
  checkb "score under release threshold" true
    (Framework.Health.suspicion health host <= 0.5)

let test_unstable_blame_is_lighter () =
  let env = Framework.Env.create ~seed:34L () in
  let host = "grisou-3.nancy" in
  let node = Option.get (Testbed.Instance.find_node env.Framework.Env.instance host) in
  let health = Framework.Health.attach ~config:fast_config env in
  Ci.Server.define env.Framework.Env.ci
    (failing_job ~result:Ci.Build.Unstable "meh" host);
  trigger_and_run env "meh";
  trigger_and_run env "meh";
  trigger_and_run env "meh";
  checkb "three unstables stay under the suspect threshold" true
    (node.Testbed.Node.health = Testbed.Node.Healthy);
  checkb "but suspicion is non-zero" true
    (Framework.Health.suspicion health host > 0.0)

let test_persistent_failure_retires () =
  let env = Framework.Env.create ~seed:35L () in
  let engine = Framework.Env.engine env in
  let host = "grisou-3.nancy" in
  let node = Option.get (Testbed.Instance.find_node env.Framework.Env.instance host) in
  let health =
    Framework.Health.attach
      ~config:{ fast_config with Framework.Health.max_repair_attempts = 2 }
      env
  in
  Ci.Server.define env.Framework.Env.ci (failing_job "bad" host);
  (* An undiagnosable defect: whatever the operator resets, the node's
     observed hardware drifts again before verification can pass. *)
  Simkit.Engine.every engine ~period:10.0 (fun _ ->
      (if node.Testbed.Node.health <> Testbed.Node.Healthy then
         let actual = node.Testbed.Node.actual in
         node.Testbed.Node.actual <-
           {
             actual with
             Testbed.Hardware.settings =
               { actual.Testbed.Hardware.settings with
                 Testbed.Hardware.c_states = true };
           });
      node.Testbed.Node.health <> Testbed.Node.Retired);
  trigger_and_run env "bad";
  trigger_and_run env "bad";
  trigger_and_run env "bad";
  checkb "quarantined" true (node.Testbed.Node.health = Testbed.Node.Quarantined);
  Framework.Env.run_until env (Framework.Env.now env +. 6.0 *. hour);
  checkb "given up after repeated failed verifications" true
    (node.Testbed.Node.health = Testbed.Node.Retired);
  let s = Framework.Health.summary health in
  checki "two repair attempts" 2 s.Framework.Health.repair_attempts;
  checki "two reverify failures" 2 s.Framework.Health.reverify_failures;
  checki "one retired" 1 s.Framework.Health.retired;
  checki "nothing released" 0 s.Framework.Health.released

(* ---- OAR exclusion and scheduler accounting --------------------------------- *)

let test_oar_excludes_sidelined_nodes () =
  let env = Framework.Env.create ~seed:36L () in
  let host = "grisou-3.nancy" in
  let node = Option.get (Testbed.Instance.find_node env.Framework.Env.instance host) in
  let filter = Oar.Expr.parse_exn (Printf.sprintf "host='%s'" host) in
  checkb "free while healthy" true
    (Oar.Manager.free_at_least env.Framework.Env.oar filter 1);
  node.Testbed.Node.health <- Testbed.Node.Quarantined;
  checkb "invisible while quarantined" false
    (Oar.Manager.free_at_least env.Framework.Env.oar filter 1);
  checkb "not in free_matching_now" false
    (List.mem host (Oar.Manager.free_matching_now env.Framework.Env.oar filter));
  node.Testbed.Node.health <- Testbed.Node.Healthy;
  checkb "back after release" true
    (Oar.Manager.free_at_least env.Framework.Env.oar filter 1)

let test_scheduler_attributes_quarantine_skips () =
  let env = Framework.Env.create ~seed:37L () in
  let health =
    Framework.Health.attach
      ~config:{ fast_config with Framework.Health.triage_delay = 1.0 *. day }
      env
  in
  (* Kill one grisou rack; sweeps blame the downed nodes past the
     quarantine threshold, and the long triage delay holds them there. *)
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Pdu_failure
       (Testbed.Faults.Rack ("grisou", 0)));
  Framework.Env.run_until env (20.0 *. 60.0);
  checkb "rack nodes quarantined" true
    (Framework.Health.unhealthy_in_cluster health "grisou" > 0);
  let disk_config cluster =
    List.find_opt
      (fun c -> c.Framework.Testdef.cluster = Some cluster)
      (Framework.Testdef.expand Framework.Testdef.Disk)
  in
  (match disk_config "graphene" with
   | None -> Alcotest.fail "no graphene disk configuration"
   | Some config ->
     checkb "probe is off for an untouched cluster" false
       (Framework.Health.probe health config));
  match disk_config "grisou" with
  | None -> Alcotest.fail "no grisou disk configuration"
  | Some config ->
    checkb "probe flags the sidelined cluster" true
      (Framework.Health.probe health config)

(* ---- Site_outage drill ------------------------------------------------------ *)

let drill_config =
  {
    Framework.Health.default_config with
    Framework.Health.sweep_period = 600.0;
    triage_delay = 600.0;
    mttr_of_kind = (fun _ -> Simkit.Dist.Constant 1800.0);
    default_mttr = Simkit.Dist.Constant 1800.0;
  }

let run_drill seed =
  let env = Framework.Env.create ~seed () in
  let alerts = Monitoring.Alerts.create env.Framework.Env.collector in
  let health = Framework.Health.attach ~config:drill_config ~alerts env in
  let faults = Framework.Env.faults env in
  ignore
    (Simkit.Engine.schedule_at (Framework.Env.engine env) ~time:(2.0 *. hour)
       (fun eng ->
         ignore
           (Testbed.Faults.inject_on faults ~now:(Simkit.Engine.now eng)
              Testbed.Faults.Site_outage (Testbed.Faults.Site "nancy"))));
  Framework.Env.run_until env (3.0 *. day);
  (env, health, alerts)

let test_site_outage_drill_quarantines_and_restores () =
  let env, health, alerts = run_drill 41L in
  let nancy = Testbed.Instance.nodes_of_site env.Framework.Env.instance "nancy" in
  let hosts = List.map (fun n -> n.Testbed.Node.host) nancy in
  let events = Framework.Health.events health in
  List.iter
    (fun host ->
      checkb (host ^ " quarantined") true
        (List.exists
           (fun e ->
             e.Framework.Health.host = host
             && e.Framework.Health.to_health = Testbed.Node.Quarantined)
           events);
      checkb (host ^ " repaired") true
        (List.exists
           (fun e ->
             e.Framework.Health.host = host
             && e.Framework.Health.to_health = Testbed.Node.Repairing)
           events);
      checkb (host ^ " reverified") true
        (List.exists
           (fun e ->
             e.Framework.Health.host = host
             && e.Framework.Health.from_health = Testbed.Node.Reverifying
             && e.Framework.Health.to_health = Testbed.Node.Healthy)
           events))
    hosts;
  checkb "whole site back in service" true
    (List.for_all
       (fun n ->
         n.Testbed.Node.state = Testbed.Node.Alive && Testbed.Node.in_service n)
       nancy);
  let s = Framework.Health.summary health in
  checkb "every site node counted" true
    (s.Framework.Health.quarantined >= List.length nancy);
  checki "pipeline drained" 0 s.Framework.Health.in_quarantine_now;
  checkb "quarantine alerts fired" true
    (s.Framework.Health.alerts_fired >= List.length nancy);
  (* The healthy-fraction floor paged while the site was dark, and the
     alert resolved once the loop restored it. *)
  let floor_alerts =
    List.filter
      (fun a ->
        match a.Monitoring.Alerts.source with
        | Monitoring.Alerts.Healthy_floor "nancy" -> true
        | _ -> false)
      (Monitoring.Alerts.history alerts)
  in
  checkb "floor alert fired" true (floor_alerts <> []);
  checkb "floor alert resolved" true
    (List.for_all
       (fun a -> a.Monitoring.Alerts.resolved_at <> None)
       floor_alerts);
  checkb "no quarantine alert still firing" true
    (List.for_all
       (fun a ->
         match a.Monitoring.Alerts.source with
         | Monitoring.Alerts.Quarantine _ -> false
         | _ -> true)
       (Monitoring.Alerts.firing alerts))

let test_drill_is_deterministic () =
  let _, h1, _ = run_drill 43L in
  let _, h2, _ = run_drill 43L in
  let strip e =
    ( e.Framework.Health.at, e.Framework.Health.host,
      e.Framework.Health.from_health, e.Framework.Health.to_health )
  in
  checkb "same seed, same transition log" true
    (List.map strip (Framework.Health.events h1)
    = List.map strip (Framework.Health.events h2));
  checkb "same summary" true
    (Framework.Health.summary h1 = Framework.Health.summary h2)

(* ---- campaign integration ---------------------------------------------------- *)

let health_campaign_config =
  {
    Framework.Campaign.default_config with
    Framework.Campaign.months = 1;
    seed = 404L;
    initial_faults = 30;
    health = Some Framework.Health.default_config;
    health_faults =
      [ (5.0 *. day, Testbed.Faults.Site_outage, Testbed.Faults.Site "nancy") ];
  }

let test_campaign_with_health_loop () =
  let report = Framework.Campaign.run health_campaign_config in
  match report.Framework.Campaign.health with
  | None -> Alcotest.fail "health summary missing from report"
  | Some s ->
    checkb "site outage caused quarantines" true
      (s.Framework.Health.quarantined > 0);
    checkb "nodes were released back" true (s.Framework.Health.released > 0);
    checkb "nancy counted in the site tally" true
      (List.mem_assoc "nancy" s.Framework.Health.by_site);
    checkb "builds kept completing" true
      (report.Framework.Campaign.builds_total > 0);
    let json = Framework.Report.to_string report in
    checkb "report JSON carries the health block" true
      (contains json "\"health\"");
    checkb "scheduler stats split out quarantine skips" true
      (contains json "\"skipped_quarantined\"");
    checkb "status page shows the health section" true
      (contains report.Framework.Campaign.statuspage
         "== Node health (self-healing loop) ==")

let test_default_campaign_has_no_health_block () =
  (* Health off (the default): the report must not change shape. *)
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 1;
        seed = 13L }
  in
  checkb "no summary" true (report.Framework.Campaign.health = None);
  let json = Framework.Report.to_string report in
  checkb "no health JSON member" false (contains json "\"health\"");
  checkb "no quarantine counter" false (contains json "\"skipped_quarantined\"");
  checkb "no status page section" false
    (contains report.Framework.Campaign.statuspage "== Node health")

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "health"
    [
      ( "correlated-faults",
        [ Alcotest.test_case "site outage downs and revives" `Quick
            test_site_outage_downs_and_revives;
          Alcotest.test_case "network partition flag roundtrip" `Quick
            test_network_partition_flag_roundtrip;
          Alcotest.test_case "pdu failure downs one rack" `Quick
            test_pdu_failure_downs_one_rack ] );
      ( "decay",
        [ Alcotest.test_case "halves at half-life" `Quick
            test_decay_halves_at_half_life;
          qc prop_decay_monotone_in_dt;
          qc prop_decay_bounded ] );
      ( "state-machine",
        [ Alcotest.test_case "blame walks the state machine" `Quick
            test_blame_walks_the_state_machine;
          Alcotest.test_case "success credit releases suspect" `Quick
            test_success_credit_releases_suspect;
          Alcotest.test_case "decay alone releases suspect" `Quick
            test_decay_alone_releases_suspect;
          Alcotest.test_case "unstable blame is lighter" `Quick
            test_unstable_blame_is_lighter;
          Alcotest.test_case "persistent failure retires" `Quick
            test_persistent_failure_retires ] );
      ( "exclusion",
        [ Alcotest.test_case "oar excludes sidelined nodes" `Quick
            test_oar_excludes_sidelined_nodes;
          Alcotest.test_case "scheduler quarantine probe" `Quick
            test_scheduler_attributes_quarantine_skips ] );
      ( "drill",
        [ Alcotest.test_case "site outage quarantines and restores" `Quick
            test_site_outage_drill_quarantines_and_restores;
          Alcotest.test_case "deterministic for a given seed" `Quick
            test_drill_is_deterministic ] );
      ( "campaign",
        [ Alcotest.test_case "health loop in a live campaign" `Quick
            test_campaign_with_health_loop;
          Alcotest.test_case "no health block by default" `Quick
            test_default_campaign_has_no_health_block ] );
    ]
