(* Tests for the g5k-checks substitute: acquisition and conformity checks. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () = Testbed.Instance.build ~seed:2017L ()

let test_ohai_schema_matches_refapi () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-1.nancy" in
  let acquired = G5kchecks.Ohai.acquire node in
  let described = Option.get (Testbed.Refapi.get t.Testbed.Instance.refapi node.Testbed.Node.host) in
  (* On a healthy node the two documents are structurally identical. *)
  checkb "healthy node matches description" true (Simkit.Json.equal acquired described)

let test_ohai_acquire_key () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-1.nancy" in
  (match G5kchecks.Ohai.acquire_key node [ "hardware"; "memory"; "ram_gb" ] with
   | Some (Simkit.Json.Int ram) -> checki "ram read" 128 ram
   | _ -> Alcotest.fail "expected ram_gb");
  checkb "missing path" true (G5kchecks.Ohai.acquire_key node [ "nope" ] = None)

let test_check_healthy_node_conforms () =
  let t = mk () in
  let node = Testbed.Instance.node t "graphene-1.nancy" in
  let report = G5kchecks.Check.run t node in
  checkb "conforms" true (G5kchecks.Check.conforms report);
  checkb "no severity" true (G5kchecks.Check.worst_severity report = None)

let test_check_detects_cpu_drift () =
  let t = mk () in
  let faults = t.Testbed.Instance.faults in
  let host = "graphene-2.nancy" in
  ignore
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Cpu_cstates
       (Testbed.Faults.Host host));
  let report = G5kchecks.Check.run t (Testbed.Instance.node t host) in
  checkb "mismatch found" false (G5kchecks.Check.conforms report);
  checkb "classified perf-affecting" true
    (G5kchecks.Check.worst_severity report = Some G5kchecks.Check.Perf_affecting);
  checkb "path names the setting" true
    (List.exists
       (fun m ->
         let p = m.G5kchecks.Check.path in
         String.length p >= 8 && String.sub p 0 8 = "hardware")
       report.G5kchecks.Check.mismatches)

let test_check_detects_ram_loss () =
  let t = mk () in
  let faults = t.Testbed.Instance.faults in
  let host = "ecotype-2.nantes" in
  ignore
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Ram_dimm_loss
       (Testbed.Faults.Host host));
  let report = G5kchecks.Check.run t (Testbed.Instance.node t host) in
  checkb "capacity severity" true
    (G5kchecks.Check.worst_severity report = Some G5kchecks.Check.Capacity)

let test_check_detects_description_error () =
  let t = mk () in
  let host = "taurus-1.lyon" in
  let rng = Simkit.Prng.create 99L in
  ignore (Testbed.Refapi.corrupt t.Testbed.Instance.refapi ~rng ~host);
  let report = G5kchecks.Check.run t (Testbed.Instance.node t host) in
  checkb "description error detected" false (G5kchecks.Check.conforms report)

let test_check_detects_disk_faults () =
  let t = mk () in
  let faults = t.Testbed.Instance.faults in
  let host = "parasilo-2.rennes" in
  ignore
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Disk_write_cache
       (Testbed.Faults.Host host));
  let report = G5kchecks.Check.run t (Testbed.Instance.node t host) in
  checkb "write cache drift is perf-affecting" true
    (G5kchecks.Check.worst_severity report = Some G5kchecks.Check.Perf_affecting)

let test_check_missing_document () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-1.nancy" in
  let orphan = { node with Testbed.Node.host = "ghost.nancy" } in
  let report = G5kchecks.Check.run t orphan in
  checkb "missing doc is a mismatch" false (G5kchecks.Check.conforms report)

let test_run_cluster_sweep () =
  let t = mk () in
  let faults = t.Testbed.Instance.faults in
  ignore
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Bios_drift
       (Testbed.Faults.Host "graphene-7.nancy"));
  (* A Down node is skipped by the boot-time sweep. *)
  (Testbed.Instance.node t "graphene-9.nancy").Testbed.Node.state <- Testbed.Node.Down;
  let reports = G5kchecks.Check.run_cluster t "graphene" in
  checki "59 alive nodes checked" 59 (List.length reports);
  let non_conforming = List.filter (fun r -> not (G5kchecks.Check.conforms r)) reports in
  checki "exactly the drifted node" 1 (List.length non_conforming);
  Alcotest.(check string)
    "right host" "graphene-7.nancy"
    (List.hd non_conforming).G5kchecks.Check.host

let prop_detects_every_node_drift_kind =
  (* g5k-checks must catch every node-local hardware/description drift
     the fault engine can produce. *)
  let kinds =
    [| Testbed.Faults.Cpu_cstates; Testbed.Faults.Cpu_hyperthreading;
       Testbed.Faults.Cpu_turbo; Testbed.Faults.Cpu_governor;
       Testbed.Faults.Bios_drift; Testbed.Faults.Disk_firmware;
       Testbed.Faults.Disk_write_cache; Testbed.Faults.Ram_dimm_loss;
       Testbed.Faults.Refapi_desync |]
  in
  QCheck.Test.make ~name:"g5k-checks catches all drift kinds" ~count:50
    QCheck.(pair (int_bound (Array.length kinds - 1)) (int_bound 893))
    (fun (kind_idx, node_idx) ->
      let t = Testbed.Instance.build ~seed:4242L () in
      let node = t.Testbed.Instance.nodes.(node_idx) in
      let kind = kinds.(kind_idx) in
      match
        Testbed.Faults.inject_on t.Testbed.Instance.faults ~now:0.0 kind
          (Testbed.Faults.Host node.Testbed.Node.host)
      with
      | None -> QCheck.assume_fail ()  (* e.g. single-DIMM node for Ram_dimm_loss *)
      | Some _ -> not (G5kchecks.Check.conforms (G5kchecks.Check.run t node)))

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "g5kchecks"
    [
      ( "ohai",
        [ Alcotest.test_case "schema matches refapi" `Quick test_ohai_schema_matches_refapi;
          Alcotest.test_case "acquire key" `Quick test_ohai_acquire_key ] );
      ( "check",
        [ Alcotest.test_case "healthy conforms" `Quick test_check_healthy_node_conforms;
          Alcotest.test_case "cpu drift" `Quick test_check_detects_cpu_drift;
          Alcotest.test_case "ram loss" `Quick test_check_detects_ram_loss;
          Alcotest.test_case "description error" `Quick
            test_check_detects_description_error;
          Alcotest.test_case "disk faults" `Quick test_check_detects_disk_faults;
          Alcotest.test_case "missing document" `Quick test_check_missing_document;
          Alcotest.test_case "cluster sweep" `Quick test_run_cluster_sweep;
          qc prop_detects_every_node_drift_kind ] );
    ]
