(* Focused tests for the status page views and the campaign's regression
   integration. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let mk () =
  let env = Framework.Env.create ~seed:6001L () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  (env, page)

let run_build env family axes =
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci (Framework.Jobs.job_name family)
       ~axes:[ axes ]);
  Framework.Env.run_until env (Framework.Env.now env +. (4.0 *. Simkit.Calendar.hour))

(* ---- cell semantics --------------------------------------------------------- *)

let test_cells_default_missing () =
  let _, page = mk () in
  List.iter
    (fun family ->
      checkb "missing before any run" true
        (Framework.Statuspage.latest page ~family ~scope:"graphene"
         = Framework.Statuspage.Missing))
    Framework.Testdef.all_families

let test_latest_overwrites () =
  let env, page = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cpu_turbo (Testbed.Faults.Host "nyx-1.luxembourg"));
  run_build env Framework.Testdef.Refapi [ ("cluster", "nyx") ];
  checkb "red after the failing run" true
    (Framework.Statuspage.latest page ~family:Framework.Testdef.Refapi ~scope:"nyx"
     = Framework.Statuspage.Ko);
  (* Fix and re-run: the cell turns green — the paper's test-driven
     operations loop at the page level. *)
  let fault = List.hd (Testbed.Faults.history (Framework.Env.faults env)) in
  Testbed.Faults.repair (Framework.Env.faults env) ~now:(Framework.Env.now env) fault;
  run_build env Framework.Testdef.Refapi [ ("cluster", "nyx") ];
  checkb "green after repair" true
    (Framework.Statuspage.latest page ~family:Framework.Testdef.Refapi ~scope:"nyx"
     = Framework.Statuspage.Ok_)

let test_site_rollup_worst_of () =
  let env, page = mk () in
  (* Two luxembourg clusters: one green, one red -> site cell red. *)
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cpu_turbo (Testbed.Faults.Host "granduc-1.luxembourg"));
  run_build env Framework.Testdef.Refapi [ ("cluster", "nyx") ];
  run_build env Framework.Testdef.Refapi [ ("cluster", "granduc") ];
  checkb "nyx green" true
    (Framework.Statuspage.latest page ~family:Framework.Testdef.Refapi ~scope:"nyx"
     = Framework.Statuspage.Ok_);
  checkb "site shows the worst cluster" true
    (Framework.Statuspage.site_status page ~family:Framework.Testdef.Refapi
       ~site:"luxembourg"
     = Framework.Statuspage.Ko)

let test_summary_rows_accumulate () =
  let env, page = mk () in
  run_build env Framework.Testdef.Oarstate [ ("site", "lyon") ];
  run_build env Framework.Testdef.Oarstate [ ("site", "nancy") ];
  match
    List.find_opt (fun (name, _, _, _, _) -> name = "oarstate")
      (Framework.Statuspage.summary_rows page)
  with
  | Some (_, ok, ko, unstable, ratio) ->
    checki "two ok" 2 ok;
    checki "no ko" 0 ko;
    checki "no unstable" 0 unstable;
    Alcotest.(check (float 1e-9)) "ratio" 1.0 ratio
  | None -> Alcotest.fail "oarstate row missing"

let test_per_cluster_matrix_renders () =
  let env, page = mk () in
  run_build env Framework.Testdef.Refapi [ ("cluster", "grisou") ];
  let matrix = Framework.Statuspage.per_cluster_matrix page ~site:"nancy" in
  checkb "mentions grisou" true (contains matrix "grisou");
  checkb "mentions refapi" true (contains matrix "refapi");
  (* Site-scoped families (oarstate, cmdline...) are excluded from the
     per-cluster view. *)
  checkb "no oarstate row" false (contains matrix "oarstate")

let test_overview_includes_weather () =
  let env, page = mk () in
  run_build env Framework.Testdef.Sidapi [ ("site", "rennes") ];
  let overview = Framework.Statuspage.render_overview page in
  checkb "weather section" true (contains overview "weather");
  checkb "history section" true (contains overview "History")

(* ---- empty-page placeholders ------------------------------------------------ *)

let test_empty_page_no_nan () =
  let _, page = mk () in
  Alcotest.(check string) "nan ratio renders as the Missing placeholder" "--"
    (Framework.Statuspage.fmt_ratio nan);
  let overview = Framework.Statuspage.render_overview page in
  (* "nan" alone would match the site name nancy; the float artifact the
     placeholder replaces renders as "nan%". *)
  checkb "empty page never leaks a nan ratio" false (contains overview "nan%");
  checkb "overall ratio shows the placeholder" true (contains overview "--")

(* ---- monthly series order determinism ---------------------------------------- *)

let mk_build ~number ~finished_at result =
  { Ci.Build.job_name = Framework.Jobs.job_name Framework.Testdef.Refapi;
    number;
    axes = [ ("cluster", "graphene") ];
    cause = "test";
    retry_of = None;
    queued_at = finished_at;
    started_at = Some finished_at;
    finished_at = Some finished_at;
    result = Some result;
    log = [];
    artifacts = [];
    touched_hosts = [];
  }

let prop_monthly_success_order_independent =
  QCheck.Test.make ~count:100
    ~name:"monthly_success is sorted and insertion-order independent"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_bound 11))
    (fun months ->
      let feed order =
        let env = Framework.Env.create ~seed:6010L () in
        let page = Framework.Statuspage.create env in
        List.iteri
          (fun i month ->
            Framework.Statuspage.apply page
              (mk_build ~number:(i + 1)
                 ~finished_at:
                   ((float_of_int month +. 0.5) *. Simkit.Calendar.month)
                 (if month mod 3 = 0 then Ci.Build.Failure else Ci.Build.Success)))
          order;
        Framework.Statuspage.monthly_success page
      in
      let shuffled = feed months
      and sorted = feed (List.sort Int.compare months) in
      let ascending rows =
        let ms = List.map (fun (m, _, _, _) -> m) rows in
        List.sort Int.compare ms = ms
      in
      ascending shuffled && shuffled = sorted)

(* ---- campaign regression integration -------------------------------------------- *)

let test_campaign_with_regression_jobs () =
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 6002L;
        workload = None;
        enable_regression = true;
      }
  in
  (* Nightly regression builds add to the total (4 jobs x ~30 nights),
     beyond what the catalog scheduler triggers. *)
  checkb "campaign ran" true (report.Framework.Campaign.builds_total > 0);
  let without =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 6002L;
        workload = None;
        enable_regression = false;
      }
  in
  checkb "regression adds ~120 nightly builds" true
    (report.Framework.Campaign.builds_total
     - without.Framework.Campaign.builds_total
     >= 100)

let () =
  Alcotest.run "statuspage"
    [
      ( "cells",
        [ Alcotest.test_case "default missing" `Quick test_cells_default_missing;
          Alcotest.test_case "latest overwrites" `Quick test_latest_overwrites;
          Alcotest.test_case "site rollup" `Quick test_site_rollup_worst_of;
          Alcotest.test_case "summary rows" `Quick test_summary_rows_accumulate;
          Alcotest.test_case "per-cluster matrix" `Quick test_per_cluster_matrix_renders;
          Alcotest.test_case "overview sections" `Quick test_overview_includes_weather ] );
      ( "placeholders",
        [ Alcotest.test_case "empty page shows -- not nan" `Quick
            test_empty_page_no_nan;
          Qc.to_alcotest prop_monthly_success_order_independent ] );
      ( "campaign",
        [ Alcotest.test_case "regression jobs nightly" `Slow
            test_campaign_with_regression_jobs ] );
    ]
