(* Tests for the testbed model: inventory, hardware, nodes, network,
   services, reference API and fault injection. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let build () = Testbed.Instance.build ~seed:123L ()

(* ---- Inventory: the paper's fixed constants ------------------------------- *)

let test_inventory_totals () =
  checki "sites" 8 (List.length Testbed.Inventory.sites);
  checki "clusters" 32 (List.length Testbed.Inventory.clusters);
  checki "nodes" 894 Testbed.Inventory.total_nodes;
  checki "cores" 8490 Testbed.Inventory.total_cores

let test_inventory_family_cardinalities () =
  let dell =
    List.filter
      (fun c -> c.Testbed.Inventory.vendor = Testbed.Hardware.Dell)
      Testbed.Inventory.clusters
  in
  let ib = List.filter (fun c -> c.Testbed.Inventory.has_ib) Testbed.Inventory.clusters in
  checki "18 Dell clusters (dellbios)" 18 (List.length dell);
  checki "10 InfiniBand clusters (mpigraph)" 10 (List.length ib);
  checki "6 wattmeter sites (kwapi)" 6 (List.length Testbed.Inventory.wattmeter_sites)

let test_inventory_consistency () =
  List.iter
    (fun spec ->
      checkb "site exists" true (List.mem spec.Testbed.Inventory.site Testbed.Inventory.sites);
      checkb "positive nodes" true (spec.Testbed.Inventory.nodes > 0);
      checkb "positive cores" true
        (spec.Testbed.Inventory.cpus * spec.Testbed.Inventory.cores_per_cpu > 0))
    Testbed.Inventory.clusters;
  (* Cluster names unique. *)
  let names = List.map (fun c -> c.Testbed.Inventory.cluster) Testbed.Inventory.clusters in
  checki "unique names" (List.length names) (List.length (List.sort_uniq compare names))

let test_inventory_lookup () =
  (match Testbed.Inventory.find_cluster "graphene" with
   | Some spec -> checks "site of graphene" "nancy" spec.Testbed.Inventory.site
   | None -> Alcotest.fail "graphene missing");
  checkb "unknown cluster" true (Testbed.Inventory.find_cluster "nosuch" = None);
  checki "nancy clusters" 8 (List.length (Testbed.Inventory.clusters_of_site "nancy"))

let test_age_factor_monotone () =
  let old_spec = Option.get (Testbed.Inventory.find_cluster "sagittaire") in
  let new_spec = Option.get (Testbed.Inventory.find_cluster "grele") in
  checkb "older hardware more fault-prone" true
    (Testbed.Inventory.age_factor old_spec > Testbed.Inventory.age_factor new_spec)

(* ---- Hardware -------------------------------------------------------------- *)

let test_hardware_perf_factors () =
  let base = Testbed.Hardware.default_settings in
  Alcotest.(check (float 1e-9))
    "mandated settings are the baseline" 1.0
    (Testbed.Hardware.cpu_perf_factor base);
  checkb "c-states cost performance" true
    (Testbed.Hardware.cpu_perf_factor { base with Testbed.Hardware.c_states = true } < 1.0);
  checkb "turbo inflates performance" true
    (Testbed.Hardware.cpu_perf_factor { base with Testbed.Hardware.turbo_boost = true } > 1.0)

let sample_disk =
  {
    Testbed.Hardware.disk_model = "test";
    size_gb = 100;
    firmware = "F1";
    write_cache = true;
    read_cache = true;
    nominal_mb_s = 100.0;
  }

let test_hardware_disk_bandwidth () =
  Alcotest.(check (float 1e-9)) "healthy disk at nominal" 100.0
    (Testbed.Hardware.disk_bandwidth sample_disk);
  checkb "write cache off cuts bandwidth" true
    (Testbed.Hardware.disk_bandwidth { sample_disk with Testbed.Hardware.write_cache = false }
     < 60.0);
  checkb "old firmware cuts bandwidth" true
    (Testbed.Hardware.disk_bandwidth { sample_disk with Testbed.Hardware.firmware = "~old-F1" }
     < 90.0)

let test_hardware_json_roundtrip_equal () =
  let spec = List.hd Testbed.Inventory.clusters in
  let hw = Testbed.Inventory.node_hardware spec in
  checkb "equal to itself via json" true (Testbed.Hardware.equal hw hw);
  let doc = Testbed.Hardware.to_json hw in
  match Simkit.Json.of_string (Simkit.Json.to_string doc) with
  | Ok parsed -> checkb "wire roundtrip" true (Simkit.Json.equal parsed doc)
  | Error e -> Alcotest.fail e

(* ---- Instance and nodes ----------------------------------------------------- *)

let test_instance_population () =
  let t = build () in
  checki "894 nodes" 894 (Array.length t.Testbed.Instance.nodes);
  checks "summary line" "8 sites, 32 clusters, 894 nodes, 8490 cores"
    (Format.asprintf "%a" Testbed.Instance.pp_summary t)

let test_instance_node_lookup () =
  let t = build () in
  let node = Testbed.Instance.node t "graphene-1.nancy" in
  checks "cluster" "graphene" node.Testbed.Node.cluster_name;
  checki "index" 1 node.Testbed.Node.index;
  checkb "unknown host" true (Testbed.Instance.find_node t "nosuch.nancy" = None);
  checki "graphene node count" 60
    (List.length (Testbed.Instance.nodes_of_cluster t "graphene"))

let test_nodes_start_healthy () =
  let t = build () in
  Array.iter
    (fun node ->
      checkb "alive" true (node.Testbed.Node.state = Testbed.Node.Alive);
      checkb "conforms" true
        (Testbed.Hardware.equal node.Testbed.Node.reference node.Testbed.Node.actual);
      checks "std env" "std" node.Testbed.Node.deployed_env;
      checki "default vlan" 0 node.Testbed.Node.vlan)
    t.Testbed.Instance.nodes

let test_node_boot_duration_reasonable () =
  let t = build () in
  let node = Testbed.Instance.node t "graphene-1.nancy" in
  for _ = 1 to 100 do
    let d = Testbed.Node.boot_duration node in
    checkb "boot in [30, 600] s when healthy" true (d >= 30.0 && d <= 600.0)
  done

let test_node_boot_race_delays () =
  let t = build () in
  let node = Testbed.Instance.node t "graphene-2.nancy" in
  node.Testbed.Node.behaviour.Testbed.Node.boot_race <- true;
  let slow = ref 0 in
  for _ = 1 to 300 do
    if Testbed.Node.boot_duration node > 400.0 then incr slow
  done;
  checkb "boot race produces long delays" true (!slow > 10)

let test_node_reboot_cycle () =
  let t = build () in
  let node = Testbed.Instance.node t "grisou-1.nancy" in
  let completed = ref None in
  Testbed.Instance.reboot t node ~on_done:(fun ~ok -> completed := Some ok);
  checkb "rebooting state" true (node.Testbed.Node.state = Testbed.Node.Rebooting);
  checkb "not available while rebooting" false (Testbed.Node.is_available node);
  Simkit.Engine.run_until t.Testbed.Instance.engine 3600.0;
  (match !completed with
   | Some true -> checkb "alive again" true (node.Testbed.Node.state = Testbed.Node.Alive)
   | Some false ->
     checkb "down after failed boot" true (node.Testbed.Node.state = Testbed.Node.Down)
   | None -> Alcotest.fail "reboot never completed");
  checkb "boot counted" true (node.Testbed.Node.boot_count >= 1)

let test_node_cpu_benchmark_sensitive_to_drift () =
  let t = build () in
  let node = Testbed.Instance.node t "grisou-2.nancy" in
  let healthy =
    List.init 20 (fun _ -> Testbed.Node.cpu_benchmark node) |> List.fold_left ( +. ) 0.0
  in
  let hw = node.Testbed.Node.actual in
  node.Testbed.Node.actual <-
    { hw with
      Testbed.Hardware.settings =
        { hw.Testbed.Hardware.settings with Testbed.Hardware.c_states = true } };
  let drifted =
    List.init 20 (fun _ -> Testbed.Node.cpu_benchmark node) |> List.fold_left ( +. ) 0.0
  in
  checkb "c-states drift lowers measured performance" true (drifted < healthy *. 0.98)

let test_random_reboot_process () =
  let t = build () in
  let node = Testbed.Instance.node t "helios-1.sophia" in
  node.Testbed.Node.behaviour.Testbed.Node.random_reboot_mtbf <- Some 3600.0;
  Simkit.Engine.run_until t.Testbed.Instance.engine (48.0 *. 3600.0);
  checkb "spontaneous reboots observed" true (node.Testbed.Node.unexpected_reboots > 0)

(* ---- Network ----------------------------------------------------------------- *)

let test_network_cabling_initially_consistent () =
  let t = build () in
  checki "no miswired host" 0
    (List.length (Testbed.Network.miswired_hosts t.Testbed.Instance.network))

let test_network_swap_and_repair () =
  let t = build () in
  let net = t.Testbed.Instance.network in
  Testbed.Network.swap_cables net "grisou-1.nancy" "grisou-2.nancy";
  checkb "a inconsistent" false (Testbed.Network.cabling_consistent net "grisou-1.nancy");
  checkb "b inconsistent" false (Testbed.Network.cabling_consistent net "grisou-2.nancy");
  checki "two miswired" 2 (List.length (Testbed.Network.miswired_hosts net));
  Testbed.Network.repair_host net "grisou-1.nancy";
  Testbed.Network.repair_host net "grisou-2.nancy";
  checki "repaired" 0 (List.length (Testbed.Network.miswired_hosts net))

let test_network_swap_self_noop () =
  let t = build () in
  Testbed.Network.swap_cables t.Testbed.Instance.network "grisou-1.nancy" "grisou-1.nancy";
  checkb "self swap harmless" true
    (Testbed.Network.cabling_consistent t.Testbed.Instance.network "grisou-1.nancy")

let test_network_latency_hierarchy () =
  let t = build () in
  let net = t.Testbed.Instance.network in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let b = Testbed.Instance.node t "grisou-2.nancy" in
  let d = Testbed.Instance.node t "helios-1.sophia" in
  let same_switch = Testbed.Network.latency_ms net a b in
  let cross_site = Testbed.Network.latency_ms net a d in
  checkb "LAN below WAN" true (same_switch < cross_site);
  checkb "WAN latency ~10ms" true (cross_site > 5.0 && cross_site < 20.0)

let test_network_bandwidth_limits () =
  let t = build () in
  let net = t.Testbed.Instance.network in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let b = Testbed.Instance.node t "grisou-2.nancy" in
  let d = Testbed.Instance.node t "ecotype-1.nantes" in
  let local = Testbed.Network.bandwidth_gbps net a b in
  checkb "10G NICs near line rate locally" true (local > 9.0 && local <= 10.0);
  let wan = Testbed.Network.bandwidth_gbps net a d in
  checkb "backbone caps cross-site traffic" true (wan <= Testbed.Network.backbone_gbps net)

(* ---- Services ------------------------------------------------------------------ *)

let test_services_lifecycle () =
  let t = build () in
  let services = t.Testbed.Instance.services in
  checkb "starts up" true
    (Testbed.Services.state services ~site:"nancy" Testbed.Services.Oar = Testbed.Services.Up);
  checkb "usable when up" true (Testbed.Services.use services ~site:"nancy" Testbed.Services.Oar);
  Testbed.Services.set_state services ~site:"nancy" Testbed.Services.Oar Testbed.Services.Down;
  checkb "unusable when down" false
    (Testbed.Services.use services ~site:"nancy" Testbed.Services.Oar);
  checki "one degraded instance listed" 1
    (List.length (Testbed.Services.degraded_or_down services));
  Testbed.Services.repair services ~site:"nancy" Testbed.Services.Oar;
  checki "repair clears" 0 (List.length (Testbed.Services.degraded_or_down services))

let test_services_degraded_flaky () =
  let t = build () in
  let services = t.Testbed.Instance.services in
  Testbed.Services.set_state services ~site:"lyon" Testbed.Services.Api
    Testbed.Services.Degraded;
  let failures = ref 0 in
  for _ = 1 to 200 do
    if not (Testbed.Services.use services ~site:"lyon" Testbed.Services.Api) then incr failures
  done;
  checkb "degraded fails sometimes" true (!failures > 20 && !failures < 180)

(* ---- Reference API --------------------------------------------------------------- *)

let test_refapi_publication () =
  let t = build () in
  let api = t.Testbed.Instance.refapi in
  checki "all hosts published" 894 (List.length (Testbed.Refapi.hosts api));
  checki "version 1 after build" 1 (Testbed.Refapi.version api);
  match Testbed.Refapi.get api "graphene-1.nancy" with
  | Some doc ->
    Alcotest.(check (option string))
      "uid" (Some "graphene-1.nancy")
      (Simkit.Json.string_member "uid" doc)
  | None -> Alcotest.fail "missing document"

let test_refapi_snapshot_archive () =
  let t = build () in
  let api = t.Testbed.Instance.refapi in
  Testbed.Refapi.publish_all api ~now:100.0 (Array.to_list t.Testbed.Instance.nodes);
  checki "version bumped" 2 (Testbed.Refapi.version api);
  (match Testbed.Refapi.snapshot api 1 with
   | Some (time, docs) ->
     Alcotest.(check (float 1e-9)) "archive time" 0.0 time;
     checki "archive size" 894 (List.length docs)
   | None -> Alcotest.fail "missing snapshot 1");
  checkb "unknown snapshot" true (Testbed.Refapi.snapshot api 99 = None)

let test_refapi_corrupt_detectable () =
  let t = build () in
  let api = t.Testbed.Instance.refapi in
  let host = "grisou-1.nancy" in
  let before = Option.get (Testbed.Refapi.get api host) in
  let rng = Simkit.Prng.create 5L in
  (match Testbed.Refapi.corrupt api ~rng ~host with
   | Some _ -> ()
   | None -> Alcotest.fail "corrupt failed");
  let after = Option.get (Testbed.Refapi.get api host) in
  checkb "document changed" false (Simkit.Json.equal before after);
  checkb "diff pinpoints the change" true (List.length (Simkit.Json.diff before after) >= 1)

(* ---- Faults ------------------------------------------------------------------------ *)

let test_fault_catalogue_strings () =
  checki "25 kinds" 25 (List.length Testbed.Faults.all_kinds);
  let strings = List.map Testbed.Faults.kind_to_string Testbed.Faults.all_kinds in
  checki "distinct strings" 25 (List.length (List.sort_uniq compare strings));
  List.iter
    (fun k -> checkb "category non-empty" true (String.length (Testbed.Faults.category k) > 0))
    Testbed.Faults.all_kinds

let test_fault_inject_cpu_and_repair () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let host = "grisou-3.nancy" in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:10.0 Testbed.Faults.Cpu_cstates
         (Testbed.Faults.Host host))
  in
  let node = Testbed.Instance.node t host in
  checkb "c-states drifted" true
    node.Testbed.Node.actual.Testbed.Hardware.settings.Testbed.Hardware.c_states;
  checki "one active" 1 (List.length (Testbed.Faults.active faults));
  checki "active on host" 1 (List.length (Testbed.Faults.active_on_host faults host));
  Testbed.Faults.repair faults ~now:20.0 fault;
  checkb "reverted" false
    node.Testbed.Node.actual.Testbed.Hardware.settings.Testbed.Hardware.c_states;
  checki "none active" 0 (List.length (Testbed.Faults.active faults));
  checki "history keeps it" 1 (List.length (Testbed.Faults.history faults))

let test_fault_ram_loss_and_repair () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let host = "ecotype-1.nantes" in
  let node = Testbed.Instance.node t host in
  let before = node.Testbed.Node.actual.Testbed.Hardware.memory.Testbed.Hardware.ram_gb in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Ram_dimm_loss
         (Testbed.Faults.Host host))
  in
  let after = node.Testbed.Node.actual.Testbed.Hardware.memory.Testbed.Hardware.ram_gb in
  checkb "ram reduced" true (after < before);
  Testbed.Faults.repair faults ~now:1.0 fault;
  checki "ram restored" before
    node.Testbed.Node.actual.Testbed.Hardware.memory.Testbed.Hardware.ram_gb

let test_fault_cabling_pair () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Cabling_swap
         (Testbed.Faults.Host_pair ("grisou-1.nancy", "grisou-2.nancy")))
  in
  checkb "miswired" false
    (Testbed.Network.cabling_consistent t.Testbed.Instance.network "grisou-1.nancy");
  Testbed.Faults.repair faults ~now:1.0 fault;
  checkb "rewired" true
    (Testbed.Network.cabling_consistent t.Testbed.Instance.network "grisou-1.nancy")

let test_fault_cluster_wide () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Kernel_boot_race
         (Testbed.Faults.Cluster "graphene"))
  in
  let nodes = Testbed.Instance.nodes_of_cluster t "graphene" in
  checkb "all nodes racy" true
    (List.for_all (fun n -> n.Testbed.Node.behaviour.Testbed.Node.boot_race) nodes);
  checkb "fault listed on member host" true
    (List.length (Testbed.Faults.active_on_host faults "graphene-5.nancy") = 1);
  Testbed.Faults.repair faults ~now:1.0 fault;
  checkb "cleared" true
    (List.for_all (fun n -> not n.Testbed.Node.behaviour.Testbed.Node.boot_race) nodes)

let test_fault_ofed_targets_ib () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let rec observe tries acc =
    if tries = 0 then acc
    else
      match Testbed.Faults.inject faults ~now:0.0 Testbed.Faults.Ofed_flaky with
      | Some f -> (
        match f.Testbed.Faults.target with
        | Testbed.Faults.Cluster c -> observe (tries - 1) (c :: acc)
        | _ -> observe (tries - 1) acc)
      | None -> observe (tries - 1) acc
  in
  let clusters = observe 10 [] in
  checkb "some injections landed" true (clusters <> []);
  List.iter
    (fun c ->
      match Testbed.Inventory.find_cluster c with
      | Some spec -> checkb "IB cluster targeted" true spec.Testbed.Inventory.has_ib
      | None -> Alcotest.fail "unknown cluster")
    clusters

let test_fault_service_outage () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Service_outage
         (Testbed.Faults.Site_service ("lyon", Testbed.Services.Console)))
  in
  checkb "console down" true
    (Testbed.Services.state t.Testbed.Instance.services ~site:"lyon" Testbed.Services.Console
     = Testbed.Services.Down);
  Testbed.Faults.repair faults ~now:1.0 fault;
  checkb "console back" true
    (Testbed.Services.state t.Testbed.Instance.services ~site:"lyon" Testbed.Services.Console
     = Testbed.Services.Up)

let test_fault_detection_marking () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Disk_write_cache
         (Testbed.Faults.Host "parasilo-1.rennes"))
  in
  checkb "initially undetected" true (fault.Testbed.Faults.detected_at = None);
  Testbed.Faults.mark_detected faults ~now:50.0 fault;
  Testbed.Faults.mark_detected faults ~now:90.0 fault;
  Alcotest.(check (option (float 1e-9)))
    "earliest detection kept" (Some 50.0) fault.Testbed.Faults.detected_at

let test_fault_repair_idempotent () =
  let t = build () in
  let faults = t.Testbed.Instance.faults in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Cpu_turbo
         (Testbed.Faults.Host "taurus-1.lyon"))
  in
  Testbed.Faults.repair faults ~now:5.0 fault;
  Testbed.Faults.repair faults ~now:9.0 fault;
  Alcotest.(check (option (float 1e-9)))
    "first repair time kept" (Some 5.0) fault.Testbed.Faults.repaired_at

let prop_random_injection_recorded =
  QCheck.Test.make ~name:"random injections are recorded and repairable" ~count:20
    QCheck.(int_bound 1000)
    (fun seed ->
      let t = Testbed.Instance.build ~seed:(Int64.of_int (seed + 1)) () in
      let faults = t.Testbed.Instance.faults in
      let injected =
        List.filter_map
          (fun kind -> Testbed.Faults.inject faults ~now:0.0 kind)
          Testbed.Faults.all_kinds
      in
      List.iter (fun f -> Testbed.Faults.repair faults ~now:1.0 f) injected;
      Testbed.Faults.active faults = []
      && List.length (Testbed.Faults.history faults) = List.length injected)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "testbed"
    [
      ( "inventory",
        [ Alcotest.test_case "paper totals" `Quick test_inventory_totals;
          Alcotest.test_case "family cardinalities" `Quick
            test_inventory_family_cardinalities;
          Alcotest.test_case "consistency" `Quick test_inventory_consistency;
          Alcotest.test_case "lookup" `Quick test_inventory_lookup;
          Alcotest.test_case "age factor" `Quick test_age_factor_monotone ] );
      ( "hardware",
        [ Alcotest.test_case "perf factors" `Quick test_hardware_perf_factors;
          Alcotest.test_case "disk bandwidth" `Quick test_hardware_disk_bandwidth;
          Alcotest.test_case "json roundtrip" `Quick test_hardware_json_roundtrip_equal ] );
      ( "node",
        [ Alcotest.test_case "population" `Quick test_instance_population;
          Alcotest.test_case "lookup" `Quick test_instance_node_lookup;
          Alcotest.test_case "starts healthy" `Quick test_nodes_start_healthy;
          Alcotest.test_case "boot duration" `Quick test_node_boot_duration_reasonable;
          Alcotest.test_case "boot race delays" `Quick test_node_boot_race_delays;
          Alcotest.test_case "reboot cycle" `Quick test_node_reboot_cycle;
          Alcotest.test_case "cpu benchmark drift" `Quick
            test_node_cpu_benchmark_sensitive_to_drift;
          Alcotest.test_case "random reboot process" `Quick test_random_reboot_process ] );
      ( "network",
        [ Alcotest.test_case "initially consistent" `Quick
            test_network_cabling_initially_consistent;
          Alcotest.test_case "swap and repair" `Quick test_network_swap_and_repair;
          Alcotest.test_case "self swap" `Quick test_network_swap_self_noop;
          Alcotest.test_case "latency hierarchy" `Quick test_network_latency_hierarchy;
          Alcotest.test_case "bandwidth limits" `Quick test_network_bandwidth_limits ] );
      ( "services",
        [ Alcotest.test_case "lifecycle" `Quick test_services_lifecycle;
          Alcotest.test_case "degraded flaky" `Quick test_services_degraded_flaky ] );
      ( "refapi",
        [ Alcotest.test_case "publication" `Quick test_refapi_publication;
          Alcotest.test_case "snapshot archive" `Quick test_refapi_snapshot_archive;
          Alcotest.test_case "corruption detectable" `Quick test_refapi_corrupt_detectable ] );
      ( "faults",
        [ Alcotest.test_case "catalogue" `Quick test_fault_catalogue_strings;
          Alcotest.test_case "cpu drift + repair" `Quick test_fault_inject_cpu_and_repair;
          Alcotest.test_case "ram loss + repair" `Quick test_fault_ram_loss_and_repair;
          Alcotest.test_case "cabling pair" `Quick test_fault_cabling_pair;
          Alcotest.test_case "cluster wide" `Quick test_fault_cluster_wide;
          Alcotest.test_case "ofed targets ib" `Quick test_fault_ofed_targets_ib;
          Alcotest.test_case "service outage" `Quick test_fault_service_outage;
          Alcotest.test_case "detection marking" `Quick test_fault_detection_marking;
          Alcotest.test_case "repair idempotent" `Quick test_fault_repair_idempotent;
          qc prop_random_injection_recorded ] );
    ]
