(* Completion of the per-family fault-detection matrix: every test family
   is shown to catch the fault classes it exists for (complementing
   test_framework's cases), plus cross-family interactions. *)

let checkb = Alcotest.(check bool)

let mk () = Framework.Env.create ~seed:9001L ()

let run_script env config =
  let build =
    {
      Ci.Build.job_name = Framework.Jobs.job_name config.Framework.Testdef.family;
      number = 1;
      axes = Framework.Testdef.axes_of_config config;
      cause = "test";
      retry_of = None;
      queued_at = Framework.Env.now env;
      started_at = Some (Framework.Env.now env);
      finished_at = None;
      result = None;
      log = [];
      artifacts = [];
      touched_hosts = [];
    }
  in
  let outcome = ref None in
  Framework.Scripts.run env config ~build ~finish:(fun o -> outcome := Some o);
  Simkit.Engine.run_until (Framework.Env.engine env)
    (Framework.Env.now env +. (6.0 *. Simkit.Calendar.hour));
  match !outcome with Some o -> o | None -> Alcotest.fail "script never finished"

let config_exn family ~id =
  match
    List.find_opt
      (fun c -> String.equal c.Framework.Testdef.config_id id)
      (Framework.Testdef.expand family)
  with
  | Some c -> c
  | None -> Alcotest.failf "no config %s" id

let result_of env family ~id = (run_script env (config_exn family ~id)).Framework.Scripts.result

(* ---- stdenv: kernel boot race shows up as slow boots ------------------------- *)

let test_stdenv_catches_boot_race () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Kernel_boot_race (Testbed.Faults.Cluster "sagittaire"));
  (* The delay tail is probabilistic (30% per boot): repeat until caught. *)
  let caught = ref false in
  for _ = 1 to 12 do
    if (not !caught)
       && result_of env Framework.Testdef.Stdenv ~id:"stdenv:sagittaire"
          = Ci.Build.Failure
    then caught := true
  done;
  checkb "slow boots eventually flagged" true !caught

(* ---- multireboot: random reboots lose nodes ------------------------------------ *)

let test_multireboot_catches_random_reboots () =
  let env = mk () in
  (* Several flaky nodes raise the chance a reboot storm loses one. *)
  List.iter
    (fun i ->
      ignore
        (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
           Testbed.Faults.Random_reboots
           (Testbed.Faults.Host (Printf.sprintf "sagittaire-%d.lyon" i))))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  let caught = ref false in
  for _ = 1 to 6 do
    if (not !caught)
       && result_of env Framework.Testdef.Multireboot ~id:"multireboot:sagittaire"
          = Ci.Build.Failure
    then caught := true
  done;
  checkb "lost nodes flagged" true !caught

(* ---- multideploy: corrupt std image fails both rounds --------------------------- *)

let test_multideploy_catches_corrupt_std () =
  let env = mk () in
  let img = Kadeploy.Image.std_env in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Env_image_corrupt
       (Testbed.Faults.Global (Printf.sprintf "env_corrupt:%d" img.Kadeploy.Image.index)));
  checkb "corrupt std env flagged" true
    (result_of env Framework.Testdef.Multideploy ~id:"multideploy:graphite"
     = Ci.Build.Failure)

(* ---- paralleldeploy: kadeploy outage on the site --------------------------------- *)

let test_paralleldeploy_catches_kadeploy_outage () =
  let env = mk () in
  Testbed.Services.set_state env.Framework.Env.instance.Testbed.Instance.services
    ~site:"nantes" Testbed.Services.Kadeploy Testbed.Services.Down;
  checkb "site-wide deployment failure flagged" true
    (result_of env Framework.Testdef.Paralleldeploy ~id:"paralleldeploy:nantes"
     = Ci.Build.Failure)

(* ---- sidapi: API service outage ---------------------------------------------------- *)

let test_sidapi_catches_api_outage () =
  let env = mk () in
  Testbed.Services.set_state env.Framework.Env.instance.Testbed.Instance.services
    ~site:"rennes" Testbed.Services.Api Testbed.Services.Down;
  checkb "api outage flagged" true
    (result_of env Framework.Testdef.Sidapi ~id:"sidapi:rennes" = Ci.Build.Failure)

(* ---- oarstate: OAR down on the site ------------------------------------------------- *)

let test_oarstate_catches_oar_down () =
  let env = mk () in
  Testbed.Services.set_state env.Framework.Env.instance.Testbed.Instance.services
    ~site:"grenoble" Testbed.Services.Oar Testbed.Services.Down;
  checkb "oar outage flagged" true
    (result_of env Framework.Testdef.Oarstate ~id:"oarstate:grenoble" = Ci.Build.Failure)

(* ---- kavlan: service failure surfaces ------------------------------------------------ *)

let test_kavlan_catches_service_failure () =
  let env = mk () in
  Testbed.Services.set_state env.Framework.Env.instance.Testbed.Instance.services
    ~site:"lille" Testbed.Services.Kavlan Testbed.Services.Down;
  (* VLAN 101 is lille's local VLAN (sites in order). *)
  let lille_vlan =
    List.find
      (fun v -> v.Kavlan.vlan_site = Some "lille" && v.Kavlan.flavour = Kavlan.Local)
      Kavlan.standard_vlans
  in
  checkb "kavlan outage flagged" true
    (result_of env Framework.Testdef.Kavlan
       ~id:(Printf.sprintf "kavlan:%d" lille_vlan.Kavlan.vlan_id)
     = Ci.Build.Failure)

(* ---- environments: boot-race cluster fails deployments ------------------------------- *)

let test_environments_affected_by_boot_race () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Kernel_boot_race (Testbed.Faults.Cluster "helios"));
  (* Deployments reboot twice; with 30% tail each boot, some runs still
     pass — the campaign relies on repetition, so do we. *)
  let failures = ref 0 in
  for _ = 1 to 10 do
    if
      result_of env Framework.Testdef.Environments
        ~id:"environments:debian8-x64-min:helios"
      <> Ci.Build.Success
    then incr failures
  done;
  (* Boot race delays boots rather than failing them: deployments get
     slower, not broken — so most runs still pass.  What must NOT happen
     is a crash; and the slow boots must be visible to stdenv instead. *)
  checkb "no spurious mass failure" true (!failures <= 5)

(* ---- cross-family: one fault, multiple detectors -------------------------------------- *)

let test_disk_fault_seen_by_refapi_and_disk () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Disk_firmware (Testbed.Faults.Host "graphite-1.nancy"));
  checkb "refapi sees the firmware string" true
    (result_of env Framework.Testdef.Refapi ~id:"refapi:graphite" = Ci.Build.Failure);
  checkb "disk sees the performance loss" true
    (result_of env Framework.Testdef.Disk ~id:"disk:graphite" = Ci.Build.Failure)

let test_repair_clears_all_detectors () =
  let env = mk () in
  let fault =
    Option.get
      (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
         Testbed.Faults.Disk_firmware (Testbed.Faults.Host "graphite-1.nancy"))
  in
  checkb "failing before repair" true
    (result_of env Framework.Testdef.Disk ~id:"disk:graphite" = Ci.Build.Failure);
  Testbed.Faults.repair (Framework.Env.faults env) ~now:(Framework.Env.now env) fault;
  checkb "green after repair" true
    (result_of env Framework.Testdef.Refapi ~id:"refapi:graphite" = Ci.Build.Success);
  checkb "disk green after repair" true
    (result_of env Framework.Testdef.Disk ~id:"disk:graphite" = Ci.Build.Success)

(* ---- evidence quality ------------------------------------------------------------------ *)

let test_every_failure_carries_evidence () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cpu_governor (Testbed.Faults.Host "nova-1.lyon"));
  let outcome = run_script env (config_exn Framework.Testdef.Refapi ~id:"refapi:nova") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure);
  List.iter
    (fun (e : Framework.Bugtracker.evidence) ->
      checkb "signature non-empty" true (String.length e.Framework.Bugtracker.signature > 0);
      checkb "summary non-empty" true (String.length e.Framework.Bugtracker.summary > 0);
      checkb "source test recorded" true
        (String.length e.Framework.Bugtracker.source_test > 0);
      checkb "fault correlated" true (e.Framework.Bugtracker.fault_ids <> []))
    outcome.Framework.Scripts.evidences

let test_scripts_log_for_operators () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Disk_write_cache (Testbed.Faults.Host "graphite-2.nancy"));
  let config = config_exn Framework.Testdef.Disk ~id:"disk:graphite" in
  let build =
    {
      Ci.Build.job_name = "test_disk";
      number = 1;
      axes = Framework.Testdef.axes_of_config config;
      cause = "test";
      retry_of = None;
      queued_at = 0.0;
      started_at = Some 0.0;
      finished_at = None;
      result = None;
      log = [];
      artifacts = [];
      touched_hosts = [];
    }
  in
  let finished = ref false in
  Framework.Scripts.run env config ~build ~finish:(fun _ -> finished := true);
  Framework.Env.run_until env (6.0 *. Simkit.Calendar.hour);
  checkb "finished" true !finished;
  (* KISS: the log names the offending host and the numbers. *)
  checkb "log names the host" true
    (List.exists
       (fun line ->
         let needle = "graphite-2.nancy" in
         let n = String.length needle and m = String.length line in
         let rec scan i = i + n <= m && (String.sub line i n = needle || scan (i + 1)) in
         scan 0)
       build.Ci.Build.log)

let () =
  Alcotest.run "scripts2"
    [
      ( "per-family-detection",
        [ Alcotest.test_case "stdenv: boot race" `Slow test_stdenv_catches_boot_race;
          Alcotest.test_case "multireboot: random reboots" `Slow
            test_multireboot_catches_random_reboots;
          Alcotest.test_case "multideploy: corrupt std" `Quick
            test_multideploy_catches_corrupt_std;
          Alcotest.test_case "paralleldeploy: kadeploy down" `Quick
            test_paralleldeploy_catches_kadeploy_outage;
          Alcotest.test_case "sidapi: api down" `Quick test_sidapi_catches_api_outage;
          Alcotest.test_case "oarstate: oar down" `Quick test_oarstate_catches_oar_down;
          Alcotest.test_case "kavlan: service down" `Quick
            test_kavlan_catches_service_failure;
          Alcotest.test_case "environments vs boot race" `Slow
            test_environments_affected_by_boot_race ] );
      ( "cross-family",
        [ Alcotest.test_case "two detectors, one fault" `Quick
            test_disk_fault_seen_by_refapi_and_disk;
          Alcotest.test_case "repair clears detectors" `Quick
            test_repair_clears_all_detectors ] );
      ( "evidence",
        [ Alcotest.test_case "failures carry evidence" `Quick
            test_every_failure_carries_evidence;
          Alcotest.test_case "logs for operators" `Quick test_scripts_log_for_operators ] );
    ]
