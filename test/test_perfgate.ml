(* The CI perf gate: must fail on a real engine slow-down, pass on
   run-to-run jitter within the threshold, and reject unreadable
   benchmark documents rather than waving them through. *)

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let metrics ?(events_per_s = 50000.0) ?(p95 = 100.0) () =
  { Framework.Perfgate.events_per_s;
    minor_words_per_event = 3000.0;
    p95_step_us = p95 }

let test_pass_within_threshold () =
  let v =
    Framework.Perfgate.check ~baseline:(metrics ()) ~current:(metrics ~p95:115.0 ()) ()
  in
  checkb "15% regression passes at 20% threshold" true v.Framework.Perfgate.ok

let test_exact_limit_passes () =
  let v =
    Framework.Perfgate.check ~baseline:(metrics ()) ~current:(metrics ~p95:120.0 ()) ()
  in
  checkb "exactly the limit still passes" true v.Framework.Perfgate.ok

let test_fail_beyond_threshold () =
  (* The acceptance scenario: an injected >=25% slow-down must break CI. *)
  let v =
    Framework.Perfgate.check ~baseline:(metrics ()) ~current:(metrics ~p95:125.0 ()) ()
  in
  checkb "25% regression fails" false v.Framework.Perfgate.ok;
  checkb "verdict says FAIL" true
    (List.exists
       (fun line -> String.length line >= 14 && String.sub line 0 14 = "perfgate: FAIL")
       v.Framework.Perfgate.lines)

let test_throughput_does_not_gate () =
  let v =
    Framework.Perfgate.check ~baseline:(metrics ())
      ~current:(metrics ~events_per_s:10000.0 ~p95:100.0 ())
      ()
  in
  checkb "events/s drop alone is informational" true v.Framework.Perfgate.ok

let test_custom_threshold () =
  let v =
    Framework.Perfgate.check ~threshold_pct:10.0 ~baseline:(metrics ())
      ~current:(metrics ~p95:115.0 ()) ()
  in
  checkb "15% regression fails at 10% threshold" false v.Framework.Perfgate.ok

let bench_json =
  {|{
  "scenario": "engine",
  "months": 2,
  "events_executed": 183842,
  "wall_s": 3.8,
  "events_per_s": 48211.9,
  "minor_words_per_event": 2937.7,
  "step_latency_us": { "p50": 2.1, "p95": 64.8, "p99": 416.0, "max": 6837.8 },
  "anchor_events_per_s": 6500.0
}|}

let test_parse_bench_document () =
  match Framework.Perfgate.metrics_of_string bench_json with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m ->
    checkf "events/s" 48211.9 m.Framework.Perfgate.events_per_s;
    checkf "minor words/event" 2937.7 m.Framework.Perfgate.minor_words_per_event;
    checkf "p95" 64.8 m.Framework.Perfgate.p95_step_us

let test_parse_rejects_garbage () =
  checkb "syntax error rejected" true
    (Result.is_error (Framework.Perfgate.metrics_of_string "not json"));
  checkb "missing p95 rejected" true
    (Result.is_error
       (Framework.Perfgate.metrics_of_string
          {|{"events_per_s": 1.0, "minor_words_per_event": 2.0, "step_latency_us": {}}|}));
  checkb "missing events/s rejected" true
    (Result.is_error (Framework.Perfgate.metrics_of_string {|{"step_latency_us": {"p95": 1.0}}|}))

(* ---- lint gate --------------------------------------------------------------- *)

let lint ?(wall_s = 0.05) ?(diagnostics = 0) () =
  { Framework.Perfgate.wall_s; configurations = 751; diagnostics }

let test_lint_floor_absorbs_ms_noise () =
  (* A 4x regression on a millisecond-scale wall stays under the
     absolute floor and must not flap the gate. *)
  let v =
    Framework.Perfgate.check_lint ~baseline:(lint ())
      ~current:(lint ~wall_s:0.2 ()) ()
  in
  checkb "under the floor passes" true v.Framework.Perfgate.ok

let test_lint_fails_beyond_floor_and_threshold () =
  let v =
    Framework.Perfgate.check_lint ~baseline:(lint ())
      ~current:(lint ~wall_s:(Framework.Perfgate.lint_floor_s +. 0.01) ()) ()
  in
  checkb "beyond floor and threshold fails" false v.Framework.Perfgate.ok

let test_lint_relative_threshold_above_floor () =
  (* Once the baseline itself clears the floor, the relative allowance
     takes over: +15% passes, +25% fails at the default 20%. *)
  let v_ok =
    Framework.Perfgate.check_lint ~baseline:(lint ~wall_s:1.0 ())
      ~current:(lint ~wall_s:1.15 ()) ()
  in
  let v_bad =
    Framework.Perfgate.check_lint ~baseline:(lint ~wall_s:1.0 ())
      ~current:(lint ~wall_s:1.25 ()) ()
  in
  checkb "+15%% passes" true v_ok.Framework.Perfgate.ok;
  checkb "+25%% fails" false v_bad.Framework.Perfgate.ok

let test_lint_diagnostics_do_not_gate () =
  let v =
    Framework.Perfgate.check_lint ~baseline:(lint ())
      ~current:(lint ~diagnostics:7 ()) ()
  in
  checkb "diagnostic count is informational" true v.Framework.Perfgate.ok

let test_lint_parse_bench_document () =
  let doc =
    {|{"scenario": "lint",
       "lint": {"configurations": 751, "presets": 7, "wall_s": 0.042, "diagnostics": 0},
       "audit": {"campaigns": 2}}|}
  in
  match Framework.Perfgate.lint_metrics_of_string doc with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m ->
    checkf "wall_s" 0.042 m.Framework.Perfgate.wall_s;
    Alcotest.(check int) "configurations" 751 m.Framework.Perfgate.configurations;
    Alcotest.(check int) "diagnostics" 0 m.Framework.Perfgate.diagnostics

let test_lint_parse_rejects_garbage () =
  checkb "missing lint object rejected" true
    (Result.is_error (Framework.Perfgate.lint_metrics_of_string {|{"wall_s": 1.0}|}));
  checkb "missing wall rejected" true
    (Result.is_error
       (Framework.Perfgate.lint_metrics_of_string
          {|{"lint": {"configurations": 1, "diagnostics": 0}}|}))

let () =
  Alcotest.run "perfgate"
    [
      ( "gate",
        [ Alcotest.test_case "pass within threshold" `Quick test_pass_within_threshold;
          Alcotest.test_case "exact limit passes" `Quick test_exact_limit_passes;
          Alcotest.test_case "fail beyond threshold" `Quick test_fail_beyond_threshold;
          Alcotest.test_case "throughput informational" `Quick
            test_throughput_does_not_gate;
          Alcotest.test_case "custom threshold" `Quick test_custom_threshold ] );
      ( "parse",
        [ Alcotest.test_case "bench document" `Quick test_parse_bench_document;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage ] );
      ( "lint gate",
        [ Alcotest.test_case "floor absorbs ms noise" `Quick
            test_lint_floor_absorbs_ms_noise;
          Alcotest.test_case "fails beyond floor and threshold" `Quick
            test_lint_fails_beyond_floor_and_threshold;
          Alcotest.test_case "relative threshold above floor" `Quick
            test_lint_relative_threshold_above_floor;
          Alcotest.test_case "diagnostics informational" `Quick
            test_lint_diagnostics_do_not_gate;
          Alcotest.test_case "bench document" `Quick test_lint_parse_bench_document;
          Alcotest.test_case "rejects garbage" `Quick
            test_lint_parse_rejects_garbage ] );
    ]
