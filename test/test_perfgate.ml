(* The CI perf gate: must fail on a real engine slow-down, pass on
   run-to-run jitter within the threshold, and reject unreadable
   benchmark documents rather than waving them through. *)

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let metrics ?(events_per_s = 50000.0) ?(p95 = 100.0) () =
  { Framework.Perfgate.events_per_s;
    minor_words_per_event = 3000.0;
    p95_step_us = p95 }

let test_pass_within_threshold () =
  let v =
    Framework.Perfgate.check ~baseline:(metrics ()) ~current:(metrics ~p95:115.0 ()) ()
  in
  checkb "15% regression passes at 20% threshold" true v.Framework.Perfgate.ok

let test_exact_limit_passes () =
  let v =
    Framework.Perfgate.check ~baseline:(metrics ()) ~current:(metrics ~p95:120.0 ()) ()
  in
  checkb "exactly the limit still passes" true v.Framework.Perfgate.ok

let test_fail_beyond_threshold () =
  (* The acceptance scenario: an injected >=25% slow-down must break CI. *)
  let v =
    Framework.Perfgate.check ~baseline:(metrics ()) ~current:(metrics ~p95:125.0 ()) ()
  in
  checkb "25% regression fails" false v.Framework.Perfgate.ok;
  checkb "verdict says FAIL" true
    (List.exists
       (fun line -> String.length line >= 14 && String.sub line 0 14 = "perfgate: FAIL")
       v.Framework.Perfgate.lines)

let test_throughput_does_not_gate () =
  let v =
    Framework.Perfgate.check ~baseline:(metrics ())
      ~current:(metrics ~events_per_s:10000.0 ~p95:100.0 ())
      ()
  in
  checkb "events/s drop alone is informational" true v.Framework.Perfgate.ok

let test_custom_threshold () =
  let v =
    Framework.Perfgate.check ~threshold_pct:10.0 ~baseline:(metrics ())
      ~current:(metrics ~p95:115.0 ()) ()
  in
  checkb "15% regression fails at 10% threshold" false v.Framework.Perfgate.ok

let bench_json =
  {|{
  "scenario": "engine",
  "months": 2,
  "events_executed": 183842,
  "wall_s": 3.8,
  "events_per_s": 48211.9,
  "minor_words_per_event": 2937.7,
  "step_latency_us": { "p50": 2.1, "p95": 64.8, "p99": 416.0, "max": 6837.8 },
  "anchor_events_per_s": 6500.0
}|}

let test_parse_bench_document () =
  match Framework.Perfgate.metrics_of_string bench_json with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m ->
    checkf "events/s" 48211.9 m.Framework.Perfgate.events_per_s;
    checkf "minor words/event" 2937.7 m.Framework.Perfgate.minor_words_per_event;
    checkf "p95" 64.8 m.Framework.Perfgate.p95_step_us

let test_parse_rejects_garbage () =
  checkb "syntax error rejected" true
    (Result.is_error (Framework.Perfgate.metrics_of_string "not json"));
  checkb "missing p95 rejected" true
    (Result.is_error
       (Framework.Perfgate.metrics_of_string
          {|{"events_per_s": 1.0, "minor_words_per_event": 2.0, "step_latency_us": {}}|}));
  checkb "missing events/s rejected" true
    (Result.is_error (Framework.Perfgate.metrics_of_string {|{"step_latency_us": {"p95": 1.0}}|}))

let () =
  Alcotest.run "perfgate"
    [
      ( "gate",
        [ Alcotest.test_case "pass within threshold" `Quick test_pass_within_threshold;
          Alcotest.test_case "exact limit passes" `Quick test_exact_limit_passes;
          Alcotest.test_case "fail beyond threshold" `Quick test_fail_beyond_threshold;
          Alcotest.test_case "throughput informational" `Quick
            test_throughput_does_not_gate;
          Alcotest.test_case "custom threshold" `Quick test_custom_threshold ] );
      ( "parse",
        [ Alcotest.test_case "bench document" `Quick test_parse_bench_document;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage ] );
    ]
