(* Tests for the OAR substitute: expressions, requests, Gantt, properties,
   scheduling, workload. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

let mk () =
  let instance = Testbed.Instance.build ~seed:99L () in
  (instance, Oar.Manager.create instance)

(* ---- Expr ------------------------------------------------------------------ *)

let props_of alist key = List.assoc_opt key alist

let test_expr_paper_example () =
  (* The filter part of the paper's oarsub example. *)
  let expr = Oar.Expr.parse_exn "cluster='a' and gpu='YES'" in
  checkb "matching node" true
    (Oar.Expr.eval expr ~props:(props_of [ ("cluster", "a"); ("gpu", "YES") ]));
  checkb "wrong gpu" false
    (Oar.Expr.eval expr ~props:(props_of [ ("cluster", "a"); ("gpu", "NO") ]));
  checkb "wrong cluster" false
    (Oar.Expr.eval expr ~props:(props_of [ ("cluster", "b"); ("gpu", "YES") ]))

let test_expr_precedence () =
  (* or binds looser than and. *)
  let expr = Oar.Expr.parse_exn "a='1' or b='1' and c='1'" in
  checkb "a alone satisfies" true (Oar.Expr.eval expr ~props:(props_of [ ("a", "1") ]));
  checkb "b alone does not" false (Oar.Expr.eval expr ~props:(props_of [ ("b", "1") ]))

let test_expr_not_and_parens () =
  let expr = Oar.Expr.parse_exn "not (cluster='a' or cluster='b')" in
  checkb "c passes" true (Oar.Expr.eval expr ~props:(props_of [ ("cluster", "c") ]));
  checkb "a fails" false (Oar.Expr.eval expr ~props:(props_of [ ("cluster", "a") ]))

let test_expr_numeric_comparisons () =
  let expr = Oar.Expr.parse_exn "cores>=8 and cores<=16" in
  checkb "8 ok" true (Oar.Expr.eval expr ~props:(props_of [ ("cores", "8") ]));
  checkb "16 ok" true (Oar.Expr.eval expr ~props:(props_of [ ("cores", "16") ]));
  checkb "4 rejected" false (Oar.Expr.eval expr ~props:(props_of [ ("cores", "4") ]))

let test_expr_missing_property () =
  let eq = Oar.Expr.parse_exn "gpu='YES'" in
  let neq = Oar.Expr.parse_exn "gpu!='YES'" in
  checkb "missing property fails =" false (Oar.Expr.eval eq ~props:(props_of []));
  checkb "missing property passes !=" true (Oar.Expr.eval neq ~props:(props_of []))

let test_expr_empty_is_true () =
  checkb "empty filter" true (Oar.Expr.parse_exn "" = Oar.Expr.True);
  checkb "blank filter" true (Oar.Expr.parse_exn "   " = Oar.Expr.True)

let test_expr_errors () =
  List.iter
    (fun bad ->
      match Oar.Expr.parse bad with
      | Ok _ -> Alcotest.failf "should not parse: %s" bad
      | Error _ -> ())
    [ "cluster="; "cluster='unterminated"; "(a='1'"; "= 'x'"; "a='1' and" ]

let test_expr_properties_used () =
  let expr = Oar.Expr.parse_exn "cluster='a' and (gpu='YES' or cluster='b')" in
  Alcotest.(check (list string))
    "used properties" [ "cluster"; "gpu" ] (Oar.Expr.properties_used expr)

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr to_string reparses equivalently" ~count:200
    (QCheck.make
       (QCheck.Gen.map2
          (fun ks vs ->
            List.map2
              (fun k v -> Printf.sprintf "%s='%c'" k v)
              [ "cluster"; "site"; "gpu" ]
              [ ks; vs; 'x' ])
          (QCheck.Gen.char_range 'a' 'z')
          (QCheck.Gen.char_range 'a' 'z')))
    (fun atoms ->
      let source = String.concat " and " atoms in
      let e1 = Oar.Expr.parse_exn source in
      let e2 = Oar.Expr.parse_exn (Oar.Expr.to_string e1) in
      let props = props_of [ ("cluster", "m"); ("site", "m"); ("gpu", "x") ] in
      Oar.Expr.eval e1 ~props = Oar.Expr.eval e2 ~props)

(* ---- mixed-type comparison semantics ---------------------------------------- *)

let test_expr_quoted_numeric_literal () =
  (* Both sides parse as integers, so the ordering is numeric even when
     the literal is quoted: before the fix, '10' > '9' was decided
     lexicographically and came out false. *)
  let expr = Oar.Expr.parse_exn "cores>'9'" in
  checkb "128 > '9' numerically" true
    (Oar.Expr.eval expr ~props:(props_of [ ("cores", "128") ]));
  checkb "10 > '9' numerically" true
    (Oar.Expr.eval expr ~props:(props_of [ ("cores", "10") ]));
  checkb "9 is not > '9'" false
    (Oar.Expr.eval expr ~props:(props_of [ ("cores", "9") ]));
  (* A non-integer actual still falls back to string order. *)
  checkb "'64G' > '9' lexicographically is false" false
    (Oar.Expr.holds Oar.Expr.Gt "64G" (Oar.Expr.S "9"))

let prop_holds_numeric_agreement =
  QCheck.Test.make ~name:"orderings on two integers are numeric, quoted or not"
    ~count:300
    QCheck.(triple (int_range 0 999) (int_range 0 999) (int_bound 3))
    (fun (a, b, opi) ->
      let op, expect =
        match opi with
        | 0 -> (Oar.Expr.Ge, a >= b)
        | 1 -> (Oar.Expr.Le, a <= b)
        | 2 -> (Oar.Expr.Gt, a > b)
        | _ -> (Oar.Expr.Lt, a < b)
      in
      let actual = string_of_int a in
      Oar.Expr.holds op actual (Oar.Expr.I b) = expect
      && Oar.Expr.holds op actual (Oar.Expr.S (string_of_int b)) = expect)

(* ---- normalize --------------------------------------------------------------- *)

let test_normalize_verdicts () =
  let n s = Oar.Expr.normalize (Oar.Expr.parse_exn s) in
  checkb "equality pinning proves contradiction" true
    (n "site='nancy' and site='lyon'" = Oar.Expr.False);
  checkb "empty integer interval proves contradiction" true
    (n "cores>16 and cores<10" = Oar.Expr.False);
  checkb "structural complement proves contradiction" true
    (n "gpu='YES' and not gpu='YES'" = Oar.Expr.False);
  checkb "eq/neq complement proves tautology" true
    (n "gpu='YES' or gpu!='YES'" = Oar.Expr.True);
  checkb "satisfiable conjunction survives" true
    (n "cluster='a' and gpu='YES'" <> Oar.Expr.False)

let gen_expr =
  let open QCheck.Gen in
  let prop = oneofl [ "cluster"; "site"; "cores"; "cpufreq"; "gpu"; "memnode" ] in
  let value =
    oneof
      [ map (fun i -> Oar.Expr.I i) (int_range 0 20);
        map
          (fun s -> Oar.Expr.S s)
          (oneofl [ "a"; "b"; "YES"; "NO"; "2.27"; "64G"; "7"; "12" ]) ]
  in
  let op =
    oneofl [ Oar.Expr.Eq; Oar.Expr.Neq; Oar.Expr.Ge; Oar.Expr.Le; Oar.Expr.Gt; Oar.Expr.Lt ]
  in
  let cmp = map3 (fun p o v -> Oar.Expr.Cmp (p, o, v)) prop op value in
  let leaf =
    frequency
      [ (6, cmp); (1, return Oar.Expr.True); (1, return Oar.Expr.False) ]
  in
  sized_size (int_bound 5)
    (fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [ (3, cmp);
               (2, map2 (fun a b -> Oar.Expr.And (a, b)) (self (n - 1)) (self (n - 1)));
               (2, map2 (fun a b -> Oar.Expr.Or (a, b)) (self (n - 1)) (self (n - 1)));
               (1, map (fun a -> Oar.Expr.Not a) (self (n - 1))) ]))

let gen_assignment =
  let open QCheck.Gen in
  let v = oneofl [ "a"; "b"; "YES"; "NO"; "2.27"; "64G"; "7"; "12"; "16" ] in
  let bind p = map (fun (present, v) -> if present then Some (p, v) else None) (pair bool v) in
  map
    (fun cells -> List.filter_map Fun.id cells)
    (flatten_l
       (List.map bind [ "cluster"; "site"; "cores"; "cpufreq"; "gpu"; "memnode" ]))

let arb_expr_and_assignment =
  QCheck.make
    ~print:(fun (e, assignment) ->
      Printf.sprintf "%s under [%s]"
        (Oar.Expr.to_string e)
        (String.concat "; "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) assignment)))
    QCheck.Gen.(pair gen_expr gen_assignment)

let prop_normalize_preserves_eval =
  QCheck.Test.make ~name:"normalize preserves eval on every assignment"
    ~count:1000 arb_expr_and_assignment
    (fun (e, assignment) ->
      let props = props_of assignment in
      Oar.Expr.eval (Oar.Expr.normalize e) ~props = Oar.Expr.eval e ~props)

let arb_expr = QCheck.make ~print:Oar.Expr.to_string gen_expr

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize is idempotent" ~count:500 arb_expr
    (fun e ->
      let n = Oar.Expr.normalize e in
      Oar.Expr.equal (Oar.Expr.normalize n) n)

let prop_normalize_roundtrip =
  QCheck.Test.make ~name:"parse (to_string (normalize e)) = normalize e"
    ~count:500 arb_expr
    (fun e ->
      let n = Oar.Expr.normalize e in
      Oar.Expr.equal (Oar.Expr.parse_exn (Oar.Expr.to_string n)) n)

(* ---- Request ---------------------------------------------------------------- *)

let test_request_paper_example () =
  let r =
    Oar.Request.parse_exn
      "cluster='a' and gpu='YES'/nodes=1+cluster='b' and eth10g='Y'/nodes=2,walltime=2"
  in
  checki "two groups" 2 (List.length r.Oar.Request.groups);
  checkf "walltime 2h" 7200.0 r.Oar.Request.walltime;
  (match r.Oar.Request.groups with
   | [ g1; g2 ] ->
     checkb "group 1 count" true (g1.Oar.Request.count = `N 1);
     checkb "group 2 count" true (g2.Oar.Request.count = `N 2)
   | _ -> Alcotest.fail "bad group structure")

let test_request_nodes_all () =
  let r = Oar.Request.parse_exn "cluster='graphene'/nodes=ALL,walltime=1:30" in
  checkf "walltime h:mm" 5400.0 r.Oar.Request.walltime;
  (match r.Oar.Request.groups with
   | [ g ] -> checkb "ALL" true (g.Oar.Request.count = `All)
   | _ -> Alcotest.fail "one group expected")

let test_request_bare_nodes () =
  let r = Oar.Request.parse_exn "nodes=3" in
  (match r.Oar.Request.groups with
   | [ g ] ->
     checkb "no filter" true (g.Oar.Request.filter = Oar.Expr.True);
     checkb "count 3" true (g.Oar.Request.count = `N 3)
   | _ -> Alcotest.fail "one group");
  checkf "default walltime 1h" 3600.0 r.Oar.Request.walltime

let test_request_errors () =
  List.iter
    (fun bad ->
      match Oar.Request.parse bad with
      | Ok _ -> Alcotest.failf "should not parse: %s" bad
      | Error _ -> ())
    [ "nodes=0"; "nodes=-1"; "cluster='a'/cores=2"; "nodes=2,walltime=x" ]

let test_request_to_string_roundtrip () =
  let source = "cluster='a'/nodes=2+site='lyon'/nodes=1,walltime=3" in
  let r1 = Oar.Request.parse_exn source in
  let r2 = Oar.Request.parse_exn (Oar.Request.to_string r1) in
  checki "same groups" (List.length r1.Oar.Request.groups)
    (List.length r2.Oar.Request.groups);
  checkf "same walltime" r1.Oar.Request.walltime r2.Oar.Request.walltime

(* ---- Gantt ------------------------------------------------------------------- *)

let test_gantt_reserve_conflict () =
  let g = Oar.Gantt.create () in
  Oar.Gantt.reserve g ~host:"h" ~start:0.0 ~stop:10.0 ~job:1;
  checkb "overlap rejected" true
    (try
       Oar.Gantt.reserve g ~host:"h" ~start:5.0 ~stop:15.0 ~job:2;
       false
     with Invalid_argument _ -> true);
  (* Touching intervals are fine. *)
  Oar.Gantt.reserve g ~host:"h" ~start:10.0 ~stop:20.0 ~job:2;
  checki "two reservations" 2 (List.length (Oar.Gantt.reservations g ~host:"h"))

let test_gantt_next_free_window () =
  let g = Oar.Gantt.create () in
  Oar.Gantt.reserve g ~host:"h" ~start:10.0 ~stop:20.0 ~job:1;
  Oar.Gantt.reserve g ~host:"h" ~start:25.0 ~stop:30.0 ~job:2;
  checkf "before first" 0.0 (Oar.Gantt.next_free_window g ~host:"h" ~after:0.0 ~duration:10.0);
  checkf "gap too small, jump after second" 30.0
    (Oar.Gantt.next_free_window g ~host:"h" ~after:10.0 ~duration:8.0);
  checkf "fits in gap" 20.0
    (Oar.Gantt.next_free_window g ~host:"h" ~after:10.0 ~duration:5.0)

let test_gantt_release_and_truncate () =
  let g = Oar.Gantt.create () in
  Oar.Gantt.reserve g ~host:"h" ~start:0.0 ~stop:100.0 ~job:1;
  Oar.Gantt.truncate g ~host:"h" ~job:1 ~stop:50.0;
  checkb "free after truncation" true (Oar.Gantt.is_free g ~host:"h" ~start:50.0 ~stop:100.0);
  Oar.Gantt.release g ~host:"h" ~job:1;
  checkb "free after release" true (Oar.Gantt.is_free g ~host:"h" ~start:0.0 ~stop:100.0)

let test_gantt_utilisation () =
  let g = Oar.Gantt.create () in
  Oar.Gantt.reserve g ~host:"h" ~start:0.0 ~stop:50.0 ~job:1;
  checkf "half used" 0.5 (Oar.Gantt.utilisation g ~host:"h" ~lo:0.0 ~hi:100.0)

let prop_gantt_no_overlap =
  QCheck.Test.make ~name:"gantt reservations never overlap" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 20) (pair (float_bound_exclusive 100.0) (float_bound_exclusive 20.0)))
    (fun intervals ->
      let g = Oar.Gantt.create () in
      List.iteri
        (fun i (start, len) ->
          let stop = start +. len +. 0.1 in
          try Oar.Gantt.reserve g ~host:"h" ~start ~stop ~job:i
          with Invalid_argument _ -> ())
        intervals;
      let sorted = Oar.Gantt.reservations g ~host:"h" in
      let rec no_overlap = function
        | (_, stop1, _) :: ((start2, _, _) :: _ as rest) ->
          stop1 <= start2 && no_overlap rest
        | _ -> true
      in
      no_overlap sorted)

(* ---- Properties --------------------------------------------------------------- *)

let test_properties_populated () =
  let _, oar = mk () in
  let props = Oar.Manager.properties oar in
  checki "894 hosts" 894 (List.length (Oar.Property.hosts props));
  Alcotest.(check (option string))
    "cluster property" (Some "graphene")
    (Oar.Property.get props ~host:"graphene-1.nancy" "cluster");
  Alcotest.(check (option string))
    "eth10g" (Some "Y")
    (Oar.Property.get props ~host:"grisou-1.nancy" "eth10g");
  Alcotest.(check (option string))
    "wattmeter by site" (Some "NO")
    (Oar.Property.get props ~host:"granduc-1.luxembourg" "wattmeter")

let test_properties_follow_refapi () =
  let instance, oar = mk () in
  (* Corrupt the published description, refresh, observe the DB change. *)
  let ctx = Testbed.Faults.context instance.Testbed.Instance.faults in
  Hashtbl.replace ctx.Testbed.Faults.flags "oar_desync:orion-1.lyon" "x";
  Oar.Manager.refresh_properties oar;
  Alcotest.(check (option string))
    "gpu flipped by desync" (Some "NO")
    (Oar.Property.get (Oar.Manager.properties oar) ~host:"orion-1.lyon" "gpu")

(* ---- Manager: submission and scheduling ----------------------------------------- *)

let test_submit_immediate_success () =
  let _, oar = mk () in
  let request = Oar.Request.nodes ~filter:"cluster='graphene'" (`N 2) ~walltime:3600.0 in
  match Oar.Manager.submit oar ~immediate:true request with
  | Ok job ->
    checkb "running already" true (job.Oar.Job.state = Oar.Job.Running);
    checki "two nodes" 2 (List.length job.Oar.Job.assigned);
    List.iter
      (fun host ->
        checkb "host from graphene" true
          (String.length host > 9 && String.sub host 0 9 = "graphene-"))
      job.Oar.Job.assigned
  | Error _ -> Alcotest.fail "expected immediate start"

let test_submit_no_matching () =
  let _, oar = mk () in
  let request = Oar.Request.nodes ~filter:"cluster='nosuch'" (`N 1) ~walltime:60.0 in
  (match Oar.Manager.submit oar request with
   | Error Oar.Manager.No_matching_resource -> ()
   | _ -> Alcotest.fail "expected No_matching_resource")

let test_submit_immediate_rejected_when_busy () =
  let _, oar = mk () in
  (* Occupy the whole nyx cluster (8 nodes), then ask for all of it. *)
  let all = Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:7200.0 in
  (match Oar.Manager.submit oar all with Ok _ -> () | Error _ -> Alcotest.fail "setup");
  let again = Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:600.0 in
  match Oar.Manager.submit oar ~immediate:true again with
  | Error (Oar.Manager.Not_immediately_schedulable at) ->
    checkb "estimated start in the future" true (at > 0.0)
  | _ -> Alcotest.fail "expected immediate rejection"

let test_job_lifecycle_to_termination () =
  let instance, oar = mk () in
  let request = Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:3600.0 in
  let job =
    match Oar.Manager.submit oar ~duration:600.0 request with
    | Ok job -> job
    | Error _ -> Alcotest.fail "submit failed"
  in
  let ended = ref false in
  Oar.Manager.on_job_end oar (fun j -> if j.Oar.Job.id = job.Oar.Job.id then ended := true);
  Simkit.Engine.run_until instance.Testbed.Instance.engine 4000.0;
  checkb "terminated" true (job.Oar.Job.state = Oar.Job.Terminated);
  checkb "listener fired" true !ended;
  (match Oar.Job.wait_time job with
   | Some w -> checkb "no wait on idle testbed" true (w < 1.0)
   | None -> Alcotest.fail "no wait time")

let test_fcfs_queueing () =
  let instance, oar = mk () in
  (* Jobs longer than their duration never end early here: walltime =
     duration. Saturate nyx (8 nodes) then submit one more. *)
  let submit () =
    Oar.Manager.submit oar ~duration:3600.0
      (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 8) ~walltime:3600.0)
  in
  let first = match submit () with Ok j -> j | Error _ -> Alcotest.fail "first" in
  let second = match submit () with Ok j -> j | Error _ -> Alcotest.fail "second" in
  checkb "first runs" true (first.Oar.Job.state = Oar.Job.Running);
  checkb "second waits in the future" true (second.Oar.Job.state = Oar.Job.Scheduled);
  checkb "second scheduled after first" true (second.Oar.Job.scheduled_start >= 3600.0);
  Simkit.Engine.run_until instance.Testbed.Instance.engine 9000.0;
  checkb "second done eventually" true (second.Oar.Job.state = Oar.Job.Terminated)

let test_cancel_releases_resources () =
  let _, oar = mk () in
  let job =
    match
      Oar.Manager.submit oar (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:7200.0)
    with
    | Ok j -> j
    | Error _ -> Alcotest.fail "submit"
  in
  Oar.Manager.cancel oar job;
  checkb "cancelled" true (job.Oar.Job.state = Oar.Job.Cancelled);
  match
    Oar.Manager.submit oar ~immediate:true
      (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:600.0)
  with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "resources should be free after cancel"

let test_multi_group_request () =
  let _, oar = mk () in
  let request =
    Oar.Request.parse_exn "cluster='nyx'/nodes=1+cluster='graphite'/nodes=1,walltime=1"
  in
  match Oar.Manager.submit oar ~immediate:true request with
  | Ok job ->
    checki "two nodes from two clusters" 2 (List.length job.Oar.Job.assigned);
    let clusters =
      List.map
        (fun host -> String.sub host 0 (String.index host '-'))
        job.Oar.Job.assigned
      |> List.sort_uniq compare
    in
    Alcotest.(check (list string)) "both clusters" [ "graphite"; "nyx" ] clusters
  | Error _ -> Alcotest.fail "multi-group placement failed"

let test_gpu_filter_placement () =
  let _, oar = mk () in
  (* The paper's oarsub: gpu='YES' nodes exist (adonis, chifflet, orion,
     grele, grimani). *)
  match
    Oar.Manager.submit oar ~immediate:true
      (Oar.Request.nodes ~filter:"gpu='YES'" (`N 1) ~walltime:600.0)
  with
  | Ok job -> (
    match job.Oar.Job.assigned with
    | [ host ] ->
      let cluster = String.sub host 0 (String.index host '-') in
      checkb "gpu cluster" true
        (List.mem cluster [ "adonis"; "chifflet"; "orion"; "grele"; "grimani" ])
    | _ -> Alcotest.fail "one node expected")
  | Error _ -> Alcotest.fail "gpu filter placement failed"

let test_estimate_start () =
  let _, oar = mk () in
  (match
     Oar.Manager.estimate_start oar
       (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:600.0)
   with
   | Some at -> checkf "immediate on idle testbed" 0.0 at
   | None -> Alcotest.fail "estimate failed");
  ignore
    (Oar.Manager.submit oar (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:7200.0));
  match
    Oar.Manager.estimate_start oar
      (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:600.0)
  with
  | Some at -> checkb "pushed behind running job" true (at >= 7200.0)
  | None -> Alcotest.fail "estimate failed under load"

let test_assigned_busy_consistency () =
  let _, oar = mk () in
  ignore
    (Oar.Manager.submit oar ~jtype:Oar.Job.Deploy
       (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 3) ~walltime:3600.0));
  checkb "invariant holds" true (Oar.Manager.assigned_busy_consistent oar)

let test_dead_node_fails_job_at_start () =
  let instance, oar = mk () in
  (* Queue a second whole-cluster job, then kill a node before it starts. *)
  ignore
    (Oar.Manager.submit oar ~duration:3600.0
       (Oar.Request.nodes ~filter:"cluster='graphite'" `All ~walltime:3600.0));
  let second =
    match
      Oar.Manager.submit oar
        (Oar.Request.nodes ~filter:"cluster='graphite'" `All ~walltime:3600.0)
    with
    | Ok j -> j
    | Error _ -> Alcotest.fail "second submit"
  in
  let victim = Testbed.Instance.node instance "graphite-1.nancy" in
  victim.Testbed.Node.state <- Testbed.Node.Down;
  Simkit.Engine.run_until instance.Testbed.Instance.engine 7200.0;
  checkb "second job errors out on dead node" true (second.Oar.Job.state = Oar.Job.Error)

(* ---- Workload ------------------------------------------------------------------- *)

let test_workload_generates_contention () =
  let instance, oar = mk () in
  let rng = Simkit.Prng.create 77L in
  let w = Oar.Workload.start ~rng oar in
  Simkit.Engine.run_until instance.Testbed.Instance.engine (3.0 *. Simkit.Calendar.day);
  checkb "jobs submitted" true (Oar.Workload.submitted w > 100);
  let jobs = Oar.Manager.jobs oar in
  let finished = List.filter Oar.Job.is_finished jobs in
  checkb "many finished" true (List.length finished > 50);
  (* The Gantt forgets reservations that ended more than an hour ago, so
     utilisation is only meaningful near the current instant. *)
  let now = Simkit.Engine.now instance.Testbed.Instance.engine in
  let utilisation = Oar.Manager.utilisation oar ~lo:(now -. 3600.0) ~hi:now in
  checkb "testbed visibly used" true (utilisation > 0.02);
  Oar.Workload.stop w

let test_workload_stop () =
  let instance, oar = mk () in
  let rng = Simkit.Prng.create 78L in
  let w = Oar.Workload.start ~rng oar in
  Simkit.Engine.run_until instance.Testbed.Instance.engine Simkit.Calendar.day;
  Oar.Workload.stop w;
  let before = Oar.Workload.submitted w in
  Simkit.Engine.run_until instance.Testbed.Instance.engine (2.0 *. Simkit.Calendar.day);
  checki "no submissions after stop" before (Oar.Workload.submitted w)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "oar"
    [
      ( "expr",
        [ Alcotest.test_case "paper example" `Quick test_expr_paper_example;
          Alcotest.test_case "precedence" `Quick test_expr_precedence;
          Alcotest.test_case "not and parens" `Quick test_expr_not_and_parens;
          Alcotest.test_case "numeric comparisons" `Quick test_expr_numeric_comparisons;
          Alcotest.test_case "missing property" `Quick test_expr_missing_property;
          Alcotest.test_case "empty is true" `Quick test_expr_empty_is_true;
          Alcotest.test_case "errors" `Quick test_expr_errors;
          Alcotest.test_case "properties used" `Quick test_expr_properties_used;
          Alcotest.test_case "quoted numeric literal" `Quick
            test_expr_quoted_numeric_literal;
          qc prop_expr_roundtrip;
          qc prop_holds_numeric_agreement ] );
      ( "normalize",
        [ Alcotest.test_case "verdicts" `Quick test_normalize_verdicts;
          qc prop_normalize_preserves_eval;
          qc prop_normalize_idempotent;
          qc prop_normalize_roundtrip ] );
      ( "request",
        [ Alcotest.test_case "paper example" `Quick test_request_paper_example;
          Alcotest.test_case "nodes=ALL" `Quick test_request_nodes_all;
          Alcotest.test_case "bare nodes" `Quick test_request_bare_nodes;
          Alcotest.test_case "errors" `Quick test_request_errors;
          Alcotest.test_case "to_string roundtrip" `Quick test_request_to_string_roundtrip ] );
      ( "gantt",
        [ Alcotest.test_case "reserve conflict" `Quick test_gantt_reserve_conflict;
          Alcotest.test_case "next free window" `Quick test_gantt_next_free_window;
          Alcotest.test_case "release and truncate" `Quick test_gantt_release_and_truncate;
          Alcotest.test_case "utilisation" `Quick test_gantt_utilisation;
          qc prop_gantt_no_overlap ] );
      ( "properties",
        [ Alcotest.test_case "populated" `Quick test_properties_populated;
          Alcotest.test_case "follow refapi" `Quick test_properties_follow_refapi ] );
      ( "manager",
        [ Alcotest.test_case "immediate success" `Quick test_submit_immediate_success;
          Alcotest.test_case "no matching" `Quick test_submit_no_matching;
          Alcotest.test_case "immediate rejected when busy" `Quick
            test_submit_immediate_rejected_when_busy;
          Alcotest.test_case "lifecycle" `Quick test_job_lifecycle_to_termination;
          Alcotest.test_case "fcfs queueing" `Quick test_fcfs_queueing;
          Alcotest.test_case "cancel releases" `Quick test_cancel_releases_resources;
          Alcotest.test_case "multi-group" `Quick test_multi_group_request;
          Alcotest.test_case "gpu filter" `Quick test_gpu_filter_placement;
          Alcotest.test_case "estimate start" `Quick test_estimate_start;
          Alcotest.test_case "state consistency" `Quick test_assigned_busy_consistency;
          Alcotest.test_case "dead node fails job" `Quick
            test_dead_node_fails_job_at_start ] );
      ( "workload",
        [ Alcotest.test_case "contention" `Slow test_workload_generates_contention;
          Alcotest.test_case "stop" `Quick test_workload_stop ] );
    ]
