(* Trustlint tests: the linter is clean on every seed/example
   configuration, each seeded defect class is flagged with exactly its
   diagnostic code (deterministic cases plus a qcheck mutation suite),
   and the runtime auditor detects injected invariant violations and
   same-timestamp event-ordering races while keeping audited campaigns
   byte-identical to unaudited ones. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let codes diags =
  List.sort_uniq String.compare (List.map (fun d -> d.Framework.Lint.code) diags)

let check_only_code expected diags =
  checkb
    (Printf.sprintf "flags %s and nothing else (got: %s)" expected
       (String.concat "," (codes diags)))
    true
    (codes diags = [ expected ])

(* ---- clean on all seed/example configurations ----------------------------- *)

let test_catalog_clean () =
  checki "full catalog lints clean" 0
    (List.length (Framework.Lint.check_catalog ()))

let test_presets_clean () =
  List.iter
    (fun (name, cfg) ->
      let diags = Framework.Lint.run cfg in
      checkb
        (Printf.sprintf "preset %s lints clean (got: %s)" name
           (String.concat "," (codes diags)))
        true (diags = []))
    Framework.Lint.presets

(* ---- one deterministic mutation per defect class --------------------------- *)

let some_config family =
  match Framework.Testdef.expand family with
  | c :: _ -> c
  | [] -> Alcotest.failf "family has no configurations"

let test_l001_duplicate_id () =
  let c = some_config Framework.Testdef.Stdenv in
  let diags = Framework.Lint.check_configs [ c; c ] in
  check_only_code "L001" diags;
  checki "exactly one duplicate diagnostic" 1 (List.length diags)

let test_l002_unknown_cluster () =
  let c = some_config Framework.Testdef.Stdenv in
  let diags =
    Framework.Lint.check_configs
      [ { c with Framework.Testdef.cluster = Some "atlantis-0" } ]
  in
  check_only_code "L002" diags

let test_l002_site_contradicts_cluster () =
  let c = some_config Framework.Testdef.Stdenv in
  let spec =
    Option.get
      (Testbed.Inventory.find_cluster
         (Option.get c.Framework.Testdef.cluster))
  in
  let wrong_site =
    List.find
      (fun s -> not (String.equal s spec.Testbed.Inventory.site))
      Testbed.Inventory.sites
  in
  let diags =
    Framework.Lint.check_configs
      [ { c with Framework.Testdef.site = Some wrong_site } ]
  in
  check_only_code "L002" diags

let test_l003_kwapi_off_wattmeter_site () =
  let c = some_config Framework.Testdef.Kwapi in
  let non_wattmeter =
    List.find
      (fun s -> not (List.mem s Testbed.Inventory.wattmeter_sites))
      Testbed.Inventory.sites
  in
  let diags =
    Framework.Lint.check_configs
      [ { c with Framework.Testdef.site = Some non_wattmeter } ]
  in
  check_only_code "L003" diags

let test_l003_mpigraph_without_ib () =
  let c = some_config Framework.Testdef.Mpigraph in
  let no_ib =
    List.find
      (fun s -> not s.Testbed.Inventory.has_ib)
      Testbed.Inventory.clusters
  in
  let diags =
    Framework.Lint.check_configs
      [ { c with
          Framework.Testdef.cluster = Some no_ib.Testbed.Inventory.cluster;
          site = Some no_ib.Testbed.Inventory.site;
        } ]
  in
  check_only_code "L003" diags

let test_l004_unsatisfiable_filter () =
  (* graphene is in nancy, so pinning it to lyon matches nothing. *)
  let diags =
    Framework.Lint.check_filter ~path:"t" "cluster='graphene' and site='lyon'"
  in
  check_only_code "L004" diags

let test_l005_vacuous_filter () =
  let diags = Framework.Lint.check_filter ~path:"t" "deploy='YES'" in
  check_only_code "L005" diags;
  checkb "vacuous filter is a warning, not an error" true
    (Framework.Lint.errors diags = [])

let test_l006_syntax_error () =
  let diags = Framework.Lint.check_filter ~path:"t" "cluster=='x' and" in
  check_only_code "L006" diags

let test_l007_unknown_property () =
  let diags = Framework.Lint.check_filter ~path:"t" "flopsrate>=100" in
  check_only_code "L007" diags

let test_l008_bad_poll_period () =
  let diags =
    Framework.Lint.check_policy ~path:"p"
      { Framework.Scheduler.smart_policy with
        Framework.Scheduler.poll_period = 0.0;
      }
  in
  check_only_code "L008" diags

let test_l008_peak_starvation () =
  let diags =
    Framework.Lint.check_policy ~path:"p"
      { Framework.Scheduler.smart_policy with
        Framework.Scheduler.poll_period = 14.0 *. 3600.0;
      }
  in
  check_only_code "L008" diags

let test_l009_zero_retry_budget () =
  let diags =
    Framework.Lint.check_policy ~path:"p"
      { Framework.Scheduler.smart_policy with Framework.Scheduler.retry_budget = 0 }
  in
  check_only_code "L009" diags

let test_l009_bad_breaker () =
  let diags =
    Framework.Lint.check_policy ~path:"p"
      { Framework.Scheduler.smart_policy with
        Framework.Scheduler.breaker =
          Some { Framework.Resilience.Breaker.failure_threshold = 0; cooldown = -1.0 };
      }
  in
  check_only_code "L009" diags

let test_l010_unreachable_quarantine () =
  let diags =
    Framework.Lint.check_health ~path:"h"
      { Framework.Health.default_config with
        Framework.Health.blame_failure = 0.0;
        blame_unstable = 0.0;
        down_blame = 0.0;
      }
  in
  check_only_code "L010" diags

let test_l010_bad_mttr () =
  let diags =
    Framework.Lint.check_health ~path:"h"
      { Framework.Health.default_config with
        Framework.Health.default_mttr = Simkit.Dist.Constant 0.0;
      }
  in
  check_only_code "L010" diags

let test_l011_zero_months () =
  let diags =
    Framework.Lint.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 0 }
  in
  check_only_code "L011" diags

let test_l011_beyond_horizon_fault_warns () =
  let diags =
    Framework.Lint.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        staged_families = [ (0, Framework.Testdef.all_families) ];
        infra_faults =
          [ (2.0 *. Simkit.Calendar.month, Testbed.Faults.Ci_outage) ];
      }
  in
  check_only_code "L011" diags;
  checkb "beyond-horizon fault is a warning" true
    (Framework.Lint.errors diags = [])

let test_l012_anti_affinity_bottleneck () =
  let diags =
    Framework.Lint.run
      { Framework.Campaign.default_config with
        Framework.Campaign.executors = 20;
        staged_families = [ (0, [ Framework.Testdef.Disk ]) ];
      }
  in
  check_only_code "L012" diags;
  checkb "bottleneck is a warning" true (Framework.Lint.errors diags = [])

let test_l014_unordered_ladder () =
  let diags =
    Framework.Lint.check_serve ~path:"s"
      { Framework.Serve.default_config with
        Framework.Serve.stale_queue = 500;
        fallback_queue = 100;
      }
  in
  check_only_code "L014" diags;
  checkb "unordered ladder is an error" true (Framework.Lint.errors diags <> [])

let test_l014_dead_bucket () =
  let diags =
    Framework.Lint.check_serve ~path:"s"
      { Framework.Serve.default_config with Framework.Serve.rate_limit = 0.0 }
  in
  check_only_code "L014" diags;
  checkb "dead bucket is an error" true (Framework.Lint.errors diags <> [])

let test_l014_burst_caps_admission_warns () =
  (* burst < rate_limit x tick_period: the once-per-tick refill silently
     caps sustained admission below the configured rate. *)
  let diags =
    Framework.Lint.check_serve ~path:"s"
      { Framework.Serve.default_config with
        Framework.Serve.rate_limit = 200.0;
        burst = 100.0;
        tick_period = 30.0;
      }
  in
  check_only_code "L014" diags;
  checkb "capped burst is a warning, not an error" true
    (Framework.Lint.errors diags = [])

let test_l014_via_campaign_config () =
  let diags =
    Framework.Lint.run
      { Framework.Campaign.default_config with
        Framework.Campaign.serve =
          Some
            { Framework.Serve.default_config with
              Framework.Serve.conditional_fraction = 1.5;
            };
      }
  in
  check_only_code "L014" diags

(* ---- L015: federation configurations ---------------------------------------- *)

let fed_default = Framework.Federation.default_config
let fed_check fc = Framework.Lint.check_federation ~path:"fed" fc

let check_l015_error fc =
  let diags = fed_check fc in
  check_only_code "L015" diags;
  checkb "federation defect is an error" true (Framework.Lint.errors diags <> [])

let test_l015_default_clean () =
  checki "default federation config lints clean" 0
    (List.length (fed_check fed_default))

let test_l015_shards_exceed_testbeds () =
  check_l015_error
    { fed_default with Framework.Federation.testbeds = 3; shards = 5 }

let test_l015_nonpositive_shape () =
  List.iter check_l015_error
    [ { fed_default with Framework.Federation.testbeds = 0 };
      { fed_default with Framework.Federation.shards = 0 } ]

let test_l015_short_lookahead () =
  (* Positive but below the smallest cross-testbed latency: a barrier
     decision could land inside the window it was computed for. *)
  check_l015_error
    { fed_default with
      Framework.Federation.lookahead =
        Framework.Federation.min_cross_latency /. 2.0;
    }

let test_l015_duplicate_names () =
  check_l015_error
    { fed_default with
      Framework.Federation.testbeds = 2;
      shards = 1;
      names = [ "grid-a"; "grid-a" ];
    }

let test_l015_bad_ranges () =
  let r = Testbed.Fleet.default_ranges in
  List.iter check_l015_error
    [ { fed_default with
        Framework.Federation.ranges =
          { r with Testbed.Fleet.fault_bias = (2.0, 1.0) };
      };
      { fed_default with
        Framework.Federation.ranges =
          { r with Testbed.Fleet.workload_scale = (0.0, 1.0) };
      };
      { fed_default with
        Framework.Federation.ranges = { r with Testbed.Fleet.executors = (0, 4) };
      } ]

let test_l015_zero_vlans_warns () =
  let diags = fed_check { fed_default with Framework.Federation.global_vlans = 0 } in
  check_only_code "L015" diags;
  checkb "a starved VLAN pool is a warning, not an error" true
    (Framework.Lint.errors diags = [])

let test_l015_bad_cadences () =
  List.iter check_l015_error
    [ { fed_default with Framework.Federation.global_vlans = -1 };
      { fed_default with Framework.Federation.backbone_faults_per_year = -1.0 };
      { fed_default with Framework.Federation.backbone_outage_hours = 0.0 };
      { fed_default with Framework.Federation.vlan_request_period = 0.0 };
      { fed_default with Framework.Federation.audit_period = -3600.0 } ]

(* ---- semantic passes (Semlint) ---------------------------------------------- *)

let catalog = Framework.Testdef.catalog ()

let test_l016_contradiction () =
  let diags =
    Framework.Lint.check_filter ~path:"t" "site='nancy' and site='lyon'"
  in
  check_only_code "L016" diags;
  checkb "an inventory-independent contradiction is an error" true
    (Framework.Lint.errors diags <> [])

let test_l016_tautology () =
  let diags =
    Framework.Lint.check_filter ~path:"t" "gpu='YES' or gpu!='YES'"
  in
  check_only_code "L016" diags;
  checkb "a tautology is a warning, not an error" true
    (Framework.Lint.errors diags = [])

let test_l017_lexicographic_hazard () =
  (* memnode values are plain integers; '64G' does not parse, so OAR
     would order the pair lexicographically ('8' >= '64G' is true). *)
  let diags = Framework.Lint.check_filter ~path:"t" "memnode>='64G'" in
  checkb
    (Printf.sprintf "flags the lexicographic hazard (got: %s)"
       (String.concat "," (codes diags)))
    true
    (List.mem "L017" (codes diags));
  checkb "hazards are warnings" true (Framework.Lint.errors diags = [])

let test_l017_integer_vs_decimal_unsat () =
  (* cpufreq values are decimals ("2.27"): an integer literal never
     compares numerically, the ordering is false on every host, and the
     root cause surfaces as L004 with the hazard as its explanation. *)
  let diags = Framework.Lint.check_filter ~path:"t" "cpufreq>2" in
  check_only_code "L004" diags;
  checkb "the unsat verdict carries a fix suggestion" true
    (List.exists (fun d -> d.Framework.Lint.fix <> None) diags)

let test_host_literal_filter_clean () =
  (* The old representative-row heuristic called any host='...' filter
     unsatisfiable; the abstract domain resolves canonical host names. *)
  checkb "host equality on a real host lints clean" true
    (Framework.Lint.check_filter ~path:"t" "host='graphene-2.nancy'" = []);
  check_only_code "L004"
    (Framework.Lint.check_filter ~path:"t" "host='graphene-2.lyon'")

let test_l018_executor_starvation () =
  let diags =
    Framework.Lint.check_schedulability ~path:"q"
      ~policy:Framework.Scheduler.smart_policy ~executors:1 catalog
  in
  check_only_code "L018" diags;
  checkb "provable oversubscription is an error" true
    (Framework.Lint.errors diags <> [])

let test_l018_near_capacity_warns () =
  let diags =
    Framework.Lint.check_schedulability ~path:"q"
      ~policy:Framework.Scheduler.smart_policy ~executors:3 catalog
  in
  check_only_code "L018" diags;
  checkb "demand within capacity but above the watermark warns" true
    (Framework.Lint.errors diags = [])

let prop_l018_monotone_in_executors =
  QCheck.Test.make ~count:30
    ~name:"capacity findings only improve as executors grow"
    QCheck.(int_range 1 12)
    (fun executors ->
      let at n =
        Framework.Lint.check_schedulability ~path:"q"
          ~policy:Framework.Scheduler.smart_policy ~executors:n catalog
      in
      let errs ds = Framework.Lint.errors ds <> [] in
      let any ds = ds <> [] in
      ((not (errs (at (executors + 1)))) || errs (at executors))
      && ((not (any (at (executors + 1)))) || any (at executors)))

let site_spread_pair () =
  (* Two simultaneous multi-pool acquisitions over the same >=2-cluster
     site admit a circular wait unless something serializes them. *)
  let multi_cluster_site =
    List.find
      (fun s -> List.length (Testbed.Inventory.clusters_of_site s) >= 2)
      Testbed.Inventory.sites
  in
  let c =
    List.find
      (fun c ->
        Framework.Testdef.need c.Framework.Testdef.family
        = Framework.Testdef.Site_spread
        && c.Framework.Testdef.site = Some multi_cluster_site)
      catalog
  in
  [ c; { c with Framework.Testdef.config_id = c.Framework.Testdef.config_id ^ ":b" } ]

let test_l019_site_spread_deadlock () =
  let configs = site_spread_pair () in
  let diags =
    Framework.Lint.check_schedulability ~path:"q"
      ~policy:Framework.Scheduler.naive_policy ~executors:64 configs
  in
  check_only_code "L019" diags;
  checkb "a deadlock cycle is an error" true
    (Framework.Lint.errors diags <> [])

let test_l019_serialized_cannot_deadlock () =
  let configs = site_spread_pair () in
  checkb "one-job-per-site serializes the acquisitions" true
    (Framework.Lint.check_schedulability ~path:"q"
       ~policy:Framework.Scheduler.smart_policy ~executors:64 configs
    = [])

let test_l020_oversized_federation () =
  (* From 65537 members the fleet range [0x20000, ...) runs into itself
     colliding with the link range [0x10000, 0x10000 + members). *)
  let diags =
    Framework.Lint.check_federation ~path:"fed"
      { Framework.Federation.default_config with
        Framework.Federation.testbeds = 65537;
      }
  in
  checkb
    (Printf.sprintf "oversized fleet trips the stream registry (got: %s)"
       (String.concat "," (codes diags)))
    true
    (List.mem "L020" (codes diags))

let test_l020_legacy_layout_collides () =
  (* The pre-registry layout derived fleet members at bare index i; the
     registry proves it collides with the interleave tag (0x1E) from 31
     testbeds — the latent defect this pass exists to catch. *)
  let legacy = { Simkit.Streams.name = "fleet members (legacy)"; base = 0; count = 50 } in
  let collisions =
    Simkit.Streams.overlaps
      [ legacy; Simkit.Streams.interleave; Simkit.Streams.coordinator ]
  in
  checki "interleave aliased" 1 (List.length collisions)

let test_l020_registry_clean_at_roadmap_scales () =
  List.iter
    (fun members ->
      checkb
        (Printf.sprintf "registry collision-free at %d members" members)
        true
        (Simkit.Streams.overlaps (Simkit.Streams.registry ~members) = []))
    [ 1; 31; 50; 193; 65536 ]

let prop_stream_overlaps_oracle =
  QCheck.Test.make ~count:200
    ~name:"overlap detection agrees with brute-force tag enumeration"
    QCheck.(
      list_of_size (Gen.int_range 0 5)
        (pair (int_bound 40) (int_range (-2) 12)))
    (fun raw ->
      let ranges =
        List.mapi
          (fun i (base, count) ->
            { Simkit.Streams.name = Printf.sprintf "r%d" i; base; count })
          raw
      in
      let brute a b =
        a.Simkit.Streams.count > 0 && b.Simkit.Streams.count > 0
        && List.exists
             (fun t ->
               t >= b.Simkit.Streams.base
               && t < b.Simkit.Streams.base + b.Simkit.Streams.count)
             (List.init a.Simkit.Streams.count (fun i -> a.Simkit.Streams.base + i))
      in
      let expected = ref 0 in
      List.iteri
        (fun i a ->
          List.iteri (fun j b -> if j > i && brute a b then incr expected) ranges)
        ranges;
      List.length (Simkit.Streams.overlaps ranges) = !expected)

(* ---- abstract-interpretation soundness oracle ------------------------------- *)

(* Random synthetic inventories + random filters: the concrete
   feasible-host count (enumerating Semlint.host_props rows through the
   runtime Oar.Expr.eval) must lie inside the proved interval. *)

let base_spec = List.hd Testbed.Inventory.clusters

let gen_specs =
  let open QCheck.Gen in
  let site = oneofl [ "nancy"; "lyon"; "grenoble" ] in
  let spec i =
    map
      (fun (site, (nodes, freq, ram), (gpu, ib, rate)) ->
        { base_spec with
          Testbed.Inventory.cluster = Printf.sprintf "q%c" (Char.chr (97 + i));
          site;
          nodes;
          freq_ghz = freq;
          ram_gb = ram;
          has_gpu = gpu;
          has_ib = ib;
          nic_rate_gbps = rate;
        })
      (triple site
         (triple (int_range 1 6) (oneofl [ 1.7; 2.27; 3.0 ]) (oneofl [ 16; 64; 128 ]))
         (triple bool bool (oneofl [ 1.0; 10.0 ])))
  in
  int_range 1 3 >>= fun n -> flatten_l (List.init n spec)

let gen_filter_expr =
  let open QCheck.Gen in
  let prop =
    oneofl
      [ "cluster"; "site"; "cores"; "cpufreq"; "memnode"; "gpu"; "ib";
        "eth10g"; "deploy"; "host" ]
  in
  let value =
    oneof
      [ map (fun i -> Oar.Expr.I i) (int_range 0 130);
        map
          (fun s -> Oar.Expr.S s)
          (oneofl
             [ "qa"; "qb"; "nancy"; "lyon"; "YES"; "NO"; "2.27"; "64";
               "qa-2.nancy"; "qb-1.lyon"; "64G" ]) ]
  in
  let op =
    oneofl [ Oar.Expr.Eq; Oar.Expr.Neq; Oar.Expr.Ge; Oar.Expr.Le; Oar.Expr.Gt; Oar.Expr.Lt ]
  in
  let cmp = map3 (fun p o v -> Oar.Expr.Cmp (p, o, v)) prop op value in
  sized_size (int_bound 4)
    (fix (fun self n ->
         if n <= 0 then
           frequency
             [ (6, cmp); (1, return Oar.Expr.True); (1, return Oar.Expr.False) ]
         else
           frequency
             [ (3, cmp);
               (2, map2 (fun a b -> Oar.Expr.And (a, b)) (self (n - 1)) (self (n - 1)));
               (2, map2 (fun a b -> Oar.Expr.Or (a, b)) (self (n - 1)) (self (n - 1)));
               (1, map (fun a -> Oar.Expr.Not a) (self (n - 1))) ]))

let arb_soundness_case =
  QCheck.make
    ~print:(fun (specs, e) ->
      Printf.sprintf "%s over [%s]"
        (Oar.Expr.to_string e)
        (String.concat "; "
           (List.map
              (fun s ->
                Printf.sprintf "%s.%s x%d" s.Testbed.Inventory.cluster
                  s.Testbed.Inventory.site s.Testbed.Inventory.nodes)
              specs)))
    QCheck.Gen.(pair gen_specs gen_filter_expr)

let prop_bounds_sound =
  QCheck.Test.make ~count:1000
    ~name:"proved per-cluster bounds always contain the concrete count"
    arb_soundness_case
    (fun (specs, e) ->
      let dom = Framework.Semlint.domain_of_clusters specs in
      List.for_all
        (fun (spec, { Framework.Semlint.lo; hi }) ->
          let concrete = ref 0 in
          for i = 1 to spec.Testbed.Inventory.nodes do
            let row = Framework.Semlint.host_props spec i in
            if Oar.Expr.eval e ~props:(fun p -> List.assoc_opt p row) then
              incr concrete
          done;
          lo <= !concrete && !concrete <= hi)
        (Framework.Semlint.cluster_bounds dom e))

let prop_bounds_sound_after_normalize =
  QCheck.Test.make ~count:500
    ~name:"normalize + abstraction agree with the runtime evaluator"
    arb_soundness_case
    (fun (specs, e) ->
      let dom = Framework.Semlint.domain_of_clusters specs in
      let n = Oar.Expr.normalize e in
      List.for_all
        (fun (spec, { Framework.Semlint.lo; hi }) ->
          let concrete = ref 0 in
          for i = 1 to spec.Testbed.Inventory.nodes do
            let row = Framework.Semlint.host_props spec i in
            if Oar.Expr.eval e ~props:(fun p -> List.assoc_opt p row) then
              incr concrete
          done;
          lo <= !concrete && !concrete <= hi)
        (Framework.Semlint.cluster_bounds dom n))

(* ---- qcheck mutation suite -------------------------------------------------- *)

let prop_config_mutations =
  QCheck.Test.make ~count:100
    ~name:"mutated catalog configs are flagged with exactly their class"
    QCheck.(pair (int_bound (List.length catalog - 1)) (int_bound 2))
    (fun (idx, defect) ->
      let c = List.nth catalog idx in
      let mutated, expected =
        match defect with
        | 0 -> ([ c; c ], "L001")
        | 1 ->
          ([ { c with Framework.Testdef.cluster = Some "nonexistent-1" } ], "L002")
        | _ -> ([ { c with Framework.Testdef.site = Some "atlantis" } ], "L002")
      in
      codes (Framework.Lint.check_configs mutated) = [ expected ])

let prop_generated_filters =
  QCheck.Test.make ~count:100
    ~name:"filters over a real cluster lint clean; contradictions are L004"
    QCheck.(
      pair (int_bound (List.length Testbed.Inventory.clusters - 1)) bool)
    (fun (idx, contradict) ->
      let spec = List.nth Testbed.Inventory.clusters idx in
      if contradict then
        let wrong_site =
          List.find
            (fun s -> not (String.equal s spec.Testbed.Inventory.site))
            Testbed.Inventory.sites
        in
        let filter =
          Printf.sprintf "cluster='%s' and site='%s'"
            spec.Testbed.Inventory.cluster wrong_site
        in
        codes (Framework.Lint.check_filter ~path:"q" filter) = [ "L004" ]
      else
        let filter =
          Printf.sprintf "cluster='%s' and site='%s'"
            spec.Testbed.Inventory.cluster spec.Testbed.Inventory.site
        in
        Framework.Lint.check_filter ~path:"q" filter = [])

let prop_policy_mutations =
  QCheck.Test.make ~count:50
    ~name:"out-of-range policy knobs map to their diagnostic code"
    QCheck.(pair (int_bound 2) (int_range 1 100))
    (fun (defect, magnitude_i) ->
      let magnitude = float_of_int magnitude_i in
      let p = Framework.Scheduler.smart_policy in
      let mutated, expected =
        match defect with
        | 0 ->
          ( { p with Framework.Scheduler.poll_period = -.magnitude },
            "L008" )
        | 1 ->
          ( { p with Framework.Scheduler.retry_budget = -int_of_float magnitude },
            "L009" )
        | _ ->
          ( { p with Framework.Scheduler.backoff_jitter = 1.5 +. magnitude },
            "L009" )
      in
      codes (Framework.Lint.check_policy ~path:"q" mutated) = [ expected ])

let prop_serve_mutations =
  QCheck.Test.make ~count:50
    ~name:"out-of-range serve knobs are flagged L014"
    QCheck.(pair (int_bound 4) (int_range 1 100))
    (fun (defect, magnitude_i) ->
      let magnitude = float_of_int magnitude_i in
      let sc = Framework.Serve.default_config in
      let mutated =
        match defect with
        | 0 -> { sc with Framework.Serve.rate_limit = -.magnitude }
        | 1 -> { sc with Framework.Serve.tick_period = -.magnitude }
        | 2 -> { sc with Framework.Serve.conditional_fraction = 1.0 +. magnitude }
        | 3 -> { sc with Framework.Serve.hysteresis_s = -.magnitude }
        | _ ->
          { sc with
            Framework.Serve.fallback_queue = sc.Framework.Serve.stale_queue;
          }
      in
      codes (Framework.Lint.check_serve ~path:"q" mutated) = [ "L014" ])

let prop_federation_mutations =
  QCheck.Test.make ~count:50
    ~name:"out-of-range federation knobs are flagged L015"
    QCheck.(pair (int_bound 6) (int_range 1 100))
    (fun (defect, magnitude_i) ->
      let m = float_of_int magnitude_i in
      let fc = Framework.Federation.default_config in
      let mutated =
        match defect with
        | 0 ->
          { fc with
            Framework.Federation.shards =
              fc.Framework.Federation.testbeds + magnitude_i;
          }
        | 1 -> { fc with Framework.Federation.testbeds = -magnitude_i }
        | 2 ->
          (* Anywhere in (0, min_cross_latency): positive, but breaks the
             conservative-lookahead contract. *)
          { fc with
            Framework.Federation.lookahead =
              Framework.Federation.min_cross_latency *. (1.0 -. (m /. 101.0));
          }
        | 3 -> { fc with Framework.Federation.vlan_request_period = -.m }
        | 4 -> { fc with Framework.Federation.audit_period = -.m }
        | 5 -> { fc with Framework.Federation.backbone_faults_per_year = -.m }
        | _ ->
          { fc with
            Framework.Federation.ranges =
              { fc.Framework.Federation.ranges with
                Testbed.Fleet.executors = (-magnitude_i, 4);
              };
          }
      in
      let diags = Framework.Lint.check_federation ~path:"q" mutated in
      codes diags = [ "L015" ] && Framework.Lint.errors diags <> [])

(* ---- runtime auditor --------------------------------------------------------- *)

let test_audit_registered_check_fires () =
  let engine = Simkit.Engine.create () in
  let audit = Simkit.Audit.create ~period:10.0 engine in
  let healthy = ref true in
  Simkit.Audit.register audit ~name:"flag" (fun () ->
      if !healthy then Ok () else Error "flag dropped");
  Simkit.Audit.start audit;
  ignore (Simkit.Engine.schedule_at engine ~time:35.0 (fun _ -> healthy := false));
  Simkit.Engine.run_until engine 60.0;
  let vs = Simkit.Audit.violations audit in
  checkb "violations recorded once unhealthy" true (vs <> []);
  checkb "all violations name the failing check" true
    (List.for_all (fun v -> String.equal v.Simkit.Audit.check "flag") vs);
  checkb "first violation at the first tick past the flip" true
    ((List.hd vs).Simkit.Audit.at >= 35.0);
  checkb "checks ran at every cadence tick" true
    (Simkit.Audit.checks_run audit >= 6)

let test_audit_race_detected () =
  let engine = Simkit.Engine.create () in
  let audit = Simkit.Audit.create ~period:1e9 engine in
  let counter = ref 0 in
  Simkit.Audit.watch audit ~name:"counter" (fun () -> !counter);
  Simkit.Audit.start audit;
  ignore (Simkit.Engine.schedule_at engine ~time:5.0 ~label:"a" (fun _ -> incr counter));
  ignore (Simkit.Engine.schedule_at engine ~time:5.0 ~label:"b" (fun _ -> incr counter));
  Simkit.Engine.run_until engine 10.0;
  checki "one race flagged" 1 (Simkit.Audit.races_flagged audit);
  checkb "race violation names the probe and both sources" true
    (List.exists
       (fun v -> String.equal v.Simkit.Audit.check "event-order-race")
       (Simkit.Audit.violations audit))

let test_audit_no_race_same_source () =
  let engine = Simkit.Engine.create () in
  let audit = Simkit.Audit.create ~period:1e9 engine in
  let counter = ref 0 in
  Simkit.Audit.watch audit ~name:"counter" (fun () -> !counter);
  Simkit.Audit.start audit;
  (* Same logical source: commutation is not an observable hazard. *)
  ignore (Simkit.Engine.schedule_at engine ~time:5.0 ~label:"a" (fun _ -> incr counter));
  ignore (Simkit.Engine.schedule_at engine ~time:5.0 ~label:"a" (fun _ -> incr counter));
  (* Distinct sources at distinct times: no tie, no race. *)
  ignore (Simkit.Engine.schedule_at engine ~time:6.0 ~label:"b" (fun _ -> incr counter));
  ignore (Simkit.Engine.schedule_at engine ~time:7.0 ~label:"c" (fun _ -> incr counter));
  (* Time-tied but only one of them touches the watched state. *)
  ignore (Simkit.Engine.schedule_at engine ~time:8.0 ~label:"d" (fun _ -> incr counter));
  ignore (Simkit.Engine.schedule_at engine ~time:8.0 ~label:"e" (fun _ -> ()));
  Simkit.Engine.run_until engine 10.0;
  checki "no races flagged" 0 (Simkit.Audit.races_flagged audit)

let test_audit_unlabelled_events_never_race () =
  let engine = Simkit.Engine.create () in
  let audit = Simkit.Audit.create ~period:1e9 engine in
  let counter = ref 0 in
  Simkit.Audit.watch audit ~name:"counter" (fun () -> !counter);
  Simkit.Audit.start audit;
  ignore (Simkit.Engine.schedule_at engine ~time:5.0 (fun _ -> incr counter));
  ignore (Simkit.Engine.schedule_at engine ~time:5.0 (fun _ -> incr counter));
  Simkit.Engine.run_until engine 10.0;
  checki "anonymous events cannot be attributed" 0
    (Simkit.Audit.races_flagged audit)

let test_scheduler_audit_check_live () =
  let env = Framework.Env.create ~seed:77L () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  List.iter (Framework.Scheduler.enable_family s) Framework.Testdef.all_families;
  Framework.Scheduler.start s;
  let failures = ref [] in
  (* Cross-check the scheduler's incremental state every 2 simulated
     hours of a 3-day full-catalog run. *)
  Simkit.Engine.every (Framework.Env.engine env) ~period:7200.0 (fun _ ->
      (match Framework.Scheduler.audit_check s with
       | Ok () -> ()
       | Error e -> failures := e :: !failures);
      true);
  Framework.Env.run_until env (3.0 *. Simkit.Calendar.day);
  checkb
    (Printf.sprintf "audit_check holds throughout (%s)"
       (String.concat " | " !failures))
    true (!failures = [])

let test_auditor_clean_on_healthy_env () =
  let env = Framework.Env.create ~seed:78L () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  List.iter (Framework.Scheduler.enable_family s) Framework.Testdef.all_families;
  Framework.Scheduler.start s;
  let audit = Framework.Auditor.attach ~period:3600.0 ~scheduler:s env in
  Simkit.Audit.start audit;
  Framework.Env.run_until env (2.0 *. Simkit.Calendar.day);
  let summary = Simkit.Audit.summary audit in
  checkb "checks ran" true (summary.Simkit.Audit.checks_run > 100);
  checkb "events observed" true (summary.Simkit.Audit.events_observed > 0);
  checkb
    (Printf.sprintf "no violations on a healthy run (%s)"
       (String.concat " | "
          (List.map
             (fun v -> v.Simkit.Audit.check ^ ": " ^ v.Simkit.Audit.detail)
             summary.Simkit.Audit.violations)))
    true
    (summary.Simkit.Audit.violations = [])

let light_workload =
  { Oar.Workload.default_profile with Oar.Workload.base_rate_per_hour = 8.0 }

let test_campaign_audit_byte_identical () =
  let base =
    { Framework.Campaign.default_config with
      Framework.Campaign.months = 1;
      seed = 55L;
      workload = Some light_workload;
    }
  in
  let off = Framework.Campaign.run base in
  let on_ = Framework.Campaign.run { base with Framework.Campaign.audit = true } in
  checkb "audit-off report has no audit member" true
    (off.Framework.Campaign.audit = None);
  checkb "audit-on report carries the summary" true
    (on_.Framework.Campaign.audit <> None);
  let strip r = { r with Framework.Campaign.audit = None } in
  Alcotest.(check string)
    "audited campaign reproduces the unaudited report byte for byte"
    (Framework.Report.to_string (strip off))
    (Framework.Report.to_string (strip on_));
  match on_.Framework.Campaign.audit with
  | Some s ->
    checkb "campaign audit ran its checks" true (s.Simkit.Audit.checks_run > 0);
    checkb "campaign audit is violation-free" true (s.Simkit.Audit.violations = [])
  | None -> ()

(* ---- rendering --------------------------------------------------------------- *)

let test_render_and_json () =
  let diags =
    Framework.Lint.check_filter ~path:"example" "cluster='graphene' and site='lyon'"
  in
  let text = Framework.Lint.render diags in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "render mentions the code" true (contains text "L004");
  match Framework.Lint.to_json diags with
  | Simkit.Json.Obj members ->
    checkb "json has diagnostics member" true
      (List.mem_assoc "diagnostics" members);
    (match List.assoc "errors" members with
     | Simkit.Json.Int 1 -> ()
     | _ -> Alcotest.fail "expected exactly one error in json summary")
  | _ -> Alcotest.fail "expected a json object"

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "lint"
    [
      ( "clean",
        [ Alcotest.test_case "catalog" `Quick test_catalog_clean;
          Alcotest.test_case "presets" `Quick test_presets_clean ] );
      ( "defect classes",
        [ Alcotest.test_case "L001 duplicate id" `Quick test_l001_duplicate_id;
          Alcotest.test_case "L002 unknown cluster" `Quick test_l002_unknown_cluster;
          Alcotest.test_case "L002 site/cluster contradiction" `Quick
            test_l002_site_contradicts_cluster;
          Alcotest.test_case "L003 kwapi off wattmeter site" `Quick
            test_l003_kwapi_off_wattmeter_site;
          Alcotest.test_case "L003 mpigraph without ib" `Quick
            test_l003_mpigraph_without_ib;
          Alcotest.test_case "L004 unsatisfiable filter" `Quick
            test_l004_unsatisfiable_filter;
          Alcotest.test_case "L005 vacuous filter" `Quick test_l005_vacuous_filter;
          Alcotest.test_case "L006 syntax error" `Quick test_l006_syntax_error;
          Alcotest.test_case "L007 unknown property" `Quick test_l007_unknown_property;
          Alcotest.test_case "L008 bad poll period" `Quick test_l008_bad_poll_period;
          Alcotest.test_case "L008 peak starvation" `Quick test_l008_peak_starvation;
          Alcotest.test_case "L009 zero retry budget" `Quick
            test_l009_zero_retry_budget;
          Alcotest.test_case "L009 bad breaker" `Quick test_l009_bad_breaker;
          Alcotest.test_case "L010 unreachable quarantine" `Quick
            test_l010_unreachable_quarantine;
          Alcotest.test_case "L010 bad mttr" `Quick test_l010_bad_mttr;
          Alcotest.test_case "L011 zero months" `Quick test_l011_zero_months;
          Alcotest.test_case "L011 beyond-horizon fault" `Quick
            test_l011_beyond_horizon_fault_warns;
          Alcotest.test_case "L012 anti-affinity bottleneck" `Quick
            test_l012_anti_affinity_bottleneck;
          Alcotest.test_case "L014 unordered ladder" `Quick
            test_l014_unordered_ladder;
          Alcotest.test_case "L014 dead bucket" `Quick test_l014_dead_bucket;
          Alcotest.test_case "L014 burst caps admission" `Quick
            test_l014_burst_caps_admission_warns;
          Alcotest.test_case "L014 via campaign config" `Quick
            test_l014_via_campaign_config;
          Alcotest.test_case "L015 default federation clean" `Quick
            test_l015_default_clean;
          Alcotest.test_case "L015 shards exceed testbeds" `Quick
            test_l015_shards_exceed_testbeds;
          Alcotest.test_case "L015 non-positive shape" `Quick
            test_l015_nonpositive_shape;
          Alcotest.test_case "L015 sub-latency lookahead" `Quick
            test_l015_short_lookahead;
          Alcotest.test_case "L015 duplicate member names" `Quick
            test_l015_duplicate_names;
          Alcotest.test_case "L015 bad fleet ranges" `Quick test_l015_bad_ranges;
          Alcotest.test_case "L015 zero vlans warns" `Quick
            test_l015_zero_vlans_warns;
          Alcotest.test_case "L015 bad coordination cadences" `Quick
            test_l015_bad_cadences ] );
      ( "semantic passes",
        [ Alcotest.test_case "L016 contradiction" `Quick test_l016_contradiction;
          Alcotest.test_case "L016 tautology" `Quick test_l016_tautology;
          Alcotest.test_case "L017 lexicographic hazard" `Quick
            test_l017_lexicographic_hazard;
          Alcotest.test_case "L017 integer vs decimal is unsat" `Quick
            test_l017_integer_vs_decimal_unsat;
          Alcotest.test_case "host literal filters resolve" `Quick
            test_host_literal_filter_clean;
          Alcotest.test_case "L018 executor starvation" `Quick
            test_l018_executor_starvation;
          Alcotest.test_case "L018 near capacity warns" `Quick
            test_l018_near_capacity_warns;
          Alcotest.test_case "L019 site-spread deadlock" `Quick
            test_l019_site_spread_deadlock;
          Alcotest.test_case "L019 serialized cannot deadlock" `Quick
            test_l019_serialized_cannot_deadlock;
          Alcotest.test_case "L020 oversized federation" `Quick
            test_l020_oversized_federation;
          Alcotest.test_case "L020 legacy layout collides" `Quick
            test_l020_legacy_layout_collides;
          Alcotest.test_case "L020 registry clean at roadmap scales" `Quick
            test_l020_registry_clean_at_roadmap_scales;
          qc prop_l018_monotone_in_executors;
          qc prop_stream_overlaps_oracle ] );
      ( "soundness oracle",
        [ qc prop_bounds_sound; qc prop_bounds_sound_after_normalize ] );
      ( "mutation properties",
        [ qc prop_config_mutations; qc prop_generated_filters;
          qc prop_policy_mutations; qc prop_serve_mutations;
          qc prop_federation_mutations ] );
      ( "runtime audit",
        [ Alcotest.test_case "registered check fires" `Quick
            test_audit_registered_check_fires;
          Alcotest.test_case "race detected" `Quick test_audit_race_detected;
          Alcotest.test_case "no race without a hazard" `Quick
            test_audit_no_race_same_source;
          Alcotest.test_case "anonymous events never race" `Quick
            test_audit_unlabelled_events_never_race;
          Alcotest.test_case "scheduler self-check over 3 days" `Slow
            test_scheduler_audit_check_live;
          Alcotest.test_case "auditor clean on healthy env" `Slow
            test_auditor_clean_on_healthy_env;
          Alcotest.test_case "campaign byte-identity" `Slow
            test_campaign_audit_byte_identical ] );
      ( "rendering",
        [ Alcotest.test_case "render and json" `Quick test_render_and_json ] );
    ]
