(* Scheduler hot-path tests: corrected skipped_peak accounting, the
   anti-affinity fix for site-less configurations, the due-heap vs
   linear-scan equivalence property, and OAR filter-cache invalidation. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let mk () = Framework.Env.create ~seed:404L ()

let config_exn family ~id =
  match
    List.find_opt
      (fun c -> String.equal c.Framework.Testdef.config_id id)
      (Framework.Testdef.expand family)
  with
  | Some c -> c
  | None -> Alcotest.failf "no config %s" id

(* ---- skipped_peak: once per due-window, run as soon as peak ends ---------- *)

let test_peak_skip_counted_once () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  Framework.Scheduler.enable_family s Framework.Testdef.Disk;
  Framework.Scheduler.start s;
  (* Through Monday 18:00: every disk configuration that came due inside
     the 08:00-19:00 user window is asleep until 19:00, so it can have
     been counted at most once.  The old scheduler re-counted each of
     them on every 600 s poll (~60x per blocked configuration). *)
  Framework.Env.run_until env (18.0 *. 3600.0);
  let stats = Framework.Scheduler.stats s in
  checkb "some configurations were peak-blocked" true
    (stats.Framework.Scheduler.skipped_peak > 0);
  checkb "each blocked configuration counted at most once" true
    (stats.Framework.Scheduler.skipped_peak
    <= List.length (Framework.Testdef.expand Framework.Testdef.Disk))

let test_peak_skip_runs_when_peak_ends () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  Framework.Scheduler.enable_family s Framework.Testdef.Disk;
  Framework.Scheduler.start s;
  Framework.Env.run_until env (24.0 *. 3600.0);
  let stats = Framework.Scheduler.stats s in
  checkb "some configurations were peak-blocked" true
    (stats.Framework.Scheduler.skipped_peak > 0);
  let builds = Ci.Server.builds env.Framework.Env.ci "test_disk" in
  List.iter
    (fun b ->
      checkb "no disk build queued during user hours" false
        (Simkit.Calendar.is_peak_hours b.Ci.Build.queued_at))
    builds;
  (* Sleeping through the user window must not delay the evening run:
     blocked configurations fire on the first polls after 19:00. *)
  let peak_end = 19.0 *. 3600.0 in
  checkb "blocked configurations trigger right after peak ends" true
    (List.exists
       (fun b ->
         b.Ci.Build.queued_at >= peak_end
         && b.Ci.Build.queued_at < peak_end +. 1800.0)
       builds)

(* ---- anti-affinity: site-less configs resolve to a concrete site ---------- *)

let test_effective_site_resolution () =
  let vlan300 = config_exn Framework.Testdef.Kavlan ~id:"kavlan:300" in
  checkb "global vlan has no declared site" true
    (vlan300.Framework.Testdef.site = None);
  checks "global vlan resolves to the first inventory site"
    (List.hd Testbed.Inventory.sites)
    (match Framework.Testdef.effective_site vlan300 with
     | Some site -> site
     | None -> Alcotest.fail "global vlan has no effective site");
  (* Every node-consuming configuration must resolve somewhere, else it
     escapes the one-job-per-site rule. *)
  List.iter
    (fun c ->
      if Framework.Testdef.need c.Framework.Testdef.family <> Framework.Testdef.No_nodes
      then
        checkb
          ("effective site resolved for " ^ c.Framework.Testdef.config_id)
          true
          (Framework.Testdef.effective_site c <> None))
    (Framework.Testdef.catalog ());
  (* A declared site is always taken as-is. *)
  List.iter
    (fun c ->
      match c.Framework.Testdef.site with
      | Some _ as declared ->
        checkb
          ("declared site preserved for " ^ c.Framework.Testdef.config_id)
          true
          (Framework.Testdef.effective_site c = declared)
      | None -> ())
    (Framework.Testdef.catalog ())

let test_kavlan_anti_affinity_accounting () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  Framework.Scheduler.enable_family s Framework.Testdef.Kavlan;
  Framework.Scheduler.start s;
  let samples = ref 0 in
  (* Sample the invariant off the poll grid: at most one in-flight
     node-consuming build per effective site, and the scheduler's busy
     table mirrors the in-flight builds exactly — including the global
     vlan 300, which the old scheduler never registered. *)
  Simkit.Engine.every (Framework.Env.engine env) ~period:701.0 (fun _ ->
      let in_flight =
        List.filter
          (fun b -> not (Ci.Build.is_finished b))
          (Ci.Server.builds env.Framework.Env.ci "test_kavlan")
      in
      let sites =
        List.filter_map
          (fun b ->
            Option.bind
              (Framework.Jobs.config_of_build b)
              Framework.Testdef.effective_site)
          in_flight
        |> List.sort String.compare
      in
      checki "one in-flight kavlan build per site"
        (List.length (List.sort_uniq String.compare sites))
        (List.length sites);
      checkb "busy table mirrors in-flight builds" true
        (Framework.Scheduler.busy_sites s = sites);
      incr samples;
      true);
  Framework.Env.run_until env (6.0 *. Simkit.Calendar.day);
  checkb "invariant sampled throughout the run" true (!samples > 500);
  checkb "kavlan rotation covered the catalog" true
    ((Framework.Scheduler.stats s).Framework.Scheduler.triggered
    >= List.length (Framework.Testdef.expand Framework.Testdef.Kavlan))

(* ---- due-heap scheduler == linear-scan reference -------------------------- *)

let family_pool =
  Framework.Testdef.
    [ Refapi; Oarstate; Stdenv; Kwapi; Kavlan; Paralleldeploy; Disk ]

let run_campaign ~indexed ~seed ~families ~days ~naive =
  let env = Framework.Env.create ~seed:(Int64.of_int seed) () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let policy =
    if naive then Framework.Scheduler.naive_policy
    else Framework.Scheduler.smart_policy
  in
  let s = Framework.Scheduler.create ~policy ~indexed env in
  List.iter (Framework.Scheduler.enable_family s) families;
  Framework.Scheduler.start s;
  Framework.Env.run_until env (float_of_int days *. Simkit.Calendar.day);
  let trace =
    List.map
      (fun e -> (e.Simkit.Tracelog.time, e.Simkit.Tracelog.message))
      (Simkit.Tracelog.by_category env.Framework.Env.trace "scheduler")
  in
  (trace, Framework.Scheduler.stats s)

let equivalence_prop =
  QCheck.Test.make ~count:6
    ~name:"due-heap scheduler triggers the same sequence as the linear scan"
    QCheck.(
      quad small_nat
        (list_of_size
           (QCheck.Gen.int_range 1 2)
           (int_bound (List.length family_pool - 1)))
        (int_range 2 3) bool)
    (fun (seed, fam_idx, days, naive) ->
      let families =
        List.sort_uniq compare (List.map (List.nth family_pool) fam_idx)
      in
      let indexed = run_campaign ~indexed:true ~seed ~families ~days ~naive in
      let linear = run_campaign ~indexed:false ~seed ~families ~days ~naive in
      indexed = linear)

(* ---- OAR filter cache: reset on refresh_properties ------------------------ *)

let test_filter_cache_invalidation () =
  let env = mk () in
  let oar = env.Framework.Env.oar in
  let gpu = Oar.Expr.parse_exn "gpu='YES'" in
  let before = Oar.Manager.matching_hosts oar gpu in
  checkb "inventory has gpu hosts" true (before <> []);
  checkb "repeated query served from cache is identical" true
    (Oar.Manager.matching_hosts oar gpu = before);
  let host = List.hd before in
  (match
     Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Oar_property_desync (Testbed.Faults.Host host)
   with
   | Some _ -> ()
   | None -> Alcotest.fail "property desync injection refused");
  (* The desync corrupts the *next* property refresh; until then cached
     answers must keep matching the current property table. *)
  checkb "cache still valid before refresh" true
    (List.mem host (Oar.Manager.matching_hosts oar gpu));
  Oar.Manager.refresh_properties oar;
  let after = Oar.Manager.matching_hosts oar gpu in
  checkb "refresh invalidates the compiled filter cache" false
    (List.mem host after);
  checki "only the desynced host dropped out" (List.length before - 1)
    (List.length after);
  (* free_at_least rides the same cache: it must see the refreshed set. *)
  checkb "free_at_least sees remaining gpu hosts" true
    (Oar.Manager.free_at_least oar gpu (List.length after));
  checkb "free_at_least cannot exceed the refreshed set" false
    (Oar.Manager.free_at_least oar gpu (List.length after + 1))

let test_free_at_least_matches_free_matching_now () =
  let env = mk () in
  let oar = env.Framework.Env.oar in
  List.iter
    (fun filter_str ->
      let filter = Oar.Expr.parse_exn filter_str in
      let free = List.length (Oar.Manager.free_matching_now oar filter) in
      checkb (filter_str ^ ": free_at_least agrees at the boundary") true
        (Oar.Manager.free_at_least oar filter free);
      checkb (filter_str ^ ": free_at_least rejects free+1") false
        (Oar.Manager.free_at_least oar filter (free + 1)))
    [ "cluster='graphene'"; "site='nancy'"; "gpu='YES' and ib='YES'";
      "wattmeter='YES'" ]

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "scheduler"
    [
      ( "peak-hours accounting",
        [ Alcotest.test_case "skip counted once per due-window" `Quick
            test_peak_skip_counted_once;
          Alcotest.test_case "blocked configs run when peak ends" `Quick
            test_peak_skip_runs_when_peak_ends ] );
      ( "anti-affinity",
        [ Alcotest.test_case "effective site resolution" `Quick
            test_effective_site_resolution;
          Alcotest.test_case "kavlan busy accounting" `Slow
            test_kavlan_anti_affinity_accounting ] );
      ("equivalence", [ qc equivalence_prop ]);
      ( "filter cache",
        [ Alcotest.test_case "reset on refresh_properties" `Quick
            test_filter_cache_invalidation;
          Alcotest.test_case "free_at_least boundary" `Quick
            test_free_at_least_matches_free_matching_now ] );
    ]
