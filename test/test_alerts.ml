(* Tests for the Prometheus-style alerting rules. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () =
  let instance = Testbed.Instance.build ~seed:606L () in
  let collector = Monitoring.Collector.create instance in
  (instance, collector, Monitoring.Alerts.create collector)

let power_rule ?(name = "high-power") ?(condition = Monitoring.Alerts.Above 0.0) host =
  {
    Monitoring.Alerts.rule_name = name;
    host;
    metric = Monitoring.Collector.Power_w;
    window = 60.0;
    aggregation = Monitoring.Alerts.Mean;
    condition;
  }

let test_threshold_fires_and_resolves () =
  let instance, collector, alerts = mk () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 120.0;
  (* Load model drives cpu_load; force it high, alert on it, then idle. *)
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.8);
  Monitoring.Alerts.add_rule alerts
    {
      Monitoring.Alerts.rule_name = "cpu-hot";
      host = "grisou-1.nancy";
      metric = Monitoring.Collector.Cpu_load;
      window = 60.0;
      aggregation = Monitoring.Alerts.Mean;
      condition = Monitoring.Alerts.Above 0.5;
    };
  let fired = Monitoring.Alerts.evaluate alerts ~now:120.0 in
  checki "one alert fired" 1 (List.length fired);
  checki "firing" 1 (List.length (Monitoring.Alerts.firing alerts));
  (* Second evaluation while still hot: no duplicate. *)
  checki "no duplicate" 0 (List.length (Monitoring.Alerts.evaluate alerts ~now:180.0));
  (* Load drops: the alert resolves. *)
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.0);
  checki "nothing new fires" 0 (List.length (Monitoring.Alerts.evaluate alerts ~now:240.0));
  checki "resolved" 0 (List.length (Monitoring.Alerts.firing alerts));
  checki "history keeps it" 1 (List.length (Monitoring.Alerts.history alerts))

let test_absence_rule_detects_dead_node () =
  let instance, _collector, alerts = mk () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 120.0;
  Monitoring.Alerts.add_rule alerts
    {
      Monitoring.Alerts.rule_name = "node-silent";
      host = "grisou-2.nancy";
      metric = Monitoring.Collector.Cpu_load;
      window = 60.0;
      aggregation = Monitoring.Alerts.Mean;
      condition = Monitoring.Alerts.Absent;
    };
  checki "healthy node reports" 0 (List.length (Monitoring.Alerts.evaluate alerts ~now:120.0));
  (Testbed.Instance.node instance "grisou-2.nancy").Testbed.Node.state <-
    Testbed.Node.Down;
  let fired = Monitoring.Alerts.evaluate alerts ~now:200.0 in
  checki "silence fires" 1 (List.length fired);
  (match fired with
   | [ a ] -> checkb "no value for absence" true (a.Monitoring.Alerts.value = None)
   | _ -> ())

let test_below_rule_catches_cstates_drift () =
  (* The power signature of re-enabled C-states: idle draw drops below the
     mandated envelope.  This is the alerting analogue of the kwapi test. *)
  let instance, collector, alerts = mk () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 120.0;
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.0);
  let node = Testbed.Instance.node instance "grisou-3.nancy" in
  let idle_ref =
    Monitoring.Power.idle_of_hardware node.Testbed.Node.reference
  in
  Monitoring.Alerts.add_rule alerts
    (power_rule ~name:"idle-too-low"
       ~condition:(Monitoring.Alerts.Below (0.95 *. idle_ref))
       "grisou-3.nancy");
  checki "healthy: quiet" 0 (List.length (Monitoring.Alerts.evaluate alerts ~now:120.0));
  ignore
    (Testbed.Faults.inject_on instance.Testbed.Instance.faults ~now:120.0
       Testbed.Faults.Cpu_cstates (Testbed.Faults.Host "grisou-3.nancy"));
  checki "drift fires" 1 (List.length (Monitoring.Alerts.evaluate alerts ~now:200.0))

let test_rules_accumulate_and_render () =
  let _, _, alerts = mk () in
  Monitoring.Alerts.add_rule alerts (power_rule "grisou-1.nancy");
  Monitoring.Alerts.add_rule alerts (power_rule ~name:"second" "grisou-2.nancy");
  checki "two rules" 2 (List.length (Monitoring.Alerts.rules alerts));
  checkb "render works with no alerts" true
    (String.length (Monitoring.Alerts.render alerts) > 0)

let test_refire_after_resolution () =
  let instance, collector, alerts = mk () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 120.0;
  Monitoring.Alerts.add_rule alerts
    {
      Monitoring.Alerts.rule_name = "flap";
      host = "grisou-4.nancy";
      metric = Monitoring.Collector.Cpu_load;
      window = 30.0;
      aggregation = Monitoring.Alerts.Max;
      condition = Monitoring.Alerts.Above 0.5;
    };
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.9);
  checki "fires" 1 (List.length (Monitoring.Alerts.evaluate alerts ~now:120.0));
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.1);
  ignore (Monitoring.Alerts.evaluate alerts ~now:180.0);
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.9);
  checki "fires again after resolving" 1
    (List.length (Monitoring.Alerts.evaluate alerts ~now:240.0));
  checki "two alerts in history" 2 (List.length (Monitoring.Alerts.history alerts))

let test_healthy_floor_fires_below_and_resolves () =
  let _, _, alerts = mk () in
  (* No floor armed for the site: observations are ignored. *)
  checkb "no floor, no alert" true
    (Monitoring.Alerts.observe_site_health alerts ~now:10.0 ~site:"nancy"
       ~healthy_fraction:0.0
    = None);
  Monitoring.Alerts.set_healthy_floor alerts ~site:"nancy" ~floor:0.5;
  checkb "above the floor: quiet" true
    (Monitoring.Alerts.observe_site_health alerts ~now:20.0 ~site:"nancy"
       ~healthy_fraction:0.9
    = None);
  (match
     Monitoring.Alerts.observe_site_health alerts ~now:30.0 ~site:"nancy"
       ~healthy_fraction:0.25
   with
   | None -> Alcotest.fail "dipping below the floor must fire"
   | Some a ->
     checkb "carries the fraction" true (a.Monitoring.Alerts.value = Some 0.25);
     checkb "floor source" true
       (a.Monitoring.Alerts.source = Monitoring.Alerts.Healthy_floor "nancy"));
  (* Still below: same incident, no duplicate. *)
  checkb "no duplicate while still low" true
    (Monitoring.Alerts.observe_site_health alerts ~now:40.0 ~site:"nancy"
       ~healthy_fraction:0.3
    = None);
  checki "one firing" 1 (List.length (Monitoring.Alerts.firing alerts));
  (* Other sites have their own floors. *)
  checkb "other site unaffected" true
    (Monitoring.Alerts.observe_site_health alerts ~now:40.0 ~site:"lyon"
       ~healthy_fraction:0.0
    = None);
  (* Recovery resolves the incident. *)
  checkb "recovery is silent" true
    (Monitoring.Alerts.observe_site_health alerts ~now:50.0 ~site:"nancy"
       ~healthy_fraction:0.8
    = None);
  checki "resolved" 0 (List.length (Monitoring.Alerts.firing alerts));
  (match Monitoring.Alerts.history alerts with
   | [ a ] -> checkb "resolution stamped" true (a.Monitoring.Alerts.resolved_at = Some 50.0)
   | l -> checki "one alert in history" 1 (List.length l));
  (* A second dip opens a fresh incident. *)
  checkb "refires after recovery" true
    (Monitoring.Alerts.observe_site_health alerts ~now:60.0 ~site:"nancy"
       ~healthy_fraction:0.1
    <> None);
  checki "two in history" 2 (List.length (Monitoring.Alerts.history alerts))

let test_quarantine_notify_and_resolve () =
  let _, _, alerts = mk () in
  let a =
    Monitoring.Alerts.notify_quarantine alerts ~now:100.0 ~host:"grisou-9.nancy"
      ~reason:"3 build failures"
  in
  checkb "quarantine source" true
    (a.Monitoring.Alerts.source = Monitoring.Alerts.Quarantine "grisou-9.nancy");
  checkb "reason recorded" true (a.Monitoring.Alerts.reason = "3 build failures");
  checki "firing" 1 (List.length (Monitoring.Alerts.firing alerts));
  (* Re-notifying the same host returns the open incident. *)
  let b =
    Monitoring.Alerts.notify_quarantine alerts ~now:150.0 ~host:"grisou-9.nancy"
      ~reason:"still failing"
  in
  checkb "same incident" true (a == b);
  checki "still one in history" 1 (List.length (Monitoring.Alerts.history alerts));
  checkb "render shows the incident" true
    (String.length (Monitoring.Alerts.render alerts) > 0);
  Monitoring.Alerts.resolve_quarantine alerts ~now:200.0 ~host:"grisou-9.nancy";
  checki "resolved on release" 0 (List.length (Monitoring.Alerts.firing alerts));
  checkb "resolution stamped" true (a.Monitoring.Alerts.resolved_at = Some 200.0);
  (* Resolving a host with no open incident is a no-op. *)
  Monitoring.Alerts.resolve_quarantine alerts ~now:210.0 ~host:"grisou-9.nancy";
  checki "history unchanged" 1 (List.length (Monitoring.Alerts.history alerts))

let () =
  Alcotest.run "alerts"
    [
      ( "alerts",
        [ Alcotest.test_case "threshold fire/resolve" `Quick
            test_threshold_fires_and_resolves;
          Alcotest.test_case "absence detects dead node" `Quick
            test_absence_rule_detects_dead_node;
          Alcotest.test_case "below catches c-states" `Quick
            test_below_rule_catches_cstates_drift;
          Alcotest.test_case "rules + render" `Quick test_rules_accumulate_and_render;
          Alcotest.test_case "refire after resolution" `Quick
            test_refire_after_resolution;
          Alcotest.test_case "healthy floor fires and resolves" `Quick
            test_healthy_floor_fires_below_and_resolves;
          Alcotest.test_case "quarantine notify and resolve" `Quick
            test_quarantine_notify_and_resolve ] );
    ]
