(* Tests for the failure-signature triage pipeline: canonicalization,
   the bounded-memory bug store (rings, eviction, tombstones,
   resurrection), the robustness loop (MTTR, flap escalation), the
   triage-path fault drills, and the campaign/lint/report surface. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

let qc = Qc.to_alcotest
let day = Simkit.Calendar.day
let hour = Simkit.Calendar.hour

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let evidence ?(category = "disk") ?(fault_ids = []) signature =
  { Framework.Bugtracker.signature;
    summary = "synthetic: " ^ signature;
    category;
    source_test = "test_triage";
    fault_ids }

(* ---- canonicalization -------------------------------------------------------- *)

let canon env signature =
  Framework.Triage.canonical_signature
    (Framework.Triage.canonicalize env (evidence signature))

let test_canonicalization_clusters_hosts () =
  let env = Framework.Env.create ~seed:1L () in
  let a = canon env "disk:grisou-1.nancy:cache" in
  let b = canon env "disk:grisou-42.nancy:cache" in
  checks "same cluster, same key" a b;
  checks "host folded to cluster" "disk|disk:cache|cluster/grisou" a;
  let c = canon env "disk:graphene-1.nancy:cache" in
  checkb "different cluster, different key" false (String.equal a c);
  checks "site token becomes site scope" "disk|oarstate:service|site/nancy"
    (canon env "oarstate:nancy:service");
  checks "cluster token becomes cluster scope" "disk|ofed|cluster/grisou"
    (canon env "ofed:grisou");
  checks "image token becomes image scope"
    "disk|env:postinstall|image/debian8-x64-std"
    (canon env "env:debian8-x64-std:postinstall");
  checks "no location token stays global" "disk|regression:mpi|global"
    (canon env "regression:mpi");
  checks "unknown host stays host scope" "disk|disk|host/ghost-1.atlantis"
    (canon env "disk:ghost-1.atlantis")

(* ---- bounded store: rings, last_seen, events ---------------------------------- *)

let small_limits =
  { Framework.Bugtracker.ring_size = 2; max_live = 2; min_idle = 0.0;
    series_cadence = 1.0; series_points = 4 }

let test_last_seen_refreshed () =
  let t = Framework.Bugtracker.create () in
  let bug =
    match Framework.Bugtracker.file t ~now:0.0 (evidence "a") with
    | `New bug -> bug
    | `Duplicate _ -> Alcotest.fail "expected a new bug"
  in
  checkf "filed_at" 0.0 bug.Framework.Bugtracker.filed_at;
  checkf "last_seen at filing" 0.0 bug.Framework.Bugtracker.last_seen;
  (match Framework.Bugtracker.file t ~now:(2.0 *. day) (evidence "a") with
   | `Duplicate b ->
     checkf "last_seen refreshed" (2.0 *. day) b.Framework.Bugtracker.last_seen;
     checki "occurrences" 2 b.Framework.Bugtracker.occurrences
   | `New _ -> Alcotest.fail "expected a duplicate");
  checkb "unbounded ring stays empty" true (bug.Framework.Bugtracker.recent = [])

let test_evidence_ring_bounded () =
  let t = Framework.Bugtracker.create ~limits:small_limits () in
  for i = 1 to 5 do
    ignore (Framework.Bugtracker.file t ~now:(float_of_int i) (evidence "a"))
  done;
  let bug = Option.get (Framework.Bugtracker.find t ~signature:"a") in
  checki "ring bounded to 2" 2 (List.length bug.Framework.Bugtracker.recent);
  checki "occurrences keep full count" 5 bug.Framework.Bugtracker.occurrences;
  let series = Option.get bug.Framework.Bugtracker.series in
  checkb "series recorded" true (Simkit.Timeseries.length series > 0)

let test_event_order_reopen_before_refile () =
  let t = Framework.Bugtracker.create () in
  let events = ref [] in
  Framework.Bugtracker.on_event t (fun e -> events := e :: !events);
  let bug =
    match Framework.Bugtracker.file t ~now:0.0 (evidence "a") with
    | `New bug -> bug
    | `Duplicate _ -> Alcotest.fail "new expected"
  in
  Framework.Bugtracker.mark_fixed t ~now:1.0 bug;
  ignore (Framework.Bugtracker.file t ~now:2.0 (evidence "a"));
  (match !events with
   | Framework.Bugtracker.Refiled _ :: Framework.Bugtracker.Reopened _ :: _ -> ()
   | _ -> Alcotest.fail "expected Reopened then Refiled (newest first)");
  checki "reopen counted" 1 bug.Framework.Bugtracker.reopens;
  checkb "bug open again" true (bug.Framework.Bugtracker.status = Framework.Bugtracker.Open)

let test_eviction_tombstones_and_resurrection () =
  let t = Framework.Bugtracker.create ~limits:small_limits () in
  ignore (Framework.Bugtracker.file t ~now:0.0 (evidence "a"));
  ignore (Framework.Bugtracker.file t ~now:1.0 (evidence "b"));
  ignore (Framework.Bugtracker.file t ~now:2.0 (evidence "c"));
  let stats = Framework.Bugtracker.stats t in
  checkb "live within cap" true
    (stats.Framework.Bugtracker.live <= small_limits.Framework.Bugtracker.max_live);
  checkb "peak within cap" true
    (stats.Framework.Bugtracker.peak_live
    <= small_limits.Framework.Bugtracker.max_live);
  checkb "something evicted" true (stats.Framework.Bugtracker.evicted > 0);
  checki "distinct filings survive eviction" 3
    stats.Framework.Bugtracker.filed_total;
  checkb "tombstones retrievable" true (Framework.Bugtracker.tombstoned t <> []);
  (* The coldest signature was evicted; re-reporting it resurrects the
     tombstone as a duplicate with its occurrence count intact. *)
  checkb "a evicted from live store" true
    (Framework.Bugtracker.find t ~signature:"a" = None);
  checki "tombstone keeps occurrences" 1
    (Framework.Bugtracker.occurrences_of t ~signature:"a");
  (match Framework.Bugtracker.file t ~now:3.0 (evidence "a") with
   | `Duplicate bug ->
     checki "occurrences carried over" 2 bug.Framework.Bugtracker.occurrences
   | `New _ -> Alcotest.fail "resurrection must report Duplicate");
  checki "resurrection counted" 1
    (Framework.Bugtracker.stats t).Framework.Bugtracker.resurrected;
  let filed, fixed = Framework.Bugtracker.counts t in
  let filed', fixed' = Framework.Bugtracker.counts_scan t in
  checki "counts filed = oracle" filed' filed;
  checki "counts fixed = oracle" fixed' fixed

(* ---- qcheck properties -------------------------------------------------------- *)

let sig_of i = Printf.sprintf "sig-%d" i

let prop_dedup_idempotent =
  QCheck.Test.make ~count:200 ~name:"filing is dedup-idempotent"
    QCheck.(list (int_bound 9))
    (fun sigs ->
      let t = Framework.Bugtracker.create () in
      let news =
        List.fold_left
          (fun acc i ->
            match Framework.Bugtracker.file t ~now:0.0 (evidence (sig_of i)) with
            | `New _ -> acc + 1
            | `Duplicate _ -> acc)
          0 sigs
      in
      let distinct = List.length (List.sort_uniq compare sigs) in
      let filed, _ = Framework.Bugtracker.counts t in
      news = distinct && filed = distinct)

let prop_fault_ids_merge_monotone =
  QCheck.Test.make ~count:200
    ~name:"reopen merges fault ids monotonically (sorted, deduplicated)"
    QCheck.(pair (list (int_bound 50)) (list (int_bound 50)))
    (fun (ids1, ids2) ->
      let t = Framework.Bugtracker.create () in
      let bug =
        match
          Framework.Bugtracker.file t ~now:0.0 (evidence ~fault_ids:ids1 "a")
        with
        | `New bug -> bug
        | `Duplicate _ -> assert false
      in
      Framework.Bugtracker.mark_fixed t ~now:1.0 bug;
      ignore (Framework.Bugtracker.file t ~now:2.0 (evidence ~fault_ids:ids2 "a"));
      bug.Framework.Bugtracker.fault_ids
      = List.sort_uniq compare (ids1 @ ids2)
      && bug.Framework.Bugtracker.status = Framework.Bugtracker.Open
      && bug.Framework.Bugtracker.reopens = 1)

(* Bounded store vs the unbounded reference: eviction may never lose an
   occurrence, and the O(1) counters must match the list-scan oracle. *)
let prop_eviction_conserves_occurrences =
  QCheck.Test.make ~count:100
    ~name:"eviction conserves occurrence counts (tombstones = reference)"
    QCheck.(list (pair (int_bound 29) bool))
    (fun ops ->
      let limits =
        { Framework.Bugtracker.ring_size = 2; max_live = 8; min_idle = 0.0;
          series_cadence = 1.0; series_points = 2 }
      in
      let bounded = Framework.Bugtracker.create ~limits () in
      let unbounded = Framework.Bugtracker.create () in
      List.iteri
        (fun i (s, fix) ->
          let now = float_of_int i *. 100.0 in
          let e = evidence (sig_of s) in
          let apply t =
            let bug =
              match Framework.Bugtracker.file t ~now e with
              | `New bug | `Duplicate bug -> bug
            in
            if fix then Framework.Bugtracker.mark_fixed t ~now bug
          in
          apply bounded;
          apply unbounded)
        ops;
      let same_occurrences =
        List.for_all
          (fun s ->
            Framework.Bugtracker.occurrences_of bounded ~signature:(sig_of s)
            = Framework.Bugtracker.occurrences_of unbounded ~signature:(sig_of s))
          (List.init 30 Fun.id)
      in
      let stats = Framework.Bugtracker.stats bounded in
      let live_occ =
        List.fold_left
          (fun acc b -> acc + b.Framework.Bugtracker.occurrences)
          0
          (Framework.Bugtracker.all bounded)
      in
      same_occurrences
      && Framework.Bugtracker.counts bounded = Framework.Bugtracker.counts_scan bounded
      && fst (Framework.Bugtracker.counts bounded)
         = fst (Framework.Bugtracker.counts unbounded)
      && stats.Framework.Bugtracker.peak_live <= 8
      && live_occ + stats.Framework.Bugtracker.tombstoned_occurrences
         = List.length ops)

(* ---- timeseries binning ------------------------------------------------------- *)

let test_timeseries_add_binned () =
  let ts = Simkit.Timeseries.create ~cadence:10.0 ~max_points:4 ~name:"t" () in
  Simkit.Timeseries.add_binned ts ~time:1.0 1.0;
  Simkit.Timeseries.add_binned ts ~time:2.0 1.0;
  Simkit.Timeseries.add_binned ts ~time:12.0 5.0;
  checki "two buckets" 2 (Simkit.Timeseries.length ts);
  let t0, v0 = Simkit.Timeseries.nth ts 0 in
  checkf "first bucket floor" 0.0 t0;
  checkf "first bucket accumulated" 2.0 v0;
  let t1, v1 = Simkit.Timeseries.nth ts 1 in
  checkf "second bucket floor" 10.0 t1;
  checkf "second bucket value" 5.0 v1

let test_timeseries_bounded_drops_oldest () =
  let ts = Simkit.Timeseries.create ~cadence:10.0 ~max_points:4 ~name:"t" () in
  for i = 0 to 19 do
    Simkit.Timeseries.add_binned ts ~time:(float_of_int i *. 10.0) 1.0
  done;
  checkb "length bounded" true (Simkit.Timeseries.length ts <= 4);
  checkb "drops counted" true (Simkit.Timeseries.dropped ts > 0);
  let t_last, _ = Option.get (Simkit.Timeseries.last ts) in
  checkf "newest point survives" 190.0 t_last

(* ---- triage pipeline: bundles, collapse, unstable ------------------------------ *)

let make_build ?(job = "test_disk") ~number ?retry_of () =
  { Ci.Build.job_name = job; number; axes = []; cause = "test"; retry_of;
    queued_at = 0.0; started_at = Some 0.0; finished_at = None; result = None;
    log = []; artifacts = []; touched_hosts = [ "grisou-1.nancy" ] }

let make_triage ?(config = Framework.Triage.default_config) ?alerts env =
  let tracker =
    Framework.Bugtracker.create ~limits:config.Framework.Triage.limits ()
  in
  (Framework.Triage.create ~config ?alerts env tracker, tracker)

let test_observe_assembles_bundles () =
  let env = Framework.Env.create ~seed:2L () in
  let triage, tracker = make_triage env in
  let build = make_build ~number:1 () in
  Framework.Triage.observe triage ~build ~result:Ci.Build.Failure
    [ evidence "disk:grisou-1.nancy:cache" ];
  let s = Framework.Triage.summary triage in
  checki "one build observed" 1 s.Framework.Triage.builds_observed;
  checki "one bundle" 1 s.Framework.Triage.bundles;
  checki "one bug" 1 s.Framework.Triage.filed;
  checkb "canonical signature filed" true
    (Framework.Bugtracker.find tracker
       ~signature:"disk|disk:cache|cluster/grisou"
    <> None);
  (match Framework.Triage.recent_bundles triage with
   | [ bundle ] ->
     checkb "hosts recorded" true
       (bundle.Framework.Triage.hosts = [ "grisou-1.nancy" ]);
     checkb "node health recorded" true
       (bundle.Framework.Triage.node_health <> []);
     checkb "no retry lineage on first attempt" true
       (bundle.Framework.Triage.retry_lineage = [])
   | bundles -> Alcotest.failf "expected 1 bundle, got %d" (List.length bundles))

let test_retry_storm_collapses () =
  let env = Framework.Env.create ~seed:3L () in
  let triage, tracker = make_triage env in
  let e = evidence "disk:grisou-1.nancy:cache" in
  Framework.Triage.observe triage ~build:(make_build ~number:1 ())
    ~result:Ci.Build.Failure [ e ];
  Framework.Triage.observe triage
    ~build:(make_build ~number:2 ~retry_of:1 ())
    ~result:Ci.Build.Failure [ e ];
  let s = Framework.Triage.summary triage in
  checki "retry re-report collapsed" 1 s.Framework.Triage.collapsed;
  checki "still one bug" 1 s.Framework.Triage.filed;
  let bug =
    Option.get
      (Framework.Bugtracker.find tracker
         ~signature:"disk|disk:cache|cluster/grisou")
  in
  checki "occurrences not inflated by the retry" 1
    bug.Framework.Bugtracker.occurrences;
  (* A different job re-reporting the same signature is NOT collapsed. *)
  Framework.Triage.observe triage
    ~build:(make_build ~job:"test_other" ~number:2 ~retry_of:1 ())
    ~result:Ci.Build.Failure [ e ];
  checki "cross-job duplicate filed" 2 bug.Framework.Bugtracker.occurrences

let test_unstable_filed_when_configured () =
  let env = Framework.Env.create ~seed:4L () in
  let config =
    { Framework.Triage.default_config with Framework.Triage.file_unstable = true }
  in
  let triage, tracker = make_triage ~config env in
  Framework.Triage.observe triage ~build:(make_build ~number:1 ())
    ~result:Ci.Build.Unstable [];
  let s = Framework.Triage.summary triage in
  checki "unstable observed" 1 s.Framework.Triage.unstable_observed;
  checki "synthetic ci bug filed" 1 s.Framework.Triage.filed;
  checkb "unsched signature" true
    (Framework.Bugtracker.find tracker ~signature:"ci|unsched:test_disk|global"
    <> None);
  (* Default config only counts unstable builds. *)
  let triage2, _ = make_triage env in
  Framework.Triage.observe triage2 ~build:(make_build ~number:2 ())
    ~result:Ci.Build.Unstable [];
  checki "not filed by default" 0
    (Framework.Triage.summary triage2).Framework.Triage.filed

(* ---- robustness loop: MTTR, flapping, escalation ------------------------------- *)

let test_flap_detection_escalates () =
  let env = Framework.Env.create ~seed:5L () in
  let alerts = Monitoring.Alerts.create env.Framework.Env.collector in
  let config =
    { Framework.Triage.default_config with Framework.Triage.flap_cycles = 2 }
  in
  let triage, tracker = make_triage ~config ~alerts env in
  let e = evidence "disk:grisou-1.nancy:cache" in
  Framework.Triage.ingest triage e;
  let bug =
    Option.get
      (Framework.Bugtracker.find tracker
         ~signature:"disk|disk:cache|cluster/grisou")
  in
  (* Two fixed->reopened cycles make a flapper at flap_cycles = 2. *)
  Framework.Bugtracker.mark_fixed tracker ~now:0.0 bug;
  Framework.Triage.ingest triage e;
  checki "no flap after one reopen" 0 (Framework.Triage.flapping_count triage);
  Framework.Bugtracker.mark_fixed tracker ~now:0.0 bug;
  Framework.Triage.ingest triage e;
  checki "flapper detected" 1 (Framework.Triage.flapping_count triage);
  let s = Framework.Triage.summary triage in
  checki "two reopens" 2 s.Framework.Triage.reopens;
  checki "escalated once" 1 s.Framework.Triage.escalations;
  let firing = Monitoring.Alerts.firing alerts in
  checkb "flapping alert firing" true
    (List.exists
       (fun a ->
         match a.Monitoring.Alerts.source with
         | Monitoring.Alerts.Flapping id -> id = bug.Framework.Bugtracker.id
         | _ -> false)
       firing);
  (* Fixing the flapper resolves the alert and records MTTR. *)
  Framework.Bugtracker.mark_fixed tracker ~now:0.0 bug;
  checkb "alert resolved on fix" true (Monitoring.Alerts.firing alerts = []);
  checkb "MTTR recorded for the category" true
    (List.exists
       (fun (category, _, n) -> String.equal category "disk" && n > 0)
       (Framework.Triage.summary triage).Framework.Triage.mttr_days_by_category)

(* ---- triage-path fault drills --------------------------------------------------- *)

let drill_config ~loss ~delay =
  { Framework.Triage.default_config with
    Framework.Triage.drill =
      Some { Framework.Triage.evidence_loss = loss; filing_delay = delay };
  }

let test_evidence_loss_total () =
  let env = Framework.Env.create ~seed:6L () in
  let triage, tracker = make_triage ~config:(drill_config ~loss:1.0 ~delay:0.0) env in
  for i = 1 to 10 do
    Framework.Triage.ingest triage (evidence (Printf.sprintf "disk:mode%d" i))
  done;
  let s = Framework.Triage.summary triage in
  checki "everything lost" 10 s.Framework.Triage.lost;
  checki "nothing filed" 0 s.Framework.Triage.filed;
  checki "store empty" 0 (fst (Framework.Bugtracker.counts tracker))

let test_evidence_loss_dedup_converges () =
  (* With 50% loss, re-reporting failures makes the distinct-bug count
     converge to the lossless one: dedup is robust to dropped bundles. *)
  let distinct_bugs ~loss =
    let env = Framework.Env.create ~seed:7L () in
    let triage, tracker = make_triage ~config:(drill_config ~loss ~delay:0.0) env in
    for _ = 1 to 40 do
      for i = 1 to 5 do
        Framework.Triage.ingest triage (evidence (Printf.sprintf "disk:mode%d" i))
      done
    done;
    (fst (Framework.Bugtracker.counts tracker), Framework.Triage.summary triage)
  in
  let lossless, _ = distinct_bugs ~loss:0.0 in
  let lossy, s = distinct_bugs ~loss:0.5 in
  checki "lossless files each mode once" 5 lossless;
  checki "lossy converges to the same distinct bugs" lossless lossy;
  checkb "losses actually happened" true (s.Framework.Triage.lost > 0)

let test_delayed_filing_drill () =
  let env = Framework.Env.create ~seed:8L () in
  let triage, tracker = make_triage ~config:(drill_config ~loss:0.0 ~delay:hour) env in
  Framework.Triage.ingest triage (evidence "disk:grisou-1.nancy:cache");
  checki "not filed yet" 0 (fst (Framework.Bugtracker.counts tracker));
  checki "delay counted" 1 (Framework.Triage.summary triage).Framework.Triage.delayed;
  Framework.Env.run_until env (2.0 *. hour);
  checki "filed after the delay" 1 (fst (Framework.Bugtracker.counts tracker));
  let bug =
    Option.get
      (Framework.Bugtracker.find tracker
         ~signature:"disk|disk:cache|cluster/grisou")
  in
  checkf "filed at the delayed time" hour bug.Framework.Bugtracker.filed_at

(* ---- operator: regressions first ------------------------------------------------ *)

let quiet_operator =
  { Framework.Operator.default_config with
    Framework.Operator.fix_capacity_per_day = 4.0;
    (* credit reaches 1.0 exactly at the first 6 h sweep: one fix *)
    triage_delay = 0.0;
    maintenance_period = 1000.0 *. day;
    maintenance_fault_rate = 0.0;
    complaint_rate_per_day = 0.0;
  }

let fixed_first ~prioritize =
  let env = Framework.Env.create ~seed:9L () in
  let tracker = Framework.Bugtracker.create () in
  ignore (Framework.Bugtracker.file tracker ~now:0.0 (evidence "fresh"));
  let reopened =
    match Framework.Bugtracker.file tracker ~now:0.0 (evidence "regressed") with
    | `New bug -> bug
    | `Duplicate _ -> assert false
  in
  Framework.Bugtracker.mark_fixed tracker ~now:0.0 reopened;
  ignore (Framework.Bugtracker.file tracker ~now:0.0 (evidence "regressed"));
  (* [Engine.every] runs the sweep synchronously at start: with exactly
     1.0 credit accrued, precisely one bug is fixed, exposing the order. *)
  ignore
    (Framework.Operator.start
       ~config:
         { quiet_operator with Framework.Operator.prioritize_reopened = prioritize }
       env tracker);
  List.filter_map
    (fun b ->
      if b.Framework.Bugtracker.status = Framework.Bugtracker.Fixed then
        Some b.Framework.Bugtracker.signature
      else None)
    (Framework.Bugtracker.all tracker)

let test_operator_prioritizes_reopened () =
  checkb "default config keeps filing order" true
    (Framework.Operator.default_config.Framework.Operator.prioritize_reopened
    = false);
  (match fixed_first ~prioritize:false with
   | [ "fresh" ] -> ()
   | other -> Alcotest.failf "filing order: expected fresh, got [%s]"
                (String.concat "; " other));
  match fixed_first ~prioritize:true with
  | [ "regressed" ] -> ()
  | other ->
    Alcotest.failf "prioritized: expected regressed, got [%s]"
      (String.concat "; " other)

(* ---- lint L013 ------------------------------------------------------------------- *)

let codes diags = List.map (fun d -> d.Framework.Lint.code) diags

let test_l013_limit_errors () =
  let base = Framework.Triage.default_config in
  let with_limits limits = { base with Framework.Triage.limits } in
  let bad_ring =
    with_limits
      { base.Framework.Triage.limits with Framework.Bugtracker.ring_size = 0 }
  in
  let diags = Framework.Lint.check_triage ~path:"t" bad_ring in
  checkb "ring_size error" true
    (codes diags = [ "L013" ] && Framework.Lint.errors diags <> []);
  let bad_cap =
    with_limits
      { base.Framework.Triage.limits with Framework.Bugtracker.max_live = -1 }
  in
  checkb "max_live error" true
    (Framework.Lint.errors (Framework.Lint.check_triage ~path:"t" bad_cap) <> []);
  let bad_flap = { base with Framework.Triage.flap_cycles = 1 } in
  checkb "flap_cycles error" true
    (Framework.Lint.errors (Framework.Lint.check_triage ~path:"t" bad_flap) <> [])

let test_l013_eviction_thrash_warning () =
  let base = Framework.Triage.default_config in
  let cfg =
    { base with
      Framework.Triage.limits =
        { base.Framework.Triage.limits with Framework.Bugtracker.min_idle = 60.0 };
      dedup_window = 3600.0;
    }
  in
  let diags = Framework.Lint.check_triage ~path:"t" cfg in
  checkb "thrash flagged as warning" true
    (codes diags = [ "L013" ] && Framework.Lint.errors diags = [])

let test_l013_drill_range () =
  let cfg =
    { Framework.Triage.default_config with
      Framework.Triage.drill =
        Some { Framework.Triage.evidence_loss = 1.5; filing_delay = -1.0 };
    }
  in
  let diags = Framework.Lint.check_triage ~path:"t" cfg in
  checki "both drill knobs flagged" 2 (List.length (Framework.Lint.errors diags))

let test_triage_preset_lints_clean () =
  let cfg = List.assoc "triage" Framework.Lint.presets in
  checkb "preset error-free" true (Framework.Lint.errors (Framework.Lint.run cfg) = [])

(* ---- report surface --------------------------------------------------------------- *)

let test_render_index_shows_quiet_age () =
  let env = Framework.Env.create ~seed:10L () in
  let tracker = Framework.Bugtracker.create () in
  ignore (Framework.Bugtracker.file tracker ~now:0.0 (evidence "disk:grisou-1.nancy:x"));
  ignore
    (Framework.Bugtracker.file tracker ~now:(2.0 *. day) (evidence "disk:grisou-1.nancy:x"));
  Framework.Env.run_until env (4.0 *. day);
  let index = Framework.Bugreport.render_index env tracker in
  checkb "quiet column present" true (contains index "quiet (days)");
  checkb "quiet age = now - last_seen" true (contains index "2.0")

let test_bugreport_parses_canonical_scope () =
  let env = Framework.Env.create ~seed:11L () in
  let tracker = Framework.Bugtracker.create () in
  let bug =
    match
      Framework.Bugtracker.file tracker ~now:0.0
        (evidence "disk|disk:heterogeneous|cluster/grisou")
    with
    | `New bug -> bug
    | `Duplicate _ -> assert false
  in
  checkb "cluster scope rendered" true
    (contains (Framework.Bugreport.render env bug) "cluster grisou")

(* ---- campaign integration ---------------------------------------------------------- *)

let test_campaign_with_triage () =
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 77L;
        triage = Some Framework.Triage.default_config;
      }
  in
  let s =
    match report.Framework.Campaign.triage with
    | Some s -> s
    | None -> Alcotest.fail "triage summary missing"
  in
  checkb "builds observed" true (s.Framework.Triage.builds_observed > 0);
  checkb "bugs filed through the pipeline" true (s.Framework.Triage.filed > 0);
  checkb "filed matches the store" true
    (s.Framework.Triage.filed
    = s.Framework.Triage.store.Framework.Bugtracker.filed_total);
  checkb "dedup clusters duplicates" true (s.Framework.Triage.dedup_ratio >= 1.0);
  (match Simkit.Json.of_string_exn (Framework.Report.to_string report) with
   | Simkit.Json.Obj members ->
     checkb "triage member in the JSON report" true (List.mem_assoc "triage" members)
   | _ -> Alcotest.fail "report is not a JSON object");
  checkb "statuspage has a triage section" true
    (contains report.Framework.Campaign.statuspage
       "Triage (failure-signature pipeline)")

let test_default_campaign_has_no_triage_block () =
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 77L;
      }
  in
  checkb "no triage summary" true (report.Framework.Campaign.triage = None);
  (match Simkit.Json.of_string_exn (Framework.Report.to_string report) with
   | Simkit.Json.Obj members ->
     checkb "no triage member" false (List.mem_assoc "triage" members)
   | _ -> Alcotest.fail "report is not a JSON object");
  checkb "no triage section" false
    (contains report.Framework.Campaign.statuspage "Triage (failure-signature")

let () =
  Alcotest.run "triage"
    [ ( "canonicalization",
        [ Alcotest.test_case "hosts fold to clusters, scopes split" `Quick
            test_canonicalization_clusters_hosts ] );
      ( "store",
        [ Alcotest.test_case "last_seen refreshed on duplicates" `Quick
            test_last_seen_refreshed;
          Alcotest.test_case "evidence ring bounded" `Quick
            test_evidence_ring_bounded;
          Alcotest.test_case "reopen precedes refile" `Quick
            test_event_order_reopen_before_refile;
          Alcotest.test_case "eviction, tombstones, resurrection" `Quick
            test_eviction_tombstones_and_resurrection;
          qc prop_dedup_idempotent;
          qc prop_fault_ids_merge_monotone;
          qc prop_eviction_conserves_occurrences ] );
      ( "timeseries",
        [ Alcotest.test_case "add_binned accumulates per bucket" `Quick
            test_timeseries_add_binned;
          Alcotest.test_case "bounded series drops oldest" `Quick
            test_timeseries_bounded_drops_oldest ] );
      ( "pipeline",
        [ Alcotest.test_case "bundles assembled on failure" `Quick
            test_observe_assembles_bundles;
          Alcotest.test_case "retry storms collapse" `Quick
            test_retry_storm_collapses;
          Alcotest.test_case "unstable filing is opt-in" `Quick
            test_unstable_filed_when_configured ] );
      ( "robustness",
        [ Alcotest.test_case "flapping detected and escalated" `Quick
            test_flap_detection_escalates;
          Alcotest.test_case "operator can work regressions first" `Quick
            test_operator_prioritizes_reopened ] );
      ( "drills",
        [ Alcotest.test_case "total evidence loss files nothing" `Quick
            test_evidence_loss_total;
          Alcotest.test_case "dedup converges under 50% loss" `Quick
            test_evidence_loss_dedup_converges;
          Alcotest.test_case "delayed filing lands late" `Quick
            test_delayed_filing_drill ] );
      ( "lint",
        [ Alcotest.test_case "L013 limit errors" `Quick test_l013_limit_errors;
          Alcotest.test_case "L013 eviction thrash warning" `Quick
            test_l013_eviction_thrash_warning;
          Alcotest.test_case "L013 drill ranges" `Quick test_l013_drill_range;
          Alcotest.test_case "triage preset lints clean" `Quick
            test_triage_preset_lints_clean ] );
      ( "report",
        [ Alcotest.test_case "index shows quiet age" `Quick
            test_render_index_shows_quiet_age;
          Alcotest.test_case "canonical scope parsed" `Quick
            test_bugreport_parses_canonical_scope ] );
      ( "campaign",
        [ Alcotest.test_case "triage campaign end to end" `Quick
            test_campaign_with_triage;
          Alcotest.test_case "default campaign unchanged" `Quick
            test_default_campaign_has_no_triage_block ] );
    ]
