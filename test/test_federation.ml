(* Differential test harness for Framework.Federation.

   The federation's correctness claim is byte-level: a K-shard run must
   produce exactly the report a 1-shard run produces, for any K, any
   driver (sequential, domain-parallel, shuffled interleaving, and the
   unsharded zero-lookahead reference loop) and any configuration.  The
   harness checks the claim three ways:

   - a qcheck property over random federation sizes, seeds and fault
     mixes, comparing every shard count in {1,2,4,8} (capped at the
     federation size) and the reference driver against the 1-shard run;
   - a shard-interleaving oracle: a qcheck property permuting the shard
     service order every window ([Interleaved]) and requiring identity
     with the sequential order;
   - 12-month regression runs at the acceptance scale (10 testbeds):
     run-twice determinism, K in {1,2,4,8}, and sequential vs parallel
     (domain-per-shard) drivers, all byte-identical.

   Members use a lightened campaign template (no user workload, two test
   families, slow polling) so the 12-month matrix stays test-suite
   sized; the federation layer under test is exactly the production
   one. *)

module F = Framework.Federation

let checki what = Alcotest.(check int) what
let checkb what = Alcotest.(check bool) what

(* ---- member template ----------------------------------------------------- *)

let light_base months =
  {
    Framework.Campaign.default_config with
    Framework.Campaign.months;
    workload = None;
    enable_regression = false;
    initial_faults = 4;
    fault_rate_per_day = 0.1;
    staged_families =
      [ (0, [ Framework.Testdef.Oarstate; Framework.Testdef.Cmdline ]) ];
    policy =
      {
        Framework.Scheduler.smart_policy with
        Framework.Scheduler.poll_period = 6.0 *. 3600.0;
      };
  }

let light_cfg ?(testbeds = 4) ?(shards = 1) ?(months = 1) ?(seed = 42L)
    ?(driver = F.Sequential) () =
  {
    F.default_config with
    F.testbeds;
    shards;
    seed;
    driver;
    base = light_base months;
  }

(* The comparison key: the full serialization (every member's complete
   campaign report embedded), with the two fields that legitimately vary
   between compared runs (shard count, driver) normalized away. *)
let fingerprint report =
  let normalized =
    { report with
      F.fed_cfg =
        { report.F.fed_cfg with F.shards = 1; driver = F.Sequential };
    }
  in
  Simkit.Json.to_string (F.report_to_json ~full:true normalized)

let run_fp cfg = fingerprint (F.run cfg)

(* ---- fleet synthesis ------------------------------------------------------ *)

let test_fleet_shapes () =
  let specs =
    Testbed.Fleet.synthesize ~seed:7L ~count:10 Testbed.Fleet.default_ranges
  in
  checki "ten members" 10 (List.length specs);
  List.iteri
    (fun i (s : Testbed.Fleet.spec) ->
      checki "indices are positional" i s.Testbed.Fleet.index;
      Alcotest.(check string)
        "auto ids are tbNN"
        (Printf.sprintf "tb%02d" i)
        s.Testbed.Fleet.id;
      let blo, bhi = Testbed.Fleet.default_ranges.Testbed.Fleet.fault_bias in
      checkb "fault bias inside range" true
        (s.Testbed.Fleet.fault_bias >= blo && s.Testbed.Fleet.fault_bias <= bhi);
      let elo, ehi = Testbed.Fleet.default_ranges.Testbed.Fleet.executors in
      checkb "executors inside range" true
        (s.Testbed.Fleet.executors >= elo && s.Testbed.Fleet.executors <= ehi);
      let wlo, whi = Testbed.Fleet.default_ranges.Testbed.Fleet.workload_scale in
      checkb "workload scale inside range" true
        (s.Testbed.Fleet.workload_scale >= wlo
        && s.Testbed.Fleet.workload_scale <= whi))
    specs;
  let seeds = List.map (fun s -> s.Testbed.Fleet.seed) specs in
  checki "member seeds are distinct" 10
    (List.length (List.sort_uniq Int64.compare seeds))

let test_fleet_stateless_streams () =
  (* Member i's spec is a pure function of (seed, i): shrinking or
     growing the federation must not disturb earlier members. *)
  let five = Testbed.Fleet.synthesize ~seed:7L ~count:5 Testbed.Fleet.default_ranges in
  let ten = Testbed.Fleet.synthesize ~seed:7L ~count:10 Testbed.Fleet.default_ranges in
  List.iteri
    (fun i s -> checkb "prefix-stable synthesis" true (s = List.nth ten i))
    five;
  let again = Testbed.Fleet.synthesize ~seed:7L ~count:5 Testbed.Fleet.default_ranges in
  checkb "synthesis is deterministic" true (five = again);
  let other = Testbed.Fleet.synthesize ~seed:8L ~count:5 Testbed.Fleet.default_ranges in
  checkb "seed matters" false (five = other)

let test_fleet_names_and_reference () =
  let specs =
    Testbed.Fleet.synthesize ~seed:1L ~count:3
      ~names:[ "nancy-fed"; "lyon-fed" ] Testbed.Fleet.default_ranges
  in
  Alcotest.(check (list string))
    "explicit names first, auto ids after"
    [ "nancy-fed"; "lyon-fed"; "tb02" ]
    (List.map (fun s -> s.Testbed.Fleet.id) specs);
  List.iter
    (fun (s : Testbed.Fleet.spec) ->
      checkb "reference ranges are degenerate" true
        (s.Testbed.Fleet.fault_bias = 1.0 && s.Testbed.Fleet.executors = 10
        && s.Testbed.Fleet.workload_scale = 1.0))
    (Testbed.Fleet.synthesize ~seed:1L ~count:4 Testbed.Fleet.reference_ranges)

let test_fleet_rejects () =
  let raises what f =
    checkb what true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  raises "non-positive count" (fun () ->
      Testbed.Fleet.synthesize ~seed:1L ~count:0 Testbed.Fleet.default_ranges);
  raises "inverted float range" (fun () ->
      Testbed.Fleet.synthesize ~seed:1L ~count:2
        { Testbed.Fleet.default_ranges with Testbed.Fleet.fault_bias = (2.0, 1.0) });
  raises "zero executors" (fun () ->
      Testbed.Fleet.synthesize ~seed:1L ~count:2
        { Testbed.Fleet.default_ranges with Testbed.Fleet.executors = (0, 4) })

(* ---- configuration validation --------------------------------------------- *)

let test_run_rejects () =
  let raises what cfg =
    checkb what true
      (try
         ignore (F.run cfg);
         false
       with Invalid_argument _ -> true)
  in
  raises "more shards than testbeds" (light_cfg ~testbeds:2 ~shards:3 ());
  raises "non-positive shards" (light_cfg ~shards:0 ());
  raises "non-positive testbeds" (light_cfg ~testbeds:0 ());
  raises "non-positive lookahead" { (light_cfg ()) with F.lookahead = 0.0 };
  raises "duplicate member ids"
    { (light_cfg ~testbeds:3 ()) with F.names = [ "a"; "a" ] }

(* ---- coordination accounting ----------------------------------------------- *)

let test_coordination_accounting () =
  let cfg =
    { (light_cfg ~testbeds:3 ~shards:3 ()) with
      F.backbone_faults_per_year = 40.0;
    }
  in
  let r = F.run cfg in
  let c = r.F.coordination in
  checkb "barriers ran" true (c.F.barriers > 0);
  checkb "backbone faults occurred at this rate" true (c.F.backbone_faults > 0);
  checki "every request is granted or denied" c.F.vlan_requests
    (c.F.vlan_grants + c.F.vlan_denials);
  checki "every grant runs exactly one link test" c.F.vlan_grants c.F.link_tests;
  checkb "link failures bounded by tests" true (c.F.link_failures <= c.F.link_tests);
  checkb "audits ran" true (c.F.audits > 0);
  checkb "audited node floor is sane" true
    (c.F.min_in_service >= 0 && c.F.min_in_service <= r.F.aggregate_nodes);
  checki "events_total sums member engines"
    (List.fold_left (fun a m -> a + m.F.events) 0 r.F.members)
    r.F.events_total;
  checki "aggregate bugs sum members"
    (List.fold_left
       (fun a m -> a + m.F.report.Framework.Campaign.bugs_filed)
       0 r.F.members)
    r.F.aggregate_bugs_filed

let test_global_vlan_bound () =
  (* With a single global VLAN and short request periods, arbitration
     must deny the overflow rather than over-grant. *)
  let cfg =
    { (light_cfg ~testbeds:4 ~shards:2 ()) with
      F.global_vlans = 1;
      vlan_request_period = 12.0 *. 3600.0;
    }
  in
  let c = (F.run cfg).F.coordination in
  checkb "requests happened" true (c.F.vlan_requests > 0);
  checkb "contention produced denials" true (c.F.vlan_denials > 0);
  checki "conservation" c.F.vlan_requests (c.F.vlan_grants + c.F.vlan_denials)

(* ---- differential properties ----------------------------------------------- *)

let shard_counts n = List.filter (fun k -> k <= n) [ 1; 2; 4; 8 ]

let prop_shard_count_invariance =
  QCheck.Test.make ~count:4
    ~name:"K-shard and reference runs are byte-identical to the 1-shard run"
    QCheck.(
      triple (int_range 2 5) (int_range 0 1000)
        (pair (int_range 0 30) (int_range 0 3)))
    (fun (testbeds, seed, (backbone_rate, vlans)) ->
      let cfg k driver =
        { (light_cfg ~testbeds ~shards:k ~seed:(Int64.of_int seed) ~driver ()) with
          F.backbone_faults_per_year = float_of_int backbone_rate;
          global_vlans = vlans;
        }
      in
      let expected = run_fp (cfg 1 F.Sequential) in
      List.for_all
        (fun k -> String.equal expected (run_fp (cfg k F.Sequential)))
        (shard_counts testbeds)
      && String.equal expected (run_fp (cfg 1 F.Reference)))

let prop_interleaving_oracle =
  QCheck.Test.make ~count:4
    ~name:"shuffled shard service order cannot change the outcome"
    QCheck.(triple (int_range 2 5) (int_range 0 1000) (int_range 0 1000))
    (fun (testbeds, seed, interleave_seed) ->
      let shards = min testbeds 4 in
      let seq = light_cfg ~testbeds ~shards ~seed:(Int64.of_int seed) () in
      let shuffled =
        { seq with F.driver = F.Interleaved (Int64.of_int interleave_seed) }
      in
      String.equal (run_fp seq) (run_fp shuffled))

(* ---- 12-month acceptance regressions ---------------------------------------- *)

(* One fingerprint per (shard count, driver) cell of the acceptance
   matrix, all compared against K=4 sequential — which itself runs
   twice. *)
let test_12mo_matrix () =
  let cfg ?(driver = F.Sequential) shards =
    light_cfg ~testbeds:10 ~shards ~months:12 ~seed:1717L ~driver ()
  in
  let expected = run_fp (cfg 4) in
  checkb "12-month federated campaign replays byte-identically" true
    (String.equal expected (run_fp (cfg 4)));
  List.iter
    (fun k ->
      checkb
        (Printf.sprintf "shard count %d matches the reference shard count" k)
        true
        (String.equal expected (run_fp (cfg k))))
    [ 1; 2; 8 ];
  checkb "parallel (domain-per-shard) driver matches sequential" true
    (String.equal expected (run_fp (cfg ~driver:F.Parallel 4)))

(* ---- unfederated byte-identity ---------------------------------------------- *)

(* The prepare/drive/finalize split that federation needed must leave
   plain campaigns untouched: prepare+finalize equals the one-shot run
   byte for byte. *)
let test_campaign_split_identity () =
  let cfg = light_base 1 in
  let via_run = Framework.Campaign.run cfg in
  let sim = Framework.Campaign.prepare cfg in
  Simkit.Engine.run_until
    (Framework.Campaign.sim_engine sim)
    (Framework.Campaign.sim_horizon sim);
  let via_split = Framework.Campaign.finalize sim in
  checkb "prepare/drive/finalize replays Campaign.run byte for byte" true
    (String.equal
       (Framework.Report.to_string via_run)
       (Framework.Report.to_string via_split))

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "federation"
    [
      ( "fleet",
        [ Alcotest.test_case "spec shapes and ranges" `Quick test_fleet_shapes;
          Alcotest.test_case "stateless per-member streams" `Quick
            test_fleet_stateless_streams;
          Alcotest.test_case "names and reference ranges" `Quick
            test_fleet_names_and_reference;
          Alcotest.test_case "invalid ranges rejected" `Quick test_fleet_rejects
        ] );
      ( "validation",
        [ Alcotest.test_case "invalid configurations rejected" `Quick
            test_run_rejects ] );
      ( "coordination",
        [ Alcotest.test_case "accounting conservation" `Slow
            test_coordination_accounting;
          Alcotest.test_case "global VLAN bound" `Slow test_global_vlan_bound ] );
      ( "differential",
        [ qc prop_shard_count_invariance; qc prop_interleaving_oracle ] );
      ( "acceptance",
        [ Alcotest.test_case "12-month 10-testbed matrix" `Slow test_12mo_matrix
        ] );
      ( "campaign split",
        [ Alcotest.test_case "unfederated byte-identity" `Quick
            test_campaign_split_identity ] );
    ]
