(* Tests for the explicit network topology. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let mk () =
  let instance = Testbed.Instance.build ~seed:808L () in
  let topo =
    Testbed.Topology.build instance.Testbed.Instance.network
      (Array.to_list instance.Testbed.Instance.nodes)
  in
  (instance, topo)

let test_same_switch_path () =
  let _, topo = mk () in
  let devices = Testbed.Topology.path topo ~from:"grisou-1.nancy" ~to_:"grisou-2.nancy" in
  checki "host-switch-host" 3 (List.length devices);
  checki "two hops" 2 (Testbed.Topology.hops topo ~from:"grisou-1.nancy" ~to_:"grisou-2.nancy");
  match devices with
  | [ Testbed.Topology.Host a; Testbed.Topology.Switch _; Testbed.Topology.Host b ] ->
    Alcotest.(check string) "from" "grisou-1.nancy" a;
    Alcotest.(check string) "to" "grisou-2.nancy" b
  | _ -> Alcotest.fail "unexpected path shape"

let test_self_path () =
  let _, topo = mk () in
  checki "zero hops to self" 0
    (Testbed.Topology.hops topo ~from:"grisou-1.nancy" ~to_:"grisou-1.nancy");
  checkb "infinite self bandwidth" true
    (Testbed.Topology.bottleneck_gbps topo ~from:"grisou-1.nancy" ~to_:"grisou-1.nancy"
     = infinity)

let test_cross_site_goes_through_routers () =
  let _, topo = mk () in
  let devices = Testbed.Topology.path topo ~from:"grisou-1.nancy" ~to_:"helios-1.sophia" in
  let routers =
    List.filter (function Testbed.Topology.Router _ -> true | _ -> false) devices
  in
  checkb "at least two routers" true (List.length routers >= 2);
  checkb "starts at nancy's router" true
    (List.exists
       (function Testbed.Topology.Router r -> r = "router-nancy" | _ -> false)
       devices);
  checkb "ends at sophia's router" true
    (List.exists
       (function Testbed.Topology.Router r -> r = "router-sophia" | _ -> false)
       devices)

let test_ring_takes_shorter_direction () =
  let _, topo = mk () in
  (* Sites in order: grenoble lille luxembourg lyon nancy nantes rennes
     sophia.  grenoble <-> sophia are ring neighbours (wrap-around), so
     the path must use 1 backbone segment, not 7. *)
  let devices = Testbed.Topology.path topo ~from:"genepi-1.grenoble" ~to_:"helios-1.sophia" in
  let routers =
    List.filter (function Testbed.Topology.Router _ -> true | _ -> false) devices
  in
  checki "wrap-around uses two routers" 2 (List.length routers)

let test_bottleneck_capacities () =
  let _, topo = mk () in
  (* grisou has 10G NICs; cross-site bottleneck is the backbone (10) or
     the NIC; sagittaire has 1G NICs -> bottleneck 1. *)
  checkf "1G NIC limits" 1.0
    (Testbed.Topology.bottleneck_gbps topo ~from:"sagittaire-1.lyon"
       ~to_:"sagittaire-2.lyon");
  checkb "cross-site capped at backbone" true
    (Testbed.Topology.bottleneck_gbps topo ~from:"grisou-1.nancy" ~to_:"ecotype-1.nantes"
     <= 10.0)

let test_latency_structure () =
  let _, topo = mk () in
  let lan =
    Testbed.Topology.latency_estimate_ms topo ~from:"grisou-1.nancy" ~to_:"grisou-2.nancy"
  in
  let wan =
    Testbed.Topology.latency_estimate_ms topo ~from:"grisou-1.nancy" ~to_:"helios-1.sophia"
  in
  checkb "LAN under 1 ms" true (lan < 1.0);
  checkb "WAN at least one backbone segment" true (wan >= 2.5);
  checkb "hierarchy" true (lan < wan)

let test_backbone_ring_structure () =
  let _, topo = mk () in
  let segments = Testbed.Topology.backbone_segments topo in
  checki "8 segments in the ring" 8 (List.length segments);
  checki "8 routers" 8 (List.length (Testbed.Topology.routers topo));
  (* Every site's router appears exactly twice across segments. *)
  List.iter
    (fun site ->
      let router = "router-" ^ site in
      let occurrences =
        List.length
          (List.filter (fun (a, b) -> a = router || b = router) segments)
      in
      checki (router ^ " degree") 2 occurrences)
    Testbed.Inventory.sites

let test_cabling_fault_moves_host () =
  let instance, _ = mk () in
  (* Swap a host with one on a different ToR of the same site, then
     rebuild: the topology must reflect the actual (wrong) port. *)
  let net = instance.Testbed.Instance.network in
  let host_a = "graphene-1.nancy" in
  (* Find a nancy host on a different switch. *)
  let port_a = Option.get (Testbed.Network.actual_port net host_a) in
  let host_b =
    Testbed.Instance.nodes_of_site instance "nancy"
    |> List.find_map (fun n ->
           match Testbed.Network.actual_port net n.Testbed.Node.host with
           | Some p when p.Testbed.Network.switch <> port_a.Testbed.Network.switch ->
             Some n.Testbed.Node.host
           | _ -> None)
    |> Option.get
  in
  Testbed.Network.swap_cables net host_a host_b;
  let topo =
    Testbed.Topology.build net (Array.to_list instance.Testbed.Instance.nodes)
  in
  let devices = Testbed.Topology.path topo ~from:host_a ~to_:host_b in
  ignore devices;
  (* host_a now hangs off host_b's old switch. *)
  (match Testbed.Topology.path topo ~from:host_a ~to_:host_a with
   | [ Testbed.Topology.Host _ ] -> ()
   | _ -> Alcotest.fail "self path broken");
  let sw_of host =
    match Testbed.Topology.path topo ~from:host ~to_:host_b with
    | _ :: Testbed.Topology.Switch s :: _ -> s
    | _ -> "?"
  in
  checkb "topology follows the miswired cable" true
    (sw_of host_a <> port_a.Testbed.Network.switch)

let test_topology_json () =
  let _, topo = mk () in
  let json = Testbed.Topology.to_json topo in
  (match Simkit.Json.list_member "routers" json with
   | Some routers -> checki "8 routers serialised" 8 (List.length routers)
   | None -> Alcotest.fail "routers missing");
  match Simkit.Json.of_string (Simkit.Json.to_string json) with
  | Ok parsed -> checkb "wire roundtrip" true (Simkit.Json.equal parsed json)
  | Error e -> Alcotest.fail e

let prop_path_endpoints =
  QCheck.Test.make ~name:"topology: paths start and end at the hosts" ~count:100
    QCheck.(pair (int_bound 893) (int_bound 893))
    (fun (i, j) ->
      let instance = Testbed.Instance.build ~seed:808L () in
      let topo =
        Testbed.Topology.build instance.Testbed.Instance.network
          (Array.to_list instance.Testbed.Instance.nodes)
      in
      let a = instance.Testbed.Instance.nodes.(i).Testbed.Node.host in
      let b = instance.Testbed.Instance.nodes.(j).Testbed.Node.host in
      match Testbed.Topology.path topo ~from:a ~to_:b with
      | [] -> false
      | devices ->
        Testbed.Topology.device_name (List.hd devices) = a
        && Testbed.Topology.device_name (List.nth devices (List.length devices - 1)) = b
        && Testbed.Topology.hops topo ~from:a ~to_:b = List.length devices - 1)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "topology"
    [
      ( "topology",
        [ Alcotest.test_case "same switch" `Quick test_same_switch_path;
          Alcotest.test_case "self path" `Quick test_self_path;
          Alcotest.test_case "cross-site routers" `Quick
            test_cross_site_goes_through_routers;
          Alcotest.test_case "ring shorter direction" `Quick
            test_ring_takes_shorter_direction;
          Alcotest.test_case "bottlenecks" `Quick test_bottleneck_capacities;
          Alcotest.test_case "latency structure" `Quick test_latency_structure;
          Alcotest.test_case "ring structure" `Quick test_backbone_ring_structure;
          Alcotest.test_case "cabling fault visible" `Quick test_cabling_fault_moves_host;
          Alcotest.test_case "json" `Quick test_topology_json;
          qc prop_path_endpoints ] );
    ]
