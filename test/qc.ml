(* Shared QCheck -> Alcotest adapter with replay ergonomics.

   Every suite funnels its properties through [to_alcotest] so that:

   - the generator seed is process-wide and printed once at startup, and
     can be pinned with QCHECK_SEED=<n> (the same variable
     qcheck-alcotest honors natively);
   - a failing property additionally prints a one-line reproduction
     command pinning that seed, so a counterexample found in a
     randomized CI run can be replayed locally verbatim. *)

let seed =
  lazy
    (let s =
       match Sys.getenv_opt "QCHECK_SEED" with
       | Some text -> (
         match int_of_string_opt (String.trim text) with
         | Some n -> n
         | None ->
           Printf.eprintf "qc: ignoring unparsable QCHECK_SEED=%S\n%!" text;
           Random.self_init ();
           Random.int 1_000_000_000)
       | None ->
         Random.self_init ();
         Random.int 1_000_000_000
     in
     Printf.printf "qcheck random seed: %d (override with QCHECK_SEED=<n>)\n%!" s;
     s)

let to_alcotest ?speed_level test =
  let seed = Lazy.force seed in
  let name, speed, run =
    QCheck_alcotest.to_alcotest ?speed_level
      ~rand:(Random.State.make [| seed |])
      test
  in
  let run () =
    try run ()
    with exn ->
      Printf.eprintf "\nqcheck: property %S failed with seed %d\n" name seed;
      Printf.eprintf "replay: QCHECK_SEED=%d dune exec -- test/%s\n%!" seed
        (Filename.basename Sys.executable_name);
      raise exn
  in
  (name, speed, run)
