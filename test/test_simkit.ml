(* Unit and property tests for the simulation kit. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---- Prng ----------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Simkit.Prng.create 7L and b = Simkit.Prng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Simkit.Prng.next_int64 a)
      (Simkit.Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Simkit.Prng.create 7L in
  let b = Simkit.Prng.split a in
  let xa = Simkit.Prng.next_int64 a and xb = Simkit.Prng.next_int64 b in
  checkb "split streams differ" true (xa <> xb)

let test_prng_copy () =
  let a = Simkit.Prng.create 3L in
  ignore (Simkit.Prng.next_int64 a);
  let b = Simkit.Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Simkit.Prng.next_int64 a)
    (Simkit.Prng.next_int64 b)

let test_prng_float_range () =
  let rng = Simkit.Prng.create 11L in
  for _ = 1 to 10_000 do
    let f = Simkit.Prng.float rng in
    checkb "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_int_bounds () =
  let rng = Simkit.Prng.create 13L in
  for _ = 1 to 10_000 do
    let v = Simkit.Prng.int rng 7 in
    checkb "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Simkit.Prng.int rng 0))

let test_prng_int_uniformish () =
  let rng = Simkit.Prng.create 17L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Simkit.Prng.int rng 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      checkb "within 10% of uniform" true (abs (c - expected) < expected / 10))
    counts

let test_prng_int_in () =
  let rng = Simkit.Prng.create 19L in
  for _ = 1 to 1000 do
    let v = Simkit.Prng.int_in rng (-3) 3 in
    checkb "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_prng_chance_extremes () =
  let rng = Simkit.Prng.create 23L in
  checkb "p=0 never" false (Simkit.Prng.chance rng 0.0);
  checkb "p=1 always" true (Simkit.Prng.chance rng 1.0)

let test_prng_shuffle_permutation () =
  let rng = Simkit.Prng.create 29L in
  let arr = Array.init 50 Fun.id in
  Simkit.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_sample_without_replacement () =
  let rng = Simkit.Prng.create 31L in
  let arr = Array.init 20 Fun.id in
  let sample = Simkit.Prng.sample_without_replacement rng 5 arr in
  checki "size" 5 (Array.length sample);
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  let distinct =
    Array.to_list sorted |> List.sort_uniq compare |> List.length
  in
  checki "distinct" 5 distinct

(* ---- Dist ----------------------------------------------------------------- *)

let sample_mean rng dist n =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Simkit.Dist.sample rng dist
  done;
  !acc /. float_of_int n

let test_dist_means () =
  let rng = Simkit.Prng.create 37L in
  let close ~tol name dist =
    let expected = Simkit.Dist.mean dist in
    let measured = sample_mean rng dist 50_000 in
    checkb name true (Float.abs (measured -. expected) < tol *. Float.max 1.0 expected)
  in
  close ~tol:0.02 "constant" (Simkit.Dist.Constant 5.0);
  close ~tol:0.02 "uniform" (Simkit.Dist.Uniform (2.0, 4.0));
  close ~tol:0.03 "exponential" (Simkit.Dist.Exponential 3.0);
  close ~tol:0.03 "normal" (Simkit.Dist.Normal (10.0, 2.0));
  close ~tol:0.05 "erlang" (Simkit.Dist.Erlang (3, 2.0));
  close ~tol:0.05 "weibull" (Simkit.Dist.Weibull (2.0, 3.0))

let test_dist_mixture () =
  let rng = Simkit.Prng.create 41L in
  let dist =
    Simkit.Dist.Mixture [ (1.0, Simkit.Dist.Constant 0.0); (1.0, Simkit.Dist.Constant 10.0) ]
  in
  checkf "mixture mean" 5.0 (Simkit.Dist.mean dist);
  let m = sample_mean rng dist 20_000 in
  checkb "sampled mixture mean" true (Float.abs (m -. 5.0) < 0.2)

let test_dist_pareto_mean_infinite () =
  checkb "alpha<=1 infinite mean" true
    (Simkit.Dist.mean (Simkit.Dist.Pareto (1.0, 2.0)) = infinity)

let test_zipf_bounds () =
  let rng = Simkit.Prng.create 43L in
  for _ = 1 to 1000 do
    let v = Simkit.Dist.zipf rng ~n:32 ~s:1.1 in
    checkb "in [1,32]" true (v >= 1 && v <= 32)
  done

let test_zipf_skew () =
  let rng = Simkit.Prng.create 47L in
  let first = ref 0 and last = ref 0 in
  for _ = 1 to 20_000 do
    match Simkit.Dist.zipf rng ~n:10 ~s:1.2 with
    | 1 -> incr first
    | 10 -> incr last
    | _ -> ()
  done;
  checkb "rank 1 much more likely than rank 10" true (!first > 4 * !last)

let test_poisson_mean () =
  let rng = Simkit.Prng.create 53L in
  let acc = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    acc := !acc + Simkit.Dist.poisson rng ~mean:4.0
  done;
  let mean = float_of_int !acc /. float_of_int n in
  checkb "poisson mean ~4" true (Float.abs (mean -. 4.0) < 0.1)

let test_poisson_large_mean () =
  let rng = Simkit.Prng.create 59L in
  let v = Simkit.Dist.poisson rng ~mean:100.0 in
  checkb "normal approximation plausible" true (v > 50 && v < 150)

(* ---- Heap ----------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Simkit.Heap.create () in
  List.iter (fun k -> Simkit.Heap.push h ~key:k k) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let popped = ref [] in
  let rec drain () =
    match Simkit.Heap.pop h with
    | Some (k, _) ->
      popped := k :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  check
    Alcotest.(list (float 1e-9))
    "ascending order" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Simkit.Heap.create () in
  Simkit.Heap.push h ~key:1.0 "first";
  Simkit.Heap.push h ~key:1.0 "second";
  Simkit.Heap.push h ~key:1.0 "third";
  let next () = match Simkit.Heap.pop h with Some (_, v) -> v | None -> "?" in
  check Alcotest.string "tie 1" "first" (next ());
  check Alcotest.string "tie 2" "second" (next ());
  check Alcotest.string "tie 3" "third" (next ())

let test_heap_to_list_sorted () =
  let h = Simkit.Heap.create () in
  List.iter (fun k -> Simkit.Heap.push h ~key:(float_of_int k) k) [ 9; 2; 7; 4 ];
  let keys = List.map fst (Simkit.Heap.to_list h) in
  check Alcotest.(list (float 1e-9)) "sorted snapshot" [ 2.0; 4.0; 7.0; 9.0 ] keys;
  checki "length preserved" 4 (Simkit.Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun keys ->
      let h = Simkit.Heap.create () in
      List.iter (fun k -> Simkit.Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Simkit.Heap.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let prop_heap_model =
  (* Interleaved push/pop against a sorted-list oracle; values carry the
     insertion sequence so the FIFO tie-break is checked too. *)
  QCheck.Test.make ~name:"heap matches sorted-list oracle under push/pop" ~count:300
    QCheck.(list (pair bool (int_bound 9)))
    (fun ops ->
      let h = Simkit.Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (push, k) ->
          if push then begin
            let key = float_of_int k in
            Simkit.Heap.push h ~key !seq;
            model := List.merge compare !model [ (key, !seq) ];
            incr seq
          end
          else
            match (Simkit.Heap.pop h, !model) with
            | None, [] -> ()
            | Some (key, v), (mk, mv) :: rest ->
              ok := !ok && key = mk && v = mv;
              model := rest
            | _ -> ok := false)
        ops;
      !ok && Simkit.Heap.length h = List.length !model)

let test_heap_pop_releases_value () =
  (* A popped value must be collectable immediately: the vacated slot
     may not pin it. *)
  let h = Simkit.Heap.create () in
  let weak = Weak.create 1 in
  let () =
    let v = ref 42 in
    Weak.set weak 0 (Some v);
    Simkit.Heap.push h ~key:1.0 v;
    Simkit.Heap.push h ~key:2.0 (ref 0)
  in
  (match Simkit.Heap.pop h with Some _ -> () | None -> Alcotest.fail "pop");
  Gc.full_major ();
  checkb "popped value collected" true (Weak.get weak 0 = None);
  checki "remaining entry intact" 1 (Simkit.Heap.length h)

(* ---- Intset --------------------------------------------------------------- *)

let test_intset_basics () =
  let s = Simkit.Intset.create () in
  checkb "fresh set empty" true (Simkit.Intset.is_empty s);
  Simkit.Intset.add s 3;
  Simkit.Intset.add s 3;
  Simkit.Intset.add s 7;
  checki "duplicate add ignored" 2 (Simkit.Intset.cardinal s);
  checkb "mem present" true (Simkit.Intset.mem s 3);
  checkb "mem absent" false (Simkit.Intset.mem s 5);
  Simkit.Intset.remove s 3;
  Simkit.Intset.remove s 3;
  checkb "removed" false (Simkit.Intset.mem s 3);
  checki "cardinal after remove" 1 (Simkit.Intset.cardinal s);
  Simkit.Intset.clear s;
  checkb "cleared" true (Simkit.Intset.is_empty s)

module Int_set_oracle = Set.Make (Int)

let prop_intset_model =
  (* Small key range on purpose: lots of hash collisions, so the
     backward-shift deletion path is exercised hard. *)
  QCheck.Test.make ~name:"intset matches Set oracle under add/remove" ~count:300
    QCheck.(list (pair bool (int_bound 63)))
    (fun ops ->
      let s = Simkit.Intset.create () in
      let model =
        List.fold_left
          (fun m (add, k) ->
            if add then begin
              Simkit.Intset.add s k;
              Int_set_oracle.add k m
            end
            else begin
              Simkit.Intset.remove s k;
              Int_set_oracle.remove k m
            end)
          Int_set_oracle.empty ops
      in
      Simkit.Intset.cardinal s = Int_set_oracle.cardinal model
      && List.sort compare (Simkit.Intset.to_list s) = Int_set_oracle.elements model
      && Int_set_oracle.for_all (fun k -> Simkit.Intset.mem s k) model)

(* ---- Engine --------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Simkit.Engine.create () in
  let trace = ref [] in
  ignore (Simkit.Engine.schedule e ~delay:2.0 (fun _ -> trace := "b" :: !trace));
  ignore (Simkit.Engine.schedule e ~delay:1.0 (fun _ -> trace := "a" :: !trace));
  ignore (Simkit.Engine.schedule e ~delay:3.0 (fun _ -> trace := "c" :: !trace));
  Simkit.Engine.run e;
  check Alcotest.(list string) "time order" [ "a"; "b"; "c" ] (List.rev !trace);
  checkf "clock at last event" 3.0 (Simkit.Engine.now e)

let test_engine_same_time_fifo () =
  let e = Simkit.Engine.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    ignore (Simkit.Engine.schedule e ~delay:1.0 (fun _ -> trace := i :: !trace))
  done;
  Simkit.Engine.run e;
  check Alcotest.(list int) "scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !trace)

let test_engine_cancel () =
  let e = Simkit.Engine.create () in
  let fired = ref false in
  let handle = Simkit.Engine.schedule e ~delay:1.0 (fun _ -> fired := true) in
  Simkit.Engine.cancel e handle;
  Simkit.Engine.run e;
  checkb "cancelled event does not fire" false !fired

let test_engine_run_until () =
  let e = Simkit.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Simkit.Engine.schedule e ~delay:(float_of_int i) (fun _ -> incr count))
  done;
  Simkit.Engine.run_until e 5.5;
  checki "five events before horizon" 5 !count;
  checkf "clock clamped to horizon" 5.5 (Simkit.Engine.now e);
  Simkit.Engine.run e;
  checki "rest run later" 10 !count

let test_engine_nested_schedule () =
  let e = Simkit.Engine.create () in
  let times = ref [] in
  ignore
    (Simkit.Engine.schedule e ~delay:1.0 (fun e ->
         times := Simkit.Engine.now e :: !times;
         ignore
           (Simkit.Engine.schedule e ~delay:2.0 (fun e ->
                times := Simkit.Engine.now e :: !times))));
  Simkit.Engine.run e;
  check Alcotest.(list (float 1e-9)) "nested times" [ 1.0; 3.0 ] (List.rev !times)

let test_engine_every_stops () =
  let e = Simkit.Engine.create () in
  let count = ref 0 in
  Simkit.Engine.every e ~period:1.0 (fun _ ->
      incr count;
      !count < 5);
  Simkit.Engine.run e;
  checki "periodic process stops itself" 5 !count

let test_engine_past_schedule_clamped () =
  let e = Simkit.Engine.create () in
  ignore (Simkit.Engine.schedule e ~delay:5.0 (fun e ->
      let fired = ref false in
      ignore (Simkit.Engine.schedule_at e ~time:1.0 (fun _ -> fired := true));
      ignore fired));
  Simkit.Engine.run e;
  checkf "clock monotonic" 5.0 (Simkit.Engine.now e)

let test_engine_observer_labels () =
  let e = Simkit.Engine.create () in
  let seen = ref [] in
  Simkit.Engine.set_observer e
    (Some (fun ~time ~label -> seen := (time, label) :: !seen));
  ignore (Simkit.Engine.schedule e ~label:"a" ~delay:1.0 (fun _ -> ()));
  ignore (Simkit.Engine.schedule e ~delay:2.0 (fun _ -> ()));
  Simkit.Engine.run e;
  checkb "observer saw both events with their labels" true
    (List.rev !seen = [ (1.0, Some "a"); (2.0, None) ]);
  Simkit.Engine.set_observer e None;
  ignore (Simkit.Engine.schedule e ~delay:1.0 (fun _ -> ()));
  Simkit.Engine.run e;
  checki "cleared observer sees nothing further" 2 (List.length !seen)

let test_engine_cancel_after_fire_no_leak () =
  (* Regression: cancelling an already-fired handle used to be remembered
     forever, and [pending] could go negative. *)
  let e = Simkit.Engine.create () in
  let h = Simkit.Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  Simkit.Engine.run e;
  Simkit.Engine.cancel e h;
  Simkit.Engine.cancel e h;
  checkb "fired handle not remembered as cancelled" false (Simkit.Engine.cancelled e h);
  checki "pending stays at zero" 0 (Simkit.Engine.pending e);
  let h2 = Simkit.Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  checki "new event counted" 1 (Simkit.Engine.pending e);
  Simkit.Engine.cancel e h2;
  checki "cancelled event not counted" 0 (Simkit.Engine.pending e);
  Simkit.Engine.run e;
  Simkit.Engine.cancel e h2;
  checki "pending never negative" 0 (Simkit.Engine.pending e);
  checki "only the first event executed" 1 (Simkit.Engine.events_executed e)

let test_engine_cancel_same_instant () =
  (* An event may cancel a later event of the same timestamp: the batch
     drain must re-check cancellation at consumption time. *)
  let e = Simkit.Engine.create () in
  let fired = ref false in
  let hb = ref None in
  ignore
    (Simkit.Engine.schedule e ~delay:1.0 (fun e ->
         match !hb with Some h -> Simkit.Engine.cancel e h | None -> ()));
  hb := Some (Simkit.Engine.schedule e ~delay:1.0 (fun _ -> fired := true));
  Simkit.Engine.run e;
  checkb "same-instant victim skipped" false !fired;
  checki "pending drained" 0 (Simkit.Engine.pending e)

let test_engine_run_until_cancelled_prefix () =
  (* A cancelled-only queue prefix must not stall the clock short of the
     horizon, and skipped events are not executions. *)
  let e = Simkit.Engine.create () in
  let h = Simkit.Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  Simkit.Engine.cancel e h;
  Simkit.Engine.run_until e 5.0;
  checkf "clock clamped to horizon" 5.0 (Simkit.Engine.now e);
  checki "no events executed" 0 (Simkit.Engine.events_executed e);
  checki "nothing pending" 0 (Simkit.Engine.pending e)

let test_engine_next_time_matches_run_until () =
  (* Stepping while next_time <= horizon must drain exactly what
     run_until drains (the bench driver relies on this). *)
  let trace engine_of =
    let e = engine_of () in
    let trace = ref [] in
    for i = 1 to 8 do
      ignore
        (Simkit.Engine.schedule e ~delay:(float_of_int (i mod 4))
           (fun _ -> trace := i :: !trace))
    done;
    (e, trace)
  in
  let a, ta = trace (fun () -> Simkit.Engine.create ()) in
  Simkit.Engine.run_until a 2.5;
  let b, tb = trace (fun () -> Simkit.Engine.create ()) in
  let continue = ref true in
  while !continue do
    match Simkit.Engine.next_time b with
    | Some next when next <= 2.5 -> ignore (Simkit.Engine.step b)
    | _ -> continue := false
  done;
  Simkit.Engine.run_until b 2.5;
  checkb "same execution order" true (!ta = !tb);
  checkf "same clock" (Simkit.Engine.now a) (Simkit.Engine.now b);
  checki "same pending" (Simkit.Engine.pending a) (Simkit.Engine.pending b)

let test_engine_jitter_zero_draws_nothing () =
  (* A jitter-free periodic timer must consume no engine randomness. *)
  let master_after ~with_timer =
    let e = Simkit.Engine.create ~seed:7L () in
    if with_timer then
      Simkit.Engine.every e ~period:1.0 ~jitter:0.0 (fun e -> Simkit.Engine.now e < 5.0);
    Simkit.Engine.run_until e 10.0;
    Simkit.Prng.next_int64 (Simkit.Engine.rng e)
  in
  check Alcotest.int64 "master stream untouched" (master_after ~with_timer:false)
    (master_after ~with_timer:true)

let test_engine_jitter_isolated () =
  (* Regression: jitter used to draw from the master stream at every
     tick, so how long an unrelated jittered timer had been running
     changed the seed of any subsystem splitting the master later.  Now
     a jittered timer costs exactly one split at registration, whatever
     its period or lifetime. *)
  let late_split_draw ~period =
    let e = Simkit.Engine.create ~seed:99L () in
    Simkit.Engine.every e ~period ~jitter:0.5 (fun e -> Simkit.Engine.now e < 20.0);
    let draw = ref 0L in
    ignore
      (Simkit.Engine.schedule e ~delay:5.0 (fun e ->
           let r = Simkit.Prng.split (Simkit.Engine.rng e) in
           draw := Simkit.Prng.next_int64 r));
    Simkit.Engine.run_until e 30.0;
    !draw
  in
  check Alcotest.int64 "late subsystem seed independent of timer cadence"
    (late_split_draw ~period:1.0) (late_split_draw ~period:3.0)

let prop_engine_pending_consistent =
  (* pending / events_executed against a naive list model under random
     schedule / cancel / step sequences. *)
  QCheck.Test.make ~name:"engine: pending and events_executed match a list model"
    ~count:300
    QCheck.(list (pair (int_bound 5) (int_bound 9)))
    (fun ops ->
      let e = Simkit.Engine.create () in
      (* model entries: handle, firing time, consumed, cancelled *)
      let model = ref [] in
      let clock = ref 0.0 in
      let executed = ref 0 in
      let ok = ref true in
      let live () =
        List.filter (fun (_, _, consumed, cancelled) -> not (!consumed || !cancelled)) !model
      in
      let apply (tag, a) =
        if tag <= 2 then begin
          let delay = float_of_int a in
          let h = Simkit.Engine.schedule e ~delay (fun _ -> ()) in
          (* append keeps the model in schedule order = FIFO tie order *)
          model := !model @ [ (h, !clock +. delay, ref false, ref false) ]
        end
        else if tag = 3 then begin
          match live () with
          | [] -> ()
          | l ->
            let h, _, _, cancelled = List.nth l (a mod List.length l) in
            Simkit.Engine.cancel e h;
            cancelled := true
        end
        else begin
          match List.filter (fun (_, _, consumed, _) -> not !consumed) !model with
          | [] -> ok := !ok && not (Simkit.Engine.step e)
          | first :: rest ->
            let _, time, consumed, cancelled =
              List.fold_left
                (fun ((_, bt, _, _) as best) ((_, t, _, _) as cand) ->
                  if t < bt then cand else best)
                first rest
            in
            ok := !ok && Simkit.Engine.step e;
            consumed := true;
            if not !cancelled then begin
              incr executed;
              clock := Float.max !clock time
            end
        end;
        ok :=
          !ok
          && Simkit.Engine.pending e = List.length (live ())
          && Simkit.Engine.events_executed e = !executed
          && Simkit.Engine.pending e >= 0
      in
      List.iter apply ops;
      !ok)

(* ---- Calendar ------------------------------------------------------------- *)

let test_calendar_basics () =
  checki "epoch is Monday" 0 (Simkit.Calendar.day_of_week 0.0);
  checki "hour extraction" 13 (Simkit.Calendar.hour_of_day (13.5 *. 3600.0));
  checki "day index" 2 (Simkit.Calendar.day_index (2.5 *. Simkit.Calendar.day));
  checki "month index" 1 (Simkit.Calendar.month_index (31.0 *. Simkit.Calendar.day))

let test_calendar_weekend () =
  checkb "saturday" true (Simkit.Calendar.is_weekend (5.5 *. Simkit.Calendar.day));
  checkb "sunday" true (Simkit.Calendar.is_weekend (6.5 *. Simkit.Calendar.day));
  checkb "monday" false (Simkit.Calendar.is_weekend (7.1 *. Simkit.Calendar.day))

let test_calendar_peak_hours () =
  let monday_10am = (0.0 *. Simkit.Calendar.day) +. (10.0 *. 3600.0) in
  let monday_11pm = (0.0 *. Simkit.Calendar.day) +. (23.0 *. 3600.0) in
  let saturday_10am = (5.0 *. Simkit.Calendar.day) +. (10.0 *. 3600.0) in
  checkb "weekday working hours" true (Simkit.Calendar.is_peak_hours monday_10am);
  checkb "weekday night" false (Simkit.Calendar.is_peak_hours monday_11pm);
  checkb "weekend morning" false (Simkit.Calendar.is_peak_hours saturday_10am)

let test_calendar_render () =
  check Alcotest.string "instant format" "d001 02:03:04"
    (Simkit.Calendar.to_string
       (Simkit.Calendar.day +. (2.0 *. 3600.0) +. (3.0 *. 60.0) +. 4.0))

(* ---- Stats ---------------------------------------------------------------- *)

let test_online_stats () =
  let o = Simkit.Stats.Online.create () in
  List.iter (Simkit.Stats.Online.add o) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checki "count" 8 (Simkit.Stats.Online.count o);
  checkf "mean" 5.0 (Simkit.Stats.Online.mean o);
  checkb "variance" true
    (Float.abs (Simkit.Stats.Online.variance o -. 4.571428571) < 1e-6);
  checkf "min" 2.0 (Simkit.Stats.Online.min o);
  checkf "max" 9.0 (Simkit.Stats.Online.max o);
  checkf "sum" 40.0 (Simkit.Stats.Online.sum o)

let test_online_merge () =
  let a = Simkit.Stats.Online.create () and b = Simkit.Stats.Online.create () in
  let whole = Simkit.Stats.Online.create () in
  let rng = Simkit.Prng.create 61L in
  for i = 1 to 1000 do
    let v = Simkit.Prng.float rng *. 10.0 in
    Simkit.Stats.Online.add whole v;
    if i mod 2 = 0 then Simkit.Stats.Online.add a v else Simkit.Stats.Online.add b v
  done;
  let merged = Simkit.Stats.Online.merge a b in
  checki "merged count" 1000 (Simkit.Stats.Online.count merged);
  checkb "merged mean" true
    (Float.abs (Simkit.Stats.Online.mean merged -. Simkit.Stats.Online.mean whole) < 1e-9);
  checkb "merged variance" true
    (Float.abs (Simkit.Stats.Online.variance merged -. Simkit.Stats.Online.variance whole)
     < 1e-6)

let test_percentiles () =
  let data = Array.init 101 float_of_int in
  checkf "p0" 0.0 (Simkit.Stats.percentile data 0.0);
  checkf "p50" 50.0 (Simkit.Stats.percentile data 0.5);
  checkf "p100" 100.0 (Simkit.Stats.percentile data 1.0);
  checkf "median" 50.0 (Simkit.Stats.median data);
  Alcotest.check_raises "empty data" (Invalid_argument "Stats.percentile: empty data")
    (fun () -> ignore (Simkit.Stats.percentile [||] 0.5))

let test_percentile_float_order () =
  (* Regression: the sort must use a float comparator — negative values
     and mixed magnitudes must interpolate on the numerically sorted
     data, and NaN must not poison the order of the finite elements. *)
  let data = [| 3.0; -1.0; 2.0; -4.0; 0.0 |] in
  checkf "min" (-4.0) (Simkit.Stats.percentile data 0.0);
  checkf "median" 0.0 (Simkit.Stats.median data);
  checkf "max" 3.0 (Simkit.Stats.percentile data 1.0);
  let with_nan = [| 2.0; nan; 1.0; 3.0 |] in
  (* Float.compare orders NaN below every number: the top percentile is
     still the largest finite value. *)
  checkf "max with nan present" 3.0 (Simkit.Stats.percentile with_nan 1.0)

let test_histogram () =
  let h = Simkit.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Simkit.Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.0; 10.0; 25.0 ];
  checki "total" 7 (Simkit.Stats.Histogram.count h);
  checki "bin 0" 1 (Simkit.Stats.Histogram.bin_count h 0);
  checki "bin 1" 2 (Simkit.Stats.Histogram.bin_count h 1);
  checki "bin 9" 1 (Simkit.Stats.Histogram.bin_count h 9);
  checki "underflow" 1 (Simkit.Stats.Histogram.underflow h);
  checki "overflow" 2 (Simkit.Stats.Histogram.overflow h);
  let lo, hi = Simkit.Stats.Histogram.bin_bounds h 3 in
  checkf "bin bounds lo" 3.0 lo;
  checkf "bin bounds hi" 4.0 hi;
  checkb "render mentions counts" true
    (String.length (Simkit.Stats.Histogram.render h) > 0)

(* ---- Timeseries ------------------------------------------------------------ *)

let test_timeseries_basic () =
  let ts = Simkit.Timeseries.create ~name:"t" () in
  for i = 0 to 99 do
    Simkit.Timeseries.add ts ~time:(float_of_int i) (float_of_int (i * 2))
  done;
  checki "length" 100 (Simkit.Timeseries.length ts);
  (match Simkit.Timeseries.last ts with
   | Some (t, v) ->
     checkf "last time" 99.0 t;
     checkf "last value" 198.0 v
   | None -> Alcotest.fail "expected last");
  checki "window count" 11 (List.length (Simkit.Timeseries.between ts ~lo:10.0 ~hi:20.0));
  checkf "mean of window" 30.0 (Simkit.Timeseries.mean_between ts ~lo:10.0 ~hi:20.0)

let test_timeseries_monotonic_guard () =
  let ts = Simkit.Timeseries.create ~name:"t" () in
  Simkit.Timeseries.add ts ~time:5.0 1.0;
  Alcotest.check_raises "backwards time rejected"
    (Invalid_argument "Timeseries.add: time going backwards") (fun () ->
      Simkit.Timeseries.add ts ~time:4.0 1.0)

let test_timeseries_downsample () =
  let ts = Simkit.Timeseries.create ~name:"t" () in
  for i = 0 to 19 do
    Simkit.Timeseries.add ts ~time:(float_of_int i) 1.0
  done;
  let buckets = Simkit.Timeseries.downsample ts ~bucket:10.0 in
  checki "two buckets" 2 (List.length buckets);
  List.iter (fun (_, v) -> checkf "bucket mean" 1.0 v) buckets

let test_timeseries_downsample_negative_times () =
  (* Regression: int_of_float truncates toward zero, which used to merge
     the [-bucket, 0) and [0, bucket) buckets; bucketing must floor. *)
  let ts = Simkit.Timeseries.create ~name:"t" () in
  List.iter
    (fun (t, v) -> Simkit.Timeseries.add ts ~time:t v)
    [ (-15.0, 1.0); (-5.0, 2.0); (5.0, 4.0); (15.0, 8.0) ]
  ;
  let buckets = Simkit.Timeseries.downsample ts ~bucket:10.0 in
  checki "four buckets" 4 (List.length buckets);
  List.iter2
    (fun (start, mean) (expected_start, expected_mean) ->
      checkf "bucket start" expected_start start;
      checkf "bucket mean" expected_mean mean)
    buckets
    [ (-20.0, 1.0); (-10.0, 2.0); (0.0, 4.0); (10.0, 8.0) ]

let test_timeseries_empty_window () =
  let ts = Simkit.Timeseries.create ~name:"t" () in
  checkb "mean of empty is nan" true
    (Float.is_nan (Simkit.Timeseries.mean_between ts ~lo:0.0 ~hi:10.0))

let test_timeseries_sparkline_width () =
  let ts = Simkit.Timeseries.create ~name:"t" () in
  for i = 0 to 59 do
    Simkit.Timeseries.add ts ~time:(float_of_int i) (sin (float_of_int i))
  done;
  checki "width respected" 30
    (String.length (Simkit.Timeseries.sparkline ts ~lo:0.0 ~hi:59.0 ~width:30))

(* ---- Json ------------------------------------------------------------------ *)

let sample_json =
  Simkit.Json.Obj
    [ ("name", Simkit.Json.String "node-1");
      ("cores", Simkit.Json.Int 8);
      ("freq", Simkit.Json.Float 2.5);
      ("ok", Simkit.Json.Bool true);
      ("tags", Simkit.Json.List [ Simkit.Json.String "a"; Simkit.Json.String "b" ]);
      ("empty", Simkit.Json.Null) ]

let test_json_roundtrip () =
  let text = Simkit.Json.to_string sample_json in
  match Simkit.Json.of_string text with
  | Ok parsed -> checkb "roundtrip equal" true (Simkit.Json.equal parsed sample_json)
  | Error e -> Alcotest.fail e

let test_json_pretty_roundtrip () =
  let text = Simkit.Json.to_string ~indent:2 sample_json in
  match Simkit.Json.of_string text with
  | Ok parsed -> checkb "pretty roundtrip" true (Simkit.Json.equal parsed sample_json)
  | Error e -> Alcotest.fail e

let test_json_escapes () =
  let v = Simkit.Json.String "line\nwith \"quotes\" and \\slash\\ and\ttab" in
  match Simkit.Json.of_string (Simkit.Json.to_string v) with
  | Ok parsed -> checkb "escape roundtrip" true (Simkit.Json.equal parsed v)
  | Error e -> Alcotest.fail e

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Simkit.Json.of_string bad with
      | Ok _ -> Alcotest.failf "should not parse: %s" bad
      | Error _ -> ())
    [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "nul"; "1 2"; "" ]

let test_json_of_string_exn_invalid_arg () =
  (* Exception-style regression: every other [_exn] in the repo raises
     Invalid_argument; of_string_exn used to raise Failure. *)
  (match Simkit.Json.of_string_exn "{\"a\": 1}" with
   | Simkit.Json.Obj _ -> ()
   | _ -> Alcotest.fail "expected an object");
  List.iter
    (fun bad ->
      match Simkit.Json.of_string_exn bad with
      | _ -> Alcotest.failf "should raise on %S" bad
      | exception Invalid_argument _ -> ()
      | exception exn ->
        Alcotest.failf "wrong exception for %S: %s" bad (Printexc.to_string exn))
    [ "{"; "[1,"; "nul"; "" ]

let test_json_members () =
  check Alcotest.(option string) "string member" (Some "node-1")
    (Simkit.Json.string_member "name" sample_json);
  check Alcotest.(option int) "int member" (Some 8)
    (Simkit.Json.int_member "cores" sample_json);
  check
    Alcotest.(option (float 1e-9))
    "float member" (Some 2.5)
    (Simkit.Json.float_member "freq" sample_json);
  check Alcotest.(option bool) "bool member" (Some true)
    (Simkit.Json.bool_member "ok" sample_json);
  checkb "missing member" true (Simkit.Json.member "nope" sample_json = None)

let test_json_diff () =
  let a = Simkit.Json.Obj [ ("x", Simkit.Json.Int 1); ("y", Simkit.Json.Int 2) ] in
  let b = Simkit.Json.Obj [ ("x", Simkit.Json.Int 1); ("y", Simkit.Json.Int 3) ] in
  match Simkit.Json.diff a b with
  | [ (path, Some (Simkit.Json.Int 2), Some (Simkit.Json.Int 3)) ] ->
    check Alcotest.string "path" "y" path
  | _ -> Alcotest.fail "expected one diff on y"

let test_json_diff_nested_and_missing () =
  let a =
    Simkit.Json.Obj
      [ ("inner", Simkit.Json.Obj [ ("k", Simkit.Json.Bool true) ]);
        ("only_a", Simkit.Json.Int 1) ]
  in
  let b = Simkit.Json.Obj [ ("inner", Simkit.Json.Obj [ ("k", Simkit.Json.Bool false) ]) ] in
  let diffs = Simkit.Json.diff a b in
  checki "two differences" 2 (List.length diffs);
  checkb "nested path present" true (List.exists (fun (p, _, _) -> p = "inner/k") diffs);
  checkb "missing member reported" true
    (List.exists (fun (p, _, o) -> p = "only_a" && o = None) diffs)

let test_json_diff_identical () =
  checki "no diff on equal docs" 0 (List.length (Simkit.Json.diff sample_json sample_json))

let prop_json_roundtrip =
  let rec gen_json depth =
    let open QCheck.Gen in
    if depth = 0 then
      oneof
        [ map (fun i -> Simkit.Json.Int i) small_int;
          map (fun b -> Simkit.Json.Bool b) bool;
          map (fun s -> Simkit.Json.String s) (string_size (return 5) ~gen:printable);
          return Simkit.Json.Null ]
    else
      frequency
        [ (2, gen_json 0);
          ( 1,
            map (fun l -> Simkit.Json.List l) (list_size (int_bound 4) (gen_json (depth - 1)))
          );
          ( 1,
            map
              (fun kvs ->
                (* Keys must be unique for the order-sensitive equality. *)
                let _, members =
                  List.fold_left
                    (fun (i, acc) v -> (i + 1, (Printf.sprintf "k%d" i, v) :: acc))
                    (0, []) kvs
                in
                Simkit.Json.Obj (List.rev members))
              (list_size (int_bound 4) (gen_json (depth - 1))) ) ]
  in
  QCheck.Test.make ~name:"json print/parse roundtrip" ~count:300
    (QCheck.make (gen_json 3))
    (fun doc ->
      match Simkit.Json.of_string (Simkit.Json.to_string doc) with
      | Ok parsed -> Simkit.Json.equal parsed doc
      | Error _ -> false)

(* ---- Table ------------------------------------------------------------------ *)

let test_table_render () =
  let out =
    Simkit.Table.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  checkb "contains header" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> String.length l > 0 && l.[0] = '|') lines)

let test_table_pads_short_rows () =
  let out = Simkit.Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  checkb "renders" true (String.length out > 0)

let test_table_fmt () =
  check Alcotest.string "float" "3.14" (Simkit.Table.fmt_float 3.14159);
  check Alcotest.string "nan" "-" (Simkit.Table.fmt_float nan);
  check Alcotest.string "pct" "85.0%" (Simkit.Table.fmt_pct 0.85)

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "simkit"
    [
      ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int uniformish" `Slow test_prng_int_uniformish;
          Alcotest.test_case "int_in" `Quick test_prng_int_in;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_prng_sample_without_replacement ] );
      ( "dist",
        [ Alcotest.test_case "means" `Slow test_dist_means;
          Alcotest.test_case "mixture" `Quick test_dist_mixture;
          Alcotest.test_case "pareto infinite mean" `Quick test_dist_pareto_mean_infinite;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "to_list sorted" `Quick test_heap_to_list_sorted;
          Alcotest.test_case "pop releases value" `Quick test_heap_pop_releases_value;
          qc prop_heap_sorts;
          qc prop_heap_model ] );
      ( "intset",
        [ Alcotest.test_case "basics" `Quick test_intset_basics;
          qc prop_intset_model ] );
      ( "engine",
        [ Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "run_until" `Quick test_engine_run_until;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "every stops" `Quick test_engine_every_stops;
          Alcotest.test_case "past schedule clamped" `Quick
            test_engine_past_schedule_clamped;
          Alcotest.test_case "observer sees labels" `Quick
            test_engine_observer_labels;
          Alcotest.test_case "cancel after fire leaks nothing" `Quick
            test_engine_cancel_after_fire_no_leak;
          Alcotest.test_case "cancel within same instant" `Quick
            test_engine_cancel_same_instant;
          Alcotest.test_case "run_until over cancelled prefix" `Quick
            test_engine_run_until_cancelled_prefix;
          Alcotest.test_case "next_time stepping = run_until" `Quick
            test_engine_next_time_matches_run_until;
          Alcotest.test_case "jitter 0 draws nothing" `Quick
            test_engine_jitter_zero_draws_nothing;
          Alcotest.test_case "jitter stream isolated" `Quick
            test_engine_jitter_isolated;
          qc prop_engine_pending_consistent ] );
      ( "calendar",
        [ Alcotest.test_case "basics" `Quick test_calendar_basics;
          Alcotest.test_case "weekend" `Quick test_calendar_weekend;
          Alcotest.test_case "peak hours" `Quick test_calendar_peak_hours;
          Alcotest.test_case "render" `Quick test_calendar_render ] );
      ( "stats",
        [ Alcotest.test_case "online" `Quick test_online_stats;
          Alcotest.test_case "merge" `Quick test_online_merge;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "percentile float order" `Quick
            test_percentile_float_order;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "timeseries",
        [ Alcotest.test_case "basic" `Quick test_timeseries_basic;
          Alcotest.test_case "monotonic guard" `Quick test_timeseries_monotonic_guard;
          Alcotest.test_case "downsample" `Quick test_timeseries_downsample;
          Alcotest.test_case "downsample negative times" `Quick
            test_timeseries_downsample_negative_times;
          Alcotest.test_case "empty window" `Quick test_timeseries_empty_window;
          Alcotest.test_case "sparkline width" `Quick test_timeseries_sparkline_width ] );
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "pretty roundtrip" `Quick test_json_pretty_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "of_string_exn raises Invalid_argument" `Quick
            test_json_of_string_exn_invalid_arg;
          Alcotest.test_case "members" `Quick test_json_members;
          Alcotest.test_case "diff" `Quick test_json_diff;
          Alcotest.test_case "diff nested/missing" `Quick test_json_diff_nested_and_missing;
          Alcotest.test_case "diff identical" `Quick test_json_diff_identical;
          qc prop_json_roundtrip ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "fmt" `Quick test_table_fmt ] );
    ]
