(* Tests for the resilience layer: retry backoff/budgets, circuit
   breakers, watchdogs, CI degraded modes and the chaos campaign. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let day = Simkit.Calendar.day
let hour = Simkit.Calendar.hour

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* ---- Retry -------------------------------------------------------------------- *)

let retry_cfg =
  {
    Framework.Resilience.Retry.initial = 1.0;
    max_delay = 8.0;
    multiplier = 2.0;
    jitter = 0.0;
    budget = max_int;
  }

let delays r n = List.init n (fun _ -> Framework.Resilience.Retry.next_delay r)

let test_retry_legacy_doubling () =
  let r = Framework.Resilience.Retry.create retry_cfg in
  List.iteri
    (fun i expected ->
      match Framework.Resilience.Retry.next_delay r with
      | Some d -> checkf (Printf.sprintf "delay %d" i) expected d
      | None -> Alcotest.fail "unlimited budget exhausted")
    [ 1.0; 2.0; 4.0; 8.0; 8.0 ];
  Framework.Resilience.Retry.reset r;
  (match Framework.Resilience.Retry.next_delay r with
   | Some d -> checkf "reset restarts at initial" 1.0 d
   | None -> Alcotest.fail "exhausted after reset");
  checki "total spent survives reset" 6 (Framework.Resilience.Retry.total_spent r)

let test_retry_jitter_deterministic () =
  let cfg = { retry_cfg with Framework.Resilience.Retry.jitter = 0.5 } in
  let a = Framework.Resilience.Retry.create ~seed:11L cfg in
  let b = Framework.Resilience.Retry.create ~seed:11L cfg in
  let da = delays a 6 and db = delays b 6 in
  checkb "same seed, same delays" true (da = db);
  List.iter
    (function
      | Some d ->
        checkb "within [initial, max]" true
          (d >= cfg.Framework.Resilience.Retry.initial
          && d <= cfg.Framework.Resilience.Retry.max_delay)
      | None -> Alcotest.fail "unlimited budget exhausted")
    da

let test_retry_budget_exhaustion () =
  let cfg = { retry_cfg with Framework.Resilience.Retry.budget = 3 } in
  let r = Framework.Resilience.Retry.create cfg in
  checkb "three retries granted" true
    (List.for_all Option.is_some (delays r 3));
  checkb "fourth denied" true (Framework.Resilience.Retry.next_delay r = None);
  checkb "exhausted" true (Framework.Resilience.Retry.exhausted r);
  Framework.Resilience.Retry.reset r;
  checkb "budget refills on reset" true
    (Framework.Resilience.Retry.next_delay r <> None);
  checki "lifetime total counts only granted" 4
    (Framework.Resilience.Retry.total_spent r)

(* ---- Breaker ------------------------------------------------------------------ *)

let test_breaker_transitions () =
  let open Framework.Resilience.Breaker in
  let b = create { failure_threshold = 3; cooldown = 100.0 } in
  checkb "starts closed" true (state b = Closed);
  record_failure b ~now:0.0;
  record_failure b ~now:1.0;
  checkb "below threshold stays closed" true (state b = Closed);
  record_failure b ~now:2.0;
  checkb "opens at threshold" true (state b = Open);
  checki "one trip" 1 (trips b);
  checkb "open rejects" false (allow b ~now:50.0);
  checkb "cooldown expiry admits a probe" true (allow b ~now:110.0);
  checkb "now half-open" true (state b = Half_open);
  checkb "only one probe admitted" false (allow b ~now:111.0);
  record_failure b ~now:112.0;
  checkb "failed probe re-opens" true (state b = Open);
  checki "second trip" 2 (trips b);
  checkb "successful probe closes" true (allow b ~now:300.0);
  record_success b;
  checkb "closed again" true (state b = Closed);
  checkb "closed allows" true (allow b ~now:301.0)

let test_breaker_ignores_late_failures_while_open () =
  let open Framework.Resilience.Breaker in
  let b = create { failure_threshold = 1; cooldown = 100.0 } in
  record_failure b ~now:0.0;
  checkb "open" true (state b = Open);
  (* A build already in flight when the breaker opened completes late:
     no double-trip, no cooldown restart. *)
  record_failure b ~now:5.0;
  checki "still one trip" 1 (trips b);
  checkb "cooldown unchanged" true (allow b ~now:101.0)

(* ---- Watchdog ------------------------------------------------------------------ *)

let test_watchdog_fire_vs_disarm () =
  let engine = Simkit.Engine.create ~seed:1L () in
  let wd = Framework.Resilience.Watchdog.create engine in
  let fired_cb = ref 0 in
  let h1 = Framework.Resilience.Watchdog.arm wd ~delay:10.0 (fun () -> incr fired_cb) in
  let h2 =
    Framework.Resilience.Watchdog.arm wd ~delay:20.0 (fun () ->
        Alcotest.fail "disarmed watchdog fired")
  in
  checki "two armed" 2 (Framework.Resilience.Watchdog.armed wd);
  ignore
    (Simkit.Engine.schedule engine ~delay:15.0 (fun _ ->
         Framework.Resilience.Watchdog.disarm wd h2));
  Simkit.Engine.run_until engine 100.0;
  checki "callback ran once" 1 !fired_cb;
  checki "one fired" 1 (Framework.Resilience.Watchdog.fired wd);
  checki "none armed" 0 (Framework.Resilience.Watchdog.armed wd);
  (* Disarming after the fact is a no-op. *)
  Framework.Resilience.Watchdog.disarm wd h1;
  checki "counts unchanged" 1 (Framework.Resilience.Watchdog.fired wd)

(* ---- CI server degraded modes -------------------------------------------------- *)

let instant_job ?(result = Ci.Build.Success) name =
  Ci.Jobdef.freestyle ~name (fun ~engine ~build:_ ~finish ->
      ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish result)))

let timed_job ~duration ?(result = Ci.Build.Success) name =
  Ci.Jobdef.freestyle ~name (fun ~engine ~build:_ ~finish ->
      ignore (Simkit.Engine.schedule engine ~delay:duration (fun _ -> finish result)))

let test_outage_defers_and_replays () =
  let engine = Simkit.Engine.create ~seed:3L () in
  let ci = Ci.Server.create ~executors:2 engine in
  List.iter (fun n -> Ci.Server.define ci (instant_job n)) [ "a"; "b"; "c" ];
  Ci.Server.set_outage ci true;
  List.iter (fun n -> ignore (Ci.Server.trigger ci n)) [ "a"; "b"; "c" ];
  checki "all queued" 3 (Ci.Server.queue_length ci);
  checki "deferred counted" 3 (Ci.Server.deferred_triggers ci);
  Simkit.Engine.run_until engine 50.0;
  checki "nothing ran during outage" 0 (Ci.Server.builds_executed ci);
  Ci.Server.set_outage ci false;
  Simkit.Engine.run_until engine 100.0;
  checki "queue replayed on recovery" 3 (Ci.Server.builds_executed ci);
  List.iter
    (fun n ->
      checkb (n ^ " succeeded") true
        ((Option.get (Ci.Server.last_build ci n)).Ci.Build.result
        = Some Ci.Build.Success))
    [ "a"; "b"; "c" ]

let test_hang_and_interrupt () =
  let engine = Simkit.Engine.create ~seed:4L () in
  let ci = Ci.Server.create ~executors:2 engine in
  Ci.Server.define ci (instant_job "stuck");
  Ci.Server.set_hang ci true;
  ignore (Ci.Server.trigger ci "stuck");
  Simkit.Engine.run_until engine 50.0;
  let b = Option.get (Ci.Server.last_build ci "stuck") in
  checkb "started but never finished" true
    (b.Ci.Build.started_at <> None && b.Ci.Build.result = None);
  checki "executor held" 1 (Ci.Server.busy_executors ci);
  checkb "interrupt kills it" true (Ci.Server.interrupt ci b);
  checkb "aborted" true (b.Ci.Build.result = Some Ci.Build.Aborted);
  checki "executor freed" 0 (Ci.Server.busy_executors ci);
  checkb "second interrupt is a no-op" false (Ci.Server.interrupt ci b)

let test_drop_queue_marks_not_built () =
  let engine = Simkit.Engine.create ~seed:5L () in
  let ci = Ci.Server.create ~executors:1 engine in
  Ci.Server.define ci (timed_job ~duration:100.0 "long");
  ignore (Ci.Server.trigger ci "long");
  ignore (Ci.Server.trigger ci "long");
  checki "one queued behind the running build" 1 (Ci.Server.queue_length ci);
  let notified = ref 0 in
  Ci.Server.on_build_complete ci (fun _ -> incr notified);
  checki "one dropped" 1 (Ci.Server.drop_queue ci);
  checki "listener notified of the loss" 1 !notified;
  checkb "dropped build marked NOT_BUILT" true
    ((Option.get (Ci.Server.build ci "long" 2)).Ci.Build.result
    = Some Ci.Build.Not_built);
  Simkit.Engine.run_until engine 200.0;
  checkb "running build unaffected" true
    ((Option.get (Ci.Server.build ci "long" 1)).Ci.Build.result
    = Some Ci.Build.Success)

(* ---- Infra supervisor ---------------------------------------------------------- *)

let test_infra_watchdog_aborts_hung_build () =
  let env = Framework.Env.create ~seed:6L () in
  let infra =
    Framework.Resilience.Infra.attach
      ~config:
        { Framework.Resilience.Infra.check_period = 60.0;
          deadline_of = (fun _ -> Some 300.0) }
      env
  in
  Ci.Server.define env.Framework.Env.ci
    (Ci.Jobdef.freestyle ~name:"neverending" (fun ~engine:_ ~build:_ ~finish:_ -> ()));
  Ci.Server.define env.Framework.Env.ci (instant_job "quick");
  ignore (Ci.Server.trigger env.Framework.Env.ci "neverending");
  ignore (Ci.Server.trigger env.Framework.Env.ci "quick");
  Framework.Env.run_until env 1000.0;
  checkb "hung build aborted at deadline" true
    ((Option.get (Ci.Server.last_build env.Framework.Env.ci "neverending"))
       .Ci.Build.result
    = Some Ci.Build.Aborted);
  checkb "clean build untouched" true
    ((Option.get (Ci.Server.last_build env.Framework.Env.ci "quick")).Ci.Build.result
    = Some Ci.Build.Success);
  checki "one watchdog abort" 1 (Framework.Resilience.Infra.watchdog_aborts infra)

let test_infra_outage_flag_roundtrip () =
  let env = Framework.Env.create ~seed:7L () in
  let infra =
    Framework.Resilience.Infra.attach
      ~config:
        { Framework.Resilience.Infra.check_period = 60.0;
          deadline_of = (fun _ -> None) }
      env
  in
  let faults = Framework.Env.faults env in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Ci_outage
         (Testbed.Faults.Global Testbed.Faults.ci_outage_flag))
  in
  Ci.Server.define env.Framework.Env.ci (instant_job "ping");
  Framework.Env.run_until env 100.0;
  checkb "supervisor noticed the outage" true (Ci.Server.outage env.Framework.Env.ci);
  ignore (Ci.Server.trigger env.Framework.Env.ci "ping");
  Framework.Env.run_until env 200.0;
  checki "build deferred during outage" 0
    (Ci.Server.builds_executed env.Framework.Env.ci);
  Testbed.Faults.repair faults ~now:(Framework.Env.now env) fault;
  Framework.Env.run_until env 400.0;
  checkb "queue replayed after repair" true
    ((Option.get (Ci.Server.last_build env.Framework.Env.ci "ping")).Ci.Build.result
    = Some Ci.Build.Success);
  checki "one outage weathered" 1 (Framework.Resilience.Infra.ci_outages infra)

(* ---- Infrastructure fault kinds ------------------------------------------------ *)

let infra_kinds =
  [ (Testbed.Faults.Ci_outage, Testbed.Faults.ci_outage_flag);
    (Testbed.Faults.Build_hang, Testbed.Faults.build_hang_flag);
    (Testbed.Faults.Queue_loss, Testbed.Faults.queue_loss_flag) ]

let test_infra_inject_on_validates_targets () =
  List.iter
    (fun (kind, flag_key) ->
      let t = Testbed.Instance.build ~seed:55L () in
      let faults = t.Testbed.Instance.faults in
      let inject_on = Testbed.Faults.inject_on faults ~now:0.0 kind in
      checkb "host target rejected" true
        (inject_on (Testbed.Faults.Host "taurus-1.lyon") = None);
      checkb "cluster target rejected" true
        (inject_on (Testbed.Faults.Cluster "graphene") = None);
      checkb "wrong global key rejected" true
        (inject_on (Testbed.Faults.Global "not_a_flag") = None);
      let fault = Option.get (inject_on (Testbed.Faults.Global flag_key)) in
      checkb "flag raised" true
        (Testbed.Faults.flag (Testbed.Faults.context faults) flag_key <> None);
      checkb "double injection rejected while active" true
        (Testbed.Faults.inject_on faults ~now:1.0 kind
           (Testbed.Faults.Global flag_key)
        = None);
      Testbed.Faults.repair faults ~now:2.0 fault;
      Testbed.Faults.repair faults ~now:9.0 fault;
      Alcotest.(check (option (float 1e-9)))
        "first repair time kept" (Some 2.0) fault.Testbed.Faults.repaired_at;
      checkb "flag cleared" true
        (Testbed.Faults.flag (Testbed.Faults.context faults) flag_key = None))
    infra_kinds

let prop_infra_invalid_targets_rejected =
  QCheck.Test.make ~name:"infra inject_on rejects invalid targets" ~count:30
    QCheck.(pair (int_bound 2) (int_bound 3))
    (fun (ki, ti) ->
      let t = Testbed.Instance.build ~seed:(Int64.of_int (77 + ki)) () in
      let faults = t.Testbed.Instance.faults in
      let kind, _ = List.nth infra_kinds ki in
      let target =
        match ti with
        | 0 -> Testbed.Faults.Host "taurus-1.lyon"
        | 1 -> Testbed.Faults.Cluster "graphene"
        | 2 -> Testbed.Faults.Global "bogus_flag"
        | _ -> Testbed.Faults.Host_pair ("taurus-1.lyon", "taurus-2.lyon")
      in
      Testbed.Faults.inject_on faults ~now:0.0 kind target = None)

let prop_infra_repair_idempotent =
  QCheck.Test.make ~name:"infra fault repair is idempotent" ~count:20
    QCheck.(int_bound 2)
    (fun ki ->
      let t = Testbed.Instance.build ~seed:(Int64.of_int (88 + ki)) () in
      let faults = t.Testbed.Instance.faults in
      let kind, flag_key = List.nth infra_kinds ki in
      match Testbed.Faults.inject faults ~now:0.0 kind with
      | None -> false
      | Some fault ->
        Testbed.Faults.repair faults ~now:4.0 fault;
        Testbed.Faults.repair faults ~now:9.0 fault;
        fault.Testbed.Faults.repaired_at = Some 4.0
        && Testbed.Faults.active faults = []
        && Testbed.Faults.flag (Testbed.Faults.context faults) flag_key = None)

(* ---- Chaos campaign ------------------------------------------------------------ *)

let chaos_config =
  {
    Framework.Campaign.default_config with
    Framework.Campaign.months = 1;
    seed = 909L;
    initial_faults = 30;
    resilience = true;
    infra_faults =
      [ (3.0 *. day, Testbed.Faults.Ci_outage);
        (8.0 *. day, Testbed.Faults.Build_hang);
        (16.0 *. day, Testbed.Faults.Queue_loss) ];
    policy =
      {
        Framework.Scheduler.smart_policy with
        Framework.Scheduler.retry_budget = 4;
        backoff_jitter = 0.25;
        breaker =
          Some
            {
              Framework.Resilience.Breaker.failure_threshold = 2;
              cooldown = 6.0 *. hour;
            };
      };
  }

let test_chaos_campaign_survives () =
  let report = Framework.Campaign.run chaos_config in
  match report.Framework.Campaign.resilience with
  | None -> Alcotest.fail "resilience summary missing from report"
  | Some s ->
    checkb "CI outage weathered" true (s.Framework.Resilience.ci_outages >= 1);
    checkb "watchdog aborted hung builds" true
      (s.Framework.Resilience.watchdog_aborts > 0);
    checkb "breaker tripped" true (s.Framework.Resilience.breaker_trips > 0);
    checkb "queue drop absorbed" true (s.Framework.Resilience.queue_drops >= 1);
    checki "retry budget surfaced" 4 s.Framework.Resilience.retry_budget;
    checkb "builds kept completing" true (report.Framework.Campaign.builds_total > 0);
    checkb "report JSON carries the resilience block" true
      (contains (Framework.Report.to_string report) "\"resilience\"");
    checkb "status page shows the resilience section" true
      (contains report.Framework.Campaign.statuspage
         "== Resilience (testing infrastructure) ==")

let test_default_campaign_has_no_resilience_block () =
  (* Resilience off (the default): the report must not change shape. *)
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with Framework.Campaign.months = 1;
        seed = 13L }
  in
  checkb "no summary" true (report.Framework.Campaign.resilience = None);
  checkb "no JSON member" false
    (contains (Framework.Report.to_string report) "\"resilience\"");
  checkb "no status page section" false
    (contains report.Framework.Campaign.statuspage "== Resilience")

let () =
  let qc = Qc.to_alcotest in
  Alcotest.run "resilience"
    [
      ( "retry",
        [ Alcotest.test_case "legacy doubling" `Quick test_retry_legacy_doubling;
          Alcotest.test_case "jitter deterministic" `Quick
            test_retry_jitter_deterministic;
          Alcotest.test_case "budget exhaustion" `Quick test_retry_budget_exhaustion ] );
      ( "breaker",
        [ Alcotest.test_case "transitions" `Quick test_breaker_transitions;
          Alcotest.test_case "late failures ignored while open" `Quick
            test_breaker_ignores_late_failures_while_open ] );
      ( "watchdog",
        [ Alcotest.test_case "fire vs disarm" `Quick test_watchdog_fire_vs_disarm ] );
      ( "ci-degraded",
        [ Alcotest.test_case "outage defers and replays" `Quick
            test_outage_defers_and_replays;
          Alcotest.test_case "hang and interrupt" `Quick test_hang_and_interrupt;
          Alcotest.test_case "drop queue" `Quick test_drop_queue_marks_not_built ] );
      ( "infra",
        [ Alcotest.test_case "watchdog aborts hung build" `Quick
            test_infra_watchdog_aborts_hung_build;
          Alcotest.test_case "outage flag roundtrip" `Quick
            test_infra_outage_flag_roundtrip ] );
      ( "faults",
        [ Alcotest.test_case "inject_on validates targets" `Quick
            test_infra_inject_on_validates_targets;
          qc prop_infra_invalid_targets_rejected;
          qc prop_infra_repair_idempotent ] );
      ( "campaign",
        [ Alcotest.test_case "chaos campaign survives" `Quick
            test_chaos_campaign_survives;
          Alcotest.test_case "no resilience block by default" `Quick
            test_default_campaign_has_no_resilience_block ] );
    ]
