(* Tests for the testing framework itself: catalog, scripts, external
   scheduler, bug tracker, status page, operator. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let mk () = Framework.Env.create ~seed:404L ()

(* Run one script configuration synchronously, returning the outcome. *)
let run_script env config =
  let build =
    {
      Ci.Build.job_name = Framework.Jobs.job_name config.Framework.Testdef.family;
      number = 1;
      axes = Framework.Testdef.axes_of_config config;
      cause = "test";
      retry_of = None;
      queued_at = Framework.Env.now env;
      started_at = Some (Framework.Env.now env);
      finished_at = None;
      result = None;
      log = [];
      artifacts = [];
      touched_hosts = [];
    }
  in
  let outcome = ref None in
  Framework.Scripts.run env config ~build ~finish:(fun o -> outcome := Some o);
  Simkit.Engine.run_until (Framework.Env.engine env)
    (Framework.Env.now env +. (4.0 *. Simkit.Calendar.hour));
  match !outcome with Some o -> o | None -> Alcotest.fail "script never finished"

let config_exn family ~id =
  match
    List.find_opt
      (fun c -> String.equal c.Framework.Testdef.config_id id)
      (Framework.Testdef.expand family)
  with
  | Some c -> c
  | None -> Alcotest.failf "no config %s" id

(* ---- Catalog: the 751 configurations ------------------------------------------ *)

let test_catalog_is_751 () =
  checki "total configurations (paper: 751)" 751
    (List.length (Framework.Testdef.catalog ()));
  checki "via jobs module" 751 (Framework.Jobs.total_configurations ())

let test_catalog_family_sizes () =
  let size family = List.length (Framework.Testdef.expand family) in
  checki "environments 448" 448 (size Framework.Testdef.Environments);
  checki "stdenv 32" 32 (size Framework.Testdef.Stdenv);
  checki "refapi 32" 32 (size Framework.Testdef.Refapi);
  checki "oarproperties 32" 32 (size Framework.Testdef.Oarproperties);
  checki "dellbios 18" 18 (size Framework.Testdef.Dellbios);
  checki "oarstate 8" 8 (size Framework.Testdef.Oarstate);
  checki "cmdline 8" 8 (size Framework.Testdef.Cmdline);
  checki "sidapi 8" 8 (size Framework.Testdef.Sidapi);
  checki "paralleldeploy 8" 8 (size Framework.Testdef.Paralleldeploy);
  checki "multireboot 32" 32 (size Framework.Testdef.Multireboot);
  checki "multideploy 32" 32 (size Framework.Testdef.Multideploy);
  checki "console 32" 32 (size Framework.Testdef.Console);
  checki "kavlan 13" 13 (size Framework.Testdef.Kavlan);
  checki "kwapi 6" 6 (size Framework.Testdef.Kwapi);
  checki "mpigraph 10" 10 (size Framework.Testdef.Mpigraph);
  checki "disk 32" 32 (size Framework.Testdef.Disk)

let test_catalog_ids_unique () =
  let ids = List.map (fun c -> c.Framework.Testdef.config_id) (Framework.Testdef.catalog ()) in
  checki "unique ids" 751 (List.length (List.sort_uniq compare ids))

let test_axes_roundtrip () =
  List.iter
    (fun config ->
      let axes = Framework.Testdef.axes_of_config config in
      match Framework.Testdef.config_of_axes config.Framework.Testdef.family axes with
      | Some back ->
        checks "roundtrip" config.Framework.Testdef.config_id
          back.Framework.Testdef.config_id
      | None -> Alcotest.failf "axes lost %s" config.Framework.Testdef.config_id)
    (Framework.Testdef.catalog ())

let test_hardware_centric_classification () =
  checkb "multireboot hardware-centric" true
    (Framework.Testdef.is_hardware_centric Framework.Testdef.Multireboot);
  checkb "refapi software-centric" false
    (Framework.Testdef.is_hardware_centric Framework.Testdef.Refapi)

(* ---- Scripts: healthy testbed passes everything --------------------------------- *)

let test_scripts_pass_on_healthy_testbed () =
  let env = mk () in
  (* One representative configuration per family. *)
  let representatives =
    List.map
      (fun family -> List.hd (Framework.Testdef.expand family))
      Framework.Testdef.all_families
  in
  List.iter
    (fun config ->
      let outcome = run_script env config in
      checkb
        (Printf.sprintf "%s passes" config.Framework.Testdef.config_id)
        true
        (outcome.Framework.Scripts.result = Ci.Build.Success))
    representatives

(* ---- Scripts: each fault class is caught by the right family --------------------- *)

let test_refapi_catches_cpu_drift () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cpu_cstates (Testbed.Faults.Host "graphene-3.nancy"));
  let outcome = run_script env (config_exn Framework.Testdef.Refapi ~id:"refapi:graphene") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure);
  checkb "evidence filed" true (outcome.Framework.Scripts.evidences <> []);
  let fault = List.hd (Testbed.Faults.history (Framework.Env.faults env)) in
  checkb "ground truth marked detected" true (fault.Testbed.Faults.detected_at <> None)

let test_refapi_catches_cabling () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cabling_swap
       (Testbed.Faults.Host_pair ("graphene-3.nancy", "graphene-4.nancy")));
  let outcome = run_script env (config_exn Framework.Testdef.Refapi ~id:"refapi:graphene") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure);
  checkb "cabling category" true
    (List.exists
       (fun (e : Framework.Bugtracker.evidence) -> String.equal e.Framework.Bugtracker.category "cabling")
       outcome.Framework.Scripts.evidences)

let test_dellbios_catches_bios_drift () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0 Testbed.Faults.Bios_drift
       (Testbed.Faults.Host "grisou-5.nancy"));
  let outcome = run_script env (config_exn Framework.Testdef.Dellbios ~id:"dellbios:grisou") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure)

let test_oarproperties_catches_desync () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Oar_property_desync (Testbed.Faults.Host "orion-1.lyon"));
  Oar.Manager.refresh_properties env.Framework.Env.oar;
  let outcome =
    run_script env (config_exn Framework.Testdef.Oarproperties ~id:"oarproperties:orion")
  in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure)

let test_disk_catches_write_cache () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Disk_write_cache (Testbed.Faults.Host "graphite-1.nancy"));
  let outcome = run_script env (config_exn Framework.Testdef.Disk ~id:"disk:graphite") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure);
  checkb "disk category" true
    (List.for_all
       (fun (e : Framework.Bugtracker.evidence) -> String.equal e.Framework.Bugtracker.category "disk")
       outcome.Framework.Scripts.evidences)

let test_mpigraph_catches_ofed () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0 Testbed.Faults.Ofed_flaky
       (Testbed.Faults.Cluster "parapide"));
  let outcome = run_script env (config_exn Framework.Testdef.Mpigraph ~id:"mpigraph:parapide") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure)

let test_console_catches_broken_console () =
  let env = mk () in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Service_outage
       (Testbed.Faults.Site_service ("nancy", Testbed.Services.Console)));
  let outcome = run_script env (config_exn Framework.Testdef.Console ~id:"console:grisou") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure)

let test_cmdline_catches_frontend_outage () =
  let env = mk () in
  Testbed.Services.set_state env.Framework.Env.instance.Testbed.Instance.services
    ~site:"lyon" Testbed.Services.Frontend Testbed.Services.Down;
  let outcome = run_script env (config_exn Framework.Testdef.Cmdline ~id:"cmdline:lyon") in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure)

let test_kwapi_catches_misattribution () =
  let env = mk () in
  (* Discover which host the script actually probes, then swap that
     host's wattmeter channel with a node of very different wattage. *)
  let probed = ref None in
  Ci.Server.on_build_complete env.Framework.Env.ci (fun _ -> ());
  let first = run_script env (config_exn Framework.Testdef.Kwapi ~id:"kwapi:lyon") in
  checkb "healthy run passes" true (first.Framework.Scripts.result = Ci.Build.Success);
  (* The reservation log names the host. *)
  ignore probed;
  let jobs = Oar.Manager.jobs env.Framework.Env.oar in
  let chosen =
    match List.rev jobs with
    | last :: _ -> List.hd last.Oar.Job.assigned
    | [] -> Alcotest.fail "no reservation recorded"
  in
  let partner =
    if String.equal chosen "sagittaire-1.lyon" then "nova-1.lyon" else "sagittaire-1.lyon"
  in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:(Framework.Env.now env)
       Testbed.Faults.Kwapi_misattribution
       (Testbed.Faults.Host_pair (chosen, partner)));
  let outcomes =
    List.init 4 (fun _ -> run_script env (config_exn Framework.Testdef.Kwapi ~id:"kwapi:lyon"))
  in
  checkb "misattribution eventually caught" true
    (List.exists (fun o -> o.Framework.Scripts.result = Ci.Build.Failure) outcomes)

let test_environments_catches_corrupt_image () =
  let env = mk () in
  let img = Kadeploy.Image.std_env in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Env_image_corrupt
       (Testbed.Faults.Global (Printf.sprintf "env_corrupt:%d" img.Kadeploy.Image.index)));
  let outcome =
    run_script env
      (config_exn Framework.Testdef.Environments
         ~id:(Printf.sprintf "environments:%s:grisou" img.Kadeploy.Image.name))
  in
  checkb "failure" true (outcome.Framework.Scripts.result = Ci.Build.Failure);
  checkb "software category" true
    (List.exists
       (fun (e : Framework.Bugtracker.evidence) -> String.equal e.Framework.Bugtracker.category "software")
       outcome.Framework.Scripts.evidences)

let test_script_unstable_when_resources_taken () =
  let env = mk () in
  (* Occupy all of graphite, then run the whole-cluster disk test. *)
  (match
     Oar.Manager.submit env.Framework.Env.oar
       (Oar.Request.nodes ~filter:"cluster='graphite'" `All ~walltime:86400.0)
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "setup reservation failed");
  let outcome = run_script env (config_exn Framework.Testdef.Disk ~id:"disk:graphite") in
  checkb "unstable, as the paper specifies" true
    (outcome.Framework.Scripts.result = Ci.Build.Unstable)

(* ---- Bug tracker ------------------------------------------------------------------ *)

let ev ?(signature = "sig") ?(category = "disk") () =
  {
    Framework.Bugtracker.signature;
    summary = "a bug";
    category;
    source_test = "disk:graphite";
    fault_ids = [ 1 ];
  }

let test_bugtracker_dedup () =
  let tr = Framework.Bugtracker.create () in
  (match Framework.Bugtracker.file tr ~now:0.0 (ev ()) with
   | `New bug -> checki "id 1" 1 bug.Framework.Bugtracker.id
   | `Duplicate _ -> Alcotest.fail "first filing is new");
  (match Framework.Bugtracker.file tr ~now:1.0 (ev ()) with
   | `Duplicate bug -> checki "occurrences" 2 bug.Framework.Bugtracker.occurrences
   | `New _ -> Alcotest.fail "same signature must dedup");
  checki "one bug filed" 1 (fst (Framework.Bugtracker.counts tr))

let test_bugtracker_fix_and_regression () =
  let tr = Framework.Bugtracker.create () in
  let bug =
    match Framework.Bugtracker.file tr ~now:0.0 (ev ()) with
    | `New bug -> bug
    | `Duplicate _ -> Alcotest.fail "new expected"
  in
  Framework.Bugtracker.mark_fixed tr ~now:5.0 bug;
  checki "fixed count" 1 (snd (Framework.Bugtracker.counts tr));
  (* The problem comes back: the bug reopens. *)
  ignore (Framework.Bugtracker.file tr ~now:10.0 (ev ()));
  checkb "reopened" true (bug.Framework.Bugtracker.status = Framework.Bugtracker.Open);
  checki "fixed count back to zero" 0 (snd (Framework.Bugtracker.counts tr))

let test_bugtracker_categories () =
  let tr = Framework.Bugtracker.create () in
  ignore (Framework.Bugtracker.file tr ~now:0.0 (ev ~signature:"a" ~category:"disk" ()));
  ignore (Framework.Bugtracker.file tr ~now:0.0 (ev ~signature:"b" ~category:"disk" ()));
  ignore (Framework.Bugtracker.file tr ~now:0.0 (ev ~signature:"c" ~category:"cabling" ()));
  match Framework.Bugtracker.by_category tr with
  | (top_cat, top_n, _) :: _ ->
    checks "disk leads" "disk" top_cat;
    checki "two disk bugs" 2 top_n
  | [] -> Alcotest.fail "no categories"

let test_bugtracker_merges_fault_ids () =
  let tr = Framework.Bugtracker.create () in
  let bug =
    match Framework.Bugtracker.file tr ~now:0.0 (ev ()) with
    | `New bug -> bug
    | `Duplicate _ -> Alcotest.fail "new"
  in
  ignore
    (Framework.Bugtracker.file tr ~now:1.0
       { (ev ()) with Framework.Bugtracker.fault_ids = [ 7; 1 ] });
  Alcotest.(check (list int)) "merged ids" [ 1; 7 ] bug.Framework.Bugtracker.fault_ids

(* ---- External scheduler -------------------------------------------------------------- *)

let test_scheduler_enable_staggers () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  Framework.Scheduler.enable_family s Framework.Testdef.Refapi;
  checki "one family" 1 (List.length (Framework.Scheduler.enabled_families s));
  checki "nothing due immediately (staggered)" 0 (Framework.Scheduler.due_count s 0.0);
  checki "all due after one period" 32
    (Framework.Scheduler.due_count s (Framework.Testdef.base_period Framework.Testdef.Refapi))

let test_scheduler_runs_api_tests () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  Framework.Scheduler.enable_family s Framework.Testdef.Refapi;
  Framework.Scheduler.start s;
  Framework.Env.run_until env (2.0 *. Simkit.Calendar.day);
  let stats = Framework.Scheduler.stats s in
  checkb "polled" true (stats.Framework.Scheduler.polls > 100);
  checkb "triggered refapi builds" true (stats.Framework.Scheduler.triggered >= 32);
  checkb "successes recorded" true (stats.Framework.Scheduler.completed_success >= 32)

let test_scheduler_avoids_peak_hours () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create env in
  (* Disk is node-consuming: during peak hours nothing should trigger. *)
  Framework.Scheduler.enable_family s Framework.Testdef.Disk;
  Framework.Scheduler.start s;
  (* Run through Monday 18:00: triggers before 08:00 are fine, but none
     may land inside the 08:00-19:00 user window. *)
  Framework.Env.run_until env (18.0 *. 3600.0);
  let stats = Framework.Scheduler.stats s in
  checkb "peak skips recorded" true (stats.Framework.Scheduler.skipped_peak > 0);
  List.iter
    (fun b ->
      checkb "no disk build queued during user hours" false
        (Simkit.Calendar.is_peak_hours b.Ci.Build.queued_at))
    (Ci.Server.builds env.Framework.Env.ci "test_disk")

let test_scheduler_naive_triggers_anyway () =
  let env = mk () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let s = Framework.Scheduler.create ~policy:Framework.Scheduler.naive_policy env in
  Framework.Scheduler.enable_family s Framework.Testdef.Disk;
  Framework.Scheduler.start s;
  Framework.Env.run_until env (18.0 *. 3600.0);
  let stats = Framework.Scheduler.stats s in
  checkb "naive policy ignores peak hours" true (stats.Framework.Scheduler.triggered > 0)

(* ---- Status page ----------------------------------------------------------------------- *)

let test_statuspage_views () =
  let env = mk () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  (* Run one refapi build through the CI so the page sees it. *)
  (match
     Ci.Server.trigger_subset env.Framework.Env.ci "test_refapi"
       ~axes:[ [ ("cluster", "graphene") ] ]
   with
   | Ci.Server.Queued _ -> ()
   | _ -> Alcotest.fail "trigger failed");
  Framework.Env.run_until env 7200.0;
  checkb "latest cell green" true
    (Framework.Statuspage.latest page ~family:Framework.Testdef.Refapi ~scope:"graphene"
     = Framework.Statuspage.Ok_);
  checkb "site rollup green" true
    (Framework.Statuspage.site_status page ~family:Framework.Testdef.Refapi ~site:"nancy"
     = Framework.Statuspage.Ok_);
  checkb "unknown scope missing" true
    (Framework.Statuspage.latest page ~family:Framework.Testdef.Disk ~scope:"graphene"
     = Framework.Statuspage.Missing);
  let overview = Framework.Statuspage.render_overview page in
  let contains haystack needle =
    let n = String.length needle and m = String.length haystack in
    let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  in
  checkb "overview mentions refapi" true (contains overview "refapi")

let test_statuspage_monthly_series () =
  let env = mk () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_oarstate"
       ~axes:[ [ ("site", "lyon") ] ]);
  Framework.Env.run_until env 7200.0;
  match Framework.Statuspage.monthly_success page with
  | [ (0, completed, successful, ratio) ] ->
    checki "one build" 1 completed;
    checki "successful" 1 successful;
    Alcotest.(check (float 1e-9)) "ratio" 1.0 ratio
  | _ -> Alcotest.fail "expected month-0 entry"

(* ---- Operator ---------------------------------------------------------------------------- *)

let test_operator_fixes_bugs_and_faults () =
  let env = mk () in
  let tracker = Framework.Bugtracker.create () in
  let faults = Framework.Env.faults env in
  let fault =
    Option.get
      (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Cpu_turbo
         (Testbed.Faults.Host "taurus-2.lyon"))
  in
  (match
     Framework.Bugtracker.file tracker ~now:0.0
       {
         Framework.Bugtracker.signature = "refapi:taurus-2.lyon:x";
         summary = "turbo drift";
         category = "cpu-settings";
         source_test = "refapi:taurus";
         fault_ids = [ fault.Testbed.Faults.id ];
       }
   with
   | `New _ -> ()
   | `Duplicate _ -> Alcotest.fail "new bug expected");
  let op = Framework.Operator.start env tracker in
  Framework.Env.run_until env (10.0 *. Simkit.Calendar.day);
  checkb "bug fixed" true (snd (Framework.Bugtracker.counts tracker) = 1);
  checkb "fault repaired" true (fault.Testbed.Faults.repaired_at <> None);
  checkb "fix counted" true (Framework.Operator.bugs_fixed op >= 1);
  Framework.Operator.stop op

let test_operator_maintenance_injects_drift () =
  let env = mk () in
  let tracker = Framework.Bugtracker.create () in
  let op =
    Framework.Operator.start
      ~config:
        { Framework.Operator.default_config with
          Framework.Operator.maintenance_period = Simkit.Calendar.day;
          maintenance_fault_rate = 3.0;
        }
      env tracker
  in
  Framework.Env.run_until env (15.0 *. Simkit.Calendar.day);
  checkb "maintenance windows happened" true (Framework.Operator.maintenance_windows op > 5);
  checkb "maintenance introduced faults" true
    (List.length (Testbed.Faults.history (Framework.Env.faults env)) > 0);
  Framework.Operator.stop op

let () =
  Alcotest.run "framework"
    [
      ( "catalog",
        [ Alcotest.test_case "751 configurations" `Quick test_catalog_is_751;
          Alcotest.test_case "family sizes" `Quick test_catalog_family_sizes;
          Alcotest.test_case "unique ids" `Quick test_catalog_ids_unique;
          Alcotest.test_case "axes roundtrip" `Quick test_axes_roundtrip;
          Alcotest.test_case "hardware-centric" `Quick
            test_hardware_centric_classification ] );
      ( "scripts-pass",
        [ Alcotest.test_case "healthy testbed all green" `Slow
            test_scripts_pass_on_healthy_testbed ] );
      ( "scripts-detect",
        [ Alcotest.test_case "refapi: cpu drift" `Quick test_refapi_catches_cpu_drift;
          Alcotest.test_case "refapi: cabling" `Quick test_refapi_catches_cabling;
          Alcotest.test_case "dellbios: bios drift" `Quick test_dellbios_catches_bios_drift;
          Alcotest.test_case "oarproperties: desync" `Quick
            test_oarproperties_catches_desync;
          Alcotest.test_case "disk: write cache" `Quick test_disk_catches_write_cache;
          Alcotest.test_case "mpigraph: ofed" `Quick test_mpigraph_catches_ofed;
          Alcotest.test_case "console: outage" `Quick test_console_catches_broken_console;
          Alcotest.test_case "cmdline: frontend" `Quick
            test_cmdline_catches_frontend_outage;
          Alcotest.test_case "kwapi: misattribution" `Slow
            test_kwapi_catches_misattribution;
          Alcotest.test_case "environments: corrupt image" `Quick
            test_environments_catches_corrupt_image;
          Alcotest.test_case "unstable when busy" `Quick
            test_script_unstable_when_resources_taken ] );
      ( "bugtracker",
        [ Alcotest.test_case "dedup" `Quick test_bugtracker_dedup;
          Alcotest.test_case "fix and regression" `Quick test_bugtracker_fix_and_regression;
          Alcotest.test_case "categories" `Quick test_bugtracker_categories;
          Alcotest.test_case "merges fault ids" `Quick test_bugtracker_merges_fault_ids ] );
      ( "scheduler",
        [ Alcotest.test_case "staggered enable" `Quick test_scheduler_enable_staggers;
          Alcotest.test_case "runs api tests" `Quick test_scheduler_runs_api_tests;
          Alcotest.test_case "avoids peak hours" `Quick test_scheduler_avoids_peak_hours;
          Alcotest.test_case "naive triggers anyway" `Quick
            test_scheduler_naive_triggers_anyway ] );
      ( "statuspage",
        [ Alcotest.test_case "views" `Quick test_statuspage_views;
          Alcotest.test_case "monthly series" `Quick test_statuspage_monthly_series ] );
      ( "operator",
        [ Alcotest.test_case "fixes bugs" `Quick test_operator_fixes_bugs_and_faults;
          Alcotest.test_case "maintenance drift" `Quick
            test_operator_maintenance_injects_drift ] );
    ]
