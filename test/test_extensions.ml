(* Tests for the extension features: per-node scheduling (the paper's
   open question), user-experiment regression tests (the paper's future
   work), and the CI weather report. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Per-node scheduling -------------------------------------------------- *)

let mk_env seed = Framework.Env.create ~seed ()

let test_pernode_idle_cluster_both_strategies_cover () =
  (* On an idle testbed both strategies reach full coverage quickly. *)
  List.iter
    (fun strategy ->
      let env = mk_env 3001L in
      let tracker = Framework.Pernode.create env ~strategy ~cluster:"graphite" in
      Framework.Pernode.start tracker ~period:600.0;
      Framework.Env.run_until env (2.0 *. Simkit.Calendar.day);
      checkb "covered" true (Framework.Pernode.time_to_coverage tracker <> None))
    [ Framework.Pernode.Whole_cluster; Framework.Pernode.Per_node ]

let test_pernode_progresses_under_partial_occupation () =
  (* Permanently occupy 2 of graphite's 4 nodes: whole-cluster can never
     run; per-node still covers the remaining free nodes. *)
  let env = mk_env 3002L in
  (match
     Oar.Manager.submit env.Framework.Env.oar
       (Oar.Request.nodes ~filter:"cluster='graphite'" (`N 2)
          ~walltime:(30.0 *. Simkit.Calendar.day))
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "setup reservation failed");
  let whole =
    Framework.Pernode.create env ~strategy:Framework.Pernode.Whole_cluster
      ~cluster:"graphite"
  in
  let per_node =
    Framework.Pernode.create env ~strategy:Framework.Pernode.Per_node ~cluster:"graphite"
  in
  Framework.Pernode.start whole ~period:600.0;
  Framework.Pernode.start per_node ~period:600.0;
  Framework.Env.run_until env (5.0 *. Simkit.Calendar.day);
  checkb "whole-cluster starves" true (Framework.Pernode.time_to_coverage whole = None);
  let sweep = Framework.Pernode.current_sweep per_node in
  checkb "per-node made progress anyway" true
    (List.length sweep.Framework.Pernode.covered >= 1
    || Framework.Pernode.time_to_coverage per_node <> None)

let test_pernode_finds_disk_anomaly () =
  let env = mk_env 3003L in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Disk_write_cache (Testbed.Faults.Host "graphite-2.nancy"));
  let tracker =
    Framework.Pernode.create env ~strategy:Framework.Pernode.Per_node ~cluster:"graphite"
  in
  Framework.Pernode.start tracker ~period:600.0;
  Framework.Env.run_until env (2.0 *. Simkit.Calendar.day);
  checkb "anomaly reported" true
    (List.exists
       (fun (e : Framework.Bugtracker.evidence) ->
         e.Framework.Bugtracker.signature = "disk:graphite-2.nancy")
       (Framework.Pernode.evidences tracker))

let test_pernode_no_duplicate_coverage () =
  let env = mk_env 3004L in
  let tracker =
    Framework.Pernode.create env ~strategy:Framework.Pernode.Per_node ~cluster:"nyx"
  in
  Framework.Pernode.start tracker ~period:600.0;
  Framework.Env.run_until env (2.0 *. Simkit.Calendar.day);
  List.iter
    (fun sweep ->
      let covered = sweep.Framework.Pernode.covered in
      checki "each host covered once per sweep"
        (List.length covered)
        (List.length (List.sort_uniq compare covered)))
    (Framework.Pernode.completed_sweeps tracker)

(* ---- Regression experiments -------------------------------------------------- *)

let run_regression env experiment =
  let build =
    {
      Ci.Build.job_name = "regression_" ^ Framework.Regression.name experiment;
      number = 1;
      axes = [];
      cause = "test";
      retry_of = None;
      queued_at = Framework.Env.now env;
      started_at = Some (Framework.Env.now env);
      finished_at = None;
      result = None;
      log = [];
      artifacts = [];
      touched_hosts = [];
    }
  in
  let outcome = ref None in
  Framework.Regression.run env experiment ~build ~finish:(fun o -> outcome := Some o);
  Framework.Env.run_until env (Framework.Env.now env +. (6.0 *. Simkit.Calendar.hour));
  match !outcome with Some o -> o | None -> Alcotest.fail "experiment never finished"

let test_regression_all_pass_when_healthy () =
  let env = mk_env 3010L in
  List.iter
    (fun experiment ->
      let outcome = run_regression env experiment in
      checkb
        (Framework.Regression.name experiment ^ " passes")
        true
        (outcome.Framework.Scripts.result = Ci.Build.Success))
    Framework.Regression.all

let test_regression_mpi_catches_ofed () =
  let env = mk_env 3011L in
  (* Break every IB cluster so whichever the reservation picks is flaky. *)
  List.iter
    (fun spec ->
      if spec.Testbed.Inventory.has_ib then
        ignore
          (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
             Testbed.Faults.Ofed_flaky
             (Testbed.Faults.Cluster spec.Testbed.Inventory.cluster)))
    Testbed.Inventory.clusters;
  (* The OFED failure is probabilistic (35% per node): try a few times. *)
  let caught = ref false in
  for _ = 1 to 6 do
    if not !caught then begin
      let outcome = run_regression env Framework.Regression.Mpi_pingpong in
      if outcome.Framework.Scripts.result = Ci.Build.Failure then caught := true
    end
  done;
  checkb "ofed caught by the user experiment" true !caught

let test_regression_linktest_catches_cabling () =
  let env = mk_env 3012L in
  (* Miswire many nancy nodes so the reserved ones are affected. *)
  let nodes = Testbed.Instance.nodes_of_cluster env.Framework.Env.instance "grisou" in
  let rec swap_pairs = function
    | a :: b :: rest ->
      ignore
        (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
           Testbed.Faults.Cabling_swap
           (Testbed.Faults.Host_pair (a.Testbed.Node.host, b.Testbed.Node.host)));
      swap_pairs rest
    | _ -> ()
  in
  swap_pairs nodes;
  (* Also miswire every other nancy cluster to be safe. *)
  List.iter
    (fun cluster ->
      match Testbed.Instance.nodes_of_cluster env.Framework.Env.instance cluster with
      | a :: b :: _ ->
        ignore
          (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
             Testbed.Faults.Cabling_swap
             (Testbed.Faults.Host_pair (a.Testbed.Node.host, b.Testbed.Node.host)))
      | _ -> ())
    [ "graphene"; "griffon"; "graphite"; "grimoire"; "graoully"; "grele"; "grimani" ];
  let outcome = run_regression env Framework.Regression.Linktest in
  checkb "cabling caught by linktest" true
    (outcome.Framework.Scripts.result = Ci.Build.Failure)

let test_regression_jobs_defined () =
  let env = mk_env 3013L in
  Framework.Regression.define_jobs env ~on_evidence:(fun _ -> ());
  List.iter
    (fun experiment ->
      checkb "job exists" true
        (Ci.Server.find_job env.Framework.Env.ci
           ("regression_" ^ Framework.Regression.name experiment)
         <> None))
    Framework.Regression.all

(* ---- Weather report ------------------------------------------------------------ *)

let test_weather_scores () =
  let engine = Simkit.Engine.create () in
  let ci = Ci.Server.create engine in
  let flaky = ref 0 in
  Ci.Server.define ci
    (Ci.Jobdef.freestyle ~name:"flaky" (fun ~engine ~build:_ ~finish ->
         incr flaky;
         let result = if !flaky mod 5 = 0 then Ci.Build.Failure else Ci.Build.Success in
         ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish result))));
  Ci.Server.define ci
    (Ci.Jobdef.freestyle ~name:"broken" (fun ~engine ~build:_ ~finish ->
         ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish Ci.Build.Failure))));
  for _ = 1 to 10 do
    ignore (Ci.Server.trigger ci "flaky");
    ignore (Ci.Server.trigger ci "broken");
    Simkit.Engine.run engine
  done;
  (match Ci.Weather.score ci "flaky" with
   | Some s -> checkb "flaky mostly sunny" true (s >= 0.6)
   | None -> Alcotest.fail "no score");
  (match Ci.Weather.score ci "broken" with
   | Some s ->
     Alcotest.(check (float 1e-9)) "broken storms" 0.0 s;
     Alcotest.(check string) "storm icon" "storm" (Ci.Weather.icon s)
   | None -> Alcotest.fail "no score");
  checkb "unbuilt job unscored" true (Ci.Weather.score ci "nosuch" = None);
  checki "report covers all jobs" 2 (List.length (Ci.Weather.report ci));
  checkb "render non-empty" true (String.length (Ci.Weather.render ci) > 0)

let test_weather_icon_bands () =
  Alcotest.(check string) "sunny" "sunny" (Ci.Weather.icon 1.0);
  Alcotest.(check string) "partly" "partly-cloudy" (Ci.Weather.icon 0.7);
  Alcotest.(check string) "cloudy" "cloudy" (Ci.Weather.icon 0.5);
  Alcotest.(check string) "rain" "rain" (Ci.Weather.icon 0.3);
  Alcotest.(check string) "storm" "storm" (Ci.Weather.icon 0.0)

let () =
  Alcotest.run "extensions"
    [
      ( "pernode",
        [ Alcotest.test_case "idle cluster coverage" `Quick
            test_pernode_idle_cluster_both_strategies_cover;
          Alcotest.test_case "partial occupation" `Quick
            test_pernode_progresses_under_partial_occupation;
          Alcotest.test_case "finds disk anomaly" `Quick test_pernode_finds_disk_anomaly;
          Alcotest.test_case "no duplicate coverage" `Quick
            test_pernode_no_duplicate_coverage ] );
      ( "regression",
        [ Alcotest.test_case "all pass when healthy" `Quick
            test_regression_all_pass_when_healthy;
          Alcotest.test_case "mpi catches ofed" `Quick test_regression_mpi_catches_ofed;
          Alcotest.test_case "linktest catches cabling" `Quick
            test_regression_linktest_catches_cabling;
          Alcotest.test_case "jobs defined" `Quick test_regression_jobs_defined ] );
      ( "weather",
        [ Alcotest.test_case "scores" `Quick test_weather_scores;
          Alcotest.test_case "icon bands" `Quick test_weather_icon_bands ] );
    ]
