(* Tests for the user-facing renderers: HTML status page, oarstat and
   oarnodes output. *)

let checkb = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* ---- webstatus ---------------------------------------------------------------- *)

let test_html_escape () =
  Alcotest.(check string) "escapes" "a&lt;b&gt;&amp;&quot;c"
    (Framework.Webstatus.html_escape "a<b>&\"c")

let test_cell_classes () =
  Alcotest.(check string) "ok" "ok" (Framework.Webstatus.cell_class Framework.Statuspage.Ok_);
  Alcotest.(check string) "ko" "ko" (Framework.Webstatus.cell_class Framework.Statuspage.Ko);
  Alcotest.(check string) "unstable" "unstable"
    (Framework.Webstatus.cell_class Framework.Statuspage.Unst);
  Alcotest.(check string) "missing" "missing"
    (Framework.Webstatus.cell_class Framework.Statuspage.Missing)

(* Whatever the input, the escaped output carries no unescaped markup
   character: every '<', '>' and '"' is gone, and every remaining '&'
   starts one of the four entities the escaper emits. *)
let prop_html_escape_no_unescaped_markup =
  QCheck.Test.make ~count:500 ~name:"html_escape leaves no unescaped markup"
    QCheck.string
    (fun s ->
      let escaped = Framework.Webstatus.html_escape s in
      let n = String.length escaped in
      let entity_at i =
        List.exists
          (fun entity ->
            let k = String.length entity in
            i + k <= n && String.sub escaped i k = entity)
          [ "&lt;"; "&gt;"; "&amp;"; "&quot;" ]
      in
      let ok = ref true in
      String.iteri
        (fun i c ->
          match c with
          | '<' | '>' | '"' -> ok := false
          | '&' -> if not (entity_at i) then ok := false
          | _ -> ())
        escaped;
      !ok)

let test_html_document_structure () =
  let env = Framework.Env.create ~seed:8001L () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cpu_cstates (Testbed.Faults.Host "grisou-1.nancy"));
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_refapi"
       ~axes:[ [ ("cluster", "grisou") ] ]);
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_refapi"
       ~axes:[ [ ("cluster", "nyx") ] ]);
  Framework.Env.run_until env (4.0 *. Simkit.Calendar.hour);
  let html = Framework.Webstatus.render page in
  checkb "doctype" true (contains html "<!DOCTYPE html>");
  checkb "closes" true (contains html "</html>");
  checkb "red cell for the drifted cluster" true (contains html "class=\"ko\"");
  checkb "green cell for the healthy one" true (contains html "class=\"ok\"");
  checkb "all sites in the header" true
    (List.for_all (fun site -> contains html ("<th>" ^ site ^ "</th>"))
       Testbed.Inventory.sites);
  checkb "confidence section" true (contains html "Cluster confidence");
  checkb "history section" true (contains html "History")

(* ---- oarstat / oarnodes --------------------------------------------------------- *)

let test_oarstat_lists_jobs () =
  let instance = Testbed.Instance.build ~seed:8002L () in
  let oar = Oar.Manager.create instance in
  (match
     Oar.Manager.submit oar ~user:"alice" ~duration:3600.0
       (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 2) ~walltime:3600.0)
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "submit failed");
  let out = Oar.Oarstat.oarstat oar in
  checkb "user shown" true (contains out "alice");
  checkb "running state shown" true (contains out "Running")

let test_oarstat_job_details () =
  let instance = Testbed.Instance.build ~seed:8003L () in
  let oar = Oar.Manager.create instance in
  let job =
    match
      Oar.Manager.submit oar ~user:"bob" ~jtype:Oar.Job.Deploy ~duration:600.0
        (Oar.Request.nodes ~filter:"cluster='graphite'" (`N 1) ~walltime:3600.0)
    with
    | Ok job -> job
    | Error _ -> Alcotest.fail "submit failed"
  in
  (match Oar.Oarstat.oarstat_job oar job.Oar.Job.id with
   | Some details ->
     checkb "owner" true (contains details "bob");
     checkb "type" true (contains details "deploy");
     checkb "assigned host" true (contains details "graphite-");
     checkb "request echoed" true (contains details "cluster='graphite'")
   | None -> Alcotest.fail "job details missing");
  checkb "unknown id" true (Oar.Oarstat.oarstat_job oar 9999 = None)

let test_oarnodes_table () =
  let instance = Testbed.Instance.build ~seed:8004L () in
  let oar = Oar.Manager.create instance in
  (Testbed.Instance.node instance "graphite-2.nancy").Testbed.Node.state <-
    Testbed.Node.Down;
  let out = Oar.Oarstat.oarnodes oar ~cluster:"graphite" in
  checkb "all four nodes" true
    (List.for_all (fun i -> contains out (Printf.sprintf "graphite-%d.nancy" i))
       [ 1; 2; 3; 4 ]);
  checkb "down state visible" true (contains out "down");
  checkb "cores column populated" true (contains out "16")

let () =
  Alcotest.run "render"
    [
      ( "webstatus",
        [ Alcotest.test_case "escape" `Quick test_html_escape;
          Qc.to_alcotest prop_html_escape_no_unescaped_markup;
          Alcotest.test_case "cell classes" `Quick test_cell_classes;
          Alcotest.test_case "document structure" `Quick test_html_document_structure ] );
      ( "oarstat",
        [ Alcotest.test_case "job table" `Quick test_oarstat_lists_jobs;
          Alcotest.test_case "job details" `Quick test_oarstat_job_details;
          Alcotest.test_case "oarnodes" `Quick test_oarnodes_table ] );
    ]
