(* g5ktest: command-line front-end to the testbed testing framework.

   Subcommands:
     inventory  - print the simulated testbed inventory
     coverage   - print the test catalog (751 configurations)
     campaign   - run a closed-loop campaign and print the report
     lint       - statically check catalog + example configurations
     hunt       - inject one fault per class and report detections
     bugs       - triage pipeline demo: clustered bug index from one fault per class
     status     - run a short campaign and print the status page
     serve      - run a campaign with the status-page serving layer enabled
     federation - run a sharded federation of testbeds (deterministic parallel DES) *)

open Cmdliner

let seed_arg =
  let doc = "Master PRNG seed; every run is deterministic for a given seed." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

(* ---- inventory ----------------------------------------------------------- *)

let inventory_cmd =
  let run () =
    print_string
      (Simkit.Table.render
         ~header:[ "cluster"; "site"; "vendor"; "nodes"; "cores/node"; "year"; "ib"; "gpu" ]
         (List.map
            (fun c ->
              [ c.Testbed.Inventory.cluster; c.Testbed.Inventory.site;
                Testbed.Hardware.vendor_to_string c.Testbed.Inventory.vendor;
                string_of_int c.Testbed.Inventory.nodes;
                string_of_int (c.Testbed.Inventory.cpus * c.Testbed.Inventory.cores_per_cpu);
                string_of_int c.Testbed.Inventory.year;
                (if c.Testbed.Inventory.has_ib then "yes" else "-");
                (if c.Testbed.Inventory.has_gpu then "yes" else "-") ])
            Testbed.Inventory.clusters));
    Printf.printf "total: %d sites, %d clusters, %d nodes, %d cores\n"
      (List.length Testbed.Inventory.sites)
      (List.length Testbed.Inventory.clusters)
      Testbed.Inventory.total_nodes Testbed.Inventory.total_cores
  in
  Cmd.v
    (Cmd.info "inventory" ~doc:"Print the simulated Grid'5000-2017 inventory")
    Term.(const run $ const ())

(* ---- coverage ------------------------------------------------------------- *)

let coverage_cmd =
  let run () =
    let rows =
      List.map
        (fun family ->
          let configs = Framework.Testdef.expand family in
          [ Framework.Testdef.family_to_string family;
            Framework.Testdef.category family;
            (match Framework.Testdef.need family with
             | Framework.Testdef.No_nodes -> "api only"
             | Framework.Testdef.One_node -> "1 node"
             | Framework.Testdef.Two_nodes -> "2 nodes"
             | Framework.Testdef.Site_spread -> "1 node/cluster of site"
             | Framework.Testdef.Whole_cluster -> "ALL nodes of cluster");
            string_of_int (List.length configs) ])
        Framework.Testdef.all_families
    in
    print_string
      (Simkit.Table.render ~header:[ "test"; "category"; "resources"; "configurations" ]
         rows);
    Printf.printf "total configurations: %d (paper: 751)\n"
      (Framework.Jobs.total_configurations ())
  in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Print the test catalog and its 751 configurations")
    Term.(const run $ const ())

(* ---- campaign -------------------------------------------------------------- *)

let months_arg =
  Arg.(value & opt int 6 & info [ "months" ] ~docv:"N" ~doc:"Campaign length in 30-day months.")

let no_testing_arg =
  Arg.(value & flag & info [ "no-testing" ] ~doc:"Ablation: run without the testing framework.")

let naive_arg =
  Arg.(value & flag & info [ "naive" ] ~doc:"Use the naive (time-based) scheduling policy.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable JSON report.")

let campaign_cmd =
  let run months seed no_testing naive json =
    let cfg =
      { Framework.Campaign.default_config with
        Framework.Campaign.months;
        seed;
        enable_testing = not no_testing;
        policy =
          (if naive then Framework.Scheduler.naive_policy
           else Framework.Scheduler.smart_policy);
      }
    in
    let report = Framework.Campaign.run cfg in
    if json then print_endline (Framework.Report.to_string report)
    else begin
    Format.printf "%a" Framework.Campaign.pp_report report;
    Format.printf "@.bugs by category:@.";
    List.iter
      (fun (category, filed, fixed) ->
        Format.printf "  %-15s filed %3d, fixed %3d@." category filed fixed)
      report.Framework.Campaign.bugs_by_category;
    match report.Framework.Campaign.scheduler_stats with
    | Some s ->
      Format.printf
        "@.scheduler: %d polls, %d triggered; skipped %d (peak) %d (site busy) %d (no resources)@."
        s.Framework.Scheduler.polls s.Framework.Scheduler.triggered
        s.Framework.Scheduler.skipped_peak s.Framework.Scheduler.skipped_site_busy
        s.Framework.Scheduler.skipped_no_resources
    | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run the closed-loop testing campaign")
    Term.(const run $ months_arg $ seed_arg $ no_testing_arg $ naive_arg $ json_arg)

(* ---- lint ------------------------------------------------------------------ *)

let lint_cmd =
  (* GitHub workflow-command annotations (--github).  The linted objects
     are OCaml values, not files, so the file/line mapping is best
     effort: catalog diagnostics point at the family's definition in
     testdef.ml, preset diagnostics at the preset table in lint.ml. *)
  let github_escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '%' -> Buffer.add_string buf "%25"
        | '\r' -> Buffer.add_string buf "%0D"
        | '\n' -> Buffer.add_string buf "%0A"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  in
  let find_line file needle =
    let contains line =
      let nl = String.length needle and ll = String.length line in
      nl > 0
      && nl <= ll
      && (let found = ref false in
          for i = 0 to ll - nl do
            if (not !found) && String.sub line i nl = needle then found := true
          done;
          !found)
    in
    try
      let ic = open_in file in
      let rec go n =
        match input_line ic with
        | line ->
          if contains line then (
            close_in ic;
            Some n)
          else go (n + 1)
        | exception End_of_file ->
          close_in ic;
          None
      in
      go 1
    with Sys_error _ -> None
  in
  let locate ~source d =
    let quoted s = Printf.sprintf "%S" s in
    match source with
    | `Catalog ->
      let family =
        match String.index_opt d.Framework.Lint.path ':' with
        | Some i -> String.sub d.Framework.Lint.path 0 i
        | None -> d.Framework.Lint.path
      in
      let file = "lib/core/testdef.ml" in
      Option.map (fun line -> (file, line)) (find_line file (quoted family))
    | `Preset name ->
      let file = "lib/core/lint.ml" in
      Option.map (fun line -> (file, line)) (find_line file (quoted name))
  in
  let annotate ~source d =
    let kind =
      match d.Framework.Lint.severity with
      | Framework.Lint.Error -> "error"
      | Framework.Lint.Warning -> "warning"
      | Framework.Lint.Info -> "notice"
    in
    let where =
      match locate ~source d with
      | Some (file, line) -> Printf.sprintf "file=%s,line=%d," file line
      | None -> ""
    in
    Printf.printf "::%s %stitle=%s::%s\n" kind where d.Framework.Lint.code
      (github_escape
         (Printf.sprintf "%s: %s" d.Framework.Lint.path
            d.Framework.Lint.message))
  in
  let run json explain github =
    let catalog = Framework.Lint.sort (Framework.Lint.check_catalog ()) in
    let per_preset =
      List.map
        (fun (name, cfg) -> (name, Framework.Lint.run cfg))
        Framework.Lint.presets
      @ [ ( "federation",
            Framework.Lint.sort
              (Framework.Lint.check_federation ~path:"federation"
                 Framework.Federation.default_config) ) ]
    in
    let all = catalog @ List.concat_map snd per_preset in
    if json then
      print_endline
        (Simkit.Json.to_string ~indent:2
           (Simkit.Json.Obj
              [ ("catalog", Framework.Lint.to_json catalog);
                ( "presets",
                  Simkit.Json.Obj
                    (List.map
                       (fun (name, ds) -> (name, Framework.Lint.to_json ds))
                       per_preset) );
                ( "clean",
                  Simkit.Json.Bool (Framework.Lint.errors all = []) ) ]))
    else begin
      Printf.printf "== catalog (%d configurations) ==\n"
        (List.length (Framework.Testdef.catalog ()));
      print_string (Framework.Lint.render ~explain catalog);
      List.iter
        (fun (name, ds) ->
          Printf.printf "== preset %s ==\n" name;
          print_string (Framework.Lint.render ~explain ds))
        per_preset
    end;
    if github then begin
      List.iter (annotate ~source:`Catalog) catalog;
      List.iter
        (fun (name, ds) -> List.iter (annotate ~source:(`Preset name)) ds)
        per_preset
    end;
    if Framework.Lint.errors all <> [] then exit 1
  in
  let explain_arg =
    let doc =
      "Print the machine-applicable fix suggestion under each diagnostic \
       that carries one."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let github_arg =
    let doc =
      "Also emit GitHub Actions workflow-command annotations \
       (::error/::warning) so diagnostics surface inline on pull \
       requests; file/line attribution is best effort."
    in
    Arg.(value & flag & info [ "github" ] ~doc)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check the test catalog and example campaign \
          configurations; exit non-zero on any error-severity diagnostic")
    Term.(const run $ json_arg $ explain_arg $ github_arg)

(* ---- perfgate ---------------------------------------------------------------- *)

let perfgate_cmd =
  let run baseline current threshold serve_baseline serve_current
      federation_baseline federation_current lint_baseline lint_current =
    let read_file path =
      try
        let ic = open_in_bin path in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok text
      with Sys_error e -> Error e
    in
    let load parse role path =
      match Result.bind (read_file path) parse with
      | Ok metrics -> metrics
      | Error e ->
        Printf.eprintf "perfgate: cannot load %s %s: %s\n" role path e;
        exit 2
    in
    let engine_verdict =
      match current with
      | None -> None
      | Some current ->
        let baseline =
          load Framework.Perfgate.metrics_of_string "baseline" baseline
        in
        let current =
          load Framework.Perfgate.metrics_of_string "current" current
        in
        Some (Framework.Perfgate.check ~threshold_pct:threshold ~baseline ~current ())
    in
    let serve_verdict =
      match serve_current with
      | None -> None
      | Some current ->
        let baseline =
          load Framework.Perfgate.serve_metrics_of_string "serve baseline"
            serve_baseline
        in
        let current =
          load Framework.Perfgate.serve_metrics_of_string "serve current" current
        in
        Some
          (Framework.Perfgate.check_serve ~threshold_pct:threshold ~baseline
             ~current ())
    in
    let federation_verdict =
      match federation_current with
      | None -> None
      | Some current ->
        let baseline =
          load Framework.Perfgate.federation_metrics_of_string
            "federation baseline" federation_baseline
        in
        let current =
          load Framework.Perfgate.federation_metrics_of_string
            "federation current" current
        in
        Some
          (Framework.Perfgate.check_federation ~threshold_pct:threshold
             ~baseline ~current ())
    in
    let lint_verdict =
      match lint_current with
      | None -> None
      | Some current ->
        let baseline =
          load Framework.Perfgate.lint_metrics_of_string "lint baseline"
            lint_baseline
        in
        let current =
          load Framework.Perfgate.lint_metrics_of_string "lint current" current
        in
        Some
          (Framework.Perfgate.check_lint ~threshold_pct:threshold ~baseline
             ~current ())
    in
    (match (engine_verdict, serve_verdict, federation_verdict, lint_verdict) with
     | None, None, None, None ->
       Printf.eprintf
         "perfgate: nothing to compare (pass --current, --serve-current, \
          --federation-current and/or --lint-current)\n";
       exit 2
     | _ -> ());
    let verdicts =
      List.filter_map Fun.id
        [ engine_verdict; serve_verdict; federation_verdict; lint_verdict ]
    in
    List.iter
      (fun v -> List.iter print_endline v.Framework.Perfgate.lines)
      verdicts;
    if List.exists (fun v -> not v.Framework.Perfgate.ok) verdicts then exit 1
  in
  let baseline_arg =
    let doc = "Checked-in baseline BENCH_engine.json." in
    Arg.(value & opt string "BENCH_engine.json" & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let current_arg =
    let doc = "Freshly generated BENCH_engine.json to judge." in
    Arg.(value & opt (some string) None & info [ "current" ] ~docv:"FILE" ~doc)
  in
  let threshold_arg =
    let doc = "Allowed regression (p95 step latency / p99 staleness), in percent." in
    Arg.(value & opt float 20.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let serve_baseline_arg =
    let doc = "Checked-in baseline BENCH_serve.json." in
    Arg.(value & opt string "BENCH_serve.json"
         & info [ "serve-baseline" ] ~docv:"FILE" ~doc)
  in
  let serve_current_arg =
    let doc = "Freshly generated BENCH_serve.json to judge." in
    Arg.(value & opt (some string) None
         & info [ "serve-current" ] ~docv:"FILE" ~doc)
  in
  let federation_baseline_arg =
    let doc = "Checked-in baseline BENCH_federation.json." in
    Arg.(value & opt string "BENCH_federation.json"
         & info [ "federation-baseline" ] ~docv:"FILE" ~doc)
  in
  let federation_current_arg =
    let doc = "Freshly generated BENCH_federation.json to judge." in
    Arg.(value & opt (some string) None
         & info [ "federation-current" ] ~docv:"FILE" ~doc)
  in
  let lint_baseline_arg =
    let doc = "Checked-in baseline BENCH_lint.json." in
    Arg.(value & opt string "BENCH_lint.json"
         & info [ "lint-baseline" ] ~docv:"FILE" ~doc)
  in
  let lint_current_arg =
    let doc = "Freshly generated BENCH_lint.json to judge." in
    Arg.(value & opt (some string) None
         & info [ "lint-current" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "perfgate"
       ~doc:
         "Compare benchmark runs against the checked-in baselines; exit \
          non-zero when the engine's p95 step latency, the serve \
          scenario's p99 staleness, the federation scenario's sharding \
          speedup, or the catalog-wide lint wall time regresses beyond \
          the threshold (default 20%; the lint gate also has an \
          absolute floor) — or when federated runs stop being \
          byte-identical across shard counts")
    Term.(const run $ baseline_arg $ current_arg $ threshold_arg
          $ serve_baseline_arg $ serve_current_arg
          $ federation_baseline_arg $ federation_current_arg
          $ lint_baseline_arg $ lint_current_arg)

(* ---- hunt ------------------------------------------------------------------- *)

let hunt_cmd =
  let run seed days =
    let env = Framework.Env.create ~seed () in
    let faults = Framework.Env.faults env in
    let tracker = Framework.Bugtracker.create () in
    Framework.Jobs.define_all env ~on_evidence:(fun evidence ->
        ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));
    let injected =
      List.filter_map
        (fun kind -> Testbed.Faults.inject faults ~now:0.0 kind)
        Testbed.Faults.all_kinds
    in
    Oar.Manager.refresh_properties env.Framework.Env.oar;
    let scheduler = Framework.Scheduler.create env in
    List.iter (Framework.Scheduler.enable_family scheduler) Framework.Testdef.all_families;
    Framework.Scheduler.start scheduler;
    Framework.Env.run_until env (float_of_int days *. Simkit.Calendar.day);
    let detected = List.filter (fun f -> f.Testbed.Faults.detected_at <> None) injected in
    Printf.printf "injected %d faults; %d detected within %d day(s)\n"
      (List.length injected) (List.length detected) days;
    List.iter
      (fun (f : Testbed.Faults.fault) ->
        Printf.printf "  %-8s %-22s %s\n"
          (if f.Testbed.Faults.detected_at <> None then "CAUGHT" else "missed")
          (Testbed.Faults.kind_to_string f.Testbed.Faults.kind)
          f.Testbed.Faults.what)
      injected;
    print_newline ();
    print_string (Framework.Bugreport.render_index env tracker)
  in
  let days_arg =
    Arg.(value & opt int 7 & info [ "days" ] ~docv:"N" ~doc:"Hunting duration in days.")
  in
  Cmd.v
    (Cmd.info "hunt" ~doc:"Inject one fault per class and report what the tests catch")
    Term.(const run $ seed_arg $ days_arg)

(* ---- bugs -------------------------------------------------------------------- *)

let bugs_cmd =
  let run seed days json =
    let env = Framework.Env.create ~seed () in
    let faults = Framework.Env.faults env in
    let config = Framework.Triage.default_config in
    let tracker =
      Framework.Bugtracker.create ~limits:config.Framework.Triage.limits ()
    in
    let alerts = Monitoring.Alerts.create env.Framework.Env.collector in
    let triage = Framework.Triage.create ~config ~alerts env tracker in
    Framework.Jobs.define_all env
      ~on_outcome:(fun ~build outcome ->
        Framework.Triage.observe triage ~build
          ~result:outcome.Framework.Scripts.result
          outcome.Framework.Scripts.evidences)
      ~on_evidence:(fun _ -> ());
    let injected =
      List.filter_map
        (fun kind -> Testbed.Faults.inject faults ~now:0.0 kind)
        Testbed.Faults.all_kinds
    in
    Oar.Manager.refresh_properties env.Framework.Env.oar;
    let scheduler = Framework.Scheduler.create env in
    List.iter (Framework.Scheduler.enable_family scheduler)
      Framework.Testdef.all_families;
    Framework.Scheduler.start scheduler;
    Framework.Env.run_until env (float_of_int days *. Simkit.Calendar.day);
    let summary = Framework.Triage.summary triage in
    if json then
      print_endline
        (Simkit.Json.to_string ~indent:2
           (Framework.Triage.summary_to_json summary))
    else begin
      Printf.printf
        "injected %d faults; triage pipeline over %d day(s) of testing\n\n"
        (List.length injected) days;
      print_string (Framework.Triage.render summary);
      print_newline ();
      print_string (Framework.Bugreport.render_index env tracker)
    end
  in
  let days_arg =
    Arg.(value & opt int 7 & info [ "days" ] ~docv:"N" ~doc:"Triage duration in days.")
  in
  Cmd.v
    (Cmd.info "bugs"
       ~doc:
         "Run the failure-signature triage pipeline against one fault per \
          class and print the clustered bug index")
    Term.(const run $ seed_arg $ days_arg $ json_arg)

(* ---- status ------------------------------------------------------------------ *)

let status_cmd =
  let run seed html =
    let report =
      Framework.Campaign.run
        { Framework.Campaign.default_config with Framework.Campaign.months = 1; seed }
    in
    match html with
    | Some path ->
      let oc = open_out path in
      output_string oc report.Framework.Campaign.statuspage_html;
      close_out oc;
      Printf.printf "status page written to %s\n" path
    | None -> print_string report.Framework.Campaign.statuspage
  in
  let html_arg =
    Arg.(value & opt (some string) None
         & info [ "html" ] ~docv:"FILE" ~doc:"Write the page as HTML to $(docv).")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Run a one-month campaign and print the status page")
    Term.(const run $ seed_arg $ html_arg)

(* ---- serve ------------------------------------------------------------------- *)

let serve_cmd =
  let run seed months crash json =
    let cfg =
      { Framework.Campaign.default_config with
        Framework.Campaign.months;
        seed;
        serve = Some Framework.Serve.default_config;
        infra_faults =
          (if crash then
             [ (float_of_int months /. 2.0 *. 30.0 *. Simkit.Calendar.day,
                Testbed.Faults.Serve_crash) ]
           else []);
      }
    in
    let report = Framework.Campaign.run cfg in
    match report.Framework.Campaign.serve with
    | None -> prerr_endline "serve: campaign produced no serving summary"; exit 2
    | Some s ->
      if json then
        print_endline
          (Simkit.Json.to_string ~indent:2 (Framework.Serve.summary_to_json s))
      else begin
        print_string (Framework.Serve.render s);
        Printf.printf
          "\nconservation: %s (every read is fresh, not-modified, stale, \
           fallback or shed)\n"
          (if s.Framework.Serve.reads
              = s.Framework.Serve.fresh + s.Framework.Serve.not_modified
                + s.Framework.Serve.stale + s.Framework.Serve.fallback
                + s.Framework.Serve.shed
           then "OK" else "VIOLATED")
      end
  in
  let crash_arg =
    Arg.(value & flag
         & info [ "crash" ]
             ~doc:"Inject a Serve_crash mid-campaign to exercise the \
                   journal-replay recovery drill.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a campaign with the status-page serving layer enabled and \
          print the serving summary (snapshot cache, load shedding, \
          degraded reads, crash recovery)")
    Term.(const run $ seed_arg $ months_arg $ crash_arg $ json_arg)

(* ---- federation ---------------------------------------------------------------- *)

let federation_cmd =
  let run seed testbeds shards months lookahead_h driver json full =
    let driver =
      match driver with
      | "sequential" -> Framework.Federation.Sequential
      | "parallel" -> Framework.Federation.Parallel
      | "reference" -> Framework.Federation.Reference
      | "interleaved" -> Framework.Federation.Interleaved seed
      | other ->
        Printf.eprintf
          "federation: unknown driver %S (sequential|parallel|reference|interleaved)\n"
          other;
        exit 2
    in
    let cfg =
      { Framework.Federation.default_config with
        Framework.Federation.testbeds;
        shards;
        seed;
        lookahead = lookahead_h *. Simkit.Calendar.hour;
        base =
          { Framework.Federation.default_config.Framework.Federation.base with
            Framework.Campaign.months };
        driver;
      }
    in
    let diags = Framework.Lint.check_federation ~path:"federation" cfg in
    (match Framework.Lint.errors diags with
     | [] -> ()
     | _ ->
       prerr_string (Framework.Lint.render (Framework.Lint.sort diags));
       exit 1);
    let report = Framework.Federation.run cfg in
    if json then
      print_endline
        (Simkit.Json.to_string ~indent:2
           (Framework.Federation.report_to_json ~full report))
    else print_string (Framework.Federation.render report)
  in
  let testbeds_arg =
    Arg.(value & opt int 10
         & info [ "testbeds" ] ~docv:"N" ~doc:"Federation size (member testbeds).")
  in
  let shards_arg =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"K" ~doc:"Shard count; member i belongs to shard i mod K.")
  in
  let fed_months_arg =
    Arg.(value & opt int 2
         & info [ "months" ] ~docv:"N" ~doc:"Member campaign length in 30-day months.")
  in
  let lookahead_arg =
    Arg.(value & opt float 6.0
         & info [ "lookahead" ] ~docv:"HOURS"
             ~doc:"Synchronization window between barriers, in simulated hours.")
  in
  let driver_arg =
    Arg.(value & opt string "sequential"
         & info [ "driver" ] ~docv:"NAME"
             ~doc:"Execution driver: sequential, parallel (one domain per \
                   shard), reference (unsharded global event loop), or \
                   interleaved (shuffled shard service order).")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"With --json, embed every member's complete campaign \
                   report (the serialization the differential harness \
                   compares byte for byte).")
  in
  Cmd.v
    (Cmd.info "federation"
       ~doc:
         "Run a sharded federation of simulated testbeds to the campaign \
          horizon and print the aggregate report; results are \
          byte-identical for any shard count and driver")
    Term.(const run $ seed_arg $ testbeds_arg $ shards_arg $ fed_months_arg
          $ lookahead_arg $ driver_arg $ json_arg $ full_arg)

(* ---- pernode ------------------------------------------------------------------ *)

let pernode_cmd =
  let run seed cluster days =
    let instance = Testbed.Instance.build ~seed () in
    let oar = Oar.Manager.create instance in
    let env =
      { Framework.Env.instance; oar;
        registry =
          Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults);
        collector = Monitoring.Collector.create instance;
        ci = Ci.Server.create instance.Testbed.Instance.engine;
        trace = Simkit.Tracelog.create () }
    in
    let rng = Simkit.Prng.split (Simkit.Engine.rng instance.Testbed.Instance.engine) in
    ignore (Oar.Workload.start ~rng oar);
    let whole =
      Framework.Pernode.create env ~strategy:Framework.Pernode.Whole_cluster ~cluster
    in
    let per_node =
      Framework.Pernode.create env ~strategy:Framework.Pernode.Per_node ~cluster
    in
    Framework.Pernode.start whole ~period:600.0;
    Framework.Pernode.start per_node ~period:600.0;
    Simkit.Engine.run_until instance.Testbed.Instance.engine
      (float_of_int days *. Simkit.Calendar.day);
    let show name tracker =
      Printf.printf "%-14s first coverage: %s; sweeps completed: %d\n" name
        (match Framework.Pernode.time_to_coverage tracker with
         | Some d -> Printf.sprintf "%.2f days" (d /. Simkit.Calendar.day)
         | None -> "never")
        (List.length (Framework.Pernode.completed_sweeps tracker))
    in
    show "whole-cluster" whole;
    show "per-node" per_node
  in
  let cluster_arg =
    Arg.(value & opt string "genepi" & info [ "cluster" ] ~docv:"NAME" ~doc:"Target cluster.")
  in
  let days_arg =
    Arg.(value & opt int 14 & info [ "days" ] ~docv:"N" ~doc:"Observation window in days.")
  in
  Cmd.v
    (Cmd.info "pernode"
       ~doc:"Compare whole-cluster vs per-node scheduling of hardware tests")
    Term.(const run $ seed_arg $ cluster_arg $ days_arg)

(* ---- regression ----------------------------------------------------------------- *)

let regression_cmd =
  let run seed =
    let env = Framework.Env.create ~seed () in
    let tracker = Framework.Bugtracker.create () in
    Framework.Regression.define_jobs env ~on_evidence:(fun evidence ->
        ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));
    List.iter
      (fun experiment ->
        ignore
          (Ci.Server.trigger env.Framework.Env.ci
             ("regression_" ^ Framework.Regression.name experiment)))
      Framework.Regression.all;
    Framework.Env.run_until env (12.0 *. Simkit.Calendar.hour);
    List.iter
      (fun experiment ->
        let job = "regression_" ^ Framework.Regression.name experiment in
        Printf.printf "  %-28s %s\n" job
          (match Ci.Server.last_completed env.Framework.Env.ci job with
           | Some { Ci.Build.result = Some r; _ } -> Ci.Build.result_to_string r
           | _ -> "(did not run)"))
      Framework.Regression.all;
    print_string (Ci.Weather.render env.Framework.Env.ci)
  in
  Cmd.v
    (Cmd.info "regression" ~doc:"Run the user-experiment regression tests once")
    Term.(const run $ seed_arg)

let main =
  Cmd.group
    (Cmd.info "g5ktest" ~version:"1.0.0"
       ~doc:"Testbed testing framework on a simulated Grid'5000")
    [ inventory_cmd; coverage_cmd; campaign_cmd; lint_cmd; perfgate_cmd;
      hunt_cmd; bugs_cmd; status_cmd; serve_cmd; federation_cmd; pernode_cmd;
      regression_cmd ]

let () = exit (Cmd.eval main)
