(** g5k-checks: verify that each node conforms to its Reference API
    description.

    "Runs at node boot (or manually by users); acquires info using OHAI,
    ethtool, etc.; compares with Reference API."  A mismatch means either
    the node drifted (broken/replaced hardware, BIOS reset) or the
    description is wrong — both harm experiments, and both are exactly
    what this check reports. *)

type severity =
  | Perf_affecting
      (** CPU settings, disk cache/firmware: silently skews measurements *)
  | Capacity  (** RAM/core count wrong: jobs get fewer resources *)
  | Descriptive  (** inventory metadata (BIOS version, firmware strings) *)

type mismatch = {
  path : string;  (** JSON path, e.g. ["hardware/settings/c_states"] *)
  described : string;  (** value in the Reference API ("-" if absent) *)
  observed : string;  (** acquired value ("-" if absent) *)
  severity : severity;
}

type report = {
  host : string;
  checked_at : float;
  mismatches : mismatch list;  (** empty = node conforms *)
}

val severity_to_string : severity -> string

val conforms : report -> bool

val run : Testbed.Instance.t -> Testbed.Node.t -> report
(** Compare the node's acquired state against its published Reference API
    document.  A node with no published document reports a single
    mismatch on path ["(document)"] . *)

val run_cluster : Testbed.Instance.t -> string -> report list
(** Every Alive node of the cluster (boot-time sweep). *)

val worst_severity : report -> severity option
