type severity = Perf_affecting | Capacity | Descriptive

type mismatch = {
  path : string;
  described : string;
  observed : string;
  severity : severity;
}

type report = { host : string; checked_at : float; mismatches : mismatch list }

let severity_to_string = function
  | Perf_affecting -> "perf-affecting"
  | Capacity -> "capacity"
  | Descriptive -> "descriptive"

let conforms report = report.mismatches = []

let classify path =
  let contains sub =
    let n = String.length sub and m = String.length path in
    let rec scan i = i + n <= m && (String.sub path i n = sub || scan (i + 1)) in
    n = 0 || scan 0
  in
  if contains "settings" || contains "write_cache" || contains "read_cache"
     || contains "disks" && contains "firmware"
  then Perf_affecting
  else if contains "ram_gb" || contains "dimm_count" || contains "cores_per_cpu"
          || contains "cpu/count"
  then Capacity
  else Descriptive

let value_to_string = function
  | None -> "-"
  | Some v -> Simkit.Json.to_string v

let run instance node =
  let now = Testbed.Instance.now instance in
  let host = node.Testbed.Node.host in
  match Testbed.Refapi.get instance.Testbed.Instance.refapi host with
  | None ->
    {
      host;
      checked_at = now;
      mismatches =
        [ { path = "(document)"; described = "-"; observed = "present";
            severity = Descriptive } ];
    }
  | Some described_doc ->
    let observed_doc = Ohai.acquire node in
    let diffs = Simkit.Json.diff described_doc observed_doc in
    let mismatches =
      List.map
        (fun (path, described, observed) ->
          {
            path;
            described = value_to_string described;
            observed = value_to_string observed;
            severity = classify path;
          })
        diffs
    in
    { host; checked_at = now; mismatches }

let run_cluster instance cluster =
  Testbed.Instance.nodes_of_cluster instance cluster
  |> List.filter (fun n -> n.Testbed.Node.state = Testbed.Node.Alive)
  |> List.map (run instance)

let worst_severity report =
  let rank = function Perf_affecting -> 2 | Capacity -> 1 | Descriptive -> 0 in
  List.fold_left
    (fun acc m ->
      match acc with
      | None -> Some m.severity
      | Some s -> if rank m.severity > rank s then Some m.severity else acc)
    None report.mismatches
