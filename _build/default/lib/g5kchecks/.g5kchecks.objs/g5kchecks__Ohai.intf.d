lib/g5kchecks/ohai.mli: Simkit Testbed
