lib/g5kchecks/ohai.ml: Simkit Testbed
