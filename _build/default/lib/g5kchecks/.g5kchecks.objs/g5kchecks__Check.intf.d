lib/g5kchecks/check.mli: Testbed
