lib/g5kchecks/check.ml: List Ohai Simkit String Testbed
