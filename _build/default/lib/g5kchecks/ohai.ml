let acquire node =
  let open Simkit.Json in
  Obj
    [ ("uid", String node.Testbed.Node.host);
      ("cluster", String node.Testbed.Node.cluster_name);
      ("site", String node.Testbed.Node.site_name);
      ("index", Int node.Testbed.Node.index);
      ("hardware", Testbed.Hardware.to_json node.Testbed.Node.actual) ]

let acquire_key node path =
  let rec go json = function
    | [] -> Some json
    | key :: rest -> (
      match Simkit.Json.member key json with Some v -> go v rest | None -> None)
  in
  go (acquire node) path
