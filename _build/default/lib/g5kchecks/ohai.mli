(** Node-introspection substitute for OHAI / ethtool / dmidecode.

    Acquires the {e actual} state of a node in the same JSON schema as
    the Reference API documents, so the two sides can be diffed
    directly. *)

val acquire : Testbed.Node.t -> Simkit.Json.t
(** Full acquisition (identity + hardware as the node really is). *)

val acquire_key : Testbed.Node.t -> string list -> Simkit.Json.t option
(** Drill into the acquired document along object member names. *)
