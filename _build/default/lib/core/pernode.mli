(** Per-node scheduling of hardware-centric tests — the paper's open
    question made concrete.

    "Job scheduling: requiring the availability of all nodes of a cluster
    is not very realistic.  Move to per-node scheduling?"  On a busy
    testbed, all N nodes of a cluster are simultaneously free only during
    maintenance windows, so whole-cluster tests can wait for weeks.  This
    module implements the alternative: keep a per-cluster {e coverage
    ledger} and opportunistically test whichever nodes are free right
    now, completing a sweep once every node has been covered.

    The ablation bench (A1) compares time-to-full-coverage of the two
    strategies under the same user workload. *)

type strategy = Whole_cluster | Per_node

type sweep = {
  cluster : string;
  started_at : float;
  mutable covered : string list;  (** hosts measured in this sweep *)
  mutable completed_at : float option;
  mutable partial_runs : int;  (** reservations used (1 for whole-cluster) *)
}

type t

val create : ?walltime:float -> Env.t -> strategy:strategy -> cluster:string -> t
(** A coverage tracker for one cluster's disk checks.  [walltime]
    (default 1800 s) is the length of each measurement reservation;
    shorter walltimes slip into smaller schedule gaps. *)

val strategy : t -> strategy
val current_sweep : t -> sweep
val completed_sweeps : t -> sweep list

val poll : t -> unit
(** One scheduling opportunity.  [Whole_cluster]: reserve every node of
    the cluster (immediate-or-give-up), measure all, complete the sweep.
    [Per_node]: reserve whatever uncovered nodes are free now (if any),
    measure them, and complete the sweep when the ledger is full.
    Measurements take simulated time; a node already covered in the
    current sweep is never re-reserved. *)

val start : t -> period:float -> unit
(** Poll periodically on the environment's engine. *)

val time_to_coverage : t -> float option
(** Duration of the first completed sweep, if any. *)

val evidences : t -> Bugtracker.evidence list
(** Disk anomalies found across all sweeps (same checks as the disk test
    family). *)
