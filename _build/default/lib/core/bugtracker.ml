type evidence = {
  signature : string;
  summary : string;
  category : string;
  source_test : string;
  fault_ids : int list;
}

type status = Open | Fixed

type bug = {
  id : int;
  signature : string;
  summary : string;
  category : string;
  first_test : string;
  filed_at : float;
  mutable fault_ids : int list;
  mutable occurrences : int;
  mutable status : status;
  mutable fixed_at : float option;
}

type t = {
  by_signature : (string, bug) Hashtbl.t;
  mutable bugs : bug list;  (* newest first *)
  mutable next_id : int;
}

let create () = { by_signature = Hashtbl.create 256; bugs = []; next_id = 1 }

let file t ~now (evidence : evidence) =
  match Hashtbl.find_opt t.by_signature evidence.signature with
  | Some bug ->
    bug.occurrences <- bug.occurrences + 1;
    bug.fault_ids <-
      List.sort_uniq compare (evidence.fault_ids @ bug.fault_ids);
    if bug.status = Fixed then begin
      (* Regression: the problem came back. *)
      bug.status <- Open;
      bug.fixed_at <- None
    end;
    `Duplicate bug
  | None ->
    let bug =
      {
        id = t.next_id;
        signature = evidence.signature;
        summary = evidence.summary;
        category = evidence.category;
        first_test = evidence.source_test;
        filed_at = now;
        fault_ids = List.sort_uniq compare evidence.fault_ids;
        occurrences = 1;
        status = Open;
        fixed_at = None;
      }
    in
    t.next_id <- t.next_id + 1;
    Hashtbl.replace t.by_signature evidence.signature bug;
    t.bugs <- bug :: t.bugs;
    `New bug

let all t = List.rev t.bugs
let open_bugs t = List.filter (fun b -> b.status = Open) (all t)
let fixed_bugs t = List.filter (fun b -> b.status = Fixed) (all t)
let find t ~signature = Hashtbl.find_opt t.by_signature signature

let mark_fixed _t ~now bug =
  if bug.status = Open then begin
    bug.status <- Fixed;
    bug.fixed_at <- Some now
  end

let counts t =
  let filed = List.length t.bugs in
  let fixed = List.length (fixed_bugs t) in
  (filed, fixed)

let by_category t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun bug ->
      let filed, fixed = Option.value ~default:(0, 0) (Hashtbl.find_opt table bug.category) in
      Hashtbl.replace table bug.category
        (filed + 1, if bug.status = Fixed then fixed + 1 else fixed))
    t.bugs;
  Hashtbl.fold (fun category (filed, fixed) acc -> (category, filed, fixed) :: acc) table []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
