(** Test-script implementations, one per family.

    Scripts follow the paper's philosophy: Keep It Simple, Stupid —
    exhibit the issue {e and} give the operator enough context to fix it.
    Each script runs asynchronously in simulated time (reserving nodes
    through OAR, deploying through Kadeploy, probing through the
    monitoring stack) and finishes with a CI result plus structured
    {!Bugtracker.evidence} for every distinct problem observed.

    A script that cannot get its resources immediately finishes
    {!Ci.Build.Unstable} — the "testbed job cancelled, build marked as
    unstable" behaviour. *)

type outcome = {
  result : Ci.Build.result;
  evidences : Bugtracker.evidence list;
}

val run :
  Env.t ->
  Testdef.config ->
  build:Ci.Build.t ->
  finish:(outcome -> unit) ->
  unit
(** Execute the script for one configuration.  [finish] is called exactly
    once, after the script's simulated duration.  Ground-truth faults
    whose effect was observed are marked detected
    ({!Testbed.Faults.mark_detected}), which feeds the detection-rate
    experiment. *)

val success : outcome
(** [{ result = Success; evidences = [] }]. *)
