type t = {
  instance : Testbed.Instance.t;
  oar : Oar.Manager.t;
  registry : Kadeploy.Image.registry;
  collector : Monitoring.Collector.t;
  ci : Ci.Server.t;
  trace : Simkit.Tracelog.t;
}

let create ?(seed = 42L) ?(executors = 10) () =
  let instance = Testbed.Instance.build ~seed () in
  let oar = Oar.Manager.create instance in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  let collector = Monitoring.Collector.create instance in
  let ci = Ci.Server.create ~executors instance.Testbed.Instance.engine in
  { instance; oar; registry; collector; ci; trace = Simkit.Tracelog.create () }

let engine t = t.instance.Testbed.Instance.engine
let now t = Simkit.Engine.now (engine t)
let faults t = t.instance.Testbed.Instance.faults
let fault_ctx t = Testbed.Faults.context (faults t)
let run_until t horizon = Simkit.Engine.run_until (engine t) horizon

let tracef t ~category fmt =
  Simkit.Tracelog.recordf t.trace ~time:(now t) ~category fmt
