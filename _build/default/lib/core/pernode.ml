type strategy = Whole_cluster | Per_node

type sweep = {
  cluster : string;
  started_at : float;
  mutable covered : string list;
  mutable completed_at : float option;
  mutable partial_runs : int;
}

type t = {
  env : Env.t;
  strat : strategy;
  cluster : string;
  walltime : float;
  mutable sweeps : sweep list;  (* newest first *)
  mutable found : Bugtracker.evidence list;
  mutable busy : bool;  (* a measurement run is in flight *)
}

let fresh_sweep t =
  {
    cluster = t.cluster;
    started_at = Env.now t.env;
    covered = [];
    completed_at = None;
    partial_runs = 0;
  }

let create ?(walltime = 1800.0) env ~strategy ~cluster =
  let t =
    { env; strat = strategy; cluster; walltime; sweeps = []; found = []; busy = false }
  in
  t.sweeps <- [ fresh_sweep t ];
  t

let strategy t = t.strat
let current_sweep t = List.hd t.sweeps
let completed_sweeps t = List.filter (fun s -> s.completed_at <> None) t.sweeps
let evidences t = List.rev t.found

let cluster_hosts t =
  Testbed.Instance.nodes_of_cluster t.env.Env.instance t.cluster
  |> List.map (fun n -> n.Testbed.Node.host)

(* Same anomaly criterion as the disk test family. *)
let measure_node t node =
  match node.Testbed.Node.reference.Testbed.Hardware.disks with
  | [] -> ()
  | described :: _ ->
    let measured = Testbed.Node.disk_benchmark node in
    let expected = Testbed.Hardware.disk_bandwidth described in
    if measured /. expected < 0.80 then
      t.found <-
        {
          Bugtracker.signature = Printf.sprintf "disk:%s" node.Testbed.Node.host;
          summary =
            Printf.sprintf "%s disk at %.0f%% of expected bandwidth"
              node.Testbed.Node.host
              (100.0 *. measured /. expected);
          category = "disk";
          source_test = Printf.sprintf "pernode-disk:%s" t.cluster;
          fault_ids = [];
        }
        :: t.found

let complete_if_done t sweep =
  let all = cluster_hosts t in
  let missing =
    List.filter (fun h -> not (List.mem h sweep.covered)) all
  in
  if missing = [] then begin
    sweep.completed_at <- Some (Env.now t.env);
    t.sweeps <- fresh_sweep t :: t.sweeps
  end

(* Reserve exactly [nodes] (currently free), measure them over ~20 min of
   simulated time, release. *)
let run_measurement t sweep nodes =
  let filter =
    (* An exact host set, expressed through per-host equality on the
       [host] OAR property. *)
    String.concat " or "
      (List.map (fun n -> Printf.sprintf "host='%s'" n.Testbed.Node.host) nodes)
  in
  let request =
    Oar.Request.nodes ~filter (`N (List.length nodes)) ~walltime:t.walltime
  in
  match
    Oar.Manager.submit t.env.Env.oar ~user:"pernode-tests" ~jtype:Oar.Job.Deploy
      ~duration:t.walltime ~immediate:true request
  with
  | Error _ -> ()
  | Ok job ->
    t.busy <- true;
    sweep.partial_runs <- sweep.partial_runs + 1;
    let assigned =
      List.filter_map (Testbed.Instance.find_node t.env.Env.instance)
        job.Oar.Job.assigned
    in
    ignore
      (Simkit.Engine.schedule (Env.engine t.env)
         ~delay:(600.0 +. (2.0 *. float_of_int (List.length assigned)))
         (fun _ ->
           List.iter
             (fun node ->
               if not (List.mem node.Testbed.Node.host sweep.covered) then begin
                 measure_node t node;
                 sweep.covered <- node.Testbed.Node.host :: sweep.covered
               end)
             assigned;
           Oar.Manager.cancel t.env.Env.oar job;
           t.busy <- false;
           complete_if_done t sweep))

let poll t =
  if not t.busy then begin
    let sweep = current_sweep t in
    let free =
      Oar.Manager.free_matching_now t.env.Env.oar
        (Oar.Expr.parse_exn (Printf.sprintf "cluster='%s'" t.cluster))
    in
    let usable_total =
      Testbed.Instance.nodes_of_cluster t.env.Env.instance t.cluster
      |> List.filter (fun n -> n.Testbed.Node.state <> Testbed.Node.Down)
      |> List.length
    in
    match t.strat with
    | Whole_cluster ->
      (* All usable nodes must be free at once. *)
      if usable_total > 0 && List.length free >= usable_total then begin
        let nodes =
          List.filter_map (Testbed.Instance.find_node t.env.Env.instance) free
        in
        sweep.covered <- [];
        run_measurement t sweep nodes;
        (* A whole-cluster run covers even currently-Down nodes'
           bookkeeping: they cannot be measured, so the ledger treats
           them as covered to avoid waiting forever for dead hardware. *)
        let down =
          Testbed.Instance.nodes_of_cluster t.env.Env.instance t.cluster
          |> List.filter (fun n -> n.Testbed.Node.state = Testbed.Node.Down)
        in
        List.iter
          (fun n -> sweep.covered <- n.Testbed.Node.host :: sweep.covered)
          down
      end
    | Per_node ->
      let uncovered_free =
        List.filter (fun h -> not (List.mem h sweep.covered)) free
      in
      (match
         List.filter_map (Testbed.Instance.find_node t.env.Env.instance) uncovered_free
       with
       | [] ->
         (* Dead nodes would block sweep completion indefinitely; count
            them as covered, mirroring the whole-cluster bookkeeping. *)
         let down =
           Testbed.Instance.nodes_of_cluster t.env.Env.instance t.cluster
           |> List.filter (fun n ->
                  n.Testbed.Node.state = Testbed.Node.Down
                  && not (List.mem n.Testbed.Node.host sweep.covered))
         in
         if down <> [] then begin
           List.iter
             (fun n -> sweep.covered <- n.Testbed.Node.host :: sweep.covered)
             down;
           complete_if_done t sweep
         end
       | nodes -> run_measurement t sweep nodes)
  end

let start t ~period =
  Simkit.Engine.every (Env.engine t.env) ~period (fun _ ->
      poll t;
      true)

let time_to_coverage t =
  match List.rev (completed_sweeps t) with
  | first :: _ -> Some (Option.get first.completed_at -. first.started_at)
  | [] -> None
