type family =
  | Refapi
  | Oarproperties
  | Dellbios
  | Oarstate
  | Cmdline
  | Sidapi
  | Environments
  | Stdenv
  | Paralleldeploy
  | Multireboot
  | Multideploy
  | Console
  | Kavlan
  | Kwapi
  | Mpigraph
  | Disk

type resource_need = No_nodes | One_node | Two_nodes | Site_spread | Whole_cluster

type config = {
  family : family;
  cluster : string option;
  site : string option;
  image : string option;
  vlan : int option;
  config_id : string;
}

let all_families =
  [ Refapi; Oarproperties; Dellbios; Oarstate; Cmdline; Sidapi; Environments;
    Stdenv; Paralleldeploy; Multireboot; Multideploy; Console; Kavlan; Kwapi;
    Mpigraph; Disk ]

let family_to_string = function
  | Refapi -> "refapi"
  | Oarproperties -> "oarproperties"
  | Dellbios -> "dellbios"
  | Oarstate -> "oarstate"
  | Cmdline -> "cmdline"
  | Sidapi -> "sidapi"
  | Environments -> "environments"
  | Stdenv -> "stdenv"
  | Paralleldeploy -> "paralleldeploy"
  | Multireboot -> "multireboot"
  | Multideploy -> "multideploy"
  | Console -> "console"
  | Kavlan -> "kavlan"
  | Kwapi -> "kwapi"
  | Mpigraph -> "mpigraph"
  | Disk -> "disk"

let family_of_string s =
  List.find_opt (fun f -> String.equal (family_to_string f) s) all_families

let need = function
  | Refapi | Oarproperties | Dellbios | Oarstate | Cmdline | Sidapi -> No_nodes
  | Stdenv | Environments | Console | Kwapi -> One_node
  | Kavlan -> Two_nodes
  | Paralleldeploy -> Site_spread
  | Multireboot | Multideploy | Disk | Mpigraph -> Whole_cluster

let is_hardware_centric family = need family = Whole_cluster

let category = function
  | Refapi | Oarproperties | Dellbios -> "description"
  | Oarstate -> "status"
  | Cmdline | Sidapi -> "tooling"
  | Environments | Stdenv -> "images"
  | Paralleldeploy | Multireboot | Multideploy -> "reliability"
  | Console | Kavlan | Kwapi -> "services"
  | Mpigraph | Disk -> "hardware"

let cluster_names = List.map (fun c -> c.Testbed.Inventory.cluster) Testbed.Inventory.clusters

let dell_clusters =
  Testbed.Inventory.clusters
  |> List.filter (fun c -> c.Testbed.Inventory.vendor = Testbed.Hardware.Dell)
  |> List.map (fun c -> c.Testbed.Inventory.cluster)

let ib_clusters =
  Testbed.Inventory.clusters
  |> List.filter (fun c -> c.Testbed.Inventory.has_ib)
  |> List.map (fun c -> c.Testbed.Inventory.cluster)

let site_of cluster =
  match Testbed.Inventory.find_cluster cluster with
  | Some spec -> spec.Testbed.Inventory.site
  | None -> invalid_arg ("Testdef: unknown cluster " ^ cluster)

let image_names = List.map (fun img -> img.Kadeploy.Image.name) Kadeploy.Image.standard

let per_cluster family clusters =
  List.map
    (fun cluster ->
      {
        family;
        cluster = Some cluster;
        site = Some (site_of cluster);
        image = None;
        vlan = None;
        config_id = Printf.sprintf "%s:%s" (family_to_string family) cluster;
      })
    clusters

let per_site family =
  List.map
    (fun site ->
      {
        family;
        cluster = None;
        site = Some site;
        image = None;
        vlan = None;
        config_id = Printf.sprintf "%s:%s" (family_to_string family) site;
      })
    Testbed.Inventory.sites

let expand_uncached family =
  match family with
  | Environments ->
    List.concat_map
      (fun image ->
        List.map
          (fun cluster ->
            {
              family;
              cluster = Some cluster;
              site = Some (site_of cluster);
              image = Some image;
              vlan = None;
              config_id = Printf.sprintf "environments:%s:%s" image cluster;
            })
          cluster_names)
      image_names
  | Stdenv | Refapi | Oarproperties | Multireboot | Multideploy | Console | Disk ->
    per_cluster family cluster_names
  | Dellbios -> per_cluster family dell_clusters
  | Mpigraph -> per_cluster family ib_clusters
  | Oarstate | Cmdline | Sidapi | Paralleldeploy -> per_site family
  | Kwapi ->
    List.map
      (fun site ->
        {
          family;
          cluster = None;
          site = Some site;
          image = None;
          vlan = None;
          config_id = Printf.sprintf "kwapi:%s" site;
        })
      Testbed.Inventory.wattmeter_sites
  | Kavlan ->
    List.map
      (fun vlan ->
        {
          family;
          cluster = None;
          site = vlan.Kavlan.vlan_site;
          image = None;
          vlan = Some vlan.Kavlan.vlan_id;
          config_id = Printf.sprintf "kavlan:%d" vlan.Kavlan.vlan_id;
        })
      Kavlan.standard_vlans

let expand_cache : (family, config list) Hashtbl.t = Hashtbl.create 16

let expand family =
  match Hashtbl.find_opt expand_cache family with
  | Some configs -> configs
  | None ->
    let configs = expand_uncached family in
    Hashtbl.replace expand_cache family configs;
    configs

let catalog () = List.concat_map expand all_families

let axes_of_config config =
  match config.family with
  | Environments ->
    [ ("image", Option.value ~default:"" config.image);
      ("cluster", Option.value ~default:"" config.cluster) ]
  | Stdenv | Refapi | Oarproperties | Multireboot | Multideploy | Console | Disk
  | Dellbios | Mpigraph ->
    [ ("cluster", Option.value ~default:"" config.cluster) ]
  | Oarstate | Cmdline | Sidapi | Paralleldeploy | Kwapi ->
    [ ("site", Option.value ~default:"" config.site) ]
  | Kavlan -> [ ("vlan", string_of_int (Option.value ~default:0 config.vlan)) ]

let config_of_axes family axes =
  let find key = List.assoc_opt key axes in
  let candidates = expand family in
  match family with
  | Environments -> (
    match (find "image", find "cluster") with
    | Some image, Some cluster ->
      List.find_opt
        (fun c -> c.image = Some image && c.cluster = Some cluster)
        candidates
    | _ -> None)
  | Stdenv | Refapi | Oarproperties | Multireboot | Multideploy | Console | Disk
  | Dellbios | Mpigraph -> (
    match find "cluster" with
    | Some cluster -> List.find_opt (fun c -> c.cluster = Some cluster) candidates
    | None -> None)
  | Oarstate | Cmdline | Sidapi | Paralleldeploy | Kwapi -> (
    match find "site" with
    | Some site -> List.find_opt (fun c -> c.site = Some site) candidates
    | None -> None)
  | Kavlan -> (
    match Option.bind (find "vlan") int_of_string_opt with
    | Some vlan -> List.find_opt (fun c -> c.vlan = Some vlan) candidates
    | None -> None)

let matrix_axes family =
  match family with
  | Environments -> [ ("image", image_names); ("cluster", cluster_names) ]
  | Stdenv | Refapi | Oarproperties | Multireboot | Multideploy | Console | Disk ->
    [ ("cluster", cluster_names) ]
  | Dellbios -> [ ("cluster", dell_clusters) ]
  | Mpigraph -> [ ("cluster", ib_clusters) ]
  | Oarstate | Cmdline | Sidapi | Paralleldeploy -> [ ("site", Testbed.Inventory.sites) ]
  | Kwapi -> [ ("site", Testbed.Inventory.wattmeter_sites) ]
  | Kavlan ->
    [ ( "vlan",
        List.map
          (fun v -> string_of_int v.Kavlan.vlan_id)
          Kavlan.standard_vlans ) ]

let effective_site config =
  match config.site with
  | Some _ as site -> site
  | None -> (
    (* Site-less two-node configs (the global kavlan vlan) always draw
       their pair from the first site; resolving it here once keeps the
       resource precheck and the anti-affinity accounting in agreement. *)
    match need config.family with
    | Two_nodes -> (
      match Testbed.Inventory.sites with [] -> None | site :: _ -> Some site)
    | No_nodes | One_node | Site_spread | Whole_cluster -> None)

let oar_filter config =
  match (config.cluster, config.site) with
  | Some cluster, _ -> Printf.sprintf "cluster='%s'" cluster
  | None, Some site -> Printf.sprintf "site='%s'" site
  | None, None -> ""

let base_period family =
  let day = Simkit.Calendar.day in
  match family with
  | Refapi | Oarproperties | Oarstate | Cmdline | Sidapi | Dellbios -> 1.0 *. day
  | Stdenv | Console | Kwapi | Kavlan -> 2.0 *. day
  | Environments -> 4.0 *. day
  | Paralleldeploy -> 3.0 *. day
  | Multireboot | Multideploy | Disk | Mpigraph -> 7.0 *. day

let nominal_duration family =
  match family with
  | Refapi | Oarproperties | Dellbios | Oarstate | Cmdline | Sidapi -> 120.0
  | Stdenv -> 600.0
  | Environments -> 900.0
  | Console -> 300.0
  | Kavlan -> 600.0
  | Kwapi -> 300.0
  | Paralleldeploy -> 1200.0
  | Multireboot -> 1500.0
  | Multideploy -> 1800.0
  | Disk -> 1200.0
  | Mpigraph -> 1200.0
