(** The full simulated platform a test campaign runs against: testbed
    instance, OAR, image registry, monitoring collector and CI server,
    all sharing one simulation engine. *)

type t = {
  instance : Testbed.Instance.t;
  oar : Oar.Manager.t;
  registry : Kadeploy.Image.registry;
  collector : Monitoring.Collector.t;
  ci : Ci.Server.t;
  trace : Simkit.Tracelog.t;
}

val create : ?seed:int64 -> ?executors:int -> unit -> t
(** Build everything on a fresh engine (default seed 42, 10 executors). *)

val engine : t -> Simkit.Engine.t
val now : t -> float
val faults : t -> Testbed.Faults.t
val fault_ctx : t -> Testbed.Faults.ctx
val run_until : t -> float -> unit

val tracef :
  t -> category:string -> ('a, unit, string, unit) format4 -> 'a
(** Record a trace entry stamped with the current simulated time. *)
