(** Operator-facing bug reports.

    The paper: scripts should "exhibit issues, but also provide
    sufficient information to testbed operators to understand and fix the
    issue" (and cites "How to Report Bugs Effectively").  This module
    renders one bug into a full report: what was observed, where, since
    when, how often, the correlated ground-truth faults, and a suggested
    first action for its category. *)

val suggested_action : string -> string
(** First-response playbook line for a bug category. *)

val affected_scope : Env.t -> Bugtracker.bug -> string
(** Human summary of where the bug lives (host + cluster + site when the
    signature names a host; otherwise the source test's scope). *)

val render : Env.t -> Bugtracker.bug -> string
(** The full report (multi-line). *)

val render_index : Env.t -> Bugtracker.t -> string
(** A one-line-per-bug index table (id, status, category, age,
    occurrences, summary), open bugs first. *)
