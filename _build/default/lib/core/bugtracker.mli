(** Bug tracker.

    "Testbed operators would be well positioned to report bugs, but they
    are not testbed users" — here the testing framework is the reporter.
    Failing test scripts emit {e evidence}; evidence with an
    already-known signature increments the existing bug instead of filing
    a duplicate, so the bug count reflects distinct problems (the paper's
    "118 bugs filed, 84 already fixed"). *)

type evidence = {
  signature : string;  (** dedup key, e.g. ["disk-write-cache:graphene-12"] *)
  summary : string;
  category : string;  (** the paper's bug classes, see {!Testbed.Faults.category} *)
  source_test : string;  (** config id of the reporting test *)
  fault_ids : int list;  (** correlated ground-truth faults, for repair *)
}

type status = Open | Fixed

type bug = {
  id : int;
  signature : string;
  summary : string;
  category : string;
  first_test : string;
  filed_at : float;
  mutable fault_ids : int list;
  mutable occurrences : int;
  mutable status : status;
  mutable fixed_at : float option;
}

type t

val create : unit -> t

val file : t -> now:float -> evidence -> [ `New of bug | `Duplicate of bug ]
(** Duplicate evidence refreshes the bug's occurrence count and merges
    fault ids; filing against a {e fixed} bug reopens it (regression). *)

val all : t -> bug list
(** By id (filing order). *)

val open_bugs : t -> bug list
val fixed_bugs : t -> bug list
val find : t -> signature:string -> bug option
val mark_fixed : t -> now:float -> bug -> unit

val counts : t -> int * int
(** (filed, fixed). *)

val by_category : t -> (string * int * int) list
(** category, filed, fixed — sorted by filed count, descending. *)
