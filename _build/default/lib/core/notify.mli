(** Notification routing for a geo-distributed operations team.

    The paper notes that a geo-distributed team "cannot just informally
    talk to a sysadmin": findings must be routed to the right people.
    This module assigns every bug to the responsible mailbox — the site
    team when the bug is localised, the central tools team otherwise —
    and batches low-urgency traffic into digests. *)

type urgency = Immediate | Digest

type message = {
  sent_at : float;
  mailbox : string;  (** e.g. ["admins@nancy"] or ["tools-team"] *)
  urgency : urgency;
  subject : string;
  body : string;
}

type t

val create : Env.t -> t

val mailbox_for : Env.t -> Bugtracker.bug -> string
(** ["admins@<site>"] when the bug's signature names a host of that
    site; ["tools-team"] for service/software/cross-site problems. *)

val urgency_for : Bugtracker.bug -> urgency
(** Performance-affecting categories (cpu-settings, disk, cabling,
    infrastructure) page immediately; the rest waits for the digest. *)

val notify_bug : t -> Bugtracker.bug -> message
(** Build, record and deliver the notification for a freshly filed bug
    (immediate ones are delivered at once; digest ones are queued). *)

val flush_digests : t -> now:float -> message list
(** Compose one digest message per mailbox with queued items (emptying
    the queues) — run this daily. *)

val sent : t -> message list
(** All delivered messages, oldest first (digests included once
    flushed). *)

val inbox : t -> string -> message list
(** Delivered messages of one mailbox, oldest first. *)
