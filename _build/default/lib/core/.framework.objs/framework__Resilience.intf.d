lib/core/resilience.mli: Ci Env Simkit
