lib/core/report.ml: Campaign Float Int64 List Printf Resilience Scheduler Simkit
