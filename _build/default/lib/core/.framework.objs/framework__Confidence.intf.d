lib/core/confidence.mli: Statuspage Testdef
