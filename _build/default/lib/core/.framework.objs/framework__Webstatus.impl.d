lib/core/webstatus.ml: Buffer Confidence List Printf Simkit Statuspage String Testbed Testdef
