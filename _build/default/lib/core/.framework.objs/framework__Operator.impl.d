lib/core/operator.ml: Bugtracker Env Float List Oar Simkit Testbed
