lib/core/jobs.ml: Ci Env List Printf Scripts Stdlib String Testdef
