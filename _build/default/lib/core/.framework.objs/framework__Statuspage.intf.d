lib/core/statuspage.mli: Env Resilience Testdef
