lib/core/statuspage.mli: Env Testdef
