lib/core/scripts.mli: Bugtracker Ci Env Testdef
