lib/core/testdef.mli:
