lib/core/env.mli: Ci Kadeploy Monitoring Oar Simkit Testbed
