lib/core/bugreport.mli: Bugtracker Env
