lib/core/testdef.ml: Hashtbl Kadeploy Kavlan List Option Printf Simkit String Testbed
