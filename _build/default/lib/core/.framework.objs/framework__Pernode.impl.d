lib/core/pernode.ml: Bugtracker Env List Oar Option Printf Simkit String Testbed
