lib/core/scheduler.ml: Ci Env Float Hashtbl Jobs List Oar Option Printf Simkit String Testbed Testdef
