lib/core/scheduler.ml: Array Ci Env Hashtbl Int64 Jobs List Oar Option Printf Resilience Simkit String Testbed Testdef
