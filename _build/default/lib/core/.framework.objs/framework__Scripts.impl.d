lib/core/scripts.ml: Bugtracker Ci Env Float G5kchecks Kadeploy Kavlan List Monitoring Oar Option Printf Simkit Stdlib String Testbed Testdef
