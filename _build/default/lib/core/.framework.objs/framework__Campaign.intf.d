lib/core/campaign.mli: Format Oar Operator Resilience Scheduler Testbed Testdef
