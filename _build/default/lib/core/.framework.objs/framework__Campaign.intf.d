lib/core/campaign.mli: Format Oar Operator Scheduler Testdef
