lib/core/bugtracker.ml: Hashtbl List Option
