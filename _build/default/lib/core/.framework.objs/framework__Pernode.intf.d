lib/core/pernode.mli: Bugtracker Env
