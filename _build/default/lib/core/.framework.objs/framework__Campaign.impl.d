lib/core/campaign.ml: Bugtracker Ci Confidence Env Format Hashtbl Jobs List Oar Operator Option Regression Resilience Scheduler Simkit Statuspage String Testbed Testdef Webstatus
