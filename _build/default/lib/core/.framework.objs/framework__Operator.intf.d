lib/core/operator.mli: Bugtracker Env
