lib/core/env.ml: Ci Kadeploy Monitoring Oar Simkit Testbed
