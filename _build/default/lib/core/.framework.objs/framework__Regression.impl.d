lib/core/regression.ml: Array Bugtracker Ci Env Float Kadeploy List Monitoring Oar Printf Scripts Simkit String Testbed
