lib/core/bugreport.ml: Buffer Bugtracker Env List Printf Simkit String Testbed
