lib/core/notify.ml: Bugreport Bugtracker Env Hashtbl List Option Printf String Testbed
