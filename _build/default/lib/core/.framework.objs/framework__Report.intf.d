lib/core/report.mli: Campaign Simkit
