lib/core/webstatus.mli: Statuspage
