lib/core/resilience.ml: Ci Env Float Hashtbl Jobs Simkit Testbed Testdef
