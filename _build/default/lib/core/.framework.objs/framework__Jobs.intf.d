lib/core/jobs.mli: Bugtracker Ci Env Testdef
