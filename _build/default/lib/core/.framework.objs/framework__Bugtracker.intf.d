lib/core/bugtracker.mli:
