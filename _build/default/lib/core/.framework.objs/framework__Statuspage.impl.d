lib/core/statuspage.ml: Buffer Ci Env Hashtbl Jobs List Option Simkit String Testbed Testdef
