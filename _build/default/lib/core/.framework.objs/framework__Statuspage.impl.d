lib/core/statuspage.ml: Buffer Ci Env Hashtbl Jobs List Option Resilience Simkit String Testbed Testdef
