lib/core/regression.mli: Bugtracker Ci Env Scripts
