lib/core/scheduler.mli: Env Resilience Testdef
