lib/core/scheduler.mli: Env Testdef
