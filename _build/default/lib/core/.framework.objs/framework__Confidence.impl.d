lib/core/confidence.ml: List Option Simkit Statuspage Testbed Testdef
