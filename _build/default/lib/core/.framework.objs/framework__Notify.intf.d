lib/core/notify.mli: Bugtracker Env
