type urgency = Immediate | Digest

type message = {
  sent_at : float;
  mailbox : string;
  urgency : urgency;
  subject : string;
  body : string;
}

type t = {
  env : Env.t;
  mutable delivered : message list;  (* newest first *)
  pending : (string, string list) Hashtbl.t;  (* mailbox -> digest lines *)
}

let create env = { env; delivered = []; pending = Hashtbl.create 16 }

let host_of_signature signature =
  String.split_on_char ':' signature
  |> List.find_opt (fun part -> String.contains part '.')

let mailbox_for env (bug : Bugtracker.bug) =
  match host_of_signature bug.Bugtracker.signature with
  | Some host -> (
    match Testbed.Instance.find_node env.Env.instance host with
    | Some node -> "admins@" ^ node.Testbed.Node.site_name
    | None -> "tools-team")
  | None -> "tools-team"

let urgency_for (bug : Bugtracker.bug) =
  match bug.Bugtracker.category with
  | "cpu-settings" | "disk" | "cabling" | "infrastructure" -> Immediate
  | _ -> Digest

let deliver t message = t.delivered <- message :: t.delivered

let notify_bug t (bug : Bugtracker.bug) =
  let mailbox = mailbox_for t.env bug in
  let urgency = urgency_for bug in
  let message =
    {
      sent_at = Env.now t.env;
      mailbox;
      urgency;
      subject =
        Printf.sprintf "[g5k-tests] bug #%d (%s): %s" bug.Bugtracker.id
          bug.Bugtracker.category bug.Bugtracker.summary;
      body = Bugreport.render t.env bug;
    }
  in
  (match urgency with
   | Immediate -> deliver t message
   | Digest ->
     let lines = Option.value ~default:[] (Hashtbl.find_opt t.pending mailbox) in
     Hashtbl.replace t.pending mailbox (message.subject :: lines));
  message

let flush_digests t ~now =
  let digests =
    Hashtbl.fold
      (fun mailbox lines acc ->
        if lines = [] then acc
        else
          {
            sent_at = now;
            mailbox;
            urgency = Digest;
            subject = Printf.sprintf "[g5k-tests] daily digest (%d items)" (List.length lines);
            body = String.concat "\n" (List.rev lines);
          }
          :: acc)
      t.pending []
  in
  Hashtbl.reset t.pending;
  List.iter (deliver t) digests;
  digests

let sent t = List.rev t.delivered

let inbox t mailbox =
  List.filter (fun m -> String.equal m.mailbox mailbox) (sent t)
