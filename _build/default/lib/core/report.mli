(** Machine-readable campaign reports.

    The real status page is consumed by humans and scripts alike; this
    module serialises a campaign report to JSON (the same minimal JSON
    dialect the Reference API uses), so downstream tooling — dashboards,
    notebooks, the federation-level monitors the paper cites — can read
    the results without scraping tables. *)

val monthly_to_json : Campaign.monthly -> Simkit.Json.t
val to_json : Campaign.report -> Simkit.Json.t

val to_string : ?indent:int -> Campaign.report -> string
(** [to_json] rendered; [indent] defaults to 2. *)

val summary_of_json : Simkit.Json.t -> (string, string) result
(** Validate a serialised report and produce a one-line summary
    ("6 months, 21828 builds, 135 bugs (109 fixed)...") — the consumer
    side, used in tests to pin the schema. *)
