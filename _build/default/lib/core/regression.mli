(** User experiments as regression tests — the paper's "tests still being
    added: adding real user experiments as regression tests?".

    Four canned experiments exercise the platform exactly like a user
    would, end to end, and fail when the infrastructure would have
    corrupted the user's results:

    - [mpi_pingpong]: two InfiniBand nodes, application start + latency /
      bandwidth sanity (catches OFED trouble and IB topology lies);
    - [elastic_cloud]: a small node group, deploy + reboot churn
      (catches flaky nodes and slow boots);
    - [energy_profile]: a wattmeter node's power trace against its
      hardware envelope (catches C-states drift and wattmeter
      misattribution);
    - [linktest]: Emulab-LinkTest-style network characteristics check —
      latency hierarchy, bandwidth caps, described cabling.

    They are NOT part of the paper's 751-configuration catalog; they are
    defined as additional CI jobs named [regression_<name>]. *)

type experiment = Mpi_pingpong | Elastic_cloud | Energy_profile | Linktest

val all : experiment list
val name : experiment -> string

val run :
  Env.t ->
  experiment ->
  build:Ci.Build.t ->
  finish:(Scripts.outcome -> unit) ->
  unit
(** Execute one experiment (asynchronous in simulated time; finishes
    Unstable when resources are unavailable, like the test scripts). *)

val define_jobs :
  ?daily:bool -> Env.t -> on_evidence:(Bugtracker.evidence -> unit) -> unit
(** Register the four [regression_*] freestyle jobs on the CI server;
    with [daily:true] each is armed with a night-time cron trigger
    (04:00, staggered by a quarter hour per experiment). *)
