type experiment = Mpi_pingpong | Elastic_cloud | Energy_profile | Linktest

let all = [ Mpi_pingpong; Elastic_cloud; Energy_profile; Linktest ]

let name = function
  | Mpi_pingpong -> "mpi_pingpong"
  | Elastic_cloud -> "elastic_cloud"
  | Energy_profile -> "energy_profile"
  | Linktest -> "linktest"

let logf build fmt = Printf.ksprintf (Ci.Build.append_log build) fmt

let after env delay k =
  ignore (Simkit.Engine.schedule (Env.engine env) ~delay (fun _ -> k ()))

let unstable = { Scripts.result = Ci.Build.Unstable; evidences = [] }
let success = Scripts.success

let failure ~signature ~summary ~category ~source ~fault_ids =
  {
    Scripts.result = Ci.Build.Failure;
    evidences =
      [ { Bugtracker.signature; summary; category; source_test = source; fault_ids } ];
  }

let reserve env ~filter ~count ~walltime ~build k_unavail k =
  let request = Oar.Request.nodes ~filter count ~walltime in
  match
    Oar.Manager.submit env.Env.oar ~user:"regression-tests" ~jtype:Oar.Job.Deploy
      ~duration:walltime ~immediate:true request
  with
  | Error _ ->
    logf build "reservation %s: not immediately available" (Oar.Request.to_string request);
    k_unavail ()
  | Ok job ->
    let nodes =
      List.filter_map (Testbed.Instance.find_node env.Env.instance) job.Oar.Job.assigned
    in
    k nodes (fun () -> Oar.Manager.cancel env.Env.oar job)

(* ---- mpi_pingpong ---------------------------------------------------------- *)

let mpi_pingpong env ~build ~finish =
  (* Two nodes of one InfiniBand cluster, like a real MPI user. *)
  reserve env ~filter:"ib='YES'" ~count:(`N 2) ~walltime:2400.0 ~build
    (fun () -> finish unstable)
    (fun nodes release ->
      after env 480.0 (fun () ->
          match nodes with
          | a :: b :: _ ->
            let start_ok = Testbed.Node.ib_start_ok a && Testbed.Node.ib_start_ok b in
            let latency =
              Testbed.Network.latency_ms env.Env.instance.Testbed.Instance.network a b
            in
            let faults = Env.faults env in
            logf build "pingpong %s <-> %s: start=%b latency=%.3f ms"
              a.Testbed.Node.host b.Testbed.Node.host start_ok latency;
            release ();
            if not start_ok then begin
              let ids =
                Testbed.Faults.active_on_host faults a.Testbed.Node.host
                @ Testbed.Faults.active_on_host faults b.Testbed.Node.host
                |> List.filter (fun f -> f.Testbed.Faults.kind = Testbed.Faults.Ofed_flaky)
                |> List.map (fun f ->
                       Testbed.Faults.mark_detected faults ~now:(Env.now env) f;
                       f.Testbed.Faults.id)
              in
              finish
                (failure
                   ~signature:(Printf.sprintf "regression:mpi:%s" a.Testbed.Node.cluster_name)
                   ~summary:"MPI application fails to start over InfiniBand"
                   ~category:"software" ~source:"regression:mpi_pingpong" ~fault_ids:ids)
            end
            else if latency > 1.0 && String.equal a.Testbed.Node.site_name b.Testbed.Node.site_name
            then
              finish
                (failure
                   ~signature:(Printf.sprintf "regression:latency:%s" a.Testbed.Node.site_name)
                   ~summary:"intra-site latency implausibly high"
                   ~category:"infrastructure" ~source:"regression:mpi_pingpong"
                   ~fault_ids:[])
            else finish success
          | _ ->
            release ();
            finish unstable))

(* ---- elastic_cloud ----------------------------------------------------------- *)

let elastic_cloud env ~build ~finish =
  reserve env ~filter:"" ~count:(`N 6) ~walltime:3600.0 ~build
    (fun () -> finish unstable)
    (fun nodes release ->
      (* Deploy a cloud image on the whole group, then churn reboots like
         an elastic VM manager. *)
      Kadeploy.Deploy.run env.Env.instance ~registry:env.Env.registry
        ~image:"debian8-x64-big" ~nodes ~on_done:(fun result ->
          if not (Kadeploy.Deploy.all_deployed result) then begin
            release ();
            let failed =
              List.filter_map
                (fun (host, o) -> if o = Kadeploy.Deploy.Deployed then None else Some host)
                result.Kadeploy.Deploy.outcomes
            in
            logf build "deployment failed on: %s" (String.concat " " failed);
            finish
              (failure
                 ~signature:
                   (Printf.sprintf "regression:cloud:%s"
                      (match failed with h :: _ -> h | [] -> "deploy"))
                 ~summary:"cloud image deployment failed"
                 ~category:"infrastructure" ~source:"regression:elastic_cloud"
                 ~fault_ids:[])
          end
          else begin
            let pending = ref (List.length nodes) in
            let lost = ref [] in
            List.iter
              (fun node ->
                Testbed.Instance.reboot env.Env.instance node ~on_done:(fun ~ok ->
                    if not ok then lost := node.Testbed.Node.host :: !lost;
                    decr pending;
                    if !pending = 0 then begin
                      logf build "vm churn: %d/%d nodes back"
                        (List.length nodes - List.length !lost)
                        (List.length nodes);
                      release ();
                      match !lost with
                      | [] -> finish success
                      | host :: _ ->
                        let faults = Env.faults env in
                        let ids =
                          Testbed.Faults.active_on_host faults host
                          |> List.filter (fun f ->
                                 f.Testbed.Faults.kind = Testbed.Faults.Random_reboots)
                          |> List.map (fun f ->
                                 Testbed.Faults.mark_detected faults ~now:(Env.now env) f;
                                 f.Testbed.Faults.id)
                        in
                        finish
                          (failure
                             ~signature:(Printf.sprintf "regression:cloud:%s" host)
                             ~summary:(Printf.sprintf "%s lost during VM churn" host)
                             ~category:"infrastructure"
                             ~source:"regression:elastic_cloud" ~fault_ids:ids)
                    end))
              nodes
          end))

(* ---- energy_profile ------------------------------------------------------------ *)

let energy_profile env ~build ~finish =
  reserve env ~filter:"wattmeter='YES'" ~count:(`N 1) ~walltime:1800.0 ~build
    (fun () -> finish unstable)
    (fun nodes release ->
      after env 120.0 (fun () ->
          match nodes with
          | node :: _ ->
            let host = node.Testbed.Node.host in
            let hi = Env.now env in
            let lo = hi -. 60.0 in
            let series =
              Monitoring.Collector.sample_window env.Env.collector ~host
                Monitoring.Collector.Power_w ~lo ~hi
            in
            let mean = Simkit.Timeseries.mean_between series ~lo ~hi in
            let reference = node.Testbed.Node.reference in
            let idle = Monitoring.Power.idle_of_hardware reference in
            let peak = Monitoring.Power.peak_of_hardware reference in
            logf build "%s: mean %.1f W (envelope %.1f-%.1f W)" host mean
              (0.92 *. idle) (1.08 *. peak);
            release ();
            if Float.is_nan mean || mean < 0.92 *. idle || mean > 1.08 *. peak then begin
              let faults = Env.faults env in
              let ids =
                Testbed.Faults.active_on_host faults host
                |> List.filter (fun f ->
                       List.mem f.Testbed.Faults.kind
                         [ Testbed.Faults.Kwapi_misattribution;
                           Testbed.Faults.Cpu_cstates; Testbed.Faults.Cpu_turbo ])
                |> List.map (fun f ->
                       Testbed.Faults.mark_detected faults ~now:(Env.now env) f;
                       f.Testbed.Faults.id)
              in
              finish
                (failure
                   ~signature:(Printf.sprintf "regression:energy:%s" host)
                   ~summary:
                     (Printf.sprintf "power trace of %s outside hardware envelope" host)
                   ~category:"cabling" ~source:"regression:energy_profile" ~fault_ids:ids)
            end
            else finish success
          | [] ->
            release ();
            finish unstable))

(* ---- linktest -------------------------------------------------------------------- *)

let linktest env ~build ~finish =
  (* Emulab LinkTest: latency, bandwidth, routing/cabling — one node on
     each of two sites plus a same-site pair. *)
  reserve env ~filter:"site='nancy'" ~count:(`N 2) ~walltime:1800.0 ~build
    (fun () -> finish unstable)
    (fun nancy_nodes release_a ->
      reserve env ~filter:"site='rennes'" ~count:(`N 1) ~walltime:1800.0 ~build
        (fun () ->
          release_a ();
          finish unstable)
        (fun rennes_nodes release_b ->
          after env 300.0 (fun () ->
              let release_all () =
                release_a ();
                release_b ()
              in
              match (nancy_nodes, rennes_nodes) with
              | a :: b :: _, c :: _ ->
                let net = env.Env.instance.Testbed.Instance.network in
                let local = Testbed.Network.latency_ms net a b in
                let wan = Testbed.Network.latency_ms net a c in
                let wan_bw = Testbed.Network.bandwidth_gbps net a c in
                let cabling_ok =
                  List.for_all
                    (fun n -> Testbed.Network.cabling_consistent net n.Testbed.Node.host)
                    [ a; b; c ]
                in
                (* Structural cross-check against the described topology:
                   the measured bandwidth may not exceed the path's
                   bottleneck capacity. *)
                let topo =
                  Testbed.Topology.build net
                    (Array.to_list env.Env.instance.Testbed.Instance.nodes)
                in
                let bottleneck =
                  Testbed.Topology.bottleneck_gbps topo ~from:a.Testbed.Node.host
                    ~to_:c.Testbed.Node.host
                in
                let wan_bw = Float.min wan_bw bottleneck in
                logf build
                  "lan=%.3f ms wan=%.3f ms wan-bw=%.2f Gbps (bottleneck %.1f, %d hops) cabling=%b"
                  local wan wan_bw bottleneck
                  (Testbed.Topology.hops topo ~from:a.Testbed.Node.host
                     ~to_:c.Testbed.Node.host)
                  cabling_ok;
                release_all ();
                if not cabling_ok then begin
                  let faults = Env.faults env in
                  let ids =
                    List.concat_map
                      (fun n ->
                        Testbed.Faults.active_on_host faults n.Testbed.Node.host)
                      [ a; b; c ]
                    |> List.filter (fun f ->
                           f.Testbed.Faults.kind = Testbed.Faults.Cabling_swap)
                    |> List.map (fun f ->
                           Testbed.Faults.mark_detected faults ~now:(Env.now env) f;
                           f.Testbed.Faults.id)
                  in
                  finish
                    (failure ~signature:"regression:linktest:cabling"
                       ~summary:"measured topology differs from description"
                       ~category:"cabling" ~source:"regression:linktest" ~fault_ids:ids)
                end
                else if local >= wan then
                  finish
                    (failure ~signature:"regression:linktest:latency"
                       ~summary:"latency hierarchy violated (LAN >= WAN)"
                       ~category:"infrastructure" ~source:"regression:linktest"
                       ~fault_ids:[])
                else if wan_bw > Testbed.Network.backbone_gbps net then
                  finish
                    (failure ~signature:"regression:linktest:bandwidth"
                       ~summary:"measured bandwidth exceeds the backbone"
                       ~category:"infrastructure" ~source:"regression:linktest"
                       ~fault_ids:[])
                else finish success
              | _ ->
                release_all ();
                finish unstable)))

let run env experiment ~build ~finish =
  match experiment with
  | Mpi_pingpong -> mpi_pingpong env ~build ~finish
  | Elastic_cloud -> elastic_cloud env ~build ~finish
  | Energy_profile -> energy_profile env ~build ~finish
  | Linktest -> linktest env ~build ~finish

let define_jobs ?(daily = false) env ~on_evidence =
  List.iteri
    (fun i experiment ->
      let body ~engine:_ ~build ~finish =
        run env experiment ~build ~finish:(fun outcome ->
            List.iter on_evidence outcome.Scripts.evidences;
            finish outcome.Scripts.result)
      in
      let trigger =
        if daily then Some (Ci.Cron.parse_exn (Printf.sprintf "%d 4 * * *" (i * 15)))
        else None
      in
      Ci.Server.define env.Env.ci
        (Ci.Jobdef.freestyle
           ~description:("user-experiment regression: " ^ name experiment)
           ?trigger
           ~name:("regression_" ^ name experiment)
           body))
    all
