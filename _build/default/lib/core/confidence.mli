(** Per-cluster confidence scores.

    The paper's outcome is trust: "more confidence that what should work
    actually works".  This module condenses the status page into one
    number per cluster — a weighted average of the latest result of every
    applicable test family, weighting performance-critical families
    (disk, refapi conformity, mpigraph) higher, because their silent
    failures are the ones that corrupt experiments. *)

val family_weight : Testdef.family -> float
(** How much a family's verdict matters for experiment trustworthiness. *)

val cluster_score : Statuspage.t -> cluster:string -> float option
(** Weighted score in [\[0, 1\]] over families with a recorded result for
    the cluster: OK = 1, unstable = 0.5, KO = 0.  [None] when nothing has
    run yet. *)

val grade : float -> string
(** [>= 0.9] "A", [>= 0.75] "B", [>= 0.5] "C", otherwise "D". *)

val ranking : Statuspage.t -> (string * float) list
(** Clusters with a score, best first. *)

val render : Statuspage.t -> string
(** Table: cluster, site, score, grade — the "can I trust this cluster
    for my experiment?" view. *)
