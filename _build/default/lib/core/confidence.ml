let family_weight = function
  (* Silent performance skew: worst for reproducibility. *)
  | Testdef.Refapi | Testdef.Disk -> 3.0
  | Testdef.Mpigraph | Testdef.Dellbios -> 2.0
  (* Availability/reliability of the machinery. *)
  | Testdef.Environments | Testdef.Stdenv | Testdef.Multireboot | Testdef.Multideploy ->
    1.5
  | Testdef.Oarproperties | Testdef.Console | Testdef.Kavlan | Testdef.Kwapi
  | Testdef.Paralleldeploy | Testdef.Oarstate | Testdef.Cmdline | Testdef.Sidapi ->
    1.0

(* Families whose configurations are keyed by cluster name. *)
let cluster_families =
  List.filter
    (fun family ->
      List.exists (fun c -> c.Testdef.cluster <> None) (Testdef.expand family))
    Testdef.all_families

let cell_value = function
  | Statuspage.Ok_ -> Some 1.0
  | Statuspage.Unst -> Some 0.5
  | Statuspage.Ko -> Some 0.0
  | Statuspage.Missing -> None

let cluster_score page ~cluster =
  let total_weight, score =
    List.fold_left
      (fun (weight_acc, score_acc) family ->
        let applicable =
          List.exists
            (fun c -> c.Testdef.cluster = Some cluster)
            (Testdef.expand family)
        in
        if not applicable then (weight_acc, score_acc)
        else
          match cell_value (Statuspage.latest page ~family ~scope:cluster) with
          | Some v ->
            let w = family_weight family in
            (weight_acc +. w, score_acc +. (w *. v))
          | None -> (weight_acc, score_acc))
      (0.0, 0.0) cluster_families
  in
  if total_weight = 0.0 then None else Some (score /. total_weight)

let grade score =
  if score >= 0.9 then "A" else if score >= 0.75 then "B" else if score >= 0.5 then "C"
  else "D"

let ranking page =
  Testbed.Inventory.clusters
  |> List.filter_map (fun spec ->
         let cluster = spec.Testbed.Inventory.cluster in
         Option.map (fun s -> (cluster, s)) (cluster_score page ~cluster))
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let render page =
  Simkit.Table.render ~header:[ "cluster"; "site"; "confidence"; "grade" ]
    (List.map
       (fun (cluster, score) ->
         let site =
           match Testbed.Inventory.find_cluster cluster with
           | Some spec -> spec.Testbed.Inventory.site
           | None -> "?"
         in
         [ cluster; site; Simkit.Table.fmt_pct score; grade score ])
       (ranking page))
