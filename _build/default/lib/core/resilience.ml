module Retry = struct
  type config = {
    initial : float;
    max_delay : float;
    multiplier : float;
    jitter : float;
    budget : int;
  }

  let default =
    {
      initial = 3600.0;
      max_delay = 4.0 *. Simkit.Calendar.day;
      multiplier = 2.0;
      jitter = 0.0;
      budget = max_int;
    }

  type t = {
    cfg : config;
    rng : Simkit.Prng.t;
    mutable backoff : float;
    mutable spent : int;
    mutable total_spent : int;
  }

  let create ?(seed = 7L) cfg =
    {
      cfg;
      rng = Simkit.Prng.create seed;
      backoff = cfg.initial;
      spent = 0;
      total_spent = 0;
    }

  let next_delay t =
    if t.spent >= t.cfg.budget then None
    else begin
      t.spent <- t.spent + 1;
      t.total_spent <- t.total_spent + 1;
      let delay =
        if t.cfg.jitter <= 0.0 then begin
          (* Legacy deterministic exponential: hand out the current
             backoff, then grow it. *)
          let d = t.backoff in
          t.backoff <- Float.min t.cfg.max_delay (t.backoff *. t.cfg.multiplier);
          d
        end
        else begin
          (* Decorrelated jitter: draw from [initial, 3 x previous],
             width scaled by the jitter knob, capped. *)
          let hi = Float.max t.cfg.initial (t.backoff *. 3.0) in
          let u = Simkit.Prng.float t.rng *. t.cfg.jitter in
          let d =
            Float.min t.cfg.max_delay (t.cfg.initial +. (u *. (hi -. t.cfg.initial)))
          in
          t.backoff <- Float.max t.cfg.initial d;
          d
        end
      in
      Some delay
    end

  let reset t =
    t.backoff <- t.cfg.initial;
    t.spent <- 0

  let spent t = t.spent
  let total_spent t = t.total_spent
  let budget t = t.cfg.budget
  let exhausted t = t.spent >= t.cfg.budget
end

module Breaker = struct
  type config = { failure_threshold : int; cooldown : float }

  let default = { failure_threshold = 5; cooldown = 12.0 *. 3600.0 }

  type state = Closed | Open | Half_open

  type t = {
    cfg : config;
    mutable state : state;
    mutable consecutive : int;
    mutable opened_at : float;
    mutable trips : int;
  }

  let create cfg = { cfg; state = Closed; consecutive = 0; opened_at = 0.0; trips = 0 }
  let state t = t.state

  let trip t ~now =
    t.state <- Open;
    t.opened_at <- now;
    t.consecutive <- 0;
    t.trips <- t.trips + 1

  let allow t ~now =
    match t.state with
    | Closed -> true
    | Half_open -> false
    | Open ->
      if now >= t.opened_at +. t.cfg.cooldown then begin
        t.state <- Half_open;
        true
      end
      else false

  let record_success t =
    t.state <- Closed;
    t.consecutive <- 0

  let record_failure t ~now =
    match t.state with
    | Half_open -> trip t ~now
    | Closed ->
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.cfg.failure_threshold then trip t ~now
    | Open -> ()  (* late completion of a build in flight when we opened *)

  let trips t = t.trips
end

module Watchdog = struct
  type status = Armed | Fired | Disarmed

  type handle = {
    mutable status : status;
    mutable event : Simkit.Engine.handle option;
  }

  type t = {
    engine : Simkit.Engine.t;
    mutable n_fired : int;
    mutable n_armed : int;
  }

  let create engine = { engine; n_fired = 0; n_armed = 0 }

  let arm t ~delay f =
    let h = { status = Armed; event = None } in
    h.event <-
      Some
        (Simkit.Engine.schedule t.engine ~delay (fun _ ->
             if h.status = Armed then begin
               h.status <- Fired;
               t.n_armed <- t.n_armed - 1;
               t.n_fired <- t.n_fired + 1;
               f ()
             end));
    t.n_armed <- t.n_armed + 1;
    h

  let disarm t h =
    if h.status = Armed then begin
      h.status <- Disarmed;
      (match h.event with
       | Some event -> Simkit.Engine.cancel t.engine event
       | None -> ());
      t.n_armed <- t.n_armed - 1
    end

  let fired t = t.n_fired
  let armed t = t.n_armed
end

type summary = {
  watchdog_aborts : int;
  breaker_trips : int;
  skipped_breaker_open : int;
  retries_spent : int;
  retry_budget : int;
  retries_exhausted : int;
  ci_outages : int;
  queue_drops : int;
  dropped_builds : int;
  deferred_triggers : int;
}

let empty_summary =
  {
    watchdog_aborts = 0;
    breaker_trips = 0;
    skipped_breaker_open = 0;
    retries_spent = 0;
    retry_budget = max_int;
    retries_exhausted = 0;
    ci_outages = 0;
    queue_drops = 0;
    dropped_builds = 0;
    deferred_triggers = 0;
  }

module Infra = struct
  type config = {
    check_period : float;
    deadline_of : Ci.Build.t -> float option;
  }

  let default_deadline build =
    match Jobs.config_of_build build with
    | Some config ->
      Some
        (Float.max (2.0 *. 3600.0)
           (8.0 *. Testdef.nominal_duration config.Testdef.family))
    | None -> Some (4.0 *. 3600.0)

  let default_config = { check_period = 300.0; deadline_of = default_deadline }

  type t = {
    env : Env.t;
    cfg : config;
    wd : Watchdog.t;
    handles : (string * int, Watchdog.handle) Hashtbl.t;
    mutable n_ci_outages : int;
    mutable n_queue_drops : int;
    mutable n_dropped_builds : int;
    mutable queue_loss_handled : bool;
    mutable running : bool;
  }

  let key build = (build.Ci.Build.job_name, build.Ci.Build.number)

  let on_start t build =
    match t.cfg.deadline_of build with
    | None -> ()
    | Some delay ->
      let handle =
        Watchdog.arm t.wd ~delay (fun () ->
            Hashtbl.remove t.handles (key build);
            if Ci.Server.interrupt t.env.Env.ci build then
              Env.tracef t.env ~category:"resilience" "watchdog aborted %s#%d"
                build.Ci.Build.job_name build.Ci.Build.number)
      in
      Hashtbl.replace t.handles (key build) handle

  let on_complete t build =
    match Hashtbl.find_opt t.handles (key build) with
    | Some handle ->
      Watchdog.disarm t.wd handle;
      Hashtbl.remove t.handles (key build)
    | None -> ()

  let sync t =
    let ci = t.env.Env.ci in
    let ctx = Env.fault_ctx t.env in
    let flag key = Testbed.Faults.flag ctx key <> None in
    let outage = flag Testbed.Faults.ci_outage_flag in
    if outage && not (Ci.Server.outage ci) then begin
      t.n_ci_outages <- t.n_ci_outages + 1;
      Env.tracef t.env ~category:"resilience" "CI outage: deferring triggers";
      Ci.Server.set_outage ci true
    end
    else if (not outage) && Ci.Server.outage ci then begin
      Env.tracef t.env ~category:"resilience" "CI recovered: replaying queue";
      Ci.Server.set_outage ci false
    end;
    Ci.Server.set_hang ci (flag Testbed.Faults.build_hang_flag);
    if flag Testbed.Faults.queue_loss_flag then begin
      if not t.queue_loss_handled then begin
        t.queue_loss_handled <- true;
        let n = Ci.Server.drop_queue ci in
        t.n_queue_drops <- t.n_queue_drops + 1;
        t.n_dropped_builds <- t.n_dropped_builds + n;
        Env.tracef t.env ~category:"resilience" "queue loss: %d build(s) dropped" n
      end
    end
    else t.queue_loss_handled <- false

  let attach ?(config = default_config) env =
    let t =
      {
        env;
        cfg = config;
        wd = Watchdog.create (Env.engine env);
        handles = Hashtbl.create 64;
        n_ci_outages = 0;
        n_queue_drops = 0;
        n_dropped_builds = 0;
        queue_loss_handled = false;
        running = true;
      }
    in
    Ci.Server.on_build_start env.Env.ci (fun build -> on_start t build);
    Ci.Server.on_build_complete env.Env.ci (fun build -> on_complete t build);
    Simkit.Engine.every (Env.engine env) ~period:config.check_period (fun _ ->
        if t.running then sync t;
        t.running);
    t

  let detach t = t.running <- false

  let watchdog_aborts t = Watchdog.fired t.wd
  let ci_outages t = t.n_ci_outages
  let queue_drops t = t.n_queue_drops
  let dropped_builds t = t.n_dropped_builds

  let summary t ~scheduler =
    let breaker_trips, skipped_breaker_open, retries_spent, retries_exhausted,
        retry_budget =
      match scheduler with
      | Some (trips, skipped, spent, exhausted, budget) ->
        (trips, skipped, spent, exhausted, budget)
      | None -> (0, 0, 0, 0, max_int)
    in
    {
      watchdog_aborts = watchdog_aborts t;
      breaker_trips;
      skipped_breaker_open;
      retries_spent;
      retry_budget;
      retries_exhausted;
      ci_outages = ci_outages t;
      queue_drops = queue_drops t;
      dropped_builds = dropped_builds t;
      deferred_triggers = Ci.Server.deferred_triggers t.env.Env.ci;
    }
end

let summary_to_json s =
  let open Simkit.Json in
  Obj
    [ ("watchdog_aborts", Int s.watchdog_aborts);
      ("breaker_trips", Int s.breaker_trips);
      ("skipped_breaker_open", Int s.skipped_breaker_open);
      ("retries_spent", Int s.retries_spent);
      ( "retry_budget",
        if s.retry_budget = max_int then Null else Int s.retry_budget );
      ("retries_exhausted", Int s.retries_exhausted);
      ("ci_outages", Int s.ci_outages);
      ("queue_drops", Int s.queue_drops);
      ("dropped_builds", Int s.dropped_builds);
      ("deferred_triggers", Int s.deferred_triggers) ]
