(** HTML rendering of the status page.

    The real dashboard (slides 18-19) is a web page served next to
    Jenkins; this module renders the same three views as a
    self-contained HTML document (inline CSS, no external assets) that
    can be written to disk and opened in a browser. *)

val html_escape : string -> string

val cell_class : Statuspage.cell -> string
(** CSS class: ["ok"], ["ko"], ["unstable"], ["missing"]. *)

val render : Statuspage.t -> string
(** The full document: per-test x per-site matrix with coloured cells,
    per-family summary with weather icons, monthly history, and the
    per-cluster confidence ranking. *)
