type t = {
  docs : (string, Simkit.Json.t) Hashtbl.t;
  mutable current_version : int;
  mutable snapshots : (int * float * (string * Simkit.Json.t) list) list;
}

let create () = { docs = Hashtbl.create 1024; current_version = 0; snapshots = [] }

let describe node =
  let open Simkit.Json in
  Obj
    [ ("uid", String node.Node.host);
      ("cluster", String node.Node.cluster_name);
      ("site", String node.Node.site_name);
      ("index", Int node.Node.index);
      ("hardware", Hardware.to_json node.Node.reference) ]

let publish_node t node = Hashtbl.replace t.docs node.Node.host (describe node)

let publish_all t ~now nodes =
  List.iter (publish_node t) nodes;
  t.current_version <- t.current_version + 1;
  let archive =
    Hashtbl.fold (fun host doc acc -> (host, doc) :: acc) t.docs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  t.snapshots <- (t.current_version, now, archive) :: t.snapshots

let get t host = Hashtbl.find_opt t.docs host
let version t = t.current_version

let snapshot t v =
  List.find_map
    (fun (version, time, docs) -> if version = v then Some (time, docs) else None)
    t.snapshots

(* Replace the value at [path] (object member names) inside a document. *)
let rec update_path json path f =
  match (json, path) with
  | _, [] -> f json
  | Simkit.Json.Obj members, key :: rest ->
    Simkit.Json.Obj
      (List.map
         (fun (k, v) -> if String.equal k key then (k, update_path v rest f) else (k, v))
         members)
  | other, _ -> other

let corrupt t ~rng ~host =
  match Hashtbl.find_opt t.docs host with
  | None -> None
  | Some doc ->
    let choice = Simkit.Prng.int rng 4 in
    let doc, what =
      match choice with
      | 0 ->
        ( update_path doc [ "hardware"; "memory"; "ram_gb" ] (function
            | Simkit.Json.Int n -> Simkit.Json.Int (n * 2)
            | v -> v),
          "ram_gb doubled in description" )
      | 1 ->
        ( update_path doc [ "hardware"; "cpu"; "cores_per_cpu" ] (function
            | Simkit.Json.Int n -> Simkit.Json.Int (n + 2)
            | v -> v),
          "cores_per_cpu wrong in description" )
      | 2 ->
        ( update_path doc [ "hardware"; "bios"; "version" ] (function
            | Simkit.Json.String _ -> Simkit.Json.String "0.0.0"
            | v -> v),
          "bios version wrong in description" )
      | _ ->
        ( update_path doc [ "hardware"; "settings"; "hyperthreading" ] (function
            | Simkit.Json.Bool b -> Simkit.Json.Bool (not b)
            | v -> v),
          "hyperthreading flag wrong in description" )
    in
    Hashtbl.replace t.docs host doc;
    Some what

let hosts t =
  Hashtbl.fold (fun host _ acc -> host :: acc) t.docs [] |> List.sort String.compare
