type t = {
  engine : Simkit.Engine.t;
  nodes : Node.t array;
  by_host : (string, Node.t) Hashtbl.t;
  network : Network.t;
  services : Services.t;
  refapi : Refapi.t;
  faults : Faults.t;
  console : Console.t;
}

let now t = Simkit.Engine.now t.engine

let reboot t node ~on_done =
  if node.Node.state = Node.Down then on_done ~ok:false
  else begin
    node.Node.state <- Node.Rebooting;
    let duration = Node.boot_duration node in
    ignore
      (Simkit.Engine.schedule t.engine ~delay:duration (fun _ ->
           node.Node.boot_count <- node.Node.boot_count + 1;
           if Node.boot_fails node then begin
             node.Node.state <- Node.Down;
             on_done ~ok:false
           end
           else begin
             node.Node.state <- Node.Alive;
             Console.log_boot t.console node;
             on_done ~ok:true
           end))
  end

(* Spontaneous reboots for nodes carrying the random-reboot fault.  One
   periodic sweep (every 10 min) samples per-node hazards, which keeps
   the event count independent of the fleet size. *)
let start_reboot_process t =
  let period = 600.0 in
  Simkit.Engine.every t.engine ~period (fun engine ->
      Array.iter
        (fun node ->
          match node.Node.behaviour.Node.random_reboot_mtbf with
          | Some mtbf when node.Node.state = Node.Alive ->
            let p = 1.0 -. exp (-.period /. mtbf) in
            if Simkit.Prng.chance node.Node.rng p then begin
              node.Node.unexpected_reboots <- node.Node.unexpected_reboots + 1;
              reboot t node ~on_done:(fun ~ok:_ -> ())
            end
          | _ -> ())
        t.nodes;
      ignore engine;
      true)

let build ?(seed = 42L) () =
  let engine = Simkit.Engine.create ~seed () in
  let master = Simkit.Engine.rng engine in
  let node_stream = Simkit.Prng.split master in
  let nodes =
    Inventory.clusters
    |> List.concat_map (fun spec ->
           let hw = Inventory.node_hardware spec in
           List.init spec.Inventory.nodes (fun i ->
               Node.make
                 ~rng:(Simkit.Prng.split node_stream)
                 ~site:spec.Inventory.site ~cluster:spec.Inventory.cluster
                 ~index:(i + 1) hw))
    |> Array.of_list
  in
  let by_host = Hashtbl.create (Array.length nodes) in
  Array.iter (fun n -> Hashtbl.replace by_host n.Node.host n) nodes;
  let network = Network.build ~rng:(Simkit.Prng.split master) (Array.to_list nodes) in
  let services =
    Services.create ~rng:(Simkit.Prng.split master) ~sites:Inventory.sites
  in
  let refapi = Refapi.create () in
  Refapi.publish_all refapi ~now:0.0 (Array.to_list nodes);
  let ctx =
    { Faults.nodes; by_host; network; services; refapi; flags = Hashtbl.create 64 }
  in
  let faults = Faults.create ~rng:(Simkit.Prng.split master) ctx in
  let console = Console.create () in
  Array.iter (Console.log_boot console) nodes;
  let t = { engine; nodes; by_host; network; services; refapi; faults; console } in
  start_reboot_process t;
  t

let node t host = Hashtbl.find t.by_host host
let find_node t host = Hashtbl.find_opt t.by_host host

let nodes_of_cluster t cluster =
  Array.to_list t.nodes
  |> List.filter (fun n -> String.equal n.Node.cluster_name cluster)
  |> List.sort (fun a b -> compare a.Node.index b.Node.index)

let nodes_of_site t site =
  Array.to_list t.nodes |> List.filter (fun n -> String.equal n.Node.site_name site)

let available_nodes_of_cluster t cluster =
  nodes_of_cluster t cluster |> List.filter Node.is_available

let site_of_cluster cluster =
  match Inventory.find_cluster cluster with
  | Some spec -> spec.Inventory.site
  | None -> raise Not_found

let pp_summary ppf t =
  let cores =
    Array.fold_left (fun acc n -> acc + Hardware.total_cores n.Node.reference) 0 t.nodes
  in
  Format.fprintf ppf "%d sites, %d clusters, %d nodes, %d cores"
    (List.length Inventory.sites)
    (List.length Inventory.clusters)
    (Array.length t.nodes) cores
