(** Site-level infrastructure services.

    The paper distinguishes well-tested core services from experimental
    ones ("testbeds are always trying to innovate, but adoption is
    generally slow"); experimental services flap more.  Tests exercise
    services through {!use}, which samples a success depending on the
    service's current state. *)

type kind =
  | Oar  (** resource manager front-end *)
  | Kadeploy
  | Kavlan
  | Console  (** serial console (conman) *)
  | Kwapi  (** power monitoring *)
  | Api  (** site REST API *)
  | Frontend  (** ssh front-end + command-line tools *)

type state = Up | Degraded | Down

type t

val all_kinds : kind list
val kind_to_string : kind -> string
val is_experimental : kind -> bool
(** Kavlan and Kwapi are the experimental ones in 2017. *)

val create : rng:Simkit.Prng.t -> sites:string list -> t

val state : t -> site:string -> kind -> state
val set_state : t -> site:string -> kind -> state -> unit

val use : t -> site:string -> kind -> bool
(** One interaction with the service: always succeeds when {!Up}, fails
    with probability 0.4 when {!Degraded}, always fails when {!Down}. *)

val degraded_or_down : t -> (string * kind * state) list
(** All non-Up service instances, sorted. *)

val repair : t -> site:string -> kind -> unit
(** Operator action: back to {!Up}. *)
