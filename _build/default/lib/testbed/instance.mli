(** A fully built testbed instance: nodes, network, services, Reference
    API, fault engine, and the physical-event processes (spontaneous
    reboots) wired into a simulation engine. *)

type t = {
  engine : Simkit.Engine.t;
  nodes : Node.t array;
  by_host : (string, Node.t) Hashtbl.t;
  network : Network.t;
  services : Services.t;
  refapi : Refapi.t;
  faults : Faults.t;
  console : Console.t;
}

val build : ?seed:int64 -> unit -> t
(** Construct the Grid'5000-2017 instance from {!Inventory.clusters},
    publish the Reference API, and start the background reboot process.
    All nodes start healthy, in the standard environment. *)

val node : t -> string -> Node.t
(** @raise Not_found for unknown hosts. *)

val find_node : t -> string -> Node.t option

val nodes_of_cluster : t -> string -> Node.t list
(** In index order. *)

val nodes_of_site : t -> string -> Node.t list

val available_nodes_of_cluster : t -> string -> Node.t list

val now : t -> float

val reboot : t -> Node.t -> on_done:(ok:bool -> unit) -> unit
(** Take the node through a reboot: unavailable while {!Node.Rebooting},
    then either Alive (callback [ok:true]) or Down ([ok:false]). *)

val site_of_cluster : string -> string
(** @raise Not_found for unknown clusters. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line inventory summary (the paper's "8 sites, 32 clusters,
    894 nodes, 8490 cores"). *)
