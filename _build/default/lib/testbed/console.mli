(** Serial console service (conman substitute).

    Every node's serial output is captured in a bounded ring: boot
    banners, kernel lines, login prompt.  The [console] test family reads
    the tail through the site service and checks that a freshly written
    marker echoes back — a broken console (node-side fault or site
    service outage) fails that round-trip. *)

type t

val create : unit -> t

val log_line : t -> host:string -> string -> unit
(** Append one line to the host's ring (capped at 200 lines). *)

val log_boot : t -> Node.t -> unit
(** Append the canonical boot banner of the node's current environment. *)

val tail : t -> host:string -> int -> string list
(** Last [n] captured lines (oldest first); empty for unknown hosts. *)

val roundtrip :
  t -> services:Services.t -> Node.t -> marker:string -> bool
(** Write [marker] through the console and read it back: [false] when
    the site console service is unusable, the node's console hardware is
    broken, or the node is down. *)
