type cluster_spec = {
  cluster : string;
  site : string;
  vendor : Hardware.vendor;
  nodes : int;
  cpus : int;
  cores_per_cpu : int;
  freq_ghz : float;
  cpu_model : string;
  microarch : string;
  ram_gb : int;
  disk_count : int;
  disk_model : string;
  disk_size_gb : int;
  disk_firmware : string;
  nic_rate_gbps : float;
  has_ib : bool;
  has_gpu : bool;
  year : int;
}

let sites =
  [ "grenoble"; "lille"; "luxembourg"; "lyon"; "nancy"; "nantes"; "rennes"; "sophia" ]

let wattmeter_sites = [ "grenoble"; "lyon"; "nancy"; "nantes"; "rennes"; "sophia" ]

let spec ~cluster ~site ~vendor ~nodes ~cpus ~cores_per_cpu ~freq_ghz ~cpu_model
    ~microarch ~ram_gb ~disk_count ~disk_model ~disk_size_gb ~disk_firmware
    ~nic_rate_gbps ~has_ib ~has_gpu ~year =
  {
    cluster; site; vendor; nodes; cpus; cores_per_cpu; freq_ghz; cpu_model;
    microarch; ram_gb; disk_count; disk_model; disk_size_gb; disk_firmware;
    nic_rate_gbps; has_ib; has_gpu; year;
  }

(* 32 clusters; sums are pinned by tests: 894 nodes, 8490 cores. *)
let clusters =
  [
    (* grenoble *)
    spec ~cluster:"genepi" ~site:"grenoble" ~vendor:Hardware.Bull ~nodes:34 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.5 ~cpu_model:"Xeon E5420" ~microarch:"Harpertown"
      ~ram_gb:8 ~disk_count:1 ~disk_model:"ST3160815AS" ~disk_size_gb:160
      ~disk_firmware:"GA0D" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2008;
    spec ~cluster:"edel" ~site:"grenoble" ~vendor:Hardware.Bull ~nodes:40 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.27 ~cpu_model:"Xeon E5520" ~microarch:"Nehalem"
      ~ram_gb:24 ~disk_count:1 ~disk_model:"C400-MTFDDAA064MAM" ~disk_size_gb:64
      ~disk_firmware:"040H" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2009;
    spec ~cluster:"adonis" ~site:"grenoble" ~vendor:Hardware.Bull ~nodes:10 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.27 ~cpu_model:"Xeon E5520" ~microarch:"Nehalem"
      ~ram_gb:24 ~disk_count:1 ~disk_model:"WD2502ABYS" ~disk_size_gb:250
      ~disk_firmware:"02.03B03" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:true ~year:2009;
    (* lille *)
    spec ~cluster:"chetemi" ~site:"lille" ~vendor:Hardware.Dell ~nodes:15 ~cpus:2
      ~cores_per_cpu:10 ~freq_ghz:2.2 ~cpu_model:"Xeon E5-2630 v4" ~microarch:"Broadwell"
      ~ram_gb:256 ~disk_count:2 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2016;
    spec ~cluster:"chifflet" ~site:"lille" ~vendor:Hardware.Dell ~nodes:8 ~cpus:2
      ~cores_per_cpu:14 ~freq_ghz:2.4 ~cpu_model:"Xeon E5-2680 v4" ~microarch:"Broadwell"
      ~ram_gb:768 ~disk_count:2 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:true ~year:2016;
    spec ~cluster:"chinqchint" ~site:"lille" ~vendor:Hardware.Dell ~nodes:40 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.83 ~cpu_model:"Xeon E5440" ~microarch:"Harpertown"
      ~ram_gb:8 ~disk_count:1 ~disk_model:"WD2502ABYS" ~disk_size_gb:250
      ~disk_firmware:"02.03B03" ~nic_rate_gbps:1.0 ~has_ib:false ~has_gpu:false ~year:2008;
    spec ~cluster:"chimint" ~site:"lille" ~vendor:Hardware.Hp ~nodes:9 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.4 ~cpu_model:"Xeon E5530" ~microarch:"Nehalem"
      ~ram_gb:16 ~disk_count:1 ~disk_model:"MBD2300RC" ~disk_size_gb:300
      ~disk_firmware:"5601" ~nic_rate_gbps:1.0 ~has_ib:false ~has_gpu:false ~year:2009;
    (* luxembourg *)
    spec ~cluster:"granduc" ~site:"luxembourg" ~vendor:Hardware.Dell ~nodes:16 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.0 ~cpu_model:"Xeon L5335" ~microarch:"Clovertown"
      ~ram_gb:16 ~disk_count:1 ~disk_model:"ST9250610NS" ~disk_size_gb:250
      ~disk_firmware:"AA0B" ~nic_rate_gbps:1.0 ~has_ib:false ~has_gpu:false ~year:2008;
    spec ~cluster:"petitprince" ~site:"luxembourg" ~vendor:Hardware.Dell ~nodes:16 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.0 ~cpu_model:"Xeon E5-2630L" ~microarch:"SandyBridge"
      ~ram_gb:32 ~disk_count:1 ~disk_model:"ST9250610NS" ~disk_size_gb:250
      ~disk_firmware:"AA0B" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2013;
    spec ~cluster:"nyx" ~site:"luxembourg" ~vendor:Hardware.Hp ~nodes:8 ~cpus:1
      ~cores_per_cpu:4 ~freq_ghz:2.26 ~cpu_model:"Xeon X3440" ~microarch:"Lynnfield"
      ~ram_gb:16 ~disk_count:1 ~disk_model:"MM0500EANCR" ~disk_size_gb:500
      ~disk_firmware:"HPG2" ~nic_rate_gbps:1.0 ~has_ib:false ~has_gpu:false ~year:2010;
    (* lyon *)
    spec ~cluster:"sagittaire" ~site:"lyon" ~vendor:Hardware.Sun ~nodes:79 ~cpus:2
      ~cores_per_cpu:1 ~freq_ghz:2.4 ~cpu_model:"Opteron 250" ~microarch:"K8"
      ~ram_gb:2 ~disk_count:1 ~disk_model:"ST373207LW" ~disk_size_gb:73
      ~disk_firmware:"0003" ~nic_rate_gbps:1.0 ~has_ib:false ~has_gpu:false ~year:2006;
    spec ~cluster:"taurus" ~site:"lyon" ~vendor:Hardware.Dell ~nodes:16 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.3 ~cpu_model:"Xeon E5-2630" ~microarch:"SandyBridge"
      ~ram_gb:32 ~disk_count:2 ~disk_model:"WD3000BKHG" ~disk_size_gb:300
      ~disk_firmware:"D1S4" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2012;
    spec ~cluster:"orion" ~site:"lyon" ~vendor:Hardware.Dell ~nodes:4 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.3 ~cpu_model:"Xeon E5-2630" ~microarch:"SandyBridge"
      ~ram_gb:32 ~disk_count:2 ~disk_model:"WD3000BKHG" ~disk_size_gb:300
      ~disk_firmware:"D1S4" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:true ~year:2012;
    spec ~cluster:"hercule" ~site:"lyon" ~vendor:Hardware.Dell ~nodes:4 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.3 ~cpu_model:"Xeon E5-2620" ~microarch:"SandyBridge"
      ~ram_gb:32 ~disk_count:2 ~disk_model:"WD3000BKHG" ~disk_size_gb:300
      ~disk_firmware:"D1S4" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2012;
    spec ~cluster:"nova" ~site:"lyon" ~vendor:Hardware.Dell ~nodes:23 ~cpus:2
      ~cores_per_cpu:8 ~freq_ghz:2.1 ~cpu_model:"Xeon E5-2620 v4" ~microarch:"Broadwell"
      ~ram_gb:64 ~disk_count:1 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2016;
    (* nancy *)
    spec ~cluster:"graphene" ~site:"nancy" ~vendor:Hardware.Carri ~nodes:60 ~cpus:1
      ~cores_per_cpu:4 ~freq_ghz:2.53 ~cpu_model:"Xeon X3440" ~microarch:"Lynnfield"
      ~ram_gb:16 ~disk_count:1 ~disk_model:"ST3320418AS" ~disk_size_gb:320
      ~disk_firmware:"CC38" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2010;
    spec ~cluster:"griffon" ~site:"nancy" ~vendor:Hardware.Carri ~nodes:50 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.5 ~cpu_model:"Xeon L5420" ~microarch:"Harpertown"
      ~ram_gb:16 ~disk_count:1 ~disk_model:"ST3320620AS" ~disk_size_gb:320
      ~disk_firmware:"3.AAK" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2009;
    spec ~cluster:"graphite" ~site:"nancy" ~vendor:Hardware.Xyratex ~nodes:4 ~cpus:2
      ~cores_per_cpu:8 ~freq_ghz:2.0 ~cpu_model:"Xeon E5-2650" ~microarch:"SandyBridge"
      ~ram_gb:256 ~disk_count:1 ~disk_model:"INTEL SSDSC2BB30" ~disk_size_gb:300
      ~disk_firmware:"D2010370" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2013;
    spec ~cluster:"grimoire" ~site:"nancy" ~vendor:Hardware.Dell ~nodes:8 ~cpus:2
      ~cores_per_cpu:8 ~freq_ghz:2.4 ~cpu_model:"Xeon E5-2630 v3" ~microarch:"Haswell"
      ~ram_gb:128 ~disk_count:5 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2015;
    spec ~cluster:"grisou" ~site:"nancy" ~vendor:Hardware.Dell ~nodes:51 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.4 ~cpu_model:"Xeon E5-2620 v3" ~microarch:"Haswell"
      ~ram_gb:128 ~disk_count:2 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2015;
    spec ~cluster:"graoully" ~site:"nancy" ~vendor:Hardware.Dell ~nodes:16 ~cpus:2
      ~cores_per_cpu:8 ~freq_ghz:2.4 ~cpu_model:"Xeon E5-2630 v3" ~microarch:"Haswell"
      ~ram_gb:128 ~disk_count:2 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:true ~has_gpu:false ~year:2015;
    spec ~cluster:"grele" ~site:"nancy" ~vendor:Hardware.Dell ~nodes:14 ~cpus:2
      ~cores_per_cpu:12 ~freq_ghz:2.2 ~cpu_model:"Xeon E5-2650 v4" ~microarch:"Broadwell"
      ~ram_gb:128 ~disk_count:2 ~disk_model:"ST600MM0099" ~disk_size_gb:600
      ~disk_firmware:"ST31" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:true ~year:2017;
    spec ~cluster:"grimani" ~site:"nancy" ~vendor:Hardware.Dell ~nodes:6 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.2 ~cpu_model:"Xeon E5-2603 v4" ~microarch:"Broadwell"
      ~ram_gb:64 ~disk_count:1 ~disk_model:"ST1000NX0423" ~disk_size_gb:1000
      ~disk_firmware:"NA05" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:true ~year:2016;
    (* nantes *)
    spec ~cluster:"econome" ~site:"nantes" ~vendor:Hardware.Dell ~nodes:22 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.2 ~cpu_model:"Xeon E5-2660" ~microarch:"SandyBridge"
      ~ram_gb:64 ~disk_count:1 ~disk_model:"WD2000FYYZ" ~disk_size_gb:2000
      ~disk_firmware:"01.01K03" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2013;
    spec ~cluster:"ecotype" ~site:"nantes" ~vendor:Hardware.Dell ~nodes:48 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:1.8 ~cpu_model:"Xeon E5-2630L v4" ~microarch:"Broadwell"
      ~ram_gb:128 ~disk_count:1 ~disk_model:"SSDSC2BB40" ~disk_size_gb:400
      ~disk_firmware:"D2010370" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2017;
    (* rennes *)
    spec ~cluster:"paravance" ~site:"rennes" ~vendor:Hardware.Dell ~nodes:60 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.4 ~cpu_model:"Xeon E5-2630 v3" ~microarch:"Haswell"
      ~ram_gb:128 ~disk_count:2 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2014;
    spec ~cluster:"parapluie" ~site:"rennes" ~vendor:Hardware.Hp ~nodes:40 ~cpus:2
      ~cores_per_cpu:8 ~freq_ghz:1.7 ~cpu_model:"Opteron 6164 HE" ~microarch:"MagnyCours"
      ~ram_gb:48 ~disk_count:1 ~disk_model:"MM0500EANCR" ~disk_size_gb:500
      ~disk_firmware:"HPG2" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2010;
    spec ~cluster:"parapide" ~site:"rennes" ~vendor:Hardware.Sun ~nodes:20 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.93 ~cpu_model:"Xeon X5570" ~microarch:"Nehalem"
      ~ram_gb:24 ~disk_count:1 ~disk_model:"ST9500530NS" ~disk_size_gb:500
      ~disk_firmware:"SN03" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2009;
    spec ~cluster:"parasilo" ~site:"rennes" ~vendor:Hardware.Dell ~nodes:28 ~cpus:2
      ~cores_per_cpu:8 ~freq_ghz:2.4 ~cpu_model:"Xeon E5-2630 v3" ~microarch:"Haswell"
      ~ram_gb:128 ~disk_count:6 ~disk_model:"ST600MM0088" ~disk_size_gb:600
      ~disk_firmware:"N004" ~nic_rate_gbps:10.0 ~has_ib:false ~has_gpu:false ~year:2015;
    (* sophia *)
    spec ~cluster:"suno" ~site:"sophia" ~vendor:Hardware.Sun ~nodes:45 ~cpus:2
      ~cores_per_cpu:4 ~freq_ghz:2.26 ~cpu_model:"Xeon E5520" ~microarch:"Nehalem"
      ~ram_gb:32 ~disk_count:1 ~disk_model:"ST9500530NS" ~disk_size_gb:500
      ~disk_firmware:"SN03" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2009;
    spec ~cluster:"uvb" ~site:"sophia" ~vendor:Hardware.Sun ~nodes:44 ~cpus:2
      ~cores_per_cpu:6 ~freq_ghz:2.53 ~cpu_model:"Xeon X5670" ~microarch:"Westmere"
      ~ram_gb:96 ~disk_count:1 ~disk_model:"ST9250610NS" ~disk_size_gb:250
      ~disk_firmware:"AA0B" ~nic_rate_gbps:1.0 ~has_ib:true ~has_gpu:false ~year:2011;
    spec ~cluster:"helios" ~site:"sophia" ~vendor:Hardware.Sun ~nodes:56 ~cpus:2
      ~cores_per_cpu:2 ~freq_ghz:2.2 ~cpu_model:"Opteron 275" ~microarch:"K8"
      ~ram_gb:4 ~disk_count:1 ~disk_model:"ST373207LW" ~disk_size_gb:73
      ~disk_firmware:"0003" ~nic_rate_gbps:1.0 ~has_ib:false ~has_gpu:false ~year:2006;
  ]

let clusters_of_site site = List.filter (fun c -> String.equal c.site site) clusters
let find_cluster name = List.find_opt (fun c -> String.equal c.cluster name) clusters
let total_nodes = List.fold_left (fun acc c -> acc + c.nodes) 0 clusters

let total_cores =
  List.fold_left (fun acc c -> acc + (c.nodes * c.cpus * c.cores_per_cpu)) 0 clusters

let node_hardware s =
  (* Bind every spec field before opening [Hardware]: both record types
     share field names (disk_model, ...), and the open would win. *)
  let { cluster = _; site = _; vendor; nodes = _; cpus; cores_per_cpu; freq_ghz;
        cpu_model = model; microarch = arch; ram_gb = ram; disk_count;
        disk_model = dmodel; disk_size_gb = dsize; disk_firmware = dfw;
        nic_rate_gbps = rate; has_ib; has_gpu; year } = s
  in
  let open Hardware in
  let disk i =
    {
      disk_model = dmodel;
      size_gb = dsize;
      firmware = dfw;
      write_cache = true;
      read_cache = true;
      nominal_mb_s = (if i = 0 then 130.0 else 120.0) +. (10.0 *. float_of_int (year - 2006));
    }
  in
  let nic i =
    {
      nic_model = (if rate >= 10.0 then "Intel 82599ES" else "Broadcom BCM5716");
      device = Printf.sprintf "eth%d" i;
      rate_gbps = rate;
      nic_driver = (if rate >= 10.0 then "ixgbe" else "bnx2");
      nic_firmware = "7.10.18";
    }
  in
  {
    cpu =
      { cpu_model = model; microarch = arch; cores_per_cpu; base_freq_ghz = freq_ghz };
    cpu_count = cpus;
    settings = default_settings;
    memory = { ram_gb = ram; dimm_count = Stdlib.max 2 (ram / 8) };
    disks = List.init disk_count disk;
    nics = List.init 2 nic;
    bios =
      {
        bios_version = Printf.sprintf "%d.%d.%d" (year mod 10) 2 1;
        bios_vendor = vendor;
        boot_mode = "bios";
      };
    gpu = has_gpu;
    ib =
      (if has_ib then
         Some { ib_rate_gbps = (if year >= 2014 then 56.0 else 20.0); ofed_version = "3.1" }
       else None);
  }

let age_factor spec =
  let age = Stdlib.max 0 (2017 - spec.year) in
  Float.min 3.0 (1.0 +. (0.2 *. float_of_int age))
