(** The Reference API: the machine-parsable (JSON) description of the
    testbed, with archived versions ("state of the testbed 6 months
    ago?").

    Published documents are derived from each node's {e reference}
    hardware.  They can drift from reality in two ways: the node's actual
    hardware changes (fault injection) or the published document itself is
    corrupted (description error after maintenance).  g5k-checks compares
    acquired reality against these documents. *)

type t

val create : unit -> t

val describe : Node.t -> Simkit.Json.t
(** Canonical description of a node from its reference hardware, including
    identity and network cabling-free fields. *)

val publish_node : t -> Node.t -> unit
(** Refresh one node's published document from its reference hardware. *)

val publish_all : t -> now:float -> Node.t list -> unit
(** Re-publish every node and archive a new version. *)

val get : t -> string -> Simkit.Json.t option
(** Currently published document for a host. *)

val version : t -> int

val snapshot : t -> int -> (float * (string * Simkit.Json.t) list) option
(** Archived version: publication time and all documents. *)

val corrupt : t -> rng:Simkit.Prng.t -> host:string -> string option
(** Introduce a plausible description error in the host's published
    document (wrong RAM size, wrong disk firmware, wrong NIC rate...).
    Returns a human-readable description of the error, or [None] if the
    host is unknown. *)

val hosts : t -> string list
