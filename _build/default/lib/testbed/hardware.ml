type vendor = Dell | Hp | Bull | Sun | Carri | Xyratex

type cpu = {
  cpu_model : string;
  microarch : string;
  cores_per_cpu : int;
  base_freq_ghz : float;
}

type cpu_settings = {
  c_states : bool;
  hyperthreading : bool;
  turbo_boost : bool;
  power_governor : string;
}

type disk = {
  disk_model : string;
  size_gb : int;
  firmware : string;
  write_cache : bool;
  read_cache : bool;
  nominal_mb_s : float;
}

type nic = {
  nic_model : string;
  device : string;
  rate_gbps : float;
  nic_driver : string;
  nic_firmware : string;
}

type infiniband = { ib_rate_gbps : float; ofed_version : string }
type memory = { ram_gb : int; dimm_count : int }
type bios = { bios_version : string; bios_vendor : vendor; boot_mode : string }

type t = {
  cpu : cpu;
  cpu_count : int;
  settings : cpu_settings;
  memory : memory;
  disks : disk list;
  nics : nic list;
  bios : bios;
  gpu : bool;
  ib : infiniband option;
}

let vendor_to_string = function
  | Dell -> "dell"
  | Hp -> "hp"
  | Bull -> "bull"
  | Sun -> "sun"
  | Carri -> "carri"
  | Xyratex -> "xyratex"

let total_cores t = t.cpu_count * t.cpu.cores_per_cpu

let default_settings =
  { c_states = false; hyperthreading = false; turbo_boost = false;
    power_governor = "performance" }

let cpu_perf_factor s =
  (* Each drifted setting perturbs measured compute performance by a few
     percent.  Turbo boost *increases* burst throughput (and variance),
     which is just as harmful to reproducibility as a slowdown. *)
  let f = 1.0 in
  let f = if s.c_states then f *. 0.95 else f in
  let f = if s.hyperthreading then f *. 0.97 else f in
  let f = if s.turbo_boost then f *. 1.06 else f in
  let f = if not (String.equal s.power_governor "performance") then f *. 0.93 else f in
  f

let disk_bandwidth d =
  let f = 1.0 in
  let f = if not d.write_cache then f *. 0.55 else f in
  let f = if not d.read_cache then f *. 0.85 else f in
  (* Firmware revisions other than the qualified one lose ~18%, the class
     of bug the paper reports as "different disk performance due to
     different disk firmware versions". *)
  let f = if String.length d.firmware > 0 && d.firmware.[0] = '~' then f *. 0.82 else f in
  d.nominal_mb_s *. f

let settings_to_json s =
  Simkit.Json.Obj
    [ ("c_states", Simkit.Json.Bool s.c_states);
      ("hyperthreading", Simkit.Json.Bool s.hyperthreading);
      ("turbo_boost", Simkit.Json.Bool s.turbo_boost);
      ("power_governor", Simkit.Json.String s.power_governor) ]

let disk_to_json d =
  Simkit.Json.Obj
    [ ("model", Simkit.Json.String d.disk_model);
      ("size_gb", Simkit.Json.Int d.size_gb);
      ("firmware", Simkit.Json.String d.firmware);
      ("write_cache", Simkit.Json.Bool d.write_cache);
      ("read_cache", Simkit.Json.Bool d.read_cache) ]

let nic_to_json n =
  Simkit.Json.Obj
    [ ("model", Simkit.Json.String n.nic_model);
      ("device", Simkit.Json.String n.device);
      ("rate_gbps", Simkit.Json.Float n.rate_gbps);
      ("driver", Simkit.Json.String n.nic_driver);
      ("firmware", Simkit.Json.String n.nic_firmware) ]

let to_json t =
  let open Simkit.Json in
  Obj
    [ ( "cpu",
        Obj
          [ ("model", String t.cpu.cpu_model);
            ("microarch", String t.cpu.microarch);
            ("cores_per_cpu", Int t.cpu.cores_per_cpu);
            ("base_freq_ghz", Float t.cpu.base_freq_ghz);
            ("count", Int t.cpu_count) ] );
      ("settings", settings_to_json t.settings);
      ( "memory",
        Obj [ ("ram_gb", Int t.memory.ram_gb); ("dimm_count", Int t.memory.dimm_count) ] );
      ("disks", List (List.map disk_to_json t.disks));
      ("nics", List (List.map nic_to_json t.nics));
      ( "bios",
        Obj
          [ ("version", String t.bios.bios_version);
            ("vendor", String (vendor_to_string t.bios.bios_vendor));
            ("boot_mode", String t.bios.boot_mode) ] );
      ("gpu", Bool t.gpu);
      ( "infiniband",
        match t.ib with
        | None -> Null
        | Some ib ->
          Obj
            [ ("rate_gbps", Float ib.ib_rate_gbps);
              ("ofed_version", String ib.ofed_version) ] ) ]

let equal a b = Simkit.Json.equal (to_json a) (to_json b)

let pp ppf t =
  Format.fprintf ppf "%dx %s (%d cores, %.1f GHz), %d GB RAM, %d disks, %d nics%s%s"
    t.cpu_count t.cpu.cpu_model (total_cores t) t.cpu.base_freq_ghz t.memory.ram_gb
    (List.length t.disks) (List.length t.nics)
    (if t.gpu then ", gpu" else "")
    (match t.ib with Some _ -> ", infiniband" | None -> "")
