(** Hardware description of a testbed node.

    Two copies of this description exist for every node: the {e reference}
    one, published by the Reference API, and the {e actual} one, mutated by
    the fault-injection engine.  g5k-checks compares the two; performance
    tests observe the actual one through timing models. *)

type vendor = Dell | Hp | Bull | Sun | Carri | Xyratex
(** Chassis vendor.  [dellbios] checks only run on {!Dell} clusters. *)

type cpu = {
  cpu_model : string;
  microarch : string;
  cores_per_cpu : int;
  base_freq_ghz : float;
}

type cpu_settings = {
  c_states : bool;  (** power-saving C-states enabled *)
  hyperthreading : bool;
  turbo_boost : bool;
  power_governor : string;  (** ["performance"] or ["ondemand"] *)
}

type disk = {
  disk_model : string;
  size_gb : int;
  firmware : string;
  write_cache : bool;
  read_cache : bool;
  nominal_mb_s : float;  (** healthy sequential bandwidth *)
}

type nic = {
  nic_model : string;
  device : string;  (** e.g. ["eth0"] *)
  rate_gbps : float;
  nic_driver : string;
  nic_firmware : string;
}

type infiniband = {
  ib_rate_gbps : float;
  ofed_version : string;
}

type memory = { ram_gb : int; dimm_count : int }

type bios = { bios_version : string; bios_vendor : vendor; boot_mode : string }

type t = {
  cpu : cpu;
  cpu_count : int;
  settings : cpu_settings;
  memory : memory;
  disks : disk list;
  nics : nic list;
  bios : bios;
  gpu : bool;
  ib : infiniband option;
}

val vendor_to_string : vendor -> string

val total_cores : t -> int
(** [cpu_count * cores_per_cpu]. *)

val default_settings : cpu_settings
(** The policy-mandated settings: C-states off, HT off, turbo off,
    performance governor — the configuration experimenters expect. *)

val cpu_perf_factor : cpu_settings -> float
(** Multiplicative factor on compute throughput relative to the mandated
    settings; the drifted configurations of the paper's bug list cost a
    few percent each (the "5% decrease ⇒ wrong conclusions" scenario). *)

val disk_bandwidth : disk -> float
(** Observable sequential bandwidth in MB/s given firmware and cache
    configuration.  Old firmware and disabled write cache each cut
    throughput, which is how the [disk] test detects them. *)

val to_json : t -> Simkit.Json.t
(** Canonical JSON rendering, the format served by the Reference API and
    re-acquired by the g5k-checks OHAI substitute. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
