(** Static description of the simulated Grid'5000 instance, frozen at the
    paper's 2017 inventory: 8 sites, 32 clusters, 894 nodes, 8490 cores.

    The numbers are synthetic (the real per-cluster inventory is not in
    the paper) but constrained to reproduce every aggregate the paper
    states, plus the family cardinalities needed for the 751-configuration
    test catalog: 18 Dell clusters (dellbios), 10 InfiniBand clusters
    (mpigraph), wattmeters on 6 sites (kwapi). *)

type cluster_spec = {
  cluster : string;
  site : string;
  vendor : Hardware.vendor;
  nodes : int;
  cpus : int;  (** sockets per node *)
  cores_per_cpu : int;
  freq_ghz : float;
  cpu_model : string;
  microarch : string;
  ram_gb : int;
  disk_count : int;
  disk_model : string;
  disk_size_gb : int;
  disk_firmware : string;
  nic_rate_gbps : float;
  has_ib : bool;
  has_gpu : bool;
  year : int;  (** installation year; older hardware is more fault-prone *)
}

val sites : string list
(** The 8 sites in canonical order. *)

val wattmeter_sites : string list
(** The 6 sites instrumented with Kwapi power probes. *)

val clusters : cluster_spec list
(** All 32 cluster specifications. *)

val clusters_of_site : string -> cluster_spec list

val find_cluster : string -> cluster_spec option

val total_nodes : int
val total_cores : int

val node_hardware : cluster_spec -> Hardware.t
(** Reference hardware of a (healthy) node of this cluster. *)

val age_factor : cluster_spec -> float
(** Fault-susceptibility multiplier in [\[1, 3\]]; grows with hardware
    age, reflecting "hardware of different age, from different vendors". *)
