(** Network and cabling model.

    Each node has a cable into a port of its site's switch; the Reference
    API describes that mapping.  The cabling fault of the paper ("cabling
    issue ⇒ wrong measurements by testbed monitoring service") is modelled
    by swapping two nodes' actual ports while the description keeps the
    old mapping.  A dedicated 10-Gbps backbone connects the sites. *)

type port = { switch : string; port_no : int }

type t

val build : rng:Simkit.Prng.t -> Node.t list -> t
(** Wire every node: one switch per group of up to 48 nodes per site,
    actual cabling initially equal to the reference. *)

val reference_port : t -> string -> port option
(** Described port of a host. *)

val actual_port : t -> string -> port option
(** Ground-truth port of a host (differs after a cabling fault). *)

val swap_cables : t -> string -> string -> unit
(** [swap_cables t host_a host_b] exchanges the two hosts' actual ports.
    Swapping a host with itself is a no-op.
    @raise Invalid_argument if either host is unknown. *)

val cabling_consistent : t -> string -> bool
(** Whether the host's actual port matches the description. *)

val miswired_hosts : t -> string list
(** All hosts whose cabling deviates from the description. *)

val repair_host : t -> string -> unit
(** Restore a host's actual port to the reference mapping. *)

val latency_ms : t -> Node.t -> Node.t -> float
(** One-way latency: ~0.05 ms same switch, ~0.2 ms same site,
    ~10 ms across the backbone (deterministic per pair). *)

val bandwidth_gbps : t -> Node.t -> Node.t -> float
(** End-to-end TCP-visible bandwidth, limited by the slower NIC and by
    the 10-Gbps backbone across sites. *)

val backbone_gbps : t -> float
