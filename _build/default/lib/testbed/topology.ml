type device = Host of string | Switch of string | Router of string

type link = { link_from : device; link_to : device; capacity_gbps : float }

type t = {
  host_switch : (string, string) Hashtbl.t;  (* host -> ToR name *)
  host_rate : (string, float) Hashtbl.t;  (* host NIC rate *)
  switch_router : (string, string) Hashtbl.t;  (* ToR -> router *)
  ring : string array;  (* routers in site order *)
  site_of_router : (string, string) Hashtbl.t;
}

let device_name = function Host h -> h | Switch s -> s | Router r -> r

let router_of_site site = "router-" ^ site

let build network nodes =
  let t =
    {
      host_switch = Hashtbl.create 1024;
      host_rate = Hashtbl.create 1024;
      switch_router = Hashtbl.create 64;
      ring = Array.of_list (List.map router_of_site Inventory.sites);
      site_of_router = Hashtbl.create 16;
    }
  in
  List.iter
    (fun site -> Hashtbl.replace t.site_of_router (router_of_site site) site)
    Inventory.sites;
  List.iter
    (fun node ->
      let host = node.Node.host in
      (match Network.actual_port network host with
       | Some port ->
         Hashtbl.replace t.host_switch host port.Network.switch;
         (* The ToR belongs to the site encoded in its name gw-<site>-k. *)
         (match String.split_on_char '-' port.Network.switch with
          | "gw" :: site :: _ ->
            Hashtbl.replace t.switch_router port.Network.switch (router_of_site site)
          | _ -> ())
       | None -> ());
      let rate =
        match node.Node.actual.Hardware.nics with
        | nic :: _ -> nic.Hardware.rate_gbps
        | [] -> 1.0
      in
      Hashtbl.replace t.host_rate host rate)
    nodes;
  t

let switch_of t host =
  match Hashtbl.find_opt t.host_switch host with
  | Some s -> s
  | None -> raise Not_found

let router_of_switch t switch =
  match Hashtbl.find_opt t.switch_router switch with
  | Some r -> r
  | None -> raise Not_found

let ring_index t router =
  let rec find i =
    if i >= Array.length t.ring then raise Not_found
    else if String.equal t.ring.(i) router then i
    else find (i + 1)
  in
  find 0

(* Routers between two ring positions, travelling the shorter way. *)
let ring_path t from_router to_router =
  if String.equal from_router to_router then [ from_router ]
  else begin
    let n = Array.length t.ring in
    let a = ring_index t from_router and b = ring_index t to_router in
    let clockwise = (b - a + n) mod n in
    let counter = (a - b + n) mod n in
    let step, count = if clockwise <= counter then (1, clockwise) else (n - 1, counter) in
    List.init (count + 1) (fun i -> t.ring.((a + (i * step)) mod n))
  end

let path t ~from ~to_ =
  if String.equal from to_ then [ Host from ]
  else begin
    let sw_a = switch_of t from and sw_b = switch_of t to_ in
    if String.equal sw_a sw_b then [ Host from; Switch sw_a; Host to_ ]
    else begin
      let r_a = router_of_switch t sw_a and r_b = router_of_switch t sw_b in
      let routers = List.map (fun r -> Router r) (ring_path t r_a r_b) in
      (Host from :: Switch sw_a :: routers) @ [ Switch sw_b; Host to_ ]
    end
  end

let hops t ~from ~to_ = List.length (path t ~from ~to_) - 1

let host_rate t host = Option.value ~default:1.0 (Hashtbl.find_opt t.host_rate host)

(* Capacities: host-ToR link = NIC rate; ToR-router uplink = 40 Gbps;
   backbone segments = 10 Gbps. *)
let links_of_path t devices =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.map
    (fun (a, b) ->
      let capacity_gbps =
        match (a, b) with
        | Host h, Switch _ | Switch _, Host h -> host_rate t h
        | Switch _, Router _ | Router _, Switch _ -> 40.0
        | Router _, Router _ -> 10.0
        | _ -> 10.0
      in
      { link_from = a; link_to = b; capacity_gbps })
    (pairs devices)

let bottleneck_gbps t ~from ~to_ =
  match links_of_path t (path t ~from ~to_) with
  | [] -> infinity
  | links -> List.fold_left (fun acc l -> Float.min acc l.capacity_gbps) infinity links

let latency_estimate_ms t ~from ~to_ =
  let devices = path t ~from ~to_ in
  let backbone =
    let rec count = function
      | Router _ :: (Router _ :: _ as rest) -> 1 + count rest
      | _ :: rest -> count rest
      | [] -> 0
    in
    count devices
  in
  (0.05 *. float_of_int (List.length devices - 1)) +. (2.5 *. float_of_int backbone)

let backbone_segments t =
  let n = Array.length t.ring in
  List.init n (fun i -> (t.ring.(i), t.ring.((i + 1) mod n)))

let switches t =
  Hashtbl.fold (fun s _ acc -> s :: acc) t.switch_router [] |> List.sort String.compare

let routers t = Array.to_list t.ring

let to_json t =
  let open Simkit.Json in
  Obj
    [ ( "switches",
        List
          (List.map
             (fun s ->
               Obj
                 [ ("uid", String s);
                   ("kind", String "tor");
                   ( "uplink",
                     String (Option.value ~default:"" (Hashtbl.find_opt t.switch_router s))
                   ) ])
             (switches t)) );
      ("routers", List (List.map (fun r -> String r) (routers t)));
      ( "backbone",
        List
          (List.map
             (fun (a, b) ->
               Obj [ ("from", String a); ("to", String b); ("gbps", Float 10.0) ])
             (backbone_segments t)) ) ]
