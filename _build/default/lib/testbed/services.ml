type kind = Oar | Kadeploy | Kavlan | Console | Kwapi | Api | Frontend
type state = Up | Degraded | Down

type t = {
  table : (string * kind, state) Hashtbl.t;
  rng : Simkit.Prng.t;
  sites : string list;
}

let all_kinds = [ Oar; Kadeploy; Kavlan; Console; Kwapi; Api; Frontend ]

let kind_to_string = function
  | Oar -> "oar"
  | Kadeploy -> "kadeploy"
  | Kavlan -> "kavlan"
  | Console -> "console"
  | Kwapi -> "kwapi"
  | Api -> "api"
  | Frontend -> "frontend"

let is_experimental = function Kavlan | Kwapi -> true | _ -> false

let create ~rng ~sites =
  let t = { table = Hashtbl.create 64; rng; sites } in
  List.iter
    (fun site -> List.iter (fun k -> Hashtbl.replace t.table (site, k) Up) all_kinds)
    sites;
  t

let state t ~site kind =
  Option.value ~default:Down (Hashtbl.find_opt t.table (site, kind))

let set_state t ~site kind s = Hashtbl.replace t.table (site, kind) s

let use t ~site kind =
  match state t ~site kind with
  | Up -> true
  | Degraded -> not (Simkit.Prng.chance t.rng 0.4)
  | Down -> false

let degraded_or_down t =
  let entries =
    Hashtbl.fold
      (fun (site, kind) s acc -> if s = Up then acc else (site, kind, s) :: acc)
      t.table []
  in
  List.sort
    (fun (sa, ka, _) (sb, kb, _) ->
      match String.compare sa sb with 0 -> compare ka kb | c -> c)
    entries

let repair t ~site kind = set_state t ~site kind Up
