(** Explicit network topology.

    The Reference API "covers nodes, network equipment, topology"; this
    module materialises that description: per site, hosts attach to their
    top-of-rack switch (from the cabling model), ToR switches uplink to a
    site router, and site routers form the dedicated 10-Gbps backbone
    ring.  Paths, hop counts and bottleneck capacities are computable,
    and the whole graph serialises to the Reference API's JSON. *)

type device =
  | Host of string
  | Switch of string  (** top-of-rack, e.g. ["gw-nancy-0"] *)
  | Router of string  (** site router, e.g. ["router-nancy"] *)

type link = {
  link_from : device;
  link_to : device;
  capacity_gbps : float;
}

type t

val build : Network.t -> Node.t list -> t
(** Derive the topology from the current {e actual} cabling (so a cabling
    fault moves the host under the wrong ToR, exactly as the description
    comparison expects). *)

val device_name : device -> string

val path : t -> from:string -> to_:string -> device list
(** Device sequence from one host to another, inclusive.  Within a site:
    host-ToR-(router-ToR)-host; across sites: through the backbone ring
    in the shorter direction.  @raise Not_found for unknown hosts. *)

val hops : t -> from:string -> to_:string -> int
(** [List.length (path ...) - 1]; 0 for a host to itself. *)

val bottleneck_gbps : t -> from:string -> to_:string -> float
(** Minimum link capacity along the path (infinity for a host to
    itself). *)

val latency_estimate_ms : t -> from:string -> to_:string -> float
(** Structural latency: 0.05 ms per switch/router hop plus 2.5 ms per
    backbone segment. *)

val backbone_segments : t -> (string * string) list
(** Router pairs of the ring, in site order. *)

val switches : t -> string list
val routers : t -> string list

val to_json : t -> Simkit.Json.t
(** Devices and links in Reference-API style. *)
