lib/testbed/faults.ml: Array Hardware Hashtbl Inventory List Network Node Option Printf Refapi Services Simkit String
