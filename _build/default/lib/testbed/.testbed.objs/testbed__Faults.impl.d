lib/testbed/faults.ml: Array Hardware Hashtbl Inventory List Network Node Printf Refapi Services Simkit String
