lib/testbed/network.ml: Float Hardware Hashtbl List Node Option Printf String
