lib/testbed/network.mli: Node Simkit
