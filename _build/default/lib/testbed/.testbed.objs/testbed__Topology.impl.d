lib/testbed/topology.ml: Array Float Hardware Hashtbl Inventory List Network Node Option Simkit String
