lib/testbed/inventory.mli: Hardware
