lib/testbed/instance.mli: Console Faults Format Hashtbl Network Node Refapi Services Simkit
