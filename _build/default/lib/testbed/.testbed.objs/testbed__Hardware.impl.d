lib/testbed/hardware.ml: Format List Simkit String
