lib/testbed/node.ml: Float Format Hardware Printf Simkit
