lib/testbed/instance.ml: Array Console Faults Format Hardware Hashtbl Inventory List Network Node Refapi Services Simkit String
