lib/testbed/hardware.mli: Format Simkit
