lib/testbed/services.mli: Simkit
