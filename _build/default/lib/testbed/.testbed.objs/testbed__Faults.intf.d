lib/testbed/faults.mli: Hashtbl Network Node Refapi Services Simkit
