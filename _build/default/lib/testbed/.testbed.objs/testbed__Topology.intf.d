lib/testbed/topology.mli: Network Node Simkit
