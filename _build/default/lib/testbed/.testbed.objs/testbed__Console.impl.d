lib/testbed/console.ml: Hardware Hashtbl List Node Option Printf Services String
