lib/testbed/refapi.ml: Hardware Hashtbl List Node Simkit String
