lib/testbed/services.ml: Hashtbl List Option Simkit String
