lib/testbed/refapi.mli: Node Simkit
