lib/testbed/console.mli: Node Services
