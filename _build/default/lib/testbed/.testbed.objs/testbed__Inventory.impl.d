lib/testbed/inventory.ml: Float Hardware List Printf Stdlib String
