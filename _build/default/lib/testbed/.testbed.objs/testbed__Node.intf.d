lib/testbed/node.mli: Format Hardware Simkit
