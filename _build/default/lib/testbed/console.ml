type t = { rings : (string, string list) Hashtbl.t }
(* Rings are newest-first internally, capped. *)

let cap = 200

let create () = { rings = Hashtbl.create 1024 }

let log_line t ~host line =
  let ring = Option.value ~default:[] (Hashtbl.find_opt t.rings host) in
  let ring = line :: ring in
  let ring = if List.length ring > cap then List.filteri (fun i _ -> i < cap) ring else ring in
  Hashtbl.replace t.rings host ring

let log_boot t node =
  let host = node.Node.host in
  log_line t ~host (Printf.sprintf "[    0.000000] Linux version (%s)" node.Node.deployed_env);
  log_line t ~host
    (Printf.sprintf "[    2.345678] %s: %d cores, %d MB"
       node.Node.actual.Hardware.cpu.Hardware.cpu_model
       (Hardware.total_cores node.Node.actual)
       (node.Node.actual.Hardware.memory.Hardware.ram_gb * 1024));
  log_line t ~host (host ^ " login:")

let tail t ~host n =
  let ring = Option.value ~default:[] (Hashtbl.find_opt t.rings host) in
  List.rev (List.filteri (fun i _ -> i < n) ring)

let roundtrip t ~services node ~marker =
  let host = node.Node.host in
  let site = node.Node.site_name in
  if node.Node.state = Node.Down then false
  else if not (Services.use services ~site Services.Console) then false
  else if node.Node.behaviour.Node.console_broken then begin
    (* The connection opens but the line is dead: nothing echoes. *)
    log_line t ~host "(no output)";
    false
  end
  else begin
    log_line t ~host marker;
    match tail t ~host 1 with
    | [ line ] -> String.equal line marker
    | _ -> false
  end
