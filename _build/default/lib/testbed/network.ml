type port = { switch : string; port_no : int }

type t = {
  reference : (string, port) Hashtbl.t;
  actual : (string, port) Hashtbl.t;
  site_of_host : (string, string) Hashtbl.t;
  backbone : float;
}

let ports_per_switch = 48

let build ~rng:_ nodes =
  let t =
    {
      reference = Hashtbl.create 1024;
      actual = Hashtbl.create 1024;
      site_of_host = Hashtbl.create 1024;
      backbone = 10.0;
    }
  in
  (* Group nodes per site, in deterministic order, and fill switches
     sequentially: gw-<site>-<k> port 1..48. *)
  let by_site = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let site = node.Node.site_name in
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_site site) in
      Hashtbl.replace by_site site (node :: existing))
    nodes;
  Hashtbl.iter
    (fun site site_nodes ->
      let site_nodes = List.rev site_nodes in
      List.iteri
        (fun i node ->
          let port =
            { switch = Printf.sprintf "gw-%s-%d" site (i / ports_per_switch);
              port_no = (i mod ports_per_switch) + 1 }
          in
          Hashtbl.replace t.reference node.Node.host port;
          Hashtbl.replace t.actual node.Node.host port;
          Hashtbl.replace t.site_of_host node.Node.host site)
        site_nodes)
    by_site;
  t

let reference_port t host = Hashtbl.find_opt t.reference host
let actual_port t host = Hashtbl.find_opt t.actual host

let swap_cables t host_a host_b =
  match (Hashtbl.find_opt t.actual host_a, Hashtbl.find_opt t.actual host_b) with
  | Some pa, Some pb ->
    if not (String.equal host_a host_b) then begin
      Hashtbl.replace t.actual host_a pb;
      Hashtbl.replace t.actual host_b pa
    end
  | _ -> invalid_arg "Network.swap_cables: unknown host"

let cabling_consistent t host =
  match (reference_port t host, actual_port t host) with
  | Some r, Some a -> r = a
  | _ -> false

let miswired_hosts t =
  Hashtbl.fold
    (fun host _ acc -> if cabling_consistent t host then acc else host :: acc)
    t.reference []
  |> List.sort String.compare

let repair_host t host =
  match reference_port t host with
  | Some r -> Hashtbl.replace t.actual host r
  | None -> ()

(* Deterministic pseudo-noise from the pair of host names, so repeated
   measurements of the same path agree (no PRNG consumption). *)
let pair_noise a b =
  let h = Hashtbl.hash (a, b) land 0xFFFF in
  float_of_int h /. 65535.0

let latency_ms t na nb =
  let ha = na.Node.host and hb = nb.Node.host in
  if String.equal ha hb then 0.01
  else begin
    let same_site = String.equal na.Node.site_name nb.Node.site_name in
    let same_switch =
      match (actual_port t ha, actual_port t hb) with
      | Some pa, Some pb -> String.equal pa.switch pb.switch
      | _ -> false
    in
    let base = if same_switch then 0.05 else if same_site then 0.2 else 10.0 in
    base *. (1.0 +. (0.1 *. pair_noise ha hb))
  end

let nic_rate node =
  match node.Node.actual.Hardware.nics with
  | [] -> 0.0
  | nic :: _ -> nic.Hardware.rate_gbps

let bandwidth_gbps t na nb =
  let path = Float.min (nic_rate na) (nic_rate nb) in
  let path =
    if String.equal na.Node.site_name nb.Node.site_name then path
    else Float.min path t.backbone
  in
  (* TCP efficiency ~94%. *)
  path *. 0.94

let backbone_gbps t = t.backbone
