(** The deployment engine (Kadeploy substitute).

    Deployment is phased: reboot all nodes into the deployment kernel,
    broadcast the image over a chain pipeline, write + postinstall, and
    reboot into the deployed environment.  The timing model is calibrated
    so that 200 nodes deploy in roughly five minutes, the figure the
    paper quotes, and is sub-linear in the node count (chain broadcast).

    Per-node failures (boot failures, write glitches) are retried once;
    a corrupt image fails postinstall everywhere. *)

type node_outcome = Deployed | Failed of string

type result = {
  image : string;
  started_at : float;
  finished_at : float;
  outcomes : (string * node_outcome) list;  (** per host, input order *)
  retried : int;  (** nodes that needed the automatic retry *)
}

val success_count : result -> int
val all_deployed : result -> bool

val expected_duration : nodes:int -> image_mb:int -> float
(** Analytic expectation of the timing model (no failures), used by the
    Kadeploy scaling experiment (E3). *)

val run :
  Testbed.Instance.t ->
  registry:Image.registry ->
  image:string ->
  nodes:Testbed.Node.t list ->
  on_done:(result -> unit) ->
  unit
(** Start a deployment; [on_done] fires when every node has converged.
    Unknown images or an empty node list complete immediately with
    failures.  Nodes are [Deploying] for the duration; successful nodes
    end [Alive] with [deployed_env] set, failed ones end [Down] or
    [Alive] in their previous environment depending on the phase. *)
