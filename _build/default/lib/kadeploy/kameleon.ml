type step = { section : string; action : string }
type recipe = { recipe_name : string; base : string; steps : step list }

let make ~name ~base actions =
  let bootstrap =
    [ { section = "bootstrap"; action = "download " ^ base };
      { section = "bootstrap"; action = "debootstrap/rootfs" } ]
  in
  let setup = List.map (fun action -> { section = "setup"; action }) actions in
  let export =
    [ { section = "export"; action = "save_appliance tgz" };
      { section = "export"; action = "checksum" } ]
  in
  { recipe_name = name; base; steps = bootstrap @ setup @ export }

(* FNV-1a over the canonical text; deterministic across runs. *)
let checksum recipe =
  let text =
    recipe.recipe_name ^ "|" ^ recipe.base ^ "|"
    ^ String.concat ";" (List.map (fun s -> s.section ^ ":" ^ s.action) recipe.steps)
  in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    text;
  Printf.sprintf "%016Lx" !h

let step_count recipe = List.length recipe.steps

let pp ppf recipe =
  Format.fprintf ppf "recipe %s (base %s, %d steps, sum %s)" recipe.recipe_name
    recipe.base (step_count recipe) (checksum recipe)
