(** Kameleon-style recipes: a deterministic build description for each
    environment image, giving traceability ("images generated using
    Kameleon for traceability"). *)

type step = {
  section : string;  (** bootstrap / setup / export *)
  action : string;
}

type recipe = {
  recipe_name : string;
  base : string;  (** parent distribution or recipe *)
  steps : step list;
}

val make : name:string -> base:string -> string list -> recipe
(** Build a recipe from setup actions, with canonical bootstrap and
    export steps added around them. *)

val checksum : recipe -> string
(** Deterministic hex digest of the full recipe content. *)

val step_count : recipe -> int
val pp : Format.formatter -> recipe -> unit
