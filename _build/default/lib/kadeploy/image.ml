type t = {
  name : string;
  index : int;
  size_mb : int;
  recipe : Kameleon.recipe;
  checksum : string;
}

let build index (name, base, size_mb, actions) =
  let recipe = Kameleon.make ~name ~base actions in
  { name; index; size_mb; recipe; checksum = Kameleon.checksum recipe }

let standard =
  let common = [ "install openssh-server"; "configure serial console"; "install g5k-checks" ] in
  let std extra = common @ extra in
  List.mapi build
    [
      ("debian7-x64-min", "debian/wheezy", 450, common);
      ("debian7-x64-base", "debian/wheezy", 700, std [ "install build-essential" ]);
      ("debian7-x64-std", "debian/wheezy", 1100, std [ "install build-essential"; "install ganglia-monitor" ]);
      ("debian7-x64-big", "debian/wheezy", 2300, std [ "install build-essential"; "install ganglia-monitor"; "install openmpi"; "install hadoop" ]);
      ("debian7-x64-nfs", "debian/wheezy", 1200, std [ "configure nfs-home"; "configure ldap" ]);
      ("debian8-x64-min", "debian/jessie", 500, common);
      ("debian8-x64-base", "debian/jessie", 750, std [ "install build-essential" ]);
      ("debian8-x64-std", "debian/jessie", 1200, std [ "install build-essential"; "install ganglia-monitor" ]);
      ("debian8-x64-big", "debian/jessie", 2500, std [ "install build-essential"; "install ganglia-monitor"; "install openmpi"; "install hadoop" ]);
      ("debian8-x64-nfs", "debian/jessie", 1300, std [ "configure nfs-home"; "configure ldap" ]);
      ("centos6-x64-min", "centos/6", 600, common);
      ("centos7-x64-min", "centos/7", 700, common);
      ("ubuntu1404-x64-min", "ubuntu/trusty", 550, common);
      ("ubuntu1604-x64-min", "ubuntu/xenial", 650, common);
    ]

let count = List.length standard
let find name = List.find_opt (fun img -> String.equal img.name name) standard

let std_env =
  match find "debian8-x64-std" with
  | Some img -> img
  | None -> assert false

type registry = {
  ctx : Testbed.Faults.ctx;
  mutable user_images : t list;  (* registration order *)
  mutable next_index : int;
}

let registry ctx = { ctx; user_images = []; next_index = count }

let is_corrupt reg img =
  Testbed.Faults.flag reg.ctx (Printf.sprintf "env_corrupt:%d" img.index) <> None

let get reg name =
  match find name with
  | Some img -> Some img
  | None -> List.find_opt (fun img -> String.equal img.name name) reg.user_images

let all reg = standard @ reg.user_images
let registered reg = reg.user_images

let register reg ~name ~base ~size_mb actions =
  if size_mb <= 0 then Error "image size must be positive"
  else if String.trim name = "" then Error "image name must not be empty"
  else if get reg name <> None then Error (Printf.sprintf "image %s already exists" name)
  else begin
    let recipe = Kameleon.make ~name ~base actions in
    let img =
      { name; index = reg.next_index; size_mb; recipe;
        checksum = Kameleon.checksum recipe }
    in
    reg.next_index <- reg.next_index + 1;
    reg.user_images <- reg.user_images @ [ img ];
    Ok img
  end
