lib/kadeploy/kameleon.mli: Format
