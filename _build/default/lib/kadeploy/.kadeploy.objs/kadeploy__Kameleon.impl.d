lib/kadeploy/kameleon.ml: Char Format Int64 List Printf String
