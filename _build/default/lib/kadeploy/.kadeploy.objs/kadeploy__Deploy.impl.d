lib/kadeploy/deploy.ml: Float Image List Simkit String Testbed
