lib/kadeploy/image.mli: Kameleon Testbed
