lib/kadeploy/deploy.mli: Image Testbed
