lib/kadeploy/image.ml: Kameleon List Printf String Testbed
