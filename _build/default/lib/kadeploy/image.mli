(** Environment images.

    The matrix job of the paper tests 14 system images on all 32 clusters
    (448 configurations).  Images are produced by Kameleon-like recipes
    for traceability; a corrupt image (fault injection) makes every
    deployment of it fail at postinstall. *)

type t = {
  name : string;
  index : int;  (** stable index 0..13, used by fault flags *)
  size_mb : int;
  recipe : Kameleon.recipe;
  checksum : string;
}

val standard : t list
(** The 14 standard environments (min/base/std/big/nfs variants of two
    Debian releases plus CentOS and Ubuntu minimal images). *)

val count : int
val find : string -> t option
val std_env : t
(** The default production environment ("std"). *)

type registry

val registry : Testbed.Faults.ctx -> registry
(** A registry serving the standard images, accepting user-registered
    ones, and consulting the fault flags for corruption. *)

val is_corrupt : registry -> t -> bool

val get : registry -> string -> t option
(** Standard images first, then user registrations. *)

val all : registry -> t list

val register :
  registry ->
  name:string ->
  base:string ->
  size_mb:int ->
  string list ->
  (t, string) result
(** Register a user image built from a Kameleon-like recipe (the paper's
    "enable users to deploy their own software stack").  Rejects
    duplicate names and non-positive sizes.  The new image gets a fresh
    index (so fault flags can target it) and a recipe checksum for
    traceability. *)

val registered : registry -> t list
(** User images only, registration order. *)
