type flavour = Default | Local | Routed | Global
type vlan = { vlan_id : int; flavour : flavour; vlan_site : string option }

let default_vlan = { vlan_id = 0; flavour = Default; vlan_site = None }

let standard_vlans =
  let locals =
    List.mapi
      (fun i site -> { vlan_id = 100 + i; flavour = Local; vlan_site = Some site })
      Testbed.Inventory.sites
  in
  let routed =
    List.init 4 (fun i ->
        let site = List.nth Testbed.Inventory.sites (i * 2) in
        { vlan_id = 200 + i; flavour = Routed; vlan_site = Some site })
  in
  let global = [ { vlan_id = 300; flavour = Global; vlan_site = None } ] in
  locals @ routed @ global

let find_vlan id =
  if id = 0 then Some default_vlan
  else List.find_opt (fun v -> v.vlan_id = id) standard_vlans

let flavour_to_string = function
  | Default -> "default"
  | Local -> "local"
  | Routed -> "routed"
  | Global -> "global"

type change_result = Changed | Service_failed

let set_vlan instance ~nodes ~vlan ~on_done =
  let engine = instance.Testbed.Instance.engine in
  let sites =
    List.sort_uniq String.compare (List.map (fun n -> n.Testbed.Node.site_name) nodes)
  in
  let services_ok =
    List.for_all
      (fun site ->
        Testbed.Services.use instance.Testbed.Instance.services ~site
          Testbed.Services.Kavlan)
      sites
  in
  if not services_ok then
    ignore (Simkit.Engine.schedule engine ~delay:2.0 (fun _ -> on_done Service_failed))
  else begin
    (* One switch reconfiguration per site plus a small per-node cost:
       "almost no overhead". *)
    let duration = (3.0 *. float_of_int (List.length sites))
                   +. (0.2 *. float_of_int (List.length nodes)) in
    ignore
      (Simkit.Engine.schedule engine ~delay:duration (fun _ ->
           List.iter (fun n -> n.Testbed.Node.vlan <- vlan.vlan_id) nodes;
           on_done Changed))
  end

let vlan_of node = Option.value ~default:default_vlan (find_vlan node.Testbed.Node.vlan)

let reachable _instance a b =
  let va = vlan_of a and vb = vlan_of b in
  if va.vlan_id = vb.vlan_id then
    match va.flavour with
    | Default | Global -> true
    | Local | Routed -> String.equal a.Testbed.Node.site_name b.Testbed.Node.site_name
  else
    match (va.flavour, vb.flavour) with
    | (Default | Routed), (Default | Routed) -> true
    | _ -> false

let gateway_reachable node = (vlan_of node).flavour = Local

let isolation_invariant instance nodes =
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          let va = vlan_of a and vb = vlan_of b in
          if va.flavour = Local && va.vlan_id <> vb.vlan_id then
            not (reachable instance a b)
          else true)
        nodes)
    nodes
