(** KaVLAN: network isolation by VLAN reconfiguration.

    Four flavours, as on the paper's slide: the {e default} routed
    production network; {e local} isolated VLANs only reachable through a
    site SSH gateway; {e routed} VLANs (separate level-2 networks,
    reachable through routing); and {e global} VLANs spanning all sites at
    level 2.  Reconfiguration is "almost no overhead": a few seconds per
    node. *)

type flavour = Default | Local | Routed | Global

type vlan = {
  vlan_id : int;
  flavour : flavour;
  vlan_site : string option;  (** [None] for the global VLAN *)
}

val standard_vlans : vlan list
(** The 13 reconfigurable VLANs used by the kavlan test family: one local
    VLAN per site (8), four routed VLANs, one global VLAN — plus, always
    present implicitly, VLAN 0 (default). *)

val default_vlan : vlan
val find_vlan : int -> vlan option

val flavour_to_string : flavour -> string

type change_result = Changed | Service_failed

val set_vlan :
  Testbed.Instance.t ->
  nodes:Testbed.Node.t list ->
  vlan:vlan ->
  on_done:(change_result -> unit) ->
  unit
(** Move nodes into a VLAN through the site's kavlan service (a couple of
    seconds per switch operation).  Fails atomically when the service is
    unusable; nodes keep their previous VLAN. *)

val reachable : Testbed.Instance.t -> Testbed.Node.t -> Testbed.Node.t -> bool
(** Connectivity predicate implied by VLAN assignments:
    - both in the default VLAN: reachable (possibly routed across sites);
    - same non-default VLAN: reachable only if the VLAN is Global, or the
      nodes are on the same site (Local/Routed);
    - different VLANs: reachable only if both VLANs are routed flavours
      (Default/Routed) — Local VLANs are isolated. *)

val gateway_reachable : Testbed.Node.t -> bool
(** A node in a local VLAN is reachable through the SSH gateway only. *)

val isolation_invariant : Testbed.Instance.t -> Testbed.Node.t list -> bool
(** Check that no node of a Local VLAN can reach a node outside it —
    the invariant the kavlan test verifies after reconfiguration. *)
