type field = Any | Step of int | Values of int list

type t = {
  minute : field;
  hour : field;
  dom : field;  (* 1..30 in the simulated calendar *)
  month : field;  (* 1..12 *)
  dow : field;  (* 0 = Sunday *)
  source : string;
}

let parse_field text ~lo ~hi =
  let in_range v = v >= lo && v <= hi in
  if text = "*" then Ok Any
  else if String.length text > 2 && String.sub text 0 2 = "*/" then begin
    match int_of_string_opt (String.sub text 2 (String.length text - 2)) with
    | Some n when n > 0 -> Ok (Step n)
    | _ -> Error ("bad step in " ^ text)
  end
  else begin
    let parts = String.split_on_char ',' text in
    let expand part =
      match String.index_opt part '-' with
      | Some i -> (
        let a = String.sub part 0 i in
        let b = String.sub part (i + 1) (String.length part - i - 1) in
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some a, Some b when a <= b && in_range a && in_range b ->
          Ok (List.init (b - a + 1) (fun k -> a + k))
        | _ -> Error ("bad range " ^ part))
      | None -> (
        match int_of_string_opt part with
        | Some v when in_range v -> Ok [ v ]
        | _ -> Error ("bad value " ^ part))
    in
    let rec collect acc = function
      | [] -> Ok (Values (List.sort_uniq compare acc))
      | part :: rest -> (
        match expand part with
        | Ok vs -> collect (vs @ acc) rest
        | Error e -> Error e)
    in
    collect [] parts
  end

let parse source =
  match String.split_on_char ' ' (String.trim source) |> List.filter (( <> ) "") with
  | [ m; h; dom; mon; dow ] -> (
    match
      ( parse_field m ~lo:0 ~hi:59,
        parse_field h ~lo:0 ~hi:23,
        parse_field dom ~lo:1 ~hi:30,
        parse_field mon ~lo:1 ~hi:12,
        parse_field dow ~lo:0 ~hi:7 )
    with
    | Ok minute, Ok hour, Ok dom, Ok month, Ok dow ->
      (* cron allows 7 for Sunday; normalise to 0. *)
      let dow =
        match dow with
        | Values vs -> Values (List.sort_uniq compare (List.map (fun v -> v mod 7) vs))
        | f -> f
      in
      Ok { minute; hour; dom; month; dow; source }
    | Error e, _, _, _, _
    | _, Error e, _, _, _
    | _, _, Error e, _, _
    | _, _, _, Error e, _
    | _, _, _, _, Error e -> Error e)
  | _ -> Error "expected 5 fields"

let parse_exn source =
  match parse source with Ok t -> t | Error e -> invalid_arg ("Cron.parse_exn: " ^ e)

let field_matches field v =
  match field with
  | Any -> true
  | Step n -> v mod n = 0
  | Values vs -> List.mem v vs

let minute_of time =
  let day_seconds = time -. (float_of_int (Simkit.Calendar.day_index time) *. Simkit.Calendar.day) in
  int_of_float day_seconds / 60 mod 60

let matches t time =
  let day = Simkit.Calendar.day_index time in
  let dom = (day mod 30) + 1 in
  let month = (day / 30 mod 12) + 1 in
  let cal_dow = Simkit.Calendar.day_of_week time in
  (* calendar: 0 = Monday; cron: 0 = Sunday *)
  let cron_dow = (cal_dow + 1) mod 7 in
  field_matches t.minute (minute_of time)
  && field_matches t.hour (Simkit.Calendar.hour_of_day time)
  && field_matches t.dom dom
  && field_matches t.month month
  && field_matches t.dow cron_dow

let next_fire t ~after =
  let minute = 60.0 in
  let start = (Float.of_int (int_of_float (after /. minute)) +. 1.0) *. minute in
  let horizon = after +. (10.0 *. 365.0 *. Simkit.Calendar.day) in
  let rec scan time =
    if time > horizon then failwith "Cron.next_fire: no match within 10 years"
    else if matches t time then time
    else scan (time +. minute)
  in
  scan start

let to_string t = t.source
