lib/ci/build.ml: Format List String
