lib/ci/build.ml: Format List Printf String
