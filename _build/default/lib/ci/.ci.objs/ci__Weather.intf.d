lib/ci/weather.mli: Server
