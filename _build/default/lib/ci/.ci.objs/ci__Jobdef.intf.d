lib/ci/jobdef.mli: Build Cron Simkit
