lib/ci/jobdef.ml: Build Cron List Simkit
