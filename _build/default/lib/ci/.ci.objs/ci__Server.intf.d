lib/ci/server.mli: Build Jobdef Simkit
