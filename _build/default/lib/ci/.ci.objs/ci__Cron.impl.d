lib/ci/cron.ml: Float List Simkit String
