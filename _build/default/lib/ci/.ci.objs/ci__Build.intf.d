lib/ci/build.mli: Format
