lib/ci/cron.mli:
