lib/ci/weather.ml: Build List Server Simkit
