lib/ci/server.ml: Build Cron Hashtbl Jobdef List Option Printexc Simkit String
