let window = 5

let score server name =
  let completed =
    Server.builds server name
    |> List.filter Build.is_finished
    |> List.filteri (fun i _ -> i < window)
  in
  match completed with
  | [] -> None
  | builds ->
    let ok =
      List.length
        (List.filter (fun b -> b.Build.result = Some Build.Success) builds)
    in
    Some (float_of_int ok /. float_of_int (List.length builds))

let icon s =
  if s >= 0.8 then "sunny"
  else if s >= 0.6 then "partly-cloudy"
  else if s >= 0.4 then "cloudy"
  else if s >= 0.2 then "rain"
  else "storm"

let report server =
  List.map
    (fun name ->
      match score server name with
      | Some s -> (name, Some s, icon s)
      | None -> (name, None, "-"))
    (Server.job_names server)

let render server =
  Simkit.Table.render ~header:[ "job"; "stability"; "weather" ]
    (List.map
       (fun (name, s, icon) ->
         [ name;
           (match s with Some s -> Simkit.Table.fmt_pct s | None -> "-");
           icon ])
       (report server))
