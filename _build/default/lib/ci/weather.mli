(** Jenkins-style "weather report": a per-job stability score computed
    over the most recent completed builds, with the familiar icons.
    The status page uses it for its at-a-glance job health column. *)

val window : int
(** Builds considered (5, like Jenkins). *)

val score : Server.t -> string -> float option
(** Fraction of the last {!window} completed builds that succeeded;
    [None] when the job has no completed build. *)

val icon : float -> string
(** [>= 0.8] "sunny", [>= 0.6] "partly-cloudy", [>= 0.4] "cloudy",
    [>= 0.2] "rain", otherwise "storm". *)

val report : Server.t -> (string * float option * string) list
(** One row per defined job: (name, score, icon or "-"), sorted by job
    name. *)

val render : Server.t -> string
