(** Cron expressions on the simulated calendar ("Jenkins: cron on
    steroids").

    Five fields: minute, hour, day-of-month, month, day-of-week.  Each
    field accepts [*], [*/n], single values, comma lists and [a-b]
    ranges.  Day-of-week uses cron numbering (0 = Sunday).  The simulated
    calendar repeats 30-day months starting on a Monday. *)

type t

val parse : string -> (t, string) result
val parse_exn : string -> t

val matches : t -> float -> bool
(** Whether the minute containing the instant matches. *)

val next_fire : t -> after:float -> float
(** First matching minute boundary strictly after [after].
    @raise Failure if nothing matches within 10 simulated years (a
    contradiction such as day 31 in the 30-day calendar). *)

val to_string : t -> string
