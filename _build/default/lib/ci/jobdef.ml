type body =
  engine:Simkit.Engine.t -> build:Build.t -> finish:(Build.result -> unit) -> unit

type kind = Freestyle | Matrix of (string * string list) list

type t = {
  name : string;
  description : string;
  kind : kind;
  body : body;
  trigger : Cron.t option;
  retention : int;
  mutable enabled : bool;
}

let freestyle ?(description = "") ?trigger ?(retention = 200) ~name body =
  { name; description; kind = Freestyle; body; trigger; retention; enabled = true }

let matrix ?(description = "") ?trigger ?(retention = 200) ~name ~axes body =
  { name; description; kind = Matrix axes; body; trigger; retention; enabled = true }

let combinations axes =
  List.fold_right
    (fun (axis, values) acc ->
      List.concat_map (fun value -> List.map (fun tail -> (axis, value) :: tail) acc) values)
    axes [ [] ]

let combination_count t =
  match t.kind with
  | Freestyle -> 1
  | Matrix axes -> List.length (combinations axes)
