(** Job definitions.

    A job's body runs inside an executor slot; it receives the build
    record (for logging), the simulation engine (to take simulated time)
    and a [finish] continuation it must call exactly once.  Matrix jobs
    ("Matrix Project" plugin) declare axes; each combination becomes one
    child build. *)

type body =
  engine:Simkit.Engine.t ->
  build:Build.t ->
  finish:(Build.result -> unit) ->
  unit

type kind =
  | Freestyle
  | Matrix of (string * string list) list
      (** axes: [(name, values)]; combinations are the cartesian product *)

type t = {
  name : string;
  description : string;
  kind : kind;
  body : body;
  trigger : Cron.t option;
  retention : int;  (** builds kept per job (long-term history) *)
  mutable enabled : bool;
}

val freestyle :
  ?description:string ->
  ?trigger:Cron.t ->
  ?retention:int ->
  name:string ->
  body ->
  t

val matrix :
  ?description:string ->
  ?trigger:Cron.t ->
  ?retention:int ->
  name:string ->
  axes:(string * string list) list ->
  body ->
  t

val combinations : (string * string list) list -> (string * string) list list
(** Cartesian product in declaration order; [[\[\]]] for no axes. *)

val combination_count : t -> int
(** 1 for freestyle jobs. *)
