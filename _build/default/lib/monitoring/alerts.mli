(** Time-series alerting rules.

    The paper's related work notes the move "to more complex checks
    (functionality-based) and alerting based on time-series, e.g. with
    Prometheus".  This module provides that style of rule on top of the
    collector: threshold rules over an aggregation window and
    absence-of-data rules, evaluated on demand, with firing/resolved
    state tracking. *)

type aggregation = Mean | Max | Min

type condition =
  | Above of float  (** aggregated value strictly above *)
  | Below of float
  | Absent  (** no samples at all in the window *)

type rule = {
  rule_name : string;
  host : string;
  metric : Collector.metric;
  window : float;  (** seconds of history to aggregate *)
  aggregation : aggregation;
  condition : condition;
}

type alert = {
  rule : rule;
  fired_at : float;
  value : float option;  (** aggregated value; [None] for {!Absent}. *)
  mutable resolved_at : float option;
}

type t

val create : Collector.t -> t
val add_rule : t -> rule -> unit
val rules : t -> rule list

val evaluate : t -> now:float -> alert list
(** Evaluate every rule over [\[now - window, now\]].  A rule whose
    condition holds and which is not already firing produces a new
    {!alert}; a firing rule whose condition no longer holds is resolved.
    Returns the alerts that {e started firing} in this evaluation. *)

val firing : t -> alert list
(** Currently-firing alerts. *)

val history : t -> alert list
(** Every alert ever fired, oldest first. *)

val render : t -> string
