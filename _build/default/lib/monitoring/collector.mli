(** Monitoring collector: system-level probes (Ganglia-like) and
    infrastructure probes (network, power via Kwapi) captured at ≈1 Hz,
    with a REST-style query API and live ASCII visualisation.

    Series are synthesised on demand over a queried window (rather than
    being materialised every simulated second for 894 nodes), which keeps
    the discrete-event count tractable while preserving the 1 Hz
    resolution the paper advertises. *)

type metric = Cpu_load | Mem_used_gb | Net_rx_mbps | Power_w

val metric_to_string : metric -> string
val metric_of_string : string -> metric option

type t

val create : Testbed.Instance.t -> t

val set_load_model : t -> (host:string -> time:float -> float) -> unit
(** Override the synthetic CPU-load profile (default: smooth pseudo-load
    in [\[0, 0.8\]] depending on host and time). *)

val sample_window :
  t -> host:string -> metric -> lo:float -> hi:float -> Simkit.Timeseries.t
(** Probe the host at 1 Hz over [\[lo, hi\]].  Power samples come from the
    wattmeter channel {e wired} to the host — after a Kwapi
    misattribution fault that is another node's draw.  Returns an empty
    series when the host is unknown or its site has no wattmeter (for
    {!Power_w}). *)

val achieved_frequency_hz : Simkit.Timeseries.t -> lo:float -> hi:float -> float
(** Samples per second actually present in the window. *)

val has_wattmeter : t -> host:string -> bool

val live_view : t -> host:string -> metric -> at:float -> width:int -> string
(** Sparkline of the last [width] seconds before [at]. *)

val rest_get : t -> string -> (Simkit.Json.t, string) result
(** Minimal REST API:
    [/sites] — site list;
    [/sites/<site>/metrics] — metric names;
    [/sites/<site>/metrics/<metric>/timeseries/<host>?from=..&to=..] —
    the samples.  Mirrors the paper's "REST API" monitoring access. *)
