let base_idle hw =
  let cores = Testbed.Hardware.total_cores hw in
  70.0 +. (1.5 *. float_of_int cores)
  +. (0.05 *. float_of_int hw.Testbed.Hardware.memory.Testbed.Hardware.ram_gb)

let idle_of_hardware hw =
  let idle = base_idle hw in
  (* With C-states the CPU naps when idle; with them disabled (the
     mandated configuration) idle draw is ~12% higher. *)
  if hw.Testbed.Hardware.settings.Testbed.Hardware.c_states then idle
  else idle *. 1.12

let peak_of_hardware hw =
  let cores = Testbed.Hardware.total_cores hw in
  let peak = base_idle hw +. (7.5 *. float_of_int cores) in
  if hw.Testbed.Hardware.settings.Testbed.Hardware.turbo_boost then peak *. 1.15
  else peak

let idle_watts node = idle_of_hardware node.Testbed.Node.actual
let peak_watts node = peak_of_hardware node.Testbed.Node.actual

let watts node ~load =
  let load = Float.max 0.0 (Float.min 1.0 load) in
  let idle = idle_watts node and peak = peak_watts node in
  idle +. ((peak -. idle) *. load)
