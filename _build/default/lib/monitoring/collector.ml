type metric = Cpu_load | Mem_used_gb | Net_rx_mbps | Power_w

let metric_to_string = function
  | Cpu_load -> "cpu_load"
  | Mem_used_gb -> "mem_used_gb"
  | Net_rx_mbps -> "net_rx_mbps"
  | Power_w -> "power_w"

let metric_of_string = function
  | "cpu_load" -> Some Cpu_load
  | "mem_used_gb" -> Some Mem_used_gb
  | "net_rx_mbps" -> Some Net_rx_mbps
  | "power_w" -> Some Power_w
  | _ -> None

type t = {
  instance : Testbed.Instance.t;
  mutable load_model : host:string -> time:float -> float;
}

(* Smooth deterministic pseudo-load: mixture of two sinusoids with
   host-dependent phase, in [0, 0.8]. *)
let default_load ~host ~time =
  let phase = float_of_int (Hashtbl.hash host land 0xFFFF) /. 65536.0 *. 6.28 in
  let v =
    0.4
    +. (0.25 *. sin ((time /. 3600.0) +. phase))
    +. (0.15 *. sin ((time /. 613.0) +. (2.0 *. phase)))
  in
  Float.max 0.0 (Float.min 0.8 v)

let create instance = { instance; load_model = default_load }
let set_load_model t f = t.load_model <- f

let has_wattmeter t ~host =
  match Testbed.Instance.find_node t.instance host with
  | None -> false
  | Some node ->
    List.mem node.Testbed.Node.site_name Testbed.Inventory.wattmeter_sites

(* The node whose power the host's wattmeter channel actually measures. *)
let wattmeter_source t host =
  let ctx = Testbed.Faults.context t.instance.Testbed.Instance.faults in
  match Testbed.Faults.flag ctx ("kwapi_swap:" ^ host) with
  | Some partner -> partner
  | None -> host

let probe_value t node metric time =
  let host = node.Testbed.Node.host in
  let jitter =
    (* ±1% deterministic ripple so series are not perfectly flat. *)
    1.0 +. (0.01 *. sin (time *. 1.7 +. float_of_int (Hashtbl.hash host land 63)))
  in
  match metric with
  | Cpu_load -> t.load_model ~host ~time
  | Mem_used_gb ->
    let ram =
      float_of_int node.Testbed.Node.actual.Testbed.Hardware.memory.Testbed.Hardware.ram_gb
    in
    ram *. (0.15 +. (0.5 *. t.load_model ~host ~time)) *. jitter
  | Net_rx_mbps ->
    let rate =
      match node.Testbed.Node.actual.Testbed.Hardware.nics with
      | [] -> 0.0
      | nic :: _ -> nic.Testbed.Hardware.rate_gbps *. 1000.0
    in
    rate *. 0.2 *. t.load_model ~host ~time *. jitter
  | Power_w -> Power.watts node ~load:(t.load_model ~host ~time) *. jitter

let sample_window t ~host metric ~lo ~hi =
  let series =
    Simkit.Timeseries.create ~name:(host ^ ":" ^ metric_to_string metric) ()
  in
  let source_host =
    match metric with Power_w -> wattmeter_source t host | _ -> host
  in
  let power_ok = metric <> Power_w || has_wattmeter t ~host in
  (match Testbed.Instance.find_node t.instance source_host with
   | Some node when power_ok ->
     let time = ref (Float.round lo) in
     while !time <= hi do
       (* A down node stops reporting system metrics; the wattmeter keeps
          reporting (it is external to the node). *)
       let reporting =
         metric = Power_w || node.Testbed.Node.state <> Testbed.Node.Down
       in
       if reporting then
         Simkit.Timeseries.add series ~time:!time (probe_value t node metric !time);
       time := !time +. 1.0
     done
   | _ -> ());
  series

let achieved_frequency_hz series ~lo ~hi =
  if hi <= lo then 0.0
  else float_of_int (List.length (Simkit.Timeseries.between series ~lo ~hi)) /. (hi -. lo)

let live_view t ~host metric ~at ~width =
  let lo = Float.max 0.0 (at -. float_of_int width) in
  let series = sample_window t ~host metric ~lo ~hi:at in
  Simkit.Timeseries.sparkline series ~lo ~hi:at ~width

(* ---- REST API ----------------------------------------------------------- *)

let split_query path =
  match String.index_opt path '?' with
  | None -> (path, [])
  | Some i ->
    let base = String.sub path 0 i in
    let query = String.sub path (i + 1) (String.length path - i - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter_map (fun kv ->
             match String.index_opt kv '=' with
             | Some j ->
               Some
                 ( String.sub kv 0 j,
                   String.sub kv (j + 1) (String.length kv - j - 1) )
             | None -> None)
    in
    (base, params)

let rest_get t path =
  let open Simkit.Json in
  let base, params = split_query path in
  let segments =
    String.split_on_char '/' base |> List.filter (fun s -> s <> "")
  in
  match segments with
  | [ "sites" ] -> Ok (List (List.map (fun s -> String s) Testbed.Inventory.sites))
  | [ "sites"; site; "metrics" ] ->
    if List.mem site Testbed.Inventory.sites then
      Ok
        (List
           (List.map
              (fun m -> String (metric_to_string m))
              [ Cpu_load; Mem_used_gb; Net_rx_mbps; Power_w ]))
    else Error "unknown site"
  | [ "sites"; site; "metrics"; metric_name; "timeseries"; host ] -> (
    match metric_of_string metric_name with
    | None -> Error "unknown metric"
    | Some metric -> (
      match Testbed.Instance.find_node t.instance host with
      | None -> Error "unknown host"
      | Some node when node.Testbed.Node.site_name <> site -> Error "host not in site"
      | Some _ ->
        let param key default =
          match List.assoc_opt key params with
          | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
          | None -> default
        in
        let now = Simkit.Engine.now t.instance.Testbed.Instance.engine in
        let lo = param "from" (Float.max 0.0 (now -. 60.0)) in
        let hi = param "to" now in
        let series = sample_window t ~host metric ~lo ~hi in
        let samples = ref [] in
        Simkit.Timeseries.iter series (fun time v ->
            samples := List [ Float time; Float v ] :: !samples);
        Ok
          (Obj
             [ ("host", String host);
               ("metric", String metric_name);
               ("from", Float lo);
               ("to", Float hi);
               ("samples", List (List.rev !samples)) ])))
  | _ -> Error "no such endpoint"
