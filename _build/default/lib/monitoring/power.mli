(** Per-node power model, feeding the Kwapi probes.

    Idle power grows with the machine's size; load adds a per-core cost.
    Drifted CPU settings change the power signature (C-states disabled
    raise idle power), which is what makes power traces a useful
    cross-check of node configuration. *)

val idle_of_hardware : Testbed.Hardware.t -> float
(** Expected idle draw of a machine in the given configuration; the
    kwapi check derives its envelope from the {e reference} hardware. *)

val peak_of_hardware : Testbed.Hardware.t -> float

val idle_watts : Testbed.Node.t -> float
(** {!idle_of_hardware} of the node's actual configuration. *)

val peak_watts : Testbed.Node.t -> float

val watts : Testbed.Node.t -> load:float -> float
(** Instantaneous draw at a CPU load in [\[0, 1\]] (clamped). *)
