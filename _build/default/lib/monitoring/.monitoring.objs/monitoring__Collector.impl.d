lib/monitoring/collector.ml: Float Hashtbl List Power Simkit String Testbed
