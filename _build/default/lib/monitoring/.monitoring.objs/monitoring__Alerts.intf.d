lib/monitoring/alerts.mli: Collector
