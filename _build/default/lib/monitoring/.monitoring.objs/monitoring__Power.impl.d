lib/monitoring/power.ml: Float Testbed
