lib/monitoring/collector.mli: Simkit Testbed
