lib/monitoring/alerts.ml: Array Collector Float List Printf Simkit
