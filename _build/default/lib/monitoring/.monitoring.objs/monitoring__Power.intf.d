lib/monitoring/power.mli: Testbed
