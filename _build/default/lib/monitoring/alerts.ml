type aggregation = Mean | Max | Min

type condition = Above of float | Below of float | Absent

type rule = {
  rule_name : string;
  host : string;
  metric : Collector.metric;
  window : float;
  aggregation : aggregation;
  condition : condition;
}

type alert = {
  rule : rule;
  fired_at : float;
  value : float option;
  mutable resolved_at : float option;
}

type t = {
  collector : Collector.t;
  mutable rule_list : rule list;
  mutable alerts : alert list;  (* newest first *)
}

let create collector = { collector; rule_list = []; alerts = [] }
let add_rule t rule = t.rule_list <- t.rule_list @ [ rule ]
let rules t = t.rule_list
let firing t = List.rev (List.filter (fun a -> a.resolved_at = None) t.alerts)
let history t = List.rev t.alerts

let aggregate aggregation values =
  match values with
  | [||] -> None
  | values ->
    Some
      (match aggregation with
       | Mean ->
         Array.fold_left ( +. ) 0.0 values /. float_of_int (Array.length values)
       | Max -> Array.fold_left Float.max neg_infinity values
       | Min -> Array.fold_left Float.min infinity values)

let currently_firing t rule =
  List.find_opt
    (fun a -> a.resolved_at = None && a.rule.rule_name = rule.rule_name)
    t.alerts

let evaluate t ~now =
  List.filter_map
    (fun rule ->
      let lo = Float.max 0.0 (now -. rule.window) in
      let series =
        Collector.sample_window t.collector ~host:rule.host rule.metric ~lo ~hi:now
      in
      let values = Simkit.Timeseries.values_between series ~lo ~hi:now in
      let aggregated = aggregate rule.aggregation values in
      let holds =
        match (rule.condition, aggregated) with
        | Absent, None -> true
        | Absent, Some _ -> false
        | (Above _ | Below _), None -> false
        | Above threshold, Some v -> v > threshold
        | Below threshold, Some v -> v < threshold
      in
      match (holds, currently_firing t rule) with
      | true, Some _ -> None  (* already firing *)
      | true, None ->
        let alert = { rule; fired_at = now; value = aggregated; resolved_at = None } in
        t.alerts <- alert :: t.alerts;
        Some alert
      | false, Some alert ->
        alert.resolved_at <- Some now;
        None
      | false, None -> None)
    t.rule_list

let condition_to_string = function
  | Above v -> Printf.sprintf "> %.1f" v
  | Below v -> Printf.sprintf "< %.1f" v
  | Absent -> "absent"

let render t =
  Simkit.Table.render ~header:[ "alert"; "host"; "metric"; "condition"; "since"; "value" ]
    (List.map
       (fun a ->
         [ a.rule.rule_name; a.rule.host;
           Collector.metric_to_string a.rule.metric;
           condition_to_string a.rule.condition;
           Simkit.Calendar.to_string a.fired_at;
           (match a.value with Some v -> Simkit.Table.fmt_float v | None -> "-") ])
       (firing t))
