type entry = { time : float; category : string; message : string }

type t = {
  ring : entry option array;
  mutable next : int;  (* write cursor *)
  mutable count : int;  (* total ever recorded *)
}

let create ?(capacity = 10_000) () =
  if capacity <= 0 then invalid_arg "Tracelog.create: capacity must be positive";
  { ring = Array.make capacity None; next = 0; count = 0 }

let capacity t = Array.length t.ring
let size t = Stdlib.min t.count (capacity t)
let dropped t = Stdlib.max 0 (t.count - capacity t)

let record t ~time ~category message =
  t.ring.(t.next) <- Some { time; category; message };
  t.next <- (t.next + 1) mod capacity t;
  t.count <- t.count + 1

let recordf t ~time ~category fmt = Printf.ksprintf (record t ~time ~category) fmt

let entries t =
  let cap = capacity t in
  let n = size t in
  let start = if t.count <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let by_category t category =
  List.filter (fun e -> String.equal e.category category) (entries t)

let between t ~lo ~hi =
  List.filter (fun e -> e.time >= lo && e.time <= hi) (entries t)

let categories t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace table e.category
        (1 + Option.value ~default:0 (Hashtbl.find_opt table e.category)))
    (entries t);
  Hashtbl.fold (fun category n acc -> (category, n) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let render ?(limit = 50) t =
  let all = entries t in
  let skip = Stdlib.max 0 (List.length all - limit) in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i e ->
      if i >= skip then
        Buffer.add_string buf
          (Printf.sprintf "[%s] %-12s %s\n" (Calendar.to_string e.time) e.category
             e.message))
    all;
  Buffer.contents buf

let clear t =
  Array.fill t.ring 0 (capacity t) None;
  t.next <- 0;
  t.count <- 0
