module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable minv : float;
    mutable maxv : float;
    mutable sum : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity; sum = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.minv then t.minv <- x;
    if x > t.maxv then t.maxv <- x;
    t.sum <- t.sum +. x

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.minv
  let max t = t.maxv
  let sum t = t.sum

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      {
        n;
        mean;
        m2;
        minv = Float.min a.minv b.minv;
        maxv = Float.max a.maxv b.maxv;
        sum = a.sum +. b.sum;
      }
    end
end

let percentile data p =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort Float.compare sorted;
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median data = percentile data 0.5

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int array;
    mutable under : int;
    mutable over : int;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; bins = Array.make bins 0; under = 0; over = 0; total = 0 }

  let add t x =
    t.total <- t.total + 1;
    if x < t.lo then t.under <- t.under + 1
    else if x >= t.hi then t.over <- t.over + 1
    else begin
      let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
      let i = int_of_float ((x -. t.lo) /. width) in
      let i = Stdlib.min i (Array.length t.bins - 1) in
      t.bins.(i) <- t.bins.(i) + 1
    end

  let count t = t.total
  let bin_count t i = t.bins.(i)
  let underflow t = t.under
  let overflow t = t.over

  let bin_bounds t i =
    let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
    (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

  let render ?(width = 40) t =
    let maxc = Array.fold_left Stdlib.max 1 t.bins in
    let buf = Buffer.create 256 in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          let lo, hi = bin_bounds t i in
          let bar = String.make (c * width / maxc) '#' in
          Buffer.add_string buf (Printf.sprintf "[%10.2f, %10.2f) %6d %s\n" lo hi c bar)
        end)
      t.bins;
    if t.under > 0 then Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.under);
    if t.over > 0 then Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.over);
    Buffer.contents buf
end
