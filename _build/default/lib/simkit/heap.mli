(** Imperative binary min-heap, the priority queue behind the event
    engine and the schedulers.

    Elements are ordered by a float key; ties are broken by insertion
    order so that iteration is deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:float -> 'a -> unit
(** Insert an element with priority [key] (lower pops first). *)

val peek : 'a t -> (float * 'a) option
(** Smallest (key, element) without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest (key, element). *)

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in ascending key order (cost O(n log n); for tests and
    status displays, not hot paths). *)
