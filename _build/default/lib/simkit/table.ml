type align = Left | Right | Center

let normalise ncols row =
  let len = List.length row in
  if len = ncols then row
  else if len < ncols then row @ List.init (ncols - len) (fun _ -> "")
  else List.filteri (fun i _ -> i < ncols) row

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render ?align ~header rows =
  let ncols = List.length header in
  let rows = List.map (normalise ncols) rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.init ncols (fun _ -> Left)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let buf = Buffer.create 512 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (List.nth aligns i) (List.nth widths i) cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  line header;
  rule ();
  List.iter line rows;
  rule ();
  Buffer.contents buf

let render_plain ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "\t" header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "\t" row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let fmt_float ?(decimals = 2) f =
  if Float.is_nan f then "-" else Printf.sprintf "%.*f" decimals f

let fmt_pct r = if Float.is_nan r then "-" else Printf.sprintf "%.1f%%" (100.0 *. r)
