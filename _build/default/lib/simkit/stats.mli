(** Online statistics and fixed-bin histograms for measurement series. *)

module Online : sig
  (** Welford's online mean/variance accumulator. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val sum : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators (parallel Welford merge). *)
end

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [\[0, 1\]], linear interpolation
    between closest ranks.  Sorts a copy; @raise Invalid_argument on
    empty input. *)

val median : float array -> float

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Uniform bins over [\[lo, hi)]; out-of-range samples land in
      saturating under/overflow bins. *)

  val add : t -> float -> unit
  val count : t -> int
  val bin_count : t -> int -> int
  (** Count of bin [i] in [\[0, bins-1\]]. *)

  val underflow : t -> int
  val overflow : t -> int

  val bin_bounds : t -> int -> float * float

  val render : ?width:int -> t -> string
  (** ASCII rendering, one line per non-empty bin. *)
end
