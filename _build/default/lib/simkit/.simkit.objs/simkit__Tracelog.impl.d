lib/simkit/tracelog.ml: Array Buffer Calendar Hashtbl List Option Printf Stdlib String
