lib/simkit/stats.ml: Array Buffer Float Printf Stdlib String
