lib/simkit/json.mli:
