lib/simkit/stats.mli:
