lib/simkit/prng.ml: Array Int64 List
