lib/simkit/prng.mli:
