lib/simkit/table.ml: Buffer Float List Printf Stdlib String
