lib/simkit/dist.ml: Array Float List Prng Stdlib
