lib/simkit/heap.mli:
