lib/simkit/engine.ml: Float Hashtbl Heap Prng
