lib/simkit/calendar.ml: Float Format
