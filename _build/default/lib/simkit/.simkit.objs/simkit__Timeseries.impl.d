lib/simkit/timeseries.ml: Array Buffer Float List Stdlib String
