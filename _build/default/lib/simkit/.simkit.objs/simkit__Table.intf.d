lib/simkit/table.mli:
