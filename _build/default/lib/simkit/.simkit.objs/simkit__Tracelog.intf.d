lib/simkit/tracelog.mli:
