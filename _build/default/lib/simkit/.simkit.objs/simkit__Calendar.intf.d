lib/simkit/calendar.mli: Format
