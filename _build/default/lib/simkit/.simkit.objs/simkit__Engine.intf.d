lib/simkit/engine.mli: Prng
