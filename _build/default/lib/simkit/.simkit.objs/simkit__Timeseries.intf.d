lib/simkit/timeseries.mli:
