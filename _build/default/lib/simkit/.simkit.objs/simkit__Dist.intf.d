lib/simkit/dist.mli: Prng
