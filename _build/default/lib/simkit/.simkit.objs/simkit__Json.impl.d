lib/simkit/json.ml: Buffer Char Float List Printf String
