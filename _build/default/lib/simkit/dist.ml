type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Normal of float * float
  | Lognormal of float * float
  | Weibull of float * float
  | Pareto of float * float
  | Erlang of int * float
  | Mixture of (float * t) list

let exponential rng ~mean =
  let u = Prng.float rng in
  (* 1 - u avoids log 0. *)
  -.mean *. log (1.0 -. u)

let normal rng ~mu ~sigma =
  (* Box-Muller; one value per call keeps the stream usage predictable. *)
  let u1 = 1.0 -. Prng.float rng in
  let u2 = Prng.float rng in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let rec sample rng t =
  match t with
  | Constant c -> c
  | Uniform (lo, hi) -> lo +. ((hi -. lo) *. Prng.float rng)
  | Exponential mean -> exponential rng ~mean
  | Normal (mu, sigma) -> normal rng ~mu ~sigma
  | Lognormal (mu, sigma) -> exp (normal rng ~mu ~sigma)
  | Weibull (shape, scale) ->
    let u = 1.0 -. Prng.float rng in
    scale *. ((-.log u) ** (1.0 /. shape))
  | Pareto (alpha, xmin) ->
    let u = 1.0 -. Prng.float rng in
    xmin /. (u ** (1.0 /. alpha))
  | Erlang (k, mean_per_stage) ->
    let acc = ref 0.0 in
    for _ = 1 to k do
      acc := !acc +. exponential rng ~mean:mean_per_stage
    done;
    !acc
  | Mixture weighted ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    let target = Prng.float rng *. total in
    let rec pick acc = function
      | [] -> invalid_arg "Dist.sample: empty mixture"
      | [ (_, d) ] -> sample rng d
      | (w, d) :: rest -> if acc +. w >= target then sample rng d else pick (acc +. w) rest
    in
    pick 0.0 weighted

let sample_positive rng t = Float.max 0.0 (sample rng t)

let rec mean t =
  match t with
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Normal (mu, _) -> mu
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sigma /. 2.0))
  | Weibull (shape, scale) ->
    (* Gamma(1 + 1/shape) via Stirling-quality Lanczos approximation. *)
    let gamma x =
      let g = 7.0 in
      let c =
        [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
           771.32342877765313; -176.61502916214059; 12.507343278686905;
           -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
      in
      let x = x -. 1.0 in
      let a = ref c.(0) in
      let tt = x +. g +. 0.5 in
      for i = 1 to 8 do
        a := !a +. (c.(i) /. (x +. float_of_int i))
      done;
      sqrt (2.0 *. Float.pi) *. (tt ** (x +. 0.5)) *. exp (-.tt) *. !a
    in
    scale *. gamma (1.0 +. (1.0 /. shape))
  | Pareto (alpha, xmin) ->
    if alpha <= 1.0 then infinity else alpha *. xmin /. (alpha -. 1.0)
  | Erlang (k, mean_per_stage) -> float_of_int k *. mean_per_stage
  | Mixture weighted ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    List.fold_left (fun acc (w, d) -> acc +. (w /. total *. mean d)) 0.0 weighted

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = Prng.float rng *. total in
  let rec pick i acc =
    if i >= n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if acc >= target then i + 1 else pick (i + 1) acc
  in
  pick 0 0.0

let poisson rng ~mean =
  if mean <= 0.0 then 0
  else if mean > 50.0 then
    (* Normal approximation with continuity correction. *)
    let v = normal rng ~mu:mean ~sigma:(sqrt mean) in
    Stdlib.max 0 (int_of_float (Float.round v))
  else begin
    let l = exp (-.mean) in
    let k = ref 0 in
    let p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. Prng.float rng;
      if !p <= l then continue := false
    done;
    !k - 1
  end
