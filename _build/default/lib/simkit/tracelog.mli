(** Structured trace log for simulations.

    A bounded ring of timestamped, categorised events.  Subsystems record
    what happened ("deploy", "fault", "scheduler"...); tools query by
    category or time window — the debugging companion to a
    discrete-event simulation, and the backing store for the CLI's
    verbose output. *)

type entry = {
  time : float;
  category : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] entries (default 10_000): older entries
    are dropped first. *)

val record : t -> time:float -> category:string -> string -> unit

val recordf :
  t -> time:float -> category:string -> ('a, unit, string, unit) format4 -> 'a

val size : t -> int
val capacity : t -> int
val dropped : t -> int
(** Entries evicted so far. *)

val entries : t -> entry list
(** Oldest first. *)

val by_category : t -> string -> entry list

val between : t -> lo:float -> hi:float -> entry list

val categories : t -> (string * int) list
(** Category histogram over retained entries, sorted by count. *)

val render : ?limit:int -> t -> string
(** Human-readable tail (most recent [limit] entries, default 50). *)

val clear : t -> unit
