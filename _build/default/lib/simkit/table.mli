(** ASCII table rendering for the benchmark harness and the status page. *)

type align = Left | Right | Center

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] draws a boxed table.  Rows shorter than the
    header are padded with empty cells; longer rows are truncated.
    [align] gives per-column alignment (default all [Left]). *)

val render_plain : header:string list -> string list list -> string
(** Tab-separated variant for machine consumption. *)

val fmt_float : ?decimals:int -> float -> string
(** Locale-free float formatting ([nan] renders as ["-"]). *)

val fmt_pct : float -> string
(** Format a ratio in [\[0,1\]] as a percentage with one decimal. *)
