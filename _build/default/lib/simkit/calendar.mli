(** Simulated-calendar helpers.

    Simulation time is seconds since an epoch fixed at Monday 00:00.
    The testing framework's peak-hours and week-end policies, and the
    monthly reliability series, are all expressed on this calendar. *)

val second : float
val minute : float
val hour : float
val day : float
val week : float

val month : float
(** A scheduling month, fixed at 30 days to make series regular. *)

val hour_of_day : float -> int
(** Hour in [\[0, 23\]] of a simulation instant. *)

val day_of_week : float -> int
(** 0 = Monday ... 6 = Sunday. *)

val is_weekend : float -> bool

val is_peak_hours : float -> bool
(** Working hours on working days: Monday-Friday, 08:00-19:00 — the window
    during which the paper's scheduler avoids competing with users. *)

val peak_end : float -> float
(** The instant the current day's peak window closes (19:00 on the same
    day).  Only meaningful for instants satisfying {!is_peak_hours}. *)

val day_index : float -> int
(** Whole days elapsed since the epoch. *)

val month_index : float -> int
(** Whole 30-day months elapsed since the epoch. *)

val pp_instant : Format.formatter -> float -> unit
(** Render as [d<day> hh:mm:ss], e.g. [d012 13:05:00]. *)

val to_string : float -> string
