(** Probability distributions used by workload generators, timing models
    and fault-arrival processes.

    Every sampler takes the PRNG stream explicitly so that call sites
    document which stream they consume. *)

type t =
  | Constant of float
  | Uniform of float * float  (** [Uniform (lo, hi)] *)
  | Exponential of float  (** [Exponential mean] (not rate) *)
  | Normal of float * float  (** [Normal (mu, sigma)] *)
  | Lognormal of float * float  (** [Lognormal (mu, sigma)] of underlying normal *)
  | Weibull of float * float  (** [Weibull (shape, scale)] *)
  | Pareto of float * float  (** [Pareto (alpha, xmin)] *)
  | Erlang of int * float  (** [Erlang (k, mean_per_stage)] *)
  | Mixture of (float * t) list  (** weighted mixture, weights need not sum to 1 *)

val sample : Prng.t -> t -> float
(** Draw one value. *)

val sample_positive : Prng.t -> t -> float
(** Like {!sample} but clamped below at [0.]. *)

val mean : t -> float
(** Analytic mean (mixtures: weighted; Pareto with [alpha <= 1]: [infinity]). *)

val exponential : Prng.t -> mean:float -> float
(** Direct exponential sampler, used by Poisson arrival processes. *)

val normal : Prng.t -> mu:float -> sigma:float -> float
(** Direct Box-Muller sampler. *)

val zipf : Prng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[1, n\]] with exponent [s] (by inversion on
    the exact CDF; [n] is expected to be modest, e.g. cluster counts). *)

val poisson : Prng.t -> mean:float -> int
(** Poisson-distributed count (Knuth for small means, normal approximation
    above 50). *)
