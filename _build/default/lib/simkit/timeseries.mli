(** Append-only time series, the storage behind the monitoring service
    and the status page's historical view. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
val name : t -> string

val add : t -> time:float -> float -> unit
(** Samples must be appended in non-decreasing time order.
    @raise Invalid_argument when going backwards. *)

val length : t -> int
val last : t -> (float * float) option
val nth : t -> int -> float * float

val between : t -> lo:float -> hi:float -> (float * float) list
(** Samples with [lo <= time <= hi], in time order. *)

val values_between : t -> lo:float -> hi:float -> float array

val mean_between : t -> lo:float -> hi:float -> float
(** [nan] when the window is empty. *)

val downsample : t -> bucket:float -> (float * float) list
(** Mean per [bucket]-second window, keyed by the window start. *)

val iter : t -> (float -> float -> unit) -> unit

val sparkline : t -> lo:float -> hi:float -> width:int -> string
(** Tiny ASCII chart of the window, for live-visualisation displays. *)
