(** OAR resource-selection expressions.

    The paper's example:
    {v
oarsub -l "cluster='a' and gpu='YES'/nodes=1+cluster='b' and
           eth10g='Y'/nodes=2,walltime=2"
    v}

    This module implements the property-filter sub-language (the part
    before each ['/']): comparisons on node properties combined with
    [and], [or], [not] and parentheses.  {!Request} builds on it for the
    full [-l] syntax. *)

type value = S of string | I of int

type t =
  | Cmp of string * op * value  (** [property op value] *)
  | And of t * t
  | Or of t * t
  | Not of t
  | True  (** empty filter: every node matches *)

and op = Eq | Neq | Ge | Le | Gt | Lt

val parse : string -> (t, string) result
(** Parse a filter such as ["cluster='a' and gpu='YES'"].  The empty (or
    blank) string parses to {!True}. *)

val parse_exn : string -> t
(** @raise Invalid_argument on syntax errors. *)

val equal : t -> t -> bool
(** Structural equality — two filters that would always select the same
    hosts can still differ (no normalisation is attempted). *)

val hash : t -> int
(** Compatible with {!equal}; lets callers memoise per parsed filter
    (e.g. [Hashtbl.Make (Expr)]) without re-rendering strings. *)

val eval : t -> props:(string -> string option) -> bool
(** Evaluate against a property lookup.  String comparisons are
    case-sensitive; numeric operators compare integers when both sides
    parse as integers, strings otherwise.  A missing property makes any
    comparison false (and its [Neq] true). *)

val properties_used : t -> string list
(** Sorted, deduplicated property names appearing in the filter. *)

val to_string : t -> string
(** Re-render in OAR syntax (canonical parenthesisation). *)
