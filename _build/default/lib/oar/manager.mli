(** The OAR server: property database, job queue, FCFS scheduler with
    per-node Gantt reservations.

    Scheduling is conservative: each waiting job gets the earliest
    reservation compatible with existing ones, in submission order.
    Best-effort jobs go last, and their future reservations stay
    re-placeable until the job actually starts — a later default job
    takes the slot and the best-effort job is pushed back (OAR's
    best-effort semantics, minus in-flight preemption).  [~immediate:true] submissions — used by the
    external test scheduler — are rejected instead of queued when they
    cannot start right away, reproducing the paper's "if the testbed job
    fails to be scheduled immediately, it is cancelled and the build is
    marked as unstable". *)

type t

type submit_error =
  | No_matching_resource  (** filter matches nothing at all *)
  | Not_immediately_schedulable of float
      (** earliest possible start (absolute time), for immediate jobs *)
  | Service_unavailable  (** the OAR service itself is down at that site *)

val create : Testbed.Instance.t -> t

val instance : t -> Testbed.Instance.t
val properties : t -> Property.t

val refresh_properties : t -> unit
(** Re-derive the property database from the Reference API. *)

val submit :
  t ->
  ?user:string ->
  ?jtype:Job.jtype ->
  ?duration:float ->
  ?immediate:bool ->
  Request.t ->
  (Job.t, submit_error) result
(** [duration] defaults to the request's walltime.  The result job is
    {!Job.Waiting} or {!Job.Scheduled}; progression to Running/Terminated
    happens through engine events. *)

val submit_at :
  t ->
  ?user:string ->
  ?jtype:Job.jtype ->
  ?duration:float ->
  start:float ->
  Request.t ->
  (Job.t, submit_error) result
(** Advance reservation (OAR's [-r <date>]): commit resources for a
    specific future start time.  Fails with
    {!Not_immediately_schedulable} when the requested slot is already
    taken (OAR rejects rather than moves advance reservations), and with
    [Invalid_argument] when [start] is in the past. *)

val cancel : t -> Job.t -> unit

val job : t -> int -> Job.t option
val jobs : t -> Job.t list
(** All jobs ever submitted, in id order. *)

val running_jobs : t -> Job.t list
val waiting_jobs : t -> Job.t list

val matching_hosts : t -> Expr.t -> string list
(** Hosts whose properties satisfy the filter (sorted). *)

val free_matching_now : t -> Expr.t -> string list
(** Matching hosts that are Alive and unreserved right now. *)

val free_at_least : t -> Expr.t -> int -> bool
(** [free_at_least t filter n] is [List.length (free_matching_now t
    filter) >= n], but stops scanning the host pool as soon as [n] free
    hosts are found — the external scheduler's resource precheck, called
    every poll for every due configuration. *)

val estimate_start : t -> Request.t -> float option
(** Earliest feasible start for a hypothetical request, [None] if the
    filters match nothing. *)

val on_job_end : t -> (Job.t -> unit) -> unit
(** Register a listener called whenever a job reaches a final state. *)

val utilisation : t -> lo:float -> hi:float -> float
(** Mean node-reservation utilisation over a window. *)

val assigned_busy_consistent : t -> bool
(** Invariant used by the [oarstate] test: every node assigned to a
    Running job is Alive or Deploying/Rebooting under a deploy job, and
    no host is assigned to two running jobs. *)
