(** The OAR property database.

    "OAR database filled from Reference API": properties are derived from
    the published Reference API documents, not from ground truth, so a
    stale description propagates into scheduling — exactly the failure
    mode the [oarproperties] test family looks for.  The
    [oar-property-desync] fault additionally corrupts the database copy
    itself. *)

type t

val create : unit -> t

val refresh_from_refapi : t -> Testbed.Faults.ctx -> unit
(** Rebuild all property rows from the current Reference API documents,
    then apply any active [oar_desync] corruption flags. *)

val get : t -> host:string -> string -> string option
(** Property lookup, e.g. [get t ~host "cluster"]. *)

val props_fun : t -> host:string -> string -> string option
(** Partially applied lookup suitable for {!Expr.eval}'s [~props]. *)

val all_of : t -> host:string -> (string * string) list
(** All properties of a host, sorted by name. *)

val hosts : t -> string list

val expected_of_doc : Simkit.Json.t -> (string * string) list
(** Properties a Reference API document should induce — used by the
    [oarproperties] consistency check. *)
