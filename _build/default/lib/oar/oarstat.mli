(** CLI-style renderers: what users see when they run [oarstat] and
    [oarnodes] on a frontend — the observable surface the [cmdline] test
    family exercises. *)

val oarstat : Manager.t -> string
(** The job table: id, user, type, state, submission time, nodes.
    Finished jobs older than the most recent 50 are elided. *)

val oarstat_job : Manager.t -> int -> string option
(** [oarstat -j <id>]: full details of one job. *)

val oarnodes : Manager.t -> cluster:string -> string
(** Per-node state and properties of one cluster. *)
