type user_row = {
  user : string;
  jobs : int;
  node_seconds : float;
  mean_wait : float;
}

type cluster_row = { acc_cluster : string; c_jobs : int; c_node_seconds : float }

type user_acc = {
  mutable u_jobs : int;
  mutable u_node_seconds : float;
  mutable u_wait_total : float;
  mutable u_started : int;
}

type t = {
  users : (string, user_acc) Hashtbl.t;
  clusters : (string, int * float) Hashtbl.t;
  mutable waits : float list;  (* newest first *)
  mutable seen : int;
}

let cluster_of_host host =
  match String.index_opt host '-' with
  | Some i -> String.sub host 0 i
  | None -> host

let on_end t (job : Job.t) =
  t.seen <- t.seen + 1;
  let usage =
    match (job.Job.started_at, job.Job.ended_at) with
    | Some start, Some stop ->
      Float.max 0.0 (stop -. start) *. float_of_int (List.length job.Job.assigned)
    | _ -> 0.0
  in
  let acc =
    match Hashtbl.find_opt t.users job.Job.user with
    | Some acc -> acc
    | None ->
      let acc = { u_jobs = 0; u_node_seconds = 0.0; u_wait_total = 0.0; u_started = 0 } in
      Hashtbl.replace t.users job.Job.user acc;
      acc
  in
  acc.u_jobs <- acc.u_jobs + 1;
  acc.u_node_seconds <- acc.u_node_seconds +. usage;
  (match Job.wait_time job with
   | Some wait ->
     acc.u_wait_total <- acc.u_wait_total +. wait;
     acc.u_started <- acc.u_started + 1;
     t.waits <- wait :: t.waits
   | None -> ());
  (* Attribute node-seconds per assigned host's cluster. *)
  (match (job.Job.started_at, job.Job.ended_at) with
   | Some start, Some stop ->
     let per_node = Float.max 0.0 (stop -. start) in
     List.iter
       (fun host ->
         let cluster = cluster_of_host host in
         let jobs, ns = Option.value ~default:(0, 0.0) (Hashtbl.find_opt t.clusters cluster) in
         Hashtbl.replace t.clusters cluster (jobs + 1, ns +. per_node))
       job.Job.assigned
   | _ -> ())

let create manager =
  let t = { users = Hashtbl.create 64; clusters = Hashtbl.create 32; waits = []; seen = 0 } in
  Manager.on_job_end manager (fun job -> on_end t job);
  t

let jobs_seen t = t.seen

let user_report t =
  Hashtbl.fold
    (fun user acc rows ->
      {
        user;
        jobs = acc.u_jobs;
        node_seconds = acc.u_node_seconds;
        mean_wait =
          (if acc.u_started = 0 then nan
           else acc.u_wait_total /. float_of_int acc.u_started);
      }
      :: rows)
    t.users []
  |> List.sort (fun a b -> compare b.node_seconds a.node_seconds)

let cluster_report t =
  Hashtbl.fold
    (fun acc_cluster (c_jobs, c_node_seconds) rows ->
      { acc_cluster; c_jobs; c_node_seconds } :: rows)
    t.clusters []
  |> List.sort (fun a b -> compare b.c_node_seconds a.c_node_seconds)

let wait_times t = Array.of_list (List.rev t.waits)

let wait_percentile t p =
  let waits = wait_times t in
  if Array.length waits = 0 then nan else Simkit.Stats.percentile waits p

let utilisation_node_seconds t =
  Hashtbl.fold (fun _ acc total -> total +. acc.u_node_seconds) t.users 0.0

let render ?(top = 10) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Simkit.Table.render
       ~header:[ "user"; "jobs"; "node-hours"; "mean wait" ]
       (user_report t
       |> List.filteri (fun i _ -> i < top)
       |> List.map (fun row ->
              [ row.user; string_of_int row.jobs;
                Printf.sprintf "%.1f" (row.node_seconds /. 3600.0);
                (if Float.is_nan row.mean_wait then "-"
                 else Printf.sprintf "%.0f s" row.mean_wait) ])));
  if Array.length (wait_times t) > 0 then
    Buffer.add_string buf
      (Printf.sprintf "wait: p50=%.0f s  p90=%.0f s  p99=%.0f s  (%d jobs)\n"
         (wait_percentile t 0.5) (wait_percentile t 0.9) (wait_percentile t 0.99)
         t.seen);
  Buffer.contents buf
