(** Full [oarsub -l] resource requests.

    Syntax (as in the paper's example):
    {v <filter>/nodes=<n> [+ <filter>/nodes=<n> ...] [,walltime=<hours>] v}

    [nodes=ALL] requests every matching node (the hardware-centric test
    scope).  [walltime] accepts [h], [h:mm] or [h:mm:ss]. *)

type group = {
  filter : Expr.t;
  count : [ `N of int | `All ];
}

type t = {
  groups : group list;
  walltime : float;  (** seconds *)
}

val parse : string -> (t, string) result
val parse_exn : string -> t

val nodes : ?filter:string -> [ `N of int | `All ] -> walltime:float -> t
(** Programmatic construction; [filter] is an {!Expr} source string
    (default: match everything), [walltime] in seconds. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
