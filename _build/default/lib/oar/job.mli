(** OAR jobs. *)

type jtype =
  | Default
  | Deploy  (** grants root / Kadeploy rights on the nodes *)
  | Besteffort  (** lowest priority *)

type state =
  | Waiting
  | Scheduled  (** reservation committed, start in the future *)
  | Running
  | Terminated
  | Error  (** e.g. an assigned node died before launch *)
  | Cancelled

type t = {
  id : int;
  user : string;
  jtype : jtype;
  request : Request.t;
  submitted_at : float;
  duration : float;  (** actual work time, [<= walltime] *)
  mutable state : state;
  mutable assigned : string list;
  mutable scheduled_start : float;
  mutable started_at : float option;
  mutable ended_at : float option;
}

val jtype_to_string : jtype -> string
val state_to_string : state -> string
val is_finished : t -> bool
val wait_time : t -> float option
(** Start minus submission, once started. *)

val pp : Format.formatter -> t -> unit
