type value = S of string | I of int

type t =
  | Cmp of string * op * value
  | And of t * t
  | Or of t * t
  | Not of t
  | True

and op = Eq | Neq | Ge | Le | Gt | Lt

(* ---- lexer -------------------------------------------------------------- *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | OP of op
  | LPAREN
  | RPAREN
  | AND
  | OR
  | NOT

exception Syntax of string

let lex input =
  let len = String.length input in
  let pos = ref 0 in
  let tokens = ref [] in
  let push tok = tokens := tok :: !tokens in
  let is_ident_char c =
    match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
  in
  while !pos < len do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' -> incr pos
    | '(' ->
      push LPAREN;
      incr pos
    | ')' ->
      push RPAREN;
      incr pos
    | '\'' ->
      incr pos;
      let start = !pos in
      while !pos < len && input.[!pos] <> '\'' do
        incr pos
      done;
      if !pos >= len then raise (Syntax "unterminated quoted string");
      push (STRING (String.sub input start (!pos - start)));
      incr pos
    | '=' ->
      push (OP Eq);
      incr pos
    | '!' ->
      if !pos + 1 < len && input.[!pos + 1] = '=' then begin
        push (OP Neq);
        pos := !pos + 2
      end
      else raise (Syntax "expected '=' after '!'")
    | '<' ->
      if !pos + 1 < len && input.[!pos + 1] = '=' then begin
        push (OP Le);
        pos := !pos + 2
      end
      else if !pos + 1 < len && input.[!pos + 1] = '>' then begin
        push (OP Neq);
        pos := !pos + 2
      end
      else begin
        push (OP Lt);
        incr pos
      end
    | '>' ->
      if !pos + 1 < len && input.[!pos + 1] = '=' then begin
        push (OP Ge);
        pos := !pos + 2
      end
      else begin
        push (OP Gt);
        incr pos
      end
    | '0' .. '9' ->
      let start = !pos in
      while !pos < len && (match input.[!pos] with '0' .. '9' -> true | _ -> false) do
        incr pos
      done;
      push (INT (int_of_string (String.sub input start (!pos - start))))
    | c when is_ident_char c ->
      let start = !pos in
      while !pos < len && is_ident_char input.[!pos] do
        incr pos
      done;
      let word = String.sub input start (!pos - start) in
      (match String.lowercase_ascii word with
       | "and" -> push AND
       | "or" -> push OR
       | "not" -> push NOT
       | _ -> push (IDENT word))
    | c -> raise (Syntax (Printf.sprintf "unexpected character %c" c))
  done;
  List.rev !tokens

(* ---- parser: or_expr > and_expr > unary > atom -------------------------- *)

let parse_tokens tokens =
  let rest = ref tokens in
  let peek () = match !rest with [] -> None | tok :: _ -> Some tok in
  let advance () = match !rest with [] -> () | _ :: tl -> rest := tl in
  let rec or_expr () =
    let left = and_expr () in
    match peek () with
    | Some OR ->
      advance ();
      Or (left, or_expr ())
    | _ -> left
  and and_expr () =
    let left = unary () in
    match peek () with
    | Some AND ->
      advance ();
      And (left, and_expr ())
    | _ -> left
  and unary () =
    match peek () with
    | Some NOT ->
      advance ();
      Not (unary ())
    | _ -> atom ()
  and atom () =
    match peek () with
    | Some LPAREN ->
      advance ();
      let inner = or_expr () in
      (match peek () with
       | Some RPAREN ->
         advance ();
         inner
       | _ -> raise (Syntax "expected ')'"))
    | Some (IDENT prop) -> (
      advance ();
      match peek () with
      | Some (OP op) -> (
        advance ();
        match peek () with
        | Some (STRING s) ->
          advance ();
          Cmp (prop, op, S s)
        | Some (INT i) ->
          advance ();
          Cmp (prop, op, I i)
        | Some (IDENT s) ->
          (* bare-word value, tolerated like OAR does *)
          advance ();
          Cmp (prop, op, S s)
        | _ -> raise (Syntax "expected a value after comparison operator"))
      | _ -> raise (Syntax (Printf.sprintf "expected operator after property %s" prop)))
    | _ -> raise (Syntax "expected a comparison or '('")
  in
  let result = or_expr () in
  if !rest <> [] then raise (Syntax "trailing tokens");
  result

let parse input =
  if String.trim input = "" then Ok True
  else
    match parse_tokens (lex input) with
    | expr -> Ok expr
    | exception Syntax msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok expr -> expr
  | Error msg -> invalid_arg ("Expr.parse_exn: " ^ msg)

let compare_values op (actual : string) (expected : value) =
  let numeric a b =
    match op with
    | Eq -> a = b
    | Neq -> a <> b
    | Ge -> a >= b
    | Le -> a <= b
    | Gt -> a > b
    | Lt -> a < b
  in
  match expected with
  | I i -> (
    match int_of_string_opt actual with Some a -> numeric a i | None -> op = Neq)
  | S s -> (
    match op with
    | Eq -> String.equal actual s
    | Neq -> not (String.equal actual s)
    | Ge -> String.compare actual s >= 0
    | Le -> String.compare actual s <= 0
    | Gt -> String.compare actual s > 0
    | Lt -> String.compare actual s < 0)

let rec eval t ~props =
  match t with
  | True -> true
  | And (a, b) -> eval a ~props && eval b ~props
  | Or (a, b) -> eval a ~props || eval b ~props
  | Not a -> not (eval a ~props)
  | Cmp (prop, op, expected) -> (
    match props prop with
    | Some actual -> compare_values op actual expected
    | None -> op = Neq)

let value_equal a b =
  match (a, b) with
  | S x, S y -> String.equal x y
  | I x, I y -> x = y
  | S _, I _ | I _, S _ -> false

let rec equal a b =
  match (a, b) with
  | True, True -> true
  | Cmp (pa, oa, va), Cmp (pb, ob, vb) ->
    String.equal pa pb && oa = ob && value_equal va vb
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Not a, Not b -> equal a b
  | (True | Cmp _ | And _ | Or _ | Not _), _ -> false

let hash t = Hashtbl.hash t

let properties_used t =
  let rec collect acc = function
    | True -> acc
    | Cmp (prop, _, _) -> prop :: acc
    | And (a, b) | Or (a, b) -> collect (collect acc a) b
    | Not a -> collect acc a
  in
  List.sort_uniq String.compare (collect [] t)

let op_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Ge -> ">="
  | Le -> "<="
  | Gt -> ">"
  | Lt -> "<"

let rec to_string = function
  | True -> ""
  | Cmp (prop, op, S s) -> Printf.sprintf "%s%s'%s'" prop (op_to_string op) s
  | Cmp (prop, op, I i) -> Printf.sprintf "%s%s%d" prop (op_to_string op) i
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "not %s" (to_string a)
