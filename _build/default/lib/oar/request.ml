type group = { filter : Expr.t; count : [ `N of int | `All ] }
type t = { groups : group list; walltime : float }

let parse_walltime text =
  match String.split_on_char ':' (String.trim text) with
  | [ h ] -> (
    match float_of_string_opt h with
    | Some hours -> Ok (hours *. 3600.0)
    | None -> Error "bad walltime")
  | [ h; m ] -> (
    match (int_of_string_opt h, int_of_string_opt m) with
    | Some h, Some m -> Ok (float_of_int ((h * 3600) + (m * 60)))
    | _ -> Error "bad walltime")
  | [ h; m; s ] -> (
    match (int_of_string_opt h, int_of_string_opt m, int_of_string_opt s) with
    | Some h, Some m, Some s -> Ok (float_of_int ((h * 3600) + (m * 60) + s))
    | _ -> Error "bad walltime")
  | _ -> Error "bad walltime"

let parse_group text =
  let text = String.trim text in
  (* The resource part is the suffix after the last '/'; everything before
     is the property filter. *)
  match String.rindex_opt text '/' with
  | None -> (
    (* No filter at all: "nodes=2". *)
    match String.index_opt text '=' with
    | Some _ when String.length text >= 6 && String.sub text 0 6 = "nodes=" -> (
      let v = String.sub text 6 (String.length text - 6) in
      match v with
      | "ALL" | "all" -> Ok { filter = Expr.True; count = `All }
      | v -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Ok { filter = Expr.True; count = `N n }
        | _ -> Error "bad node count"))
    | _ -> Error "expected nodes=<n>")
  | Some slash -> (
    let filter_text = String.sub text 0 slash in
    let resource = String.trim (String.sub text (slash + 1) (String.length text - slash - 1)) in
    match Expr.parse filter_text with
    | Error e -> Error e
    | Ok filter ->
      if String.length resource >= 6 && String.sub resource 0 6 = "nodes=" then begin
        let v = String.sub resource 6 (String.length resource - 6) in
        match v with
        | "ALL" | "all" -> Ok { filter; count = `All }
        | v -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> Ok { filter; count = `N n }
          | _ -> Error "bad node count")
      end
      else Error "expected nodes=<n> after '/'")

let parse input =
  let input = String.trim input in
  let body, walltime =
    (* walltime is introduced by the last ",walltime=" occurrence. *)
    let marker = ",walltime=" in
    let rec find_last from acc =
      match String.index_from_opt input from ',' with
      | None -> acc
      | Some i ->
        let acc =
          if
            i + String.length marker <= String.length input
            && String.sub input i (String.length marker) = marker
          then Some i
          else acc
        in
        find_last (i + 1) acc
    in
    match find_last 0 None with
    | Some i ->
      ( String.sub input 0 i,
        Some (String.sub input (i + String.length marker)
                (String.length input - i - String.length marker)) )
    | None -> (input, None)
  in
  let walltime_result =
    match walltime with None -> Ok 3600.0 | Some w -> parse_walltime w
  in
  match walltime_result with
  | Error e -> Error e
  | Ok walltime ->
    let group_texts = String.split_on_char '+' body in
    let rec build acc = function
      | [] -> Ok { groups = List.rev acc; walltime }
      | text :: rest -> (
        match parse_group text with
        | Ok g -> build (g :: acc) rest
        | Error e -> Error e)
    in
    build [] group_texts

let parse_exn input =
  match parse input with
  | Ok t -> t
  | Error msg -> invalid_arg ("Request.parse_exn: " ^ msg)

let nodes ?(filter = "") count ~walltime =
  { groups = [ { filter = Expr.parse_exn filter; count } ]; walltime }

let count_to_string = function `N n -> string_of_int n | `All -> "ALL"

let to_string t =
  let groups =
    List.map
      (fun g ->
        let f = Expr.to_string g.filter in
        if f = "" then Printf.sprintf "nodes=%s" (count_to_string g.count)
        else Printf.sprintf "%s/nodes=%s" f (count_to_string g.count))
      t.groups
  in
  Printf.sprintf "%s,walltime=%g" (String.concat "+" groups) (t.walltime /. 3600.0)

let pp ppf t = Format.pp_print_string ppf (to_string t)
