lib/oar/job.ml: Format List Request
