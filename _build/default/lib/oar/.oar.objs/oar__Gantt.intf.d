lib/oar/gantt.mli:
