lib/oar/workload.ml: Float Hashtbl Job List Manager Option Printf Request Simkit Stdlib Testbed
