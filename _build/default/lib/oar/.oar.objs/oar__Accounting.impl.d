lib/oar/accounting.ml: Array Buffer Float Hashtbl Job List Manager Option Printf Simkit String
