lib/oar/workload.mli: Manager Simkit
