lib/oar/gantt.ml: Float Hashtbl List Option
