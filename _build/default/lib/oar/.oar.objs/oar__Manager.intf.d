lib/oar/manager.mli: Expr Job Property Request Testbed
