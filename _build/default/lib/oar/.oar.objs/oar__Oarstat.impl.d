lib/oar/oarstat.ml: Job List Manager Option Printf Property Request Simkit String Testbed
