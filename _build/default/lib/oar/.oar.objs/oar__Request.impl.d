lib/oar/request.ml: Expr Format List Printf String
