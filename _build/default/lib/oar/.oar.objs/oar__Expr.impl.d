lib/oar/expr.ml: Hashtbl List Printf String
