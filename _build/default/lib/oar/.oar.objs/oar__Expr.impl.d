lib/oar/expr.ml: List Printf String
