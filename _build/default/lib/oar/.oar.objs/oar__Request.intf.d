lib/oar/request.mli: Expr Format
