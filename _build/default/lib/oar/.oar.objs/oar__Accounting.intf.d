lib/oar/accounting.mli: Manager
