lib/oar/property.ml: Float Hashtbl List Option Printf Simkit String Testbed
