lib/oar/job.mli: Format Request
