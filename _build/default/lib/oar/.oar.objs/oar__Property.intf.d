lib/oar/property.mli: Simkit Testbed
