lib/oar/expr.mli:
