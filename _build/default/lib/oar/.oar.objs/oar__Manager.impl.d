lib/oar/manager.ml: Array Expr Float Fun Gantt Hashtbl Job List Option Property Request Simkit String Testbed
