lib/oar/manager.ml: Expr Float Fun Gantt Hashtbl Job List Option Property Request Simkit String Testbed
