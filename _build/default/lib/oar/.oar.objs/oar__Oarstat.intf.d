lib/oar/oarstat.mli: Manager
