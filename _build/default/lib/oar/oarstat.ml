let state_cell job = Job.state_to_string job.Job.state

let oarstat manager =
  let jobs = Manager.jobs manager in
  let finished, live = List.partition Job.is_finished jobs in
  let recent_finished =
    let n = List.length finished in
    List.filteri (fun i _ -> i >= n - 50) finished
  in
  let rows =
    List.map
      (fun job ->
        [ string_of_int job.Job.id; job.Job.user; Job.jtype_to_string job.Job.jtype;
          state_cell job;
          Simkit.Calendar.to_string job.Job.submitted_at;
          string_of_int (List.length job.Job.assigned) ])
      (recent_finished @ live)
  in
  Simkit.Table.render ~header:[ "Job id"; "User"; "Type"; "State"; "Submitted"; "Nodes" ]
    rows

let oarstat_job manager id =
  match Manager.job manager id with
  | None -> None
  | Some job ->
    let field name value = Printf.sprintf "    %-12s = %s" name value in
    Some
      (String.concat "\n"
         ([ Printf.sprintf "Job_Id: %d" job.Job.id;
            field "owner" job.Job.user;
            field "type" (Job.jtype_to_string job.Job.jtype);
            field "state" (state_cell job);
            field "resources" (Request.to_string job.Job.request);
            field "submitted" (Simkit.Calendar.to_string job.Job.submitted_at) ]
         @ (match job.Job.started_at with
            | Some at -> [ field "started" (Simkit.Calendar.to_string at) ]
            | None -> [])
         @ (match job.Job.ended_at with
            | Some at -> [ field "ended" (Simkit.Calendar.to_string at) ]
            | None -> [])
         @ [ field "assigned" (String.concat " " job.Job.assigned) ]))

let oarnodes manager ~cluster =
  let instance = Manager.instance manager in
  let props = Manager.properties manager in
  let rows =
    Testbed.Instance.nodes_of_cluster instance cluster
    |> List.map (fun node ->
           let host = node.Testbed.Node.host in
           let prop key = Option.value ~default:"?" (Property.get props ~host key) in
           [ host;
             Testbed.Node.state_to_string node.Testbed.Node.state;
             prop "cores"; prop "memnode"; prop "gpu"; prop "eth10g"; prop "ib" ])
  in
  Simkit.Table.render
    ~header:[ "network_address"; "state"; "cores"; "mem"; "gpu"; "eth10g"; "ib" ]
    rows
