(** Per-node availability timelines (the scheduler's Gantt chart).

    Each node holds a sorted list of reservations [(start, stop, job)].
    The scheduler queries earliest placements and commits reservations;
    completed intervals are pruned lazily. *)

type t

val create : unit -> t

val reserve : t -> host:string -> start:float -> stop:float -> job:int -> unit
(** @raise Invalid_argument when the interval overlaps an existing
    reservation on the host or [stop <= start]. *)

val release : t -> host:string -> job:int -> unit
(** Drop all reservations of [job] on [host] (no-op if absent). *)

val release_job : t -> job:int -> unit
(** Drop the job's reservations on every host. *)

val truncate : t -> host:string -> job:int -> stop:float -> unit
(** Early job end: shorten the job's reservation to [stop]. *)

val is_free : t -> host:string -> start:float -> stop:float -> bool

val free_at : t -> host:string -> float -> bool

val next_free_window : t -> host:string -> after:float -> duration:float -> float
(** Earliest [t >= after] such that the host is continuously free on
    [\[t, t + duration)]. *)

val reservations : t -> host:string -> (float * float * int) list
(** Current reservations, sorted by start. *)

val prune : t -> before:float -> unit
(** Forget reservations that ended before [before]. *)

val utilisation : t -> host:string -> lo:float -> hi:float -> float
(** Fraction of [\[lo, hi\]] covered by reservations. *)
