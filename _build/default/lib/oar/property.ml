type t = { rows : (string, (string * string) list) Hashtbl.t }

let create () = { rows = Hashtbl.create 1024 }

let yes_no b = if b then "YES" else "NO"

let expected_of_doc doc =
  let open Simkit.Json in
  let hw = Option.value ~default:Null (member "hardware" doc) in
  let cpu = Option.value ~default:Null (member "cpu" hw) in
  let cores_per_cpu = Option.value ~default:0 (int_member "cores_per_cpu" cpu) in
  let cpu_count = Option.value ~default:0 (int_member "count" cpu) in
  let memory = Option.value ~default:Null (member "memory" hw) in
  let nics = Option.value ~default:[] (list_member "nics" hw) in
  let max_rate =
    List.fold_left
      (fun acc nic -> Float.max acc (Option.value ~default:0.0 (float_member "rate_gbps" nic)))
      0.0 nics
  in
  let site = Option.value ~default:"" (string_member "site" doc) in
  let props =
    [ ("host", Option.value ~default:"" (string_member "uid" doc));
      ("cluster", Option.value ~default:"" (string_member "cluster" doc));
      ("site", site);
      ("cores", string_of_int (cores_per_cpu * cpu_count));
      ("cpufreq",
       Printf.sprintf "%.2f" (Option.value ~default:0.0 (float_member "base_freq_ghz" cpu)));
      ("memnode", string_of_int (Option.value ~default:0 (int_member "ram_gb" memory)));
      ("gpu", yes_no (Option.value ~default:false (bool_member "gpu" hw)));
      ("eth10g", if max_rate >= 10.0 then "Y" else "N");
      ("ib", yes_no (member "infiniband" hw <> Some Null && member "infiniband" hw <> None));
      ("wattmeter", yes_no (List.mem site Testbed.Inventory.wattmeter_sites));
      ("deploy", "YES") ]
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) props

let refresh_from_refapi t ctx =
  Hashtbl.reset t.rows;
  List.iter
    (fun host ->
      match Testbed.Refapi.get ctx.Testbed.Faults.refapi host with
      | None -> ()
      | Some doc ->
        let props = expected_of_doc doc in
        let props =
          (* Active desync corruption: flip the gpu property. *)
          if Hashtbl.mem ctx.Testbed.Faults.flags ("oar_desync:" ^ host) then
            List.map
              (fun (k, v) ->
                if String.equal k "gpu" then (k, if v = "YES" then "NO" else "YES")
                else (k, v))
              props
          else props
        in
        Hashtbl.replace t.rows host props)
    (Testbed.Refapi.hosts ctx.Testbed.Faults.refapi)

let get t ~host key =
  match Hashtbl.find_opt t.rows host with
  | None -> None
  | Some props -> List.assoc_opt key props

let props_fun t ~host key = get t ~host key
let all_of t ~host = Option.value ~default:[] (Hashtbl.find_opt t.rows host)

let hosts t =
  Hashtbl.fold (fun host _ acc -> host :: acc) t.rows [] |> List.sort String.compare
