(** OAR accounting: usage and waiting-time statistics.

    The paper's scheduling section is driven by one fact — the testbed is
    heavily used and queues are long.  This module quantifies that: it
    listens to job completions and accumulates per-user and per-cluster
    usage, plus the wait-time distribution that the external scheduler's
    policies are designed around. *)

type user_row = {
  user : string;
  jobs : int;
  node_seconds : float;
  mean_wait : float;  (** seconds, over started jobs; [nan] if none *)
}

type cluster_row = {
  acc_cluster : string;
  c_jobs : int;
  c_node_seconds : float;
}

type t

val create : Manager.t -> t
(** Starts recording from now on ({!Manager.on_job_end}). *)

val jobs_seen : t -> int
val user_report : t -> user_row list
(** Sorted by node-seconds, heaviest user first. *)

val cluster_report : t -> cluster_row list
(** Sorted by node-seconds.  A job's usage is attributed to the cluster
    of each assigned host. *)

val wait_times : t -> float array
(** Wait (start - submission) of every started job, recording order. *)

val wait_percentile : t -> float -> float
(** Percentile of {!wait_times}; [nan] when no job started yet. *)

val utilisation_node_seconds : t -> float
(** Total node-seconds consumed by finished jobs. *)

val render : ?top:int -> t -> string
(** Usage table (default top 10 users) plus the wait distribution
    (p50/p90/p99). *)
