type jtype = Default | Deploy | Besteffort
type state = Waiting | Scheduled | Running | Terminated | Error | Cancelled

type t = {
  id : int;
  user : string;
  jtype : jtype;
  request : Request.t;
  submitted_at : float;
  duration : float;
  mutable state : state;
  mutable assigned : string list;
  mutable scheduled_start : float;
  mutable started_at : float option;
  mutable ended_at : float option;
}

let jtype_to_string = function
  | Default -> "default"
  | Deploy -> "deploy"
  | Besteffort -> "besteffort"

let state_to_string = function
  | Waiting -> "Waiting"
  | Scheduled -> "Scheduled"
  | Running -> "Running"
  | Terminated -> "Terminated"
  | Error -> "Error"
  | Cancelled -> "Cancelled"

let is_finished t =
  match t.state with Terminated | Error | Cancelled -> true | _ -> false

let wait_time t =
  match t.started_at with Some s -> Some (s -. t.submitted_at) | None -> None

let pp ppf t =
  Format.fprintf ppf "job %d (%s, %s) %s [%d nodes]" t.id t.user
    (jtype_to_string t.jtype) (state_to_string t.state) (List.length t.assigned)
