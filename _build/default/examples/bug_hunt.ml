(* Bug hunt: inject one fault of every class the paper reports as a real
   bug, let the whole test catalog run for a simulated week under the
   external scheduler, and show which test caught what.

   Run with: dune exec examples/bug_hunt.exe *)

let () =
  let env = Framework.Env.create ~seed:7L () in
  let faults = Framework.Env.faults env in
  let tracker = Framework.Bugtracker.create () in
  Framework.Jobs.define_all env ~on_evidence:(fun evidence ->
      ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));

  (* One fault per kind, on deterministic targets where it matters. *)
  let injected =
    List.filter_map
      (fun kind -> Testbed.Faults.inject faults ~now:0.0 kind)
      Testbed.Faults.all_kinds
  in
  Oar.Manager.refresh_properties env.Framework.Env.oar;
  Format.printf "injected %d faults:@." (List.length injected);
  List.iter
    (fun f ->
      Format.printf "  [%-20s] %s@."
        (Testbed.Faults.kind_to_string f.Testbed.Faults.kind)
        f.Testbed.Faults.what)
    injected;

  (* Enable every family and let the external scheduler hunt. *)
  let scheduler = Framework.Scheduler.create env in
  List.iter (Framework.Scheduler.enable_family scheduler) Framework.Testdef.all_families;
  Framework.Scheduler.start scheduler;
  Framework.Env.run_until env (7.0 *. Simkit.Calendar.day);

  Format.printf "@.after one simulated week:@.";
  let detected, missed =
    List.partition (fun f -> f.Testbed.Faults.detected_at <> None) injected
  in
  List.iter
    (fun f ->
      Format.printf "  CAUGHT  [%-20s] after %s@."
        (Testbed.Faults.kind_to_string f.Testbed.Faults.kind)
        (Simkit.Calendar.to_string (Option.get f.Testbed.Faults.detected_at)))
    detected;
  List.iter
    (fun f ->
      Format.printf "  missed  [%-20s] %s@."
        (Testbed.Faults.kind_to_string f.Testbed.Faults.kind)
        f.Testbed.Faults.what)
    missed;

  Format.printf "@.bugs filed by the framework:@.";
  List.iter
    (fun bug ->
      Format.printf "  #%-3d [%-14s] %s@." bug.Framework.Bugtracker.id
        bug.Framework.Bugtracker.category bug.Framework.Bugtracker.summary)
    (Framework.Bugtracker.all tracker);
  let stats = Framework.Scheduler.stats scheduler in
  Format.printf "@.scheduler: %d builds triggered, %d ok / %d failed / %d unstable@."
    stats.Framework.Scheduler.triggered stats.Framework.Scheduler.completed_success
    stats.Framework.Scheduler.completed_failure
    stats.Framework.Scheduler.completed_unstable
