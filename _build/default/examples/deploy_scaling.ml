(* Kadeploy scaling: deploy a standard environment on growing node counts
   and show that the chain broadcast keeps the time nearly flat — "200
   nodes deployed in ~5 minutes".

   Run with: dune exec examples/deploy_scaling.exe *)

let deploy_once instance registry nodes =
  let result = ref None in
  Kadeploy.Deploy.run instance ~registry ~image:"debian8-x64-std" ~nodes
    ~on_done:(fun r -> result := Some r);
  Simkit.Engine.run_until instance.Testbed.Instance.engine
    (Simkit.Engine.now instance.Testbed.Instance.engine +. 7200.0);
  Option.get !result

let () =
  let instance = Testbed.Instance.build ~seed:3L () in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  (* A pool of 256 nodes across the big clusters. *)
  let pool =
    Testbed.Instance.nodes_of_cluster instance "graphene"
    @ Testbed.Instance.nodes_of_cluster instance "griffon"
    @ Testbed.Instance.nodes_of_cluster instance "grisou"
    @ Testbed.Instance.nodes_of_cluster instance "paravance"
    @ Testbed.Instance.nodes_of_cluster instance "sagittaire"
  in
  Format.printf "nodes  measured  model   success@.";
  List.iter
    (fun n ->
      let nodes = List.filteri (fun i _ -> i < n) pool in
      let r = deploy_once instance registry nodes in
      let elapsed = r.Kadeploy.Deploy.finished_at -. r.Kadeploy.Deploy.started_at in
      let model =
        Kadeploy.Deploy.expected_duration ~nodes:n
          ~image_mb:Kadeploy.Image.std_env.Kadeploy.Image.size_mb
      in
      Format.printf "%5d  %6.0f s  %5.0f s  %3d/%d@." n elapsed model
        (Kadeploy.Deploy.success_count r) n)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 200; 256 ];
  Format.printf
    "@.the paper's figure: 200 nodes in ~5 minutes — the broadcast chain@.\
     makes deployment time nearly independent of the node count.@."
