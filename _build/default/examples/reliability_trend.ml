(* Reliability trend: run the full closed-loop campaign and print the
   monthly test-success series — the paper's "85% of tests successful in
   February, 93% today, despite the addition of new tests".

   Run with: dune exec examples/reliability_trend.exe [months]   (default 6) *)

let () =
  let months = try int_of_string Sys.argv.(1) with _ -> 6 in
  let cfg = { Framework.Campaign.default_config with Framework.Campaign.months } in
  Format.printf "running a %d-month campaign (this simulates %d days)...@.@."
    months (months * 30);
  let report = Framework.Campaign.run cfg in

  Format.printf "month  builds  success  bugs(filed/fixed)  active-faults  tests-enabled@.";
  List.iter
    (fun m ->
      let bar =
        let width = int_of_float (50.0 *. m.Framework.Campaign.success_ratio) in
        String.make (max 0 width) '#'
      in
      Format.printf "%5d  %6d  %6s   %5d / %-5d      %6d        %6d  |%s@."
        m.Framework.Campaign.month m.Framework.Campaign.builds
        (Simkit.Table.fmt_pct m.Framework.Campaign.success_ratio)
        m.Framework.Campaign.bugs_filed_cum m.Framework.Campaign.bugs_fixed_cum
        m.Framework.Campaign.active_faults m.Framework.Campaign.enabled_configs bar)
    report.Framework.Campaign.monthly;

  Format.printf "@.bugs by category (paper cites disk caches, CPU settings, cabling, ...):@.";
  List.iter
    (fun (category, filed, fixed) ->
      Format.printf "  %-15s filed %3d, fixed %3d@." category filed fixed)
    report.Framework.Campaign.bugs_by_category;
  Format.printf "@.totals: %d bugs filed, %d fixed (paper: 118 filed, 84 fixed)@."
    report.Framework.Campaign.bugs_filed report.Framework.Campaign.bugs_fixed;
  Format.printf "ground truth: %d faults injected, %d detected by tests, %d repaired@."
    report.Framework.Campaign.faults_injected report.Framework.Campaign.faults_detected
    report.Framework.Campaign.faults_repaired
