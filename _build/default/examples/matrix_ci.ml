(* Matrix CI: the paper's "test_environments: 14 images x 32 clusters =
   448 configurations" job, plus the Matrix-Reloaded retry of the failed
   subset after an image is corrupted.

   Run with: dune exec examples/matrix_ci.exe *)

let count_results ci name =
  List.fold_left
    (fun (ok, ko, other) b ->
      match b.Ci.Build.result with
      | Some Ci.Build.Success -> (ok + 1, ko, other)
      | Some Ci.Build.Failure -> (ok, ko + 1, other)
      | _ -> (ok, ko, other + 1))
    (0, 0, 0) (Ci.Server.builds ci name)

let () =
  let env = Framework.Env.create ~seed:9L ~executors:16 () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  let ci = env.Framework.Env.ci in

  (* Corrupt one of the 14 images: its whole matrix row will fail. *)
  let img = Kadeploy.Image.std_env in
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Env_image_corrupt
       (Testbed.Faults.Global (Printf.sprintf "env_corrupt:%d" img.Kadeploy.Image.index)));

  (match Ci.Server.trigger ci "test_environments" with
   | Ci.Server.Queued builds ->
     Format.printf "matrix job expanded to %d configurations (14 images x 32 clusters)@."
       (List.length builds)
   | _ -> failwith "trigger failed");
  (* 448 deployments through 16 executors: a couple of simulated days. *)
  Framework.Env.run_until env (6.0 *. Simkit.Calendar.day);
  let ok, ko, other = count_results ci "test_environments" in
  Format.printf "first pass : %d ok, %d failed, %d other@." ok ko other;

  (* Fix the image, then Matrix-Reloaded: re-run only failed combinations. *)
  let fault = List.hd (Testbed.Faults.history (Framework.Env.faults env)) in
  Testbed.Faults.repair (Framework.Env.faults env) ~now:(Framework.Env.now env) fault;
  (match Ci.Server.retry_failed ci "test_environments" with
   | Ci.Server.Queued builds ->
     Format.printf "matrix reloaded: re-running %d failed configuration(s)@."
       (List.length builds)
   | _ -> failwith "retry failed");
  Framework.Env.run_until env (Framework.Env.now env +. (2.0 *. Simkit.Calendar.day));

  (* Latest result per combination should now be all green. *)
  let still_failing =
    Ci.Jobdef.combinations (Framework.Testdef.matrix_axes Framework.Testdef.Environments)
    |> List.filter (fun axes ->
           match Ci.Server.last_of_axes ci "test_environments" ~axes with
           | Some b -> b.Ci.Build.result <> Some Ci.Build.Success
           | None -> true)
  in
  Format.printf "after retry: %d configuration(s) still failing@."
    (List.length still_failing)
