(* Quickstart: build the simulated Grid'5000, run one round of description
   checks through the CI server, and print the status page.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A full platform: testbed + OAR + Kadeploy registry + monitoring +
     CI server, all on one deterministic simulation engine. *)
  let env = Framework.Env.create ~seed:1L () in
  Format.printf "testbed: %a@."
    Testbed.Instance.pp_summary env.Framework.Env.instance;

  (* 2. Define the 16 test jobs (one CI matrix job per family) and keep
     the structured failure evidence in a bug tracker. *)
  let tracker = Framework.Bugtracker.create () in
  Framework.Jobs.define_all env ~on_evidence:(fun evidence ->
      ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));
  let page = Framework.Statuspage.create env in
  Format.printf "test catalog: %d configurations in %d families@."
    (Framework.Jobs.total_configurations ())
    (List.length Framework.Testdef.all_families);

  (* 3. Break something, the way the paper says things break: a BIOS
     reset re-enabled C-states on one node. *)
  let faults = Framework.Env.faults env in
  ignore
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Cpu_cstates
       (Testbed.Faults.Host "graphene-12.nancy"));

  (* 4. Run the description checks (refapi) on every cluster. *)
  (match Ci.Server.trigger env.Framework.Env.ci "test_refapi" with
   | Ci.Server.Queued builds ->
     Format.printf "triggered test_refapi: %d cluster configurations@."
       (List.length builds)
   | _ -> failwith "trigger failed");
  Framework.Env.run_until env (4.0 *. Simkit.Calendar.hour);

  (* 5. Inspect the outcome. *)
  Format.printf "@.%s@." (Framework.Statuspage.per_test_matrix page);
  List.iter
    (fun bug ->
      Format.printf "bug #%d [%s] %s (seen %d time(s), via %s)@."
        bug.Framework.Bugtracker.id bug.Framework.Bugtracker.category
        bug.Framework.Bugtracker.summary bug.Framework.Bugtracker.occurrences
        bug.Framework.Bugtracker.first_test)
    (Framework.Bugtracker.all tracker);
  let filed, fixed = Framework.Bugtracker.counts tracker in
  Format.printf "@.bugs filed: %d (fixed: %d)@." filed fixed
