(* Trust dashboard: the operator's morning view.  Runs two simulated weeks
   of the full framework with faults arriving, then prints everything an
   operator looks at: cluster confidence grades, job weather, open bug
   reports, alert state, OAR usage accounting and a notification digest.

   Run with: dune exec examples/trust_dashboard.exe *)

let () =
  let env = Framework.Env.create ~seed:77L () in
  let tracker = Framework.Bugtracker.create () in
  let notify = Framework.Notify.create env in
  let page = Framework.Statuspage.create env in
  let accounting = Oar.Accounting.create env.Framework.Env.oar in
  Framework.Jobs.define_all env ~on_evidence:(fun evidence ->
      match Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence with
      | `New bug -> ignore (Framework.Notify.notify_bug notify bug)
      | `Duplicate _ -> ());

  (* Ambient life: users, a handful of faults, the external scheduler. *)
  let rng = Simkit.Prng.split (Simkit.Engine.rng (Framework.Env.engine env)) in
  ignore (Oar.Workload.start ~rng env.Framework.Env.oar);
  List.iter
    (fun kind -> ignore (Testbed.Faults.inject (Framework.Env.faults env) ~now:0.0 kind))
    [ Testbed.Faults.Cpu_cstates; Testbed.Faults.Disk_write_cache;
      Testbed.Faults.Disk_firmware; Testbed.Faults.Cabling_swap;
      Testbed.Faults.Console_broken; Testbed.Faults.Service_outage ];
  Oar.Manager.refresh_properties env.Framework.Env.oar;
  let scheduler = Framework.Scheduler.create env in
  List.iter (Framework.Scheduler.enable_family scheduler) Framework.Testdef.all_families;
  Framework.Scheduler.start scheduler;

  (* Alerting rules on a couple of sentinel nodes. *)
  let alerts = Monitoring.Alerts.create env.Framework.Env.collector in
  List.iter
    (fun host ->
      Monitoring.Alerts.add_rule alerts
        {
          Monitoring.Alerts.rule_name = "silent:" ^ host;
          host;
          metric = Monitoring.Collector.Cpu_load;
          window = 300.0;
          aggregation = Monitoring.Alerts.Mean;
          condition = Monitoring.Alerts.Absent;
        })
    [ "grisou-1.nancy"; "paravance-1.rennes"; "helios-1.sophia" ];

  Framework.Env.run_until env (14.0 *. Simkit.Calendar.day);
  ignore (Monitoring.Alerts.evaluate alerts ~now:(Framework.Env.now env));
  ignore (Framework.Notify.flush_digests notify ~now:(Framework.Env.now env));

  Format.printf "=== Cluster confidence (worst 10) ===@.";
  let ranking = Framework.Confidence.ranking page in
  let worst = List.rev ranking |> List.filteri (fun i _ -> i < 10) in
  List.iter
    (fun (cluster, score) ->
      Format.printf "  %-12s %6s  grade %s@." cluster
        (Simkit.Table.fmt_pct score)
        (Framework.Confidence.grade score))
    worst;

  Format.printf "@.=== Job weather ===@.%s" (Ci.Weather.render env.Framework.Env.ci);

  Format.printf "@.=== Open bugs ===@.%s"
    (Framework.Bugreport.render_index env tracker);

  (match Framework.Bugtracker.open_bugs tracker with
   | bug :: _ ->
     Format.printf "@.=== Example operator report ===@.%s"
       (Framework.Bugreport.render env bug)
   | [] -> ());

  Format.printf "@.=== Alerts firing ===@.%s" (Monitoring.Alerts.render alerts);

  Format.printf "@.=== OAR usage (top users) ===@.%s"
    (Oar.Accounting.render ~top:5 accounting);

  Format.printf "@.=== Notifications ===@.";
  List.iter
    (fun m ->
      Format.printf "  -> %-16s [%s] %s@." m.Framework.Notify.mailbox
        (match m.Framework.Notify.urgency with
         | Framework.Notify.Immediate -> "page  "
         | Framework.Notify.Digest -> "digest")
        m.Framework.Notify.subject)
    (Framework.Notify.sent notify);

  let filed, fixed = Framework.Bugtracker.counts tracker in
  Format.printf "@.two weeks of testing: %d bugs filed (%d fixed), %d builds run@." filed
    fixed
    (Ci.Server.builds_executed env.Framework.Env.ci)
