examples/quickstart.mli:
