examples/trust_dashboard.mli:
