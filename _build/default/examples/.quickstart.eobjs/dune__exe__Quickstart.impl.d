examples/quickstart.ml: Ci Format Framework List Simkit Testbed
