examples/matrix_ci.mli:
