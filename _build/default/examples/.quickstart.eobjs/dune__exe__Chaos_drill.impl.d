examples/chaos_drill.ml: Format Framework Simkit Testbed
