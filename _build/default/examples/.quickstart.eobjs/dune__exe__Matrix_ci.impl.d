examples/matrix_ci.ml: Ci Format Framework Kadeploy List Printf Simkit Testbed
