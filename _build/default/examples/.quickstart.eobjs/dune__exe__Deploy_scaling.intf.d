examples/deploy_scaling.mli:
