examples/trust_dashboard.ml: Ci Format Framework List Monitoring Oar Simkit Testbed
