examples/deploy_scaling.ml: Format Kadeploy List Option Simkit Testbed
