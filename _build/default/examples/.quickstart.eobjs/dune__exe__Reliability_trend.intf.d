examples/reliability_trend.mli:
