examples/chaos_drill.mli:
