examples/bug_hunt.ml: Format Framework List Oar Option Simkit Testbed
