examples/reliability_trend.ml: Array Format Framework List Simkit String Sys
