(* Additional OAR coverage: walltime enforcement, best-effort ordering,
   service outages, multi-group estimates, cache behaviour, accounting
   integration with the workload generator. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () =
  let instance = Testbed.Instance.build ~seed:1234L () in
  (instance, Oar.Manager.create instance)

(* ---- walltime enforcement ------------------------------------------------- *)

let test_walltime_truncates_long_jobs () =
  let instance, oar = mk () in
  (* The user asks for 1 h but the workload would run 10 h: OAR kills the
     job at the walltime. *)
  let job =
    match
      Oar.Manager.submit oar ~duration:36000.0
        (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:3600.0)
    with
    | Ok job -> job
    | Error _ -> Alcotest.fail "submit failed"
  in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 7200.0;
  checkb "terminated at the walltime" true (job.Oar.Job.state = Oar.Job.Terminated);
  match (job.Oar.Job.started_at, job.Oar.Job.ended_at) with
  | Some start, Some stop -> checkb "ran exactly one hour" true (Float.abs (stop -. start -. 3600.0) < 1.0)
  | _ -> Alcotest.fail "missing timestamps"

let test_short_jobs_end_early () =
  let instance, oar = mk () in
  let job =
    match
      Oar.Manager.submit oar ~duration:600.0
        (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:3600.0)
    with
    | Ok job -> job
    | Error _ -> Alcotest.fail "submit failed"
  in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 1000.0;
  checkb "ended at its duration, not the walltime" true
    (job.Oar.Job.state = Oar.Job.Terminated)

(* ---- best-effort ordering ---------------------------------------------------- *)

let test_besteffort_scheduled_last () =
  let _, oar = mk () in
  (* Fill nyx, then queue one besteffort and one default job; the default
     job must get the earlier future slot. *)
  ignore
    (Oar.Manager.submit oar ~duration:3600.0
       (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:3600.0));
  let besteffort =
    match
      Oar.Manager.submit oar ~jtype:Oar.Job.Besteffort ~duration:3600.0
        (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:3600.0)
    with
    | Ok j -> j
    | Error _ -> Alcotest.fail "besteffort submit"
  in
  let default_job =
    match
      Oar.Manager.submit oar ~duration:3600.0
        (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:3600.0)
    with
    | Ok j -> j
    | Error _ -> Alcotest.fail "default submit"
  in
  checkb "both scheduled in the future" true
    (besteffort.Oar.Job.state = Oar.Job.Scheduled
    && default_job.Oar.Job.state = Oar.Job.Scheduled);
  checkb "default precedes besteffort" true
    (default_job.Oar.Job.scheduled_start < besteffort.Oar.Job.scheduled_start)

(* ---- service outage ------------------------------------------------------------ *)

let test_submit_fails_when_all_oar_down () =
  let instance, oar = mk () in
  List.iter
    (fun site ->
      Testbed.Services.set_state instance.Testbed.Instance.services ~site
        Testbed.Services.Oar Testbed.Services.Down)
    Testbed.Inventory.sites;
  match
    Oar.Manager.submit oar (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:600.0)
  with
  | Error Oar.Manager.Service_unavailable -> ()
  | _ -> Alcotest.fail "expected Service_unavailable"

(* ---- multi-group estimates ------------------------------------------------------- *)

let test_estimate_multi_group () =
  let _, oar = mk () in
  let request =
    Oar.Request.parse_exn
      "cluster='nyx'/nodes=2+cluster='graphite'/nodes=2,walltime=1"
  in
  (match Oar.Manager.estimate_start oar request with
   | Some at -> checkb "both groups free now" true (at < 1.0)
   | None -> Alcotest.fail "estimate failed");
  (* Saturate one group: the common start moves. *)
  ignore
    (Oar.Manager.submit oar ~duration:7200.0
       (Oar.Request.nodes ~filter:"cluster='graphite'" `All ~walltime:7200.0));
  match Oar.Manager.estimate_start oar request with
  | Some at -> checkb "pushed behind the graphite job" true (at >= 7200.0)
  | None -> Alcotest.fail "estimate failed under load"

(* ---- property cache invalidation --------------------------------------------------- *)

let test_filter_cache_invalidated_on_refresh () =
  let instance, oar = mk () in
  let filter = Oar.Expr.parse_exn "gpu='YES'" in
  let before = List.length (Oar.Manager.matching_hosts oar filter) in
  checkb "gpu hosts exist" true (before > 0);
  (* Corrupt one gpu host's OAR row, refresh, re-query through the same
     (cached) filter. *)
  let ctx = Testbed.Faults.context instance.Testbed.Instance.faults in
  Hashtbl.replace ctx.Testbed.Faults.flags "oar_desync:orion-1.lyon" "x";
  Oar.Manager.refresh_properties oar;
  let after = List.length (Oar.Manager.matching_hosts oar filter) in
  checki "one gpu host lost its property" (before - 1) after

(* ---- exact-host requests ------------------------------------------------------------ *)

let test_exact_host_reservation () =
  let _, oar = mk () in
  let request =
    Oar.Request.nodes ~filter:"host='grisou-7.nancy' or host='grisou-9.nancy'" (`N 2)
      ~walltime:600.0
  in
  match Oar.Manager.submit oar ~immediate:true request with
  | Ok job ->
    Alcotest.(check (list string))
      "exactly the requested hosts"
      [ "grisou-7.nancy"; "grisou-9.nancy" ]
      (List.sort String.compare job.Oar.Job.assigned)
  | Error _ -> Alcotest.fail "exact-host reservation failed"

(* ---- workload + accounting integration ----------------------------------------------- *)

let test_workload_respects_diurnal_profile () =
  let instance, oar = mk () in
  let rng = Simkit.Prng.create 4321L in
  let w = Oar.Workload.start ~rng oar in
  (* Run over exactly one week and compare peak vs night submissions. *)
  Simkit.Engine.run_until instance.Testbed.Instance.engine Simkit.Calendar.week;
  Oar.Workload.stop w;
  let jobs = Oar.Manager.jobs oar in
  let user_jobs =
    List.filter (fun j -> j.Oar.Job.user <> "g5k-tests") jobs
  in
  let peak, off =
    List.fold_left
      (fun (peak, off) j ->
        if Simkit.Calendar.is_peak_hours j.Oar.Job.submitted_at then (peak + 1, off)
        else (peak, off + 1))
      (0, 0) user_jobs
  in
  (* Peak window = 55 h of 168; with a 3x rate multiplier it should hold
     roughly half the submissions — definitely more than a third. *)
  checkb "peak hours denser than off-peak" true
    (float_of_int peak /. float_of_int (Stdlib.max 1 (peak + off)) > 0.33)

let test_accounting_under_workload () =
  let instance, oar = mk () in
  let accounting = Oar.Accounting.create oar in
  let rng = Simkit.Prng.create 4322L in
  let w = Oar.Workload.start ~rng oar in
  Simkit.Engine.run_until instance.Testbed.Instance.engine (2.0 *. Simkit.Calendar.day);
  Oar.Workload.stop w;
  checkb "many jobs accounted" true (Oar.Accounting.jobs_seen accounting > 100);
  checkb "several users in the report" true
    (List.length (Oar.Accounting.user_report accounting) > 10);
  checkb "usage attributed to clusters" true
    (List.length (Oar.Accounting.cluster_report accounting) > 3)

let () =
  Alcotest.run "oar2"
    [
      ( "walltime",
        [ Alcotest.test_case "truncates long jobs" `Quick test_walltime_truncates_long_jobs;
          Alcotest.test_case "short jobs end early" `Quick test_short_jobs_end_early ] );
      ( "scheduling",
        [ Alcotest.test_case "besteffort last" `Quick test_besteffort_scheduled_last;
          Alcotest.test_case "all OAR down" `Quick test_submit_fails_when_all_oar_down;
          Alcotest.test_case "multi-group estimate" `Quick test_estimate_multi_group;
          Alcotest.test_case "exact hosts" `Quick test_exact_host_reservation;
          Alcotest.test_case "cache invalidation" `Quick
            test_filter_cache_invalidated_on_refresh ] );
      ( "workload",
        [ Alcotest.test_case "diurnal profile" `Slow test_workload_respects_diurnal_profile;
          Alcotest.test_case "accounting integration" `Slow test_accounting_under_workload ] );
    ]
