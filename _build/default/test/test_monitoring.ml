(* Tests for the monitoring substitute: power model, 1 Hz probes, REST API. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () =
  let instance = Testbed.Instance.build ~seed:777L () in
  (instance, Monitoring.Collector.create instance)

(* ---- Power model ----------------------------------------------------------- *)

let test_power_ordering () =
  let instance, _ = mk () in
  let node = Testbed.Instance.node instance "grisou-1.nancy" in
  let idle = Monitoring.Power.idle_watts node in
  let peak = Monitoring.Power.peak_watts node in
  checkb "positive idle" true (idle > 50.0);
  checkb "peak above idle" true (peak > idle);
  checkb "load interpolates" true
    (Monitoring.Power.watts node ~load:0.5 > idle
    && Monitoring.Power.watts node ~load:0.5 < peak);
  Alcotest.(check (float 1e-9)) "clamped load" peak (Monitoring.Power.watts node ~load:2.0)

let test_power_bigger_nodes_draw_more () =
  let instance, _ = mk () in
  let small = Testbed.Instance.node instance "sagittaire-1.lyon" in
  let big = Testbed.Instance.node instance "chifflet-1.lille" in
  checkb "28-core node above 2-core node" true
    (Monitoring.Power.idle_watts big > Monitoring.Power.idle_watts small)

let test_power_cstates_signature () =
  let instance, _ = mk () in
  let node = Testbed.Instance.node instance "grisou-2.nancy" in
  let mandated = Monitoring.Power.idle_watts node in
  let hw = node.Testbed.Node.actual in
  node.Testbed.Node.actual <-
    { hw with
      Testbed.Hardware.settings =
        { hw.Testbed.Hardware.settings with Testbed.Hardware.c_states = true } };
  let drifted = Monitoring.Power.idle_watts node in
  checkb "c-states lower idle draw" true (drifted < mandated)

(* ---- Probes ------------------------------------------------------------------ *)

let test_one_hertz_sampling () =
  let instance, collector = mk () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 120.0;
  let series =
    Monitoring.Collector.sample_window collector ~host:"grisou-1.nancy"
      Monitoring.Collector.Cpu_load ~lo:60.0 ~hi:119.0
  in
  let freq = Monitoring.Collector.achieved_frequency_hz series ~lo:60.0 ~hi:119.0 in
  checkb "~1 Hz as the paper advertises" true (freq >= 0.95 && freq <= 1.1)

let test_probe_value_ranges () =
  let instance, collector = mk () in
  let host = "grisou-1.nancy" in
  let series metric = Monitoring.Collector.sample_window collector ~host metric ~lo:0.0 ~hi:60.0 in
  Simkit.Timeseries.iter (series Monitoring.Collector.Cpu_load) (fun _ v ->
      checkb "load in [0,1]" true (v >= 0.0 && v <= 1.0));
  Simkit.Timeseries.iter (series Monitoring.Collector.Power_w) (fun _ v ->
      checkb "plausible wattage" true (v > 30.0 && v < 2000.0));
  ignore instance

let test_power_needs_wattmeter () =
  let _, collector = mk () in
  (* Lille has no wattmeter. *)
  let series =
    Monitoring.Collector.sample_window collector ~host:"chetemi-1.lille"
      Monitoring.Collector.Power_w ~lo:0.0 ~hi:60.0
  in
  checki "no samples without wattmeter" 0 (Simkit.Timeseries.length series);
  checkb "has_wattmeter reflects sites" true
    (Monitoring.Collector.has_wattmeter collector ~host:"grisou-1.nancy");
  checkb "lille excluded" false
    (Monitoring.Collector.has_wattmeter collector ~host:"chetemi-1.lille")

let test_down_node_stops_reporting () =
  let instance, collector = mk () in
  let node = Testbed.Instance.node instance "grisou-3.nancy" in
  node.Testbed.Node.state <- Testbed.Node.Down;
  let system =
    Monitoring.Collector.sample_window collector ~host:node.Testbed.Node.host
      Monitoring.Collector.Cpu_load ~lo:0.0 ~hi:60.0
  in
  checki "no system metrics from a dead node" 0 (Simkit.Timeseries.length system);
  let power =
    Monitoring.Collector.sample_window collector ~host:node.Testbed.Node.host
      Monitoring.Collector.Power_w ~lo:0.0 ~hi:60.0
  in
  checkb "wattmeter keeps reporting (external probe)" true
    (Simkit.Timeseries.length power > 0)

let test_misattribution_changes_series () =
  let instance, collector = mk () in
  (* Swap the wattmeter channels of a tiny node and a big node. *)
  let small = "sagittaire-1.lyon" and big = "nova-1.lyon" in
  let mean host =
    let series =
      Monitoring.Collector.sample_window collector ~host Monitoring.Collector.Power_w
        ~lo:0.0 ~hi:60.0
    in
    Simkit.Timeseries.mean_between series ~lo:0.0 ~hi:60.0
  in
  let small_before = mean small in
  let faults = instance.Testbed.Instance.faults in
  ignore
    (Testbed.Faults.inject_on faults ~now:0.0 Testbed.Faults.Kwapi_misattribution
       (Testbed.Faults.Host_pair (small, big)));
  let small_after = mean small in
  checkb "channel now reports the other node" true
    (Float.abs (small_after -. small_before) > 20.0)

let test_custom_load_model () =
  let instance, collector = mk () in
  Monitoring.Collector.set_load_model collector (fun ~host:_ ~time:_ -> 0.0);
  let series =
    Monitoring.Collector.sample_window collector ~host:"grisou-1.nancy"
      Monitoring.Collector.Cpu_load ~lo:0.0 ~hi:10.0
  in
  Simkit.Timeseries.iter series (fun _ v -> Alcotest.(check (float 1e-9)) "idle" 0.0 v);
  ignore instance

let test_live_view_width () =
  let _, collector = mk () in
  let view =
    Monitoring.Collector.live_view collector ~host:"grisou-1.nancy"
      Monitoring.Collector.Power_w ~at:120.0 ~width:40
  in
  checki "sparkline width" 40 (String.length view)

(* ---- REST API ------------------------------------------------------------------ *)

let test_rest_sites () =
  let _, collector = mk () in
  match Monitoring.Collector.rest_get collector "/sites" with
  | Ok (Simkit.Json.List sites) -> checki "8 sites" 8 (List.length sites)
  | _ -> Alcotest.fail "bad /sites answer"

let test_rest_metrics () =
  let _, collector = mk () in
  match Monitoring.Collector.rest_get collector "/sites/nancy/metrics" with
  | Ok (Simkit.Json.List metrics) -> checki "4 metrics" 4 (List.length metrics)
  | _ -> Alcotest.fail "bad metrics answer"

let test_rest_timeseries () =
  let instance, collector = mk () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 100.0;
  match
    Monitoring.Collector.rest_get collector
      "/sites/nancy/metrics/power_w/timeseries/grisou-1.nancy?from=10&to=20"
  with
  | Ok doc ->
    (match Simkit.Json.list_member "samples" doc with
     | Some samples -> checki "11 samples at 1 Hz" 11 (List.length samples)
     | None -> Alcotest.fail "no samples member")
  | Error e -> Alcotest.fail e

let test_rest_errors () =
  let _, collector = mk () in
  let expect_error path =
    match Monitoring.Collector.rest_get collector path with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected error for %s" path
  in
  expect_error "/sites/atlantis/metrics";
  expect_error "/sites/nancy/metrics/nosuch/timeseries/grisou-1.nancy";
  expect_error "/sites/lyon/metrics/power_w/timeseries/grisou-1.nancy";
  expect_error "/nothing/here"

let () =
  Alcotest.run "monitoring"
    [
      ( "power",
        [ Alcotest.test_case "ordering" `Quick test_power_ordering;
          Alcotest.test_case "size scaling" `Quick test_power_bigger_nodes_draw_more;
          Alcotest.test_case "c-states signature" `Quick test_power_cstates_signature ] );
      ( "probes",
        [ Alcotest.test_case "1 Hz sampling" `Quick test_one_hertz_sampling;
          Alcotest.test_case "value ranges" `Quick test_probe_value_ranges;
          Alcotest.test_case "wattmeter coverage" `Quick test_power_needs_wattmeter;
          Alcotest.test_case "down node silent" `Quick test_down_node_stops_reporting;
          Alcotest.test_case "misattribution" `Quick test_misattribution_changes_series;
          Alcotest.test_case "custom load model" `Quick test_custom_load_model;
          Alcotest.test_case "live view" `Quick test_live_view_width ] );
      ( "rest",
        [ Alcotest.test_case "/sites" `Quick test_rest_sites;
          Alcotest.test_case "metrics" `Quick test_rest_metrics;
          Alcotest.test_case "timeseries" `Quick test_rest_timeseries;
          Alcotest.test_case "errors" `Quick test_rest_errors ] );
    ]
