test/test_kavlan.mli:
