test/test_framework.ml: Alcotest Ci Framework Kadeploy List Oar Option Printf Simkit String Testbed
