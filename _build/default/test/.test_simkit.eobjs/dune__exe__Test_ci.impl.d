test/test_ci.ml: Alcotest Ci List Simkit
