test/test_topology.ml: Alcotest Array List Option QCheck QCheck_alcotest Simkit Testbed
