test/test_kadeploy.mli:
