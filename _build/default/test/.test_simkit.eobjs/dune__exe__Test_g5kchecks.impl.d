test/test_g5kchecks.ml: Alcotest Array G5kchecks List Option QCheck QCheck_alcotest Simkit String Testbed
