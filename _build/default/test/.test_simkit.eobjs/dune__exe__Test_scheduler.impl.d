test/test_scheduler.ml: Alcotest Ci Framework Int64 List Oar Option QCheck QCheck_alcotest Simkit String Testbed
