test/test_edge.ml: Alcotest Ci Framework List Simkit Testbed
