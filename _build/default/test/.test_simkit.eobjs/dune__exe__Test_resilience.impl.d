test/test_resilience.ml: Alcotest Ci Framework Int64 List Option Printf QCheck QCheck_alcotest Simkit String Testbed
