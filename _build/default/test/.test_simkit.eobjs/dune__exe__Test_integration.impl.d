test/test_integration.ml: Alcotest Ci Framework List Oar Option Simkit String Testbed
