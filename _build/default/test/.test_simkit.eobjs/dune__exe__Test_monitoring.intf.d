test/test_monitoring.mli:
