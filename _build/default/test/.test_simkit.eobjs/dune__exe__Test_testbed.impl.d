test/test_testbed.ml: Alcotest Array Format Int64 List Option QCheck QCheck_alcotest Simkit String Testbed
