test/test_extensions.ml: Alcotest Ci Framework List Oar Simkit String Testbed
