test/test_kadeploy.ml: Alcotest Fun Hashtbl Kadeploy List Printf QCheck QCheck_alcotest Simkit String Testbed
