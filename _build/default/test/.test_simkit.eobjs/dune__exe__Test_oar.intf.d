test/test_oar.mli:
