test/test_monitoring.ml: Alcotest Float List Monitoring Simkit String Testbed
