test/test_kavlan.ml: Alcotest Kavlan List Simkit Testbed
