test/test_statuspage.mli:
