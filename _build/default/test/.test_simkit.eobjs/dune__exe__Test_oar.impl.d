test/test_oar.ml: Alcotest Hashtbl List Oar Printf QCheck QCheck_alcotest Simkit String Testbed
