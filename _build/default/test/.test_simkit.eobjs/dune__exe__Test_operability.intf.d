test/test_operability.mli:
