test/test_scripts2.mli:
