test/test_alerts.ml: Alcotest List Monitoring Simkit String Testbed
