test/test_simkit.mli:
