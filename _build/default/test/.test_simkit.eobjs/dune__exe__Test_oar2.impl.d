test/test_oar2.ml: Alcotest Float Hashtbl List Oar Simkit Stdlib String Testbed
