test/test_scripts2.ml: Alcotest Ci Framework Kadeploy Kavlan List Option Printf Simkit String Testbed
