test/test_console.mli:
