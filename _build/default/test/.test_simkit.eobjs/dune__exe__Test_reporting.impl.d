test/test_reporting.ml: Alcotest Ci Float Framework Hashtbl Kadeploy Lazy List Oar Option Printf Simkit String Testbed
