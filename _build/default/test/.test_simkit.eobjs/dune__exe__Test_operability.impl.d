test/test_operability.ml: Alcotest Array Ci Float Framework List Oar Simkit String Testbed
