test/test_statuspage.ml: Alcotest Ci Framework List Simkit String Testbed
