test/test_console.ml: Alcotest List Simkit String Testbed
