test/test_simkit.ml: Alcotest Array Float Fun List Printf QCheck QCheck_alcotest Simkit String
