test/test_ci.mli:
