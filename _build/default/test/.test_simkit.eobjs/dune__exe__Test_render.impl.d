test/test_render.ml: Alcotest Ci Framework List Oar Printf Simkit String Testbed
