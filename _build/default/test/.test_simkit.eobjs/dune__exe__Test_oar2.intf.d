test/test_oar2.mli:
