test/test_alerts.mli:
