test/test_g5kchecks.mli:
