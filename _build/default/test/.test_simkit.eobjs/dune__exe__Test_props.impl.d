test/test_props.ml: Alcotest Array Ci Float Hashtbl List Oar Printf QCheck QCheck_alcotest Simkit Stdlib String
