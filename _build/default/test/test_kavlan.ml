(* Tests for the KaVLAN substitute. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () = Testbed.Instance.build ~seed:55L ()

let set_vlan instance nodes vlan =
  let result = ref None in
  Kavlan.set_vlan instance ~nodes ~vlan ~on_done:(fun r -> result := Some r);
  Simkit.Engine.run_until instance.Testbed.Instance.engine
    (Simkit.Engine.now instance.Testbed.Instance.engine +. 600.0);
  match !result with Some r -> r | None -> Alcotest.fail "vlan change never completed"

let test_thirteen_standard_vlans () =
  (* 8 local + 4 routed + 1 global: the kavlan test family's 13 configs. *)
  checki "13 vlans" 13 (List.length Kavlan.standard_vlans);
  let locals = List.filter (fun v -> v.Kavlan.flavour = Kavlan.Local) Kavlan.standard_vlans in
  let routed = List.filter (fun v -> v.Kavlan.flavour = Kavlan.Routed) Kavlan.standard_vlans in
  let global = List.filter (fun v -> v.Kavlan.flavour = Kavlan.Global) Kavlan.standard_vlans in
  checki "8 local" 8 (List.length locals);
  checki "4 routed" 4 (List.length routed);
  checki "1 global" 1 (List.length global);
  List.iter
    (fun v -> checkb "local vlan tied to a site" true (v.Kavlan.vlan_site <> None))
    locals

let test_find_vlan () =
  checkb "default is vlan 0" true (Kavlan.find_vlan 0 = Some Kavlan.default_vlan);
  checkb "global is 300" true
    (match Kavlan.find_vlan 300 with
     | Some v -> v.Kavlan.flavour = Kavlan.Global
     | None -> false);
  checkb "unknown id" true (Kavlan.find_vlan 999 = None)

let test_default_reachability () =
  let t = mk () in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let b = Testbed.Instance.node t "helios-1.sophia" in
  checkb "default vlan routed across sites" true (Kavlan.reachable t a b)

let test_local_vlan_isolation () =
  let t = mk () in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let b = Testbed.Instance.node t "grisou-2.nancy" in
  let c = Testbed.Instance.node t "grisou-3.nancy" in
  let local =
    List.find
      (fun v -> v.Kavlan.flavour = Kavlan.Local && v.Kavlan.vlan_site = Some "nancy")
      Kavlan.standard_vlans
  in
  (match set_vlan t [ a; b ] local with
   | Kavlan.Changed -> ()
   | Kavlan.Service_failed -> Alcotest.fail "vlan change failed");
  checkb "pair reachable inside local vlan" true (Kavlan.reachable t a b);
  checkb "isolated from production" false (Kavlan.reachable t a c);
  checkb "reachable through ssh gateway only" true (Kavlan.gateway_reachable a);
  checkb "isolation invariant holds" true (Kavlan.isolation_invariant t [ a; b; c ])

let test_routed_vlan_reachability () =
  let t = mk () in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let b = Testbed.Instance.node t "grisou-2.nancy" in
  let c = Testbed.Instance.node t "graphene-1.nancy" in
  let routed = List.find (fun v -> v.Kavlan.flavour = Kavlan.Routed) Kavlan.standard_vlans in
  (match set_vlan t [ a; b ] routed with
   | Kavlan.Changed -> ()
   | Kavlan.Service_failed -> Alcotest.fail "vlan change failed");
  checkb "pair reachable" true (Kavlan.reachable t a b);
  checkb "routed vlan reaches production" true (Kavlan.reachable t a c);
  checkb "not a gateway-only vlan" false (Kavlan.gateway_reachable a)

let test_global_vlan_spans_sites () =
  let t = mk () in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let b = Testbed.Instance.node t "helios-1.sophia" in
  let global = List.find (fun v -> v.Kavlan.flavour = Kavlan.Global) Kavlan.standard_vlans in
  (match set_vlan t [ a; b ] global with
   | Kavlan.Changed -> ()
   | Kavlan.Service_failed -> Alcotest.fail "vlan change failed");
  checkb "level-2 across sites" true (Kavlan.reachable t a b)

let test_vlan_change_speed () =
  (* "Almost no overhead": reconfiguring a whole cluster takes seconds. *)
  let t = mk () in
  let nodes = Testbed.Instance.nodes_of_cluster t "grisou" in
  let local =
    List.find
      (fun v -> v.Kavlan.flavour = Kavlan.Local && v.Kavlan.vlan_site = Some "nancy")
      Kavlan.standard_vlans
  in
  let started = Simkit.Engine.now t.Testbed.Instance.engine in
  let result = ref None in
  Kavlan.set_vlan t ~nodes ~vlan:local ~on_done:(fun r ->
      result := Some (r, Simkit.Engine.now t.Testbed.Instance.engine -. started));
  Simkit.Engine.run_until t.Testbed.Instance.engine 600.0;
  match !result with
  | Some (Kavlan.Changed, elapsed) -> checkb "under a minute" true (elapsed < 60.0)
  | _ -> Alcotest.fail "vlan change failed"

let test_vlan_service_failure_atomic () =
  let t = mk () in
  Testbed.Services.set_state t.Testbed.Instance.services ~site:"nancy"
    Testbed.Services.Kavlan Testbed.Services.Down;
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let local = List.find (fun v -> v.Kavlan.flavour = Kavlan.Local) Kavlan.standard_vlans in
  (match set_vlan t [ a ] local with
   | Kavlan.Service_failed -> ()
   | Kavlan.Changed -> Alcotest.fail "should have failed");
  checki "node kept its vlan" 0 a.Testbed.Node.vlan

let test_back_to_default () =
  let t = mk () in
  let a = Testbed.Instance.node t "grisou-1.nancy" in
  let local = List.find (fun v -> v.Kavlan.flavour = Kavlan.Local) Kavlan.standard_vlans in
  ignore (set_vlan t [ a ] local);
  ignore (set_vlan t [ a ] Kavlan.default_vlan);
  checki "back in production" 0 a.Testbed.Node.vlan

let () =
  Alcotest.run "kavlan"
    [
      ( "kavlan",
        [ Alcotest.test_case "13 standard vlans" `Quick test_thirteen_standard_vlans;
          Alcotest.test_case "find vlan" `Quick test_find_vlan;
          Alcotest.test_case "default reachability" `Quick test_default_reachability;
          Alcotest.test_case "local isolation" `Quick test_local_vlan_isolation;
          Alcotest.test_case "routed reachability" `Quick test_routed_vlan_reachability;
          Alcotest.test_case "global spans sites" `Quick test_global_vlan_spans_sites;
          Alcotest.test_case "change speed" `Quick test_vlan_change_speed;
          Alcotest.test_case "service failure atomic" `Quick
            test_vlan_service_failure_atomic;
          Alcotest.test_case "back to default" `Quick test_back_to_default ] );
    ]
