(* End-to-end integration tests: the full closed loop (faults -> tests ->
   bugs -> fixes -> reliability), plus cross-module pipelines. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- detection pipeline: fault -> CI build -> evidence -> bug ----------------- *)

let test_detection_pipeline_through_ci () =
  let env = Framework.Env.create ~seed:808L () in
  let tracker = Framework.Bugtracker.create () in
  Framework.Jobs.define_all env ~on_evidence:(fun evidence ->
      ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));
  let fault =
    Option.get
      (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
         Testbed.Faults.Disk_firmware (Testbed.Faults.Host "graphite-2.nancy"))
  in
  (match
     Ci.Server.trigger_subset env.Framework.Env.ci "test_refapi"
       ~axes:[ [ ("cluster", "graphite") ] ]
   with
   | Ci.Server.Queued _ -> ()
   | _ -> Alcotest.fail "trigger failed");
  Framework.Env.run_until env 7200.0;
  (* The CI build failed, evidence was filed as a bug, and the ground
     truth fault is marked detected. *)
  (match Ci.Server.last_completed env.Framework.Env.ci "test_refapi" with
   | Some b -> checkb "build failed" true (b.Ci.Build.result = Some Ci.Build.Failure)
   | None -> Alcotest.fail "no build");
  checki "one bug filed" 1 (fst (Framework.Bugtracker.counts tracker));
  checkb "fault detected" true (fault.Testbed.Faults.detected_at <> None);
  let bug = List.hd (Framework.Bugtracker.all tracker) in
  checkb "bug links the fault" true
    (List.mem fault.Testbed.Faults.id bug.Framework.Bugtracker.fault_ids)

let test_fix_closes_the_loop () =
  let env = Framework.Env.create ~seed:809L () in
  let tracker = Framework.Bugtracker.create () in
  Framework.Jobs.define_all env ~on_evidence:(fun evidence ->
      ignore (Framework.Bugtracker.file tracker ~now:(Framework.Env.now env) evidence));
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:0.0
       Testbed.Faults.Cpu_governor (Testbed.Faults.Host "nova-2.lyon"));
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_refapi"
       ~axes:[ [ ("cluster", "nova") ] ]);
  Framework.Env.run_until env 7200.0;
  (* Operator fixes the bug; the next run of the same test passes. *)
  let op =
    Framework.Operator.start
      ~config:
        { Framework.Operator.default_config with
          Framework.Operator.fix_capacity_per_day = 50.0;
          triage_delay = 0.0;
        }
      env tracker
  in
  Framework.Env.run_until env (Simkit.Calendar.day *. 2.0);
  Framework.Operator.stop op;
  checki "bug fixed" 1 (snd (Framework.Bugtracker.counts tracker));
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_refapi"
       ~axes:[ [ ("cluster", "nova") ] ]);
  Framework.Env.run_until env (Framework.Env.now env +. 7200.0);
  match Ci.Server.last_completed env.Framework.Env.ci "test_refapi" with
  | Some b -> checkb "green after the fix" true (b.Ci.Build.result = Some Ci.Build.Success)
  | None -> Alcotest.fail "no build"

(* ---- short campaign ------------------------------------------------------------ *)

let light_workload =
  { Oar.Workload.default_profile with Oar.Workload.base_rate_per_hour = 8.0 }

let test_one_month_campaign_shape () =
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 11L;
        workload = Some light_workload;
      }
  in
  checkb "hundreds of builds ran" true (report.Framework.Campaign.builds_total > 1000);
  checkb "bugs were filed" true (report.Framework.Campaign.bugs_filed > 20);
  checkb "some bugs fixed" true (report.Framework.Campaign.bugs_fixed > 0);
  checkb "most detected faults correlate to injections" true
    (report.Framework.Campaign.faults_detected
     <= report.Framework.Campaign.faults_injected);
  (match report.Framework.Campaign.monthly with
   | [ m ] ->
     checkb "success ratio in a plausible band" true
       (m.Framework.Campaign.success_ratio > 0.5
       && m.Framework.Campaign.success_ratio <= 1.0);
     checki "month index" 0 m.Framework.Campaign.month
   | _ -> Alcotest.fail "expected exactly one monthly row");
  (* The status page rendering mentions the history section. *)
  let contains haystack needle =
    let n = String.length needle and m = String.length haystack in
    let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  in
  checkb "statuspage rendered" true
    (contains report.Framework.Campaign.statuspage "History")

let test_campaign_deterministic () =
  let cfg =
    { Framework.Campaign.default_config with
      Framework.Campaign.months = 1;
      seed = 21L;
      workload = Some light_workload;
    }
  in
  let a = Framework.Campaign.run cfg in
  let b = Framework.Campaign.run cfg in
  checki "same builds" a.Framework.Campaign.builds_total b.Framework.Campaign.builds_total;
  checki "same bugs" a.Framework.Campaign.bugs_filed b.Framework.Campaign.bugs_filed;
  checki "same faults" a.Framework.Campaign.faults_injected
    b.Framework.Campaign.faults_injected

let test_campaign_testing_beats_no_testing () =
  (* Ablation: with the framework, faults get repaired; without it, they
     accumulate (only rare user complaints clear them). *)
  let base =
    { Framework.Campaign.default_config with
      Framework.Campaign.months = 2;
      seed = 31L;
      workload = None;
    }
  in
  let with_testing = Framework.Campaign.run base in
  let without_testing =
    Framework.Campaign.run { base with Framework.Campaign.enable_testing = false }
  in
  checkb "testing repairs faults" true
    (with_testing.Framework.Campaign.faults_repaired
     > 2 * without_testing.Framework.Campaign.faults_repaired);
  checkb "mean active faults lower with testing" true
    (with_testing.Framework.Campaign.mean_active_faults
     < without_testing.Framework.Campaign.mean_active_faults)

let test_campaign_scheduler_stats_consistent () =
  let report =
    Framework.Campaign.run
      { Framework.Campaign.default_config with
        Framework.Campaign.months = 1;
        seed = 41L;
        workload = Some light_workload;
      }
  in
  match report.Framework.Campaign.scheduler_stats with
  | Some s ->
    let completed =
      s.Framework.Scheduler.completed_success + s.Framework.Scheduler.completed_failure
      + s.Framework.Scheduler.completed_unstable
    in
    checkb "completions below triggers" true (completed <= s.Framework.Scheduler.triggered);
    checkb "triggered roughly equals CI builds" true
      (abs (s.Framework.Scheduler.triggered - report.Framework.Campaign.builds_total) < 50);
    checkb "polls happened" true (s.Framework.Scheduler.polls > 1000)
  | None -> Alcotest.fail "scheduler stats missing"

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [ Alcotest.test_case "fault->build->bug" `Quick test_detection_pipeline_through_ci;
          Alcotest.test_case "fix closes the loop" `Quick test_fix_closes_the_loop ] );
      ( "campaign",
        [ Alcotest.test_case "one month shape" `Slow test_one_month_campaign_shape;
          Alcotest.test_case "deterministic" `Slow test_campaign_deterministic;
          Alcotest.test_case "testing beats no testing" `Slow
            test_campaign_testing_beats_no_testing;
          Alcotest.test_case "scheduler stats" `Slow
            test_campaign_scheduler_stats_consistent ] );
    ]
