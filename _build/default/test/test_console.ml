(* Tests for the serial console substrate. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () = Testbed.Instance.build ~seed:909L ()

let test_boot_banner_captured () =
  let t = mk () in
  (* The initial boot of every node leaves a banner. *)
  let tail = Testbed.Console.tail t.Testbed.Instance.console ~host:"grisou-1.nancy" 10 in
  checkb "non-empty" true (tail <> []);
  checkb "login prompt last" true
    (match List.rev tail with
     | last :: _ ->
       let needle = "login:" in
       let n = String.length needle and m = String.length last in
       let rec scan i = i + n <= m && (String.sub last i n = needle || scan (i + 1)) in
       scan 0
     | [] -> false)

let test_reboot_appends_banner () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-1.nancy" in
  let before =
    List.length (Testbed.Console.tail t.Testbed.Instance.console ~host:node.Testbed.Node.host 200)
  in
  Testbed.Instance.reboot t node ~on_done:(fun ~ok:_ -> ());
  Simkit.Engine.run_until t.Testbed.Instance.engine 3600.0;
  let after =
    List.length (Testbed.Console.tail t.Testbed.Instance.console ~host:node.Testbed.Node.host 200)
  in
  checkb "banner grew" true (after > before)

let test_roundtrip_healthy () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-2.nancy" in
  checkb "echo works" true
    (Testbed.Console.roundtrip t.Testbed.Instance.console
       ~services:t.Testbed.Instance.services node ~marker:"hello-console")

let test_roundtrip_broken_console () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-3.nancy" in
  node.Testbed.Node.behaviour.Testbed.Node.console_broken <- true;
  checkb "dead line" false
    (Testbed.Console.roundtrip t.Testbed.Instance.console
       ~services:t.Testbed.Instance.services node ~marker:"x")

let test_roundtrip_service_down () =
  let t = mk () in
  Testbed.Services.set_state t.Testbed.Instance.services ~site:"nancy"
    Testbed.Services.Console Testbed.Services.Down;
  let node = Testbed.Instance.node t "grisou-4.nancy" in
  checkb "service outage" false
    (Testbed.Console.roundtrip t.Testbed.Instance.console
       ~services:t.Testbed.Instance.services node ~marker:"x")

let test_roundtrip_down_node () =
  let t = mk () in
  let node = Testbed.Instance.node t "grisou-5.nancy" in
  node.Testbed.Node.state <- Testbed.Node.Down;
  checkb "down node silent" false
    (Testbed.Console.roundtrip t.Testbed.Instance.console
       ~services:t.Testbed.Instance.services node ~marker:"x")

let test_ring_capped () =
  let t = mk () in
  for i = 1 to 500 do
    Testbed.Console.log_line t.Testbed.Instance.console ~host:"grisou-6.nancy"
      (string_of_int i)
  done;
  checki "capped at 200" 200
    (List.length (Testbed.Console.tail t.Testbed.Instance.console ~host:"grisou-6.nancy" 1000))

let test_unknown_host_empty () =
  let t = mk () in
  checki "unknown host" 0
    (List.length (Testbed.Console.tail t.Testbed.Instance.console ~host:"ghost.nowhere" 10))

let () =
  Alcotest.run "console"
    [
      ( "console",
        [ Alcotest.test_case "boot banner" `Quick test_boot_banner_captured;
          Alcotest.test_case "reboot appends" `Quick test_reboot_appends_banner;
          Alcotest.test_case "roundtrip healthy" `Quick test_roundtrip_healthy;
          Alcotest.test_case "broken console" `Quick test_roundtrip_broken_console;
          Alcotest.test_case "service down" `Quick test_roundtrip_service_down;
          Alcotest.test_case "down node" `Quick test_roundtrip_down_node;
          Alcotest.test_case "ring capped" `Quick test_ring_capped;
          Alcotest.test_case "unknown host" `Quick test_unknown_host_empty ] );
    ]
