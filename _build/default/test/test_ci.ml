(* Tests for the Jenkins substitute: builds, cron, matrix projects, queue,
   executors, history, access control, REST. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let mk ?(executors = 2) () =
  let engine = Simkit.Engine.create ~seed:31L () in
  (engine, Ci.Server.create ~executors engine)

let instant_job ?(result = Ci.Build.Success) name =
  Ci.Jobdef.freestyle ~name (fun ~engine ~build:_ ~finish ->
      ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish result)))

let timed_job ~duration ?(result = Ci.Build.Success) name =
  Ci.Jobdef.freestyle ~name (fun ~engine ~build:_ ~finish ->
      ignore (Simkit.Engine.schedule engine ~delay:duration (fun _ -> finish result)))

(* ---- Build records ------------------------------------------------------------ *)

let test_result_ordering () =
  checkb "failure worst" true
    (Ci.Build.worse Ci.Build.Failure Ci.Build.Unstable = Ci.Build.Failure);
  checkb "unstable over success" true
    (Ci.Build.worse Ci.Build.Success Ci.Build.Unstable = Ci.Build.Unstable);
  checkb "symmetric" true (Ci.Build.worse Ci.Build.Unstable Ci.Build.Failure = Ci.Build.Failure)

let test_axes_to_string () =
  checks "rendering" "image=debian8,cluster=graphene"
    (Ci.Build.axes_to_string [ ("image", "debian8"); ("cluster", "graphene") ]);
  checks "empty" "" (Ci.Build.axes_to_string [])

(* ---- Cron ----------------------------------------------------------------------- *)

let test_cron_parse_errors () =
  List.iter
    (fun bad ->
      match Ci.Cron.parse bad with
      | Ok _ -> Alcotest.failf "should not parse: %s" bad
      | Error _ -> ())
    [ "* * * *"; "61 * * * *"; "* 25 * * *"; "x * * * *"; "*/0 * * * *" ]

let test_cron_hourly () =
  let cron = Ci.Cron.parse_exn "30 * * * *" in
  let fire = Ci.Cron.next_fire cron ~after:0.0 in
  Alcotest.(check (float 1e-6)) "first fire at minute 30" 1800.0 fire;
  let second = Ci.Cron.next_fire cron ~after:fire in
  Alcotest.(check (float 1e-6)) "next an hour later" 5400.0 second

let test_cron_daily_at_3 () =
  let cron = Ci.Cron.parse_exn "0 3 * * *" in
  let fire = Ci.Cron.next_fire cron ~after:0.0 in
  Alcotest.(check (float 1e-6)) "03:00 day 0" (3.0 *. 3600.0) fire

let test_cron_weekday_field () =
  (* 0 = Sunday in cron; the simulated epoch is a Monday. *)
  let sunday = Ci.Cron.parse_exn "0 0 * * 0" in
  let fire = Ci.Cron.next_fire sunday ~after:0.0 in
  checki "fires on day 6 (first Sunday)" 6 (Simkit.Calendar.day_index fire)

let test_cron_steps_and_ranges () =
  let cron = Ci.Cron.parse_exn "*/15 8-10 * * 1-5" in
  checkb "matches 08:15 Monday" true (Ci.Cron.matches cron ((8.0 *. 3600.0) +. 900.0));
  checkb "rejects 11:00" false (Ci.Cron.matches cron (11.0 *. 3600.0));
  checkb "rejects Saturday" false
    (Ci.Cron.matches cron ((5.0 *. Simkit.Calendar.day) +. (9.0 *. 3600.0)))

(* ---- Trigger and executors ------------------------------------------------------- *)

let test_freestyle_trigger_and_history () =
  let engine, ci = mk () in
  Ci.Server.define ci (instant_job "smoke");
  (match Ci.Server.trigger ci "smoke" with
   | Ci.Server.Queued [ 1 ] -> ()
   | _ -> Alcotest.fail "expected build #1");
  Simkit.Engine.run engine;
  (match Ci.Server.last_completed ci "smoke" with
   | Some b ->
     checkb "succeeded" true (b.Ci.Build.result = Some Ci.Build.Success);
     checkb "finished" true (Ci.Build.is_finished b)
   | None -> Alcotest.fail "no completed build");
  ignore (Ci.Server.trigger ci "smoke");
  Simkit.Engine.run engine;
  checki "two builds in history" 2 (List.length (Ci.Server.builds ci "smoke"));
  checki "executed count" 2 (Ci.Server.builds_executed ci)

let test_unknown_and_disabled () =
  let _, ci = mk () in
  checkb "unknown" true (Ci.Server.trigger ci "nope" = Ci.Server.Not_found);
  Ci.Server.define ci (instant_job "j");
  Ci.Server.disable ci "j";
  checkb "disabled" true (Ci.Server.trigger ci "j" = Ci.Server.Disabled);
  Ci.Server.enable ci "j";
  checkb "re-enabled" true (Ci.Server.trigger ci "j" <> Ci.Server.Disabled)

let test_executor_pool_limits_parallelism () =
  let engine, ci = mk ~executors:2 () in
  Ci.Server.define ci (timed_job ~duration:100.0 "long");
  ignore (Ci.Server.trigger ci "long");
  ignore (Ci.Server.trigger ci "long");
  ignore (Ci.Server.trigger ci "long");
  checki "two running" 2 (Ci.Server.busy_executors ci);
  checki "one queued" 1 (Ci.Server.queue_length ci);
  Simkit.Engine.run_until engine 150.0;
  checki "third started after a slot freed" 1 (Ci.Server.busy_executors ci);
  Simkit.Engine.run engine;
  checki "all done" 0 (Ci.Server.busy_executors ci);
  checki "queue drained" 0 (Ci.Server.queue_length ci)

let test_build_durations_recorded () =
  let engine, ci = mk () in
  Ci.Server.define ci (timed_job ~duration:42.0 "timed");
  ignore (Ci.Server.trigger ci "timed");
  Simkit.Engine.run engine;
  match Ci.Server.last_completed ci "timed" with
  | Some b ->
    (match Ci.Build.duration b with
     | Some d -> Alcotest.(check (float 1e-6)) "42 s" 42.0 d
     | None -> Alcotest.fail "no duration")
  | None -> Alcotest.fail "no build"

let test_body_exception_is_failure () =
  let engine, ci = mk () in
  Ci.Server.define ci (Ci.Jobdef.freestyle ~name:"boom" (fun ~engine:_ ~build:_ ~finish:_ ->
      failwith "kaboom"));
  ignore (Ci.Server.trigger ci "boom");
  Simkit.Engine.run engine;
  match Ci.Server.last_completed ci "boom" with
  | Some b -> checkb "failure recorded" true (b.Ci.Build.result = Some Ci.Build.Failure)
  | None -> Alcotest.fail "no build"

let test_abort_queued_build () =
  let engine, ci = mk ~executors:1 () in
  Ci.Server.define ci (timed_job ~duration:50.0 "serial");
  ignore (Ci.Server.trigger ci "serial");
  ignore (Ci.Server.trigger ci "serial");
  (match Ci.Server.build ci "serial" 2 with
   | Some b -> Ci.Server.abort_build ci b
   | None -> Alcotest.fail "queued build missing");
  Simkit.Engine.run engine;
  (match Ci.Server.build ci "serial" 2 with
   | Some b -> checkb "aborted" true (b.Ci.Build.result = Some Ci.Build.Aborted)
   | None -> Alcotest.fail "build 2 missing");
  checki "only one executed" 1 (Ci.Server.builds_executed ci)

let test_retention_trims_history () =
  let engine, ci = mk () in
  Ci.Server.define ci
    (Ci.Jobdef.freestyle ~retention:5 ~name:"talkative" (fun ~engine ~build:_ ~finish ->
         ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish Ci.Build.Success))));
  for _ = 1 to 12 do
    ignore (Ci.Server.trigger ci "talkative");
    Simkit.Engine.run engine
  done;
  checki "history trimmed to retention" 5 (List.length (Ci.Server.builds ci "talkative"));
  match Ci.Server.last_build ci "talkative" with
  | Some b -> checki "numbers keep increasing" 12 b.Ci.Build.number
  | None -> Alcotest.fail "no last build"

(* ---- Matrix projects ---------------------------------------------------------------- *)

let matrix_axes = [ ("image", [ "a"; "b"; "c" ]); ("cluster", [ "x"; "y" ]) ]

let matrix_job ?(fail_on = []) name =
  Ci.Jobdef.matrix ~name ~axes:matrix_axes (fun ~engine ~build ~finish ->
      let result =
        if List.mem build.Ci.Build.axes fail_on then Ci.Build.Failure else Ci.Build.Success
      in
      ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish result)))

let test_matrix_expansion () =
  checki "cartesian product" 6 (List.length (Ci.Jobdef.combinations matrix_axes));
  checki "combination count" 6 (Ci.Jobdef.combination_count (matrix_job "m"))

let test_matrix_trigger_all_combinations () =
  let engine, ci = mk ~executors:6 () in
  Ci.Server.define ci (matrix_job "m");
  (match Ci.Server.trigger ci "m" with
   | Ci.Server.Queued numbers -> checki "six children" 6 (List.length numbers)
   | _ -> Alcotest.fail "trigger failed");
  Simkit.Engine.run engine;
  checki "six builds stored" 6 (List.length (Ci.Server.builds ci "m"))

let test_matrix_last_of_axes () =
  let engine, ci = mk ~executors:6 () in
  Ci.Server.define ci (matrix_job "m" ~fail_on:[ [ ("image", "b"); ("cluster", "y") ] ]);
  ignore (Ci.Server.trigger ci "m");
  Simkit.Engine.run engine;
  (match Ci.Server.last_of_axes ci "m" ~axes:[ ("image", "b"); ("cluster", "y") ] with
   | Some b -> checkb "failing combination" true (b.Ci.Build.result = Some Ci.Build.Failure)
   | None -> Alcotest.fail "missing combination");
  match Ci.Server.last_of_axes ci "m" ~axes:[ ("image", "a"); ("cluster", "x") ] with
  | Some b -> checkb "passing combination" true (b.Ci.Build.result = Some Ci.Build.Success)
  | None -> Alcotest.fail "missing combination"

let test_matrix_reloaded_retries_only_failures () =
  let engine, ci = mk ~executors:6 () in
  let failing = [ [ ("image", "a"); ("cluster", "y") ]; [ ("image", "c"); ("cluster", "x") ] ] in
  Ci.Server.define ci (matrix_job "m" ~fail_on:failing);
  ignore (Ci.Server.trigger ci "m");
  Simkit.Engine.run engine;
  (* Matrix Reloaded: only the two failed combinations run again. *)
  (match Ci.Server.retry_failed ci "m" with
   | Ci.Server.Queued numbers -> checki "two retries" 2 (List.length numbers)
   | _ -> Alcotest.fail "retry failed");
  Simkit.Engine.run engine;
  checki "8 builds total" 8 (List.length (Ci.Server.builds ci "m"));
  (* Everything green now?  No: the job body still fails those axes. *)
  match Ci.Server.retry_failed ci "m" with
  | Ci.Server.Queued numbers -> checki "still two failing" 2 (List.length numbers)
  | _ -> Alcotest.fail "retry failed"

let test_matrix_subset_trigger () =
  let engine, ci = mk ~executors:6 () in
  Ci.Server.define ci (matrix_job "m");
  (match
     Ci.Server.trigger_subset ci "m" ~axes:[ [ ("image", "a"); ("cluster", "x") ] ]
   with
   | Ci.Server.Queued [ _ ] -> ()
   | _ -> Alcotest.fail "subset trigger failed");
  Simkit.Engine.run engine;
  checki "single build" 1 (List.length (Ci.Server.builds ci "m"))

(* ---- Cron-armed jobs ------------------------------------------------------------------ *)

let test_cron_triggered_job () =
  let engine, ci = mk () in
  Ci.Server.define ci
    (Ci.Jobdef.freestyle ~trigger:(Ci.Cron.parse_exn "0 * * * *") ~name:"nightly"
       (fun ~engine ~build:_ ~finish ->
         ignore (Simkit.Engine.schedule engine ~delay:10.0 (fun _ -> finish Ci.Build.Success))));
  Simkit.Engine.run_until engine (3.5 *. 3600.0);
  checki "three hourly builds" 3 (List.length (Ci.Server.builds ci "nightly"));
  List.iter
    (fun b -> checks "timer cause" "timer" b.Ci.Build.cause)
    (Ci.Server.builds ci "nightly")

(* ---- Access control --------------------------------------------------------------------- *)

let test_access_control () =
  let engine, ci = mk () in
  Ci.Server.define ci (instant_job "secure");
  checkb "anonymous denied" true (Ci.Server.trigger_as ci ~user:"eve" "secure" = Ci.Server.Denied);
  Ci.Server.grant ci ~user:"reader" Ci.Server.Read;
  checkb "reader denied" true
    (Ci.Server.trigger_as ci ~user:"reader" "secure" = Ci.Server.Denied);
  Ci.Server.grant ci ~user:"op" Ci.Server.Trigger;
  (match Ci.Server.trigger_as ci ~user:"op" "secure" with
   | Ci.Server.Queued _ -> ()
   | _ -> Alcotest.fail "operator should trigger");
  Simkit.Engine.run engine;
  match Ci.Server.last_completed ci "secure" with
  | Some b -> checks "cause names the user" "user:op" b.Ci.Build.cause
  | None -> Alcotest.fail "no build"

(* ---- REST --------------------------------------------------------------------------------- *)

let test_rest_endpoints () =
  let engine, ci = mk () in
  Ci.Server.define ci (instant_job "api-job");
  ignore (Ci.Server.trigger ci "api-job");
  Simkit.Engine.run engine;
  (match Ci.Server.rest ci "/api/json" with
   | Ok doc ->
     (match Simkit.Json.list_member "jobs" doc with
      | Some jobs -> checki "one job" 1 (List.length jobs)
      | None -> Alcotest.fail "no jobs member")
   | Error e -> Alcotest.fail e);
  (match Ci.Server.rest ci "/job/api-job/api/json" with
   | Ok doc ->
     (match Simkit.Json.list_member "builds" doc with
      | Some builds -> checki "one build" 1 (List.length builds)
      | None -> Alcotest.fail "no builds member")
   | Error e -> Alcotest.fail e);
  (match Ci.Server.rest ci "/job/api-job/1/api/json" with
   | Ok doc ->
     Alcotest.(check (option string))
       "result serialised" (Some "SUCCESS")
       (Simkit.Json.string_member "result" doc)
   | Error e -> Alcotest.fail e);
  (match Ci.Server.rest ci "/job/nosuch/api/json" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown job should error")

let test_listener_fires () =
  let engine, ci = mk () in
  let seen = ref [] in
  Ci.Server.on_build_complete ci (fun b -> seen := b.Ci.Build.job_name :: !seen);
  Ci.Server.define ci (instant_job "observed");
  ignore (Ci.Server.trigger ci "observed");
  Simkit.Engine.run engine;
  Alcotest.(check (list string)) "listener saw the build" [ "observed" ] !seen

let () =
  Alcotest.run "ci"
    [
      ( "build",
        [ Alcotest.test_case "result ordering" `Quick test_result_ordering;
          Alcotest.test_case "axes rendering" `Quick test_axes_to_string ] );
      ( "cron",
        [ Alcotest.test_case "parse errors" `Quick test_cron_parse_errors;
          Alcotest.test_case "hourly" `Quick test_cron_hourly;
          Alcotest.test_case "daily" `Quick test_cron_daily_at_3;
          Alcotest.test_case "weekday field" `Quick test_cron_weekday_field;
          Alcotest.test_case "steps and ranges" `Quick test_cron_steps_and_ranges ] );
      ( "server",
        [ Alcotest.test_case "trigger + history" `Quick test_freestyle_trigger_and_history;
          Alcotest.test_case "unknown/disabled" `Quick test_unknown_and_disabled;
          Alcotest.test_case "executor pool" `Quick test_executor_pool_limits_parallelism;
          Alcotest.test_case "durations" `Quick test_build_durations_recorded;
          Alcotest.test_case "body exception" `Quick test_body_exception_is_failure;
          Alcotest.test_case "abort queued" `Quick test_abort_queued_build;
          Alcotest.test_case "retention" `Quick test_retention_trims_history;
          Alcotest.test_case "listener" `Quick test_listener_fires ] );
      ( "matrix",
        [ Alcotest.test_case "expansion" `Quick test_matrix_expansion;
          Alcotest.test_case "trigger all" `Quick test_matrix_trigger_all_combinations;
          Alcotest.test_case "last of axes" `Quick test_matrix_last_of_axes;
          Alcotest.test_case "matrix reloaded" `Quick
            test_matrix_reloaded_retries_only_failures;
          Alcotest.test_case "subset trigger" `Quick test_matrix_subset_trigger ] );
      ( "automation",
        [ Alcotest.test_case "cron job" `Quick test_cron_triggered_job;
          Alcotest.test_case "access control" `Quick test_access_control;
          Alcotest.test_case "rest" `Quick test_rest_endpoints ] );
    ]
