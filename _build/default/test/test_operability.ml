(* Tests for the operability layer added on top of the paper's core:
   OAR accounting, CI log search and artifacts, bug notifications. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- OAR accounting -------------------------------------------------------- *)

let test_accounting_tracks_usage () =
  let instance = Testbed.Instance.build ~seed:7001L () in
  let oar = Oar.Manager.create instance in
  let accounting = Oar.Accounting.create oar in
  let submit user nodes duration =
    match
      Oar.Manager.submit oar ~user ~duration
        (Oar.Request.nodes ~filter:"cluster='grisou'" (`N nodes) ~walltime:7200.0)
    with
    | Ok job -> job
    | Error _ -> Alcotest.fail "submit failed"
  in
  ignore (submit "alice" 4 3600.0);
  ignore (submit "alice" 2 1800.0);
  ignore (submit "bob" 1 600.0);
  Simkit.Engine.run_until instance.Testbed.Instance.engine 20000.0;
  checki "three jobs recorded" 3 (Oar.Accounting.jobs_seen accounting);
  (match Oar.Accounting.user_report accounting with
   | top :: _ ->
     checks "alice is the heaviest user" "alice" top.Oar.Accounting.user;
     checki "alice's jobs" 2 top.Oar.Accounting.jobs;
     checkb "node-seconds ~ 4*3600 + 2*1800" true
       (Float.abs (top.Oar.Accounting.node_seconds -. 18000.0) < 10.0)
   | [] -> Alcotest.fail "empty report");
  (match Oar.Accounting.cluster_report accounting with
   | [ row ] -> checks "all on grisou" "grisou" row.Oar.Accounting.acc_cluster
   | _ -> Alcotest.fail "one cluster expected");
  checkb "total usage positive" true
    (Oar.Accounting.utilisation_node_seconds accounting > 0.0)

let test_accounting_wait_times () =
  let instance = Testbed.Instance.build ~seed:7002L () in
  let oar = Oar.Manager.create instance in
  let accounting = Oar.Accounting.create oar in
  (* Saturate nyx so the second job waits a full hour. *)
  let submit () =
    Oar.Manager.submit oar ~user:"u" ~duration:3600.0
      (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:3600.0)
  in
  ignore (submit ());
  ignore (submit ());
  Simkit.Engine.run_until instance.Testbed.Instance.engine 10000.0;
  let waits = Oar.Accounting.wait_times accounting in
  checki "two started jobs" 2 (Array.length waits);
  checkb "first ran immediately" true (waits.(0) < 1.0);
  checkb "second waited ~1h" true (Float.abs (waits.(1) -. 3600.0) < 5.0);
  checkb "p99 reflects the queue" true (Oar.Accounting.wait_percentile accounting 0.99 > 3000.0);
  checkb "render mentions waits" true
    (String.length (Oar.Accounting.render accounting) > 0)

let test_accounting_empty () =
  let instance = Testbed.Instance.build ~seed:7003L () in
  let oar = Oar.Manager.create instance in
  let accounting = Oar.Accounting.create oar in
  checki "nothing seen" 0 (Oar.Accounting.jobs_seen accounting);
  checkb "percentile nan" true (Float.is_nan (Oar.Accounting.wait_percentile accounting 0.5))

(* ---- CI log search and artifacts ---------------------------------------------- *)

let test_log_search () =
  let engine = Simkit.Engine.create () in
  let ci = Ci.Server.create engine in
  Ci.Server.define ci
    (Ci.Jobdef.freestyle ~name:"chatty" (fun ~engine ~build ~finish ->
         Ci.Build.append_log build "checking node graphene-12.nancy";
         Ci.Build.append_log build "all good";
         ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish Ci.Build.Success))));
  for _ = 1 to 3 do
    ignore (Ci.Server.trigger ci "chatty");
    Simkit.Engine.run engine
  done;
  let hits = Ci.Server.search_logs ci ~pattern:"graphene-12" in
  checki "one hit per build" 3 (List.length hits);
  (match hits with
   | (build, line) :: _ ->
     checks "from the right job" "chatty" build.Ci.Build.job_name;
     checkb "line matched" true (String.length line > 0)
   | [] -> Alcotest.fail "hits expected");
  checki "no hits for other hosts" 0
    (List.length (Ci.Server.search_logs ci ~pattern:"helios-1"));
  checki "limit respected" 2
    (List.length (Ci.Server.search_logs ~limit:2 ci ~pattern:"graphene-12"))

let test_artifacts_roundtrip () =
  let engine = Simkit.Engine.create () in
  let ci = Ci.Server.create engine in
  Ci.Server.define ci
    (Ci.Jobdef.freestyle ~name:"measuring" (fun ~engine ~build ~finish ->
         Ci.Build.attach_artifact build ~name:"data.csv" "host,value\na,1\n";
         ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun _ -> finish Ci.Build.Success))));
  ignore (Ci.Server.trigger ci "measuring");
  Simkit.Engine.run engine;
  match Ci.Server.last_completed ci "measuring" with
  | Some build -> (
    match Ci.Build.artifact build "data.csv" with
    | Some content -> checkb "stored" true (String.length content > 5)
    | None -> Alcotest.fail "artifact missing")
  | None -> Alcotest.fail "no build"

let test_disk_script_attaches_artifact () =
  let env = Framework.Env.create ~seed:7004L () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_disk"
       ~axes:[ [ ("cluster", "graphite") ] ]);
  Framework.Env.run_until env (4.0 *. Simkit.Calendar.hour);
  match Ci.Server.last_completed env.Framework.Env.ci "test_disk" with
  | Some build -> (
    match Ci.Build.artifact build "disk_bandwidth.csv" with
    | Some csv ->
      checkb "csv has a row per node (4 + header)" true
        (List.length (String.split_on_char '\n' csv) >= 5)
    | None -> Alcotest.fail "disk artifact missing")
  | None -> Alcotest.fail "disk build missing"

(* ---- Notifications -------------------------------------------------------------- *)

let file_bug tracker ~signature ~category =
  match
    Framework.Bugtracker.file tracker ~now:0.0
      {
        Framework.Bugtracker.signature;
        summary = "something broke";
        category;
        source_test = "test";
        fault_ids = [];
      }
  with
  | `New bug -> bug
  | `Duplicate _ -> Alcotest.fail "new bug expected"

let test_notify_routes_to_site_team () =
  let env = Framework.Env.create ~seed:7005L () in
  let notify = Framework.Notify.create env in
  let tracker = Framework.Bugtracker.create () in
  let bug = file_bug tracker ~signature:"disk:grisou-3.nancy" ~category:"disk" in
  let message = Framework.Notify.notify_bug notify bug in
  checks "routed to nancy admins" "admins@nancy" message.Framework.Notify.mailbox;
  checkb "immediate urgency" true (message.Framework.Notify.urgency = Framework.Notify.Immediate);
  checki "delivered at once" 1 (List.length (Framework.Notify.inbox notify "admins@nancy"))

let test_notify_digest_batching () =
  let env = Framework.Env.create ~seed:7006L () in
  let notify = Framework.Notify.create env in
  let tracker = Framework.Bugtracker.create () in
  let b1 = file_bug tracker ~signature:"sidapi:lyon" ~category:"services" in
  let b2 = file_bug tracker ~signature:"env:foo:postinstall" ~category:"software" in
  ignore (Framework.Notify.notify_bug notify b1);
  ignore (Framework.Notify.notify_bug notify b2);
  checki "nothing delivered yet" 0 (List.length (Framework.Notify.sent notify));
  let digests = Framework.Notify.flush_digests notify ~now:86400.0 in
  checki "one digest mailbox" 1 (List.length digests);
  (match digests with
   | [ d ] ->
     checks "tools team" "tools-team" d.Framework.Notify.mailbox;
     checkb "two items inside" true
       (String.length d.Framework.Notify.body > 0
       && List.length (String.split_on_char '\n' d.Framework.Notify.body) = 2)
   | _ -> ());
  checki "digest delivered" 1 (List.length (Framework.Notify.sent notify));
  checki "second flush empty" 0
    (List.length (Framework.Notify.flush_digests notify ~now:172800.0))

let test_notify_body_is_full_report () =
  let env = Framework.Env.create ~seed:7007L () in
  let notify = Framework.Notify.create env in
  let tracker = Framework.Bugtracker.create () in
  let bug = file_bug tracker ~signature:"refapi:helios-2.sophia:x" ~category:"cpu-settings" in
  let message = Framework.Notify.notify_bug notify bug in
  let contains needle =
    let h = message.Framework.Notify.body in
    let n = String.length needle and m = String.length h in
    let rec scan i = i + n <= m && (String.sub h i n = needle || scan (i + 1)) in
    scan 0
  in
  checkb "body embeds the operator report" true (contains "suggested");
  checks "sophia team" "admins@sophia" message.Framework.Notify.mailbox

let () =
  Alcotest.run "operability"
    [
      ( "accounting",
        [ Alcotest.test_case "usage tracking" `Quick test_accounting_tracks_usage;
          Alcotest.test_case "wait times" `Quick test_accounting_wait_times;
          Alcotest.test_case "empty" `Quick test_accounting_empty ] );
      ( "ci-logs",
        [ Alcotest.test_case "log search" `Quick test_log_search;
          Alcotest.test_case "artifacts" `Quick test_artifacts_roundtrip;
          Alcotest.test_case "disk script artifact" `Quick
            test_disk_script_attaches_artifact ] );
      ( "notify",
        [ Alcotest.test_case "site routing" `Quick test_notify_routes_to_site_team;
          Alcotest.test_case "digest batching" `Quick test_notify_digest_batching;
          Alcotest.test_case "full report body" `Quick test_notify_body_is_full_report ] );
    ]
