(* Tests for the reporting/operability layer: trace log, JSON campaign
   reports, operator bug reports, confidence scores — plus the OAR
   advance reservations and user-image registration they build on. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---- Tracelog -------------------------------------------------------------- *)

let test_tracelog_basic () =
  let t = Simkit.Tracelog.create ~capacity:100 () in
  Simkit.Tracelog.record t ~time:1.0 ~category:"fault" "a";
  Simkit.Tracelog.recordf t ~time:2.0 ~category:"bug" "bug #%d" 7;
  checki "size" 2 (Simkit.Tracelog.size t);
  checki "dropped" 0 (Simkit.Tracelog.dropped t);
  (match Simkit.Tracelog.entries t with
   | [ a; b ] ->
     checks "order" "a" a.Simkit.Tracelog.message;
     checks "formatted" "bug #7" b.Simkit.Tracelog.message
   | _ -> Alcotest.fail "two entries expected");
  checki "by category" 1 (List.length (Simkit.Tracelog.by_category t "fault"));
  checki "window" 1 (List.length (Simkit.Tracelog.between t ~lo:1.5 ~hi:3.0))

let test_tracelog_ring_eviction () =
  let t = Simkit.Tracelog.create ~capacity:5 () in
  for i = 1 to 12 do
    Simkit.Tracelog.record t ~time:(float_of_int i) ~category:"x" (string_of_int i)
  done;
  checki "bounded" 5 (Simkit.Tracelog.size t);
  checki "evictions counted" 7 (Simkit.Tracelog.dropped t);
  (match Simkit.Tracelog.entries t with
   | first :: _ -> checks "oldest retained is 8" "8" first.Simkit.Tracelog.message
   | [] -> Alcotest.fail "entries expected");
  Simkit.Tracelog.clear t;
  checki "cleared" 0 (Simkit.Tracelog.size t)

let test_tracelog_categories_and_render () =
  let t = Simkit.Tracelog.create () in
  for i = 1 to 3 do
    Simkit.Tracelog.record t ~time:(float_of_int i) ~category:"fault" "f"
  done;
  Simkit.Tracelog.record t ~time:4.0 ~category:"bug" "b";
  (match Simkit.Tracelog.categories t with
   | (top, n) :: _ ->
     checks "fault dominates" "fault" top;
     checki "count" 3 n
   | [] -> Alcotest.fail "categories expected");
  let rendered = Simkit.Tracelog.render ~limit:2 t in
  checki "limited lines" 2
    (List.length (List.filter (( <> ) "") (String.split_on_char '\n' rendered)))

let test_campaign_records_trace () =
  let report_env = Framework.Env.create ~seed:5001L () in
  ignore report_env;
  let cfg =
    { Framework.Campaign.default_config with
      Framework.Campaign.months = 1;
      seed = 5001L;
      workload = None;
    }
  in
  (* Campaign.run builds its own env; validate through a direct check of
     the scheduler/bug trace wiring instead: run and confirm the report
     numbers are consistent (tracing is internal), then separately
     exercise Env.tracef. *)
  let env = Framework.Env.create ~seed:5002L () in
  Framework.Env.tracef env ~category:"fault" "hello %d" 1;
  checki "entry recorded" 1 (Simkit.Tracelog.size env.Framework.Env.trace);
  ignore cfg

(* ---- JSON campaign report ---------------------------------------------------- *)

let small_campaign =
  lazy
    (Framework.Campaign.run
       { Framework.Campaign.default_config with
         Framework.Campaign.months = 1;
         seed = 5003L;
         workload = None;
       })

let test_report_json_roundtrip () =
  let report = Lazy.force small_campaign in
  let text = Framework.Report.to_string report in
  match Simkit.Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok json -> (
    Alcotest.(check (option string))
      "schema tag" (Some "g5ktest/campaign-report/1")
      (Simkit.Json.string_member "schema" json);
    Alcotest.(check (option int))
      "bugs filed" (Some report.Framework.Campaign.bugs_filed)
      (Simkit.Json.int_member "bugs_filed" json);
    match Framework.Report.summary_of_json json with
    | Ok summary -> checkb "summary mentions builds" true (String.length summary > 10)
    | Error e -> Alcotest.fail e)

let test_report_monthly_serialisation () =
  let report = Lazy.force small_campaign in
  let json = Framework.Report.to_json report in
  match Simkit.Json.list_member "monthly" json with
  | Some months ->
    checki "one month" 1 (List.length months);
    (match months with
     | [ m ] ->
       Alcotest.(check (option int)) "month index" (Some 0) (Simkit.Json.int_member "month" m)
     | _ -> Alcotest.fail "one month expected")
  | None -> Alcotest.fail "monthly missing"

let test_report_schema_validation () =
  (match Framework.Report.summary_of_json (Simkit.Json.Obj []) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "empty object must fail");
  match
    Framework.Report.summary_of_json
      (Simkit.Json.Obj [ ("schema", Simkit.Json.String "other/2") ])
  with
  | Error msg -> checkb "names the schema" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "wrong schema must fail"

(* ---- Bug reports --------------------------------------------------------------- *)

let mk_bug env tracker =
  let fault =
    Option.get
      (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:100.0
         Testbed.Faults.Disk_write_cache (Testbed.Faults.Host "parasilo-3.rennes"))
  in
  match
    Framework.Bugtracker.file tracker ~now:200.0
      {
        Framework.Bugtracker.signature = "disk:parasilo-3.rennes";
        summary = "parasilo-3.rennes disk at 55% of expected bandwidth";
        category = "disk";
        source_test = "disk:parasilo";
        fault_ids = [ fault.Testbed.Faults.id ];
      }
  with
  | `New bug -> (bug, fault)
  | `Duplicate _ -> Alcotest.fail "expected new bug"

let test_bugreport_render () =
  let env = Framework.Env.create ~seed:5004L () in
  let tracker = Framework.Bugtracker.create () in
  let bug, fault = mk_bug env tracker in
  let report = Framework.Bugreport.render env bug in
  let contains needle =
    let n = String.length needle and m = String.length report in
    let rec scan i = i + n <= m && (String.sub report i n = needle || scan (i + 1)) in
    scan 0
  in
  checkb "names the host" true (contains "parasilo-3.rennes");
  checkb "names the cluster" true (contains "cluster parasilo");
  checkb "links ground truth" true
    (contains (Printf.sprintf "fault #%d" fault.Testbed.Faults.id));
  checkb "suggests an action" true (contains "firmware");
  checkb "open status" true (contains "OPEN")

let test_bugreport_scope_without_host () =
  let env = Framework.Env.create ~seed:5005L () in
  let bug =
    match
      Framework.Bugtracker.file (Framework.Bugtracker.create ()) ~now:0.0
        {
          Framework.Bugtracker.signature = "oarstate:lyon:service";
          summary = "OAR unreachable on lyon";
          category = "services";
          source_test = "oarstate:lyon";
          fault_ids = [];
        }
    with
    | `New bug -> bug
    | `Duplicate _ -> Alcotest.fail "new expected"
  in
  checks "falls back to the source test" "reported by oarstate:lyon"
    (Framework.Bugreport.affected_scope env bug)

let test_bugreport_index_orders_open_first () =
  let env = Framework.Env.create ~seed:5006L () in
  let tracker = Framework.Bugtracker.create () in
  let bug1, _ = mk_bug env tracker in
  (match
     Framework.Bugtracker.file tracker ~now:300.0
       {
         Framework.Bugtracker.signature = "console:lyon";
         summary = "console broken";
         category = "services";
         source_test = "console:orion";
         fault_ids = [];
       }
   with
   | `New _ -> ()
   | `Duplicate _ -> Alcotest.fail "new expected");
  Framework.Bugtracker.mark_fixed tracker ~now:400.0 bug1;
  let index = Framework.Bugreport.render_index env tracker in
  let open_pos =
    let rec find i =
      if i + 4 > String.length index then -1
      else if String.sub index i 4 = "OPEN" then i
      else find (i + 1)
    in
    find 0
  in
  let fixed_pos =
    let rec find i =
      if i + 5 > String.length index then -1
      else if String.sub index i 5 = "fixed" then i
      else find (i + 1)
    in
    find 0
  in
  checkb "has both" true (open_pos >= 0 && fixed_pos >= 0);
  checkb "open before fixed" true (open_pos < fixed_pos)

let test_suggested_actions_cover_categories () =
  List.iter
    (fun category ->
      checkb (category ^ " has advice") true
        (String.length (Framework.Bugreport.suggested_action category) > 10))
    [ "cpu-settings"; "disk"; "cabling"; "infrastructure"; "description";
      "services"; "software" ]

(* ---- Confidence ------------------------------------------------------------------ *)

let run_family_build env family axes =
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci
       (Framework.Jobs.job_name family) ~axes:[ axes ]);
  Framework.Env.run_until env (Framework.Env.now env +. (4.0 *. Simkit.Calendar.hour))

let test_confidence_scores () =
  let env = Framework.Env.create ~seed:5007L () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  checkb "no score before any run" true
    (Framework.Confidence.cluster_score page ~cluster:"graphite" = None);
  run_family_build env Framework.Testdef.Refapi [ ("cluster", "graphite") ];
  (match Framework.Confidence.cluster_score page ~cluster:"graphite" with
   | Some s -> Alcotest.(check (float 1e-9)) "all green = 1.0" 1.0 s
   | None -> Alcotest.fail "score expected");
  (* Break the disks; the weighted score drops below a refapi-only KO. *)
  ignore
    (Testbed.Faults.inject_on (Framework.Env.faults env) ~now:(Framework.Env.now env)
       Testbed.Faults.Disk_write_cache (Testbed.Faults.Host "graphite-1.nancy"));
  run_family_build env Framework.Testdef.Disk [ ("cluster", "graphite") ];
  match Framework.Confidence.cluster_score page ~cluster:"graphite" with
  | Some s ->
    checkb "score dropped" true (s < 1.0);
    checks "grade reflects it" "C" (Framework.Confidence.grade s)
  | None -> Alcotest.fail "score expected"

let test_confidence_grades () =
  checks "A" "A" (Framework.Confidence.grade 0.95);
  checks "B" "B" (Framework.Confidence.grade 0.8);
  checks "C" "C" (Framework.Confidence.grade 0.6);
  checks "D" "D" (Framework.Confidence.grade 0.2)

let test_confidence_ranking_render () =
  let env = Framework.Env.create ~seed:5008L () in
  let page = Framework.Statuspage.create env in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  run_family_build env Framework.Testdef.Refapi [ ("cluster", "nyx") ];
  run_family_build env Framework.Testdef.Refapi [ ("cluster", "graphite") ];
  let ranking = Framework.Confidence.ranking page in
  checki "two clusters ranked" 2 (List.length ranking);
  checkb "render mentions grades" true
    (String.length (Framework.Confidence.render page) > 0)

(* ---- OAR advance reservations ------------------------------------------------------ *)

let mk_oar () =
  let instance = Testbed.Instance.build ~seed:5009L () in
  (instance, Oar.Manager.create instance)

let test_submit_at_future_start () =
  let instance, oar = mk_oar () in
  let start = 7200.0 in
  let job =
    match
      Oar.Manager.submit_at oar ~start
        (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 2) ~walltime:3600.0)
    with
    | Ok job -> job
    | Error _ -> Alcotest.fail "advance reservation failed"
  in
  checkb "scheduled" true (job.Oar.Job.state = Oar.Job.Scheduled);
  Alcotest.(check (float 1e-6)) "start honoured" start job.Oar.Job.scheduled_start;
  Simkit.Engine.run_until instance.Testbed.Instance.engine 12000.0;
  checkb "ran at its slot" true (job.Oar.Job.state = Oar.Job.Terminated);
  match job.Oar.Job.started_at with
  | Some at -> checkb "started on time" true (Float.abs (at -. start) < 1.0)
  | None -> Alcotest.fail "never started"

let test_submit_at_conflict_rejected () =
  let _, oar = mk_oar () in
  (* Occupy all of nyx around the requested slot. *)
  (match
     Oar.Manager.submit oar
       (Oar.Request.nodes ~filter:"cluster='nyx'" `All ~walltime:14400.0)
   with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "setup failed");
  match
    Oar.Manager.submit_at oar ~start:7200.0
      (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:3600.0)
  with
  | Error (Oar.Manager.Not_immediately_schedulable at) ->
    checkb "proposes the next slot" true (at >= 14400.0)
  | _ -> Alcotest.fail "conflicting advance reservation must be rejected"

let test_submit_at_past_rejected () =
  let instance, oar = mk_oar () in
  Simkit.Engine.run_until instance.Testbed.Instance.engine 1000.0;
  checkb "past start raises" true
    (try
       ignore
         (Oar.Manager.submit_at oar ~start:10.0
            (Oar.Request.nodes ~filter:"cluster='nyx'" (`N 1) ~walltime:600.0));
       false
     with Invalid_argument _ -> true)

(* ---- User image registration --------------------------------------------------------- *)

let test_image_register_and_deploy () =
  let instance = Testbed.Instance.build ~seed:5010L () in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  let image =
    match
      Kadeploy.Image.register registry ~name:"mylab-stack" ~base:"debian/jessie"
        ~size_mb:1800 [ "install mylab"; "configure cluster-ssh" ]
    with
    | Ok img -> img
    | Error e -> Alcotest.fail e
  in
  checkb "fresh index beyond the standard 14" true
    (image.Kadeploy.Image.index >= Kadeploy.Image.count);
  checki "catalogue grew" 15 (List.length (Kadeploy.Image.all registry));
  checkb "lookup works" true (Kadeploy.Image.get registry "mylab-stack" <> None);
  (* Deployable like any standard image. *)
  let node = Testbed.Instance.node instance "grisou-1.nancy" in
  let result = ref None in
  Kadeploy.Deploy.run instance ~registry ~image:"mylab-stack" ~nodes:[ node ]
    ~on_done:(fun r -> result := Some r);
  Simkit.Engine.run_until instance.Testbed.Instance.engine 7200.0;
  (match !result with
   | Some r -> checkb "deployed" true (Kadeploy.Deploy.all_deployed r)
   | None -> Alcotest.fail "deployment never finished");
  checks "environment set" "mylab-stack" node.Testbed.Node.deployed_env

let test_image_register_rejects_duplicates () =
  let instance = Testbed.Instance.build ~seed:5011L () in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  (match Kadeploy.Image.register registry ~name:"debian8-x64-std" ~base:"x" ~size_mb:1 [] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "standard name must be rejected");
  (match Kadeploy.Image.register registry ~name:"mine" ~base:"x" ~size_mb:100 [] with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (match Kadeploy.Image.register registry ~name:"mine" ~base:"x" ~size_mb:100 [] with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "duplicate user name must be rejected");
  match Kadeploy.Image.register registry ~name:"bad" ~base:"x" ~size_mb:0 [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive size must be rejected"

let test_image_register_corruption_targetable () =
  let instance = Testbed.Instance.build ~seed:5012L () in
  let registry =
    Kadeploy.Image.registry (Testbed.Faults.context instance.Testbed.Instance.faults)
  in
  let image =
    match Kadeploy.Image.register registry ~name:"victim" ~base:"x" ~size_mb:500 [] with
    | Ok img -> img
    | Error e -> Alcotest.fail e
  in
  let ctx = Testbed.Faults.context instance.Testbed.Instance.faults in
  Hashtbl.replace ctx.Testbed.Faults.flags
    (Printf.sprintf "env_corrupt:%d" image.Kadeploy.Image.index)
    "x";
  checkb "user image corruptible too" true (Kadeploy.Image.is_corrupt registry image)

let () =
  Alcotest.run "reporting"
    [
      ( "tracelog",
        [ Alcotest.test_case "basic" `Quick test_tracelog_basic;
          Alcotest.test_case "ring eviction" `Quick test_tracelog_ring_eviction;
          Alcotest.test_case "categories + render" `Quick
            test_tracelog_categories_and_render;
          Alcotest.test_case "env tracef" `Quick test_campaign_records_trace ] );
      ( "json-report",
        [ Alcotest.test_case "roundtrip" `Slow test_report_json_roundtrip;
          Alcotest.test_case "monthly series" `Slow test_report_monthly_serialisation;
          Alcotest.test_case "schema validation" `Quick test_report_schema_validation ] );
      ( "bugreport",
        [ Alcotest.test_case "render" `Quick test_bugreport_render;
          Alcotest.test_case "scope without host" `Quick test_bugreport_scope_without_host;
          Alcotest.test_case "index order" `Quick test_bugreport_index_orders_open_first;
          Alcotest.test_case "actions cover categories" `Quick
            test_suggested_actions_cover_categories ] );
      ( "confidence",
        [ Alcotest.test_case "scores" `Quick test_confidence_scores;
          Alcotest.test_case "grades" `Quick test_confidence_grades;
          Alcotest.test_case "ranking + render" `Quick test_confidence_ranking_render ] );
      ( "advance-reservations",
        [ Alcotest.test_case "future start" `Quick test_submit_at_future_start;
          Alcotest.test_case "conflict rejected" `Quick test_submit_at_conflict_rejected;
          Alcotest.test_case "past rejected" `Quick test_submit_at_past_rejected ] );
      ( "user-images",
        [ Alcotest.test_case "register + deploy" `Quick test_image_register_and_deploy;
          Alcotest.test_case "duplicates rejected" `Quick
            test_image_register_rejects_duplicates;
          Alcotest.test_case "corruption targetable" `Quick
            test_image_register_corruption_targetable ] );
    ]
