(* Edge cases across the stack that the per-module suites do not cover. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- engine bookkeeping ------------------------------------------------------ *)

let test_engine_pending_counts_cancellations () =
  let e = Simkit.Engine.create () in
  let h1 = Simkit.Engine.schedule e ~delay:1.0 (fun _ -> ()) in
  let _h2 = Simkit.Engine.schedule e ~delay:2.0 (fun _ -> ()) in
  checki "two pending" 2 (Simkit.Engine.pending e);
  Simkit.Engine.cancel e h1;
  checki "one effective" 1 (Simkit.Engine.pending e);
  checkb "marked cancelled" true (Simkit.Engine.cancelled e h1);
  Simkit.Engine.run e;
  checki "one executed" 1 (Simkit.Engine.events_executed e)

let test_engine_negative_delay_clamped () =
  let e = Simkit.Engine.create () in
  Simkit.Engine.run_until e 10.0;
  let fired_at = ref nan in
  ignore
    (Simkit.Engine.schedule e ~delay:(-5.0) (fun e -> fired_at := Simkit.Engine.now e));
  Simkit.Engine.run e;
  Alcotest.(check (float 1e-9)) "fires now, not in the past" 10.0 !fired_at

(* ---- json numbers -------------------------------------------------------------- *)

let test_json_number_forms () =
  List.iter
    (fun (text, expected) ->
      match Simkit.Json.of_string text with
      | Ok v -> checkb text true (Simkit.Json.equal v expected)
      | Error e -> Alcotest.failf "%s: %s" text e)
    [ ("-42", Simkit.Json.Int (-42));
      ("0", Simkit.Json.Int 0);
      ("3.5", Simkit.Json.Float 3.5);
      ("-1.25e2", Simkit.Json.Float (-125.0));
      ("1E3", Simkit.Json.Float 1000.0) ]

let test_json_deep_nesting () =
  let rec deep n = if n = 0 then Simkit.Json.Int 1 else Simkit.Json.List [ deep (n - 1) ] in
  let doc = deep 100 in
  match Simkit.Json.of_string (Simkit.Json.to_string doc) with
  | Ok parsed -> checkb "100-deep roundtrip" true (Simkit.Json.equal parsed doc)
  | Error e -> Alcotest.fail e

(* ---- report NaN handling --------------------------------------------------------- *)

let test_report_handles_empty_month () =
  let monthly =
    {
      Framework.Campaign.month = 0;
      builds = 0;
      successful = 0;
      success_ratio = nan;
      bugs_filed_cum = 0;
      bugs_fixed_cum = 0;
      active_faults = 0;
      enabled_configs = 0;
    }
  in
  let json = Framework.Report.monthly_to_json monthly in
  (* NaN must serialise as null, and the whole doc must stay parseable. *)
  checkb "nan -> null" true (Simkit.Json.member "success_ratio" json = Some Simkit.Json.Null);
  match Simkit.Json.of_string (Simkit.Json.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* ---- cron edge: dom/month fields --------------------------------------------------- *)

let test_cron_day_of_month () =
  (* Day 15 of the 30-day month: day index 14. *)
  let cron = Ci.Cron.parse_exn "0 0 15 * *" in
  let fire = Ci.Cron.next_fire cron ~after:0.0 in
  checki "fires on day index 14" 14 (Simkit.Calendar.day_index fire)

let test_cron_month_field () =
  (* Month 2 starts at day 30. *)
  let cron = Ci.Cron.parse_exn "0 0 1 2 *" in
  let fire = Ci.Cron.next_fire cron ~after:0.0 in
  checki "fires on day 30" 30 (Simkit.Calendar.day_index fire)

(* ---- dist sampling edge ------------------------------------------------------------- *)

let test_dist_sample_positive_clamps () =
  let rng = Simkit.Prng.create 99L in
  for _ = 1 to 1000 do
    checkb "never negative" true
      (Simkit.Dist.sample_positive rng (Simkit.Dist.Normal (-5.0, 1.0)) >= 0.0)
  done

(* ---- statuspage scope for kavlan global vlan --------------------------------------- *)

let test_kavlan_global_scope_key () =
  let configs = Framework.Testdef.expand Framework.Testdef.Kavlan in
  let global = List.find (fun c -> c.Framework.Testdef.vlan = Some 300) configs in
  checkb "global vlan has no site" true (global.Framework.Testdef.site = None);
  Alcotest.(check (list (pair string string)))
    "axes use the vlan id"
    [ ("vlan", "300") ]
    (Framework.Testdef.axes_of_config global)

(* ---- whole-cluster need with a down node -------------------------------------------- *)

let test_whole_cluster_runs_with_down_node () =
  let env = Framework.Env.create ~seed:9901L () in
  Framework.Jobs.define_all env ~on_evidence:(fun _ -> ());
  (Testbed.Instance.node env.Framework.Env.instance "graphite-4.nancy").Testbed.Node.state <-
    Testbed.Node.Down;
  ignore
    (Ci.Server.trigger_subset env.Framework.Env.ci "test_disk"
       ~axes:[ [ ("cluster", "graphite") ] ]);
  Framework.Env.run_until env (4.0 *. Simkit.Calendar.hour);
  match Ci.Server.last_completed env.Framework.Env.ci "test_disk" with
  | Some b ->
    (* The test runs on the usable subset rather than waiting forever. *)
    checkb "completed despite the dead node" true
      (b.Ci.Build.result = Some Ci.Build.Success)
  | None -> Alcotest.fail "disk test never completed"

let () =
  Alcotest.run "edge"
    [
      ( "engine",
        [ Alcotest.test_case "pending/cancel bookkeeping" `Quick
            test_engine_pending_counts_cancellations;
          Alcotest.test_case "negative delay clamped" `Quick
            test_engine_negative_delay_clamped ] );
      ( "json",
        [ Alcotest.test_case "number forms" `Quick test_json_number_forms;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting ] );
      ("report", [ Alcotest.test_case "empty month" `Quick test_report_handles_empty_month ]);
      ( "cron",
        [ Alcotest.test_case "day of month" `Quick test_cron_day_of_month;
          Alcotest.test_case "month field" `Quick test_cron_month_field ] );
      ("dist", [ Alcotest.test_case "positive clamp" `Quick test_dist_sample_positive_clamps ]);
      ( "framework",
        [ Alcotest.test_case "kavlan global scope" `Quick test_kavlan_global_scope_key;
          Alcotest.test_case "whole cluster with down node" `Quick
            test_whole_cluster_runs_with_down_node ] );
    ]
