type aggregation = Mean | Max | Min

type condition = Above of float | Below of float | Absent

type rule = {
  rule_name : string;
  host : string;
  metric : Collector.metric;
  window : float;
  aggregation : aggregation;
  condition : condition;
}

type source =
  | Metric of rule
  | Healthy_floor of string  (* site *)
  | Quarantine of string  (* host *)
  | Flapping of int  (* bug id *)
  | Serving_degraded of string  (* service *)

type alert = {
  source : source;
  fired_at : float;
  value : float option;
  reason : string;
  mutable resolved_at : float option;
}

type t = {
  collector : Collector.t;
  mutable rule_list : rule list;
  mutable floors : (string * float) list;  (* site -> healthy fraction floor *)
  mutable alerts : alert list;  (* newest first *)
}

let create collector =
  { collector; rule_list = []; floors = []; alerts = [] }

let add_rule t rule = t.rule_list <- t.rule_list @ [ rule ]
let rules t = t.rule_list
let firing t = List.rev (List.filter (fun a -> a.resolved_at = None) t.alerts)
let history t = List.rev t.alerts

let aggregate aggregation values =
  match values with
  | [||] -> None
  | values ->
    Some
      (match aggregation with
       | Mean ->
         Array.fold_left ( +. ) 0.0 values /. float_of_int (Array.length values)
       | Max -> Array.fold_left Float.max neg_infinity values
       | Min -> Array.fold_left Float.min infinity values)

let same_source a b =
  match (a, b) with
  | Metric r, Metric r' -> String.equal r.rule_name r'.rule_name
  | Healthy_floor s, Healthy_floor s' -> String.equal s s'
  | Quarantine h, Quarantine h' -> String.equal h h'
  | Flapping b, Flapping b' -> Int.equal b b'
  | Serving_degraded s, Serving_degraded s' -> String.equal s s'
  | _ -> false

let currently_firing t source =
  List.find_opt
    (fun a -> a.resolved_at = None && same_source a.source source)
    t.alerts

let condition_to_string = function
  | Above v -> Printf.sprintf "> %.1f" v
  | Below v -> Printf.sprintf "< %.1f" v
  | Absent -> "absent"

let evaluate t ~now =
  List.filter_map
    (fun rule ->
      let lo = Float.max 0.0 (now -. rule.window) in
      let series =
        Collector.sample_window t.collector ~host:rule.host rule.metric ~lo ~hi:now
      in
      let values = Simkit.Timeseries.values_between series ~lo ~hi:now in
      let aggregated = aggregate rule.aggregation values in
      let holds =
        match (rule.condition, aggregated) with
        | Absent, None -> true
        | Absent, Some _ -> false
        | (Above _ | Below _), None -> false
        | Above threshold, Some v -> v > threshold
        | Below threshold, Some v -> v < threshold
      in
      match (holds, currently_firing t (Metric rule)) with
      | true, Some _ -> None  (* already firing *)
      | true, None ->
        let alert =
          {
            source = Metric rule;
            fired_at = now;
            value = aggregated;
            reason =
              Printf.sprintf "%s %s on %s"
                (Collector.metric_to_string rule.metric)
                (condition_to_string rule.condition)
                rule.host;
            resolved_at = None;
          }
        in
        t.alerts <- alert :: t.alerts;
        Some alert
      | false, Some alert ->
        alert.resolved_at <- Some now;
        None
      | false, None -> None)
    t.rule_list

(* ---- health-loop alert sources ----------------------------------------- *)

let set_healthy_floor t ~site ~floor =
  t.floors <- (site, floor) :: List.remove_assoc site t.floors

let observe_site_health t ~now ~site ~healthy_fraction =
  match List.assoc_opt site t.floors with
  | None -> None
  | Some floor -> (
    let below = healthy_fraction < floor in
    match (below, currently_firing t (Healthy_floor site)) with
    | true, Some _ -> None  (* already firing *)
    | true, None ->
      let alert =
        {
          source = Healthy_floor site;
          fired_at = now;
          value = Some healthy_fraction;
          reason =
            Printf.sprintf "healthy fraction of %s at %.0f%% (floor %.0f%%)" site
              (100.0 *. healthy_fraction) (100.0 *. floor);
          resolved_at = None;
        }
      in
      t.alerts <- alert :: t.alerts;
      Some alert
    | false, Some alert ->
      alert.resolved_at <- Some now;
      None
    | false, None -> None)

let notify_quarantine t ~now ~host ~reason =
  match currently_firing t (Quarantine host) with
  | Some alert -> alert
  | None ->
    let alert =
      {
        source = Quarantine host;
        fired_at = now;
        value = None;
        reason;
        resolved_at = None;
      }
    in
    t.alerts <- alert :: t.alerts;
    alert

let resolve_quarantine t ~now ~host =
  match currently_firing t (Quarantine host) with
  | Some alert -> alert.resolved_at <- Some now
  | None -> ()

let notify_flapping t ~now ~bug ~reason =
  match currently_firing t (Flapping bug) with
  | Some alert -> alert
  | None ->
    let alert =
      {
        source = Flapping bug;
        fired_at = now;
        value = None;
        reason;
        resolved_at = None;
      }
    in
    t.alerts <- alert :: t.alerts;
    alert

let resolve_flapping t ~now ~bug =
  match currently_firing t (Flapping bug) with
  | Some alert -> alert.resolved_at <- Some now
  | None -> ()

let notify_serving_degraded t ~now ~service ~reason =
  match currently_firing t (Serving_degraded service) with
  | Some alert -> alert
  | None ->
    let alert =
      {
        source = Serving_degraded service;
        fired_at = now;
        value = None;
        reason;
        resolved_at = None;
      }
    in
    t.alerts <- alert :: t.alerts;
    alert

let resolve_serving_degraded t ~now ~service =
  match currently_firing t (Serving_degraded service) with
  | Some alert -> alert.resolved_at <- Some now
  | None -> ()

let source_to_strings = function
  | Metric rule ->
    ( rule.rule_name,
      rule.host,
      Collector.metric_to_string rule.metric,
      condition_to_string rule.condition )
  | Healthy_floor site -> ("healthy-floor", site, "healthy_fraction", "below floor")
  | Quarantine host -> ("quarantine", host, "node_health", "quarantined")
  | Flapping bug ->
    ("flapping", Printf.sprintf "bug #%d" bug, "bugtracker", "fixed<->reopened")
  | Serving_degraded service ->
    ("serving-degraded", service, "serve_mode", "not fresh")

let render t =
  Simkit.Table.render ~header:[ "alert"; "subject"; "metric"; "condition"; "since"; "value" ]
    (List.map
       (fun a ->
         let name, subject, metric, condition = source_to_strings a.source in
         [ name; subject; metric; condition;
           Simkit.Calendar.to_string a.fired_at;
           (match a.value with Some v -> Simkit.Table.fmt_float v | None -> "-") ])
       (firing t))
