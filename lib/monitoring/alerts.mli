(** Time-series alerting rules.

    The paper's related work notes the move "to more complex checks
    (functionality-based) and alerting based on time-series, e.g. with
    Prometheus".  This module provides that style of rule on top of the
    collector: threshold rules over an aggregation window and
    absence-of-data rules, evaluated on demand, with firing/resolved
    state tracking.

    Besides metric rules, the health loop feeds two event-style sources:
    quarantine notifications (one firing alert per sidelined host, see
    {!notify_quarantine}) and per-site healthy-fraction floors (see
    {!set_healthy_floor}/{!observe_site_health}) that page when a
    correlated failure takes out too much of a site. *)

type aggregation = Mean | Max | Min

type condition =
  | Above of float  (** aggregated value strictly above *)
  | Below of float
  | Absent  (** no samples at all in the window *)

type rule = {
  rule_name : string;
  host : string;
  metric : Collector.metric;
  window : float;  (** seconds of history to aggregate *)
  aggregation : aggregation;
  condition : condition;
}

(** What raised the alert: a metric rule, a site whose healthy fraction
    sank below its floor, a quarantined host, a flapping bug (the
    triage loop's fixed<->reopened escalation), or a status-page
    service that left fresh serving mode. *)
type source =
  | Metric of rule
  | Healthy_floor of string  (** site *)
  | Quarantine of string  (** host *)
  | Flapping of int  (** bug id *)
  | Serving_degraded of string  (** service *)

type alert = {
  source : source;
  fired_at : float;
  value : float option;
      (** aggregated value / healthy fraction; [None] for {!Absent} and
          quarantine events. *)
  reason : string;  (** human-readable description *)
  mutable resolved_at : float option;
}

type t

val create : Collector.t -> t
val add_rule : t -> rule -> unit
val rules : t -> rule list

val evaluate : t -> now:float -> alert list
(** Evaluate every rule over [\[now - window, now\]].  A rule whose
    condition holds and which is not already firing produces a new
    {!alert}; a firing rule whose condition no longer holds is resolved.
    Returns the alerts that {e started firing} in this evaluation. *)

val firing : t -> alert list
(** Currently-firing alerts. *)

val history : t -> alert list
(** Every alert ever fired, oldest first. *)

val set_healthy_floor : t -> site:string -> floor:float -> unit
(** Arm a {!Healthy_floor} source: alert whenever the site's healthy
    fraction (in [\[0, 1\]]) is observed below [floor].  Replaces any
    previous floor for the site. *)

val observe_site_health :
  t -> now:float -> site:string -> healthy_fraction:float -> alert option
(** Feed one healthy-fraction observation.  Fires (once) when the value
    is below the site's armed floor, resolves the firing alert when it
    recovers, and is a no-op for sites without a floor. *)

val notify_quarantine : t -> now:float -> host:string -> reason:string -> alert
(** A node entered quarantine: fire (or return the already-firing)
    {!Quarantine} alert for the host. *)

val resolve_quarantine : t -> now:float -> host:string -> unit
(** The host rejoined service: resolve its firing alert, if any. *)

val notify_flapping : t -> now:float -> bug:int -> reason:string -> alert
(** The triage loop flagged a bug cycling between fixed and reopened:
    fire (or return the already-firing) {!Flapping} alert for it. *)

val resolve_flapping : t -> now:float -> bug:int -> unit
(** The flapping bug was fixed again: resolve its firing alert, if any. *)

val notify_serving_degraded :
  t -> now:float -> service:string -> reason:string -> alert
(** The status-page service dropped out of fresh serving (stale reads,
    static fallback or crash rebuild): fire (or return the
    already-firing) {!Serving_degraded} alert for it. *)

val resolve_serving_degraded : t -> now:float -> service:string -> unit
(** The service is serving fresh pages again (after hysteresis):
    resolve its firing alert, if any. *)

val render : t -> string
