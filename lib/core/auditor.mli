(** Wires {!Simkit.Audit} to a full environment: the runtime counterpart
    of {!Lint}'s static checks.

    Registered invariants:
    - ["oar-free-vs-inventory"]: every host OAR offers as free must be
      Alive and in service in the ground-truth instance, the free count
      must not exceed the usable-node count, and the job/node assignment
      tables must agree;
    - ["ci-executor-accounting"]: busy executors within [0, executors],
      non-negative queue;
    - ["scheduler-selfcheck"] (when a scheduler is passed): see
      {!Scheduler.audit_check}.

    Race probes (see {!Simkit.Audit.watch}) digest the CI server's
    build/queue counters so time-tied events from distinct sources that
    both move them are flagged as event-ordering races.

    The caller still decides when to {!Simkit.Audit.start} — campaigns
    do it just before the engine runs, keeping audit-off runs
    byte-identical to the seed behaviour. *)

val attach :
  ?period:float -> ?scheduler:Scheduler.t -> Env.t -> Simkit.Audit.t
