type outcome = { result : Ci.Build.result; evidences : Bugtracker.evidence list }

let success = { result = Ci.Build.Success; evidences = [] }

let failure evidences = { result = Ci.Build.Failure; evidences }
let unstable = { result = Ci.Build.Unstable; evidences = [] }

let logf build fmt = Printf.ksprintf (Ci.Build.append_log build) fmt

let after env delay k =
  ignore (Simkit.Engine.schedule (Env.engine env) ~delay (fun _ -> k ()))

(* ---- ground-truth correlation ------------------------------------------- *)

let cluster_of_host env host =
  match Testbed.Instance.find_node env.Env.instance host with
  | Some node -> Some node.Testbed.Node.cluster_name
  | None -> None

let fault_touches env hosts fault =
  let node_of h = Testbed.Instance.find_node env.Env.instance h in
  match fault.Testbed.Faults.target with
  | Testbed.Faults.Host h -> List.mem h hosts
  | Testbed.Faults.Host_pair (a, b) -> List.mem a hosts || List.mem b hosts
  | Testbed.Faults.Cluster c ->
    List.exists (fun h -> cluster_of_host env h = Some c) hosts
  | Testbed.Faults.Rack (c, r) ->
    List.exists
      (fun h ->
        match node_of h with
        | Some n ->
          String.equal n.Testbed.Node.cluster_name c
          && Testbed.Faults.rack_of_index n.Testbed.Node.index = r
        | None -> false)
      hosts
  | Testbed.Faults.Site s ->
    List.exists
      (fun h ->
        match node_of h with
        | Some n -> String.equal n.Testbed.Node.site_name s
        | None -> false)
      hosts
  | Testbed.Faults.Site_service _ | Testbed.Faults.Global _ -> false

(* Mass-outage kinds knock nodes over just like random reboots do, so any
   correlate call looking for dead/lost nodes must consider them too. *)
let correlated_kinds =
  [ Testbed.Faults.Site_outage; Testbed.Faults.Pdu_failure;
    Testbed.Faults.Network_partition ]

(* Mark matching active faults as detected and return their ids: the
   bug's link back to ground truth, used for repair and for the
   detection-rate experiment. *)
let correlate env ~hosts ~kinds =
  let faults = Env.faults env in
  let now = Env.now env in
  Testbed.Faults.active faults
  |> List.filter (fun f ->
         List.mem f.Testbed.Faults.kind kinds && fault_touches env hosts f)
  |> List.map (fun f ->
         Testbed.Faults.mark_detected faults ~now f;
         f.Testbed.Faults.id)

let correlate_service env ~site ~service_kinds =
  let faults = Env.faults env in
  let now = Env.now env in
  Testbed.Faults.active faults
  |> List.filter (fun f ->
         match f.Testbed.Faults.target with
         | Testbed.Faults.Site_service (s, k) ->
           String.equal s site && List.mem k service_kinds
         | _ -> false)
  |> List.map (fun f ->
         Testbed.Faults.mark_detected faults ~now f;
         f.Testbed.Faults.id)

let correlate_global env ~key ~kinds =
  let faults = Env.faults env in
  let now = Env.now env in
  Testbed.Faults.active faults
  |> List.filter (fun f ->
         List.mem f.Testbed.Faults.kind kinds
         &&
         match f.Testbed.Faults.target with
         | Testbed.Faults.Global k -> String.equal k key
         | _ -> false)
  |> List.map (fun f ->
         Testbed.Faults.mark_detected faults ~now f;
         f.Testbed.Faults.id)

let evidence ~signature ~summary ~category ~config ~fault_ids =
  {
    Bugtracker.signature;
    summary;
    category;
    source_test = config.Testdef.config_id;
    fault_ids;
  }

(* ---- resource reservation ------------------------------------------------ *)

let reserve env ~filter ~count ~walltime ~build ~unavailable k =
  let request = Oar.Request.nodes ~filter count ~walltime in
  match
    Oar.Manager.submit env.Env.oar ~user:"g5k-tests" ~jtype:Oar.Job.Deploy
      ~duration:walltime ~immediate:true request
  with
  | Error err ->
    logf build "oarsub -t deploy -l \"%s\": %s" (Oar.Request.to_string request)
      (match err with
       | Oar.Manager.No_matching_resource -> "no matching resource"
       | Oar.Manager.Not_immediately_schedulable at ->
         Printf.sprintf "not schedulable before %s (job cancelled)"
           (Simkit.Calendar.to_string at)
       | Oar.Manager.Service_unavailable -> "OAR service unavailable");
    unavailable ()
  | Ok job ->
    let nodes =
      List.filter_map (Testbed.Instance.find_node env.Env.instance)
        job.Oar.Job.assigned
    in
    logf build "reserved %d node(s): %s" (List.length nodes)
      (String.concat " " (List.map (fun n -> n.Testbed.Node.host) nodes));
    Ci.Build.touch_hosts build (List.map (fun n -> n.Testbed.Node.host) nodes);
    let release () = Oar.Manager.cancel env.Env.oar job in
    k nodes release

(* ---- description checks -------------------------------------------------- *)

let path_category path =
  let contains sub =
    let n = String.length sub and m = String.length path in
    let rec scan i = i + n <= m && (String.sub path i n = sub || scan (i + 1)) in
    n = 0 || scan 0
  in
  if contains "settings" || contains "bios" then "cpu-settings"
  else if contains "disks" then "disk"
  else if contains "memory" then "infrastructure"
  else "description"

let refapi_script env config ~build ~finish =
  let cluster = Option.get config.Testdef.cluster in
  let nodes = Testbed.Instance.nodes_of_cluster env.Env.instance cluster in
  let alive = List.filter (fun n -> n.Testbed.Node.state = Testbed.Node.Alive) nodes in
  after env (30.0 +. float_of_int (List.length alive)) (fun () ->
      let evidences = ref [] in
      List.iter
        (fun node ->
          let host = node.Testbed.Node.host in
          let report = G5kchecks.Check.run env.Env.instance node in
          if not (G5kchecks.Check.conforms report) then begin
            List.iter
              (fun m ->
                logf build "%s: %s described=%s observed=%s" host
                  m.G5kchecks.Check.path m.G5kchecks.Check.described
                  m.G5kchecks.Check.observed)
              report.G5kchecks.Check.mismatches;
            let first = List.hd report.G5kchecks.Check.mismatches in
            let fault_ids =
              correlate env ~hosts:[ host ]
                ~kinds:
                  [ Testbed.Faults.Cpu_cstates; Testbed.Faults.Cpu_hyperthreading;
                    Testbed.Faults.Cpu_turbo; Testbed.Faults.Cpu_governor;
                    Testbed.Faults.Bios_drift; Testbed.Faults.Disk_firmware;
                    Testbed.Faults.Disk_write_cache; Testbed.Faults.Ram_dimm_loss;
                    Testbed.Faults.Refapi_desync ]
            in
            evidences :=
              evidence
                ~signature:(Printf.sprintf "refapi:%s:%s" host first.G5kchecks.Check.path)
                ~summary:
                  (Printf.sprintf "%s does not conform to its description (%s)" host
                     first.G5kchecks.Check.path)
                ~category:(path_category first.G5kchecks.Check.path)
                ~config ~fault_ids
              :: !evidences
          end;
          (* Cabling verification (LLDP-discovered port vs description). *)
          if
            not
              (Testbed.Network.cabling_consistent
                 env.Env.instance.Testbed.Instance.network host)
          then begin
            logf build "%s: switch port differs from description" host;
            let fault_ids =
              correlate env ~hosts:[ host ] ~kinds:[ Testbed.Faults.Cabling_swap ]
            in
            evidences :=
              evidence
                ~signature:(Printf.sprintf "cabling:%s" host)
                ~summary:(Printf.sprintf "%s is cabled to the wrong switch port" host)
                ~category:"cabling" ~config ~fault_ids
              :: !evidences
          end)
        alive;
      if !evidences = [] then finish success else finish (failure !evidences))

let oarproperties_script env config ~build ~finish =
  let cluster = Option.get config.Testdef.cluster in
  let hosts =
    Testbed.Instance.nodes_of_cluster env.Env.instance cluster
    |> List.map (fun n -> n.Testbed.Node.host)
  in
  after env 20.0 (fun () ->
      let evidences = ref [] in
      List.iter
        (fun host ->
          match Testbed.Refapi.get env.Env.instance.Testbed.Instance.refapi host with
          | None -> ()
          | Some doc ->
            let expected = Oar.Property.expected_of_doc doc in
            let actual = Oar.Property.all_of (Oar.Manager.properties env.Env.oar) ~host in
            let diverging =
              List.filter
                (fun (k, v) ->
                  match List.assoc_opt k actual with
                  | Some v' -> not (String.equal v v')
                  | None -> true)
                expected
            in
            if diverging <> [] then begin
              List.iter
                (fun (k, v) ->
                  logf build "%s: OAR property %s should be %s (is %s)" host k v
                    (Option.value ~default:"<unset>" (List.assoc_opt k actual)))
                diverging;
              let fault_ids =
                correlate env ~hosts:[ host ]
                  ~kinds:[ Testbed.Faults.Oar_property_desync ]
              in
              evidences :=
                evidence
                  ~signature:(Printf.sprintf "oarprops:%s" host)
                  ~summary:
                    (Printf.sprintf "OAR properties of %s diverge from reference API"
                       host)
                  ~category:"description" ~config ~fault_ids
                :: !evidences
            end)
        hosts;
      if !evidences = [] then finish success else finish (failure !evidences))

let dellbios_script env config ~build ~finish =
  let cluster = Option.get config.Testdef.cluster in
  let nodes = Testbed.Instance.nodes_of_cluster env.Env.instance cluster in
  let alive = List.filter (fun n -> n.Testbed.Node.state = Testbed.Node.Alive) nodes in
  after env 45.0 (fun () ->
      let evidences = ref [] in
      List.iter
        (fun node ->
          let actual_bios =
            node.Testbed.Node.actual.Testbed.Hardware.bios.Testbed.Hardware.bios_version
          in
          let described_bios =
            node.Testbed.Node.reference.Testbed.Hardware.bios.Testbed.Hardware.bios_version
          in
          if not (String.equal actual_bios described_bios) then begin
            logf build "%s: BIOS %s (cluster baseline %s)" node.Testbed.Node.host
              actual_bios described_bios;
            let fault_ids =
              correlate env ~hosts:[ node.Testbed.Node.host ]
                ~kinds:[ Testbed.Faults.Bios_drift ]
            in
            evidences :=
              evidence
                ~signature:(Printf.sprintf "dellbios:%s" node.Testbed.Node.host)
                ~summary:
                  (Printf.sprintf "%s runs BIOS %s instead of %s"
                     node.Testbed.Node.host actual_bios described_bios)
                ~category:"cpu-settings" ~config ~fault_ids
              :: !evidences
          end)
        alive;
      if !evidences = [] then finish success else finish (failure !evidences))

(* ---- status & tooling ----------------------------------------------------- *)

let oarstate_script env config ~build ~finish =
  let site = Option.get config.Testdef.site in
  after env 30.0 (fun () ->
      let services = env.Env.instance.Testbed.Instance.services in
      let oar_up = Testbed.Services.use services ~site Testbed.Services.Oar in
      let consistent = Oar.Manager.assigned_busy_consistent env.Env.oar in
      let site_nodes = Testbed.Instance.nodes_of_site env.Env.instance site in
      let down =
        List.length
          (List.filter (fun n -> n.Testbed.Node.state = Testbed.Node.Down) site_nodes)
      in
      let down_ratio = float_of_int down /. float_of_int (Stdlib.max 1 (List.length site_nodes)) in
      let evidences = ref [] in
      if not oar_up then begin
        logf build "oarstat on %s failed: service unreachable" site;
        let fault_ids =
          correlate_service env ~site ~service_kinds:[ Testbed.Services.Oar ]
        in
        evidences :=
          evidence
            ~signature:(Printf.sprintf "oarstate:%s:service" site)
            ~summary:(Printf.sprintf "OAR unreachable on %s" site)
            ~category:"services" ~config ~fault_ids
          :: !evidences
      end;
      if not consistent then begin
        logf build "OAR database inconsistent with node states on %s" site;
        evidences :=
          evidence
            ~signature:(Printf.sprintf "oarstate:%s:consistency" site)
            ~summary:"OAR job/resource state inconsistency"
            ~category:"services" ~config ~fault_ids:[]
          :: !evidences
      end;
      if down_ratio > 0.30 then begin
        logf build "%d/%d nodes down on %s" down (List.length site_nodes) site;
        let down_hosts =
          List.filter_map
            (fun n ->
              if n.Testbed.Node.state = Testbed.Node.Down then
                Some n.Testbed.Node.host
              else None)
            site_nodes
        in
        let fault_ids =
          correlate env ~hosts:down_hosts
            ~kinds:(Testbed.Faults.Random_reboots :: correlated_kinds)
        in
        evidences :=
          evidence
            ~signature:(Printf.sprintf "oarstate:%s:down" site)
            ~summary:(Printf.sprintf "abnormal number of dead nodes on %s" site)
            ~category:"infrastructure" ~config ~fault_ids
          :: !evidences
      end;
      if !evidences = [] then finish success else finish (failure !evidences))

let cmdline_script env config ~build ~finish =
  let site = Option.get config.Testdef.site in
  after env 60.0 (fun () ->
      let services = env.Env.instance.Testbed.Instance.services in
      let steps =
        [ ("ssh frontend", Testbed.Services.Frontend);
          ("oarstat", Testbed.Services.Oar);
          ("oarsub -l nodes=1 (dry run)", Testbed.Services.Oar);
          ("kadeploy3 -v", Testbed.Services.Kadeploy) ]
      in
      let failed =
        List.filter
          (fun (cmd, service) ->
            let ok = Testbed.Services.use services ~site service in
            logf build "%s: %s" cmd (if ok then "ok" else "FAILED");
            not ok)
          steps
      in
      if failed = [] then finish success
      else begin
        let service_kinds = List.sort_uniq compare (List.map snd failed) in
        let fault_ids = correlate_service env ~site ~service_kinds in
        finish
          (failure
             [ evidence
                 ~signature:(Printf.sprintf "cmdline:%s:%s" site (fst (List.hd failed)))
                 ~summary:
                   (Printf.sprintf "command-line tools broken on %s (%s)" site
                      (fst (List.hd failed)))
                 ~category:"services" ~config ~fault_ids ])
      end)

let sidapi_script env config ~build ~finish =
  let site = Option.get config.Testdef.site in
  after env 45.0 (fun () ->
      let services = env.Env.instance.Testbed.Instance.services in
      let api_ok = Testbed.Services.use services ~site Testbed.Services.Api in
      let doc_ok =
        match Testbed.Instance.nodes_of_site env.Env.instance site with
        | [] -> false
        | node :: _ -> (
          match
            Testbed.Refapi.get env.Env.instance.Testbed.Instance.refapi
              node.Testbed.Node.host
          with
          | None -> false
          | Some doc -> (
            (* Round-trip through the wire format. *)
            match Simkit.Json.of_string (Simkit.Json.to_string doc) with
            | Ok parsed -> Simkit.Json.equal parsed doc
            | Error _ -> false))
      in
      let monitoring_ok =
        match Monitoring.Collector.rest_get env.Env.collector "/sites" with
        | Ok _ -> true
        | Error _ -> false
      in
      if api_ok && doc_ok && monitoring_ok then finish success
      else begin
        logf build "api=%b refapi-doc=%b monitoring=%b" api_ok doc_ok monitoring_ok;
        let fault_ids =
          correlate_service env ~site ~service_kinds:[ Testbed.Services.Api ]
        in
        finish
          (failure
             [ evidence
                 ~signature:(Printf.sprintf "sidapi:%s" site)
                 ~summary:(Printf.sprintf "site API misbehaving on %s" site)
                 ~category:"services" ~config ~fault_ids ])
      end)

(* ---- image / deployment tests --------------------------------------------- *)

let deploy_evidences env config image outcomes =
  List.filter_map
    (fun (host, outcome) ->
      match outcome with
      | Kadeploy.Deploy.Deployed -> None
      | Kadeploy.Deploy.Failed reason ->
        let is_postinstall =
          String.length reason >= 11 && String.sub reason 0 11 = "postinstall"
        in
        if is_postinstall then begin
          let key = Printf.sprintf "env_corrupt:%d" image.Kadeploy.Image.index in
          let fault_ids =
            correlate_global env ~key ~kinds:[ Testbed.Faults.Env_image_corrupt ]
          in
          Some
            (evidence
               ~signature:(Printf.sprintf "env:%s:postinstall" image.Kadeploy.Image.name)
               ~summary:
                 (Printf.sprintf "environment %s fails postinstall everywhere"
                    image.Kadeploy.Image.name)
               ~category:"software" ~config ~fault_ids)
        end
        else begin
          let fault_ids =
            correlate env ~hosts:[ host ]
              ~kinds:
                (Testbed.Faults.Random_reboots :: Testbed.Faults.Kernel_boot_race
                 :: correlated_kinds)
          in
          Some
            (evidence
               ~signature:(Printf.sprintf "deploy:%s" host)
               ~summary:(Printf.sprintf "deployment failed on %s: %s" host reason)
               ~category:"infrastructure" ~config ~fault_ids)
        end)
    outcomes

let environments_script env config ~build ~finish =
  let image_name = Option.get config.Testdef.image in
  match Kadeploy.Image.find image_name with
  | None -> finish (failure [])
  | Some image ->
    reserve env ~filter:(Testdef.oar_filter config) ~count:(`N 1) ~walltime:2400.0
      ~build ~unavailable:(fun () -> finish unstable)
      (fun nodes release ->
        Kadeploy.Deploy.run env.Env.instance ~registry:env.Env.registry
          ~image:image_name ~nodes ~on_done:(fun result ->
            logf build "deployment of %s: %d/%d ok in %.0f s" image_name
              (Kadeploy.Deploy.success_count result)
              (List.length nodes)
              (result.Kadeploy.Deploy.finished_at -. result.Kadeploy.Deploy.started_at);
            let evidences =
              deploy_evidences env config image result.Kadeploy.Deploy.outcomes
            in
            release ();
            if evidences = [] then finish success else finish (failure evidences)))

let stdenv_script env config ~build ~finish =
  reserve env ~filter:(Testdef.oar_filter config) ~count:(`N 1) ~walltime:1800.0 ~build
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      match nodes with
      | [] ->
        release ();
        finish unstable
      | node :: _ ->
        let started = Env.now env in
        Testbed.Instance.reboot env.Env.instance node ~on_done:(fun ~ok ->
            let boot_time = Env.now env -. started in
            logf build "%s rebooted into std env in %.0f s (ok=%b)"
              node.Testbed.Node.host boot_time ok;
            release ();
            if not ok then begin
              let fault_ids =
                correlate env ~hosts:[ node.Testbed.Node.host ]
                  ~kinds:(Testbed.Faults.Random_reboots :: correlated_kinds)
              in
              finish
                (failure
                   [ evidence
                       ~signature:(Printf.sprintf "stdenv:%s:dead" node.Testbed.Node.host)
                       ~summary:
                         (Printf.sprintf "%s did not come back from reboot"
                            node.Testbed.Node.host)
                       ~category:"infrastructure" ~config ~fault_ids ])
            end
            else if boot_time > 420.0 then begin
              let fault_ids =
                correlate env ~hosts:[ node.Testbed.Node.host ]
                  ~kinds:[ Testbed.Faults.Kernel_boot_race ]
              in
              finish
                (failure
                   [ evidence
                       ~signature:
                         (Printf.sprintf "stdenv:%s:slowboot"
                            node.Testbed.Node.cluster_name)
                       ~summary:
                         (Printf.sprintf "abnormal boot delays on %s (%.0f s)"
                            node.Testbed.Node.cluster_name boot_time)
                       ~category:"software" ~config ~fault_ids ])
            end
            else finish success))

let paralleldeploy_script env config ~build ~finish =
  let site = Option.get config.Testdef.site in
  let clusters = Testbed.Inventory.clusters_of_site site in
  (* One node on every cluster of the site, deployed simultaneously. *)
  let rec gather acc release_all = function
    | [] -> Ok (List.rev acc, release_all)
    | spec :: rest -> (
      let filter = Printf.sprintf "cluster='%s'" spec.Testbed.Inventory.cluster in
      let request = Oar.Request.nodes ~filter (`N 1) ~walltime:2400.0 in
      match
        Oar.Manager.submit env.Env.oar ~user:"g5k-tests" ~jtype:Oar.Job.Deploy
          ~duration:2400.0 ~immediate:true request
      with
      | Error _ -> Error release_all
      | Ok job ->
        let nodes =
          List.filter_map (Testbed.Instance.find_node env.Env.instance)
            job.Oar.Job.assigned
        in
        Ci.Build.touch_hosts build (List.map (fun n -> n.Testbed.Node.host) nodes);
        let release () = Oar.Manager.cancel env.Env.oar job in
        gather (nodes @ acc) (fun () -> release (); release_all ()) rest)
  in
  match gather [] (fun () -> ()) clusters with
  | Error release_partial ->
    release_partial ();
    logf build "could not reserve one node on every cluster of %s" site;
    finish unstable
  | Ok (nodes, release_all) ->
    Kadeploy.Deploy.run env.Env.instance ~registry:env.Env.registry
      ~image:Kadeploy.Image.std_env.Kadeploy.Image.name ~nodes
      ~on_done:(fun result ->
        logf build "parallel deployment on %s: %d/%d ok" site
          (Kadeploy.Deploy.success_count result)
          (List.length nodes);
        let evidences =
          deploy_evidences env config Kadeploy.Image.std_env
            result.Kadeploy.Deploy.outcomes
        in
        release_all ();
        if evidences = [] then finish success else finish (failure evidences))

let whole_cluster_reserve env config ~build ~walltime ~unavailable k =
  reserve env ~filter:(Testdef.oar_filter config) ~count:`All ~walltime ~build
    ~unavailable k

let multideploy_script env config ~build ~finish =
  whole_cluster_reserve env config ~build ~walltime:5400.0
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      let rec round i evidences =
        if i >= 2 then begin
          release ();
          if evidences = [] then finish success else finish (failure evidences)
        end
        else
          Kadeploy.Deploy.run env.Env.instance ~registry:env.Env.registry
            ~image:Kadeploy.Image.std_env.Kadeploy.Image.name ~nodes
            ~on_done:(fun result ->
              logf build "round %d: %d/%d deployed" (i + 1)
                (Kadeploy.Deploy.success_count result)
                (List.length nodes);
              let more =
                deploy_evidences env config Kadeploy.Image.std_env
                  result.Kadeploy.Deploy.outcomes
              in
              let survivors =
                List.filter
                  (fun n -> n.Testbed.Node.state <> Testbed.Node.Down)
                  nodes
              in
              ignore survivors;
              round (i + 1) (more @ evidences))
      in
      round 0 [])

let multireboot_script env config ~build ~finish =
  whole_cluster_reserve env config ~build ~walltime:3600.0
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      let rec round i evidences =
        if i >= 2 then begin
          release ();
          if evidences = [] then finish success else finish (failure evidences)
        end
        else begin
          let pending = ref (List.length nodes) in
          let failures = ref [] in
          let started = Env.now env in
          if !pending = 0 then begin
            release ();
            finish unstable
          end
          else
            List.iter
              (fun node ->
                Testbed.Instance.reboot env.Env.instance node ~on_done:(fun ~ok ->
                    if not ok then
                      failures := node.Testbed.Node.host :: !failures;
                    decr pending;
                    if !pending = 0 then begin
                      let elapsed = Env.now env -. started in
                      logf build "round %d: %d/%d back after %.0f s" (i + 1)
                        (List.length nodes - List.length !failures)
                        (List.length nodes) elapsed;
                      let more =
                        List.map
                          (fun host ->
                            let fault_ids =
                              correlate env ~hosts:[ host ]
                                ~kinds:
                                  (Testbed.Faults.Random_reboots
                                   :: Testbed.Faults.Kernel_boot_race
                                   :: correlated_kinds)
                            in
                            evidence
                              ~signature:(Printf.sprintf "multireboot:%s" host)
                              ~summary:
                                (Printf.sprintf "%s lost during reboot storm" host)
                              ~category:"infrastructure" ~config ~fault_ids)
                          !failures
                      in
                      let slow = elapsed > 900.0 in
                      let more =
                        if slow then begin
                          let cluster = Option.get config.Testdef.cluster in
                          let fault_ids =
                            correlate env
                              ~hosts:(List.map (fun n -> n.Testbed.Node.host) nodes)
                              ~kinds:[ Testbed.Faults.Kernel_boot_race ]
                          in
                          evidence
                            ~signature:(Printf.sprintf "multireboot:%s:slow" cluster)
                            ~summary:
                              (Printf.sprintf "reboot of %s abnormally slow (%.0f s)"
                                 cluster elapsed)
                            ~category:"software" ~config ~fault_ids
                          :: more
                        end
                        else more
                      in
                      round (i + 1) (more @ evidences)
                    end))
              nodes
        end
      in
      round 0 [])

(* ---- service tests --------------------------------------------------------- *)

let console_script env config ~build ~finish =
  reserve env ~filter:(Testdef.oar_filter config) ~count:(`N 1) ~walltime:1200.0 ~build
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      after env 120.0 (fun () ->
          match nodes with
          | [] ->
            release ();
            finish unstable
          | node :: _ ->
            let site = node.Testbed.Node.site_name in
            (* Real round-trip through the serial console: write a
               marker, read it back in the captured tail. *)
            let marker =
              Printf.sprintf "g5k-tests console check @%s" (Simkit.Calendar.to_string (Env.now env))
            in
            let echoed =
              Testbed.Console.roundtrip env.Env.instance.Testbed.Instance.console
                ~services:env.Env.instance.Testbed.Instance.services node ~marker
            in
            let node_ok = not node.Testbed.Node.behaviour.Testbed.Node.console_broken in
            logf build "console %s: echo=%b" node.Testbed.Node.host echoed;
            release ();
            if echoed then finish success
            else begin
              let fault_ids =
                correlate env ~hosts:[ node.Testbed.Node.host ]
                  ~kinds:[ Testbed.Faults.Console_broken ]
                @ correlate_service env ~site ~service_kinds:[ Testbed.Services.Console ]
              in
              finish
                (failure
                   [ evidence
                       ~signature:
                         (Printf.sprintf "console:%s"
                            (if node_ok then site else node.Testbed.Node.host))
                       ~summary:
                         (Printf.sprintf "serial console unusable (%s)"
                            node.Testbed.Node.host)
                       ~category:"services" ~config ~fault_ids ])
            end))

let kavlan_script env config ~build ~finish =
  let vlan_id = Option.get config.Testdef.vlan in
  match Kavlan.find_vlan vlan_id with
  | None -> finish (failure [])
  | Some vlan ->
    let site =
      match vlan.Kavlan.vlan_site with
      | Some site -> site
      | None -> List.hd Testbed.Inventory.sites
    in
    reserve env ~filter:(Printf.sprintf "site='%s'" site) ~count:(`N 2)
      ~walltime:1800.0 ~build
      ~unavailable:(fun () -> finish unstable)
      (fun nodes release ->
        match nodes with
        | ([] | [ _ ]) ->
          release ();
          finish unstable
        | (a :: b :: _ as pair) ->
          Kavlan.set_vlan env.Env.instance ~nodes:pair ~vlan
            ~on_done:(fun change ->
              match change with
              | Kavlan.Service_failed ->
                release ();
                let fault_ids =
                  correlate_service env ~site ~service_kinds:[ Testbed.Services.Kavlan ]
                in
                finish
                  (failure
                     [ evidence
                         ~signature:(Printf.sprintf "kavlan:%s:service" site)
                         ~summary:(Printf.sprintf "kavlan reconfiguration failed on %s" site)
                         ~category:"services" ~config ~fault_ids ])
              | Kavlan.Changed ->
                let together = Kavlan.reachable env.Env.instance a b in
                let isolated =
                  Kavlan.isolation_invariant env.Env.instance pair
                in
                logf build "vlan %d (%s): pair-reachable=%b isolation=%b" vlan_id
                  (Kavlan.flavour_to_string vlan.Kavlan.flavour)
                  together isolated;
                (* Put the nodes back in production before releasing. *)
                Kavlan.set_vlan env.Env.instance ~nodes:pair
                  ~vlan:Kavlan.default_vlan ~on_done:(fun _ ->
                    release ();
                    if together && isolated then finish success
                    else
                      finish
                        (failure
                           [ evidence
                               ~signature:(Printf.sprintf "kavlan:%d:connectivity" vlan_id)
                               ~summary:
                                 (Printf.sprintf "vlan %d connectivity broken" vlan_id)
                               ~category:"services" ~config ~fault_ids:[] ]))))

let kwapi_script env config ~build ~finish =
  let site = Option.get config.Testdef.site in
  reserve env ~filter:(Printf.sprintf "site='%s' and wattmeter='YES'" site)
    ~count:(`N 1) ~walltime:1200.0 ~build
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      after env 90.0 (fun () ->
          match nodes with
          | [] ->
            release ();
            finish unstable
          | node :: _ ->
            let host = node.Testbed.Node.host in
            let hi = Env.now env in
            let lo = hi -. 60.0 in
            let series =
              Monitoring.Collector.sample_window env.Env.collector ~host
                Monitoring.Collector.Power_w ~lo ~hi
            in
            let freq = Monitoring.Collector.achieved_frequency_hz series ~lo ~hi in
            let mean = Simkit.Timeseries.mean_between series ~lo ~hi in
            let reference = node.Testbed.Node.reference in
            let idle_ref = Monitoring.Power.idle_of_hardware reference in
            let peak_ref = Monitoring.Power.peak_of_hardware reference in
            let envelope_lo = 0.92 *. idle_ref and envelope_hi = 1.08 *. peak_ref in
            logf build "%s: %.2f Hz, mean %.1f W (expected %.1f-%.1f W)" host freq
              mean envelope_lo envelope_hi;
            release ();
            let service_ok =
              Testbed.Services.use env.Env.instance.Testbed.Instance.services ~site
                Testbed.Services.Kwapi
            in
            if
              service_ok && freq >= 0.9 && (not (Float.is_nan mean))
              && mean >= envelope_lo && mean <= envelope_hi
            then finish success
            else begin
              let fault_ids =
                correlate env ~hosts:[ host ]
                  ~kinds:
                    [ Testbed.Faults.Kwapi_misattribution; Testbed.Faults.Cpu_cstates;
                      Testbed.Faults.Cpu_turbo ]
                @ correlate_service env ~site ~service_kinds:[ Testbed.Services.Kwapi ]
              in
              finish
                (failure
                   [ evidence
                       ~signature:(Printf.sprintf "kwapi:%s" host)
                       ~summary:
                         (Printf.sprintf
                            "power measurements of %s implausible (%.1f W)" host mean)
                       ~category:"cabling" ~config ~fault_ids ])
            end))

(* ---- hardware tests --------------------------------------------------------- *)

let mpigraph_script env config ~build ~finish =
  whole_cluster_reserve env config ~build ~walltime:3600.0
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      after env (300.0 +. float_of_int (List.length nodes)) (fun () ->
          let cluster = Option.get config.Testdef.cluster in
          let cannot_start =
            List.filter (fun n -> not (Testbed.Node.ib_start_ok n)) nodes
          in
          logf build "mpigraph on %s: %d/%d nodes started IB apps" cluster
            (List.length nodes - List.length cannot_start)
            (List.length nodes);
          release ();
          if cannot_start = [] then finish success
          else begin
            let hosts = List.map (fun n -> n.Testbed.Node.host) cannot_start in
            let fault_ids =
              correlate env ~hosts ~kinds:[ Testbed.Faults.Ofed_flaky ]
            in
            finish
              (failure
                 [ evidence
                     ~signature:(Printf.sprintf "ofed:%s" cluster)
                     ~summary:
                       (Printf.sprintf
                          "OFED stack randomly fails to start applications on %s"
                          cluster)
                     ~category:"software" ~config ~fault_ids ])
          end))

let disk_script env config ~build ~finish =
  whole_cluster_reserve env config ~build ~walltime:3600.0
    ~unavailable:(fun () -> finish unstable)
    (fun nodes release ->
      after env (240.0 +. (2.0 *. float_of_int (List.length nodes))) (fun () ->
          let cluster = Option.get config.Testdef.cluster in
          let evidences = ref [] in
          let measurements =
            List.filter_map
              (fun node ->
                match node.Testbed.Node.actual.Testbed.Hardware.disks with
                | [] -> None
                | described :: _ ->
                  ignore described;
                  Some (node, Testbed.Node.disk_benchmark node))
              nodes
          in
          (* Raw measurements travel with the build, so operators can
             re-analyse without re-reserving the cluster. *)
          Ci.Build.attach_artifact build ~name:"disk_bandwidth.csv"
            ("host,measured_mb_s\n"
            ^ String.concat "\n"
                (List.map
                   (fun (node, measured) ->
                     Printf.sprintf "%s,%.1f" node.Testbed.Node.host measured)
                   measurements));
          List.iter
            (fun (node, measured) ->
              let described_disk =
                List.hd node.Testbed.Node.reference.Testbed.Hardware.disks
              in
              let expected = Testbed.Hardware.disk_bandwidth described_disk in
              let ratio = measured /. expected in
              if ratio < 0.80 then begin
                logf build "%s: %.0f MB/s (expected %.0f)" node.Testbed.Node.host
                  measured expected;
                let fault_ids =
                  correlate env ~hosts:[ node.Testbed.Node.host ]
                    ~kinds:
                      [ Testbed.Faults.Disk_firmware; Testbed.Faults.Disk_write_cache ]
                in
                evidences :=
                  evidence
                    ~signature:(Printf.sprintf "disk:%s" node.Testbed.Node.host)
                    ~summary:
                      (Printf.sprintf "%s disk at %.0f%% of expected bandwidth"
                         node.Testbed.Node.host (100.0 *. ratio))
                    ~category:"disk" ~config ~fault_ids
                  :: !evidences
              end)
            measurements;
          (* Homogeneity across the cluster. *)
          (match measurements with
           | [] | [ _ ] -> ()
           | _ ->
             let values = List.map snd measurements in
             let vmin = List.fold_left Float.min infinity values in
             let vmax = List.fold_left Float.max neg_infinity values in
             if vmax /. vmin > 1.30 then begin
               logf build "%s: disk bandwidth spread %.0f-%.0f MB/s" cluster vmin vmax;
               let hosts = List.map (fun (n, _) -> n.Testbed.Node.host) measurements in
               let fault_ids =
                 correlate env ~hosts
                   ~kinds:
                     [ Testbed.Faults.Disk_firmware; Testbed.Faults.Disk_write_cache ]
               in
               evidences :=
                 evidence
                   ~signature:(Printf.sprintf "disk:%s:heterogeneous" cluster)
                   ~summary:
                     (Printf.sprintf "heterogeneous disk performance across %s" cluster)
                   ~category:"disk" ~config ~fault_ids
                 :: !evidences
             end);
          release ();
          if !evidences = [] then finish success else finish (failure !evidences)))

(* ---- dispatch ---------------------------------------------------------------- *)

let run env config ~build ~finish =
  match config.Testdef.family with
  | Testdef.Refapi -> refapi_script env config ~build ~finish
  | Testdef.Oarproperties -> oarproperties_script env config ~build ~finish
  | Testdef.Dellbios -> dellbios_script env config ~build ~finish
  | Testdef.Oarstate -> oarstate_script env config ~build ~finish
  | Testdef.Cmdline -> cmdline_script env config ~build ~finish
  | Testdef.Sidapi -> sidapi_script env config ~build ~finish
  | Testdef.Environments -> environments_script env config ~build ~finish
  | Testdef.Stdenv -> stdenv_script env config ~build ~finish
  | Testdef.Paralleldeploy -> paralleldeploy_script env config ~build ~finish
  | Testdef.Multireboot -> multireboot_script env config ~build ~finish
  | Testdef.Multideploy -> multideploy_script env config ~build ~finish
  | Testdef.Console -> console_script env config ~build ~finish
  | Testdef.Kavlan -> kavlan_script env config ~build ~finish
  | Testdef.Kwapi -> kwapi_script env config ~build ~finish
  | Testdef.Mpigraph -> mpigraph_script env config ~build ~finish
  | Testdef.Disk -> disk_script env config ~build ~finish
