(** Node health supervision: the self-healing loop.

    The paper's testbed runs for years with hardware that fails in
    correlated ways; a trustworthy testing framework must not only
    detect broken nodes but take them out of the resource pool, drive
    their repair and verify the fix before handing them back to users.
    This module implements that loop as a per-node state machine

    {v Healthy -> Suspected -> Quarantined -> Repairing -> Reverifying -> Healthy v}

    (plus the terminal [Retired] state after repeated repair failures),
    driven by evidence accumulation: every completed build blames (or
    credits) the nodes it touched, suspicion scores decay exponentially,
    and crossing the quarantine threshold sidelines the node.  A
    simulated operator repairs it after an MTTR drawn from a
    deterministic per-fault-kind distribution; re-admission requires
    passing the verification test (a reboot into the standard
    environment plus a g5k-checks conformity run — the paper's [stdenv]
    check).

    Sidelined (non-{!Testbed.Node.Healthy}) nodes are excluded from OAR
    matching at the source ({!Oar.Manager}'s usable/free predicates), so
    the scheduler's prechecks and placements never see them.  The loop
    is entirely opt-in: without {!attach}, every node stays [Healthy]
    forever and campaigns are byte-identical to the seed behaviour.

    All randomness (MTTR draws) comes from a dedicated
    {!Simkit.Prng.split} stream, so campaigns stay reproducible. *)

type config = {
  suspect_threshold : float;
      (** suspicion score at which a [Healthy] node becomes [Suspected]
          (and leaves the schedulable pool) *)
  quarantine_threshold : float;
      (** score at which the node is quarantined and the repair pipeline
          starts *)
  release_threshold : float;
      (** a [Suspected] node whose decayed score falls back below this
          returns to [Healthy] without operator action *)
  decay_half_life : float;  (** seconds for a suspicion score to halve *)
  blame_failure : float;  (** score added per failed build touching the node *)
  blame_unstable : float;  (** score added per unstable build *)
  credit_success : float;  (** score subtracted per successful build *)
  down_blame : float;
      (** score added per sweep while the node is physically [Down] *)
  sweep_period : float;  (** seconds between background sweeps *)
  triage_delay : float;
      (** seconds a quarantined node waits before an operator picks it up *)
  max_repair_attempts : int;
      (** failed repair+reverify cycles before the node is [Retired] *)
  healthy_floor : float option;
      (** when set (and an alert sink is attached), every site is armed
          with this healthy-fraction floor; a correlated outage dropping
          a site below it pages *)
  mttr_of_kind : Testbed.Faults.kind -> Simkit.Dist.t;
      (** repair-time distribution per root-cause fault kind *)
  default_mttr : Simkit.Dist.t;
      (** repair time when no active fault explains the node's state *)
}

val default_config : config
(** Quarantine after ~3 failures' worth of blame (threshold 3.0, suspect
    at 2.0, release below 0.5), one-day half-life, 30-minute sweeps,
    1-hour triage, 3 repair attempts, site healthy floor 0.5;
    MTTR: Erlang-2 (mean 8 h) for site outages, exponential 4 h for PDU
    failures, 2 h for partitions, 6 h otherwise. *)

(** One recorded state-machine transition. *)
type transition = {
  at : float;
  host : string;
  from_health : Testbed.Node.health;
  to_health : Testbed.Node.health;
  reason : string;
}

(** Aggregated loop numbers surfaced by the status page and the campaign
    report. *)
type summary = {
  suspected : int;  (** cumulative Healthy -> Suspected transitions *)
  quarantined : int;  (** cumulative quarantine entries *)
  repair_attempts : int;  (** operator repair cycles started *)
  reverify_failures : int;  (** verification runs that failed *)
  released : int;  (** nodes returned to service *)
  retired : int;  (** nodes given up on *)
  out_of_service_now : int;  (** nodes currently not [Healthy] *)
  in_quarantine_now : int;
      (** nodes currently in the quarantine pipeline
          (Quarantined/Repairing/Reverifying) *)
  by_site : (string * int) list;
      (** cumulative quarantine entries per site (sorted, sites with
          none omitted) *)
  mean_hours_to_release : float;
      (** quarantine entry -> release latency, 0 when none released *)
  alerts_fired : int;  (** quarantine + healthy-floor alerts raised *)
}

type t

val attach :
  ?config:config ->
  ?scheduler:Scheduler.t ->
  ?alerts:Monitoring.Alerts.t ->
  Env.t ->
  t
(** Subscribe to build completions (blame channel), start the background
    sweep on the environment's engine, install the scheduler's
    quarantine probe (see {!Scheduler.set_health_probe}) and arm per-site
    healthy floors on the alert sink when configured. *)

val detach : t -> unit
(** Stop the sweep loop; nodes keep their current health. *)

val decay : half_life:float -> score:float -> dt:float -> float
(** Pure exponential decay [score * 0.5^(dt / half_life)], exposed for
    the property tests. *)

val suspicion : t -> string -> float
(** Current (decayed) suspicion score of a host; 0 if never blamed. *)

val site_healthy_fraction : t -> string -> float
(** Fraction of the site's nodes currently [Healthy]. *)

val unhealthy_in_site : t -> string -> int
val unhealthy_in_cluster : t -> string -> int

val probe : t -> Testdef.config -> bool
(** Whether the configuration's resource pool currently contains
    sidelined nodes (what {!attach} installs into the scheduler). *)

val events : t -> transition list
(** Every transition ever recorded, oldest first. *)

val summary : t -> summary
val summary_to_json : summary -> Simkit.Json.t
