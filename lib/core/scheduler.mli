(** The external job scheduler — the paper's main custom development.

    Jenkins' time-based scheduling is not sufficient: testbed resources
    are heavily used, hardware-centric tests need whole clusters, and
    test jobs must not compete with user requests.  This tool polls the
    CI server and the testbed state and decides when to trigger each
    configuration, applying:

    - resource availability: trigger only when the needed nodes are free
      right now (the build's reservation is immediate-or-cancel);
    - retry with exponential backoff after an Unstable build, routed
      through {!Resilience.Retry} (optional decorrelated jitter and a
      per-configuration retry budget);
    - per-family circuit breakers ({!Resilience.Breaker}): a family
      whose builds keep failing is skipped until its breaker cools down;
    - peak-hours avoidance (no node-consuming test during working hours);
    - same-site anti-affinity (at most one node-consuming test per site).

    The [Naive] policy disables all of that (pure time-based triggering),
    serving as the baseline of experiment E6. *)

type policy = {
  poll_period : float;
  backoff_initial : float;
  backoff_max : float;
  avoid_peak_hours : bool;
  one_job_per_site : bool;
  precheck_resources : bool;
  use_backoff : bool;
  retry_budget : int;
      (** retries granted per configuration between successes
          ([max_int] = unlimited, the historical behaviour) *)
  backoff_jitter : float;
      (** 0.0 = deterministic exponential doubling (historical
          behaviour); in ]0, 1] scales decorrelated jitter *)
  breaker : Resilience.Breaker.config option;
      (** [None] (default) disables circuit breaking *)
}

val smart_policy : policy
val naive_policy : policy

type stats = {
  polls : int;
  triggered : int;
  completed_success : int;
  completed_failure : int;
  completed_unstable : int;
  skipped_peak : int;
  skipped_site_busy : int;
  skipped_no_resources : int;
  skipped_quarantined : int;
      (** precheck misses attributable to quarantined nodes (the health
          supervisor's probe said the configuration's pool is currently
          short because of sidelined nodes); always 0 without a health
          supervisor *)
  skipped_breaker_open : int;
      (** due configurations skipped because their family's breaker was
          open *)
  retries_exhausted : int;
      (** times a configuration ran out of retry budget (it then falls
          back to its base period and the budget is replenished) *)
  retries_spent : int;  (** total backoff delays handed out *)
  breaker_trips : int;  (** total Closed/Half_open -> Open transitions *)
}

type t

val create : ?policy:policy -> ?indexed:bool -> Env.t -> t
(** Subscribes to build completions; families start disabled.

    [indexed] (default [true]) selects the poll-loop implementation.
    The indexed scheduler keeps a due-queue (a {!Simkit.Heap} keyed by
    each configuration's [next_due], ties resolved in config-id order)
    and per-site in-flight counters, so a poll costs O(due) instead of
    re-sorting and re-scanning all 751 configurations.  [~indexed:false]
    is the linear-scan reference implementation with identical
    semantics, kept for the equivalence property tests and as the E12
    bench baseline. *)

val enable_family : t -> Testdef.family -> unit
(** Adds the family's configurations to the rotation, with staggered
    initial due times. *)

val enabled_families : t -> Testdef.family list

val start : t -> unit
(** Begin the poll loop on the environment's engine. *)

val stop : t -> unit
val stats : t -> stats
val policy : t -> policy

val poll : t -> unit
(** One poll pass at the current simulated time.  {!start} drives this
    from the engine; exposed for the E12 bench and for tests. *)

val due_count : t -> float -> int
(** Configurations due at the given time (for introspection/tests). *)

val busy_sites : t -> string list
(** Sites with a node-consuming test currently in flight (sorted).  A
    site-less two-node configuration counts against
    {!Testdef.effective_site} — the same site its resource precheck
    draws nodes from — closing the anti-affinity hole the old scheduler
    had for the global kavlan VLAN. *)

val set_health_probe : t -> (Testdef.config -> bool) -> unit
(** Install the health supervisor's probe: given a configuration, does
    its resource pool currently contain quarantined/sidelined nodes?
    Only used to split precheck misses between [skipped_no_resources]
    and [skipped_quarantined] — scheduling decisions are unchanged (the
    OAR-level exclusion already keeps sidelined nodes out of prechecks
    and placement). *)

val audit_check : t -> (unit, string) result
(** Recompute every derived structure the scheduler maintains
    incrementally and compare against ground truth: site in-flight
    counters vs a recount over the entries, in-flight flags vs the CI
    server's actual build states, and (indexed scheduler only) the
    due-queue's live contents vs a linear rescan of [next_due].
    Registered by {!Auditor.attach}; [Error] describes every mismatch. *)

val breaker_state : t -> Testdef.family -> Resilience.Breaker.state option
(** Current breaker state for a family, [None] if no breaker exists
    (breakers are created lazily on the family's first completion). *)
