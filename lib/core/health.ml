type config = {
  suspect_threshold : float;
  quarantine_threshold : float;
  release_threshold : float;
  decay_half_life : float;
  blame_failure : float;
  blame_unstable : float;
  credit_success : float;
  down_blame : float;
  sweep_period : float;
  triage_delay : float;
  max_repair_attempts : int;
  healthy_floor : float option;
  mttr_of_kind : Testbed.Faults.kind -> Simkit.Dist.t;
  default_mttr : Simkit.Dist.t;
}

let hour = 3600.0

let default_mttr_of_kind = function
  | Testbed.Faults.Site_outage -> Simkit.Dist.Erlang (2, 4.0 *. hour)
  | Testbed.Faults.Pdu_failure -> Simkit.Dist.Exponential (4.0 *. hour)
  | Testbed.Faults.Network_partition -> Simkit.Dist.Exponential (2.0 *. hour)
  | _ -> Simkit.Dist.Exponential (6.0 *. hour)

let default_config =
  {
    suspect_threshold = 2.0;
    quarantine_threshold = 3.0;
    release_threshold = 0.5;
    decay_half_life = Simkit.Calendar.day;
    blame_failure = 1.0;
    blame_unstable = 0.3;
    credit_success = 0.5;
    down_blame = 1.0;
    sweep_period = 1800.0;
    triage_delay = 1.0 *. hour;
    max_repair_attempts = 3;
    healthy_floor = Some 0.5;
    mttr_of_kind = default_mttr_of_kind;
    default_mttr = Simkit.Dist.Exponential (6.0 *. hour);
  }

type transition = {
  at : float;
  host : string;
  from_health : Testbed.Node.health;
  to_health : Testbed.Node.health;
  reason : string;
}

type summary = {
  suspected : int;
  quarantined : int;
  repair_attempts : int;
  reverify_failures : int;
  released : int;
  retired : int;
  out_of_service_now : int;
  in_quarantine_now : int;
  by_site : (string * int) list;
  mean_hours_to_release : float;
  alerts_fired : int;
}

type score = { mutable value : float; mutable last : float }

type t = {
  env : Env.t;
  cfg : config;
  alerts : Monitoring.Alerts.t option;
  rng : Simkit.Prng.t;
  scores : (string, score) Hashtbl.t;
  unhealthy_site : (string, int) Hashtbl.t;
  unhealthy_cluster : (string, int) Hashtbl.t;
  site_quarantines : (string, int) Hashtbl.t;  (* cumulative entries *)
  quarantine_since : (string, float) Hashtbl.t;
  attempts : (string, int) Hashtbl.t;  (* repair cycles this quarantine *)
  mutable events : transition list;  (* newest first *)
  mutable suspected : int;
  mutable quarantined : int;
  mutable repair_attempts : int;
  mutable reverify_failures : int;
  mutable released : int;
  mutable retired : int;
  mutable release_seconds : float;
  mutable alerts_fired : int;
  mutable running : bool;
}

(* ---- pure pieces -------------------------------------------------------- *)

let decay ~half_life ~score ~dt =
  if dt <= 0.0 || score = 0.0 then score
  else score *. (0.5 ** (dt /. half_life))

(* ---- score bookkeeping -------------------------------------------------- *)

let score_of t host =
  match Hashtbl.find_opt t.scores host with
  | Some s -> s
  | None ->
    let s = { value = 0.0; last = Env.now t.env } in
    Hashtbl.replace t.scores host s;
    s

let decayed t s =
  let now = Env.now t.env in
  s.value <- decay ~half_life:t.cfg.decay_half_life ~score:s.value ~dt:(now -. s.last);
  s.last <- now;
  s.value

let suspicion t host =
  match Hashtbl.find_opt t.scores host with
  | None -> 0.0
  | Some s -> decayed t s

(* ---- per-site / per-cluster counters ------------------------------------ *)

let bump table key delta =
  let n = Option.value ~default:0 (Hashtbl.find_opt table key) in
  Hashtbl.replace table key (Stdlib.max 0 (n + delta))

let count table key = Option.value ~default:0 (Hashtbl.find_opt table key)

let unhealthy_in_site t site = count t.unhealthy_site site
let unhealthy_in_cluster t cluster = count t.unhealthy_cluster cluster

let site_node_total site =
  List.fold_left
    (fun acc spec -> acc + spec.Testbed.Inventory.nodes)
    0
    (Testbed.Inventory.clusters_of_site site)

let site_healthy_fraction t site =
  let total = site_node_total site in
  if total = 0 then 1.0
  else float_of_int (total - unhealthy_in_site t site) /. float_of_int total

let observe_site t site =
  match t.alerts with
  | None -> ()
  | Some alerts -> (
    match
      Monitoring.Alerts.observe_site_health alerts ~now:(Env.now t.env) ~site
        ~healthy_fraction:(site_healthy_fraction t site)
    with
    | Some _ -> t.alerts_fired <- t.alerts_fired + 1
    | None -> ())

(* ---- transitions --------------------------------------------------------- *)

let set_health t node to_health ~reason =
  let from_health = node.Testbed.Node.health in
  if from_health <> to_health then begin
    let site = node.Testbed.Node.site_name in
    if from_health = Testbed.Node.Healthy then begin
      bump t.unhealthy_site site 1;
      bump t.unhealthy_cluster node.Testbed.Node.cluster_name 1
    end
    else if to_health = Testbed.Node.Healthy then begin
      bump t.unhealthy_site site (-1);
      bump t.unhealthy_cluster node.Testbed.Node.cluster_name (-1)
    end;
    node.Testbed.Node.health <- to_health;
    t.events <-
      { at = Env.now t.env; host = node.Testbed.Node.host; from_health;
        to_health; reason }
      :: t.events;
    Env.tracef t.env ~category:"health" "%s: %s -> %s (%s)"
      node.Testbed.Node.host
      (Testbed.Node.health_to_string from_health)
      (Testbed.Node.health_to_string to_health)
      reason;
    observe_site t site
  end

(* ---- repair pipeline ----------------------------------------------------- *)

let after t delay k =
  ignore (Simkit.Engine.schedule (Env.engine t.env) ~delay (fun _ -> k ()))

let mttr_of t host =
  match Testbed.Faults.active_on_host (Env.faults t.env) host with
  | fault :: _ -> t.cfg.mttr_of_kind fault.Testbed.Faults.kind
  | [] -> t.cfg.default_mttr

let release t node =
  let host = node.Testbed.Node.host in
  set_health t node Testbed.Node.Healthy ~reason:"verification passed";
  (match Hashtbl.find_opt t.scores host with
   | Some s ->
     s.value <- 0.0;
     s.last <- Env.now t.env
   | None -> ());
  (match Hashtbl.find_opt t.quarantine_since host with
   | Some since ->
     t.release_seconds <- t.release_seconds +. (Env.now t.env -. since);
     Hashtbl.remove t.quarantine_since host
   | None -> ());
  Hashtbl.remove t.attempts host;
  t.released <- t.released + 1;
  (match t.alerts with
   | Some alerts ->
     Monitoring.Alerts.resolve_quarantine alerts ~now:(Env.now t.env) ~host
   | None -> ())

let retire t node ~reason =
  set_health t node Testbed.Node.Retired ~reason;
  Hashtbl.remove t.quarantine_since node.Testbed.Node.host;
  Hashtbl.remove t.attempts node.Testbed.Node.host;
  t.retired <- t.retired + 1

let rec begin_repair t node =
  if node.Testbed.Node.health = Testbed.Node.Quarantined
     || node.Testbed.Node.health = Testbed.Node.Reverifying
  then begin
    let host = node.Testbed.Node.host in
    let attempt = 1 + count t.attempts host in
    Hashtbl.replace t.attempts host attempt;
    t.repair_attempts <- t.repair_attempts + 1;
    let mttr =
      Simkit.Dist.sample_positive t.rng
        (if attempt = 1 then mttr_of t host else t.cfg.default_mttr)
    in
    set_health t node Testbed.Node.Repairing
      ~reason:(Printf.sprintf "operator repair, attempt %d" attempt);
    after t mttr (fun () -> finish_repair t node)
  end

and finish_repair t node =
  if node.Testbed.Node.health = Testbed.Node.Repairing then begin
    let host = node.Testbed.Node.host in
    let faults = Env.faults t.env in
    List.iter
      (Testbed.Faults.repair faults ~now:(Env.now t.env))
      (Testbed.Faults.active_on_host faults host);
    Testbed.Node.reset_to_reference node;
    Oar.Manager.refresh_properties t.env.Env.oar;
    set_health t node Testbed.Node.Reverifying ~reason:"repair done";
    (* Verification: reboot into the standard environment and run the
       conformity check — the paper's stdenv test, applied as a
       re-admission gate. *)
    Testbed.Instance.reboot t.env.Env.instance node ~on_done:(fun ~ok ->
        if node.Testbed.Node.health = Testbed.Node.Reverifying then begin
          let conforms =
            ok
            && G5kchecks.Check.conforms
                 (G5kchecks.Check.run t.env.Env.instance node)
          in
          if conforms then release t node
          else begin
            t.reverify_failures <- t.reverify_failures + 1;
            if count t.attempts host >= t.cfg.max_repair_attempts then
              retire t node
                ~reason:
                  (Printf.sprintf "verification failed %d times"
                     (count t.attempts host))
            else begin
              Env.tracef t.env ~category:"health"
                "%s failed verification; back to repair" host;
              begin_repair t node
            end
          end
        end)
  end

let quarantine t node ~reason =
  let host = node.Testbed.Node.host in
  set_health t node Testbed.Node.Quarantined ~reason;
  t.quarantined <- t.quarantined + 1;
  bump t.site_quarantines node.Testbed.Node.site_name 1;
  Hashtbl.replace t.quarantine_since host (Env.now t.env);
  Hashtbl.replace t.attempts host 0;
  (match t.alerts with
   | Some alerts ->
     ignore
       (Monitoring.Alerts.notify_quarantine alerts ~now:(Env.now t.env) ~host
          ~reason);
     t.alerts_fired <- t.alerts_fired + 1
   | None -> ());
  after t t.cfg.triage_delay (fun () ->
      if node.Testbed.Node.health = Testbed.Node.Quarantined then
        begin_repair t node)

(* ---- evidence accumulation ----------------------------------------------- *)

(* Only nodes still in circulation (Healthy/Suspected) accumulate
   evidence; sidelined nodes are already in the pipeline. *)
let in_circulation node =
  match node.Testbed.Node.health with
  | Testbed.Node.Healthy | Testbed.Node.Suspected -> true
  | Testbed.Node.Quarantined | Testbed.Node.Repairing
  | Testbed.Node.Reverifying | Testbed.Node.Retired -> false

let reconsider t node ~reason =
  let host = node.Testbed.Node.host in
  let value = suspicion t host in
  match node.Testbed.Node.health with
  | Testbed.Node.Healthy ->
    if value >= t.cfg.quarantine_threshold then quarantine t node ~reason
    else if value >= t.cfg.suspect_threshold then begin
      set_health t node Testbed.Node.Suspected ~reason;
      t.suspected <- t.suspected + 1
    end
  | Testbed.Node.Suspected ->
    if value >= t.cfg.quarantine_threshold then quarantine t node ~reason
    else if value <= t.cfg.release_threshold then
      set_health t node Testbed.Node.Healthy ~reason:"suspicion decayed"
  | _ -> ()

let blame t node amount ~reason =
  if in_circulation node then begin
    let s = score_of t node.Testbed.Node.host in
    ignore (decayed t s);
    s.value <- s.value +. amount;
    reconsider t node ~reason
  end

let credit t node amount =
  if in_circulation node then begin
    let s = score_of t node.Testbed.Node.host in
    ignore (decayed t s);
    s.value <- Float.max 0.0 (s.value -. amount);
    reconsider t node ~reason:"successful build"
  end

let on_build_complete t build =
  let blame_amount =
    match build.Ci.Build.result with
    | Some Ci.Build.Success -> None
    | Some Ci.Build.Unstable -> Some t.cfg.blame_unstable
    | Some (Ci.Build.Failure | Ci.Build.Aborted | Ci.Build.Not_built) | None ->
      Some t.cfg.blame_failure
  in
  List.iter
    (fun host ->
      match Testbed.Instance.find_node t.env.Env.instance host with
      | None -> ()
      | Some node -> (
        match blame_amount with
        | Some amount ->
          blame t node amount
            ~reason:
              (Printf.sprintf "build %s#%d %s" build.Ci.Build.job_name
                 build.Ci.Build.number
                 (match build.Ci.Build.result with
                  | Some r -> Ci.Build.result_to_string r
                  | None -> "lost"))
        | None -> credit t node t.cfg.credit_success))
    build.Ci.Build.touched_hosts

(* A build that dies without reserving anything (e.g. its site's OAR is
   down) has an empty touched-host list and blames nobody: service
   outages are the resilience layer's business, not the nodes'. *)

let sweep t =
  let ctx = Env.fault_ctx t.env in
  Array.iter
    (fun node ->
      if node.Testbed.Node.state = Testbed.Node.Down && in_circulation node then
        blame t node t.cfg.down_blame ~reason:"node is down"
      else if node.Testbed.Node.health = Testbed.Node.Suspected then
        (* Pure decay can release a suspect even with no new builds. *)
        reconsider t node ~reason:"sweep")
    ctx.Testbed.Faults.nodes;
  List.iter (observe_site t) Testbed.Inventory.sites

(* ---- scheduler probe ------------------------------------------------------ *)

let any_unhealthy t =
  Hashtbl.fold (fun _ n acc -> acc || n > 0) t.unhealthy_site false

let probe t config =
  match Testdef.need config.Testdef.family with
  | Testdef.No_nodes -> false
  | Testdef.Whole_cluster -> (
    match config.Testdef.cluster with
    | Some cluster -> unhealthy_in_cluster t cluster > 0
    | None -> any_unhealthy t)
  | Testdef.One_node | Testdef.Two_nodes | Testdef.Site_spread -> (
    match Testdef.effective_site config with
    | Some site -> unhealthy_in_site t site > 0
    | None -> any_unhealthy t)

(* ---- lifecycle ------------------------------------------------------------ *)

let attach ?(config = default_config) ?scheduler ?alerts env =
  let t =
    {
      env;
      cfg = config;
      alerts;
      rng = Simkit.Prng.split (Simkit.Engine.rng (Env.engine env));
      scores = Hashtbl.create 256;
      unhealthy_site = Hashtbl.create 16;
      unhealthy_cluster = Hashtbl.create 64;
      site_quarantines = Hashtbl.create 16;
      quarantine_since = Hashtbl.create 64;
      attempts = Hashtbl.create 64;
      events = [];
      suspected = 0;
      quarantined = 0;
      repair_attempts = 0;
      reverify_failures = 0;
      released = 0;
      retired = 0;
      release_seconds = 0.0;
      alerts_fired = 0;
      running = true;
    }
  in
  (match (alerts, config.healthy_floor) with
   | Some sink, Some floor ->
     List.iter
       (fun site -> Monitoring.Alerts.set_healthy_floor sink ~site ~floor)
       Testbed.Inventory.sites
   | _ -> ());
  (match scheduler with
   | Some sched -> Scheduler.set_health_probe sched (probe t)
   | None -> ());
  Ci.Server.on_build_complete env.Env.ci (fun build ->
      if t.running then on_build_complete t build);
  Simkit.Engine.every (Env.engine env) ~label:"health" ~period:config.sweep_period (fun _ ->
      if t.running then sweep t;
      t.running);
  t

let detach t = t.running <- false

let events t = List.rev t.events

let summary t =
  let ctx = Env.fault_ctx t.env in
  let out_of_service = ref 0 and in_pipeline = ref 0 in
  Array.iter
    (fun node ->
      match node.Testbed.Node.health with
      | Testbed.Node.Healthy -> ()
      | Testbed.Node.Quarantined | Testbed.Node.Repairing
      | Testbed.Node.Reverifying ->
        incr out_of_service;
        incr in_pipeline
      | Testbed.Node.Suspected | Testbed.Node.Retired -> incr out_of_service)
    ctx.Testbed.Faults.nodes;
  {
    suspected = t.suspected;
    quarantined = t.quarantined;
    repair_attempts = t.repair_attempts;
    reverify_failures = t.reverify_failures;
    released = t.released;
    retired = t.retired;
    out_of_service_now = !out_of_service;
    in_quarantine_now = !in_pipeline;
    by_site =
      Hashtbl.fold (fun site n acc -> if n > 0 then (site, n) :: acc else acc)
        t.site_quarantines []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    mean_hours_to_release =
      (if t.released = 0 then 0.0
       else t.release_seconds /. float_of_int t.released /. hour);
    alerts_fired = t.alerts_fired;
  }

let summary_to_json (s : summary) =
  let open Simkit.Json in
  Obj
    [ ("suspected", Int s.suspected);
      ("quarantined", Int s.quarantined);
      ("repair_attempts", Int s.repair_attempts);
      ("reverify_failures", Int s.reverify_failures);
      ("released", Int s.released);
      ("retired", Int s.retired);
      ("out_of_service_now", Int s.out_of_service_now);
      ("in_quarantine_now", Int s.in_quarantine_now);
      ("by_site", Obj (List.map (fun (site, n) -> (site, Int n)) s.by_site));
      ("mean_hours_to_release", Float s.mean_hours_to_release);
      ("alerts_fired", Int s.alerts_fired) ]
