(** Failure-signature triage pipeline.

    Layered between build completion and the {!Bugtracker}: every failed
    (or, optionally, unstable) build is turned into a structured
    {e evidence bundle} — exit reason, watchdog/retry lineage, touched
    hosts with their health state, failing audit invariants and the
    correlated ground-truth fault context — and its free-form signature
    is {e canonicalized} into [category x fingerprint x scope], so the
    same failure on two hosts of one cluster deduplicates into one bug
    instead of fragmenting.

    On top of the store's event feed the module runs the robustness
    loop: per-category MTTR of the operator fix cycle, regression
    (reopen) counting, detection of {e flapping} bugs (fixed<->reopened
    cycling) escalated through {!Monitoring.Alerts}, and fault drills
    against the triage path itself (evidence loss, delayed filing) whose
    dedup counts must converge regardless. *)

(** Where a canonical signature applies.  Hosts resolve to their cluster
    (the paper's failures are overwhelmingly per-cluster drift); a host
    the inventory does not know stays a host scope. *)
type scope =
  | Host of string
  | Cluster of string
  | Site of string
  | Image of string
  | Global

val scope_to_string : scope -> string
(** ["cluster/grisou"], ["site/nancy"], ["image/debian8-x64-min"],
    ["host/x.y"] or ["global"]. *)

type canonical = { category : string; fingerprint : string; scope : scope }

val canonicalize : Env.t -> Bugtracker.evidence -> canonical
(** Split the legacy ':'-separated signature; tokens naming hosts, sites,
    clusters or images become the scope (first location token wins, most
    get folded from host to cluster), the remaining tokens — in order —
    form the fingerprint. *)

val canonical_signature : canonical -> string
(** The dedup key actually filed: ["category|fingerprint|scope"]. *)

type bundle = {
  at : float;
  job : string;  (** [""] for build-less filings (regression experiments) *)
  build_number : int;
  result : Ci.Build.result;
  retry_lineage : int list;  (** Matrix-Reloaded retry chain, oldest first *)
  hosts : string list;  (** testbed hosts the build touched *)
  node_health : (string * string) list;  (** blamed host -> health state *)
  invariants : string list;
      (** audit checks failing since the build started (requires an
          attached auditor) *)
  active_faults : (int * string) list;
      (** ground-truth faults active on the touched hosts *)
  canonical : canonical;
  evidence : Bugtracker.evidence;  (** the raw evidence, legacy signature *)
}

type drill = {
  evidence_loss : float;  (** probability a bundle is lost before filing *)
  filing_delay : float;  (** seconds between observation and filing *)
}

type config = {
  limits : Bugtracker.limits;  (** bounded-store sizing, see {!Bugtracker} *)
  dedup_window : float;
      (** seconds within which a {e retried} build re-reporting the same
          canonical signature is collapsed client-side *)
  flap_cycles : int;  (** reopens within [flap_window] that make a flapper *)
  flap_window : float;
  escalate_flappers : bool;  (** page through {!Monitoring.Alerts} *)
  file_unstable : bool;
      (** also file a synthetic ["ci"]-category bug for unschedulable
          (UNSTABLE) builds *)
  keep_bundles : int;  (** recent bundles retained for reports *)
  drill : drill option;  (** fault injection into the triage path itself *)
}

val default_config : config
(** Default limits, 1 h dedup window, 3 reopens / 30 days flaps with
    escalation, unstable builds counted but not filed, no drill. *)

type summary = {
  builds_observed : int;
  bundles : int;  (** bundles assembled (after drill losses) *)
  filed : int;  (** new bugs *)
  duplicates : int;
  collapsed : int;  (** retry re-reports collapsed client-side *)
  lost : int;  (** drill: bundles lost before filing *)
  delayed : int;  (** drill: bundles filed late *)
  unstable_observed : int;
  dedup_ratio : float;  (** filings per distinct signature *)
  reopens : int;
  flapping : int;  (** distinct flapping bugs *)
  escalations : int;
  mttr_days_by_category : (string * float * int) list;
      (** category, mean days open before a fix, fixes counted *)
  store : Bugtracker.stats;
}

type t

val create :
  ?config:config ->
  ?alerts:Monitoring.Alerts.t ->
  ?auditor:Simkit.Audit.t ->
  Env.t ->
  Bugtracker.t ->
  t
(** Subscribe to the tracker's event feed.  The tracker should be
    created with [config.limits] so the store honours the memory bound.
    Only drill configurations draw engine randomness (one {!Simkit.Prng}
    split at creation). *)

val set_auditor : t -> Simkit.Audit.t -> unit
(** Late-bind the auditor (campaigns create it after the job wiring). *)

val observe :
  t -> build:Ci.Build.t -> result:Ci.Build.result -> Bugtracker.evidence list -> unit
(** Feed one completed build's outcome: failed builds have each evidence
    assembled into a bundle and filed; unstable builds are counted (and
    filed when [file_unstable]); successes only count. *)

val ingest : t -> Bugtracker.evidence -> unit
(** Build-less filing path (regression experiments): canonicalize,
    bundle and file one evidence. *)

val recent_bundles : t -> bundle list
(** Newest first, bounded by [config.keep_bundles]. *)

val flapping_count : t -> int

val summary : t -> summary
val summary_to_json : summary -> Simkit.Json.t

val render : summary -> string
(** Plain-text triage section for the status page. *)
