type cell = Ok_ | Ko | Unst | Missing

type record = { mutable latest : (float * cell) option }

type month_counter = {
  mutable completed : int;
  mutable successful : int;
  mutable failed : int;
  mutable unstable_n : int;
}

type family_counter = {
  mutable f_ok : int;
  mutable f_ko : int;
  mutable f_unstable : int;
}

type t = {
  env : Env.t;
  cells : (string * string, record) Hashtbl.t;  (* (family, scope) -> latest *)
  site_cells : (string * string * string, record) Hashtbl.t;
      (* (family, site, scope) *)
  months : (int, month_counter) Hashtbl.t;
  families : (string, family_counter) Hashtbl.t;
  (* Snapshot versioning for the serving layer: the global counter bumps
     on every recorded completion, the per-site counters only when a
     build of that site lands, so a cached per-site view invalidates in
     O(delta) — a completion elsewhere leaves it untouched.  Counters
     are monotonic for the lifetime of the value: [reset] wipes the
     aggregates but never rewinds them, so a cache keyed on a generation
     can never mistake a post-reset page for the one it stamped. *)
  mutable generation : int;
  site_generations : (string, int) Hashtbl.t;
}

let cell_to_string = function
  | Ok_ -> "OK"
  | Ko -> "KO"
  | Unst -> "??"
  | Missing -> "--"

(* Success ratios over an empty store are [nan]; rendered pages show the
   same "--" placeholder as a [Missing] cell instead of leaking a float
   artifact.  Non-empty stores never produce [nan] (counters only exist
   once a completion was recorded), so populated pages are unchanged. *)
let fmt_ratio ratio =
  if Float.is_nan ratio then cell_to_string Missing else Simkit.Table.fmt_pct ratio

let cell_of_result = function
  | Ci.Build.Success -> Ok_
  | Ci.Build.Unstable -> Unst
  | Ci.Build.Failure | Ci.Build.Aborted | Ci.Build.Not_built -> Ko

let worse a b =
  let rank = function Missing -> 0 | Ok_ -> 1 | Unst -> 2 | Ko -> 3 in
  if rank a >= rank b then a else b

let scope_of_config config =
  match config.Testdef.cluster with
  | Some cluster -> cluster
  | None -> (
    match config.Testdef.vlan with
    | Some vlan -> string_of_int vlan
    | None -> Option.value ~default:"global" config.Testdef.site)

let month_counter t month =
  match Hashtbl.find_opt t.months month with
  | Some c -> c
  | None ->
    let c = { completed = 0; successful = 0; failed = 0; unstable_n = 0 } in
    Hashtbl.replace t.months month c;
    c

let family_counter t family =
  let key = Testdef.family_to_string family in
  match Hashtbl.find_opt t.families key with
  | Some c -> c
  | None ->
    let c = { f_ok = 0; f_ko = 0; f_unstable = 0 } in
    Hashtbl.replace t.families key c;
    c

let on_completed t build =
  match (Jobs.config_of_build build, build.Ci.Build.result) with
  | Some config, Some result ->
    let family = Testdef.family_to_string config.Testdef.family in
    let scope = scope_of_config config in
    (* Timestamp with the build's own completion time (the CI server sets
       it before notifying listeners, so live operation is unchanged):
       replaying the same builds later — the serving layer's crash
       recovery — reproduces every record byte for byte. *)
    let now =
      match build.Ci.Build.finished_at with
      | Some finished -> finished
      | None -> Env.now t.env
    in
    let cell = cell_of_result result in
    let store table key =
      let record =
        match Hashtbl.find_opt table key with
        | Some r -> r
        | None ->
          let r = { latest = None } in
          Hashtbl.replace table key r;
          r
      in
      record.latest <- Some (now, cell)
    in
    store t.cells (family, scope);
    t.generation <- t.generation + 1;
    (match Testdef.effective_site config with
     | Some site ->
       Hashtbl.replace t.site_generations site
         (1 + Option.value ~default:0 (Hashtbl.find_opt t.site_generations site))
     | None -> ());
    (match config.Testdef.site with
     | Some site -> store t.site_cells (family, site, scope)
     | None -> ());
    let mc = month_counter t (Simkit.Calendar.month_index now) in
    mc.completed <- mc.completed + 1;
    (match cell with
     | Ok_ ->
       mc.successful <- mc.successful + 1;
       (family_counter t config.Testdef.family).f_ok <-
         (family_counter t config.Testdef.family).f_ok + 1
     | Ko ->
       mc.failed <- mc.failed + 1;
       (family_counter t config.Testdef.family).f_ko <-
         (family_counter t config.Testdef.family).f_ko + 1
     | Unst | Missing ->
       mc.unstable_n <- mc.unstable_n + 1;
       (family_counter t config.Testdef.family).f_unstable <-
         (family_counter t config.Testdef.family).f_unstable + 1)
  | _ -> ()

let create env =
  let t =
    {
      env;
      cells = Hashtbl.create 2048;
      site_cells = Hashtbl.create 2048;
      months = Hashtbl.create 16;
      families = Hashtbl.create 16;
      generation = 0;
      site_generations = Hashtbl.create 16;
    }
  in
  Ci.Server.on_build_complete env.Env.ci (fun build -> on_completed t build);
  t

let apply t build = on_completed t build

let reset t =
  (* Wipe the aggregates (the serving layer's crash drill) but keep the
     generation counters monotonic — see the type comment. *)
  Hashtbl.reset t.cells;
  Hashtbl.reset t.site_cells;
  Hashtbl.reset t.months;
  Hashtbl.reset t.families

let generation t = t.generation

let site_generation t ~site =
  Option.value ~default:0 (Hashtbl.find_opt t.site_generations site)

let latest t ~family ~scope =
  match Hashtbl.find_opt t.cells (Testdef.family_to_string family, scope) with
  | Some { latest = Some (_, cell) } -> cell
  | _ -> Missing

let site_status t ~family ~site =
  let family_name = Testdef.family_to_string family in
  Hashtbl.fold
    (fun (f, s, _) record acc ->
      if String.equal f family_name && String.equal s site then
        match record.latest with Some (_, cell) -> worse acc cell | None -> acc
      else acc)
    t.site_cells Missing

let per_test_matrix t =
  let header = "test" :: Testbed.Inventory.sites in
  let rows =
    List.map
      (fun family ->
        Testdef.family_to_string family
        :: List.map
             (fun site -> cell_to_string (site_status t ~family ~site))
             Testbed.Inventory.sites)
      Testdef.all_families
  in
  Simkit.Table.render ~header rows

let per_cluster_matrix t ~site =
  let clusters =
    List.map
      (fun spec -> spec.Testbed.Inventory.cluster)
      (Testbed.Inventory.clusters_of_site site)
  in
  let families =
    List.filter
      (fun family ->
        List.exists
          (fun config -> config.Testdef.site = Some site && config.Testdef.cluster <> None)
          (Testdef.expand family))
      Testdef.all_families
  in
  let header = ("test@" ^ site) :: clusters in
  let rows =
    List.map
      (fun family ->
        Testdef.family_to_string family
        :: List.map (fun cluster -> cell_to_string (latest t ~family ~scope:cluster)) clusters)
      families
  in
  Simkit.Table.render ~header rows

let summary_rows t =
  List.filter_map
    (fun family ->
      let key = Testdef.family_to_string family in
      match Hashtbl.find_opt t.families key with
      | None -> None
      | Some c ->
        let total = c.f_ok + c.f_ko + c.f_unstable in
        let ratio =
          if total = 0 then nan else float_of_int c.f_ok /. float_of_int total
        in
        Some (key, c.f_ok, c.f_ko, c.f_unstable, ratio))
    Testdef.all_families

let monthly_success t =
  Hashtbl.fold (fun month c acc -> (month, c) :: acc) t.months []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (month, c) ->
         let ratio =
           if c.completed = 0 then nan
           else float_of_int c.successful /. float_of_int c.completed
         in
         (month, c.completed, c.successful, ratio))

let overall_success_ratio t =
  let completed, successful =
    Hashtbl.fold
      (fun _ c (total, ok) -> (total + c.completed, ok + c.successful))
      t.months (0, 0)
  in
  if completed = 0 then nan else float_of_int successful /. float_of_int completed

let render_resilience (s : Resilience.summary) =
  let budget =
    if s.Resilience.retry_budget = max_int then "unlimited"
    else string_of_int s.Resilience.retry_budget
  in
  Simkit.Table.render
    ~header:[ "resilience counter"; "value" ]
    [ [ "watchdog aborts"; string_of_int s.Resilience.watchdog_aborts ];
      [ "breaker trips"; string_of_int s.Resilience.breaker_trips ];
      [ "skipped (breaker open)"; string_of_int s.Resilience.skipped_breaker_open ];
      [ "retries spent"; string_of_int s.Resilience.retries_spent ];
      [ "retry budget"; budget ];
      [ "retries exhausted"; string_of_int s.Resilience.retries_exhausted ];
      [ "CI outages weathered"; string_of_int s.Resilience.ci_outages ];
      [ "queue drops"; string_of_int s.Resilience.queue_drops ];
      [ "builds dropped"; string_of_int s.Resilience.dropped_builds ];
      [ "deferred triggers"; string_of_int s.Resilience.deferred_triggers ] ]

let render_triage (s : Triage.summary) = Triage.render s

let render_health t (s : Health.summary) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Simkit.Table.render
       ~header:[ "health counter"; "value" ]
       [ [ "suspected (cumulative)"; string_of_int s.Health.suspected ];
         [ "quarantined (cumulative)"; string_of_int s.Health.quarantined ];
         [ "repair attempts"; string_of_int s.Health.repair_attempts ];
         [ "reverify failures"; string_of_int s.Health.reverify_failures ];
         [ "released"; string_of_int s.Health.released ];
         [ "retired"; string_of_int s.Health.retired ];
         [ "out of service now"; string_of_int s.Health.out_of_service_now ];
         [ "in quarantine pipeline now"; string_of_int s.Health.in_quarantine_now ];
         [ "mean hours to release";
           Simkit.Table.fmt_float s.Health.mean_hours_to_release ];
         [ "alerts fired"; string_of_int s.Health.alerts_fired ] ]);
  (match s.Health.by_site with
   | [] -> ()
   | by_site ->
     Buffer.add_string buf "\n-- Quarantine entries per site --\n";
     Buffer.add_string buf
       (Simkit.Table.render
          ~header:[ "site"; "quarantines" ]
          (List.map (fun (site, n) -> [ site; string_of_int n ]) by_site)));
  Buffer.add_string buf "\n-- Success ratio over time (self-healing loop on) --\n";
  Buffer.add_string buf
    (Simkit.Table.render
       ~header:[ "month"; "builds"; "success" ]
       (List.map
          (fun (month, completed, _, ratio) ->
            [ string_of_int month; string_of_int completed; fmt_ratio ratio ])
          (monthly_success t)));
  Buffer.contents buf

let render_overview t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== Status: latest result per test and site ==\n";
  Buffer.add_string buf (per_test_matrix t);
  Buffer.add_string buf "\n== Per-test summary (all completed runs) ==\n";
  Buffer.add_string buf
    (Simkit.Table.render
       ~header:[ "test"; "ok"; "ko"; "unstable"; "success" ]
       (List.map
          (fun (name, ok, ko, unstable, ratio) ->
            [ name; string_of_int ok; string_of_int ko; string_of_int unstable;
              fmt_ratio ratio ])
          (summary_rows t)));
  Buffer.add_string buf "\n== Job weather (stability over the last 5 builds) ==\n";
  Buffer.add_string buf (Ci.Weather.render t.env.Env.ci);
  Buffer.add_string buf "\n== History (per 30-day month) ==\n";
  Buffer.add_string buf
    (Simkit.Table.render
       ~header:[ "month"; "builds"; "successful"; "success" ]
       (List.map
          (fun (month, completed, successful, ratio) ->
            [ string_of_int month; string_of_int completed; string_of_int successful;
              fmt_ratio ratio ])
          (monthly_success t)));
  Buffer.contents buf
