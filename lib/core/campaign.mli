(** Closed-loop campaign: faults arrive, tests run, bugs get filed,
    operators fix, reliability improves.

    This reproduces the paper's headline numbers: the number of bugs
    filed/fixed over the campaign (118 / 84 at submission time) and the
    test-success trend (85% early, 93% later, despite tests being added
    mid-campaign).  Families are enabled in stages to model "tests still
    being added". *)

type config = {
  months : int;
  seed : int64;
  executors : int;
  initial_faults : int;  (** latent problems present before testing starts *)
  fault_rate_per_day : float;  (** fresh-fault Poisson arrival rate *)
  workload : Oar.Workload.profile option;  (** user contention; [None] = idle testbed *)
  enable_testing : bool;  (** [false] = ablation baseline without the framework *)
  staged_families : (int * Testdef.family list) list;
      (** month index -> families switched on at that month *)
  enable_regression : bool;
      (** also run the user-experiment regression jobs nightly *)
  policy : Scheduler.policy;
  operator : Operator.config;
  resilience : bool;
      (** attach the {!Resilience.Infra} supervisor (watchdogs + CI
          degraded modes); off by default so historical campaigns replay
          bit-for-bit *)
  infra_faults : (float * Testbed.Faults.kind) list;
      (** scheduled faults against the testing infrastructure itself:
          (time, kind) with kind one of [Ci_outage]/[Build_hang]/
          [Queue_loss] *)
  infra_fault_duration : float;
      (** seconds before each scheduled infrastructure fault is
          repaired *)
  health : Health.config option;
      (** attach the {!Health} self-healing loop with this configuration;
          [None] (default) keeps every node permanently in service and
          campaigns byte-identical to the historical behaviour *)
  health_faults : (float * Testbed.Faults.kind * Testbed.Faults.target) list;
      (** scheduled targeted faults for health drills: (time, kind,
          target), e.g. [(t, Site_outage, Site "nancy")].  Unlike
          [infra_faults], these are {e not} auto-repaired — detecting,
          repairing and re-admitting the affected nodes is the health
          loop's job *)
  audit : bool;
      (** attach the {!Auditor} runtime invariant checker ({!Simkit.Audit})
          to the campaign; [false] (default) costs nothing and keeps
          campaigns byte-identical — the auditor draws no engine
          randomness, so even audit-on runs replay the same decisions *)
  triage : Triage.config option;
      (** route evidence through the {!Triage} failure-signature pipeline
          (bundles, canonical signatures, bounded store, flap detection);
          [None] (default) keeps the historical free-form-signature path
          and campaigns byte-identical *)
  serve : Serve.config option;
      (** attach the {!Serve} status-page serving layer (snapshot cache,
          load shedding, degraded reads, crash recovery) and drive its
          synthetic read workload during the campaign; [None] (default)
          serves nothing — and because the workload draws from its own
          seeded PRNG, serve-on campaigns replay the same decisions
          byte for byte *)
}

val default_config : config
(** 6 months, testing enabled, staged families (new tests at months 2 and
    4), default workload, smart scheduling policy. *)

type monthly = {
  month : int;
  builds : int;
  successful : int;
  success_ratio : float;
  bugs_filed_cum : int;
  bugs_fixed_cum : int;
  active_faults : int;
  enabled_configs : int;
}

type report = {
  cfg : config;
  monthly : monthly list;
  bugs_filed : int;
  bugs_fixed : int;
  bugs_by_category : (string * int * int) list;
  faults_injected : int;
  faults_detected : int;
  faults_repaired : int;
  detection_latency_days : (string * float * int) list;
      (** per fault category: mean days from injection to first detection,
          and how many detections the mean covers *)
  builds_total : int;
  workload_jobs : int;
  scheduler_stats : Scheduler.stats option;
  resilience : Resilience.summary option;
      (** present iff the campaign ran with [resilience = true] *)
  health : Health.summary option;
      (** present iff the campaign ran with a health configuration *)
  audit : Simkit.Audit.summary option;
      (** present iff the campaign ran with [audit = true] *)
  triage : Triage.summary option;
      (** present iff the campaign ran with a triage configuration *)
  serve : Serve.summary option;
      (** present iff the campaign ran with a serve configuration *)
  mean_active_faults : float;
  statuspage : string;  (** rendered overview at campaign end *)
  statuspage_html : string;  (** same views as a standalone HTML page *)
}

type sim
(** A campaign wired onto its own engine arena (environment, scheduler,
    operator loop, fault processes, monthly snapshots) but not driven
    yet.  {!run} is [prepare] + drive + [finalize]; the federation layer
    holds one [sim] per member testbed and advances them window by
    window between synchronization barriers instead of driving each to
    its horizon in one call. *)

val prepare : config -> sim
(** Build the campaign without executing any simulated time.  All
    construction-time randomness is drawn here, in a fixed order, so a
    prepared-then-driven campaign replays {!run} byte for byte. *)

val sim_engine : sim -> Simkit.Engine.t
(** The member's private engine; external drivers advance it with
    {!Simkit.Engine.run_until} / {!Simkit.Engine.step}. *)

val sim_env : sim -> Env.t
(** The member's environment (inventory, faults, OAR, CI), for
    cross-testbed coordination reads at barriers. *)

val sim_horizon : sim -> float
(** The campaign end in simulated seconds ([months] x 30 days). *)

val finalize : sim -> report
(** Assemble the report.  Call once, after the engine reached
    {!sim_horizon}. *)

val run : ?drive:(Simkit.Engine.t -> float -> unit) -> config -> report
(** Execute the whole campaign synchronously (simulated time only).
    [drive] (default {!Simkit.Engine.run_until}) receives the engine and
    the campaign horizon in seconds and must drain events up to it; the
    engine benchmark uses it to step the reference campaign manually and
    sample per-step latencies without disturbing the run. *)

val pp_report : Format.formatter -> report -> unit
