let oar_check (env : Env.t) () =
  let instance = env.instance in
  let free = Oar.Manager.free_matching_now env.oar Oar.Expr.True in
  let problems =
    List.filter_map
      (fun host ->
        match Testbed.Instance.find_node instance host with
        | None ->
          Some (Printf.sprintf "OAR offers unknown host %s" host)
        | Some node ->
          if node.Testbed.Node.state <> Testbed.Node.Alive then
            Some
              (Printf.sprintf "OAR offers %s as free but it is %s" host
                 (Testbed.Node.state_to_string node.Testbed.Node.state))
          else if not (Testbed.Node.in_service node) then
            Some
              (Printf.sprintf "OAR offers %s as free but its health is %s"
                 host
                 (Testbed.Node.health_to_string node.Testbed.Node.health))
          else None)
      free
  in
  let usable =
    Array.fold_left
      (fun acc n ->
        if n.Testbed.Node.state = Testbed.Node.Alive && Testbed.Node.in_service n
        then acc + 1
        else acc)
      0 instance.Testbed.Instance.nodes
  in
  let problems =
    if List.length free > usable then
      Printf.sprintf
        "OAR reports %d free hosts but the inventory ground truth has only \
         %d usable nodes"
        (List.length free) usable
      :: problems
    else problems
  in
  let problems =
    if not (Oar.Manager.assigned_busy_consistent env.oar) then
      "OAR job/node assignment tables are inconsistent" :: problems
    else problems
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " ps)

let ci_check (env : Env.t) () =
  let busy = Ci.Server.busy_executors env.ci in
  let total = Ci.Server.executors env.ci in
  if busy < 0 || busy > total then
    Error
      (Printf.sprintf "CI busy executor count %d outside [0, %d]" busy total)
  else if Ci.Server.queue_length env.ci < 0 then
    Error "CI queue length is negative"
  else Ok ()

let attach ?period ?scheduler (env : Env.t) =
  let audit = Simkit.Audit.create ?period (Env.engine env) in
  Simkit.Audit.register audit ~name:"oar-free-vs-inventory" (oar_check env);
  Simkit.Audit.register audit ~name:"ci-executor-accounting" (ci_check env);
  (match scheduler with
  | None -> ()
  | Some s ->
    Simkit.Audit.register audit ~name:"scheduler-selfcheck" (fun () ->
        Scheduler.audit_check s));
  (* Race probes: cheap O(1) digests of state several event sources
     mutate.  Two time-tied events from different sources moving the
     same digest is exactly the ordering hazard the audit flags. *)
  Simkit.Audit.watch audit ~name:"ci-builds-executed" (fun () ->
      Ci.Server.builds_executed env.ci);
  Simkit.Audit.watch audit ~name:"ci-queue-and-executors" (fun () ->
      (Ci.Server.queue_length env.ci * 1024) + Ci.Server.busy_executors env.ci);
  audit
