let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell_class = function
  | Statuspage.Ok_ -> "ok"
  | Statuspage.Ko -> "ko"
  | Statuspage.Unst -> "unstable"
  | Statuspage.Missing -> "missing"

let style =
  {|<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 2em; }
th, td { border: 1px solid #999; padding: 4px 10px; text-align: center; }
th { background: #eee; }
td.ok { background: #bfe8bf; }
td.ko { background: #f2b3b3; }
td.unstable { background: #f8e6a0; }
td.missing { background: #e8e8e8; color: #888; }
caption { font-weight: bold; padding: 6px; text-align: left; }
</style>|}

let matrix_table page =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "<table><caption>Latest result per test and site</caption><tr><th>test</th>";
  List.iter
    (fun site -> Buffer.add_string buf (Printf.sprintf "<th>%s</th>" (html_escape site)))
    Testbed.Inventory.sites;
  Buffer.add_string buf "</tr>";
  List.iter
    (fun family ->
      Buffer.add_string buf
        (Printf.sprintf "<tr><th>%s</th>"
           (html_escape (Testdef.family_to_string family)));
      List.iter
        (fun site ->
          let cell = Statuspage.site_status page ~family ~site in
          Buffer.add_string buf
            (Printf.sprintf "<td class=\"%s\">%s</td>" (cell_class cell)
               (Statuspage.cell_to_string cell)))
        Testbed.Inventory.sites;
      Buffer.add_string buf "</tr>")
    Testdef.all_families;
  Buffer.add_string buf "</table>";
  Buffer.contents buf

let summary_table page =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "<table><caption>Per-test summary</caption>\
     <tr><th>test</th><th>ok</th><th>ko</th><th>unstable</th><th>success</th></tr>";
  List.iter
    (fun (name, ok, ko, unstable, ratio) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><th>%s</th><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>"
           (html_escape name) ok ko unstable
           (html_escape (Statuspage.fmt_ratio ratio))))
    (Statuspage.summary_rows page);
  Buffer.add_string buf "</table>";
  Buffer.contents buf

let history_table page =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "<table><caption>History (30-day months)</caption>\
     <tr><th>month</th><th>builds</th><th>successful</th><th>success</th></tr>";
  List.iter
    (fun (month, completed, successful, ratio) ->
      Buffer.add_string buf
        (Printf.sprintf "<tr><th>%d</th><td>%d</td><td>%d</td><td>%s</td></tr>" month
           completed successful
           (html_escape (Statuspage.fmt_ratio ratio))))
    (Statuspage.monthly_success page);
  Buffer.add_string buf "</table>";
  Buffer.contents buf

let confidence_table page =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "<table><caption>Cluster confidence</caption>\
     <tr><th>cluster</th><th>score</th><th>grade</th></tr>";
  List.iter
    (fun (cluster, score) ->
      let grade = Confidence.grade score in
      let cls = if score >= 0.9 then "ok" else if score >= 0.5 then "unstable" else "ko" in
      Buffer.add_string buf
        (Printf.sprintf "<tr><th>%s</th><td class=\"%s\">%s</td><td>%s</td></tr>"
           (html_escape cluster) cls
           (html_escape (Simkit.Table.fmt_pct score))
           grade))
    (Confidence.ranking page);
  Buffer.add_string buf "</table>";
  Buffer.contents buf

let render page =
  String.concat "\n"
    [ "<!DOCTYPE html><html><head><meta charset=\"utf-8\">";
      "<title>Grid'5000 testing status</title>"; style; "</head><body>";
      "<h1>Testbed testing status</h1>"; matrix_table page; summary_table page;
      confidence_table page; history_table page; "</body></html>" ]
