let suggested_action = function
  | "cpu-settings" ->
    "compare BIOS/firmware settings against the cluster baseline; re-apply the \
     mandated configuration (C-states off, HT off, turbo off, performance \
     governor) and re-run g5k-checks"
  | "disk" ->
    "check disk firmware version and cache configuration (hdparm/sdparm) against \
     the qualified reference; replace or reflash the drive if heterogeneous"
  | "cabling" ->
    "trace the physical cable against the Reference API port map; swap back and \
     re-run the cabling verification"
  | "infrastructure" ->
    "inspect the node's event log (IPMI SEL) for hardware errors; schedule \
     hardware diagnostics or decommission if reboots persist"
  | "description" ->
    "re-run the inventory acquisition and republish the Reference API entry; \
     refresh the OAR property database afterwards"
  | "services" ->
    "check the service unit on the site server, restart it, and watch the next \
     scheduled test run"
  | "software" ->
    "reproduce on one node, bisect the stack (kernel/OFED/image recipe), and \
     pin or patch the offending version"
  | _ -> "triage manually"

let host_of_signature signature =
  (* Signatures embed hosts as "<test>:<host>[:<detail>]"; a host always
     contains a '.' between node name and site. *)
  String.split_on_char ':' signature
  |> List.find_opt (fun part -> String.contains part '.')

(* Canonical (triage-pipeline) signatures are "category|fingerprint|scope"
   with a self-describing scope like "cluster/grisou". *)
let canonical_scope signature =
  match String.split_on_char '|' signature with
  | [ _; _; scope ] -> (
    match String.split_on_char '/' scope with
    | [ "host"; host ] -> Some (`Host host)
    | [ "cluster"; cluster ] -> Some (`Named ("cluster " ^ cluster))
    | [ "site"; site ] -> Some (`Named ("site " ^ site))
    | [ "image"; image ] -> Some (`Named ("image " ^ image))
    | [ "global" ] -> Some (`Named "testbed-wide")
    | _ -> None)
  | _ -> None

let describe_host env host =
  match Testbed.Instance.find_node env.Env.instance host with
  | Some node ->
    Printf.sprintf "%s (cluster %s, site %s)" host node.Testbed.Node.cluster_name
      node.Testbed.Node.site_name
  | None -> host

let affected_scope env (bug : Bugtracker.bug) =
  match canonical_scope bug.Bugtracker.signature with
  | Some (`Host host) -> describe_host env host
  | Some (`Named scope) -> scope
  | None -> (
    match host_of_signature bug.Bugtracker.signature with
    | Some host -> describe_host env host
    | None -> Printf.sprintf "reported by %s" bug.Bugtracker.first_test)

let render env (bug : Bugtracker.bug) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "Bug #%d: %s" bug.Bugtracker.id bug.Bugtracker.summary;
  add "  status     : %s"
    (match bug.Bugtracker.status with
     | Bugtracker.Open -> "OPEN"
     | Bugtracker.Fixed -> (
       match bug.Bugtracker.fixed_at with
       | Some at -> Printf.sprintf "FIXED at %s" (Simkit.Calendar.to_string at)
       | None -> "FIXED"));
  add "  category   : %s" bug.Bugtracker.category;
  add "  scope      : %s" (affected_scope env bug);
  add "  first seen : %s (by %s)"
    (Simkit.Calendar.to_string bug.Bugtracker.filed_at)
    bug.Bugtracker.first_test;
  add "  occurrences: %d" bug.Bugtracker.occurrences;
  let faults = Env.faults env in
  let linked =
    Testbed.Faults.history faults
    |> List.filter (fun f -> List.mem f.Testbed.Faults.id bug.Bugtracker.fault_ids)
  in
  if linked <> [] then begin
    add "  ground truth:";
    List.iter
      (fun f ->
        add "    - fault #%d [%s] %s%s" f.Testbed.Faults.id
          (Testbed.Faults.kind_to_string f.Testbed.Faults.kind)
          f.Testbed.Faults.what
          (match f.Testbed.Faults.repaired_at with
           | Some at -> Printf.sprintf " (repaired %s)" (Simkit.Calendar.to_string at)
           | None -> " (still active)"))
      linked
  end;
  add "  suggested  : %s" (suggested_action bug.Bugtracker.category);
  Buffer.contents buf

let render_index env tracker =
  let now = Env.now env in
  let bugs =
    Bugtracker.all tracker
    |> List.sort (fun a b ->
           match (a.Bugtracker.status, b.Bugtracker.status) with
           | Bugtracker.Open, Bugtracker.Fixed -> -1
           | Bugtracker.Fixed, Bugtracker.Open -> 1
           | _ -> compare a.Bugtracker.id b.Bugtracker.id)
  in
  Simkit.Table.render
    ~header:
      [ "id"; "status"; "category"; "age (days)"; "quiet (days)"; "seen";
        "summary" ]
    (List.map
       (fun (bug : Bugtracker.bug) ->
         [ string_of_int bug.Bugtracker.id;
           (match bug.Bugtracker.status with
            | Bugtracker.Open -> "OPEN"
            | Bugtracker.Fixed -> "fixed");
           bug.Bugtracker.category;
           Printf.sprintf "%.1f"
             ((now -. bug.Bugtracker.filed_at) /. Simkit.Calendar.day);
           (* age since last occurrence: a bug recurring daily reads 0.0
              here, one that went quiet months ago shows its silence *)
           Printf.sprintf "%.1f"
             ((now -. bug.Bugtracker.last_seen) /. Simkit.Calendar.day);
           string_of_int bug.Bugtracker.occurrences;
           bug.Bugtracker.summary ])
       bugs)
