(** Testbed-operator model: bug fixing and maintenance.

    Operators work through the bug tracker ("test-driven operations"):
    open bugs are triaged, then fixed at a bounded rate; fixing a bug
    repairs the ground-truth faults it was correlated with.  Operators
    also run maintenance windows — which, as the paper notes, are
    themselves a frequent source of fresh configuration drift — and,
    rarely, notice long-standing problems through user complaints even
    without a bug report (the slow path the testing framework is meant to
    replace). *)

type config = {
  fix_capacity_per_day : float;  (** bugs fixed per day, fleet-wide *)
  triage_delay : float;  (** minimum bug age before work starts *)
  maintenance_period : float;  (** one maintenance window per this period *)
  maintenance_fault_rate : float;  (** mean faults introduced per window *)
  complaint_rate_per_day : float;
      (** probability per day that one long-undetected fault surfaces *)
  prioritize_reopened : bool;
      (** work regressions (reopened bugs) before fresh filings; [false]
          (default) keeps the historical filing-order queue *)
}

val default_config : config

type t

val start : ?config:config -> Env.t -> Bugtracker.t -> t
(** Begin the operator processes on the environment's engine. *)

val stop : t -> unit

val bugs_fixed : t -> int
val maintenance_windows : t -> int
val complaints_handled : t -> int
