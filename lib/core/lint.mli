(** Trustlint: static analysis over campaign configurations, the test
    catalog, the 2017 inventory and OAR resource expressions.

    The paper's thesis is that a testbed description must be checked
    against reality before anyone relies on it; this module applies the
    same discipline to the framework's own configuration, before a
    multi-month simulated campaign burns wall-clock on a setup that
    contradicts itself.

    Diagnostic codes (severity in parentheses is the usual one; L011
    also emits warnings for beyond-horizon fault schedules):

    - [L001] (error) duplicate configuration id
    - [L002] (error) dangling reference: unknown cluster/site, or a site
      contradicting the cluster's inventory site
    - [L003] (error) unrunnable configuration: no inventory resource can
      satisfy the family's requirement (kwapi off wattmeter sites,
      mpigraph without InfiniBand, dellbios on non-Dell hardware,
      two-node needs on one-node pools)
    - [L004] (error) unsatisfiable OAR filter: no cluster matches
    - [L005] (warning) vacuously true OAR filter: every cluster matches
    - [L006] (error) OAR filter syntax error
    - [L007] (warning) unknown OAR property name in a filter
    - [L008] (error) scheduler timing/calendar misconfiguration
      (non-positive poll period, inverted backoff bounds, peak-hours
      avoidance that can starve for days)
    - [L009] (error) resilience knobs out of range (retry budget < 1,
      jitter outside [0, 1], breaker threshold/cool-down <= 0)
    - [L010] (error) health configuration invalid (threshold ordering,
      non-positive MTTR means, unreachable quarantine score)
    - [L011] (error/warning) campaign shape: non-positive months or
      executors, negative fault schedules, beyond-horizon faults
    - [L012] (warning) staging and anti-affinity bottlenecks (families
      staged after the campaign ends, duplicate staging, executors that
      one-job-per-site can never employ)
    - [L013] (error/warning) triage pipeline knobs out of range
      (non-positive evidence ring or live cap, series bounds, flap
      thresholds, drill probabilities outside [0, 1]) and eviction
      thrash (idle grace below the dedup window)
    - [L014] (error/warning) serving layer misconfiguration
      (non-positive admission rate or sub-token burst, negative queue
      bound, degradation thresholds out of order — the ladder must run
      Fresh < Stale < Static_fallback — negative hysteresis or rebuild
      window, workload knobs out of range) and unreachable degradation
      rungs (stale_queue beyond queue_limit)
    - [L015] (error/warning) federation misconfiguration (more shards
      than testbeds, lookahead below the smallest cross-testbed latency
      — which would break the conservative-synchronization contract —
      duplicate member ids, invalid perturbation ranges, coordination
      cadences out of range)

    Semantic codes, proved by {!Semlint} (L004/L005 are also proved
    there now — feasible-host-count bounds over the whole inventory
    replaced the old representative-row heuristic):

    - [L016] (error/warning) filter simplifies to false (contradiction:
      no property assignment can satisfy it) or to true (tautology)
      under {!Oar.Expr.normalize}, independent of any inventory
    - [L017] (warning) ordering on a numeric-valued property that OAR
      compares non-numerically: an integer literal against decimal
      values is silently false, a non-integer quoted value falls back
      to lexicographic string order ('9' > '10')
    - [L018] (error/warning) provable oversubscription / starvation:
      the staged catalog's executor demand exceeds the global executor
      pool, a site's one-job-per-site budget, or a cluster's
      exclusive-test budget (peak-hours avoidance shrinks all three)
    - [L019] (error) anti-affinity deadlock cycle: simultaneous
      multi-pool acquisitions (site-spread configurations) overlap in a
      way that admits a circular wait, and nothing serializes them
    - [L020] (error) PRNG stream collision: two {!Simkit.Streams}
      derivation-tag ranges overlap for the configured federation size,
      aliasing streams that must be independent *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;  (** ["L001"].."[L020]" *)
  severity : severity;
  path : string;  (** what the diagnostic is about, e.g. a config id *)
  message : string;
  fix : string option;
      (** machine-applicable repair suggestion (semantic codes),
          rendered by [g5ktest lint --explain] *)
}

val severity_to_string : severity -> string

val errors : diagnostic list -> diagnostic list
(** Only the [Error]-severity diagnostics (the CI gate's exit status). *)

val sort : diagnostic list -> diagnostic list
(** Errors first, then by code, then by path. *)

val known_properties : string list
(** The OAR property vocabulary of the simulated instance. *)

val check_filter : path:string -> string -> diagnostic list
(** L004-L007 and L016-L017 on one OAR filter string: syntax and
    property vocabulary here, semantic verdicts from
    {!Semlint.check_expr}. *)

val check_configs : Testdef.config list -> diagnostic list
(** L001-L003 plus filter checks on each configuration's generated OAR
    filter.  Dangling references (L002) suppress the downstream checks
    for that configuration, so one root cause yields one diagnostic. *)

val check_catalog : unit -> diagnostic list
(** {!check_configs} over the full 751-configuration catalog. *)

val check_policy : path:string -> Scheduler.policy -> diagnostic list
(** L008-L009. *)

val check_health : path:string -> Health.config -> diagnostic list
(** L010. *)

val check_triage : path:string -> Triage.config -> diagnostic list
(** L013. *)

val check_serve : path:string -> Serve.config -> diagnostic list
(** L014. *)

val check_federation : path:string -> Federation.config -> diagnostic list
(** L015, plus L020 ({!Semlint.check_streams}) once the shape is sane.
    Static mirror of the dynamic validation {!Federation.run} performs,
    plus conservatism and coordination-cadence checks the runtime does
    not enforce. *)

val check_schedulability :
  path:string ->
  policy:Scheduler.policy ->
  executors:int ->
  Testdef.config list ->
  diagnostic list
(** L018-L019 ({!Semlint.check_capacity} / {!Semlint.check_deadlock})
    over an explicit configuration list. *)

val check_campaign : Campaign.config -> diagnostic list
(** L011-L012, plus {!check_policy}, {!check_health}, {!check_triage}
    and {!check_serve} (when attached), {!check_configs} over every
    staged family's configurations, and {!check_schedulability} over the
    families reachable within the campaign horizon. *)

val run : Campaign.config -> diagnostic list
(** {!check_campaign}, sorted. *)

val presets : (string * Campaign.config) list
(** Named example configurations the CLI gate lints alongside the
    catalog: default, naive policy, resilience drill, health drill, the
    triage pipeline, and the serving layer (with a scheduled
    [Serve_crash] drill). *)

val diagnostic_to_json : diagnostic -> Simkit.Json.t
val to_json : diagnostic list -> Simkit.Json.t

val render : ?explain:bool -> diagnostic list -> string
(** Plain-text table, one diagnostic per line, with a summary footer.
    [~explain:true] adds an indented [fix:] line under every diagnostic
    that carries a repair suggestion. *)
