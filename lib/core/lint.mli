(** Trustlint: static analysis over campaign configurations, the test
    catalog, the 2017 inventory and OAR resource expressions.

    The paper's thesis is that a testbed description must be checked
    against reality before anyone relies on it; this module applies the
    same discipline to the framework's own configuration, before a
    multi-month simulated campaign burns wall-clock on a setup that
    contradicts itself.

    Diagnostic codes (severity in parentheses is the usual one; L011
    also emits warnings for beyond-horizon fault schedules):

    - [L001] (error) duplicate configuration id
    - [L002] (error) dangling reference: unknown cluster/site, or a site
      contradicting the cluster's inventory site
    - [L003] (error) unrunnable configuration: no inventory resource can
      satisfy the family's requirement (kwapi off wattmeter sites,
      mpigraph without InfiniBand, dellbios on non-Dell hardware,
      two-node needs on one-node pools)
    - [L004] (error) unsatisfiable OAR filter: no cluster matches
    - [L005] (warning) vacuously true OAR filter: every cluster matches
    - [L006] (error) OAR filter syntax error
    - [L007] (warning) unknown OAR property name in a filter
    - [L008] (error) scheduler timing/calendar misconfiguration
      (non-positive poll period, inverted backoff bounds, peak-hours
      avoidance that can starve for days)
    - [L009] (error) resilience knobs out of range (retry budget < 1,
      jitter outside [0, 1], breaker threshold/cool-down <= 0)
    - [L010] (error) health configuration invalid (threshold ordering,
      non-positive MTTR means, unreachable quarantine score)
    - [L011] (error/warning) campaign shape: non-positive months or
      executors, negative fault schedules, beyond-horizon faults
    - [L012] (warning) staging and anti-affinity bottlenecks (families
      staged after the campaign ends, duplicate staging, executors that
      one-job-per-site can never employ)
    - [L013] (error/warning) triage pipeline knobs out of range
      (non-positive evidence ring or live cap, series bounds, flap
      thresholds, drill probabilities outside [0, 1]) and eviction
      thrash (idle grace below the dedup window)
    - [L014] (error/warning) serving layer misconfiguration
      (non-positive admission rate or sub-token burst, negative queue
      bound, degradation thresholds out of order — the ladder must run
      Fresh < Stale < Static_fallback — negative hysteresis or rebuild
      window, workload knobs out of range) and unreachable degradation
      rungs (stale_queue beyond queue_limit)
    - [L015] (error/warning) federation misconfiguration (more shards
      than testbeds, lookahead below the smallest cross-testbed latency
      — which would break the conservative-synchronization contract —
      duplicate member ids, invalid perturbation ranges, coordination
      cadences out of range) *)

type severity = Error | Warning | Info

type diagnostic = {
  code : string;  (** ["L001"].."[L015]" *)
  severity : severity;
  path : string;  (** what the diagnostic is about, e.g. a config id *)
  message : string;
}

val severity_to_string : severity -> string

val errors : diagnostic list -> diagnostic list
(** Only the [Error]-severity diagnostics (the CI gate's exit status). *)

val sort : diagnostic list -> diagnostic list
(** Errors first, then by code, then by path. *)

val known_properties : string list
(** The OAR property vocabulary of the simulated instance. *)

val check_filter : path:string -> string -> diagnostic list
(** L004-L007 on one OAR filter string. *)

val check_configs : Testdef.config list -> diagnostic list
(** L001-L003 plus filter checks on each configuration's generated OAR
    filter.  Dangling references (L002) suppress the downstream checks
    for that configuration, so one root cause yields one diagnostic. *)

val check_catalog : unit -> diagnostic list
(** {!check_configs} over the full 751-configuration catalog. *)

val check_policy : path:string -> Scheduler.policy -> diagnostic list
(** L008-L009. *)

val check_health : path:string -> Health.config -> diagnostic list
(** L010. *)

val check_triage : path:string -> Triage.config -> diagnostic list
(** L013. *)

val check_serve : path:string -> Serve.config -> diagnostic list
(** L014. *)

val check_federation : path:string -> Federation.config -> diagnostic list
(** L015.  Static mirror of the dynamic validation {!Federation.run}
    performs, plus conservatism and coordination-cadence checks the
    runtime does not enforce. *)

val check_campaign : Campaign.config -> diagnostic list
(** L011-L012, plus {!check_policy}, {!check_health}, {!check_triage}
    and {!check_serve} (when attached) and {!check_configs} over every
    staged family's configurations. *)

val run : Campaign.config -> diagnostic list
(** {!check_campaign}, sorted. *)

val presets : (string * Campaign.config) list
(** Named example configurations the CLI gate lints alongside the
    catalog: default, naive policy, resilience drill, health drill, the
    triage pipeline, and the serving layer (with a scheduled
    [Serve_crash] drill). *)

val diagnostic_to_json : diagnostic -> Simkit.Json.t
val to_json : diagnostic list -> Simkit.Json.t

val render : diagnostic list -> string
(** Plain-text table, one diagnostic per line, with a summary footer. *)
