(** Bug tracker.

    "Testbed operators would be well positioned to report bugs, but they
    are not testbed users" — here the testing framework is the reporter.
    Failing test scripts emit {e evidence}; evidence with an
    already-known signature increments the existing bug instead of filing
    a duplicate, so the bug count reflects distinct problems (the paper's
    "118 bugs filed, 84 already fixed").

    The store is designed for millions of filings: filing is O(1) with
    maintained counters (no list scans), every bug carries a
    [last_seen] timestamp, a bounded evidence ring and a downsampled
    occurrence timeseries, and an optional {!limits} record caps live
    memory — cold bugs are {e evicted} to tombstones that keep their
    occurrence counts so deduplication stays correct, and recurrences
    {e resurrect} them.  Without limits (the default) behaviour is
    exactly the historical unbounded store. *)

type evidence = {
  signature : string;  (** dedup key, e.g. ["disk-write-cache:graphene-12"] *)
  summary : string;
  category : string;  (** the paper's bug classes, see {!Testbed.Faults.category} *)
  source_test : string;  (** config id of the reporting test *)
  fault_ids : int list;  (** correlated ground-truth faults, for repair *)
}

type status = Open | Fixed

type bug = {
  id : int;
  signature : string;
  summary : string;
  category : string;
  first_test : string;
  filed_at : float;
  mutable fault_ids : int list;
  mutable occurrences : int;
  mutable status : status;
  mutable fixed_at : float option;
  mutable last_seen : float;
      (** refreshed on every duplicate filing: a bug recurring daily is
          distinguishable from one that went quiet months ago *)
  mutable reopens : int;  (** fixed->open transitions (regressions) *)
  mutable recent : evidence list;
      (** newest first, bounded by [limits.ring_size]; always [[]] on an
          unbounded tracker *)
  series : Simkit.Timeseries.t option;
      (** per-bug occurrence counts at [limits.series_cadence], bounded
          to [limits.series_points]; [None] on an unbounded tracker *)
}

type limits = {
  ring_size : int;  (** evidence bundles retained per bug *)
  max_live : int;  (** cap on live (non-tombstone) signatures *)
  min_idle : float;
      (** seconds a bug must have been quiet before the first eviction
          pass may take it (the second pass ignores this if hot bugs
          alone exceed the cap, so the bound always holds) *)
  series_cadence : float;  (** occurrence-series bucket, seconds *)
  series_points : int;  (** occurrence-series length bound *)
}

val default_limits : limits
(** ring 8, 50k live signatures, 6 h idle grace, daily series capped at
    256 points. *)

(** Store transitions, in emission order within one {!file} call:
    [Reopened] (if any) precedes [Refiled]/[Resurrected]. *)
type event =
  | Filed of bug  (** a brand-new signature *)
  | Refiled of bug  (** duplicate of a live bug *)
  | Reopened of bug  (** a fixed bug regressed *)
  | Marked_fixed of bug
  | Evicted of bug  (** cold bug moved to the tombstone store *)
  | Resurrected of bug  (** tombstoned signature recurred *)

type stats = {
  live : int;  (** signatures currently in the live store *)
  filed_total : int;  (** distinct signatures ever filed (live + evicted) *)
  fixed_total : int;
  evicted : int;  (** eviction events *)
  resurrected : int;  (** tombstones brought back by a recurrence *)
  tombstoned_occurrences : int;
      (** occurrences currently held only by tombstones — the explicit
          account of what eviction moved out of the live store *)
  peak_live : int;  (** high-water mark of [live], after eviction *)
}

type t

val create : ?limits:limits -> unit -> t
(** Without [limits], the unbounded historical store.
    @raise Invalid_argument on non-positive ring/cap/cadence, negative
    idle grace or a series bound below 2. *)

val on_event : t -> (event -> unit) -> unit
(** Register a listener called synchronously on every store transition
    (the triage loop's feed). *)

val file : t -> now:float -> evidence -> [ `New of bug | `Duplicate of bug ]
(** Duplicate evidence refreshes the bug's occurrence count, [last_seen]
    and evidence ring, and merges fault ids; filing against a {e fixed}
    bug reopens it (regression).  Filing against an evicted signature
    resurrects the tombstone — reported as [`Duplicate], since the
    signature is already known. *)

val all : t -> bug list
(** Live bugs, by id (filing order). *)

val open_bugs : t -> bug list
val fixed_bugs : t -> bug list
val find : t -> signature:string -> bug option

val tombstoned : t -> bug list
(** Evicted bugs, by id.  Their occurrence counts are authoritative;
    their evidence rings are cleared. *)

val occurrences_of : t -> signature:string -> int
(** Occurrences recorded for a signature, wherever it lives (live store,
    tombstone, or 0 if never filed). *)

val mark_fixed : t -> now:float -> bug -> unit

val counts : t -> int * int
(** (filed, fixed) — O(1), from maintained counters.  Filed counts
    distinct signatures ever seen, including evicted ones. *)

val counts_scan : t -> int * int
(** The original O(n) list-scan implementation, kept as a reference
    oracle for tests: must always equal {!counts}. *)

val stats : t -> stats

val by_category : t -> (string * int * int) list
(** category, filed, fixed — sorted by filed count, descending.
    Includes tombstoned bugs, so totals match {!counts}. *)
