(** The test catalog: 16 families, 751 configurations (the paper's
    coverage slide).

    Families and per-family cardinalities:
    - environments: 14 images x 32 clusters = 448
    - stdenv, refapi, oarproperties, multireboot, multideploy, console,
      disk: one per cluster (32 each)
    - dellbios: one per Dell cluster (18)
    - oarstate, cmdline, sidapi, paralleldeploy: one per site (8 each)
    - kavlan: one per reconfigurable VLAN (13)
    - kwapi: one per wattmeter site (6)
    - mpigraph: one per InfiniBand cluster (10) *)

type family =
  | Refapi
  | Oarproperties
  | Dellbios
  | Oarstate
  | Cmdline
  | Sidapi
  | Environments
  | Stdenv
  | Paralleldeploy
  | Multireboot
  | Multideploy
  | Console
  | Kavlan
  | Kwapi
  | Mpigraph
  | Disk

(** What the test needs from OAR before it can run — the distinction
    driving the external scheduler ("software-centric: one node per
    cluster; hardware-centric: all nodes of a given cluster"). *)
type resource_need =
  | No_nodes  (** API / frontend only *)
  | One_node
  | Two_nodes
  | Site_spread  (** one node on each cluster of a site, simultaneously *)
  | Whole_cluster

type config = {
  family : family;
  cluster : string option;
  site : string option;
  image : string option;  (** environments family *)
  vlan : int option;  (** kavlan family *)
  config_id : string;  (** unique, e.g. ["environments:debian8-x64-min:graphene"] *)
}

val all_families : family list
val family_to_string : family -> string
val family_of_string : string -> family option

val need : family -> resource_need
val is_hardware_centric : family -> bool
(** {!Whole_cluster} need. *)

val category : family -> string
(** Coverage grouping as on the paper's slide (description / status /
    tooling / images / reliability / services / hardware). *)

val expand : family -> config list
(** All configurations of a family. *)

val catalog : unit -> config list
(** All 751 configurations, families in declaration order. *)

val axes_of_config : config -> (string * string) list
(** CI matrix coordinates identifying the configuration inside its
    family's matrix job. *)

val config_of_axes : family -> (string * string) list -> config option
(** Inverse of {!axes_of_config}. *)

val matrix_axes : family -> (string * string list) list
(** Axis declaration for the family's CI matrix job (may be [[]] for a
    freestyle-like single configuration... never happens here: every
    family has at least one axis). *)

val oar_filter : config -> string
(** OAR property filter selecting this configuration's resources. *)

val effective_site : config -> string option
(** The site a node-consuming run of this configuration lands on, used
    both for the resource precheck and for same-site anti-affinity.
    Equal to [site] when set; site-less {!Two_nodes} configurations (the
    global kavlan VLAN) resolve to the first inventory site — the same
    site their resource precheck draws the node pair from. *)

val base_period : family -> float
(** Target period between runs of one configuration (seconds). *)

val nominal_duration : family -> float
(** Rough expected run time of one configuration, used for walltimes. *)
