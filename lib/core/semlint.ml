(* Semantic analysis passes behind Trustlint (L004/L005, L016-L020).

   Three provers, one per hazard family the shallow shape checks cannot
   reach: an abstract interpreter for OAR filters over the inventory
   (feasible-host-count bounds, so unsat/vacuous verdicts are proofs
   rather than representative-row heuristics), a static capacity /
   schedulability analysis over the configured catalog and scheduler
   policy, and a PRNG stream-collision checker over the Simkit.Streams
   registry. *)

type severity = Error | Warning

type finding = {
  code : string;
  severity : severity;
  path : string;
  message : string;
  fix : string option;
}

let finding code severity path ?fix fmt =
  Printf.ksprintf (fun message -> { code; severity; path; message; fix }) fmt

(* {2 Pass 1: abstract interpretation of OAR filters}

   Domain: one element per inventory cluster.  Within a cluster every
   property except [host] is constant across the [nodes] hosts (the same
   rows the live OAR database exposes, Oar.Property.expected_of_doc), so
   a comparison on a constant property holds for exactly 0 or [nodes]
   hosts; [host] itself ranges over ["<cluster>-<i>.<site>"].  For each
   cluster we compute an interval [lo, hi] bounding the number of hosts
   the (normalized) filter selects. *)

type bounds = { lo : int; hi : int }

type cluster_dom = {
  spec : Testbed.Inventory.cluster_spec;
  props : (string * string) list;  (* constant properties; [host] excluded *)
}

type domain = cluster_dom list

let yes_no b = if b then "YES" else "NO"

let constant_props (s : Testbed.Inventory.cluster_spec) =
  [ ("cluster", s.cluster);
    ("site", s.site);
    ("cores", string_of_int (s.cpus * s.cores_per_cpu));
    ("cpufreq", Printf.sprintf "%.2f" s.freq_ghz);
    ("memnode", string_of_int s.ram_gb);
    ("gpu", yes_no s.has_gpu);
    ("eth10g", if s.nic_rate_gbps >= 10.0 then "Y" else "N");
    ("ib", yes_no s.has_ib);
    ("wattmeter", yes_no (List.mem s.site Testbed.Inventory.wattmeter_sites));
    ("deploy", "YES") ]

let host_name (s : Testbed.Inventory.cluster_spec) i =
  Printf.sprintf "%s-%d.%s" s.cluster i s.site

let host_props (s : Testbed.Inventory.cluster_spec) i =
  ("host", host_name s i) :: constant_props s

let domain_of_clusters specs =
  List.map (fun spec -> { spec; props = constant_props spec }) specs

let inventory_domain = lazy (domain_of_clusters Testbed.Inventory.clusters)

let inventory () = Lazy.force inventory_domain

(* Is [s] the canonical name of a host of cluster [c]?  Canonical only:
   synthesized names are ["%s-%d.%s"], so "graphene-01.nancy" is not a
   real host even though it mentions a valid index. *)
let host_index_of (c : cluster_dom) s =
  let prefix = c.spec.cluster ^ "-" and suffix = "." ^ c.spec.site in
  let lp = String.length prefix and ls = String.length suffix in
  let n = String.length s in
  if n <= lp + ls || not (String.sub s 0 lp = prefix) || not (String.sub s (n - ls) ls = suffix)
  then None
  else
    let mid = String.sub s lp (n - lp - ls) in
    match int_of_string_opt mid with
    | Some i when i >= 1 && i <= c.spec.nodes && string_of_int i = mid -> Some i
    | _ -> None

let exact k = { lo = k; hi = k }

let host_bounds (c : cluster_dom) op (v : Oar.Expr.value) =
  let n = c.spec.nodes in
  match (op, v) with
  | (Oar.Expr.Eq | Oar.Expr.Neq), _ ->
    let matching =
      match v with
      | Oar.Expr.I _ -> 0 (* host names never parse as integers *)
      | Oar.Expr.S s -> ( match host_index_of c s with Some _ -> 1 | None -> 0)
    in
    if op = Oar.Expr.Eq then exact matching else exact (n - matching)
  | (Oar.Expr.Ge | Oar.Expr.Le | Oar.Expr.Gt | Oar.Expr.Lt), Oar.Expr.I _ ->
    exact 0 (* integer comparison never parses a host name: always false *)
  | (Oar.Expr.Ge | Oar.Expr.Le | Oar.Expr.Gt | Oar.Expr.Lt), Oar.Expr.S _ ->
    { lo = 0; hi = n } (* lexicographic order over host names: Top *)

let rec bounds (c : cluster_dom) (e : Oar.Expr.t) =
  let n = c.spec.nodes in
  match e with
  | Oar.Expr.True -> exact n
  | Oar.Expr.False -> exact 0
  | Oar.Expr.And (a, b) ->
    let x = bounds c a and y = bounds c b in
    { lo = max 0 (x.lo + y.lo - n); hi = min x.hi y.hi }
  | Oar.Expr.Or (a, b) ->
    let x = bounds c a and y = bounds c b in
    { lo = max x.lo y.lo; hi = min n (x.hi + y.hi) }
  | Oar.Expr.Not a ->
    let x = bounds c a in
    { lo = n - x.hi; hi = n - x.lo }
  | Oar.Expr.Cmp ("host", op, v) -> host_bounds c op v
  | Oar.Expr.Cmp (p, op, v) -> (
    match List.assoc_opt p c.props with
    | Some actual -> if Oar.Expr.holds op actual v then exact n else exact 0
    | None -> if op = Oar.Expr.Neq then exact n else exact 0)

let cluster_bounds domain e = List.map (fun c -> (c.spec, bounds c e)) domain

let feasible_bounds domain e =
  List.fold_left
    (fun acc c ->
      let b = bounds c e in
      { lo = acc.lo + b.lo; hi = acc.hi + b.hi })
    (exact 0) domain

(* {3 L017: numeric properties compared non-numerically}

   A property whose inventory values are all numeric is meant to be
   ordered numerically, but OAR comparison semantics only do that when
   both sides parse as integers: an integer literal against decimal
   values ("cpufreq > 2" vs "2.27") is silently false, and a quoted
   value that does not parse ("memnode >= '64G'", or decimals on either
   side) falls back to lexicographic string order, where '9' > '10'. *)

let leading_int s =
  let n = String.length s in
  let rec stop i = if i < n && s.[i] >= '0' && s.[i] <= '9' then stop (i + 1) else i in
  let d = stop 0 in
  if d = 0 then None else int_of_string_opt (String.sub s 0 d)

let ordering_hazards domain (e : Oar.Expr.t) =
  let prop_values p =
    List.filter_map (fun c -> List.assoc_opt p c.props) domain
    |> List.sort_uniq String.compare
  in
  let hazard p op v =
    let vals = prop_values p in
    if vals = [] then None
    else if not (List.for_all (fun s -> float_of_string_opt s <> None) vals) then None
    else
      let all_int = List.for_all (fun s -> int_of_string_opt s <> None) vals in
      let ops = Oar.Expr.op_to_string op in
      match v with
      | Oar.Expr.I k when not all_int ->
        Some
          ( Printf.sprintf
              "'%s %s %d' compares integers, but %s values are decimal strings \
               (e.g. '%s') that never parse as integers: the comparison is \
               false for every host"
              p ops k p (List.hd vals),
            Printf.sprintf
              "pin clusters explicitly instead of ordering %s, or compare a \
               quoted decimal knowing the order is lexicographic"
              p )
      | Oar.Expr.S s when (not all_int) || int_of_string_opt s = None ->
        let fix =
          match leading_int s with
          | Some k when all_int ->
            Printf.sprintf "write the integer unquoted: %s%s%d" p ops k
          | _ ->
            Printf.sprintf
              "pin clusters explicitly instead of ordering %s lexicographically" p
        in
        Some
          ( Printf.sprintf
              "'%s %s '%s'' falls back to lexicographic string order ('9' > \
               '10'), which disagrees with the numeric order of %s values"
              p ops s p,
            fix )
      | _ -> None
  in
  let rec walk acc e =
    match e with
    | Oar.Expr.True | Oar.Expr.False -> acc
    | Oar.Expr.And (a, b) | Oar.Expr.Or (a, b) -> walk (walk acc a) b
    | Oar.Expr.Not a -> walk acc a
    | Oar.Expr.Cmp (p, ((Oar.Expr.Ge | Oar.Expr.Le | Oar.Expr.Gt | Oar.Expr.Lt) as op), v)
      -> (
      match hazard p op v with
      | Some h when not (List.mem h acc) -> h :: acc
      | _ -> acc)
    | Oar.Expr.Cmp _ -> acc
  in
  List.rev (walk [] e)

(* Targeted repair for the commonest unsat shape: a cluster pinned to the
   wrong site. *)
let cluster_site_fix (e : Oar.Expr.t) =
  let rec find_eq p acc = function
    | Oar.Expr.And (a, b) -> find_eq p (find_eq p acc a) b
    | Oar.Expr.Cmp (q, Oar.Expr.Eq, Oar.Expr.S v) when String.equal p q -> v :: acc
    | _ -> acc
  in
  match (find_eq "cluster" [] e, find_eq "site" [] e) with
  | [ cl ], [ site ] -> (
    match Testbed.Inventory.find_cluster cl with
    | Some spec when not (String.equal spec.site site) ->
      Some
        (Printf.sprintf "cluster '%s' is in site '%s'; write site='%s' or drop the site term"
           cl spec.site spec.site)
    | _ -> None)
  | _ -> None

let check_expr ?domain ~path ~filter (expr : Oar.Expr.t) =
  let d = match domain with Some d -> d | None -> inventory () in
  match expr with
  | Oar.Expr.True -> []
  | _ -> (
    let norm = Oar.Expr.normalize expr in
    match norm with
    | Oar.Expr.False ->
      [ finding "L016" Error path
          ~fix:"the filter simplifies to false; remove it or drop one of the conflicting comparisons"
          "contradictory OAR filter %S: it simplifies to false on every \
           property assignment, no inventory could ever satisfy it"
          filter ]
    | Oar.Expr.True ->
      [ finding "L016" Warning path
          ~fix:"drop the filter: an empty filter selects every host"
          "tautological OAR filter %S: it simplifies to true, the constraint \
           selects nothing"
          filter ]
    | _ ->
      let total = feasible_bounds d norm in
      let population = List.fold_left (fun acc c -> acc + c.spec.nodes) 0 d in
      let hazards = ordering_hazards d expr in
      if total.hi = 0 then
        let fix =
          match cluster_site_fix norm with
          | Some f -> f
          | None -> (
            match hazards with
            | (_, f) :: _ -> f
            | [] ->
              "no inventory host can satisfy the filter; check the property \
               values against the Reference API rows")
        in
        [ finding "L004" Error path ~fix
            "unsatisfiable OAR filter %S: proved infeasible against the 2017 \
             inventory (feasible hosts = 0 of %d)"
            filter population ]
      else
        (if total.lo = population then
           [ finding "L005" Warning path
               ~fix:"the constraint selects nothing; drop it or tighten it"
               "vacuously true OAR filter %S: every host of every cluster \
                matches (proved: %d of %d)"
               filter total.lo population ]
         else [])
        @ List.map
            (fun (msg, fix) ->
              finding "L017" Warning path ~fix "numeric-comparison hazard: %s" msg)
            hazards)

(* {2 Pass 2: static capacity / schedulability analysis}

   Each configuration demands [nominal_duration / base_period] executor
   utilization.  Node-consuming work additionally fits only into the
   off-peak fraction of the calendar when the policy avoids peak hours
   (Simkit.Calendar: weekday 8-19h is peak, so 55 of 168 weekly hours
   are lost), and one-job-per-site anti-affinity caps per-site
   node-consuming concurrency at 1.  Demands exceeding those envelopes
   are provable starvation: no schedule fits the work. *)

let offpeak_fraction = (168.0 -. 55.0) /. 168.0

let utilization configs =
  List.fold_left
    (fun acc (c : Testdef.config) ->
      acc +. (Testdef.nominal_duration c.family /. Testdef.base_period c.family))
    0.0 configs

let is_node_consuming (c : Testdef.config) = Testdef.need c.family <> Testdef.No_nodes

(* warn when demand exceeds this fraction of the proved envelope *)
let capacity_warn_fraction = 0.75

let check_capacity ~path ~(policy : Scheduler.policy) ~executors configs =
  if executors <= 0 || configs = [] then []
  else begin
    let avail = if policy.avoid_peak_hours then offpeak_fraction else 1.0 in
    let node_configs = List.filter is_node_consuming configs in
    let total_u = utilization configs in
    let node_u = utilization node_configs in
    (* any schedule needs >= total_u executors overall, and node work must
       fit into the off-peak fraction of the timeline *)
    let demand = Float.max total_u (node_u /. avail) in
    let cap = float_of_int executors in
    let global =
      if demand > cap then
        [ finding "L018" Error (path ^ ".capacity")
            ~fix:
              (Printf.sprintf
                 "raise executors to at least %d, disable avoid_peak_hours, or \
                  stage fewer families"
                 (int_of_float (Float.ceil demand)))
            "provable oversubscription: the staged catalog demands %.2f \
             executor-equivalents (%.2f node-consuming, off-peak fraction \
             %.2f) but only %d executor%s configured"
            demand node_u avail executors
            (if executors = 1 then " is" else "s are") ]
      else if demand > capacity_warn_fraction *. cap then
        [ finding "L018" Warning (path ^ ".capacity")
            ~fix:"add executor headroom or extend family base periods"
            "capacity headroom below %d%%: the staged catalog demands %.2f of \
             %d executors"
            (int_of_float ((1.0 -. capacity_warn_fraction) *. 100.0))
            demand executors ]
      else []
    in
    let per_site =
      if not policy.one_job_per_site then []
      else begin
        let by_site = Hashtbl.create 16 in
        List.iter
          (fun (c : Testdef.config) ->
            match Testdef.effective_site c with
            | Some s ->
              let u = Testdef.nominal_duration c.family /. Testdef.base_period c.family in
              Hashtbl.replace by_site s
                (u +. (try Hashtbl.find by_site s with Not_found -> 0.0))
            | None -> ())
          node_configs;
        Hashtbl.fold (fun site u acc -> (site, u) :: acc) by_site []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.concat_map (fun (site, u) ->
               if u > avail then
                 [ finding "L018" Error (path ^ ".site:" ^ site)
                     ~fix:
                       "disable one_job_per_site, stage fewer families on this \
                        site, or extend their base periods"
                     "provable per-site starvation: one_job_per_site caps site \
                      '%s' at one node-consuming build, but its staged \
                      configurations demand %.2f of the %.2f available"
                     site u avail ]
               else if u > capacity_warn_fraction *. avail then
                 [ finding "L018" Warning (path ^ ".site:" ^ site)
                     ~fix:"stage fewer families on this site or extend their base periods"
                     "site '%s' nears its anti-affinity envelope: %.2f of %.2f \
                      single-build utilization"
                     site u avail ]
               else [])
      end
    in
    let per_cluster =
      (* whole-cluster tests of one cluster serialize against each other *)
      let by_cluster = Hashtbl.create 32 in
      List.iter
        (fun (c : Testdef.config) ->
          match (Testdef.need c.family, c.cluster) with
          | Testdef.Whole_cluster, Some cl ->
            let u = Testdef.nominal_duration c.family /. Testdef.base_period c.family in
            Hashtbl.replace by_cluster cl
              (u +. (try Hashtbl.find by_cluster cl with Not_found -> 0.0))
          | _ -> ())
        configs;
      Hashtbl.fold (fun cl u acc -> (cl, u) :: acc) by_cluster []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.concat_map (fun (cl, u) ->
             if u > avail then
               [ finding "L018" Error (path ^ ".cluster:" ^ cl)
                   ~fix:"extend the whole-cluster families' base periods"
                   "provable whole-cluster oversubscription on '%s': its \
                    exclusive tests demand %.2f of the %.2f available"
                   cl u avail ]
             else [])
    in
    global @ per_site @ per_cluster
  end

(* {3 L019: anti-affinity deadlock cycles}

   Only Site_spread configurations hold-and-wait: their precheck is a
   list of per-cluster requests acquired simultaneously
   (Scheduler.precheck_of -> All_free).  Two of them contending for >= 2
   shared cluster pools — or >= 3 forming a cycle of pairwise overlaps —
   can each hold a pool the other needs.  one_job_per_site serializes
   same-site acquisition, which is why the default policy is safe. *)

let tarjan n succs =
  let index = Array.make n (-1) and low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and comps = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      (succs v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: tl ->
          stack := tl;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  List.rev !comps

let check_deadlock ~path ~serialized configs =
  if serialized then []
  else begin
    let multi =
      List.filter_map
        (fun (c : Testdef.config) ->
          match Testdef.need c.family with
          | Testdef.Site_spread -> (
            match Testdef.effective_site c with
            | Some site ->
              let pools =
                List.map
                  (fun (sp : Testbed.Inventory.cluster_spec) -> sp.cluster)
                  (Testbed.Inventory.clusters_of_site site)
              in
              if List.length pools >= 2 then Some (c, pools) else None
            | None -> None)
          | _ -> None)
        configs
      |> Array.of_list
    in
    let n = Array.length multi in
    let shared i j =
      let _, pi = multi.(i) and _, pj = multi.(j) in
      List.length (List.filter (fun p -> List.mem p pj) pi)
    in
    let succs v = List.filter (fun w -> w <> v && shared v w >= 1) (List.init n Fun.id) in
    let deadlocky comp =
      match comp with
      | [] | [ _ ] -> false
      | [ i; j ] -> shared i j >= 2
      | _ -> true (* >= 3 mutually-overlapping holders always admit a cycle *)
    in
    tarjan n succs
    |> List.filter deadlocky
    |> List.map (fun comp ->
           let ids =
             List.map (fun i -> (fst multi.(i) : Testdef.config).config_id) comp
           in
           finding "L019" Error path
             ~fix:
               "set one_job_per_site=true (serializes same-site acquisition) or \
                keep at most one site-spread configuration per site"
             "anti-affinity deadlock cycle: configurations %s acquire \
              overlapping cluster pools simultaneously (hold-and-wait); a \
              circular wait can block them all forever"
             (String.concat ", " ids))
  end

(* {2 Pass 3: PRNG stream-collision detection (L020)} *)

let check_streams ~path ~members =
  let ranges = Simkit.Streams.registry ~members in
  Simkit.Streams.overlaps ranges
  |> List.map (fun ((a : Simkit.Streams.range), (b : Simkit.Streams.range)) ->
         let next_free =
           List.fold_left (fun acc (r : Simkit.Streams.range) ->
               max acc (r.base + max r.count 0)) 0 ranges
         in
         finding "L020" Error path
           ~fix:
             (Printf.sprintf "move %s to a disjoint tag base (first free tag: 0x%X)"
                b.name next_free)
           "PRNG stream collision: derivation ranges %s and %s overlap for %d \
            member%s — the aliased streams correlate randomness across \
            subsystems and break the federation determinism contract"
           (Simkit.Streams.range_to_string a)
           (Simkit.Streams.range_to_string b)
           members
           (if members = 1 then "" else "s"))
