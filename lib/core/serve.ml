type mode = Fresh | Stale | Static_fallback

let mode_to_string = function
  | Fresh -> "fresh"
  | Stale -> "stale"
  | Static_fallback -> "static-fallback"

let severity = function Fresh -> 0 | Stale -> 1 | Static_fallback -> 2

type config = {
  rate_limit : float;
  burst : float;
  queue_limit : int;
  stale_queue : int;
  fallback_queue : int;
  hysteresis_s : float;
  rebuild_s : float;
  tick_period : float;
  readers_per_s : float;
  conditional_fraction : float;
  flash_every : float;
  flash_duration : float;
  flash_multiplier : float;
  workload_seed : int64;
}

let default_config =
  {
    rate_limit = 20.0;
    burst = 1000.0;
    queue_limit = 2000;
    stale_queue = 100;
    fallback_queue = 1000;
    hysteresis_s = 120.0;
    rebuild_s = 300.0;
    tick_period = 30.0;
    readers_per_s = 2.0;
    conditional_fraction = 0.6;
    flash_every = Simkit.Calendar.day;
    flash_duration = 600.0;
    flash_multiplier = 50.0;
    workload_seed = 77L;
  }

type response =
  | Page of { body : string; etag : string; mode : mode; staleness : float }
  | Not_modified of string
  | Shed

type summary = {
  reads : int;
  fresh : int;
  not_modified : int;
  stale : int;
  fallback : int;
  shed : int;
  queued_now : int;
  queued_peak : int;
  renders : int;
  renders_saved : int;
  crashes : int;
  recoveries : int;
  degraded_seconds : float;
  alerts_fired : int;
  staleness_p50 : float;
  staleness_p99 : float;
  staleness_max : float;
  hit_ratio : float;
}

let service_name = "statuspage"

type t = {
  env : Env.t;
  page : Statuspage.t;
  cfg : config;
  alerts : Monitoring.Alerts.t option;
  rng : Simkit.Prng.t;  (* dedicated stream: never the engine master *)
  journal : Ci.Build.t list ref;  (* newest first; replayed reversed *)
  (* snapshot cache *)
  mutable cached_gen : int;  (* -1 = nothing cached *)
  mutable body : string;
  mutable cached_etag : string;
  mutable fallback_body : string;
  mutable dirty_since : float option;
      (* first un-rendered mutation; staleness of a degraded serve *)
  (* admission *)
  mutable tokens : float;
  mutable last_refill : float;
  mutable queued : int;
  (* degradation ladder *)
  mutable current_mode : mode;
  mutable calm_since : float option;
  mutable rebuild_until : float;
  mutable crash_seen : bool;
  (* counters *)
  mutable reads : int;
  mutable fresh_n : int;
  mutable not_modified_n : int;
  mutable stale_n : int;
  mutable fallback_n : int;
  mutable shed_n : int;
  mutable queued_peak : int;
  mutable renders : int;
  mutable crashes : int;
  mutable recoveries : int;
  mutable degraded_s : float;
  mutable alerts_fired : int;
  mutable staleness_samples : (float * int) list;  (* value, weight *)
  mutable staleness_max : float;
  (* wall-clock probe, injected by the benchmark *)
  mutable clock : (unit -> float) option;
  mutable busy_s : float;
}

(* ---- snapshot cache ----------------------------------------------------- *)

let etag_of_generation gen = Printf.sprintf "W/\"g%d\"" gen

let render_fallback t =
  (* Deliberately computed from nothing but static text: the fallback
     must survive the aggregates being wiped mid-recovery. *)
  ignore t;
  String.concat "\n"
    [ "<!DOCTYPE html><html><head><meta charset=\"utf-8\">";
      "<title>Grid'5000 testing status</title></head><body>";
      "<h1>Testbed testing status</h1>";
      "<p>The status service is under heavy load or rebuilding; this is a \
       static placeholder. Recent results will reappear shortly.</p>";
      "</body></html>" ]

(* Single flight: one render brings the cache up to the page's current
   generation; every read that arrives before the next mutation is a hit. *)
let ensure_current t =
  let gen = Statuspage.generation t.page in
  if t.cached_gen <> gen then begin
    t.body <- Webstatus.render t.page;
    t.cached_etag <- etag_of_generation gen;
    t.cached_gen <- gen;
    t.dirty_since <- None;
    t.renders <- t.renders + 1
  end

let staleness_now t now =
  match t.dirty_since with Some since -> now -. since | None -> 0.0

let sample_staleness t value weight =
  if weight > 0 then begin
    t.staleness_samples <- (value, weight) :: t.staleness_samples;
    if value > t.staleness_max then t.staleness_max <- value
  end

(* ---- admission ---------------------------------------------------------- *)

let refill t now =
  let dt = now -. t.last_refill in
  if dt > 0.0 then begin
    t.tokens <- Float.min t.cfg.burst (t.tokens +. (t.cfg.rate_limit *. dt));
    t.last_refill <- now
  end

(* ---- degradation ladder ------------------------------------------------- *)

let fire_degraded t now reason =
  match t.alerts with
  | None -> t.alerts_fired <- t.alerts_fired + 1
  | Some alerts ->
    ignore
      (Monitoring.Alerts.notify_serving_degraded alerts ~now ~service:service_name
         ~reason);
    t.alerts_fired <- t.alerts_fired + 1

let resolve_degraded t now =
  match t.alerts with
  | None -> ()
  | Some alerts ->
    Monitoring.Alerts.resolve_serving_degraded alerts ~now ~service:service_name

let target_mode t now =
  if now < t.rebuild_until then Static_fallback
  else if t.queued >= t.cfg.fallback_queue then Static_fallback
  else if t.queued >= t.cfg.stale_queue then Stale
  else Fresh

let update_mode t now =
  let target = target_mode t now in
  if severity target > severity t.current_mode then begin
    (* Escalate immediately; only the first departure from Fresh pages. *)
    if t.current_mode = Fresh then
      fire_degraded t now
        (Printf.sprintf "serving %s (queue %d)" (mode_to_string target) t.queued);
    t.current_mode <- target;
    t.calm_since <- None
  end
  else if severity target < severity t.current_mode then begin
    (* De-escalate only after a full hysteresis window of calm. *)
    match t.calm_since with
    | None -> t.calm_since <- Some now
    | Some since ->
      if now -. since >= t.cfg.hysteresis_s then begin
        t.current_mode <- target;
        t.calm_since <- None;
        if target = Fresh then resolve_degraded t now
      end
  end
  else t.calm_since <- None

(* ---- crash recovery ----------------------------------------------------- *)

let check_crash t now =
  let crashed =
    Testbed.Faults.flag (Env.fault_ctx t.env) Testbed.Faults.serve_crash_flag
    <> None
  in
  if crashed && not t.crash_seen then begin
    t.crash_seen <- true;
    t.crashes <- t.crashes + 1;
    (* Everything in memory is gone: snapshot cache and aggregates. *)
    t.cached_gen <- -1;
    t.body <- "";
    t.cached_etag <- "";
    Statuspage.reset t.page;
    (* Rebuild from the build-completion journal.  [Statuspage.apply]
       timestamps with each build's own [finished_at], so the replayed
       aggregates are byte-identical to the pre-crash ones. *)
    List.iter (Statuspage.apply t.page) (List.rev !(t.journal));
    t.recoveries <- t.recoveries + 1;
    t.rebuild_until <- now +. t.cfg.rebuild_s;
    t.dirty_since <- Some now
  end
  else if not crashed then t.crash_seen <- false

(* ---- serving ------------------------------------------------------------ *)

(* Serve one admitted read.  [conditional] = the reader sent the ETag it
   got last time (modeled as the cache's ETag at the start of the batch). *)
let serve_one t now ~held_etag ~conditional =
  t.reads <- t.reads + 1;
  match t.current_mode with
  | Fresh ->
    ensure_current t;
    if conditional && String.equal held_etag t.cached_etag then begin
      t.not_modified_n <- t.not_modified_n + 1;
      Not_modified t.cached_etag
    end
    else begin
      t.fresh_n <- t.fresh_n + 1;
      Page { body = t.body; etag = t.cached_etag; mode = Fresh; staleness = 0.0 }
    end
  | Stale ->
    (* Serve whatever is cached without rendering; if nothing ever was,
       bootstrap with one render (a read must never fail outright). *)
    if t.cached_gen < 0 then ensure_current t;
    let staleness = staleness_now t now in
    t.stale_n <- t.stale_n + 1;
    Page { body = t.body; etag = t.cached_etag; mode = Stale; staleness }
  | Static_fallback ->
    let staleness = staleness_now t now in
    t.fallback_n <- t.fallback_n + 1;
    Page
      { body = t.fallback_body; etag = ""; mode = Static_fallback; staleness }

let shed t n =
  t.reads <- t.reads + n;
  t.shed_n <- t.shed_n + n

(* ---- the service loop --------------------------------------------------- *)

let flash_active cfg now =
  cfg.flash_every > 0.0
  && Float.rem now cfg.flash_every >= cfg.flash_every -. cfg.flash_duration

let tick t eng =
  let started = match t.clock with Some clock -> Some (clock ()) | None -> None in
  let now = Simkit.Engine.now eng in
  refill t now;
  check_crash t now;
  (* Offered load this tick (dedicated PRNG stream). *)
  let multiplier = if flash_active t.cfg now then t.cfg.flash_multiplier else 1.0 in
  let mean = t.cfg.readers_per_s *. t.cfg.tick_period *. multiplier in
  let offered = if mean > 0.0 then Simkit.Dist.poisson t.rng ~mean else 0 in
  (* Admission: the parked queue drains first, then new arrivals. *)
  let demand = t.queued + offered in
  let admitted = min demand (int_of_float t.tokens) in
  t.tokens <- t.tokens -. float_of_int admitted;
  let leftover = demand - admitted in
  let parked = min leftover t.cfg.queue_limit in
  shed t (leftover - parked);
  t.queued <- parked;
  if parked > t.queued_peak then t.queued_peak <- parked;
  update_mode t now;
  (* Serve the admitted batch read by read (honest per-read cost for the
     benchmark); the conditional share is a deterministic integer split. *)
  if admitted > 0 then begin
    let held_etag = t.cached_etag in
    let conditional_n =
      int_of_float (float_of_int admitted *. t.cfg.conditional_fraction)
    in
    let degraded_staleness =
      match t.current_mode with
      | Fresh -> 0.0
      | Stale | Static_fallback ->
        if t.current_mode = Stale && t.cached_gen < 0 then 0.0
        else staleness_now t now
    in
    for i = 1 to admitted do
      ignore (serve_one t now ~held_etag ~conditional:(i <= conditional_n))
    done;
    (* Fresh/not-modified serves have zero staleness; degraded serves
       all share this tick's value, recorded as one weighted sample. *)
    (match t.current_mode with
     | Fresh -> sample_staleness t 0.0 admitted
     | Stale | Static_fallback -> sample_staleness t degraded_staleness admitted);
    (* Stale-while-revalidate: the batch was served from the old
       snapshot, then a single background render freshens it. *)
    if t.current_mode = Stale && t.cached_gen <> Statuspage.generation t.page
    then ensure_current t
  end;
  if t.current_mode <> Fresh then
    t.degraded_s <- t.degraded_s +. t.cfg.tick_period;
  (match (started, t.clock) with
   | Some s, Some clock -> t.busy_s <- t.busy_s +. (clock () -. s)
   | _ -> ());
  true

(* ---- public API --------------------------------------------------------- *)

let attach ?alerts ~config env page =
  let engine = Env.engine env in
  let t =
    {
      env;
      page;
      cfg = config;
      alerts;
      rng = Simkit.Prng.create config.workload_seed;
      journal = ref [];
      cached_gen = -1;
      body = "";
      cached_etag = "";
      fallback_body = "";
      dirty_since = None;
      tokens = config.burst;
      last_refill = Simkit.Engine.now engine;
      queued = 0;
      current_mode = Fresh;
      calm_since = None;
      rebuild_until = neg_infinity;
      crash_seen = false;
      reads = 0;
      fresh_n = 0;
      not_modified_n = 0;
      stale_n = 0;
      fallback_n = 0;
      shed_n = 0;
      queued_peak = 0;
      renders = 0;
      crashes = 0;
      recoveries = 0;
      degraded_s = 0.0;
      alerts_fired = 0;
      staleness_samples = [];
      staleness_max = 0.0;
      clock = None;
      busy_s = 0.0;
    }
  in
  t.fallback_body <- render_fallback t;
  (* The service's own journal of completions: the CI server's build
     history is retention-trimmed, so recovery needs an unbounded log.
     The listener also pins [dirty_since] to the mutation time, which is
     what degraded reads report as staleness. *)
  Ci.Server.on_build_complete env.Env.ci (fun build ->
      t.journal := build :: !(t.journal);
      if t.dirty_since = None then t.dirty_since <- Some (Env.now env));
  Simkit.Engine.every engine ~label:"serve" ~period:config.tick_period (tick t);
  t

let read t ?if_none_match () =
  let now = Env.now t.env in
  refill t now;
  if t.tokens < 1.0 then begin
    shed t 1;
    Shed
  end
  else begin
    t.tokens <- t.tokens -. 1.0;
    let held_etag = Option.value ~default:"" if_none_match in
    serve_one t now ~held_etag ~conditional:(if_none_match <> None)
  end

let mode t = t.current_mode
let etag t = if t.cached_gen < 0 then None else Some t.cached_etag
let busy_seconds t = t.busy_s
let set_clock t clock = t.clock <- Some clock

let weighted_percentile samples p =
  match samples with
  | [] -> 0.0
  | samples ->
    let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) samples in
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 sorted in
    let target = p *. float_of_int total in
    let rec pick cumulative = function
      | [] -> 0.0
      | [ (value, _) ] -> value
      | (value, n) :: rest ->
        let cumulative = cumulative + n in
        if float_of_int cumulative >= target then value else pick cumulative rest
    in
    pick 0 sorted

let summary t =
  let served = t.fresh_n + t.not_modified_n + t.stale_n + t.fallback_n in
  {
    reads = t.reads;
    fresh = t.fresh_n;
    not_modified = t.not_modified_n;
    stale = t.stale_n;
    fallback = t.fallback_n;
    shed = t.shed_n;
    queued_now = t.queued;
    queued_peak = t.queued_peak;
    renders = t.renders;
    renders_saved = served - t.renders;
    crashes = t.crashes;
    recoveries = t.recoveries;
    degraded_seconds = t.degraded_s;
    alerts_fired = t.alerts_fired;
    staleness_p50 = weighted_percentile t.staleness_samples 0.50;
    staleness_p99 = weighted_percentile t.staleness_samples 0.99;
    staleness_max = t.staleness_max;
    hit_ratio =
      (if served = 0 then nan
       else float_of_int (served - t.renders) /. float_of_int served);
  }

let render (s : summary) =
  Simkit.Table.render
    ~header:[ "serving counter"; "value" ]
    [ [ "reads resolved"; string_of_int s.reads ];
      [ "served fresh"; string_of_int s.fresh ];
      [ "304 not modified"; string_of_int s.not_modified ];
      [ "served stale"; string_of_int s.stale ];
      [ "served fallback"; string_of_int s.fallback ];
      [ "shed"; string_of_int s.shed ];
      [ "queued at end"; string_of_int s.queued_now ];
      [ "queue peak"; string_of_int s.queued_peak ];
      [ "renders"; string_of_int s.renders ];
      [ "renders saved"; string_of_int s.renders_saved ];
      [ "cache hit ratio"; Statuspage.fmt_ratio s.hit_ratio ];
      [ "crashes"; string_of_int s.crashes ];
      [ "recoveries"; string_of_int s.recoveries ];
      [ "degraded seconds"; Simkit.Table.fmt_float s.degraded_seconds ];
      [ "alerts fired"; string_of_int s.alerts_fired ];
      [ "staleness p50 (s)"; Simkit.Table.fmt_float s.staleness_p50 ];
      [ "staleness p99 (s)"; Simkit.Table.fmt_float s.staleness_p99 ];
      [ "staleness max (s)"; Simkit.Table.fmt_float s.staleness_max ] ]

let summary_to_json (s : summary) =
  let open Simkit.Json in
  Obj
    [ ("reads", Int s.reads);
      ("fresh", Int s.fresh);
      ("not_modified", Int s.not_modified);
      ("stale", Int s.stale);
      ("fallback", Int s.fallback);
      ("shed", Int s.shed);
      ("queued_now", Int s.queued_now);
      ("queued_peak", Int s.queued_peak);
      ("renders", Int s.renders);
      ("renders_saved", Int s.renders_saved);
      ("crashes", Int s.crashes);
      ("recoveries", Int s.recoveries);
      ("degraded_seconds", Float s.degraded_seconds);
      ("alerts_fired", Int s.alerts_fired);
      ("staleness_p50", Float s.staleness_p50);
      ("staleness_p99", Float s.staleness_p99);
      ("staleness_max", Float s.staleness_max);
      ("hit_ratio", if Float.is_nan s.hit_ratio then Null else Float s.hit_ratio)
    ]
