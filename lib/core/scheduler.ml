type policy = {
  poll_period : float;
  backoff_initial : float;
  backoff_max : float;
  avoid_peak_hours : bool;
  one_job_per_site : bool;
  precheck_resources : bool;
  use_backoff : bool;
  retry_budget : int;
  backoff_jitter : float;
  breaker : Resilience.Breaker.config option;
}

let smart_policy =
  {
    poll_period = 600.0;
    backoff_initial = 3600.0;
    backoff_max = 4.0 *. Simkit.Calendar.day;
    avoid_peak_hours = true;
    one_job_per_site = true;
    precheck_resources = true;
    use_backoff = true;
    retry_budget = max_int;
    backoff_jitter = 0.0;
    breaker = None;
  }

let naive_policy =
  {
    poll_period = 600.0;
    backoff_initial = 3600.0;
    backoff_max = 4.0 *. Simkit.Calendar.day;
    avoid_peak_hours = false;
    one_job_per_site = false;
    precheck_resources = false;
    use_backoff = false;
    retry_budget = max_int;
    backoff_jitter = 0.0;
    breaker = None;
  }

type stats = {
  polls : int;
  triggered : int;
  completed_success : int;
  completed_failure : int;
  completed_unstable : int;
  skipped_peak : int;
  skipped_site_busy : int;
  skipped_no_resources : int;
  skipped_quarantined : int;
  skipped_breaker_open : int;
  retries_exhausted : int;
  retries_spent : int;
  breaker_trips : int;
}

(* Resource precheck, pre-compiled per configuration at enable time so
   the poll loop never re-formats or re-parses an OAR filter. *)
type precheck =
  | Always
  | Free_at_least of Oar.Expr.t * int
  | All_free of Oar.Expr.t list  (* one node on each cluster of a site *)
  | Cluster_free of Testbed.Node.t array * Oar.Expr.t
      (* every usable node of the cluster simultaneously free *)

type entry = {
  config : Testdef.config;
  site : string option;
      (* resolved anti-affinity site ({!Testdef.effective_site}) *)
  precheck : precheck;
  mutable next_due : float;
  retry : Resilience.Retry.t;
  mutable in_flight : bool;
  mutable retry_src : int option;
      (* last non-successful build of this configuration, linked as
         [retry_of] when the configuration is re-triggered *)
  mutable gen : int;
      (* generation of the entry's live copy in the due-queue; older
         heap copies are discarded lazily on pop *)
}

type t = {
  env : Env.t;
  pol : policy;
  indexed : bool;
  entries : (string, entry) Hashtbl.t;  (* config_id -> entry *)
  due : (entry * int) Simkit.Heap.t;
      (* due-queue keyed by next_due; each reschedule pushes a fresh
         (entry, gen) copy and bumps entry.gen, so a poll only touches
         due entries instead of sorting the whole catalog *)
  site_busy : (string, int) Hashtbl.t;
      (* site -> node-consuming tests in flight, maintained incrementally
         on trigger/completion instead of rescanning all entries *)
  breakers : (string, Resilience.Breaker.t) Hashtbl.t;  (* family name *)
  mutable families : Testdef.family list;
  mutable running : bool;
  rng : Simkit.Prng.t;
  mutable polls : int;
  mutable triggered : int;
  mutable completed_success : int;
  mutable completed_failure : int;
  mutable completed_unstable : int;
  mutable skipped_peak : int;
  mutable skipped_site_busy : int;
  mutable skipped_no_resources : int;
  mutable skipped_quarantined : int;
  mutable skipped_breaker_open : int;
  mutable retries_exhausted : int;
  mutable quarantined_probe : (Testdef.config -> bool) option;
      (* set by the health supervisor: does this configuration's resource
         pool currently contain sidelined nodes?  Used only to attribute
         precheck misses to the right counter *)
}

let policy t = t.pol

let retries_spent t =
  Hashtbl.fold
    (fun _ e acc -> acc + Resilience.Retry.total_spent e.retry)
    t.entries 0

let breaker_trips t =
  Hashtbl.fold (fun _ b acc -> acc + Resilience.Breaker.trips b) t.breakers 0

let stats t =
  {
    polls = t.polls;
    triggered = t.triggered;
    completed_success = t.completed_success;
    completed_failure = t.completed_failure;
    completed_unstable = t.completed_unstable;
    skipped_peak = t.skipped_peak;
    skipped_site_busy = t.skipped_site_busy;
    skipped_no_resources = t.skipped_no_resources;
    skipped_quarantined = t.skipped_quarantined;
    skipped_breaker_open = t.skipped_breaker_open;
    retries_exhausted = t.retries_exhausted;
    retries_spent = retries_spent t;
    breaker_trips = breaker_trips t;
  }

let breaker_of t family =
  match t.pol.breaker with
  | None -> None
  | Some cfg ->
    let key = Testdef.family_to_string family in
    (match Hashtbl.find_opt t.breakers key with
     | Some b -> Some b
     | None ->
       let b = Resilience.Breaker.create cfg in
       Hashtbl.replace t.breakers key b;
       Some b)

let breaker_state t family =
  match Hashtbl.find_opt t.breakers (Testdef.family_to_string family) with
  | Some b -> Some (Resilience.Breaker.state b)
  | None -> None

(* ---- due-queue and busy-site bookkeeping ------------------------------- *)

let push_due t entry =
  if t.indexed then begin
    entry.gen <- entry.gen + 1;
    Simkit.Heap.push t.due ~key:entry.next_due (entry, entry.gen)
  end

let set_next_due t entry time =
  entry.next_due <- time;
  push_due t entry

let site_is_busy t site =
  match Hashtbl.find_opt t.site_busy site with Some n -> n > 0 | None -> false

let mark_site_busy t site =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.site_busy site) in
  Hashtbl.replace t.site_busy site (n + 1)

let unmark_site_busy t site =
  match Hashtbl.find_opt t.site_busy site with
  | Some n when n > 1 -> Hashtbl.replace t.site_busy site (n - 1)
  | Some _ -> Hashtbl.remove t.site_busy site
  | None -> ()

let busy_sites t =
  Hashtbl.fold
    (fun site n acc -> if n > 0 then site :: acc else acc)
    t.site_busy []
  |> List.sort String.compare

let consumes_nodes entry =
  Testdef.need entry.config.Testdef.family <> Testdef.No_nodes

(* Backoff: hand out the entry's next retry delay, falling back to the
   base period when the retry budget is exhausted. *)
let backoff_delay t entry ~base =
  match Resilience.Retry.next_delay entry.retry with
  | Some d -> d
  | None ->
    t.retries_exhausted <- t.retries_exhausted + 1;
    Env.tracef t.env ~category:"scheduler" "retry budget exhausted for %s"
      entry.config.Testdef.config_id;
    Resilience.Retry.reset entry.retry;
    base

let on_completed t build =
  match Jobs.config_of_build build with
  | None -> ()
  | Some config -> (
    match Hashtbl.find_opt t.entries config.Testdef.config_id with
    | None -> ()
    | Some entry ->
      if entry.in_flight && consumes_nodes entry then
        Option.iter (unmark_site_busy t) entry.site;
      entry.in_flight <- false;
      let now = Env.now t.env in
      let base = Testdef.base_period config.Testdef.family in
      (match build.Ci.Build.result with
       | Some Ci.Build.Success ->
         t.completed_success <- t.completed_success + 1;
         Resilience.Retry.reset entry.retry;
         entry.retry_src <- None;
         (match breaker_of t config.Testdef.family with
          | Some b -> Resilience.Breaker.record_success b
          | None -> ());
         entry.next_due <- now +. base
       | Some Ci.Build.Unstable ->
         t.completed_unstable <- t.completed_unstable + 1;
         entry.retry_src <- Some build.Ci.Build.number;
         if t.pol.use_backoff then
           entry.next_due <- now +. backoff_delay t entry ~base
         else entry.next_due <- now +. t.pol.poll_period
       | Some (Ci.Build.Failure | Ci.Build.Aborted | Ci.Build.Not_built) | None ->
         t.completed_failure <- t.completed_failure + 1;
         entry.retry_src <- Some build.Ci.Build.number;
         Resilience.Retry.reset entry.retry;
         (match breaker_of t config.Testdef.family with
          | Some b -> Resilience.Breaker.record_failure b ~now
          | None -> ());
         (* Re-test failures sooner: confirm the problem, then confirm
            the fix. *)
         entry.next_due <- now +. base);
      push_due t entry)

let create ?(policy = smart_policy) ?(indexed = true) env =
  let t =
    {
      env;
      pol = policy;
      indexed;
      entries = Hashtbl.create 1024;
      due = Simkit.Heap.create ();
      site_busy = Hashtbl.create 16;
      breakers = Hashtbl.create 16;
      families = [];
      running = false;
      rng = Simkit.Prng.split (Simkit.Engine.rng (Env.engine env));
      polls = 0;
      triggered = 0;
      completed_success = 0;
      completed_failure = 0;
      completed_unstable = 0;
      skipped_peak = 0;
      skipped_site_busy = 0;
      skipped_no_resources = 0;
      skipped_quarantined = 0;
      skipped_breaker_open = 0;
      retries_exhausted = 0;
      quarantined_probe = None;
    }
  in
  Ci.Server.on_build_complete env.Env.ci (fun build -> on_completed t build);
  t

let set_health_probe t probe = t.quarantined_probe <- Some probe

let precheck_of instance config =
  let parse = Oar.Expr.parse_exn in
  match Testdef.need config.Testdef.family with
  | Testdef.No_nodes -> Always
  | Testdef.One_node -> (
    match config.Testdef.family with
    | Testdef.Kwapi ->
      Free_at_least
        ( parse
            (Printf.sprintf "site='%s' and wattmeter='YES'"
               (Option.get config.Testdef.site)),
          1 )
    | _ -> Free_at_least (parse (Testdef.oar_filter config), 1))
  | Testdef.Two_nodes ->
    let site = Option.get (Testdef.effective_site config) in
    Free_at_least (parse (Printf.sprintf "site='%s'" site), 2)
  | Testdef.Site_spread ->
    let site = Option.get config.Testdef.site in
    All_free
      (List.map
         (fun spec ->
           parse (Printf.sprintf "cluster='%s'" spec.Testbed.Inventory.cluster))
         (Testbed.Inventory.clusters_of_site site))
  | Testdef.Whole_cluster ->
    let cluster = Option.get config.Testdef.cluster in
    Cluster_free
      ( Array.of_list (Testbed.Instance.nodes_of_cluster instance cluster),
        parse (Printf.sprintf "cluster='%s'" cluster) )

let enable_family t family =
  if not (List.mem family t.families) then begin
    t.families <- t.families @ [ family ];
    let now = Env.now t.env in
    let base = Testdef.base_period family in
    List.iter
      (fun config ->
        if not (Hashtbl.mem t.entries config.Testdef.config_id) then begin
          let retry =
            Resilience.Retry.create
              ~seed:(Int64.of_int (Hashtbl.hash config.Testdef.config_id))
              {
                Resilience.Retry.initial = t.pol.backoff_initial;
                max_delay = t.pol.backoff_max;
                multiplier = 2.0;
                jitter = t.pol.backoff_jitter;
                budget = t.pol.retry_budget;
              }
          in
          let entry =
            {
              config;
              site = Testdef.effective_site config;
              precheck = precheck_of t.env.Env.instance config;
              (* Stagger initial runs across one base period. *)
              next_due = now +. (Simkit.Prng.float t.rng *. base);
              retry;
              in_flight = false;
              retry_src = None;
              gen = 0;
            }
          in
          Hashtbl.replace t.entries config.Testdef.config_id entry;
          push_due t entry
        end)
      (Testdef.expand family)
  end

let enabled_families t = t.families

let due_count t time =
  Hashtbl.fold
    (fun _ e acc -> if (not e.in_flight) && e.next_due <= time then acc + 1 else acc)
    t.entries 0

let resources_available t entry =
  let oar = t.env.Env.oar in
  match entry.precheck with
  | Always -> true
  | Free_at_least (filter, n) -> Oar.Manager.free_at_least oar filter n
  | All_free filters ->
    List.for_all (fun filter -> Oar.Manager.free_at_least oar filter 1) filters
  | Cluster_free (nodes, filter) ->
    let usable =
      Array.fold_left
        (fun acc node ->
          if
            node.Testbed.Node.state <> Testbed.Node.Down
            && Testbed.Node.in_service node
          then acc + 1
          else acc)
        0 nodes
    in
    usable > 0 && Oar.Manager.free_at_least oar filter usable

let consider t entry =
  let now = Env.now t.env in
  let config = entry.config in
  let consumes_nodes = consumes_nodes entry in
  if entry.in_flight || entry.next_due > now then ()
  else if
    match breaker_of t config.Testdef.family with
    | Some b -> not (Resilience.Breaker.allow b ~now)
    | None -> false
  then begin
    (* Circuit open for this family: don't pile more work on it. *)
    t.skipped_breaker_open <- t.skipped_breaker_open + 1;
    set_next_due t entry (now +. t.pol.poll_period)
  end
  else if t.pol.avoid_peak_hours && consumes_nodes && Simkit.Calendar.is_peak_hours now
  then begin
    (* Count the skip once per due-window, and sleep through the rest of
       the user window — the entry becomes due again the moment peak
       hours end, so "run as soon as peak ends" is preserved while the
       counter stops inflating on every poll. *)
    t.skipped_peak <- t.skipped_peak + 1;
    set_next_due t entry (Simkit.Calendar.peak_end now)
  end
  else if
    t.pol.one_job_per_site && consumes_nodes
    &&
    match entry.site with
    | Some site -> site_is_busy t site
    | None -> false
  then begin
    t.skipped_site_busy <- t.skipped_site_busy + 1;
    set_next_due t entry (now +. t.pol.poll_period)
  end
  else if t.pol.precheck_resources && not (resources_available t entry) then begin
    (match t.quarantined_probe with
     | Some probe when consumes_nodes && probe config ->
       t.skipped_quarantined <- t.skipped_quarantined + 1
     | _ -> t.skipped_no_resources <- t.skipped_no_resources + 1);
    if t.pol.use_backoff then
      set_next_due t entry
        (now
        +. backoff_delay t entry ~base:(Testdef.base_period config.Testdef.family))
    else set_next_due t entry (now +. t.pol.poll_period)
  end
  else begin
    (* Mark in flight BEFORE triggering: a build body that completes
       synchronously fires the completion listener inside trigger_subset,
       and that listener must see the entry in flight to unwind it —
       marking afterwards left the entry (and its anti-affinity site)
       busy forever.  Found by Scheduler.audit_check. *)
    entry.in_flight <- true;
    if consumes_nodes then Option.iter (mark_site_busy t) entry.site;
    match
      Ci.Server.trigger_subset t.env.Env.ci ~cause:"external-scheduler"
        ?retry_of:entry.retry_src
        (Jobs.job_name config.Testdef.family)
        ~axes:[ Testdef.axes_of_config config ]
    with
    | Ci.Server.Queued _ ->
      t.triggered <- t.triggered + 1;
      Env.tracef t.env ~category:"scheduler" "triggered %s"
        config.Testdef.config_id
    | Ci.Server.Not_found | Ci.Server.Disabled | Ci.Server.Denied ->
      entry.in_flight <- false;
      if consumes_nodes then Option.iter (unmark_site_busy t) entry.site;
      set_next_due t entry (now +. t.pol.poll_period)
  end

let compare_entries a b =
  String.compare a.config.Testdef.config_id b.config.Testdef.config_id

(* Reference path (and E12 baseline): rebuild the busy table by rescanning
   every entry, then consider the whole catalog in config-id order — what
   the scheduler did before the due-queue. *)
let poll_linear t =
  Hashtbl.reset t.site_busy;
  Hashtbl.iter
    (fun _ e ->
      if e.in_flight && consumes_nodes e then Option.iter (mark_site_busy t) e.site)
    t.entries;
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort compare_entries
  |> List.iter (consider t)

(* Indexed path: pop the due prefix of the heap.  Deterministic order:
   ties (and everything due in the same poll window) are considered in
   config-id order, exactly like the linear scan — non-due entries were
   no-ops there. *)
let poll_indexed t =
  let now = Env.now t.env in
  let rec drain acc =
    match Simkit.Heap.peek t.due with
    | Some (_, (e, gen)) when gen <> e.gen || e.in_flight ->
      (* Stale copy superseded by a later reschedule. *)
      ignore (Simkit.Heap.pop t.due);
      drain acc
    | Some (key, (e, _)) when key <= now ->
      ignore (Simkit.Heap.pop t.due);
      drain (e :: acc)
    | Some _ | None -> acc
  in
  drain [] |> List.sort compare_entries |> List.iter (consider t)

let poll t =
  t.polls <- t.polls + 1;
  if t.indexed then poll_indexed t else poll_linear t

let start t =
  if not t.running then begin
    t.running <- true;
    Simkit.Engine.every (Env.engine t.env) ~label:"scheduler"
      ~period:t.pol.poll_period ~jitter:30.0
      (fun _ ->
        if t.running then poll t;
        t.running)
  end

let stop t = t.running <- false

(* Self-check for Simkit.Audit: recompute every derived structure the
   hot path maintains incrementally and compare against ground truth. *)
let audit_check t =
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* 1. site_busy counters vs a recount over the entries. *)
  let recount = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ e ->
      if e.in_flight && consumes_nodes e then
        Option.iter
          (fun site ->
            Hashtbl.replace recount site
              (1 + Option.value ~default:0 (Hashtbl.find_opt recount site)))
          e.site)
    t.entries;
  List.iter
    (fun site ->
      let cached = Option.value ~default:0 (Hashtbl.find_opt t.site_busy site) in
      let truth = Option.value ~default:0 (Hashtbl.find_opt recount site) in
      if cached <> truth then
        problem "site_busy[%s] = %d but %d node-consuming tests are in flight"
          site cached truth)
    (List.sort_uniq String.compare
       (Hashtbl.fold (fun s _ acc -> s :: acc) t.site_busy []
       @ Hashtbl.fold (fun s _ acc -> s :: acc) recount []));
  (* 2. every in-flight entry has an unfinished build on the CI server. *)
  Hashtbl.iter
    (fun _ e ->
      if e.in_flight then begin
        let job = Jobs.job_name e.config.Testdef.family in
        match
          Ci.Server.last_of_axes t.env.Env.ci job
            ~axes:(Testdef.axes_of_config e.config)
        with
        | None ->
          problem "%s is marked in-flight but has no build at all"
            e.config.Testdef.config_id
        | Some b when Ci.Build.is_finished b ->
          problem "%s is marked in-flight but its last build #%d is finished"
            e.config.Testdef.config_id b.Ci.Build.number
        | Some _ -> ()
      end)
    t.entries;
  (* 3. indexed only: every waiting entry has its live generation in the
     due-queue at exactly next_due (the linear scan has no index). *)
  if t.indexed then begin
    let live = Hashtbl.create 1024 in
    List.iter
      (fun (key, (e, gen)) ->
        if gen = e.gen then Hashtbl.replace live e.config.Testdef.config_id key)
      (Simkit.Heap.to_list t.due);
    Hashtbl.iter
      (fun id e ->
        if not e.in_flight then
          match Hashtbl.find_opt live id with
          | None -> problem "%s is waiting but absent from the due-queue" id
          | Some key when key <> e.next_due ->
            problem "%s due-queue key %g disagrees with next_due %g" id key
              e.next_due
          | Some _ -> ())
      t.entries
  end;
  match !problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.rev ps))
