let job_name family = "test_" ^ Testdef.family_to_string family

let family_of_job name =
  if String.length name > 5 && String.sub name 0 5 = "test_" then
    Testdef.family_of_string (String.sub name 5 (String.length name - 5))
  else None

let config_of_build build =
  match family_of_job build.Ci.Build.job_name with
  | None -> None
  | Some family -> Testdef.config_of_axes family build.Ci.Build.axes

let define_all ?(on_outcome = fun ~build:_ _ -> ()) env ~on_evidence =
  List.iter
    (fun family ->
      let body ~engine:_ ~build ~finish =
        match Testdef.config_of_axes family build.Ci.Build.axes with
        | None ->
          Ci.Build.append_log build "unknown matrix combination";
          finish Ci.Build.Failure
        | Some config ->
          Scripts.run env config ~build ~finish:(fun outcome ->
              List.iter on_evidence outcome.Scripts.evidences;
              on_outcome ~build outcome;
              finish outcome.Scripts.result)
      in
      (* Keep at least a few complete sweeps of the matrix in history, or
         the status page loses whole combinations (448 for environments). *)
      let retention = Stdlib.max 400 (3 * List.length (Testdef.expand family)) in
      let job =
        Ci.Jobdef.matrix
          ~description:
            (Printf.sprintf "%s checks (%s)"
               (Testdef.family_to_string family)
               (Testdef.category family))
          ~retention ~name:(job_name family)
          ~axes:(Testdef.matrix_axes family) body
      in
      Ci.Server.define env.Env.ci job)
    Testdef.all_families

let total_configurations () =
  List.fold_left
    (fun acc family -> acc + List.length (Testdef.expand family))
    0 Testdef.all_families
