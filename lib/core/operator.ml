type config = {
  fix_capacity_per_day : float;
  triage_delay : float;
  maintenance_period : float;
  maintenance_fault_rate : float;
  complaint_rate_per_day : float;
  prioritize_reopened : bool;
}

let default_config =
  {
    fix_capacity_per_day = 0.72;
    triage_delay = 2.0 *. Simkit.Calendar.day;
    maintenance_period = 10.0 *. Simkit.Calendar.day;
    maintenance_fault_rate = 0.8;
    complaint_rate_per_day = 0.05;
    prioritize_reopened = false;
  }

type t = {
  env : Env.t;
  tracker : Bugtracker.t;
  cfg : config;
  rng : Simkit.Prng.t;
  mutable running : bool;
  mutable credit : float;  (* accumulated fixing capacity *)
  mutable fixed : int;
  mutable windows : int;
  mutable complaints : int;
}

let bugs_fixed t = t.fixed
let maintenance_windows t = t.windows
let complaints_handled t = t.complaints
let stop t = t.running <- false

let fix_bug t bug =
  let faults = Env.faults t.env in
  let now = Env.now t.env in
  let history = Testbed.Faults.history faults in
  List.iter
    (fun fault_id ->
      match
        List.find_opt (fun f -> f.Testbed.Faults.id = fault_id) history
      with
      | Some fault -> Testbed.Faults.repair faults ~now fault
      | None -> ())
    bug.Bugtracker.fault_ids;
  Bugtracker.mark_fixed t.tracker ~now bug;
  Env.tracef t.env ~category:"operator" "fixed bug #%d [%s]" bug.Bugtracker.id
    bug.Bugtracker.category;
  (* A repaired description change must reach the OAR database too. *)
  Oar.Manager.refresh_properties t.env.Env.oar;
  t.fixed <- t.fixed + 1

let fixing_sweep t =
  let now = Env.now t.env in
  let period_days = 6.0 /. 24.0 in
  t.credit <- t.credit +. (t.cfg.fix_capacity_per_day *. period_days);
  let workable =
    Bugtracker.open_bugs t.tracker
    |> List.filter (fun b -> now -. b.Bugtracker.filed_at >= t.cfg.triage_delay)
  in
  let workable =
    (* Regressions first: a bug that keeps coming back blocks trust in
       the fix loop more than a fresh filing does.  Off by default so
       historical campaigns replay bit-for-bit. *)
    if t.cfg.prioritize_reopened then
      List.stable_sort
        (fun a b ->
          match compare b.Bugtracker.reopens a.Bugtracker.reopens with
          | 0 -> compare a.Bugtracker.filed_at b.Bugtracker.filed_at
          | c -> c)
        workable
    else workable
  in
  let rec work = function
    | [] -> ()
    | bug :: rest ->
      if t.credit >= 1.0 then begin
        t.credit <- t.credit -. 1.0;
        fix_bug t bug;
        work rest
      end
  in
  work workable;
  (* Capacity does not accumulate without bound: idle operators do other
     work. *)
  t.credit <- Float.min t.credit 3.0

let maintenance_window t =
  t.windows <- t.windows + 1;
  let faults = Env.faults t.env in
  let now = Env.now t.env in
  let n = Simkit.Dist.poisson t.rng ~mean:t.cfg.maintenance_fault_rate in
  let drift_kinds =
    [| Testbed.Faults.Cpu_cstates; Testbed.Faults.Cpu_hyperthreading;
       Testbed.Faults.Cpu_turbo; Testbed.Faults.Cpu_governor;
       Testbed.Faults.Bios_drift; Testbed.Faults.Disk_firmware;
       Testbed.Faults.Ram_dimm_loss; Testbed.Faults.Refapi_desync |]
  in
  for _ = 1 to n do
    ignore (Testbed.Faults.inject faults ~now (Simkit.Prng.choose t.rng drift_kinds))
  done

let complaint_sweep t =
  (* Once in a while a user reports a long-standing undetected problem. *)
  if Simkit.Prng.chance t.rng t.cfg.complaint_rate_per_day then begin
    let faults = Env.faults t.env in
    let now = Env.now t.env in
    let old_undetected =
      Testbed.Faults.active faults
      |> List.filter (fun f ->
             f.Testbed.Faults.detected_at = None
             && now -. f.Testbed.Faults.injected_at > 14.0 *. Simkit.Calendar.day)
    in
    match old_undetected with
    | [] -> ()
    | fault :: _ ->
      Testbed.Faults.repair faults ~now fault;
      Oar.Manager.refresh_properties t.env.Env.oar;
      t.complaints <- t.complaints + 1
  end

let start ?(config = default_config) env tracker =
  let t =
    {
      env;
      tracker;
      cfg = config;
      rng = Simkit.Prng.split (Simkit.Engine.rng (Env.engine env));
      running = true;
      credit = 0.0;
      fixed = 0;
      windows = 0;
      complaints = 0;
    }
  in
  let engine = Env.engine env in
  Simkit.Engine.every engine ~period:(6.0 *. Simkit.Calendar.hour) (fun _ ->
      if t.running then fixing_sweep t;
      t.running);
  Simkit.Engine.every engine ~period:config.maintenance_period
    ~jitter:Simkit.Calendar.day (fun _ ->
      if t.running then maintenance_window t;
      t.running);
  Simkit.Engine.every engine ~period:Simkit.Calendar.day (fun _ ->
      if t.running then complaint_sweep t;
      t.running);
  t
