(** Wiring of the test catalog into the CI server.

    One matrix job per family, named [test_<family>], whose axes span the
    family's configurations (the paper's "test_environments: 14 images x
    32 clusters = 448 configurations").  Build bodies run the family's
    script; structured evidence is forwarded to the given sink (the bug
    tracker). *)

val job_name : Testdef.family -> string

val family_of_job : string -> Testdef.family option

val define_all :
  ?on_outcome:(build:Ci.Build.t -> Scripts.outcome -> unit) ->
  Env.t ->
  on_evidence:(Bugtracker.evidence -> unit) ->
  unit
(** Define the 16 matrix jobs on the environment's CI server.  No cron
    trigger is attached: the external scheduler decides when each
    combination runs.  [on_outcome] additionally receives the whole
    outcome with its build — the triage pipeline's hook; it runs after
    [on_evidence] and before the build result is finalized. *)

val config_of_build : Ci.Build.t -> Testdef.config option
(** Recover the catalog configuration a build executes. *)

val total_configurations : unit -> int
(** Sum of matrix sizes = 751. *)
