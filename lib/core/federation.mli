(** Federation sharding: deterministic parallel discrete-event
    simulation across testbeds.

    The paper validates one 894-node testbed; a federation run simulates
    N Grid'5000-class peers (cloned and perturbed from the reference by
    {!Testbed.Fleet}), each owning a complete private simulation — its
    own {!Simkit.Engine} arena, scheduler, OAR manager, CI server and
    fault/health state ({!Campaign.sim}).  Members advance independently
    between cross-testbed synchronization points and couple only through
    the coordinator, which runs at conservative lookahead barriers every
    [lookahead] seconds of simulated time:

    - {b backbone faults}: federation-wide network events partitioning
      the same site on every member simultaneously;
    - {b kavlan global VLANs}: members periodically request one of the
      [global_vlans] federation-spanning VLANs; the coordinator
      arbitrates grants in member order and granted members run a
      federation link test;
    - {b federation health audits}: periodic aggregation of in-service
      nodes and active faults across all members.

    {b Determinism.}  Every coordination decision is a function of (a)
    the federation seed, through streams derived statelessly per member
    ({!Simkit.Prng.derive}), and (b) member state at barrier times —
    which is identical however the windows in between were serviced,
    because members share no mutable state between barriers and all
    coordination effects are scheduled strictly after the barrier that
    computes them (conservative lookahead).  A federation run therefore
    produces byte-identical reports for any shard count and any driver,
    which [test/test_federation.ml] proves differentially. *)

type driver =
  | Sequential  (** one thread, shards serviced round-robin each window *)
  | Interleaved of int64
      (** like [Sequential] but the member service order is re-shuffled
          every window from the given seed — the differential harness's
          interleaving oracle *)
  | Parallel
      (** one [Domain] per shard per window; falls back to the
          sequential semantics (and results) when only one shard is
          configured *)
  | Reference
      (** drive the whole federation through a single unsharded global
          event loop: always execute the globally earliest event across
          all members, re-establishing the cross-testbed coupling state
          after every event as a zero-lookahead coordinator must.  Same
          results, no window batching — the baseline the federation
          benchmark (E18) measures sharding against *)

val driver_to_string : driver -> string

type config = {
  testbeds : int;  (** federation size N *)
  shards : int;  (** shard count K; member [i] belongs to shard [i mod K] *)
  names : string list;
      (** explicit member ids; [[]] (default) auto-generates
          ["tb00"].. — duplicates are rejected (and linted, L015) *)
  lookahead : float;
      (** barrier window in simulated seconds; must be at least
          {!min_cross_latency} (linted, L015) *)
  seed : int64;  (** federation master seed (member synthesis + coordination) *)
  base : Campaign.config;
      (** member campaign template; each member gets a derived seed and
          perturbed executors / fault rate / workload on top of it *)
  ranges : Testbed.Fleet.ranges;  (** perturbation ranges for synthesis *)
  backbone_faults_per_year : float;
      (** Poisson rate of federation-wide backbone events *)
  backbone_outage_hours : float;  (** duration of each backbone partition *)
  global_vlans : int;  (** concurrently grantable federation-wide VLANs *)
  vlan_request_period : float;
      (** how often each member requests a global VLAN (seconds) *)
  audit_period : float;  (** federation-wide health audit cadence (seconds) *)
  driver : driver;
}

val default_config : config
(** 10 testbeds, 4 shards, 6-hour lookahead, 2-month members cloned
    from {!Campaign.default_config}, perturbed by
    {!Testbed.Fleet.default_ranges}, ~6 backbone events/year, 3 global
    VLANs, sequential driver. *)

val min_cross_latency : float
(** Smallest latency of any cross-testbed effect (seconds): coordination
    decisions taken at a barrier reach member engines no earlier than
    this, which is what makes a lookahead window of at least this size
    conservative.  Both the VLAN grant latency and the earliest backbone
    onset equal it. *)

val synthesize : config -> Testbed.Fleet.spec list
(** The federation's member specs ({!Testbed.Fleet.synthesize} with this
    configuration's seed, count, names and ranges). *)

val member_campaign : config -> Testbed.Fleet.spec -> Campaign.config
(** The campaign configuration member [spec] runs: [base] with the
    member's derived seed, executor count, biased fault arrival rate and
    scaled user workload. *)

type coordination = {
  barriers : int;  (** synchronization points executed *)
  backbone_faults : int;  (** federation-wide backbone events injected *)
  vlan_requests : int;
  vlan_grants : int;
  vlan_denials : int;  (** requests bounced because all VLANs were busy *)
  link_tests : int;  (** federation link tests run by granted members *)
  link_failures : int;
  audits : int;  (** federation-wide health audits *)
  min_in_service : int;
      (** smallest federation-wide in-service node count an audit saw
          (total node count when no audit ran) *)
  mean_active_faults : float;
      (** mean federation-wide active faults over audits (nan when no
          audit ran) *)
}

type member_report = {
  spec : Testbed.Fleet.spec;
  report : Campaign.report;
  events : int;  (** events executed by the member's engine *)
}

type report = {
  fed_cfg : config;
  members : member_report list;
  coordination : coordination;
  aggregate_builds : int;
  aggregate_successes : int;
  aggregate_success_ratio : float;
  aggregate_bugs_filed : int;
  aggregate_bugs_fixed : int;
  aggregate_faults_injected : int;
  aggregate_faults_detected : int;
  aggregate_faults_repaired : int;
  aggregate_workload_jobs : int;
  aggregate_nodes : int;
  events_total : int;
}

val run : config -> report
(** Execute the federation to its horizon.
    @raise Invalid_argument on an invalid configuration (non-positive
    testbeds/shards/lookahead, more shards than testbeds, duplicate
    member names) — {!Lint.check_federation} reports the same problems
    statically. *)

val report_to_json : ?full:bool -> report -> Simkit.Json.t
(** Machine-readable report.  [full] (default [false]) embeds every
    member's complete campaign report ({!Report.to_json}) — the
    differential test harness compares that serialization byte for byte
    across shard counts and drivers; the summary form keeps one line of
    headline figures per member. *)

val render : report -> string
(** Plain-text federation overview: per-member table plus coordination
    and aggregate summaries. *)
