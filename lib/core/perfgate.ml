type metrics = {
  events_per_s : float;
  minor_words_per_event : float;
  p95_step_us : float;
}

let metrics_of_json json =
  let num path value =
    match value with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing numeric field %S" path)
  in
  let ( let* ) r f = Result.bind r f in
  let* events_per_s = num "events_per_s" (Simkit.Json.float_member "events_per_s" json) in
  let* minor_words_per_event =
    num "minor_words_per_event" (Simkit.Json.float_member "minor_words_per_event" json)
  in
  let* p95_step_us =
    match Simkit.Json.member "step_latency_us" json with
    | Some latency -> num "step_latency_us.p95" (Simkit.Json.float_member "p95" latency)
    | None -> Error "missing object \"step_latency_us\""
  in
  Ok { events_per_s; minor_words_per_event; p95_step_us }

let metrics_of_string text =
  match Simkit.Json.of_string text with
  | Error e -> Error e
  | Ok json -> metrics_of_json json

type serve_metrics = {
  reads_per_s : float;
  hit_ratio : float;
  p99_staleness_s : float;
}

let serve_metrics_of_json json =
  let num path value =
    match value with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing numeric field %S" path)
  in
  let ( let* ) r f = Result.bind r f in
  let* reads_per_s = num "reads_per_s" (Simkit.Json.float_member "reads_per_s" json) in
  let* hit_ratio = num "hit_ratio" (Simkit.Json.float_member "hit_ratio" json) in
  let* p99_staleness_s =
    match Simkit.Json.member "staleness_s" json with
    | Some staleness -> num "staleness_s.p99" (Simkit.Json.float_member "p99" staleness)
    | None -> Error "missing object \"staleness_s\""
  in
  Ok { reads_per_s; hit_ratio; p99_staleness_s }

let serve_metrics_of_string text =
  match Simkit.Json.of_string text with
  | Error e -> Error e
  | Ok json -> serve_metrics_of_json json

type federation_metrics = {
  speedup : float;
  identical : bool;
  sharded_events_per_s : float;
  reference_events_per_s : float;
}

let federation_metrics_of_json json =
  let num path value =
    match value with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing numeric field %S" path)
  in
  let ( let* ) r f = Result.bind r f in
  let* speedup = num "speedup" (Simkit.Json.float_member "speedup" json) in
  let* identical =
    match Simkit.Json.member "identical_across_shards" json with
    | Some (Simkit.Json.Bool b) -> Ok b
    | Some _ -> Error "field \"identical_across_shards\" is not a boolean"
    | None -> Error "missing boolean field \"identical_across_shards\""
  in
  let* sharded_events_per_s =
    num "sharded_events_per_s" (Simkit.Json.float_member "sharded_events_per_s" json)
  in
  let* reference_events_per_s =
    num "reference_events_per_s"
      (Simkit.Json.float_member "reference_events_per_s" json)
  in
  Ok { speedup; identical; sharded_events_per_s; reference_events_per_s }

let federation_metrics_of_string text =
  match Simkit.Json.of_string text with
  | Error e -> Error e
  | Ok json -> federation_metrics_of_json json

type lint_metrics = {
  wall_s : float;
  configurations : int;
  diagnostics : int;
}

let lint_metrics_of_json json =
  let ( let* ) r f = Result.bind r f in
  let* lint =
    match Simkit.Json.member "lint" json with
    | Some l -> Ok l
    | None -> Error "missing object \"lint\""
  in
  let* wall_s =
    match Simkit.Json.float_member "wall_s" lint with
    | Some f -> Ok f
    | None -> Error "missing numeric field \"lint.wall_s\""
  in
  let* configurations =
    match Simkit.Json.int_member "configurations" lint with
    | Some i -> Ok i
    | None -> Error "missing integer field \"lint.configurations\""
  in
  let* diagnostics =
    match Simkit.Json.int_member "diagnostics" lint with
    | Some i -> Ok i
    | None -> Error "missing integer field \"lint.diagnostics\""
  in
  Ok { wall_s; configurations; diagnostics }

let lint_metrics_of_string text =
  match Simkit.Json.of_string text with
  | Error e -> Error e
  | Ok json -> lint_metrics_of_json json

type verdict = {
  ok : bool;
  lines : string list;
}

let default_threshold_pct = 20.0

let check ?threshold_pct ~baseline ~current () =
  let threshold_pct = Option.value threshold_pct ~default:default_threshold_pct in
  let limit = baseline.p95_step_us *. (1.0 +. (threshold_pct /. 100.0)) in
  let ok = current.p95_step_us <= limit in
  let delta_pct base cur = if base = 0.0 then 0.0 else (cur -. base) /. base *. 100.0 in
  let lines =
    [ Printf.sprintf "p95 step latency: baseline %.2f us, current %.2f us (%+.1f%%, limit %.2f us at +%.0f%%)"
        baseline.p95_step_us current.p95_step_us
        (delta_pct baseline.p95_step_us current.p95_step_us)
        limit threshold_pct;
      Printf.sprintf "events/s:         baseline %.0f, current %.0f (%+.1f%%, informational)"
        baseline.events_per_s current.events_per_s
        (delta_pct baseline.events_per_s current.events_per_s);
      Printf.sprintf "minor words/evt:  baseline %.1f, current %.1f (informational)"
        baseline.minor_words_per_event current.minor_words_per_event;
      (if ok then "perfgate: PASS" else "perfgate: FAIL (p95 step latency regressed beyond threshold)") ]
  in
  { ok; lines }

let check_serve ?threshold_pct ~baseline ~current () =
  let threshold_pct = Option.value threshold_pct ~default:default_threshold_pct in
  let delta_pct base cur = if base = 0.0 then 0.0 else (cur -. base) /. base *. 100.0 in
  (* p99 staleness is simulation-deterministic, so the same allowance
     that absorbs runner noise on the engine gate here only tolerates a
     deliberate behaviour change; any regression beyond it fails. *)
  let limit =
    if baseline.p99_staleness_s = 0.0 then 0.0
    else baseline.p99_staleness_s *. (1.0 +. (threshold_pct /. 100.0))
  in
  let ok = current.p99_staleness_s <= limit in
  let lines =
    [ Printf.sprintf
        "p99 staleness:    baseline %.2f s, current %.2f s (%+.1f%%, limit %.2f s at +%.0f%%)"
        baseline.p99_staleness_s current.p99_staleness_s
        (delta_pct baseline.p99_staleness_s current.p99_staleness_s)
        limit threshold_pct;
      Printf.sprintf "reads/s:          baseline %.0f, current %.0f (%+.1f%%, informational)"
        baseline.reads_per_s current.reads_per_s
        (delta_pct baseline.reads_per_s current.reads_per_s);
      Printf.sprintf "cache hit ratio:  baseline %.4f, current %.4f (informational)"
        baseline.hit_ratio current.hit_ratio;
      (if ok then "perfgate(serve): PASS"
       else "perfgate(serve): FAIL (p99 staleness regressed beyond threshold)") ]
  in
  { ok; lines }

(* The deep analysis runs in milliseconds, far below runner noise, so
   the relative threshold alone would flap; the gate only bites once the
   catalog-wide lint wall clears an absolute floor worth caring about. *)
let lint_floor_s = 0.25

let check_lint ?threshold_pct ~baseline ~current () =
  let threshold_pct = Option.value threshold_pct ~default:default_threshold_pct in
  let delta_pct base cur = if base = 0.0 then 0.0 else (cur -. base) /. base *. 100.0 in
  let limit =
    Float.max lint_floor_s (baseline.wall_s *. (1.0 +. (threshold_pct /. 100.0)))
  in
  let ok = current.wall_s <= limit in
  let lines =
    [ Printf.sprintf
        "lint wall:        baseline %.4f s, current %.4f s (%+.1f%%, limit %.2f s: max of +%.0f%% and the %.2f s floor)"
        baseline.wall_s current.wall_s
        (delta_pct baseline.wall_s current.wall_s)
        limit threshold_pct lint_floor_s;
      Printf.sprintf "configurations:   baseline %d, current %d (informational)"
        baseline.configurations current.configurations;
      Printf.sprintf "diagnostics:      baseline %d, current %d (informational)"
        baseline.diagnostics current.diagnostics;
      (if ok then "perfgate(lint): PASS"
       else
         "perfgate(lint): FAIL (catalog-wide lint wall regressed beyond \
          threshold and floor)") ]
  in
  { ok; lines }

let check_federation ?threshold_pct ~baseline ~current () =
  let threshold_pct = Option.value threshold_pct ~default:default_threshold_pct in
  let delta_pct base cur = if base = 0.0 then 0.0 else (cur -. base) /. base *. 100.0 in
  (* Correctness first: sharding that is fast but no longer byte-identical
     to the unsharded reference is a broken optimization, threshold or
     not. *)
  let floor = baseline.speedup *. (1.0 -. (threshold_pct /. 100.0)) in
  let fast_enough = current.speedup >= floor in
  let ok = current.identical && fast_enough in
  let lines =
    [ Printf.sprintf
        "identical runs:   baseline %b, current %b (hard requirement)"
        baseline.identical current.identical;
      Printf.sprintf
        "speedup:          baseline %.2fx, current %.2fx (%+.1f%%, floor %.2fx at -%.0f%%)"
        baseline.speedup current.speedup
        (delta_pct baseline.speedup current.speedup)
        floor threshold_pct;
      Printf.sprintf
        "sharded events/s: baseline %.0f, current %.0f (%+.1f%%, informational)"
        baseline.sharded_events_per_s current.sharded_events_per_s
        (delta_pct baseline.sharded_events_per_s current.sharded_events_per_s);
      Printf.sprintf
        "reference ev/s:   baseline %.0f, current %.0f (informational)"
        baseline.reference_events_per_s current.reference_events_per_s;
      (if ok then "perfgate(federation): PASS"
       else if not current.identical then
         "perfgate(federation): FAIL (sharded runs are not byte-identical \
          to the unsharded reference)"
       else
         "perfgate(federation): FAIL (sharding speedup regressed beyond \
          threshold)") ]
  in
  { ok; lines }
