type evidence = {
  signature : string;
  summary : string;
  category : string;
  source_test : string;
  fault_ids : int list;
}

type status = Open | Fixed

type bug = {
  id : int;
  signature : string;
  summary : string;
  category : string;
  first_test : string;
  filed_at : float;
  mutable fault_ids : int list;
  mutable occurrences : int;
  mutable status : status;
  mutable fixed_at : float option;
  mutable last_seen : float;
  mutable reopens : int;
  mutable recent : evidence list;  (* newest first; ring-bounded with limits *)
  series : Simkit.Timeseries.t option;
}

type limits = {
  ring_size : int;
  max_live : int;
  min_idle : float;
  series_cadence : float;
  series_points : int;
}

let default_limits =
  {
    ring_size = 8;
    max_live = 50_000;
    min_idle = 6.0 *. 3600.0;
    series_cadence = 24.0 *. 3600.0;
    series_points = 256;
  }

type event =
  | Filed of bug
  | Refiled of bug
  | Reopened of bug
  | Marked_fixed of bug
  | Evicted of bug
  | Resurrected of bug

type stats = {
  live : int;
  filed_total : int;
  fixed_total : int;
  evicted : int;
  resurrected : int;
  tombstoned_occurrences : int;
  peak_live : int;
}

type t = {
  by_signature : (string, bug) Hashtbl.t;
  mutable bugs : bug list;  (* live bugs, newest first *)
  mutable next_id : int;
  limits : limits option;
  tombstones : (string, bug) Hashtbl.t;  (* evicted cold bugs, rings cleared *)
  mutable live_count : int;
  mutable filed_total : int;  (* distinct signatures ever filed (live + evicted) *)
  mutable fixed_live : int;
  mutable fixed_tomb : int;
  mutable evicted_count : int;
  mutable resurrected_count : int;
  mutable tombstone_occ : int;
  mutable peak_live : int;
  mutable listeners : (event -> unit) list;
}

let create ?limits () =
  (match limits with
   | Some l ->
     if l.ring_size <= 0 then invalid_arg "Bugtracker.create: ring_size must be positive";
     if l.max_live <= 0 then invalid_arg "Bugtracker.create: max_live must be positive";
     if l.min_idle < 0.0 then invalid_arg "Bugtracker.create: min_idle must be non-negative";
     if l.series_cadence <= 0.0 then
       invalid_arg "Bugtracker.create: series_cadence must be positive";
     if l.series_points < 2 then
       invalid_arg "Bugtracker.create: series_points must be at least 2"
   | None -> ());
  {
    by_signature = Hashtbl.create 256;
    bugs = [];
    next_id = 1;
    limits;
    tombstones = Hashtbl.create 64;
    live_count = 0;
    filed_total = 0;
    fixed_live = 0;
    fixed_tomb = 0;
    evicted_count = 0;
    resurrected_count = 0;
    tombstone_occ = 0;
    peak_live = 0;
    listeners = [];
  }

let on_event t f = t.listeners <- t.listeners @ [ f ]
let emit t event = List.iter (fun f -> f event) t.listeners

let record_occurrence t ~now (evidence : evidence) bug =
  bug.last_seen <- now;
  (match t.limits with
   | None -> ()
   | Some l ->
     let ring = evidence :: bug.recent in
     bug.recent <-
       (if List.length ring > l.ring_size then List.filteri (fun i _ -> i < l.ring_size) ring
        else ring));
  match bug.series with
  | Some series -> Simkit.Timeseries.add_binned series ~time:now 1.0
  | None -> ()

let reopen t bug =
  bug.status <- Open;
  bug.fixed_at <- None;
  bug.reopens <- bug.reopens + 1;
  if Hashtbl.mem t.by_signature bug.signature then t.fixed_live <- t.fixed_live - 1
  else t.fixed_tomb <- t.fixed_tomb - 1

(* Insert a resurrected bug back into the live list at its id-ordered
   position, so [all] keeps returning bugs in filing order. *)
let insert_by_id bugs bug =
  (* newest first = descending id *)
  let rec go = function
    | [] -> [ bug ]
    | b :: rest as l -> if b.id < bug.id then bug :: l else b :: go rest
  in
  go bugs

(* Cold-bug eviction: batched, down to 90% of the cap so the store is
   not re-sorted on every filing.  Evicted bugs become tombstones that
   keep their occurrence counts (dedup stays correct), with an explicit
   counter — nothing is silently dropped. *)
let evict_bug t bug =
  Hashtbl.remove t.by_signature bug.signature;
  bug.recent <- [];
  Hashtbl.replace t.tombstones bug.signature bug;
  t.live_count <- t.live_count - 1;
  t.evicted_count <- t.evicted_count + 1;
  t.tombstone_occ <- t.tombstone_occ + bug.occurrences;
  if bug.status = Fixed then begin
    t.fixed_live <- t.fixed_live - 1;
    t.fixed_tomb <- t.fixed_tomb + 1
  end;
  emit t (Evicted bug)

let maybe_evict t ~now =
  match t.limits with
  | None -> ()
  | Some l ->
    if t.live_count > l.max_live then begin
      let target = Stdlib.max 1 (l.max_live * 9 / 10) in
      let coldest_first =
        List.sort
          (fun a b ->
            match compare a.last_seen b.last_seen with 0 -> compare a.id b.id | c -> c)
          t.bugs
      in
      let evicted = Hashtbl.create 64 in
      (* First pass respects the idle grace period; the second ignores it
         if hot bugs alone exceed the cap, so the bound is always met. *)
      let sweep ~respect_idle =
        List.iter
          (fun bug ->
            if
              t.live_count > target
              && (not (Hashtbl.mem evicted bug.id))
              && ((not respect_idle) || now -. bug.last_seen >= l.min_idle)
            then begin
              Hashtbl.replace evicted bug.id ();
              evict_bug t bug
            end)
          coldest_first
      in
      sweep ~respect_idle:true;
      if t.live_count > l.max_live then sweep ~respect_idle:false;
      if Hashtbl.length evicted > 0 then
        t.bugs <- List.filter (fun b -> not (Hashtbl.mem evicted b.id)) t.bugs
    end

let file t ~now (evidence : evidence) =
  let result =
    match Hashtbl.find_opt t.by_signature evidence.signature with
    | Some bug ->
      bug.occurrences <- bug.occurrences + 1;
      bug.fault_ids <-
        List.sort_uniq compare (evidence.fault_ids @ bug.fault_ids);
      let reopened = bug.status = Fixed in
      if reopened then
        (* Regression: the problem came back. *)
        reopen t bug;
      record_occurrence t ~now evidence bug;
      if reopened then emit t (Reopened bug);
      emit t (Refiled bug);
      `Duplicate bug
    | None -> (
      match Hashtbl.find_opt t.tombstones evidence.signature with
      | Some bug ->
        (* Resurrection: an evicted signature recurred.  The tombstone
           count carries over, so dedup and occurrence totals behave as
           if the bug had never left the store. *)
        Hashtbl.remove t.tombstones evidence.signature;
        t.tombstone_occ <- t.tombstone_occ - bug.occurrences;
        bug.occurrences <- bug.occurrences + 1;
        bug.fault_ids <-
          List.sort_uniq compare (evidence.fault_ids @ bug.fault_ids);
        let reopened = bug.status = Fixed in
        (* [reopen] sees the bug as non-live here, so the fixed-tombstone
           counter is the one decremented — which is where this bug's
           Fixed status was accounted. *)
        if reopened then reopen t bug;
        Hashtbl.replace t.by_signature evidence.signature bug;
        t.bugs <- insert_by_id t.bugs bug;
        t.live_count <- t.live_count + 1;
        t.resurrected_count <- t.resurrected_count + 1;
        record_occurrence t ~now evidence bug;
        if reopened then emit t (Reopened bug);
        emit t (Resurrected bug);
        `Duplicate bug
      | None ->
        let bug =
          {
            id = t.next_id;
            signature = evidence.signature;
            summary = evidence.summary;
            category = evidence.category;
            first_test = evidence.source_test;
            filed_at = now;
            fault_ids = List.sort_uniq compare evidence.fault_ids;
            occurrences = 1;
            status = Open;
            fixed_at = None;
            last_seen = now;
            reopens = 0;
            recent = [];
            series =
              Option.map
                (fun l ->
                  Simkit.Timeseries.create ~capacity:8 ~cadence:l.series_cadence
                    ~max_points:l.series_points
                    ~name:(Printf.sprintf "bug-%d" t.next_id)
                    ())
                t.limits;
          }
        in
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.by_signature evidence.signature bug;
        t.bugs <- bug :: t.bugs;
        t.live_count <- t.live_count + 1;
        t.filed_total <- t.filed_total + 1;
        record_occurrence t ~now evidence bug;
        emit t (Filed bug);
        `New bug)
  in
  maybe_evict t ~now;
  t.peak_live <- Stdlib.max t.peak_live t.live_count;
  result

let all t = List.rev t.bugs
let open_bugs t = List.filter (fun b -> b.status = Open) (all t)
let fixed_bugs t = List.filter (fun b -> b.status = Fixed) (all t)
let find t ~signature = Hashtbl.find_opt t.by_signature signature

let tombstoned t =
  Hashtbl.fold (fun _ bug acc -> bug :: acc) t.tombstones []
  |> List.sort (fun a b -> compare a.id b.id)

let occurrences_of t ~signature =
  match Hashtbl.find_opt t.by_signature signature with
  | Some bug -> bug.occurrences
  | None -> (
    match Hashtbl.find_opt t.tombstones signature with
    | Some bug -> bug.occurrences
    | None -> 0)

let mark_fixed t ~now bug =
  if bug.status = Open then begin
    bug.status <- Fixed;
    bug.fixed_at <- Some now;
    if Hashtbl.mem t.by_signature bug.signature then
      t.fixed_live <- t.fixed_live + 1
    else t.fixed_tomb <- t.fixed_tomb + 1;
    emit t (Marked_fixed bug)
  end

let counts t = (t.filed_total, t.fixed_live + t.fixed_tomb)

(* The original O(n) scans, kept as the reference oracle the property
   tests compare the maintained counters against. *)
let counts_scan t =
  let filed = List.length t.bugs + Hashtbl.length t.tombstones in
  let fixed =
    List.length (fixed_bugs t)
    + Hashtbl.fold
        (fun _ b acc -> if b.status = Fixed then acc + 1 else acc)
        t.tombstones 0
  in
  (filed, fixed)

let stats t =
  {
    live = t.live_count;
    filed_total = t.filed_total;
    fixed_total = t.fixed_live + t.fixed_tomb;
    evicted = t.evicted_count;
    resurrected = t.resurrected_count;
    tombstoned_occurrences = t.tombstone_occ;
    peak_live = t.peak_live;
  }

let by_category t =
  let table = Hashtbl.create 16 in
  List.iter
    (fun bug ->
      let filed, fixed = Option.value ~default:(0, 0) (Hashtbl.find_opt table bug.category) in
      Hashtbl.replace table bug.category
        (filed + 1, if bug.status = Fixed then fixed + 1 else fixed))
    t.bugs;
  (* Evicted signatures still count: the category totals must match the
     maintained counters, not just the live working set. *)
  Hashtbl.iter
    (fun _ bug ->
      let filed, fixed = Option.value ~default:(0, 0) (Hashtbl.find_opt table bug.category) in
      Hashtbl.replace table bug.category
        (filed + 1, if bug.status = Fixed then fixed + 1 else fixed))
    t.tombstones;
  Hashtbl.fold (fun category (filed, fixed) acc -> (category, filed, fixed) :: acc) table []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
