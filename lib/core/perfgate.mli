(** Performance-regression gate over the engine benchmark.

    The bench's [--scenario engine] run writes [BENCH_engine.json] with
    the throughput and step-latency figures of the 2-month reference
    campaign; a baseline copy of that file is checked into the repository.
    This module compares a fresh run against the baseline and fails the
    gate when the p95 step latency regresses by more than the threshold
    (20% by default), so an accidental slow-down of the hot loop breaks
    CI instead of silently eating the arena rewrite's gains.

    Throughput and allocation figures are reported for context but do not
    gate: events/s varies with runner load far more than the latency
    percentile does.

    The serve scenario ([--scenario serve], [BENCH_serve.json]) is gated
    the same way on its p99 page staleness — which is
    simulation-deterministic, so a regression there is a behaviour
    change, not runner noise — with reads/s and the cache hit ratio
    reported for context.

    The federation scenario ([--scenario federation],
    [BENCH_federation.json]) gates on two figures: the sharded-vs-
    unsharded-reference speedup (baseline-relative, same allowance as
    the other gates) and the cross-shard determinism bit
    [identical_across_shards], which is a hard requirement — a fast
    federation that no longer replays byte-identically across shard
    counts and drivers fails regardless of threshold. *)

type metrics = {
  events_per_s : float;
  minor_words_per_event : float;
  p95_step_us : float;  (** the gating figure *)
}

val metrics_of_json : Simkit.Json.t -> (metrics, string) result
(** Extract the gate's metrics from a [BENCH_engine.json] document
    ([events_per_s], [minor_words_per_event] and
    [step_latency_us.p95]). *)

val metrics_of_string : string -> (metrics, string) result
(** Parse then extract; [Error] carries the parse or shape complaint. *)

type serve_metrics = {
  reads_per_s : float;
  hit_ratio : float;
  p99_staleness_s : float;  (** the gating figure *)
}

val serve_metrics_of_json : Simkit.Json.t -> (serve_metrics, string) result
(** Extract the serve gate's metrics from a [BENCH_serve.json] document
    ([reads_per_s], [hit_ratio] and [staleness_s.p99]). *)

val serve_metrics_of_string : string -> (serve_metrics, string) result

type federation_metrics = {
  speedup : float;
      (** sharded aggregate events/s over the unsharded reference's —
          gating, baseline-relative *)
  identical : bool;
      (** all shard counts and drivers produced byte-identical reports —
          gating, hard requirement *)
  sharded_events_per_s : float;
  reference_events_per_s : float;
}

val federation_metrics_of_json : Simkit.Json.t -> (federation_metrics, string) result
(** Extract the federation gate's metrics from a [BENCH_federation.json]
    document ([speedup], [identical_across_shards],
    [sharded_events_per_s], [reference_events_per_s]). *)

val federation_metrics_of_string : string -> (federation_metrics, string) result

type lint_metrics = {
  wall_s : float;
      (** catalog + presets static-analysis wall time — gating, with an
          absolute floor (see {!check_lint}) *)
  configurations : int;
  diagnostics : int;
}

val lint_metrics_of_json : Simkit.Json.t -> (lint_metrics, string) result
(** Extract the lint gate's metrics from a [BENCH_lint.json] document
    (the [lint] object's [wall_s], [configurations], [diagnostics]). *)

val lint_metrics_of_string : string -> (lint_metrics, string) result

type verdict = {
  ok : bool;  (** [false] = regression beyond the threshold *)
  lines : string list;  (** human-readable comparison, one line each *)
}

val default_threshold_pct : float
(** [20.] — the CI gate's allowance. *)

val check : ?threshold_pct:float -> baseline:metrics -> current:metrics -> unit -> verdict
(** Compare a fresh run against the baseline.  The gate fails iff
    [current.p95_step_us > baseline.p95_step_us * (1 + threshold_pct/100)];
    [threshold_pct] defaults to {!default_threshold_pct}. *)

val check_serve :
  ?threshold_pct:float ->
  baseline:serve_metrics ->
  current:serve_metrics ->
  unit ->
  verdict
(** Serve-scenario comparison: fails iff the p99 staleness regresses
    beyond the threshold (a zero baseline tolerates only zero); reads/s
    and hit ratio are informational. *)

val check_federation :
  ?threshold_pct:float ->
  baseline:federation_metrics ->
  current:federation_metrics ->
  unit ->
  verdict
(** Federation-scenario comparison: fails iff the current run is not
    byte-identical across shard counts/drivers, or its speedup fell
    below [baseline.speedup * (1 - threshold_pct/100)].  Raw throughput
    figures are informational. *)

val lint_floor_s : float
(** [0.25] — the lint gate's absolute wall-time floor.  The deep
    analysis finishes in milliseconds, far below runner noise, so a
    purely relative threshold would flap. *)

val check_lint :
  ?threshold_pct:float ->
  baseline:lint_metrics ->
  current:lint_metrics ->
  unit ->
  verdict
(** Lint-scenario comparison: fails iff the catalog-wide analysis wall
    time exceeds [max lint_floor_s (baseline.wall_s * (1 +
    threshold_pct/100))].  Configuration and diagnostic counts are
    informational. *)
