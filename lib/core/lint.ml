type severity = Error | Warning | Info

type diagnostic = {
  code : string;
  severity : severity;
  path : string;
  message : string;
  fix : string option;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let diag code severity path fmt =
  Printf.ksprintf (fun message -> { code; severity; path; message; fix = None }) fmt

let of_finding (f : Semlint.finding) =
  {
    code = f.Semlint.code;
    severity = (match f.Semlint.severity with Semlint.Error -> Error | Semlint.Warning -> Warning);
    path = f.Semlint.path;
    message = f.Semlint.message;
    fix = f.Semlint.fix;
  }

let errors diags = List.filter (fun d -> d.severity = Error) diags

let sort diags =
  List.stable_sort
    (fun a b ->
      match compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
        match String.compare a.code b.code with
        | 0 -> String.compare a.path b.path
        | c -> c)
      | c -> c)
    diags

(* {2 Filter checks: L004-L007 and L016-L017}

   Shape first (syntax, property vocabulary), then the semantic verdicts
   come from Semlint's abstract interpreter: feasible-host-count bounds
   proved over the full inventory instead of the old representative-row
   heuristic (which reported host-literal filters as unsatisfiable —
   only cluster-1 existed in its world). *)

let known_properties =
  [ "host"; "cluster"; "site"; "cores"; "cpufreq"; "memnode"; "gpu";
    "eth10g"; "ib"; "wattmeter"; "deploy" ]

let check_filter ~path filter =
  match Oar.Expr.parse filter with
  | Error msg -> [ diag "L006" Error path "OAR filter syntax error: %s" msg ]
  | Ok expr -> (
    let unknown =
      List.filter
        (fun p -> not (List.mem p known_properties))
        (Oar.Expr.properties_used expr)
    in
    match unknown with
    | _ :: _ ->
      List.map
        (fun p ->
          diag "L007" Warning path
            "unknown OAR property '%s' in filter %S (known: %s)" p filter
            (String.concat ", " known_properties))
        unknown
    | [] -> List.map of_finding (Semlint.check_expr ~path ~filter expr))

(* {2 Configuration checks: L001-L003} *)

let family_supported (s : Testbed.Inventory.cluster_spec) = function
  | Testdef.Kwapi -> List.mem s.site Testbed.Inventory.wattmeter_sites
  | Testdef.Mpigraph -> s.has_ib
  | Testdef.Dellbios -> s.vendor = Testbed.Hardware.Dell
  | _ -> true

let family_requirement = function
  | Testdef.Kwapi -> "a wattmeter-instrumented site"
  | Testdef.Mpigraph -> "an InfiniBand cluster"
  | Testdef.Dellbios -> "a Dell cluster"
  | _ -> "a cluster"

let need_supported (s : Testbed.Inventory.cluster_spec) = function
  | Testdef.No_nodes -> true
  | Testdef.One_node | Testdef.Whole_cluster | Testdef.Site_spread ->
    s.nodes >= 1
  | Testdef.Two_nodes -> s.nodes >= 2

let serving_clusters (c : Testdef.config) =
  match c.cluster with
  | Some cl -> (
    match Testbed.Inventory.find_cluster cl with Some s -> [ s ] | None -> [])
  | None -> (
    match c.site with
    | Some s -> Testbed.Inventory.clusters_of_site s
    | None -> Testbed.Inventory.clusters)

let check_references (c : Testdef.config) =
  let path = c.config_id in
  let cluster_diags =
    match c.cluster with
    | None -> []
    | Some cl -> (
      match Testbed.Inventory.find_cluster cl with
      | None ->
        [ diag "L002" Error path "references unknown cluster '%s'" cl ]
      | Some spec -> (
        match c.site with
        | Some site when not (String.equal site spec.site) ->
          [ diag "L002" Error path
              "site '%s' contradicts cluster '%s' (which is in '%s')" site cl
              spec.site ]
        | _ -> []))
  in
  let site_diags =
    match c.site with
    | Some s when not (List.mem s Testbed.Inventory.sites) ->
      [ diag "L002" Error path "references unknown site '%s'" s ]
    | _ -> []
  in
  cluster_diags @ site_diags

let check_runnable (c : Testdef.config) =
  let path = c.config_id in
  let need = Testdef.need c.family in
  let eligible =
    serving_clusters c
    |> List.filter (fun s -> family_supported s c.family)
    |> List.filter (fun s -> need_supported s need)
  in
  if eligible = [] then
    [ diag "L003" Error path
        "unrunnable: no inventory resource can serve a %s configuration \
         here (needs %s%s)"
        (Testdef.family_to_string c.family)
        (family_requirement c.family)
        (match (c.cluster, c.site) with
        | Some cl, _ -> Printf.sprintf "; pinned to cluster '%s'" cl
        | None, Some s -> Printf.sprintf "; pinned to site '%s'" s
        | None, None -> "") ]
  else []

let check_configs configs =
  let seen = Hashtbl.create 1024 in
  let duplicates =
    List.filter_map
      (fun (c : Testdef.config) ->
        if Hashtbl.mem seen c.config_id then
          Some
            (diag "L001" Error c.config_id
               "duplicate configuration id (collides with an earlier %s \
                configuration)"
               (Testdef.family_to_string c.family))
        else begin
          Hashtbl.replace seen c.config_id ();
          None
        end)
      configs
  in
  let per_config =
    List.concat_map
      (fun (c : Testdef.config) ->
        match check_references c with
        | _ :: _ as refs ->
          (* Dangling references make downstream checks pure noise: an
             unknown cluster is also unrunnable and its generated filter
             unsatisfiable.  Report the root cause only. *)
          refs
        | [] ->
          check_runnable c @ check_filter ~path:c.config_id (Testdef.oar_filter c))
      configs
  in
  duplicates @ per_config

let check_catalog () = check_configs (Testdef.catalog ())

(* {2 Scheduler policy checks: L008-L009} *)

(* Longest stretch of consecutive peak-window skips a weekday run can see:
   19:00 -> 08:00 is 13 h of off-peak; a poll period at or beyond it can
   systematically land every poll inside working hours. *)
let weekday_offpeak = 13.0 *. 3600.0

let check_policy ~path (p : Scheduler.policy) =
  let e fmt = diag "L008" Error path fmt in
  let timing =
    (if p.poll_period <= 0.0 then
       [ e "poll_period must be positive (got %g)" p.poll_period ]
     else [])
    @ (if p.use_backoff && p.backoff_initial <= 0.0 then
         [ e "backoff_initial must be positive when use_backoff is set (got %g)"
             p.backoff_initial ]
       else [])
    @ (if p.use_backoff && p.backoff_max < p.backoff_initial then
         [ e "backoff_max (%g) is below backoff_initial (%g)" p.backoff_max
             p.backoff_initial ]
       else [])
    @
    if p.avoid_peak_hours && p.poll_period >= weekday_offpeak then
      [ e
          "avoid_peak_hours with poll_period %g s >= the 13 h weekday \
           off-peak window: node-consuming tests can starve for days"
          p.poll_period ]
    else []
  in
  let r fmt = diag "L009" Error path fmt in
  let resilience =
    (if p.retry_budget <= 0 then
       [ r "retry_budget must be at least 1 (got %d); 0 disables every retry \
            including the first"
           p.retry_budget ]
     else [])
    @ (if p.backoff_jitter < 0.0 || p.backoff_jitter > 1.0 then
         [ r "backoff_jitter must lie in [0, 1] (got %g)" p.backoff_jitter ]
       else [])
    @
    match p.breaker with
    | None -> []
    | Some (b : Resilience.Breaker.config) ->
      (if b.failure_threshold <= 0 then
         [ r "breaker failure_threshold must be positive (got %d): the \
              breaker would open on the first completion"
             b.failure_threshold ]
       else [])
      @
      if b.cooldown <= 0.0 then
        [ r "breaker cooldown must be positive (got %g): an open breaker \
             would re-probe immediately and never shed load"
            b.cooldown ]
      else []
  in
  timing @ resilience

(* {2 Health configuration checks: L010} *)

let finite_positive x = Float.is_finite x && x > 0.0

let check_health ~path (h : Health.config) =
  let e fmt = diag "L010" Error path fmt in
  let thresholds =
    (if h.quarantine_threshold <= 0.0 then
       [ e "quarantine_threshold must be positive (got %g)"
           h.quarantine_threshold ]
     else [])
    @ (if h.suspect_threshold <= 0.0 then
         [ e "suspect_threshold must be positive (got %g)" h.suspect_threshold ]
       else [])
    @ (if
         h.suspect_threshold > 0.0 && h.quarantine_threshold > 0.0
         && not
              (h.release_threshold < h.suspect_threshold
              && h.suspect_threshold <= h.quarantine_threshold)
       then
         [ e
             "thresholds must satisfy release (%g) < suspect (%g) <= \
              quarantine (%g)"
             h.release_threshold h.suspect_threshold h.quarantine_threshold ]
       else [])
    @
    if
      h.blame_failure <= 0.0 && h.blame_unstable <= 0.0 && h.down_blame <= 0.0
    then
      [ e
          "quarantine threshold is unreachable: every blame source \
           (blame_failure %g, blame_unstable %g, down_blame %g) is \
           non-positive, so no node can ever accumulate suspicion"
          h.blame_failure h.blame_unstable h.down_blame ]
    else []
  in
  let timing =
    (if h.decay_half_life <= 0.0 then
       [ e "decay_half_life must be positive (got %g)" h.decay_half_life ]
     else [])
    @ (if h.sweep_period <= 0.0 then
         [ e "sweep_period must be positive (got %g)" h.sweep_period ]
       else [])
    @ (if h.triage_delay < 0.0 then
         [ e "triage_delay must be non-negative (got %g)" h.triage_delay ]
       else [])
    @ (if h.max_repair_attempts < 1 then
         [ e "max_repair_attempts must be at least 1 (got %d)"
             h.max_repair_attempts ]
       else [])
    @
    match h.healthy_floor with
    | Some f when f <= 0.0 || f > 1.0 ->
      [ e "healthy_floor must lie in (0, 1] (got %g)" f ]
    | _ -> []
  in
  let mttr =
    let bad_default =
      if not (finite_positive (Simkit.Dist.mean h.default_mttr)) then
        [ e "default_mttr has non-positive mean (%g): repairs would \
             complete instantly or never"
            (Simkit.Dist.mean h.default_mttr) ]
      else []
    in
    let bad_kinds =
      List.filter_map
        (fun kind ->
          let m = Simkit.Dist.mean (h.mttr_of_kind kind) in
          if not (finite_positive m) then
            Some
              (e "mttr_of_kind %s has non-positive mean (%g)"
                 (Testbed.Faults.kind_to_string kind)
                 m)
          else None)
        Testbed.Faults.all_kinds
    in
    bad_default @ bad_kinds
  in
  thresholds @ timing @ mttr

(* {2 Triage configuration checks: L013} *)

let check_triage ~path (tc : Triage.config) =
  let e fmt = diag "L013" Error path fmt in
  let w fmt = diag "L013" Warning path fmt in
  let l = tc.Triage.limits in
  let limits =
    (if l.Bugtracker.ring_size <= 0 then
       [ e "limits.ring_size must be positive (got %d)" l.Bugtracker.ring_size ]
     else [])
    @ (if l.Bugtracker.max_live <= 0 then
         [ e "limits.max_live must be positive (got %d)" l.Bugtracker.max_live ]
       else [])
    @ (if l.Bugtracker.min_idle < 0.0 then
         [ e "limits.min_idle must be non-negative (got %g)"
             l.Bugtracker.min_idle ]
       else [])
    @ (if l.Bugtracker.series_cadence <= 0.0 then
         [ e "limits.series_cadence must be positive (got %g)"
             l.Bugtracker.series_cadence ]
       else [])
    @
    if l.Bugtracker.series_points < 2 then
      [ e "limits.series_points must be at least 2 (got %d)"
          l.Bugtracker.series_points ]
    else []
  in
  let dedup =
    (if tc.Triage.dedup_window < 0.0 then
       [ e "dedup_window must be non-negative (got %g)" tc.Triage.dedup_window ]
     else [])
    @
    (* Eviction thrash: a bug evicted while its duplicate burst is still
       being collapsed means the next retry resurrects it — correctness
       holds (tombstones), but the store churns on every retry chain. *)
    if
      l.Bugtracker.min_idle >= 0.0 && tc.Triage.dedup_window >= 0.0
      && l.Bugtracker.min_idle < tc.Triage.dedup_window
    then
      [ w "limits.min_idle (%g s) is below dedup_window (%g s): a bug can            be evicted while its retry burst is still collapsing, churning            the tombstone store"
          l.Bugtracker.min_idle tc.Triage.dedup_window ]
    else []
  in
  let flaps =
    (if tc.Triage.flap_cycles < 2 then
       [ e "flap_cycles must be at least 2 (got %d): a single reopen is a             regression, not a flap"
           tc.Triage.flap_cycles ]
     else [])
    @
    if tc.Triage.flap_window <= 0.0 then
      [ e "flap_window must be positive (got %g)" tc.Triage.flap_window ]
    else []
  in
  let bundles =
    if tc.Triage.keep_bundles < 0 then
      [ e "keep_bundles must be non-negative (got %d)" tc.Triage.keep_bundles ]
    else []
  in
  let drill =
    match tc.Triage.drill with
    | None -> []
    | Some d ->
      (if d.Triage.evidence_loss < 0.0 || d.Triage.evidence_loss > 1.0 then
         [ e "drill.evidence_loss must lie in [0, 1] (got %g)"
             d.Triage.evidence_loss ]
       else [])
      @ (if d.Triage.filing_delay < 0.0 then
           [ e "drill.filing_delay must be non-negative (got %g)"
               d.Triage.filing_delay ]
         else [])
      @
      if d.Triage.evidence_loss >= 1.0 then
        [ w "drill.evidence_loss of %g drops every bundle: the pipeline              files nothing"
            d.Triage.evidence_loss ]
      else []
  in
  limits @ dedup @ flaps @ bundles @ drill

(* {2 Serving configuration checks: L014} *)

let check_serve ~path (sc : Serve.config) =
  let e fmt = diag "L014" Error path fmt in
  let w fmt = diag "L014" Warning path fmt in
  let admission =
    (if sc.Serve.rate_limit <= 0.0 then
       [ e "rate_limit must be positive (got %g): the bucket never refills \
            and every read is shed"
           sc.Serve.rate_limit ]
     else [])
    @ (if sc.Serve.burst < 1.0 then
         [ e "burst must be at least 1 (got %g): admission needs one whole \
              token to ever serve a read"
             sc.Serve.burst ]
       else [])
    @ (if sc.Serve.queue_limit < 0 then
         [ e "queue_limit must be non-negative (got %d)" sc.Serve.queue_limit ]
       else [])
    @
    (* The bucket refills once per service tick, capped at burst: a
       burst below rate_limit x tick_period silently caps sustained
       admission below the configured rate. *)
    if
      sc.Serve.rate_limit > 0.0 && sc.Serve.tick_period > 0.0
      && sc.Serve.burst < sc.Serve.rate_limit *. sc.Serve.tick_period
    then
      [ w "burst (%g) is below rate_limit x tick_period (%g): sustained \
           admission is capped at burst/tick_period = %g reads/s, not \
           rate_limit"
          sc.Serve.burst
          (sc.Serve.rate_limit *. sc.Serve.tick_period)
          (sc.Serve.burst /. sc.Serve.tick_period) ]
    else []
  in
  let ladder =
    (if sc.Serve.stale_queue <= 0 then
       [ e "stale_queue must be positive (got %d): the service would start \
            degraded"
           sc.Serve.stale_queue ]
     else [])
    @ (if sc.Serve.fallback_queue <= sc.Serve.stale_queue then
         [ e
             "degradation thresholds must be ordered stale_queue (%d) < \
              fallback_queue (%d): Fresh -> Stale -> Static_fallback"
             sc.Serve.stale_queue sc.Serve.fallback_queue ]
       else [])
    @ (if sc.Serve.hysteresis_s < 0.0 then
         [ e "hysteresis_s must be non-negative (got %g)" sc.Serve.hysteresis_s ]
       else [])
    @ (if sc.Serve.rebuild_s < 0.0 then
         [ e "rebuild_s must be non-negative (got %g)" sc.Serve.rebuild_s ]
       else [])
    @
    if
      sc.Serve.queue_limit >= 0 && sc.Serve.stale_queue > 0
      && sc.Serve.stale_queue > sc.Serve.queue_limit
    then
      [ w "stale_queue (%d) exceeds queue_limit (%d): the queue can never \
           get deep enough to degrade, overload is pure shedding"
          sc.Serve.stale_queue sc.Serve.queue_limit ]
    else []
  in
  let workload =
    (if sc.Serve.tick_period <= 0.0 then
       [ e "tick_period must be positive (got %g)" sc.Serve.tick_period ]
     else [])
    @ (if sc.Serve.readers_per_s < 0.0 then
         [ e "readers_per_s must be non-negative (got %g)"
             sc.Serve.readers_per_s ]
       else [])
    @ (if
         sc.Serve.conditional_fraction < 0.0
         || sc.Serve.conditional_fraction > 1.0
       then
         [ e "conditional_fraction must lie in [0, 1] (got %g)"
             sc.Serve.conditional_fraction ]
       else [])
    @ (if sc.Serve.flash_every < 0.0 then
         [ e "flash_every must be non-negative (got %g)" sc.Serve.flash_every ]
       else [])
    @
    if sc.Serve.flash_every > 0.0 then
      (if
         sc.Serve.flash_duration <= 0.0
         || sc.Serve.flash_duration > sc.Serve.flash_every
       then
         [ e "flash_duration must lie in (0, flash_every] (got %g with \
              flash_every %g)"
             sc.Serve.flash_duration sc.Serve.flash_every ]
       else [])
      @
      if sc.Serve.flash_multiplier < 1.0 then
        [ w "flash_multiplier %g is below 1: the 'flash crowd' lowers load"
            sc.Serve.flash_multiplier ]
      else []
    else []
  in
  admission @ ladder @ workload

(* {2 Federation configuration checks: L015} *)

let check_federation ~path (fc : Federation.config) =
  let e fmt = diag "L015" Error path fmt in
  let w fmt = diag "L015" Warning path fmt in
  let shape =
    (if fc.Federation.testbeds <= 0 then
       [ e "testbeds must be positive (got %d)" fc.Federation.testbeds ]
     else [])
    @ (if fc.Federation.shards <= 0 then
         [ e "shards must be positive (got %d)" fc.Federation.shards ]
       else [])
    @
    if
      fc.Federation.testbeds > 0 && fc.Federation.shards > 0
      && fc.Federation.shards > fc.Federation.testbeds
    then
      [ e "shard count %d exceeds testbed count %d: %d shards would own no \
           member"
          fc.Federation.shards fc.Federation.testbeds
          (fc.Federation.shards - fc.Federation.testbeds) ]
    else []
  in
  let lookahead =
    if fc.Federation.lookahead < Federation.min_cross_latency then
      [ e "lookahead %g s is below the smallest cross-testbed latency \
           (%g s): a barrier decision could land inside the window it was \
           computed for, breaking the conservative-synchronization \
           contract"
          fc.Federation.lookahead Federation.min_cross_latency ]
    else []
  in
  let r = fc.Federation.ranges in
  let range_f what (lo, hi) =
    if not (lo > 0.0) then
      [ e "%s range lower bound must be positive (got %g)" what lo ]
    else if hi < lo then
      [ e "%s range is inverted (%g > %g)" what lo hi ]
    else []
  in
  let ranges =
    range_f "fault_bias" r.Testbed.Fleet.fault_bias
    @ range_f "workload_scale" r.Testbed.Fleet.workload_scale
    @
    let lo, hi = r.Testbed.Fleet.executors in
    if lo < 1 then [ e "executors range lower bound must be at least 1 (got %d)" lo ]
    else if hi < lo then [ e "executors range is inverted (%d > %d)" lo hi ]
    else []
  in
  let ids =
    (* Only synthesizable configurations can be checked for collisions;
       shape/range errors above already explain the rest. *)
    if fc.Federation.testbeds > 0 && ranges = [] then begin
      let seen = Hashtbl.create 16 in
      List.filter_map
        (fun (s : Testbed.Fleet.spec) ->
          if Hashtbl.mem seen s.Testbed.Fleet.id then
            Some
              (e "duplicate member id '%s' (member %d): per-member reports \
                  and coordination streams would collide"
                 s.Testbed.Fleet.id s.Testbed.Fleet.index)
          else begin
            Hashtbl.replace seen s.Testbed.Fleet.id ();
            None
          end)
        (Federation.synthesize fc)
    end
    else []
  in
  let coordination =
    (if fc.Federation.global_vlans < 0 then
       [ e "global_vlans must be non-negative (got %d)" fc.Federation.global_vlans ]
     else if fc.Federation.global_vlans = 0 then
       [ w "global_vlans is 0: every VLAN request is denied and no \
            federation link test ever runs" ]
     else [])
    @ (if fc.Federation.backbone_faults_per_year < 0.0 then
         [ e "backbone_faults_per_year must be non-negative (got %g)"
             fc.Federation.backbone_faults_per_year ]
       else [])
    @ (if
         fc.Federation.backbone_faults_per_year > 0.0
         && fc.Federation.backbone_outage_hours <= 0.0
       then
         [ e "backbone_outage_hours must be positive when backbone faults \
              are enabled (got %g)"
             fc.Federation.backbone_outage_hours ]
       else [])
    @ (if fc.Federation.vlan_request_period <= 0.0 then
         [ e "vlan_request_period must be positive (got %g)"
             fc.Federation.vlan_request_period ]
       else [])
    @
    if fc.Federation.audit_period <= 0.0 then
      [ e "audit_period must be positive (got %g)" fc.Federation.audit_period ]
    else []
  in
  let streams =
    (* L020: prove the Prng.derive tag ranges disjoint for this fleet
       size; shape errors above already explain nonsensical sizes. *)
    if shape = [] then
      List.map of_finding
        (Semlint.check_streams ~path:(path ^ ".streams") ~members:fc.Federation.testbeds)
    else []
  in
  shape @ lookahead @ ranges @ ids @ coordination @ streams

(* {2 Campaign shape and staging checks: L011-L012} *)

let check_campaign_shape (cfg : Campaign.config) =
  let path = "campaign" in
  let e fmt = diag "L011" Error path fmt in
  let w fmt = diag "L011" Warning path fmt in
  let horizon = float_of_int cfg.months *. Simkit.Calendar.month in
  (if cfg.months <= 0 then [ e "months must be positive (got %d)" cfg.months ]
   else [])
  @ (if cfg.executors <= 0 then
       [ e "executors must be positive (got %d)" cfg.executors ]
     else [])
  @ (if cfg.initial_faults < 0 then
       [ e "initial_faults must be non-negative (got %d)" cfg.initial_faults ]
     else [])
  @ (if cfg.fault_rate_per_day < 0.0 then
       [ e "fault_rate_per_day must be non-negative (got %g)"
           cfg.fault_rate_per_day ]
     else [])
  @ (if cfg.infra_faults <> [] && cfg.infra_fault_duration <= 0.0 then
       [ e "infra_fault_duration must be positive when infra faults are \
            scheduled (got %g)"
           cfg.infra_fault_duration ]
     else [])
  @ List.concat_map
      (fun (time, kind) ->
        if time < 0.0 then
          [ e "infra fault %s scheduled at negative time %g"
              (Testbed.Faults.kind_to_string kind)
              time ]
        else if cfg.months > 0 && time >= horizon then
          [ w "infra fault %s scheduled at %g s, beyond the campaign \
               horizon (%g s): it will never fire"
              (Testbed.Faults.kind_to_string kind)
              time horizon ]
        else [])
      cfg.infra_faults
  @ List.concat_map
      (fun (time, kind, _target) ->
        if time < 0.0 then
          [ e "health drill fault %s scheduled at negative time %g"
              (Testbed.Faults.kind_to_string kind)
              time ]
        else if cfg.months > 0 && time >= horizon then
          [ w "health drill fault %s scheduled at %g s, beyond the \
               campaign horizon (%g s): it will never fire"
              (Testbed.Faults.kind_to_string kind)
              time horizon ]
        else [])
      cfg.health_faults
  @
  if cfg.health = None && cfg.health_faults <> [] then
    [ w "health_faults are scheduled but no health configuration is \
         attached: the faults will be injected and never repaired" ]
  else []

let check_staging (cfg : Campaign.config) =
  let path = "campaign.staged_families" in
  let w fmt = diag "L012" Warning path fmt in
  let staged = List.concat_map snd cfg.staged_families in
  let beyond =
    List.concat_map
      (fun (month, families) ->
        if month < 0 then
          [ w "stage month %d is negative" month ]
        else if cfg.months > 0 && month >= cfg.months then
          [ w "families staged at month %d never enable in a %d-month \
               campaign: %s"
              month cfg.months
              (String.concat ", "
                 (List.map Testdef.family_to_string families)) ]
        else [])
      cfg.staged_families
  in
  let duplicates =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun f ->
        if Hashtbl.mem seen f then
          Some
            (w "family %s is staged more than once (re-staging is a no-op)"
               (Testdef.family_to_string f))
        else begin
          Hashtbl.replace seen f ();
          None
        end)
      staged
  in
  let nothing_staged =
    if cfg.enable_testing && staged = [] then
      [ w "enable_testing is set but no families are staged: the campaign \
           runs zero tests" ]
    else []
  in
  let anti_affinity =
    (* With one-job-per-site anti-affinity, at most one node-consuming
       build can run per site; executors beyond the site count are
       provably idle unless some staged family is API-only. *)
    let sites = List.length Testbed.Inventory.sites in
    let has_api_only =
      List.exists (fun f -> Testdef.need f = Testdef.No_nodes) staged
    in
    if
      cfg.policy.one_job_per_site && staged <> [] && (not has_api_only)
      && cfg.executors > sites
    then
      [ diag "L012" Warning "campaign.executors"
          "anti-affinity bottleneck: one_job_per_site caps node-consuming \
           concurrency at %d sites, but %d executors are configured and \
           every staged family consumes nodes — %d executors can never work"
          sites cfg.executors (cfg.executors - sites) ]
    else []
  in
  beyond @ duplicates @ nothing_staged @ anti_affinity

let check_schedulability ~path ~(policy : Scheduler.policy) ~executors configs =
  List.map of_finding
    (Semlint.check_capacity ~path ~policy ~executors configs
    @ Semlint.check_deadlock ~path
        ~serialized:policy.Scheduler.one_job_per_site configs)

let check_campaign (cfg : Campaign.config) =
  check_campaign_shape cfg
  @ check_staging cfg
  @ check_policy ~path:"campaign.policy" cfg.policy
  @ (match cfg.health with
    | None -> []
    | Some h -> check_health ~path:"campaign.health" h)
  @ (match cfg.triage with
    | None -> []
    | Some tc -> check_triage ~path:"campaign.triage" tc)
  @ (match cfg.serve with
    | None -> []
    | Some sc -> check_serve ~path:"campaign.serve" sc)
  @
  let staged = List.sort_uniq compare (List.concat_map snd cfg.staged_families) in
  check_configs (List.concat_map Testdef.expand staged)
  @
  (* L018/L019 over the families actually reachable within the horizon
     (L012 already warns about the others). *)
  let reachable =
    cfg.staged_families
    |> List.filter (fun (m, _) -> m >= 0 && (cfg.months <= 0 || m < cfg.months))
    |> List.concat_map snd
    |> List.sort_uniq compare
  in
  check_schedulability ~path:"campaign" ~policy:cfg.policy
    ~executors:cfg.executors
    (List.concat_map Testdef.expand reachable)

let run cfg = sort (check_campaign cfg)

(* {2 Example configurations linted by the CLI gate} *)

let presets =
  [ ("default", Campaign.default_config);
    ("naive", { Campaign.default_config with policy = Scheduler.naive_policy });
    ( "resilient",
      {
        Campaign.default_config with
        resilience = true;
        infra_faults =
          [ (20.0 *. Simkit.Calendar.day, Testbed.Faults.Ci_outage);
            (45.0 *. Simkit.Calendar.day, Testbed.Faults.Build_hang);
            (70.0 *. Simkit.Calendar.day, Testbed.Faults.Queue_loss) ];
        infra_fault_duration = 6.0 *. 3600.0;
      } );
    ( "health-drill",
      {
        Campaign.default_config with
        health = Some Health.default_config;
        health_faults =
          [ (30.0 *. Simkit.Calendar.day, Testbed.Faults.Site_outage,
             Testbed.Faults.Site "nancy");
            (60.0 *. Simkit.Calendar.day, Testbed.Faults.Pdu_failure,
             Testbed.Faults.Cluster "graphene") ];
      } );
    ( "triage",
      { Campaign.default_config with triage = Some Triage.default_config } );
    ( "serve",
      {
        Campaign.default_config with
        serve = Some Serve.default_config;
        infra_faults =
          [ (40.0 *. Simkit.Calendar.day, Testbed.Faults.Serve_crash) ];
      } ) ]

(* {2 Rendering} *)

let diagnostic_to_json d =
  Simkit.Json.Obj
    ([ ("code", Simkit.Json.String d.code);
       ("severity", Simkit.Json.String (severity_to_string d.severity));
       ("path", Simkit.Json.String d.path);
       ("message", Simkit.Json.String d.message) ]
    @ match d.fix with
      | None -> []
      | Some fix -> [ ("fix", Simkit.Json.String fix) ])

let to_json diags =
  Simkit.Json.Obj
    [ ("diagnostics", Simkit.Json.List (List.map diagnostic_to_json diags));
      ("errors", Simkit.Json.Int (List.length (errors diags)));
      ("warnings",
       Simkit.Json.Int
         (List.length (List.filter (fun d -> d.severity = Warning) diags)));
      ("total", Simkit.Json.Int (List.length diags)) ]

let render ?(explain = false) diags =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-7s %-40s %s\n" d.code
           (severity_to_string d.severity)
           d.path d.message);
      match d.fix with
      | Some fix when explain ->
        Buffer.add_string buf (Printf.sprintf "     fix: %s\n" fix)
      | _ -> ())
    diags;
  Buffer.add_string buf
    (Printf.sprintf "%d diagnostic%s: %d error%s, %d warning%s\n"
       (List.length diags)
       (if List.length diags = 1 then "" else "s")
       (List.length (errors diags))
       (if List.length (errors diags) = 1 then "" else "s")
       (List.length (List.filter (fun d -> d.severity = Warning) diags))
       (if List.length (List.filter (fun d -> d.severity = Warning) diags) = 1
        then ""
        else "s"));
  Buffer.contents buf
